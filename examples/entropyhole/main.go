// Entropyhole walks through the root cause from Section 2.4 of the paper
// at the smallest possible scale: two identical devices boot with no
// entropy, generate RSA keys with a low-entropy time-stir between the two
// primes, and an attacker with only their PUBLIC keys factors both with
// one gcd and decrypts a TLS-style session.
//
//	go run ./examples/entropyhole
package main

import (
	"fmt"
	"log"
	"math/big"
	"time"

	"github.com/factorable/weakkeys/internal/entropy"
	"github.com/factorable/weakkeys/internal/weakrsa"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("entropyhole: ")

	// Two devices of the same model run the same firmware image and
	// boot with no hardware entropy: their RNG states are identical.
	boot := entropy.BootConfig{FirmwareSeed: []byte("router-model-X firmware 1.0.3")}
	devA, devB := entropy.Boot(boot), entropy.Boot(boot)

	// Each device generates its TLS key on first boot. Between the two
	// prime draws the firmware stirs in the current boot-relative time —
	// a few hundred milliseconds apart across the two devices.
	t0 := time.Date(2012, 2, 1, 9, 0, 0, 0, time.UTC)
	keyA, err := weakrsa.GenerateKey(devA, weakrsa.Options{
		Bits: 512, PrimeGen: weakrsa.PrimeOpenSSL,
		MidEvent: func() { devA.MixTime(t0.Add(412*time.Millisecond), time.Millisecond) },
	})
	if err != nil {
		log.Fatal(err)
	}
	keyB, err := weakrsa.GenerateKey(devB, weakrsa.Options{
		Bits: 512, PrimeGen: weakrsa.PrimeOpenSSL,
		MidEvent: func() { devB.MixTime(t0.Add(731*time.Millisecond), time.Millisecond) },
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("device A modulus: %x...\n", keyA.N.Bytes()[:12])
	fmt.Printf("device B modulus: %x...\n", keyB.N.Bytes()[:12])
	if keyA.N.Cmp(keyB.N) == 0 {
		log.Fatal("moduli identical — expected divergence after the mid-generation stir")
	}

	// The attacker sees only the two public moduli. One gcd breaks both.
	start := time.Now()
	p := new(big.Int).GCD(nil, nil, keyA.N, keyB.N)
	elapsed := time.Since(start)
	if p.BitLen() <= 1 {
		log.Fatal("no shared factor — these devices were not vulnerable")
	}
	fmt.Printf("\ngcd(Na, Nb) recovered a shared %d-bit prime in %v\n", p.BitLen(), elapsed)

	// Recover device A's private key from the public key + shared prime.
	qA := new(big.Int).Quo(keyA.N, p)
	phi := new(big.Int).Mul(new(big.Int).Sub(p, big.NewInt(1)), new(big.Int).Sub(qA, big.NewInt(1)))
	d := new(big.Int).ModInverse(big.NewInt(int64(keyA.E)), phi)
	if d == nil {
		log.Fatal("could not invert e")
	}

	// Decrypt a session-key-sized secret encrypted to device A.
	secret := big.NewInt(0x5e55104Cafe)
	ct := new(big.Int).Exp(secret, big.NewInt(int64(keyA.E)), keyA.N)
	pt := new(big.Int).Exp(ct, d, keyA.N)
	fmt.Printf("decrypted RSA ciphertext with the recovered key: %#x (want %#x)\n", pt, secret)
	if pt.Cmp(secret) != 0 {
		log.Fatal("decryption failed")
	}
	fmt.Println("\nboth devices' private keys are compromised by their public keys alone.")
}

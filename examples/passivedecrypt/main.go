// Passivedecrypt demonstrates why the weak keys mattered (Section 2.1):
// a device with entropy-hole firmware serves its management interface
// over a TLS-style protocol with RSA key exchange; an administrator logs
// in; a purely passive attacker records the traffic, later factors the
// device's modulus with batch GCD against another device of the same
// model, and decrypts the recorded session offline — credentials and all.
//
//	go run ./examples/passivedecrypt
package main

import (
	"fmt"
	"log"
	"math/big"
	"math/rand"
	"net"
	"time"

	"github.com/factorable/weakkeys/internal/batchgcd"
	"github.com/factorable/weakkeys/internal/certs"
	"github.com/factorable/weakkeys/internal/tlslite"
	"github.com/factorable/weakkeys/internal/weakrsa"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("passivedecrypt: ")

	// Two firewalls of the same model boot with identical RNG state and
	// diverge only at the time-stir between primes: the classic
	// shared-first-prime pair.
	keyA, keyB, err := weakrsa.SharedPrimePair([]byte("firewall-fw-2.1"), 512,
		weakrsa.PrimeOpenSSL, []byte("boot-ms-233"), []byte("boot-ms-871"))
	if err != nil {
		log.Fatal(err)
	}
	certA, err := certs.SelfSigned(big.NewInt(1), certs.Name{CommonName: "system generated"},
		time.Now(), time.Now().AddDate(10, 0, 0), nil, keyA.N, keyA.E, keyA.D)
	if err != nil {
		log.Fatal(err)
	}

	// Device A serves its management interface (RSA key exchange only —
	// like 74% of the vulnerable devices in the paper's 2016 data).
	srv := &tlslite.ServerConfig{Cert: certA, Key: keyA, Suites: []string{tlslite.SuiteRSA}}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		sess, err := srv.Handshake(conn)
		if err != nil {
			return
		}
		if _, err := sess.Recv(); err != nil { // the login
			return
		}
		sess.Send([]byte("230 admin session established; cookie=9f8e7d6c"))
	}()

	// The administrator connects; the attacker has a passive tap on the
	// path (mirror port, upstream capture — no interception).
	tap := &tlslite.Tap{}
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	cli := &tlslite.ClientConfig{Rand: rand.New(rand.NewSource(time.Now().UnixNano()))}
	sess, err := cli.Handshake(tap.TapConn(conn))
	if err != nil {
		log.Fatal(err)
	}
	login := []byte("USER admin PASS swordfish-42")
	if err := sess.Send(login); err != nil {
		log.Fatal(err)
	}
	if _, err := sess.Recv(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("admin logged in over the encrypted session; attacker recorded",
		"the ciphertext only")

	// Months later: the attacker runs batch GCD over public scan data
	// and device A's modulus factors against device B's.
	results, err := batchgcd.Factor([]*big.Int{keyA.N, keyB.N})
	if err != nil {
		log.Fatal(err)
	}
	if len(results) == 0 {
		log.Fatal("batch GCD found nothing — devices were not vulnerable")
	}
	fmt.Printf("batch GCD factored %d of 2 public moduli (shared prime of %d bits)\n",
		len(results), results[0].Divisor.BitLen())

	recovered, err := weakrsa.RecoverPrivateKey(&weakrsa.PublicKey{N: keyA.N, E: keyA.E}, results[0].Divisor)
	if err != nil {
		log.Fatal(err)
	}

	// Decrypt the capture offline.
	transcript, err := tap.Decrypt(recovered)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndecrypted capture:")
	for _, r := range transcript.ClientRecords {
		fmt.Printf("  client -> server: %q\n", r)
	}
	for _, r := range transcript.ServerRecords {
		fmt.Printf("  server -> client: %q\n", r)
	}
	if string(transcript.ClientRecords[0]) != string(login) {
		log.Fatal("decryption mismatch")
	}
	fmt.Println("\nthe administrator's credentials fell to a purely passive attacker.")
}

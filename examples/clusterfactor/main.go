// Clusterfactor reproduces the computational story of Section 3.2: the
// same weak-key corpus factored three ways — naive pairwise GCD, the
// single-tree Bernstein batch GCD, and the paper's k-subset
// cluster-partitioned variant — with wall-clock, total-CPU and peak
// tree-memory numbers, showing the trade the authors made to scale to 81
// million moduli (higher total work, lower wall clock, no giant central
// product).
//
//	go run ./examples/clusterfactor -n 2000 -k 16
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/big"
	"time"

	"github.com/factorable/weakkeys/internal/batchgcd"
	"github.com/factorable/weakkeys/internal/distgcd"
	"github.com/factorable/weakkeys/internal/population"
	"github.com/factorable/weakkeys/internal/prodtree"
	"github.com/factorable/weakkeys/internal/weakrsa"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("clusterfactor: ")
	var (
		n    = flag.Int("n", 2000, "corpus size (moduli)")
		k    = flag.Int("k", 16, "subsets for the partitioned run")
		bits = flag.Int("bits", 256, "modulus size")
	)
	flag.Parse()

	// Build a corpus: 2% of keys share first primes, the rest healthy.
	factory := population.NewKeyFactory(42, *bits)
	moduli := make([]*big.Int, 0, *n)
	for i := 0; i < *n; i++ {
		var key *weakrsa.PrivateKey
		var err error
		if i%50 < 1 { // ~2% vulnerable, in cohorts
			key, err = factory.SharedPrime("corpus", weakrsa.PrimeNaive)
		} else {
			key, err = factory.Healthy()
		}
		if err != nil {
			log.Fatal(err)
		}
		moduli = append(moduli, key.N)
	}
	fmt.Printf("corpus: %d moduli of %d bits\n\n", len(moduli), *bits)

	// 1. Naive pairwise GCD — quadratic; the baseline the paper calls
	//    infeasible at scale. Skip it above a size cap.
	if *n <= 4000 {
		start := time.Now()
		pairwise, err := batchgcd.FactorPairwise(moduli)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("naive pairwise GCD:    %8v  (%d vulnerable)\n", time.Since(start).Round(time.Millisecond), len(pairwise))
	} else {
		fmt.Println("naive pairwise GCD:    skipped (quadratic; use -n <= 4000)")
	}

	// 2. Single-tree batch GCD — quasilinear, one big product.
	start := time.Now()
	single, err := batchgcd.Factor(moduli)
	if err != nil {
		log.Fatal(err)
	}
	singleTime := time.Since(start)
	tree, err := prodtree.New(moduli)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("single-tree batch GCD: %8v  (%d vulnerable, full tree %d KiB)\n",
		singleTime.Round(time.Millisecond), len(single), tree.Bytes()/1024)

	// 3. The paper's k-subset cluster variant.
	start = time.Now()
	dist, stats, err := distgcd.Run(context.Background(), moduli, distgcd.Options{Subsets: *k})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partitioned (k=%2d):    %8v  (%d vulnerable, total CPU %v, peak node tree %d KiB)\n",
		*k, time.Since(start).Round(time.Millisecond), len(dist),
		stats.CPU.Round(time.Millisecond), stats.Bytes/1024)

	if len(single) != len(dist) {
		log.Fatalf("algorithms disagree: %d vs %d", len(single), len(dist))
	}
	fmt.Println("\nall algorithms agree on the vulnerable set.")
	fmt.Println("the partitioned variant does MORE total arithmetic (quadratic in k) but")
	fmt.Println("no node ever holds the full product — the paper's 86-minute cluster run")
	fmt.Println("vs 500 minutes on one machine is the same trade at 81M-moduli scale.")
}

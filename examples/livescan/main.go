// Livescan exercises the real-network pipeline end to end on loopback: a
// fleet of simulated device HTTPS-management interfaces (Juniper-style
// "CN=system generated" certificates, a Fritz!Box cohort, healthy
// devices), a concurrent TCP certificate scanner, the batch GCD, and the
// fingerprint pipeline that attributes the factored keys to vendors.
//
//	go run ./examples/livescan
package main

import (
	"context"
	"fmt"
	"log"
	"math/big"
	"net"
	"time"

	"github.com/factorable/weakkeys/internal/batchgcd"
	"github.com/factorable/weakkeys/internal/certs"
	"github.com/factorable/weakkeys/internal/devices"
	"github.com/factorable/weakkeys/internal/fingerprint"
	"github.com/factorable/weakkeys/internal/population"
	"github.com/factorable/weakkeys/internal/scanner"
	"github.com/factorable/weakkeys/internal/scanstore"
	"github.com/factorable/weakkeys/internal/weakrsa"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("livescan: ")

	factory := population.NewKeyFactory(7, 256)
	type spec struct {
		profile devices.Profile
		pool    string // "" = healthy
		gen     weakrsa.PrimeGen
	}
	fleet := []spec{
		{devices.ProfileJuniper, "juniper", weakrsa.PrimeNaive},
		{devices.ProfileJuniper, "juniper", weakrsa.PrimeNaive},
		{devices.ProfileJuniper, "", weakrsa.PrimeNaive},
		{devices.ProfileFritzBox, "fritz", weakrsa.PrimeOpenSSL},
		{devices.ProfileFritzBoxIPOnly, "fritz", weakrsa.PrimeOpenSSL},
		{devices.ProfileHP, "", weakrsa.PrimeOpenSSL},
		{devices.ProfileMcAfee, "", weakrsa.PrimeOpenSSL},
	}

	var targets []string
	var servers []*devices.Server
	for i, d := range fleet {
		var key *weakrsa.PrivateKey
		var err error
		if d.pool != "" {
			key, err = factory.SharedPrime(d.pool, d.gen)
		} else {
			key, err = factory.Healthy()
		}
		if err != nil {
			log.Fatal(err)
		}
		id := devices.Identity{IP: fmt.Sprintf("127.0.0.%d", i+1), Serial: int64(i + 1), Model: d.profile.Model}
		var sans []string
		if d.profile.DNSNames != nil {
			sans = d.profile.DNSNames(id)
		}
		cert, err := certs.SelfSigned(big.NewInt(int64(i+1)), d.profile.Subject(id),
			time.Now(), time.Now().AddDate(10, 0, 0), sans, key.N, key.E, key.D)
		if err != nil {
			log.Fatal(err)
		}
		srv := &devices.Server{Cert: cert}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		go srv.Serve(ln)
		servers = append(servers, srv)
		targets = append(targets, ln.Addr().String())
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	// Scan the fleet over real TCP connections into the store.
	store := scanstore.New()
	_, sum, err := scanner.Harvest(context.Background(), store,
		time.Now().UTC().Truncate(24*time.Hour), scanstore.SourceCensys, targets,
		scanner.Options{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scanned %d devices, stored %d observations\n", len(targets), sum.Stored)

	// Factor and fingerprint.
	moduli, keys := store.DistinctModuli()
	factored, err := batchgcd.Factor(moduli)
	if err != nil {
		log.Fatal(err)
	}
	divisors := make(map[string]*big.Int)
	for _, r := range factored {
		divisors[keys[r.Index]] = r.Divisor
	}
	res := fingerprint.Analyze(fingerprint.Input{
		Certs:       store.DistinctCerts(),
		Divisors:    divisors,
		ModulusBits: 256,
	})

	fmt.Printf("batch GCD factored %d of %d distinct moduli\n\n", len(divisors), len(moduli))
	for _, c := range store.DistinctCerts() {
		fp, err := c.Fingerprint()
		if err != nil {
			continue
		}
		lbl, ok := res.Labels[fp]
		vendor := "(unlabeled)"
		if ok {
			vendor = fmt.Sprintf("%s via %s", lbl.Vendor, lbl.Method)
		}
		_, vuln := res.Factors[c.ModulusKey()]
		fmt.Printf("  serial %-3v subject %-40q -> %-28s vulnerable=%v\n",
			c.SerialNumber, c.Subject.String(), vendor, vuln)
	}
	fmt.Println("\nnote the IP-only certificate: no vendor in its subject, attributed via its shared prime.")
}

// Quickstart: run a scaled-down version of the full study and print the
// headline results — the dataset summary (Table 1) and the aggregate
// vulnerable-hosts-over-time series (Figure 1).
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"github.com/factorable/weakkeys/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	// A 10% scale study with 128-bit keys finishes in a couple of
	// seconds; every pipeline stage is identical to the full run.
	study, err := core.Run(context.Background(), core.Options{
		Seed:           1,
		Scale:          0.10,
		KeyBits:        128,
		Subsets:        4,
		OtherProtocols: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	if err := study.Table1(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	if err := study.Figure(os.Stdout, 1); err != nil {
		log.Fatal(err)
	}

	// The per-vendor view that drives the paper's conclusions: the
	// Juniper vulnerable population kept growing for two years after
	// Juniper's own security advisories.
	fmt.Println()
	if err := study.Figure(os.Stdout, 3); err != nil {
		log.Fatal(err)
	}

	tr := study.Analyzer.Transitions("Juniper")
	fmt.Printf("\nJuniper host transitions over six years: %d IPs ever fingerprinted, %d ever vulnerable,\n", tr.EverTotal, tr.EverVuln)
	fmt.Printf("%d moved vulnerable->safe, %d safe->vulnerable, %d flipped repeatedly.\n", tr.VulnToSafe, tr.SafeToVuln, tr.Multiple)
	fmt.Println("(Compare the paper's Section 4.1: 1,100 / 1,200 / 250 of 34,000 ever-vulnerable.)")

	fmt.Println()
	if err := study.Summary(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

#!/bin/sh
# Serving benchmark: start keyserverd on a small simulated study, drive
# it with keyload, and write BENCH_keyserver.json (p50/p99 latency,
# checks/sec). The rate limiter is disabled — the benchmark measures the
# serving path, not the throttle.
set -eu

DURATION="${BENCH_DURATION:-5s}"
CLIENTS="${BENCH_CLIENTS:-16}"
OUT="${BENCH_OUT:-BENCH_keyserver.json}"

TMP="$(mktemp -d)"
trap 'kill "$KS_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT INT TERM

go build -o "$TMP/keyserverd" ./cmd/keyserverd
go build -o "$TMP/keyload" ./cmd/keyload

"$TMP/keyserverd" -scale 0.05 -bits 128 -subsets 3 -rate 0 \
    -listen 127.0.0.1:0 >"$TMP/stdout" 2>"$TMP/stderr" &
KS_PID=$!

ADDR=""
for _ in $(seq 1 300); do
    ADDR="$(sed -n 's#.*keycheck API on http://\([^/]*\)/v1/check.*#\1#p' "$TMP/stderr" | head -1)"
    [ -n "$ADDR" ] && break
    kill -0 "$KS_PID" 2>/dev/null || { echo "bench-keyserver: keyserverd exited before serving" >&2; cat "$TMP/stderr" >&2; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "bench-keyserver: never saw the API address" >&2; cat "$TMP/stderr" >&2; exit 1; }

"$TMP/keyload" -addr "$ADDR" -c "$CLIENTS" -duration "$DURATION" -json "$OUT"

# The acceptance floor: the service must sustain >= 1000 checks/sec
# locally at this tiny scale.
RATE="$(sed -n 's/.*"checks_per_sec": \([0-9]*\)\..*/\1/p' "$OUT")"
[ -n "$RATE" ] || { echo "bench-keyserver: no checks_per_sec in $OUT" >&2; cat "$OUT" >&2; exit 1; }
[ "$RATE" -ge 1000 ] || { echo "bench-keyserver: $RATE checks/sec below the 1000 floor" >&2; cat "$OUT" >&2; exit 1; }

echo "keyserver bench ok ($RATE checks/sec -> $OUT)"

#!/bin/sh
# Cluster smoke test: three keyserverd replicas (same seed, partial
# placement-owned snapshots) behind keyrouter. A known-weak corpus key
# must come back factored through the router, a known-clean key clean
# and known, a novel key clean and unknown with full shard coverage; a
# routed ingest must land on the home-shard owners and the sync protocol
# must replicate it to every owner; killing one replica must leave the
# cluster serving correct, non-degraded verdicts (replication 2).
set -eu

TMP="$(mktemp -d)"
PIDS=""
trap 'for P in $PIDS; do kill "$P" 2>/dev/null || true; done; rm -rf "$TMP"' EXIT INT TERM

go build -o "$TMP/keyserverd" ./cmd/keyserverd
go build -o "$TMP/keyrouter" ./cmd/keyrouter
go build -o "$TMP/freeport" ./cmd/freeport

# Cluster mode needs the peer list up front, so the ports must be known
# before any server binds; freeport reserves four genuinely free ones.
set -- $("$TMP/freeport" 4)
R1="127.0.0.1:$1"; R2="127.0.0.1:$2"; R3="127.0.0.1:$3"
ROUTER="127.0.0.1:$4"
PEERS="$R1,$R2,$R3"

I=0
for R in $R1 $R2 $R3; do
    I=$((I + 1))
    "$TMP/keyserverd" -scale 0.05 -bits 128 -subsets 3 -seed 2016 -rate 0 \
        -listen "$R" -cluster-self "$R" -cluster-peers "$PEERS" \
        -sync-interval 200ms >"$TMP/r$I.out" 2>"$TMP/r$I.err" &
    PIDS="$PIDS $!"
    eval "PID$I=$!"
done

"$TMP/keyrouter" -listen "$ROUTER" -replicas "$PEERS" \
    >"$TMP/router.out" 2>"$TMP/router.err" &
PIDS="$PIDS $!"

# The router's /readyz turns 200 only once every shard has a usable
# owner, which transitively waits for the replicas' study runs.
READY=""
for _ in $(seq 1 600); do
    if [ "$(curl -s -o /dev/null -w '%{http_code}' "http://$ROUTER/readyz")" = "200" ]; then
        READY=1; break
    fi
    sleep 0.1
done
[ -n "$READY" ] || { echo "cluster-smoke: router never became ready" >&2; cat "$TMP/router.err" "$TMP/r1.err" >&2; exit 1; }

# Baseline per-replica corpus sizes (for the sync-propagation check).
BASELINE=0
for R in $R1 $R2 $R3; do
    M="$(curl -s "http://$R/v1/stats" | sed -n 's/.*"index":{"moduli":\([0-9]*\).*/\1/p')"
    [ -n "$M" ] || { echo "cluster-smoke: no moduli count from $R" >&2; cat "$TMP"/r*.err >&2; exit 1; }
    BASELINE=$((BASELINE + M))
done

# Known-answer keys, pulled from the cluster itself via the router.
curl -sf "http://$ROUTER/v1/exemplars?n=4" >"$TMP/exemplars"
WEAK="$(sed -n 's/.*"factored":\["\([0-9a-f]*\)".*/\1/p' "$TMP/exemplars")"
CLEAN="$(sed -n 's/.*"clean":\["\([0-9a-f]*\)".*/\1/p' "$TMP/exemplars")"
[ -n "$WEAK" ] && [ -n "$CLEAN" ] \
    || { echo "cluster-smoke: no exemplars via router" >&2; cat "$TMP/exemplars" >&2; exit 1; }

# A known-weak corpus key: factored, with factors, one hop, no
# degradation — the home-shard owner answers authoritatively.
curl -sf -X POST -d "{\"modulus_hex\":\"$WEAK\"}" "http://$ROUTER/v1/check" >"$TMP/weak"
grep -q '"status":"factored"' "$TMP/weak" && grep -q '"factor_p_hex"' "$TMP/weak" \
    || { echo "cluster-smoke: weak key not factored via router" >&2; cat "$TMP/weak" >&2; exit 1; }
grep -q '"degraded":true' "$TMP/weak" \
    && { echo "cluster-smoke: healthy cluster answered degraded" >&2; cat "$TMP/weak" >&2; exit 1; }

# A known-clean corpus key: clean and recognized.
curl -sf -X POST -d "{\"modulus_hex\":\"$CLEAN\"}" "http://$ROUTER/v1/check" >"$TMP/clean"
grep -q '"status":"clean"' "$TMP/clean" && grep -q '"known":true' "$TMP/clean" \
    || { echo "cluster-smoke: clean key wrong via router" >&2; cat "$TMP/clean" >&2; exit 1; }

# A novel modulus scatter-gathers the whole corpus: clean, unknown, and
# not degraded (full coverage). The fixture is a semiprime of two
# 128-bit primes so the online anomaly probes cannot break it.
NOVEL=83d10bc678bfd027d37189b7de9afeb8aadb3fb6bb7b9b772d73eccee0c13f21
curl -sf -X POST -d "{\"modulus_hex\":\"$NOVEL\"}" "http://$ROUTER/v1/check" >"$TMP/novel"
grep -q '"status":"clean"' "$TMP/novel" \
    || { echo "cluster-smoke: novel key not clean" >&2; cat "$TMP/novel" >&2; exit 1; }
grep -q '"known":true' "$TMP/novel" \
    && { echo "cluster-smoke: novel key claimed known" >&2; cat "$TMP/novel" >&2; exit 1; }
grep -q '"degraded":true' "$TMP/novel" \
    && { echo "cluster-smoke: novel scatter degraded on a healthy cluster" >&2; cat "$TMP/novel" >&2; exit 1; }

# /cluster/status: three healthy replicas, replication 2, full coverage.
curl -sf "http://$ROUTER/cluster/status" >"$TMP/status"
[ "$(grep -o '"healthy":true' "$TMP/status" | wc -l)" -eq 3 ] \
    || { echo "cluster-smoke: not all replicas healthy" >&2; cat "$TMP/status" >&2; exit 1; }
grep -q '"replication":2' "$TMP/status" \
    || { echo "cluster-smoke: replication != 2" >&2; cat "$TMP/status" >&2; exit 1; }
grep -q '"uncovered_shards"' "$TMP/status" \
    && { echo "cluster-smoke: uncovered shards on a healthy cluster" >&2; cat "$TMP/status" >&2; exit 1; }

# Routed ingest: a fresh weak pair lands on the home-shard owners.
INGEST_W1=801e58579270d8dab1a09cf329cc5a05
INGEST_W2=7eabc8fe480ede7475777dbe615c3dcf
curl -sf -X POST -d "{\"moduli_hex\":[\"$INGEST_W1\",\"$INGEST_W2\"]}" \
    "http://$ROUTER/v1/ingest" >"$TMP/ingest"
grep -q '"delta_moduli":2' "$TMP/ingest" \
    || { echo "cluster-smoke: routed ingest did not land 2 moduli" >&2; cat "$TMP/ingest" >&2; exit 1; }
grep -q '"degraded":true' "$TMP/ingest" \
    && { echo "cluster-smoke: routed ingest degraded" >&2; cat "$TMP/ingest" >&2; exit 1; }

# The ingested key is immediately known through the router (its home
# owner indexed it synchronously).
curl -sf -X POST -d "{\"modulus_hex\":\"$INGEST_W1\"}" "http://$ROUTER/v1/check" >"$TMP/post_ingest"
grep -q '"known":true' "$TMP/post_ingest" \
    || { echo "cluster-smoke: ingested key unknown via router" >&2; cat "$TMP/post_ingest" >&2; exit 1; }

# Sync propagation: each of the 2 ingested keys must end up on every
# owner of its home shard (replication 2), so the summed per-replica
# corpus grows by exactly 4.
WANT=$((BASELINE + 4))
SUM=0
for _ in $(seq 1 150); do
    SUM=0
    for R in $R1 $R2 $R3; do
        M="$(curl -s "http://$R/v1/stats" | sed -n 's/.*"index":{"moduli":\([0-9]*\).*/\1/p')"
        SUM=$((SUM + ${M:-0}))
    done
    [ "$SUM" -ge "$WANT" ] && break
    sleep 0.2
done
[ "$SUM" -eq "$WANT" ] \
    || { echo "cluster-smoke: sync propagation: summed moduli $SUM, want $WANT (baseline $BASELINE + 2 keys x replication 2)" >&2; exit 1; }

# Router telemetry is populated.
curl -sf "http://$ROUTER/metrics" >"$TMP/metrics"
for METRIC in cluster_forward_total 'cluster_http_requests_total{code="200"}'; do
    grep -q "$METRIC" "$TMP/metrics" \
        || { echo "cluster-smoke: /metrics missing $METRIC" >&2; cat "$TMP/metrics" >&2; exit 1; }
done

# Kill one replica: with replication 2 the cluster stays ready and the
# weak verdict stays correct and non-degraded via the surviving owner.
kill -9 "$PID2" 2>/dev/null || true
sleep 1.5
[ "$(curl -s -o /dev/null -w '%{http_code}' "http://$ROUTER/readyz")" = "200" ] \
    || { echo "cluster-smoke: router not ready after losing one of three replicas" >&2; exit 1; }
curl -sf -X POST -d "{\"modulus_hex\":\"$WEAK\"}" "http://$ROUTER/v1/check" >"$TMP/weak2"
grep -q '"status":"factored"' "$TMP/weak2" \
    || { echo "cluster-smoke: weak key lost after replica death" >&2; cat "$TMP/weak2" >&2; exit 1; }
grep -q '"degraded":true' "$TMP/weak2" \
    && { echo "cluster-smoke: verdict degraded though a surviving owner holds the shard" >&2; cat "$TMP/weak2" >&2; exit 1; }

echo "cluster smoke ok (routing+scatter+ingest+sync+failover correct via $ROUTER)"

#!/bin/sh
# Scan-engine smoke test: zscand sweeps a faulty simulated fleet in
# permutation order and feeds everything it harvests into a live
# keyserverd. The end-to-end claim under test: a weak fleet modulus the
# server has never seen flips from clean/unknown to factored purely
# through the scan -> delta checkpoint -> continuous-ingest path, with
# no keyserverd restart. Chaos (-chaos-every 2) faults every device on
# cycle 1 so the ZMap loss model — recover by re-sweeping, never retry
# in place — is what actually delivers the harvest.
set -eu

TMP="$(mktemp -d)"
trap 'kill "$KS_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT INT TERM

go build -o "$TMP/keyserverd" ./cmd/keyserverd
go build -o "$TMP/zscand" ./cmd/zscand

# -listen :0 picks a free port; the address is parsed from the startup
# log. The server's simulated corpus uses 128-bit keys, disjoint from
# the 256-bit fleet keys the scan will harvest.
"$TMP/keyserverd" -scale 0.05 -bits 128 -subsets 3 -listen 127.0.0.1:0 \
    >"$TMP/ks.out" 2>"$TMP/ks.err" &
KS_PID=$!

ADDR=""
for _ in $(seq 1 300); do
    ADDR="$(sed -n 's#.*keycheck API on http://\([^/]*\)/v1/check.*#\1#p' "$TMP/ks.err" | head -1)"
    [ -n "$ADDR" ] && break
    kill -0 "$KS_PID" 2>/dev/null || { echo "scan-smoke: keyserverd exited before serving" >&2; cat "$TMP/ks.err" >&2; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "scan-smoke: never saw the API address" >&2; cat "$TMP/ks.err" >&2; exit 1; }

# The fleet plan is deterministic in its seed, so a -dry-run names the
# weak moduli the scan is about to discover — known answers for the
# verdict-flip check below.
FLEET="-space 65536 -devices 48 -vulnerable 0.5 -bits 256 -fleet-seed 2016"
"$TMP/zscand" $FLEET -dry-run -json "$TMP/plan.json" -q
EXEMPLAR="$(sed -n '/"weak_exemplars"/,/\]/p' "$TMP/plan.json" \
    | sed -n 's/^[[:space:]]*"\([0-9a-f]*\)".*/\1/p' | head -1)"
[ -n "$EXEMPLAR" ] || { echo "scan-smoke: no weak exemplar in the fleet plan" >&2; cat "$TMP/plan.json" >&2; exit 1; }

# Before the scan the server must know nothing about the fleet.
curl -sf -X POST -d "{\"modulus_hex\":\"$EXEMPLAR\"}" "http://$ADDR/v1/check" >"$TMP/pre"
grep -q '"status":"clean"' "$TMP/pre" && grep -q '"known":false' "$TMP/pre" \
    || { echo "scan-smoke: fleet exemplar already known before the scan" >&2; cat "$TMP/pre" >&2; exit 1; }

# Sweep the fleet: 2 cycles so the chaos faults of cycle 1 (every
# device resets its first connection) are recovered by cycle 2's
# re-sweep, delta checkpoints every 8 observations, harvested moduli
# bridged straight into the live server's /v1/ingest.
"$TMP/zscand" $FLEET -seed 1 -cycles 2 -chaos-every 2 \
    -checkpoint-dir "$TMP/ckpt" -checkpoint-every 8 \
    -ingest-url "http://$ADDR/v1/ingest" \
    -json "$TMP/scan.json" >"$TMP/scan.log" 2>&1 \
    || { echo "scan-smoke: zscand failed" >&2; cat "$TMP/scan.log" >&2; exit 1; }

# The harvest must be complete despite the chaos: 48 devices stored.
grep -q '"stored": 48' "$TMP/scan.json" \
    || { echo "scan-smoke: incomplete harvest" >&2; cat "$TMP/scan.json" >&2; exit 1; }
grep -q '"novel_moduli": 48' "$TMP/scan.json" \
    || { echo "scan-smoke: wrong novel-moduli count" >&2; cat "$TMP/scan.json" >&2; exit 1; }

# Delta checkpoints were written (48 stored at every-8 -> 6 segments).
N_DELTA="$(ls "$TMP/ckpt"/zscan-*.delta 2>/dev/null | wc -l)"
[ "$N_DELTA" -ge 6 ] \
    || { echo "scan-smoke: only $N_DELTA delta checkpoints, want >= 6" >&2; ls -l "$TMP/ckpt" >&2; exit 1; }

# The bridge must have delivered everything it was offered — no drops.
grep -q '"dropped": 0' "$TMP/scan.json" \
    || { echo "scan-smoke: ingest bridge dropped moduli" >&2; cat "$TMP/scan.json" >&2; exit 1; }
grep -q '"delivered": 48' "$TMP/scan.json" \
    || { echo "scan-smoke: ingest bridge did not deliver all 48 moduli" >&2; cat "$TMP/scan.json" >&2; exit 1; }

# The payoff: the same modulus now comes back factored, with factors,
# from the same keyserverd process — no restart, no reload.
kill -0 "$KS_PID" 2>/dev/null \
    || { echo "scan-smoke: keyserverd died during the scan" >&2; cat "$TMP/ks.err" >&2; exit 1; }
curl -sf -X POST -d "{\"modulus_hex\":\"$EXEMPLAR\"}" "http://$ADDR/v1/check" >"$TMP/post"
grep -q '"status":"factored"' "$TMP/post" && grep -q '"factor_p_hex"' "$TMP/post" \
    || { echo "scan-smoke: scanned weak key not factored after ingest" >&2; cat "$TMP/post" >&2; exit 1; }

# Server-side accounting agrees: the ingest endpoint factored keys.
curl -sf "http://$ADDR/metrics" >"$TMP/metrics"
grep -q 'keycheck_ingest_total{outcome="ok"}' "$TMP/metrics" \
    || { echo "scan-smoke: server recorded no successful ingest" >&2; exit 1; }

echo "scan-smoke ok (chaos sweep -> $N_DELTA delta checkpoints -> ingest flipped a live verdict at $ADDR)"

#!/bin/sh
# Chaos smoke test: run both binaries under seeded fault injection and
# assert the resilience machinery actually engaged and actually
# recovered.
#
#  1. scanmock with -chaos-every 2: every device resets its first
#     connection (a 50% injected transient-fault rate). The scanner's
#     retry loop must harvest the complete fleet anyway, and the retry
#     ledger must show up in the metrics snapshot.
#  2. weakkeys with two injected GCD node crashes (one per phase): the
#     supervisor must reassign the dead nodes' subsets and the study
#     output must be byte-for-byte identical to the fault-free run of
#     the same seed, with the reassignments observable via /metrics.
set -eu

TMP="$(mktemp -d)"
WK_PID=""
trap 'kill "$WK_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT INT TERM

go build -o "$TMP/weakkeys" ./cmd/weakkeys
go build -o "$TMP/scanmock" ./cmd/scanmock

# --- 1. retrying scanner vs faulty fleet -------------------------------
# -key-seed pins the fleet's keys: with a time-based seed the entropy-
# hole model occasionally collides both primes of two vulnerable
# devices, deduping 4 weak moduli into 3 and flaking the count below.
"$TMP/scanmock" -devices 12 -vulnerable 4 -chaos-every 2 -key-seed 7 -metrics \
    >"$TMP/scan.out" 2>"$TMP/scan.err"
grep -q 'harvested 12 certificates' "$TMP/scan.out" \
    || { echo "chaos-smoke: retries did not recover the fleet" >&2; cat "$TMP/scan.out" >&2; exit 1; }
grep -q '12 targets needed retries, 12 recovered' "$TMP/scan.out" \
    || { echo "chaos-smoke: retry summary wrong" >&2; cat "$TMP/scan.out" >&2; exit 1; }
grep -q 'scanner_retries_total{cause="reset"} 12' "$TMP/scan.err" \
    || { echo "chaos-smoke: retry counter not in metrics snapshot" >&2; cat "$TMP/scan.err" >&2; exit 1; }
grep -q 'factored 4 keys' "$TMP/scan.out" \
    || { echo "chaos-smoke: batch GCD output wrong under chaos" >&2; cat "$TMP/scan.out" >&2; exit 1; }

# --- 2. supervised distributed GCD vs node crashes ---------------------
"$TMP/weakkeys" -q -scale 0.05 -bits 128 -subsets 3 -table 1 >"$TMP/clean.out"

"$TMP/weakkeys" -scale 0.05 -bits 128 -subsets 3 -table 1 \
    -gcd-crash build:0 -gcd-crash reduce:1 \
    -listen 127.0.0.1:0 -hold 30s \
    >"$TMP/chaos.out" 2>"$TMP/chaos.err" &
WK_PID=$!

ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's#.*diagnostics on http://\([^/]*\)/metrics.*#\1#p' "$TMP/chaos.err" | head -1)"
    [ -n "$ADDR" ] && break
    kill -0 "$WK_PID" 2>/dev/null || { echo "chaos-smoke: weakkeys exited before binding diagnostics" >&2; cat "$TMP/chaos.err" >&2; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "chaos-smoke: never saw the diagnostics address" >&2; exit 1; }

OK=""
for _ in $(seq 1 300); do
    if curl -sf "http://$ADDR/metrics" >"$TMP/metrics" 2>/dev/null \
        && awk '$1 == "distgcd_node_reassignments_total" && $2 + 0 == 2 { found = 1 } END { exit !found }' "$TMP/metrics" \
        && awk '$1 == "distgcd_node_failures_total" && $2 + 0 == 2 { found = 1 } END { exit !found }' "$TMP/metrics"; then
        OK=1
        break
    fi
    sleep 0.1
done
[ -n "$OK" ] || { echo "chaos-smoke: reassignment counters never reached 2 on /metrics" >&2; cat "$TMP/metrics" 2>/dev/null >&2; exit 1; }

# The counters fire mid-run; the summary log line only appears once the
# pipeline completes, so wait for it separately.
OK=""
for _ in $(seq 1 300); do
    if grep -q 'supervisor reassigned 2 subset(s)' "$TMP/chaos.err"; then
        OK=1
        break
    fi
    kill -0 "$WK_PID" 2>/dev/null || break
    sleep 0.1
done
[ -n "$OK" ] || { echo "chaos-smoke: supervisor log line missing" >&2; cat "$TMP/chaos.err" >&2; exit 1; }

# The supervisor line precedes the table render; killing now can
# truncate chaos.out mid-table. The -hold log line is emitted only
# after all stdout is written, so wait for it before killing.
OK=""
for _ in $(seq 1 300); do
    if grep -q 'holding diagnostics server' "$TMP/chaos.err"; then
        OK=1
        break
    fi
    kill -0 "$WK_PID" 2>/dev/null || break
    sleep 0.1
done
[ -n "$OK" ] || { echo "chaos-smoke: run never reached the -hold window" >&2; cat "$TMP/chaos.err" >&2; exit 1; }

kill "$WK_PID" 2>/dev/null || true
wait "$WK_PID" 2>/dev/null || true
WK_PID=""

cmp -s "$TMP/clean.out" "$TMP/chaos.out" \
    || { echo "chaos-smoke: chaos study output differs from fault-free run" >&2; diff "$TMP/clean.out" "$TMP/chaos.out" >&2 || true; exit 1; }

echo "chaos smoke ok (12/12 targets recovered by retry; 2 GCD subsets reassigned, output identical to fault-free)"

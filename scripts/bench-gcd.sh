#!/bin/sh
# Batch-GCD kernel benchmark: run the full product-tree + remainder-tree
# + GCD-sweep pipeline on pooled kernel engines of increasing width and
# write BENCH_gcd.json. Two acceptance floors:
#   - scaling: the GOMAXPROCS-wide engine must be >=2x faster than the
#     1-worker serial baseline — enforced only on machines with >=4
#     cores (narrower boxes record the curve but cannot demonstrate it);
#   - allocations: arena recycling must allocate strictly less than the
#     same run with recycling disabled (pre-refactor behaviour) — this
#     holds on any core count and is always enforced.
set -eu

MODULI="${BENCH_MODULI:-20000}"
RUNS="${BENCH_RUNS:-2}"
OUT="${BENCH_OUT:-BENCH_gcd.json}"

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT INT TERM

go build -o "$TMP/gcdbench" ./cmd/gcdbench

"$TMP/gcdbench" -moduli "$MODULI" -runs "$RUNS" -json "$OUT"

CORES="$(sed -n 's/.*"cores": \([0-9]*\).*/\1/p' "$OUT")"
SPEEDUP="$(sed -n 's/.*"speedup": \([0-9]*\).*/\1/p' "$OUT")"
PAR_ALLOCS="$(sed -n 's/.*"parallel_allocs": \([0-9]*\).*/\1/p' "$OUT")"
NOARENA_ALLOCS="$(sed -n 's/.*"noarena_allocs": \([0-9]*\).*/\1/p' "$OUT")"

[ -n "$CORES" ] && [ -n "$SPEEDUP" ] && [ -n "$PAR_ALLOCS" ] && [ -n "$NOARENA_ALLOCS" ] || {
	echo "bench-gcd: missing fields in $OUT" >&2
	cat "$OUT" >&2
	exit 1
}

if [ "$CORES" -ge 4 ]; then
	[ "$SPEEDUP" -ge 2 ] || {
		echo "bench-gcd: ${SPEEDUP}x below the 2x floor on $CORES cores" >&2
		cat "$OUT" >&2
		exit 1
	}
	echo "gcd bench scaling ok (${SPEEDUP}x over serial on $CORES cores)"
else
	echo "gcd bench: $CORES core(s) < 4, scaling floor not applicable (recorded curve only)"
fi

[ "$NOARENA_ALLOCS" -gt "$PAR_ALLOCS" ] || {
	echo "bench-gcd: arena run allocated $PAR_ALLOCS, no-arena $NOARENA_ALLOCS — arenas not saving allocations" >&2
	cat "$OUT" >&2
	exit 1
}

echo "gcd bench ok (arenas: $PAR_ALLOCS allocs vs $NOARENA_ALLOCS without -> $OUT)"

#!/bin/sh
# Cluster chaos test: keyload drives sustained check traffic through
# keyrouter while one of the three replicas is SIGKILLed mid-run. With
# replication 2, retrying keyload and a failing-over router, the run
# must finish with zero lost verdicts — every check answered, errors 0 —
# and the router's telemetry must show it actually absorbed the failure.
set -eu

TMP="$(mktemp -d)"
PIDS=""
trap 'for P in $PIDS; do kill "$P" 2>/dev/null || true; done; rm -rf "$TMP"' EXIT INT TERM

go build -o "$TMP/keyserverd" ./cmd/keyserverd
go build -o "$TMP/keyrouter" ./cmd/keyrouter
go build -o "$TMP/keyload" ./cmd/keyload
go build -o "$TMP/freeport" ./cmd/freeport

# The peer list is fixed up front, so reserve free ports first.
set -- $("$TMP/freeport" 4)
R1="127.0.0.1:$1"; R2="127.0.0.1:$2"; R3="127.0.0.1:$3"
ROUTER="127.0.0.1:$4"
PEERS="$R1,$R2,$R3"

I=0
for R in $R1 $R2 $R3; do
    I=$((I + 1))
    "$TMP/keyserverd" -scale 0.05 -bits 128 -subsets 3 -seed 2016 -rate 0 \
        -listen "$R" -cluster-self "$R" -cluster-peers "$PEERS" \
        >"$TMP/r$I.out" 2>"$TMP/r$I.err" &
    PIDS="$PIDS $!"
    eval "PID$I=$!"
done

"$TMP/keyrouter" -listen "$ROUTER" -replicas "$PEERS" \
    >"$TMP/router.out" 2>"$TMP/router.err" &
PIDS="$PIDS $!"

READY=""
for _ in $(seq 1 600); do
    if [ "$(curl -s -o /dev/null -w '%{http_code}' "http://$ROUTER/readyz")" = "200" ]; then
        READY=1; break
    fi
    sleep 0.1
done
[ -n "$READY" ] || { echo "cluster-chaos: router never became ready" >&2; cat "$TMP/router.err" "$TMP/r1.err" >&2; exit 1; }

# Load for 8s; the victim dies ~2s in, so three quarters of the run
# happens against a degraded-membership (but fully covered) cluster.
"$TMP/keyload" -addr "$ROUTER" -c 8 -duration 8s -retries 8 \
    -bench-name cluster-chaos -json "$TMP/chaos.json" >"$TMP/keyload.out" 2>&1 &
LOAD_PID=$!
PIDS="$PIDS $LOAD_PID"

sleep 2
kill -9 "$PID2" 2>/dev/null || true
echo "cluster-chaos: SIGKILLed replica $R2 mid-run"

wait "$LOAD_PID" || { echo "cluster-chaos: keyload failed" >&2; cat "$TMP/keyload.out" >&2; exit 1; }
cat "$TMP/keyload.out"

CHECKS="$(sed -n 's/.*"checks": \([0-9]*\).*/\1/p' "$TMP/chaos.json")"
ERRORS="$(sed -n 's/.*"errors": \([0-9]*\).*/\1/p' "$TMP/chaos.json")"
[ -n "$CHECKS" ] && [ "$CHECKS" -gt 0 ] \
    || { echo "cluster-chaos: no checks recorded" >&2; cat "$TMP/chaos.json" >&2; exit 1; }
[ "$ERRORS" = "0" ] \
    || { echo "cluster-chaos: $ERRORS lost verdicts out of $CHECKS" >&2; cat "$TMP/chaos.json" >&2; exit 1; }

# The router must still be fully covered (replication 2 survives one
# loss) and must have noticed the death: probes failing against the
# victim and /cluster/status carrying exactly one unhealthy replica.
# (Whether a forward retry fired is placement-dependent — the victim is
# only hit if it is a preferred owner for the exercised shards, which
# varies with the freeport-chosen ports — so retries are pinned by the
# deterministic router tests, not asserted here.)
[ "$(curl -s -o /dev/null -w '%{http_code}' "http://$ROUTER/readyz")" = "200" ] \
    || { echo "cluster-chaos: router not ready after the kill" >&2; exit 1; }
curl -sf "http://$ROUTER/metrics" >"$TMP/metrics"
grep -q "cluster_probe_failures_total{replica=\"$R2\"}" "$TMP/metrics" \
    || { echo "cluster-chaos: no probe failures recorded for the dead replica" >&2; cat "$TMP/metrics" >&2; exit 1; }
curl -sf "http://$ROUTER/cluster/status" >"$TMP/status"
[ "$(grep -o '"healthy":false' "$TMP/status" | wc -l)" -eq 1 ] \
    || { echo "cluster-chaos: dead replica not marked unhealthy" >&2; cat "$TMP/status" >&2; exit 1; }
[ "$(grep -o '"healthy":true' "$TMP/status" | wc -l)" -eq 2 ] \
    || { echo "cluster-chaos: surviving replicas not both healthy" >&2; cat "$TMP/status" >&2; exit 1; }

echo "cluster chaos ok ($CHECKS checks, 0 lost verdicts through a replica SIGKILL)"

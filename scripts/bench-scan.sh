#!/bin/sh
# Scan-engine benchmark: scanbench sweeps a simulated fleet unpaced and
# audits the permutation's sharding guarantees, writing BENCH_scan.json.
# Floors:
#   - throughput: >= 50000 probes/sec single-process (the engine's own
#     overhead — permutation stepping, window accounting, harvest
#     dispatch — must never be the bottleneck of a paced scan);
#   - shard audit: a 2-shard walk of the full space must show zero
#     overlap and zero omission, exactly;
#   - shard sweep: two concurrent shard engines must harvest every
#     fleet device exactly once between them.
set -eu

SPACE="${BENCH_SPACE:-2097152}"
DEVICES="${BENCH_DEVICES:-256}"
RUNS="${BENCH_RUNS:-2}"
OUT="${BENCH_OUT:-BENCH_scan.json}"

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT INT TERM

go build -o "$TMP/scanbench" ./cmd/scanbench

"$TMP/scanbench" -space "$SPACE" -devices "$DEVICES" -runs "$RUNS" -json "$OUT"

RATE="$(sed -n 's/.*"probes_per_sec": \([0-9]*\).*/\1/p' "$OUT")"
COVERED="$(sed -n 's/.*"covered": \([0-9]*\).*/\1/p' "$OUT")"
OVERLAP="$(sed -n 's/.*"overlap": \([0-9]*\).*/\1/p' "$OUT")"
OMISSION="$(sed -n 's/.*"omission": \([0-9]*\).*/\1/p' "$OUT")"
HARVESTED="$(sed -n 's/.*"harvested": \([0-9]*\).*/\1/p' "$OUT")"
DUPES="$(sed -n 's/.*"duplicate_devices": \([0-9]*\).*/\1/p' "$OUT")"

[ -n "$RATE" ] && [ -n "$COVERED" ] && [ -n "$OVERLAP" ] && [ -n "$OMISSION" ] \
    && [ -n "$HARVESTED" ] && [ -n "$DUPES" ] || {
	echo "bench-scan: missing fields in $OUT" >&2
	cat "$OUT" >&2
	exit 1
}

[ "$RATE" -ge 50000 ] || {
	echo "bench-scan: $RATE probes/sec below the 50000 floor" >&2
	cat "$OUT" >&2
	exit 1
}

[ "$COVERED" -eq "$SPACE" ] && [ "$OVERLAP" -eq 0 ] && [ "$OMISSION" -eq 0 ] || {
	echo "bench-scan: shard audit covered=$COVERED overlap=$OVERLAP omission=$OMISSION over $SPACE addresses — partition broken" >&2
	cat "$OUT" >&2
	exit 1
}

[ "$HARVESTED" -eq "$DEVICES" ] && [ "$DUPES" -eq 0 ] || {
	echo "bench-scan: shard sweep harvested $HARVESTED of $DEVICES devices with $DUPES duplicates" >&2
	cat "$OUT" >&2
	exit 1
}

echo "scan bench ok ($RATE probes/sec; 2-shard audit exact over $SPACE addresses -> $OUT)"

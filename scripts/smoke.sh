#!/bin/sh
# Telemetry smoke test: run weakkeys at small scale with the diagnostics
# server, the trace export and the -metrics report all enabled, curl
# /metrics once while the server is up, and assert the scrape is
# populated from several packages and the trace file is valid JSON.
set -eu

TMP="$(mktemp -d)"
trap 'kill "$WK_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT INT TERM

go build -o "$TMP/weakkeys" ./cmd/weakkeys

# -hold keeps the server up after the short run so the scrape cannot
# race run completion; -listen :0 avoids port collisions (the chosen
# address is parsed from the log line).
"$TMP/weakkeys" -scale 0.05 -bits 128 -subsets 3 \
    -listen 127.0.0.1:0 -hold 30s \
    -trace "$TMP/trace.json" -metrics -table 1 \
    >"$TMP/stdout" 2>"$TMP/stderr" &
WK_PID=$!

ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's#.*diagnostics on http://\([^/]*\)/metrics.*#\1#p' "$TMP/stderr" | head -1)"
    [ -n "$ADDR" ] && break
    kill -0 "$WK_PID" 2>/dev/null || { echo "smoke: weakkeys exited before binding diagnostics" >&2; cat "$TMP/stderr" >&2; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "smoke: never saw the diagnostics address" >&2; cat "$TMP/stderr" >&2; exit 1; }

# Poll /metrics until the run has progressed enough to populate the
# pipeline gauges (the -hold window guarantees the server outlives the run).
OK=""
for _ in $(seq 1 300); do
    if curl -sf "http://$ADDR/metrics" >"$TMP/metrics" 2>/dev/null \
        && grep -q '^pipeline_stages_completed_total' "$TMP/metrics" \
        && grep -q '^population_months_done' "$TMP/metrics" \
        && grep -q '^distgcd_moduli' "$TMP/metrics" \
        && grep -q '^core_runs_total' "$TMP/metrics"; then
        OK=1
        break
    fi
    sleep 0.1
done
[ -n "$OK" ] || { echo "smoke: /metrics never showed telemetry from all packages" >&2; cat "$TMP/metrics" 2>/dev/null >&2; exit 1; }
[ -s "$TMP/metrics" ] || { echo "smoke: /metrics empty" >&2; exit 1; }

curl -sf "http://$ADDR/debug/vars" | grep -q '"memstats"' \
    || { echo "smoke: /debug/vars missing memstats" >&2; exit 1; }

kill "$WK_PID" 2>/dev/null || true
wait "$WK_PID" 2>/dev/null || true

# The trace must exist, be valid JSON, and contain nested spans.
[ -s "$TMP/trace.json" ] || { echo "smoke: trace file missing/empty" >&2; exit 1; }
grep -q '"traceEvents"' "$TMP/trace.json" || { echo "smoke: no traceEvents" >&2; exit 1; }
grep -q '"name":"pipeline"' "$TMP/trace.json" || { echo "smoke: no pipeline span" >&2; exit 1; }
grep -q '"name":"node0.build"' "$TMP/trace.json" || { echo "smoke: no per-node span" >&2; exit 1; }

# The -metrics report must include the rate/bytes columns.
grep -q 'rate' "$TMP/stdout" || { echo "smoke: -metrics report missing rate column" >&2; cat "$TMP/stdout" >&2; exit 1; }

echo "telemetry smoke ok ($(wc -l <"$TMP/metrics") metric lines from $ADDR)"

#!/bin/sh
# Cluster serving benchmark: three keyserverd replicas behind keyrouter,
# driven by keyload through the router. Writes BENCH_cluster.json with
# the aggregate routed throughput (floor: 1000 checks/sec).
set -eu

DURATION="${BENCH_DURATION:-5s}"
CLIENTS="${BENCH_CLIENTS:-16}"
OUT="${BENCH_OUT:-BENCH_cluster.json}"

TMP="$(mktemp -d)"
PIDS=""
trap 'for P in $PIDS; do kill "$P" 2>/dev/null || true; done; rm -rf "$TMP"' EXIT INT TERM

go build -o "$TMP/keyserverd" ./cmd/keyserverd
go build -o "$TMP/keyrouter" ./cmd/keyrouter
go build -o "$TMP/keyload" ./cmd/keyload
go build -o "$TMP/freeport" ./cmd/freeport

# The peer list is fixed up front, so reserve free ports first.
set -- $("$TMP/freeport" 4)
R1="127.0.0.1:$1"; R2="127.0.0.1:$2"; R3="127.0.0.1:$3"
ROUTER="127.0.0.1:$4"
PEERS="$R1,$R2,$R3"

I=0
for R in $R1 $R2 $R3; do
    I=$((I + 1))
    "$TMP/keyserverd" -scale 0.05 -bits 128 -subsets 3 -seed 2016 -rate 0 \
        -listen "$R" -cluster-self "$R" -cluster-peers "$PEERS" \
        >"$TMP/r$I.out" 2>"$TMP/r$I.err" &
    PIDS="$PIDS $!"
done

"$TMP/keyrouter" -listen "$ROUTER" -replicas "$PEERS" \
    >"$TMP/router.out" 2>"$TMP/router.err" &
PIDS="$PIDS $!"

READY=""
for _ in $(seq 1 600); do
    if [ "$(curl -s -o /dev/null -w '%{http_code}' "http://$ROUTER/readyz")" = "200" ]; then
        READY=1; break
    fi
    sleep 0.1
done
[ -n "$READY" ] || { echo "bench-cluster: router never became ready" >&2; cat "$TMP/router.err" "$TMP/r1.err" >&2; exit 1; }

"$TMP/keyload" -addr "$ROUTER" -c "$CLIENTS" -duration "$DURATION" \
    -bench-name cluster -json "$OUT"

# The acceptance floor: the routed cluster must sustain >= 1000
# checks/sec aggregate through the scatter-gather path.
RATE="$(sed -n 's/.*"checks_per_sec": \([0-9]*\)\..*/\1/p' "$OUT")"
[ -n "$RATE" ] || { echo "bench-cluster: no checks_per_sec in $OUT" >&2; cat "$OUT" >&2; exit 1; }
[ "$RATE" -ge 1000 ] || { echo "bench-cluster: $RATE checks/sec below the 1000 floor" >&2; cat "$OUT" >&2; exit 1; }

echo "cluster bench ok ($RATE checks/sec -> $OUT)"

#!/bin/sh
# Anomaly-probe benchmark: sweep the default trial-division + Fermat +
# Pollard-rho probes over a synthetic corpus with planted flaws and
# write BENCH_anomaly.json. Three acceptance floors:
#   - recall: every planted close-prime modulus must come back
#     fermat_weak and every planted small-factor modulus small_factor;
#   - precision: zero false hits on the safe majority;
#   - throughput: >= 100 probes/sec on the pooled engine (the budget
#     that keeps a novel /v1/check probe in the low milliseconds).
set -eu

MODULI="${BENCH_MODULI:-2000}"
RUNS="${BENCH_RUNS:-2}"
OUT="${BENCH_OUT:-BENCH_anomaly.json}"

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT INT TERM

go build -o "$TMP/anomalybench" ./cmd/anomalybench

"$TMP/anomalybench" -moduli "$MODULI" -runs "$RUNS" -json "$OUT"

field() {
	sed -n "s/.*\"$1\": \([0-9]*\).*/\1/p" "$OUT" | head -1
}
FERMAT_PLANTED="$(field fermat_planted)"
FERMAT_FOUND="$(field fermat_found)"
SMALL_PLANTED="$(field small_planted)"
SMALL_FOUND="$(field small_found)"
FALSE_HITS="$(field false_hits)"
RATE="$(field probes_per_sec)"

[ -n "$FERMAT_PLANTED" ] && [ -n "$FERMAT_FOUND" ] && [ -n "$SMALL_PLANTED" ] \
	&& [ -n "$SMALL_FOUND" ] && [ -n "$FALSE_HITS" ] && [ -n "$RATE" ] || {
	echo "bench-anomaly: missing fields in $OUT" >&2
	cat "$OUT" >&2
	exit 1
}

[ "$FERMAT_FOUND" = "$FERMAT_PLANTED" ] || {
	echo "bench-anomaly: fermat recall $FERMAT_FOUND/$FERMAT_PLANTED" >&2
	cat "$OUT" >&2
	exit 1
}
[ "$SMALL_FOUND" = "$SMALL_PLANTED" ] || {
	echo "bench-anomaly: small-factor recall $SMALL_FOUND/$SMALL_PLANTED" >&2
	cat "$OUT" >&2
	exit 1
}
[ "$FALSE_HITS" = "0" ] || {
	echo "bench-anomaly: $FALSE_HITS false hits on safe moduli" >&2
	cat "$OUT" >&2
	exit 1
}
[ "$RATE" -ge 100 ] || {
	echo "bench-anomaly: $RATE probes/sec below the 100/sec floor" >&2
	cat "$OUT" >&2
	exit 1
}

echo "anomaly bench ok ($RATE probes/sec, recall $FERMAT_FOUND+$SMALL_FOUND/$((FERMAT_PLANTED + SMALL_PLANTED)), 0 false hits -> $OUT)"

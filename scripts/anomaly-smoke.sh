#!/bin/sh
# Anomalous-key smoke test: start keyserverd with the -anomaly-fleet
# cohorts (close primes, small factors, e=1, fleet-shared modulus) and
# assert every beyond-GCD verdict class over the HTTP API:
#   - shared_modulus  for a corpus key served under many identities
#                     (pulled live from /v1/exemplars' shared list);
#   - fermat_weak     for a novel close-prime modulus;
#   - small_factor    for a novel modulus with a tiny prime factor;
#   - unsafe_exponent for a clean corpus key submitted with e = 2;
# then check the per-verdict serving telemetry counts all four.
set -eu

TMP="$(mktemp -d)"
trap 'kill "$KS_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT INT TERM

go build -o "$TMP/keyserverd" ./cmd/keyserverd

# The anomalous families are small fleets; -scale 0.3 keeps enough
# CloneGate devices alive that the shared modulus has >=2 identities.
"$TMP/keyserverd" -scale 0.3 -bits 128 -subsets 3 -anomaly-fleet \
    -listen 127.0.0.1:0 >"$TMP/stdout" 2>"$TMP/stderr" &
KS_PID=$!

ADDR=""
for _ in $(seq 1 600); do
    ADDR="$(sed -n 's#.*keycheck API on http://\([^/]*\)/v1/check.*#\1#p' "$TMP/stderr" | head -1)"
    [ -n "$ADDR" ] && break
    kill -0 "$KS_PID" 2>/dev/null || { echo "anomaly-smoke: keyserverd exited before serving" >&2; cat "$TMP/stderr" >&2; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "anomaly-smoke: never saw the API address" >&2; cat "$TMP/stderr" >&2; exit 1; }

# shared_modulus: the exemplars endpoint lists corpus moduli observed
# under >=2 identities — the CloneGate fleet's baked-in keypair.
curl -sf "http://$ADDR/v1/exemplars?n=4" >"$TMP/exemplars" \
    || { echo "anomaly-smoke: /v1/exemplars failed" >&2; exit 1; }
SHARED="$(sed -n 's/.*"shared":\["\([0-9a-f]*\)".*/\1/p' "$TMP/exemplars")"
CLEAN="$(sed -n 's/.*"clean":\["\([0-9a-f]*\)".*/\1/p' "$TMP/exemplars")"
[ -n "$SHARED" ] || { echo "anomaly-smoke: no shared-modulus exemplar from the anomaly fleet" >&2; cat "$TMP/exemplars" >&2; exit 1; }
[ -n "$CLEAN" ] || { echo "anomaly-smoke: no clean exemplar" >&2; cat "$TMP/exemplars" >&2; exit 1; }

curl -sf -X POST -d "{\"modulus_hex\":\"$SHARED\"}" "http://$ADDR/v1/check" >"$TMP/shared"
grep -q '"status":"shared_modulus"' "$TMP/shared" \
    || { echo "anomaly-smoke: shared exemplar not shared_modulus" >&2; cat "$TMP/shared" >&2; exit 1; }
grep -q '"shared_with":' "$TMP/shared" \
    || { echo "anomaly-smoke: shared_modulus verdict missing shared_with" >&2; cat "$TMP/shared" >&2; exit 1; }

# fermat_weak: a novel modulus whose primes are consecutive —
# 0xb504f333f9de64e3 * 0xb504f333f9de650f; the bounded Fermat ascent
# must split it on the spot and return both factors.
FERMAT=80000000000000a4f7f752d5a9af784d
curl -sf -X POST -d "{\"modulus_hex\":\"$FERMAT\"}" "http://$ADDR/v1/check" >"$TMP/fermat"
grep -q '"status":"fermat_weak"' "$TMP/fermat" \
    || { echo "anomaly-smoke: close-prime modulus not fermat_weak" >&2; cat "$TMP/fermat" >&2; exit 1; }
grep -q '"factor_p_hex":"b504f333f9de64e3"' "$TMP/fermat" \
    || { echo "anomaly-smoke: fermat_weak verdict missing the recovered factor" >&2; cat "$TMP/fermat" >&2; exit 1; }

# small_factor: a novel modulus carrying the prime 641 (0x281); trial
# division must pull it out.
SMALL=21a15d2b7cf5a5b74215ef0607a46a72b
curl -sf -X POST -d "{\"modulus_hex\":\"$SMALL\"}" "http://$ADDR/v1/check" >"$TMP/small"
grep -q '"status":"small_factor"' "$TMP/small" \
    || { echo "anomaly-smoke: small-factor modulus not small_factor" >&2; cat "$TMP/small" >&2; exit 1; }
grep -q '"divisor_hex":"281"' "$TMP/small" \
    || { echo "anomaly-smoke: small_factor verdict missing divisor 0x281" >&2; cat "$TMP/small" >&2; exit 1; }

# unsafe_exponent: the same clean corpus key is fine alone but broken
# as used when the submission carries an even exponent.
curl -sf -X POST -d "{\"modulus_hex\":\"$CLEAN\",\"exponent_hex\":\"2\"}" "http://$ADDR/v1/check" >"$TMP/unsafe"
grep -q '"status":"unsafe_exponent"' "$TMP/unsafe" \
    || { echo "anomaly-smoke: e=2 submission not unsafe_exponent" >&2; cat "$TMP/unsafe" >&2; exit 1; }
grep -q '"exponent_class":"even"' "$TMP/unsafe" \
    || { echo "anomaly-smoke: unsafe_exponent verdict missing exponent_class" >&2; cat "$TMP/unsafe" >&2; exit 1; }

# A conventional exponent must not flip the verdict.
curl -sf -X POST -d "{\"modulus_hex\":\"$CLEAN\",\"exponent_hex\":\"10001\"}" "http://$ADDR/v1/check" >"$TMP/clean_e"
grep -q '"status":"clean"' "$TMP/clean_e" \
    || { echo "anomaly-smoke: e=65537 submission no longer clean" >&2; cat "$TMP/clean_e" >&2; exit 1; }

# The serving telemetry must count each new verdict class.
curl -sf "http://$ADDR/metrics" >"$TMP/metrics"
for VERDICT in shared_modulus fermat_weak small_factor unsafe_exponent; do
    grep "keycheck_checks_total{verdict=\"$VERDICT\"}" "$TMP/metrics" | grep -qv ' 0$' \
        || { echo "anomaly-smoke: /metrics did not count $VERDICT" >&2; grep keycheck_checks_total "$TMP/metrics" >&2; exit 1; }
done

kill "$KS_PID" 2>/dev/null || true
wait "$KS_PID" 2>/dev/null || true

echo "anomaly smoke ok (shared_modulus+fermat_weak+small_factor+unsafe_exponent flows correct at $ADDR)"

#!/bin/sh
# Key-check service smoke test: start keyserverd on a small simulated
# study, ask it about one known-weak and one known-clean corpus key (via
# /v1/exemplars, so the test needs no corpus file), reject a malformed
# submission, assert the serving telemetry is populated, follow an
# ingest's request ID into /debug/events and /debug/requests, and verify
# /debug/bundle round-trips as a gzipped tar.
set -eu

TMP="$(mktemp -d)"
trap 'kill "$KS_PID" 2>/dev/null || true; rm -rf "$TMP"' EXIT INT TERM

go build -o "$TMP/keyserverd" ./cmd/keyserverd

# -listen :0 avoids port collisions; the chosen address is parsed from
# the startup log line.
"$TMP/keyserverd" -scale 0.05 -bits 128 -subsets 3 -listen 127.0.0.1:0 \
    >"$TMP/stdout" 2>"$TMP/stderr" &
KS_PID=$!

ADDR=""
for _ in $(seq 1 300); do
    ADDR="$(sed -n 's#.*keycheck API on http://\([^/]*\)/v1/check.*#\1#p' "$TMP/stderr" | head -1)"
    [ -n "$ADDR" ] && break
    kill -0 "$KS_PID" 2>/dev/null || { echo "keyserver-smoke: keyserverd exited before serving" >&2; cat "$TMP/stderr" >&2; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "keyserver-smoke: never saw the API address" >&2; cat "$TMP/stderr" >&2; exit 1; }

# Pull known-answer keys out of the served corpus.
curl -sf "http://$ADDR/v1/exemplars?n=4" >"$TMP/exemplars" \
    || { echo "keyserver-smoke: /v1/exemplars failed" >&2; exit 1; }
WEAK="$(sed -n 's/.*"factored":\["\([0-9a-f]*\)".*/\1/p' "$TMP/exemplars")"
CLEAN="$(sed -n 's/.*"clean":\["\([0-9a-f]*\)".*/\1/p' "$TMP/exemplars")"
[ -n "$WEAK" ] || { echo "keyserver-smoke: no factored exemplar" >&2; cat "$TMP/exemplars" >&2; exit 1; }
[ -n "$CLEAN" ] || { echo "keyserver-smoke: no clean exemplar" >&2; cat "$TMP/exemplars" >&2; exit 1; }

# A known-weak corpus key must come back factored, with its factors.
curl -sf -X POST -d "{\"modulus_hex\":\"$WEAK\"}" "http://$ADDR/v1/check" >"$TMP/weak"
grep -q '"status":"factored"' "$TMP/weak" \
    || { echo "keyserver-smoke: weak key not factored" >&2; cat "$TMP/weak" >&2; exit 1; }
grep -q '"factor_p_hex"' "$TMP/weak" \
    || { echo "keyserver-smoke: factored verdict missing factors" >&2; cat "$TMP/weak" >&2; exit 1; }

# A clean corpus key must come back clean but known.
curl -sf -X POST -d "{\"modulus_hex\":\"$CLEAN\"}" "http://$ADDR/v1/check" >"$TMP/clean"
grep -q '"status":"clean"' "$TMP/clean" \
    || { echo "keyserver-smoke: clean key not clean" >&2; cat "$TMP/clean" >&2; exit 1; }
grep -q '"known":true' "$TMP/clean" \
    || { echo "keyserver-smoke: corpus key not recognized as known" >&2; cat "$TMP/clean" >&2; exit 1; }

# Malformed submissions are a 400, not a 500.
CODE="$(curl -s -o "$TMP/bad" -w '%{http_code}' -X POST -d '{"modulus_hex":"nothex"}' "http://$ADDR/v1/check")"
[ "$CODE" = "400" ] || { echo "keyserver-smoke: malformed submission got HTTP $CODE" >&2; cat "$TMP/bad" >&2; exit 1; }

# Live ingestion: a fresh weak pair (two 128-bit moduli sharing the
# 64-bit prime 0xad78dc4bfb9e8ddb, disjoint from the simulated corpus)
# must flip from unknown-clean to factored without a restart.
INGEST_W1=801e58579270d8dab1a09cf329cc5a05
INGEST_W2=7eabc8fe480ede7475777dbe615c3dcf
curl -sf -X POST -d "{\"modulus_hex\":\"$INGEST_W1\"}" "http://$ADDR/v1/check" >"$TMP/pre_ingest"
grep -q '"status":"clean"' "$TMP/pre_ingest" && grep -q '"known":false' "$TMP/pre_ingest" \
    || { echo "keyserver-smoke: fresh key already known before ingest" >&2; cat "$TMP/pre_ingest" >&2; exit 1; }
curl -sf -D "$TMP/ingest_hdrs" -H 'X-Request-Id: smoke-ingest-1' \
    -X POST -d "{\"moduli_hex\":[\"$INGEST_W1\",\"$INGEST_W2\"]}" "http://$ADDR/v1/ingest" >"$TMP/ingest"
grep -q '"delta_moduli":2' "$TMP/ingest" && grep -q '"new_factored":2' "$TMP/ingest" \
    || { echo "keyserver-smoke: ingest did not factor the weak pair" >&2; cat "$TMP/ingest" >&2; exit 1; }
grep -qi '^x-request-id: smoke-ingest-1' "$TMP/ingest_hdrs" \
    || { echo "keyserver-smoke: ingest response did not echo X-Request-Id" >&2; cat "$TMP/ingest_hdrs" >&2; exit 1; }
curl -sf -X POST -d "{\"modulus_hex\":\"$INGEST_W1\"}" "http://$ADDR/v1/check" >"$TMP/post_ingest"
grep -q '"status":"factored"' "$TMP/post_ingest" && grep -q '"factor_p_hex"' "$TMP/post_ingest" \
    || { echo "keyserver-smoke: ingested weak key not factored" >&2; cat "$TMP/post_ingest" >&2; exit 1; }

# /v1/stats and /metrics must reflect the checks just served.
curl -sf "http://$ADDR/v1/stats" | grep -q '"index"' \
    || { echo "keyserver-smoke: /v1/stats malformed" >&2; exit 1; }
curl -sf "http://$ADDR/metrics" >"$TMP/metrics"
for METRIC in 'keycheck_checks_total{verdict="factored"}' \
              'keycheck_checks_total{verdict="clean"}' \
              'keycheck_http_requests_total{code="200"}' \
              'keycheck_http_requests_total{code="400"}' \
              'keycheck_ingest_total{outcome="ok"}' \
              'keycheck_index_moduli' 'keycheck_shard_moduli'; do
    grep -q "$METRIC" "$TMP/metrics" \
        || { echo "keyserver-smoke: /metrics missing $METRIC" >&2; cat "$TMP/metrics" >&2; exit 1; }
done

# The flight recorder must hold the ingest's events under the request
# ID the client sent, queryable by that ID.
curl -sf "http://$ADDR/debug/events?request_id=smoke-ingest-1" >"$TMP/events"
grep -q '"msg":"ingest report"' "$TMP/events" \
    || { echo "keyserver-smoke: /debug/events missing the correlated ingest event" >&2; cat "$TMP/events" >&2; exit 1; }
grep -q '"request_id":"smoke-ingest-1"' "$TMP/events" \
    || { echo "keyserver-smoke: /debug/events event lacks the request ID" >&2; cat "$TMP/events" >&2; exit 1; }

# /debug/requests tracks the finished ingest under the same ID.
curl -sf "http://$ADDR/debug/requests" | grep -q '"request_id": "smoke-ingest-1"' \
    || { echo "keyserver-smoke: /debug/requests missing the ingest record" >&2; exit 1; }

# The postmortem bundle must be a valid gzipped tar carrying the
# metrics, the event log and a goroutine dump.
curl -sf "http://$ADDR/debug/bundle" >"$TMP/bundle.tar.gz"
tar -tzf "$TMP/bundle.tar.gz" >"$TMP/bundle_list" \
    || { echo "keyserver-smoke: /debug/bundle is not a valid gzip tar" >&2; exit 1; }
for ENTRY in meta.json metrics.prom events.json requests.json goroutines.txt; do
    grep -q "^$ENTRY\$" "$TMP/bundle_list" \
        || { echo "keyserver-smoke: bundle missing $ENTRY" >&2; cat "$TMP/bundle_list" >&2; exit 1; }
done

kill "$KS_PID" 2>/dev/null || true
wait "$KS_PID" 2>/dev/null || true

# Graceful shutdown must have drained, not aborted.
grep -q 'drained' "$TMP/stderr" \
    || { echo "keyserver-smoke: no graceful drain on SIGTERM" >&2; cat "$TMP/stderr" >&2; exit 1; }

echo "keyserver smoke ok (weak+clean+malformed+ingest+correlation+bundle flows correct at $ADDR)"

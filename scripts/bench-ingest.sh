#!/bin/sh
# Ingestion benchmark: time the full corpus pipeline (batch GCD + factor
# recovery + index build) against Snapshot.Ingest of a 5% delta into the
# prebuilt index, and write BENCH_ingest.json. The acceptance floor is a
# >=5x speedup for the incremental path at ~20k moduli.
set -eu

MODULI="${BENCH_MODULI:-20000}"
DELTA="${BENCH_DELTA:-0.05}"
RUNS="${BENCH_RUNS:-3}"
OUT="${BENCH_OUT:-BENCH_ingest.json}"

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT INT TERM

go build -o "$TMP/ingestbench" ./cmd/ingestbench

"$TMP/ingestbench" -moduli "$MODULI" -delta "$DELTA" -runs "$RUNS" -json "$OUT"

SPEEDUP="$(sed -n 's/.*"speedup": \([0-9]*\)\..*/\1/p' "$OUT")"
[ -n "$SPEEDUP" ] || { echo "bench-ingest: no speedup in $OUT" >&2; cat "$OUT" >&2; exit 1; }
[ "$SPEEDUP" -ge 5 ] || { echo "bench-ingest: ${SPEEDUP}x below the 5x floor" >&2; cat "$OUT" >&2; exit 1; }

echo "ingest bench ok (${SPEEDUP}x faster than full rebuild -> $OUT)"

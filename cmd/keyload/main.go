// Command keyload drives concurrent check traffic against a running
// keyserverd and reports throughput and latency percentiles — the
// repo's serving benchmark, standing in for the "millions of users"
// load the deployed factorable.net service absorbed.
//
// The request mix is drawn from the server's own exemplars (known
// factored and known clean corpus keys) plus freshly generated novel
// moduli that exercise the GCD path:
//
// Transient transport failures (dial refused, connection reset,
// timeout) and backpressure statuses (503/502/504/429) are retried with
// per-worker exponential backoff when -retries is set — the chaos
// harness drives a cluster through a replica SIGKILL and still expects
// zero lost verdicts.
//
//	keyload -addr 127.0.0.1:8446 -c 16 -duration 10s
//	keyload -addr 127.0.0.1:8446 -json BENCH_keyserver.json
//	keyload -addr 127.0.0.1:9000 -retries 8 -bench-name cluster
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/big"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/factorable/weakkeys/internal/scanner"
)

type exemplars struct {
	Factored []string `json:"factored"`
	Clean    []string `json:"clean"`
}

type verdict struct {
	Status string `json:"status"`
}

// result is the machine-readable benchmark document (-json).
type result struct {
	Benchmark   string `json:"benchmark"`
	Concurrency int    `json:"concurrency"`
	Checks      int    `json:"checks"`
	Errors      int    `json:"errors"`
	// Retries counts extra attempts spent recovering checks; a check
	// that eventually succeeded is not an error no matter how many
	// attempts it took. TransportErrors counts attempts that failed
	// before an HTTP status arrived (dial refused, reset, timeout).
	Retries         int            `json:"retries"`
	TransportErrors int            `json:"transport_errors"`
	Seconds         float64        `json:"seconds"`
	ChecksPerSec    float64        `json:"checks_per_sec"`
	P50Ms           float64        `json:"p50_ms"`
	P90Ms           float64        `json:"p90_ms"`
	P99Ms           float64        `json:"p99_ms"`
	MaxMs           float64        `json:"max_ms"`
	Verdicts        map[string]int `json:"verdicts"`
	HTTPCodes       map[int]int    `json:"-"`
	HTTPCodeStr     map[string]int `json:"http_codes"`
	// DroppedRequestIDs samples the X-Request-Id headers of non-2xx
	// responses so a failed run can be cross-referenced against the
	// server's /debug/events?request_id= view.
	DroppedRequestIDs []string `json:"dropped_request_ids,omitempty"`
}

// maxDroppedIDs bounds the per-run sample of failed-request IDs.
const maxDroppedIDs = 16

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:8446", "keyserverd address")
		conc      = flag.Int("c", 16, "concurrent clients")
		duration  = flag.Duration("duration", 5*time.Second, "how long to drive load")
		weakFrac  = flag.Float64("weak-frac", 0.3, "fraction of requests submitting known-factored keys")
		novelFrac = flag.Float64("novel-frac", 0.3, "fraction of requests submitting novel (never-scanned) moduli")
		bits      = flag.Int("bits", 128, "bit size of generated novel moduli")
		seed      = flag.Int64("seed", 1, "novel-modulus generation seed")
		jsonOut   = flag.String("json", "", "write the benchmark result as JSON to this file")
		quiet     = flag.Bool("q", false, "suppress the text report")
		retries   = flag.Int("retries", 0, "retry a failed check up to this many times (transient transport errors and 5xx/429 backpressure)")
		retryWait = flag.Duration("retry-backoff", 25*time.Millisecond, "first retry delay, doubled per attempt")
		benchName = flag.String("bench-name", "keyserver", "benchmark name recorded in the -json result")
	)
	flag.Parse()

	fatal := func(err error) {
		fmt.Fprintln(os.Stderr, "keyload:", err)
		os.Exit(1)
	}

	base := "http://" + *addr
	client := &http.Client{
		Timeout: 10 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        *conc * 2,
			MaxIdleConnsPerHost: *conc * 2,
		},
	}

	ex, err := fetchExemplars(client, base)
	if err != nil {
		fatal(fmt.Errorf("fetching exemplars (is keyserverd up at %s?): %w", *addr, err))
	}
	if len(ex.Factored) == 0 || len(ex.Clean) == 0 {
		fatal(fmt.Errorf("server returned %d factored / %d clean exemplars; need both",
			len(ex.Factored), len(ex.Clean)))
	}

	// The request pool: weak and clean keys straight from the corpus,
	// novel moduli generated locally. Repeats are intentional — the
	// serving workload is heavy-tailed and the verdict cache should see
	// hits, like the real service would.
	novel := genNovel(*seed, *bits, 64)

	type worker struct {
		lat           []time.Duration
		verdicts      map[string]int
		codes         map[int]int
		dropped       []string
		errs          int
		checks        int
		retries       int
		transportErrs int
	}

	// retriable statuses are the backpressure family: the server (or the
	// cluster router fronting it) said "not right now", not "no".
	retriable := func(code int) bool {
		switch code {
		case http.StatusServiceUnavailable, http.StatusTooManyRequests,
			http.StatusBadGateway, http.StatusGatewayTimeout:
			return true
		}
		return false
	}
	workers := make([]worker, *conc)
	deadline := time.Now().Add(*duration)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)*7919))
			wk := &workers[w]
			wk.verdicts = make(map[string]int)
			wk.codes = make(map[int]int)
			for time.Now().Before(deadline) {
				var hex string
				switch u := rng.Float64(); {
				case u < *weakFrac:
					hex = ex.Factored[rng.Intn(len(ex.Factored))]
				case u < *weakFrac+*novelFrac:
					hex = novel[rng.Intn(len(novel))]
				default:
					hex = ex.Clean[rng.Intn(len(ex.Clean))]
				}
				body, _ := json.Marshal(map[string]string{"modulus_hex": hex})
				wk.checks++
				// One logical check; up to -retries extra attempts chase
				// transient weather (a dial refused during a replica
				// restart, a reset from a SIGKILLed peer, backpressure).
				var resp *http.Response
				var err error
				var lat time.Duration
				backoff := *retryWait
				for attempt := 0; ; attempt++ {
					if attempt > 0 {
						wk.retries++
						time.Sleep(backoff)
						backoff *= 2
					}
					t0 := time.Now()
					resp, err = client.Post(base+"/v1/check", "application/json", bytes.NewReader(body))
					lat = time.Since(t0)
					if err != nil {
						wk.transportErrs++
						if attempt < *retries && scanner.Transient(err) {
							continue
						}
						break
					}
					if attempt < *retries && retriable(resp.StatusCode) {
						wk.codes[resp.StatusCode]++
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
						continue
					}
					break
				}
				if err != nil {
					wk.errs++
					continue
				}
				wk.codes[resp.StatusCode]++
				if resp.StatusCode == http.StatusOK {
					var v verdict
					if err := json.NewDecoder(resp.Body).Decode(&v); err == nil {
						wk.verdicts[v.Status]++
					}
					wk.lat = append(wk.lat, lat)
				} else {
					wk.errs++
					if id := resp.Header.Get("X-Request-Id"); id != "" && len(wk.dropped) < maxDroppedIDs {
						wk.dropped = append(wk.dropped, fmt.Sprintf("%d:%s", resp.StatusCode, id))
					}
					io.Copy(io.Discard, resp.Body)
				}
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := result{
		Benchmark:   *benchName,
		Concurrency: *conc,
		Seconds:     elapsed.Seconds(),
		Verdicts:    make(map[string]int),
		HTTPCodes:   make(map[int]int),
	}
	var lats []time.Duration
	for i := range workers {
		wk := &workers[i]
		res.Checks += wk.checks
		res.Errors += wk.errs
		res.Retries += wk.retries
		res.TransportErrors += wk.transportErrs
		lats = append(lats, wk.lat...)
		for k, v := range wk.verdicts {
			res.Verdicts[k] += v
		}
		for k, v := range wk.codes {
			res.HTTPCodes[k] += v
		}
		for _, id := range wk.dropped {
			if len(res.DroppedRequestIDs) < maxDroppedIDs {
				res.DroppedRequestIDs = append(res.DroppedRequestIDs, id)
			}
		}
	}
	res.ChecksPerSec = float64(res.Checks) / elapsed.Seconds()
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	if len(lats) > 0 {
		res.P50Ms = ms(percentile(lats, 0.50))
		res.P90Ms = ms(percentile(lats, 0.90))
		res.P99Ms = ms(percentile(lats, 0.99))
		res.MaxMs = ms(lats[len(lats)-1])
	}
	res.HTTPCodeStr = make(map[string]int)
	for k, v := range res.HTTPCodes {
		res.HTTPCodeStr[fmt.Sprint(k)] = v
	}

	if !*quiet {
		fmt.Printf("keyload: %d checks in %v (%.0f checks/sec, %d clients)\n",
			res.Checks, elapsed.Round(time.Millisecond), res.ChecksPerSec, *conc)
		fmt.Printf("latency: p50 %.2fms  p90 %.2fms  p99 %.2fms  max %.2fms\n",
			res.P50Ms, res.P90Ms, res.P99Ms, res.MaxMs)
		fmt.Printf("verdicts: factored %d, shared_factor %d, clean %d; errors %d (retries %d, transport errors %d)\n",
			res.Verdicts["factored"], res.Verdicts["shared_factor"], res.Verdicts["clean"],
			res.Errors, res.Retries, res.TransportErrors)
	}
	if *jsonOut != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		if !*quiet {
			fmt.Printf("wrote %s\n", *jsonOut)
		}
	}
	if res.Checks == 0 || res.Checks == res.Errors {
		fatal(fmt.Errorf("no successful checks completed"))
	}
}

func fetchExemplars(client *http.Client, base string) (*exemplars, error) {
	resp, err := client.Get(base + "/v1/exemplars?n=64")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("exemplars: HTTP %d", resp.StatusCode)
	}
	var ex exemplars
	if err := json.NewDecoder(resp.Body).Decode(&ex); err != nil {
		return nil, err
	}
	return &ex, nil
}

// genNovel produces n random odd moduli-shaped integers that no scan
// ever observed — each check walks the full GCD path (and then hits the
// verdict cache on repeats).
func genNovel(seed int64, bits, n int) []string {
	rng := rand.New(rand.NewSource(seed ^ 0x6b65796c6f6164)) // "keyload"
	out := make([]string, n)
	for i := range out {
		v := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), uint(bits)))
		v.SetBit(v, bits-1, 1)
		v.SetBit(v, 0, 1)
		out[i] = v.Text(16)
	}
	return out
}

// percentile returns the p-quantile of sorted latencies.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

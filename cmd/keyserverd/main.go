// Command keyserverd serves the online weak-key check service: the
// reproduction of factorable.net's "check my key" endpoint over a
// completed study corpus.
//
// The daemon either analyzes a saved scan corpus or simulates one,
// builds the sharded keycheck index from the study's factored set, and
// serves:
//
//	POST /v1/check      JSON {"modulus_hex": "..."} (or cert_pem /
//	                    cert_der, or a raw PEM body) → verdict
//	POST /v1/ingest     JSON {"moduli_hex": [...]} → fold new moduli into
//	                    the live index without a restart (-allow-ingest)
//	GET  /v1/stats      index, cache and limiter statistics
//	GET  /v1/exemplars  known factored/clean corpus keys for smoke tests
//	/metrics            Prometheus exposition  /debug/vars  JSON vars
//	/debug/events       flight-recorder window (?level=, ?request_id=, ?n=)
//	/debug/requests     in-flight, recent and slowest checks/ingests
//	/debug/bundle       gzipped tar postmortem bundle
//
// Every request is correlated: an inbound X-Request-Id (or W3C
// traceparent trace-id) is honoured, otherwise an ID is minted, and it
// is echoed on every response and stamped on every event the request
// emits.
//
// Examples:
//
//	keyserverd -scale 0.05 -bits 128 -listen 127.0.0.1:8446
//	keyserverd -load corpus.gob -rate 100 -burst 200 -log-level debug
//	kill -HUP <pid>   # with -load: ingest the corpus file's delta;
//	                  # with -rebuild-full (or simulate mode): full rebuild
//	kill -USR1 <pid>  # write a debug bundle to the -debug-bundle path
//
// SIGINT/SIGTERM drain gracefully: the listener stops accepting, in-
// flight checks finish, then the process exits.
//
// Cluster mode (-cluster-self with -cluster-peers) turns the process
// into one replica of a keyrouter cluster: it indexes only its
// placement-assigned shards, serves GET /v1/sync?since=<gen> so peers
// can pull its ingest journal, and pulls theirs on -sync-interval.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/factorable/weakkeys/internal/cluster"
	"github.com/factorable/weakkeys/internal/core"
	"github.com/factorable/weakkeys/internal/kernel"
	"github.com/factorable/weakkeys/internal/keycheck"
	"github.com/factorable/weakkeys/internal/population"
	"github.com/factorable/weakkeys/internal/scanstore"
	"github.com/factorable/weakkeys/internal/telemetry"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:8446", "serve the check API on this address; :0 picks a port")
		loadFrom  = flag.String("load", "", "analyze a saved scan corpus (scanstore snapshot) instead of simulating")
		seed      = flag.Int64("seed", 2016, "simulation seed (ignored with -load)")
		scale     = flag.Float64("scale", 0.05, "population scale multiplier (ignored with -load)")
		bits      = flag.Int("bits", 128, "RSA modulus size for simulated keys")
		subsets   = flag.Int("subsets", 3, "batch GCD subsets k for the study run")
		shards    = flag.Int("shards", keycheck.DefaultShards, "index shard count")
		workers   = flag.Int("workers", 0, "bounded check-worker pool size (0 = GOMAXPROCS)")
		queueWait = flag.Duration("queue-wait", 50*time.Millisecond, "how long a check waits for a worker before shedding")
		cacheSize = flag.Int("cache", 4096, "LRU verdict-cache entries (negative disables)")
		rate      = flag.Float64("rate", 50, "per-client rate limit in checks/sec (0 disables)")
		burst     = flag.Int("burst", 100, "per-client rate-limit burst")
		drainFor  = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown deadline")
		saveTo    = flag.String("save", "", "save the simulated corpus to a file (for keyload -corpus)")
		anomFleet = flag.Bool("anomaly-fleet", false, "append the anomalous device families (close primes, small factors, e=1, fleet-shared modulus) to the simulated ecosystem (ignored with -load)")
		quiet     = flag.Bool("q", false, "suppress progress output")
		fullHup   = flag.Bool("rebuild-full", false, "SIGHUP re-analyzes from scratch instead of ingesting the corpus delta")
		ingestOK  = flag.Bool("allow-ingest", true, "serve POST /v1/ingest (live index updates)")
		logLevel  = flag.String("log-level", "info", "stderr log floor: debug, info, warn or error (the flight recorder keeps everything)")
		logFormat = flag.String("log-format", "text", "stderr log encoding: text or json")
		eventsN   = flag.Int("events", 1024, "flight-recorder capacity in events (/debug/events window)")
		bundleTo  = flag.String("debug-bundle", "keyserverd-debug.tar.gz", "SIGUSR1 writes a postmortem debug bundle to this path (empty disables)")

		clusterSelf  = flag.String("cluster-self", "", "this replica's advertised host:port; enables cluster mode (index only placement-owned shards, serve and pull /v1/sync)")
		clusterPeers = flag.String("cluster-peers", "", "comma-separated ordered host:port list of every replica, -cluster-self included; all replicas and the router must agree on it")
		replication  = flag.Int("replication", cluster.DefaultReplication, "shard replication factor in cluster mode")
		syncEvery    = flag.Duration("sync-interval", time.Second, "peer journal pull interval in cluster mode")
	)
	flag.Parse()

	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	fatal := func(err error) {
		fmt.Fprintln(os.Stderr, "keyserverd:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	reg := telemetry.New()
	teeLevel, err := telemetry.ParseLevel(*logLevel)
	if err != nil {
		fatal(err)
	}
	if *logFormat != "text" && *logFormat != "json" {
		fatal(fmt.Errorf("-log-format must be text or json, got %q", *logFormat))
	}
	events := telemetry.NewEventLog(telemetry.EventConfig{
		Size:      *eventsN,
		Level:     slog.LevelDebug, // the recorder keeps everything
		Tee:       os.Stderr,
		TeeFormat: *logFormat,
		TeeLevel:  teeLevel,
	})
	requests := telemetry.NewRequestTracker(128, 32)

	// Cluster mode: derive this replica's shard subset from the shared
	// placement arithmetic — every replica and the router compute the
	// same map from the ordered peer list alone.
	var peers []string
	var ownShards []int
	if *clusterSelf != "" {
		for _, p := range strings.Split(*clusterPeers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, p)
			}
		}
		placement, err := cluster.NewPlacement(peers, *shards, *replication)
		if err != nil {
			fatal(err)
		}
		ownShards = placement.OwnedBy(*clusterSelf)
		if ownShards == nil {
			fatal(fmt.Errorf("-cluster-self %q does not appear in -cluster-peers %q", *clusterSelf, *clusterPeers))
		}
		logf("cluster mode: replica %s owns shards %v of %d (replication %d)",
			*clusterSelf, ownShards, *shards, placement.Replication())
	}

	// buildSnapshot runs (or re-runs, on SIGHUP) the analysis and
	// assembles the serving index from the study's factored set.
	buildSnapshot := func() (*keycheck.Snapshot, error) {
		var study *core.Study
		var err error
		opts := core.Options{KeyBits: *bits, Subsets: *subsets, Telemetry: reg, Events: events}
		if *loadFrom != "" {
			logf("analyzing corpus from %s...", *loadFrom)
			f, ferr := os.Open(*loadFrom)
			if ferr != nil {
				return nil, ferr
			}
			store, lerr := scanstore.Load(f)
			f.Close()
			if lerr != nil {
				return nil, lerr
			}
			study, err = core.AnalyzeStore(ctx, store, opts)
		} else {
			logf("simulating study corpus (scale %.2f, %d-bit keys, k=%d)...", *scale, *bits, *subsets)
			opts.Seed, opts.Scale = *seed, *scale
			if *anomFleet {
				// The anomalous families ride along with the paper's vendor
				// set so the new verdict classes have live populations.
				opts.Lines = append(population.DefaultDynamics(), population.AnomalyLines()...)
			}
			study, err = core.Run(ctx, opts)
		}
		if err != nil {
			return nil, err
		}
		if *saveTo != "" {
			f, ferr := os.Create(*saveTo)
			if ferr != nil {
				return nil, ferr
			}
			if err := study.Store.Save(f); err != nil {
				f.Close()
				return nil, err
			}
			if err := f.Close(); err != nil {
				return nil, err
			}
			logf("saved scan corpus to %s", *saveTo)
		}
		return keycheck.Build(ctx, keycheck.BuildInput{
			Store:       study.Store,
			Fingerprint: study.Fingerprint,
			Shards:      *shards,
			OwnShards:   ownShards,
		})
	}

	start := time.Now()
	snap, err := buildSnapshot()
	if err != nil {
		fatal(err)
	}
	logf("index built in %v: %d moduli (%d factored) across %d shards",
		time.Since(start).Round(time.Millisecond), snap.Moduli(), snap.Factored(), *shards)
	events.Info(ctx, "index built",
		slog.Int("moduli", snap.Moduli()),
		slog.Int("factored", snap.Factored()),
		slog.Int("shards", *shards),
		slog.Duration("elapsed", time.Since(start)))

	svcCfg := keycheck.Config{
		Workers:   *workers,
		QueueWait: *queueWait,
		CacheSize: *cacheSize,
		Metrics:   reg,
		Events:    events,
		Requests:  requests,
	}
	// In cluster mode every published ingest lands in the sync journal,
	// the feed peers pull to converge without a restart.
	var journal *cluster.Journal
	if *clusterSelf != "" {
		journal = &cluster.Journal{}
		svcCfg.OnIngest = func(rep keycheck.IngestReport) {
			journal.Append(rep.NovelKeys)
		}
	}
	svc := keycheck.NewService(snap, svcCfg)
	limiter := keycheck.NewRateLimiter(*rate, *burst)
	api := keycheck.NewAPI(svc, limiter, reg)
	api.SetAllowIngest(*ingestOK)

	// One mux serves the check API and the diagnostics endpoints, so a
	// single scrape target covers verdict counters, latency histograms,
	// shard gauges, the flight recorder and the request ledger.
	diag := &telemetry.Diagnostics{
		Registry: reg,
		Events:   events,
		Requests: requests,
		Info: map[string]string{
			"binary": "keyserverd",
			"listen": *listen,
			"corpus": *loadFrom,
			"shards": fmt.Sprint(*shards),
		},
	}
	mux := api.Mux()
	diagMux := diag.Mux()
	mux.Handle("/metrics", diagMux)
	mux.Handle("/debug/", diagMux)
	if journal != nil {
		mux.Handle("/v1/sync", journal.Handler())
		syncer := &cluster.Syncer{
			Self:     *clusterSelf,
			Peers:    peers,
			Service:  svc,
			Interval: *syncEvery,
			Metrics:  reg,
			Events:   events,
		}
		go syncer.Run(ctx)
	}

	// Steady-state serving keeps the kernel pool's cost ledger fresh:
	// ingest paths publish on completion, but a scrape between ingests
	// should still see current kernel_* gauges.
	go func() {
		tick := time.NewTicker(10 * time.Second)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				kernel.Default().Publish(reg)
			case <-ctx.Done():
				return
			}
		}
	}()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	// Full read/write/idle timeouts so one stuck client (or a SIGKILLed
	// router mid-request) can never pin a connection forever. The write
	// timeout is generous because ingests and debug bundles legitimately
	// take tens of seconds.
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}()
	logf("keycheck API on http://%s/v1/check (stats /v1/stats, metrics /metrics)", ln.Addr())
	events.Info(ctx, "serving", slog.String("addr", ln.Addr().String()))

	// SIGUSR1 snapshots the process into a postmortem bundle: metrics,
	// the flight recorder, the request ledger, goroutine and heap
	// profiles, build and config info — one artifact to attach to an
	// incident.
	if *bundleTo != "" {
		usr1 := make(chan os.Signal, 1)
		signal.Notify(usr1, syscall.SIGUSR1)
		go func() {
			for range usr1 {
				if err := diag.WriteBundleFile(*bundleTo); err != nil {
					fmt.Fprintln(os.Stderr, "keyserverd: debug bundle:", err)
					events.Error(ctx, "debug bundle failed", slog.String("error", err.Error()))
					continue
				}
				logf("debug bundle written to %s", *bundleTo)
				events.Info(ctx, "debug bundle written", slog.String("path", *bundleTo))
			}
		}()
	}

	// SIGHUP folds new corpus data into the live index. The default path
	// with -load re-reads the corpus file and ingests it as a delta —
	// moduli already indexed are deduplicated positionally, only novel
	// ones pay for GCD work, and untouched shards are shared with the
	// predecessor snapshot. -rebuild-full (and the simulate mode, whose
	// deterministic corpus has no external delta source) re-runs the full
	// analysis instead. Either way the swap is atomic: readers are never
	// blocked and the verdict cache is invalidated.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if !*fullHup && *loadFrom != "" {
				logf("SIGHUP: ingesting corpus delta from %s...", *loadFrom)
				events.Info(ctx, "sighup ingest", slog.String("corpus", *loadFrom))
				f, err := os.Open(*loadFrom)
				if err != nil {
					fmt.Fprintln(os.Stderr, "keyserverd: reload failed, keeping current snapshot:", err)
					continue
				}
				store, err := scanstore.Load(f)
				f.Close()
				if err != nil {
					fmt.Fprintln(os.Stderr, "keyserverd: reload failed, keeping current snapshot:", err)
					continue
				}
				rep, err := svc.Ingest(ctx, keycheck.BuildInput{Store: store, Shards: *shards})
				if err != nil {
					fmt.Fprintln(os.Stderr, "keyserverd: ingest failed, keeping current snapshot:", err)
					continue
				}
				cur := svc.Index().Snapshot()
				logf("delta ingested in %v: %d novel moduli (%d factored, %d fold-backs), %d duplicates; "+
					"%d/%d shards touched, %d tree nodes reused; serving %d moduli (%d factored)",
					rep.Elapsed.Round(time.Millisecond), rep.DeltaModuli, rep.NewFactored, rep.Refactored,
					rep.Duplicates, rep.TouchedShards, len(rep.Shards), rep.NodesReused,
					cur.Moduli(), cur.Factored())
				continue
			}
			logf("SIGHUP: rebuilding index...")
			next, err := buildSnapshot()
			if err != nil {
				fmt.Fprintln(os.Stderr, "keyserverd: reload failed, keeping current snapshot:", err)
				continue
			}
			svc.Publish(next)
			logf("snapshot swapped: %d moduli (%d factored)", next.Moduli(), next.Factored())
		}
	}()

	<-ctx.Done()
	logf("shutting down: draining in-flight checks...")
	events.Info(context.Background(), "shutdown", slog.Duration("drain_timeout", *drainFor))
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "keyserverd: shutdown:", err)
	}
	svc.Drain()
	logf("drained; bye")
}

// Command freeport prints N free TCP ports on 127.0.0.1, one per line.
// Smoke and chaos scripts use it instead of hardcoded port ranges so
// parallel CI runs cannot collide. All listeners are held open until
// every port has been chosen, so one invocation never returns
// duplicates; the usual freeport caveat applies across invocations (a
// port is only reserved once the script's server binds it).
//
// Usage: freeport [n]   (default 1)
package main

import (
	"fmt"
	"net"
	"os"
	"strconv"
)

func main() {
	n := 1
	if len(os.Args) > 1 {
		v, err := strconv.Atoi(os.Args[1])
		if err != nil || v < 1 || v > 256 {
			fmt.Fprintf(os.Stderr, "freeport: want a count in [1,256], got %q\n", os.Args[1])
			os.Exit(2)
		}
		n = v
	}
	listeners := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range listeners {
			ln.Close()
		}
	}()
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, "freeport:", err)
			os.Exit(1)
		}
		listeners = append(listeners, ln)
	}
	for _, ln := range listeners {
		fmt.Println(ln.Addr().(*net.TCPAddr).Port)
	}
}

// Command zscand runs the ZMap-class scan engine against a simulated
// device fleet: stateless probes in a pseudorandom full-cycle
// permutation order, a paced sender decoupled from the validate/harvest
// path, coordination-free sharding, delta checkpoints, and a
// continuous-ingest bridge that feeds harvested moduli straight into a
// keyserverd (or keyrouter) POST /v1/ingest endpoint — so keys the scan
// discovers flip /v1/check verdicts without any restart.
//
// Sharding needs no coordination: N processes launched with the same
// -space/-seed and -shard 0/N ... N-1/N provably split the address
// space with zero overlap and zero omission.
//
// Examples:
//
//	zscand -space 1048576 -devices 512 -rate 100000 -cycles 2
//	zscand -shard 0/2 -ingest-url http://127.0.0.1:8446/v1/ingest
//	zscand -dry-run -json plan.json   # fleet plan + weak exemplars, no scan
//
// The process exits after -cycles sweeps; SIGINT/SIGTERM stop the
// sweep, flush the ingest bridge and still write the report.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/factorable/weakkeys/internal/faults"
	"github.com/factorable/weakkeys/internal/scanstore"
	"github.com/factorable/weakkeys/internal/telemetry"
	"github.com/factorable/weakkeys/internal/zscan"
)

// output is the report envelope written by -json: the scan plan, the
// engine's accounting and the ingest bridge's ledger.
type output struct {
	Space         uint64   `json:"space"`
	Shard         int      `json:"shard"`
	Shards        int      `json:"shards"`
	Seed          int64    `json:"seed"`
	Devices       int      `json:"devices"`
	WeakExemplars []string `json:"weak_exemplars,omitempty"`

	Scan   *zscan.Report      `json:"scan,omitempty"`
	Ingest *zscan.BridgeStats `json:"ingest,omitempty"`
}

func main() {
	var (
		space      = flag.Uint64("space", 1<<20, "simulated address-space size")
		devicesN   = flag.Int("devices", 64, "devices scattered over the space")
		vulnerable = flag.Float64("vulnerable", 0.25, "fraction of devices with shared-prime keys")
		bits       = flag.Int("bits", 256, "RSA modulus size for fleet keys")
		fleetSeed  = flag.Int64("fleet-seed", 2016, "fleet placement/key seed")
		seed       = flag.Int64("seed", 1, "permutation seed (generator + start element)")
		shardSpec  = flag.String("shard", "0/1", "this process's shard as i/n; all n processes must share -space and -seed")
		cycles     = flag.Int("cycles", 1, "full-cycle sweeps to run (losses recover on the next sweep)")
		rate       = flag.Float64("rate", 0, "probes/sec token-bucket cap (0 = unpaced)")
		burst      = flag.Int("burst", 0, "token-bucket burst capacity (0 = rate/100)")
		window     = flag.Int("window", 1024, "bounded in-flight probe window")
		workers    = flag.Int("workers", 8, "probe worker goroutines")
		chaosEvery = flag.Int("chaos-every", 0, "fault every Nth connection per device (reset); 0 disables")
		ingestURL  = flag.String("ingest-url", "", "POST harvested moduli to this /v1/ingest endpoint")
		batchSize  = flag.Int("ingest-batch", 256, "moduli per ingest request")
		ckptDir    = flag.String("checkpoint-dir", "", "write scanstore delta segments here")
		ckptEvery  = flag.Int("checkpoint-every", 256, "stored observations per delta checkpoint")
		jsonOut    = flag.String("json", "", "write the JSON report to this file (- or empty prints to stdout)")
		dryRun     = flag.Bool("dry-run", false, "print the fleet plan (devices, weak exemplars) without scanning")
		diagAddr   = flag.String("diag", "", "serve /metrics and /debug on this address (:0 picks a port)")
		logLevel   = flag.String("log-level", "info", "stderr log floor: debug, info, warn or error")
		eventsN    = flag.Int("events", 1024, "flight-recorder capacity in events")
		quiet      = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	fatal := func(err error) {
		fmt.Fprintln(os.Stderr, "zscand:", err)
		os.Exit(1)
	}

	shard, shards, err := parseShard(*shardSpec)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	reg := telemetry.New()
	teeLevel, err := telemetry.ParseLevel(*logLevel)
	if err != nil {
		fatal(err)
	}
	events := telemetry.NewEventLog(telemetry.EventConfig{
		Size:      *eventsN,
		Level:     slog.LevelDebug,
		Tee:       os.Stderr,
		TeeFormat: "text",
		TeeLevel:  teeLevel,
	})

	logf("building fleet: %d devices over %d addresses (%.0f%% vulnerable, seed %d)...",
		*devicesN, *space, *vulnerable*100, *fleetSeed)
	fleet, err := zscan.NewSimFleet(zscan.FleetOptions{
		Space:       *space,
		Devices:     *devicesN,
		Vulnerable:  *vulnerable,
		Bits:        *bits,
		Seed:        *fleetSeed,
		FaultEvery:  *chaosEvery,
		FaultAction: faults.Reset,
	})
	if err != nil {
		fatal(err)
	}

	out := output{
		Space:         *space,
		Shard:         shard,
		Shards:        shards,
		Seed:          *seed,
		Devices:       fleet.DeviceCount(),
		WeakExemplars: fleet.WeakExemplars(),
	}
	if *dryRun {
		writeReport(*jsonOut, out, fatal)
		return
	}

	if *diagAddr != "" {
		diag := &telemetry.Diagnostics{
			Registry: reg,
			Events:   events,
			Info: map[string]string{
				"binary": "zscand",
				"shard":  *shardSpec,
				"space":  fmt.Sprint(*space),
			},
		}
		ln, err := net.Listen("tcp", *diagAddr)
		if err != nil {
			fatal(err)
		}
		go func() {
			srv := &http.Server{Handler: diag.Mux(), ReadHeaderTimeout: 5 * time.Second}
			if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "zscand: diagnostics:", err)
			}
		}()
		logf("diagnostics on http://%s/metrics", ln.Addr())
	}

	var bridge *zscan.Bridge
	if *ingestURL != "" {
		bridge, err = zscan.NewBridge(zscan.BridgeOptions{
			URL:       *ingestURL,
			BatchSize: *batchSize,
			Seed:      *seed,
			Metrics:   reg,
			Events:    events,
		})
		if err != nil {
			fatal(err)
		}
		logf("ingest bridge -> %s (batch %d)", *ingestURL, *batchSize)
	}

	store := scanstore.New()
	if *ckptDir != "" {
		// A restart into a non-empty checkpoint dir resumes the delta
		// chain: replay the existing segments so new ones chain onto them
		// instead of overwriting the history.
		segs, err := zscan.LoadCheckpoints(*ckptDir, store)
		if err != nil {
			fatal(err)
		}
		if segs > 0 {
			logf("resumed %d checkpoint segment(s) from %s (%d records)", segs, *ckptDir, len(store.Records()))
		}
	}
	eng, err := zscan.New(zscan.Options{
		Space:           *space,
		Shard:           shard,
		Shards:          shards,
		Seed:            *seed,
		Cycles:          *cycles,
		Rate:            *rate,
		Burst:           *burst,
		Window:          *window,
		Workers:         *workers,
		Prober:          fleet,
		Store:           store,
		CheckpointDir:   *ckptDir,
		CheckpointEvery: *ckptEvery,
		Ingest:          bridge,
		Metrics:         reg,
		Events:          events,
	})
	if err != nil {
		fatal(err)
	}

	logf("scanning shard %d/%d of %d addresses, %d cycle(s)...", shard, shards, *space, *cycles)
	rep, runErr := eng.Run(ctx)
	if bridge != nil {
		bridge.Close()
		stats := bridge.Stats()
		out.Ingest = &stats
	}
	out.Scan = &rep

	writeReport(*jsonOut, out, fatal)
	logf("scan done: %d probes in %v (%.0f probes/sec), %d hits, %d stored, %d novel moduli, %d checkpoints",
		rep.Probes, rep.Elapsed.Round(time.Millisecond), rep.ProbesPerSec,
		rep.Hits, rep.Stored, rep.NovelModuli, rep.Checkpoints)
	if out.Ingest != nil {
		logf("ingest: %d delivered in %d batches (%d retries, %d dropped, %d factored server-side)",
			out.Ingest.Delivered, out.Ingest.Batches, out.Ingest.Retries,
			out.Ingest.Dropped, out.Ingest.Factored)
	}
	if runErr != nil && !errors.Is(runErr, context.Canceled) {
		fatal(runErr)
	}
}

// parseShard parses "i/n" into (i, n).
func parseShard(spec string) (int, int, error) {
	parts := strings.Split(spec, "/")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("-shard %q: want i/n, e.g. 0/4", spec)
	}
	i, err := strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, fmt.Errorf("-shard %q: bad index: %v", spec, err)
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, fmt.Errorf("-shard %q: bad count: %v", spec, err)
	}
	if n < 1 || i < 0 || i >= n {
		return 0, 0, fmt.Errorf("-shard %q: index must be in [0,%d)", spec, n)
	}
	return i, n, nil
}

func writeReport(path string, out output, fatal func(error)) {
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if path == "" || path == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		fatal(err)
	}
}

// Command anomalybench benchmarks the per-modulus anomaly probes — the
// bounded trial-division + Fermat + Pollard-rho pipeline (anomaly.Probe)
// that both the offline Anomaly stage and the online /v1/check path run
// against novel moduli. It generates a synthetic corpus with known
// planted flaws (close-prime pairs and small-factor moduli among safe
// semiprimes), sweeps it on kernel engines of increasing width, and
// writes a JSON report.
//
// Two properties are claimed and checked:
//
//   - recall: every planted close-prime modulus must come back
//     fermat_weak and every planted small-factor modulus small_factor,
//     with no false hits on the safe majority — at the default budgets
//     the serving path uses;
//   - throughput: probes/sec on the pooled engine, the number that
//     bounds how fast the Anomaly stage covers a corpus and how much
//     latency a probe adds to a novel /v1/check.
//
// scripts/bench-anomaly.sh enforces the acceptance floors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/big"
	"math/rand"
	"os"
	"runtime"
	"time"

	"github.com/factorable/weakkeys/internal/anomaly"
	"github.com/factorable/weakkeys/internal/kernel"
	"github.com/factorable/weakkeys/internal/numtheory"
)

type sweepPoint struct {
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
	Speedup float64 `json:"speedup_vs_serial"`
}

type report struct {
	Moduli      int `json:"moduli"`
	ModulusBits int `json:"modulus_bits"`
	Runs        int `json:"runs"`
	Cores       int `json:"cores"`
	GOMAXPROCS  int `json:"gomaxprocs"`

	FermatPlanted int `json:"fermat_planted"`
	FermatFound   int `json:"fermat_found"`
	SmallPlanted  int `json:"small_planted"`
	SmallFound    int `json:"small_found"`
	FalseHits     int `json:"false_hits"`

	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	Speedup         float64 `json:"speedup"`
	ProbesPerSec    int     `json:"probes_per_sec"`

	Sweep []sweepPoint `json:"workers_sweep"`
}

func main() {
	var (
		nModuli = flag.Int("moduli", 5000, "corpus size in distinct moduli")
		flawPct = flag.Float64("flawed", 0.02, "fraction of moduli planted with each flaw class")
		seed    = flag.Int64("seed", 2016, "corpus generation seed")
		runs    = flag.Int("runs", 2, "timed repetitions per configuration (best run is reported)")
		jsonOut = flag.String("json", "", "write the JSON report to this file (default stdout)")
		quiet   = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	fatal := func(err error) {
		fmt.Fprintln(os.Stderr, "anomalybench:", err)
		os.Exit(1)
	}

	logf("generating %d moduli (%.1f%% close-prime, %.1f%% small-factor) from seed %d...",
		*nModuli, 100**flawPct, 100**flawPct, *seed)
	t0 := time.Now()
	mods, classes := generateCorpus(rand.New(rand.NewSource(*seed)), *nModuli, *flawPct)
	logf("corpus ready in %v", time.Since(t0).Round(time.Millisecond))

	cores := runtime.NumCPU()
	out := report{
		Moduli:      len(mods),
		ModulusBits: mods[0].BitLen(),
		Runs:        *runs,
		Cores:       cores,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}
	for _, c := range classes {
		switch c {
		case anomaly.ProbeFermatWeak:
			out.FermatPlanted++
		case anomaly.ProbeSmallFactor:
			out.SmallPlanted++
		}
	}

	// measure sweeps the default probes over the corpus on eng and
	// returns the best wall clock over -runs repetitions plus the hit
	// tally of the last repetition.
	var probe anomaly.Probe // zero value: the serving-path defaults
	measure := func(eng *kernel.Engine) (time.Duration, []anomaly.ProbeClass) {
		best := time.Duration(0)
		var got []anomaly.ProbeClass
		for r := 0; r < *runs; r++ {
			got = make([]anomaly.ProbeClass, len(mods))
			t0 := time.Now()
			if err := eng.Run(context.Background(), len(mods), func(i int, _ *kernel.Arena) {
				cls, _, _ := probe.Factor(mods[i])
				got[i] = cls
			}); err != nil {
				fatal(err)
			}
			if d := time.Since(t0); best == 0 || d < best {
				best = d
			}
		}
		return best, got
	}

	var widths []int
	for w := 1; w < cores; w *= 2 {
		widths = append(widths, w)
	}
	widths = append(widths, cores)

	var serial, parallel time.Duration
	for _, w := range widths {
		eng := kernel.New(w)
		d, got := measure(eng)
		eng.Close()
		if w == 1 {
			serial = d
		}
		if w == cores {
			parallel = d
			for i, cls := range got {
				switch {
				case cls == classes[i] && cls == anomaly.ProbeFermatWeak:
					out.FermatFound++
				case cls == classes[i] && cls == anomaly.ProbeSmallFactor:
					out.SmallFound++
				case cls != classes[i]:
					out.FalseHits++
				}
			}
		}
		out.Sweep = append(out.Sweep, sweepPoint{Workers: w, Seconds: d.Seconds()})
		logf("workers=%d: %v", w, d.Round(time.Millisecond))
	}
	for i := range out.Sweep {
		out.Sweep[i].Speedup = serial.Seconds() / out.Sweep[i].Seconds
	}
	out.SerialSeconds = serial.Seconds()
	out.ParallelSeconds = parallel.Seconds()
	out.Speedup = serial.Seconds() / parallel.Seconds()
	out.ProbesPerSec = int(float64(len(mods)) / parallel.Seconds())

	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *jsonOut != "" {
		if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
			fatal(err)
		}
	} else {
		os.Stdout.Write(buf)
	}
	logf("%d probes in %v on %d cores: %d probes/sec, recall %d/%d fermat %d/%d small, %d false hits",
		len(mods), parallel.Round(time.Millisecond), cores, out.ProbesPerSec,
		out.FermatFound, out.FermatPlanted, out.SmallFound, out.SmallPlanted, out.FalseHits)
}

// generateCorpus returns n distinct 128-bit moduli and the probe class
// each one should produce: a flawPct fraction are close-prime pairs
// (consecutive primes, Fermat-factorable in a handful of steps), an
// equal fraction carry a small prime factor, and the rest are safe
// random semiprimes whose prime gap is astronomically unlikely to fall
// inside any default budget.
func generateCorpus(rng *rand.Rand, n int, flawPct float64) ([]*big.Int, []anomaly.ProbeClass) {
	prime := func() *big.Int {
		for {
			p := new(big.Int).SetUint64(rng.Uint64() | 1<<63 | 1)
			if p.ProbablyPrime(0) {
				return p
			}
		}
	}
	smalls := numtheory.FirstPrimes(anomaly.DefaultTrialPrimes)
	mods := make([]*big.Int, 0, n)
	classes := make([]anomaly.ProbeClass, 0, n)
	seen := make(map[string]bool, n)
	for len(mods) < n {
		var m *big.Int
		var cls anomaly.ProbeClass
		switch f := rng.Float64(); {
		case f < flawPct:
			p := prime()
			q := numtheory.NextPrime(new(big.Int).Add(p, big.NewInt(2)))
			m, cls = new(big.Int).Mul(p, q), anomaly.ProbeFermatWeak
		case f < 2*flawPct:
			s := new(big.Int).SetUint64(smalls[rng.Intn(len(smalls))])
			m, cls = new(big.Int).Mul(s, prime()), anomaly.ProbeSmallFactor
		default:
			m, cls = new(big.Int).Mul(prime(), prime()), anomaly.ProbeNone
		}
		key := string(m.Bytes())
		if seen[key] {
			continue
		}
		seen[key] = true
		mods = append(mods, m)
		classes = append(classes, cls)
	}
	return mods, classes
}

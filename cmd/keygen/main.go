// Command keygen generates RSA key corpora with a configurable weak
// fraction, for feeding cmd/batchgcd or external tools. Weak keys are
// produced through the same shared-prime cohort machinery the ecosystem
// simulator uses, so a corpus's weak subset is genuinely factorable by
// batch GCD.
//
//	keygen -n 1000 -weak 0.02 -bits 512        # hex, one modulus per line
//	keygen -n 100 -format pem > corpus.pem
//	keygen -n 100 -private                     # also prints p and q
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/factorable/weakkeys/internal/certs"
	"github.com/factorable/weakkeys/internal/population"
	"github.com/factorable/weakkeys/internal/sshkeys"
	"github.com/factorable/weakkeys/internal/weakrsa"
)

func main() {
	var (
		n       = flag.Int("n", 100, "number of keys")
		weak    = flag.Float64("weak", 0.02, "fraction of keys drawn from shared-prime cohorts")
		bits    = flag.Int("bits", 512, "modulus size")
		seed    = flag.Int64("seed", 0, "deterministic seed (0 = time-based)")
		format  = flag.String("format", "hex", "output format: hex or pem")
		gen     = flag.String("gen", "openssl", "prime generation style for weak keys: openssl, naive")
		private = flag.Bool("private", false, "emit p and q alongside each modulus (hex format only)")
	)
	flag.Parse()
	if *weak < 0 || *weak > 1 {
		fatal(fmt.Errorf("weak fraction must be in [0,1]"))
	}
	var style weakrsa.PrimeGen
	switch *gen {
	case "openssl":
		style = weakrsa.PrimeOpenSSL
	case "naive":
		style = weakrsa.PrimeNaive
	default:
		fatal(fmt.Errorf("unknown -gen %q", *gen))
	}
	s := *seed
	if s == 0 {
		s = time.Now().UnixNano()
	}
	factory := population.NewKeyFactory(s, *bits)
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	weakEvery := 0
	if *weak > 0 {
		weakEvery = int(1 / *weak)
	}
	for i := 0; i < *n; i++ {
		var key *weakrsa.PrivateKey
		var err error
		if weakEvery > 0 && i%weakEvery == 0 {
			key, err = factory.SharedPrime("keygen", style)
		} else {
			key, err = factory.Healthy()
		}
		if err != nil {
			fatal(err)
		}
		switch *format {
		case "hex":
			if *private {
				fmt.Fprintf(out, "%x p=%x q=%x\n", key.N, key.P, key.Q)
			} else {
				fmt.Fprintf(out, "%x\n", key.N)
			}
		case "pem":
			if err := certs.EncodeModulusPEM(out, key.N); err != nil {
				fatal(err)
			}
		case "ssh":
			pub := sshkeys.PublicKey{E: key.E, N: key.N}
			if _, err := out.WriteString(pub.MarshalAuthorizedKey(fmt.Sprintf("host-%06d", i))); err != nil {
				fatal(err)
			}
		default:
			fatal(fmt.Errorf("unknown -format %q", *format))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "keygen:", err)
	os.Exit(1)
}

// Command scanmock demonstrates the live-network path of the study: it
// boots a fleet of simulated devices on loopback TCP ports — some with
// healthy keys, some with entropy-hole firmware that shares first primes,
// one pair behind a Heartbleed-crash-prone build — then scans the fleet,
// runs batch GCD over the harvested moduli, and reports which devices'
// private keys fall out.
//
//	scanmock -devices 24 -vulnerable 8 -heartbleed
//
// Chaos testing: -chaos injects seeded connection faults (refuse, reset,
// stall, truncated or garbled hellos) into every device, and the
// scanner's retry loop is expected to recover the fleet anyway;
// -chaos-every n faults exactly every nth connection per device, which
// guarantees a single retry recovers it — the deterministic variant the
// smoke test uses.
//
//	scanmock -chaos 0.3 -chaos-seed 42 -metrics
//	scanmock -chaos-every 2 -retries 3
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"math/big"
	"net"
	"os"
	"time"

	"github.com/factorable/weakkeys/internal/batchgcd"
	"github.com/factorable/weakkeys/internal/certs"
	"github.com/factorable/weakkeys/internal/devices"
	"github.com/factorable/weakkeys/internal/faults"
	"github.com/factorable/weakkeys/internal/population"
	"github.com/factorable/weakkeys/internal/scanner"
	"github.com/factorable/weakkeys/internal/telemetry"
	"github.com/factorable/weakkeys/internal/weakrsa"
)

func main() {
	var (
		nDevices   = flag.Int("devices", 24, "fleet size")
		nVuln      = flag.Int("vulnerable", 8, "devices with entropy-hole firmware")
		bits       = flag.Int("bits", 256, "RSA modulus size")
		workers    = flag.Int("workers", 8, "scanner concurrency")
		heartbleed = flag.Bool("heartbleed", false, "send heartbeat probes (crashes vulnerable firmware)")
		listen     = flag.String("listen", "", "serve live diagnostics on this address (/metrics, /debug/vars, /debug/pprof)")
		metrics    = flag.Bool("metrics", false, "dump the final scan metrics snapshot (Prometheus text format) to stderr")
		chaosRate  = flag.Float64("chaos", 0, "fraction of connections to fault (seeded mix of refuse/reset/stall)")
		chaosSeed  = flag.Int64("chaos-seed", 1, "seed for the per-device fault plans and retry jitter")
		chaosEvery = flag.Int("chaos-every", 0, "reset every nth connection per device (deterministic; n>=2 guarantees retry recovery)")
		retries    = flag.Int("retries", 0, "scanner attempts per target (0 = default)")
		keySeed    = flag.Int64("key-seed", 0, "seed for device key generation (0 = time-based; set for reproducible fleets)")
		logLevel   = flag.String("log-level", "warn", "stderr structured-log floor: debug, info, warn or error")
		logFormat  = flag.String("log-format", "text", "stderr structured-log encoding: text or json")
		eventsN    = flag.Int("events", 1024, "flight-recorder capacity in events (/debug/events window)")
	)
	flag.Parse()
	if *chaosRate < 0 || *chaosRate > 1 {
		fatal(fmt.Errorf("-chaos must be in [0,1]"))
	}

	reg := telemetry.New()
	teeLevel, err := telemetry.ParseLevel(*logLevel)
	if err != nil {
		fatal(err)
	}
	if *logFormat != "text" && *logFormat != "json" {
		fatal(fmt.Errorf("-log-format must be text or json, got %q", *logFormat))
	}
	events := telemetry.NewEventLog(telemetry.EventConfig{
		Size:      *eventsN,
		Level:     slog.LevelDebug,
		Tee:       os.Stderr,
		TeeFormat: *logFormat,
		TeeLevel:  teeLevel,
	})
	if *listen != "" {
		diag := &telemetry.Diagnostics{
			Registry: reg,
			Events:   events,
			Info:     map[string]string{"binary": "scanmock"},
		}
		srv, err := diag.ListenAndServe(*listen)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "diagnostics on http://%s/metrics\n", srv.Addr)
	}
	if *nVuln > *nDevices {
		fatal(fmt.Errorf("vulnerable count exceeds fleet size"))
	}

	// Time-seeded by default so repeated demo runs differ; chaos-smoke
	// pins -key-seed because a fully colliding entropy-hole draw (both
	// primes shared) dedups two vulnerable moduli into one.
	seed := *keySeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	factory := population.NewKeyFactory(seed, *bits)
	var targets []string
	var servers []*devices.Server
	for i := 0; i < *nDevices; i++ {
		var key *weakrsa.PrivateKey
		var err error
		vulnerable := i < *nVuln
		if vulnerable {
			key, err = factory.SharedPrime("fleet", weakrsa.PrimeOpenSSL)
		} else {
			key, err = factory.Healthy()
		}
		if err != nil {
			fatal(err)
		}
		cert, err := certs.SelfSigned(big.NewInt(int64(i+1)),
			certs.Name{CommonName: "system generated"},
			time.Now(), time.Now().AddDate(10, 0, 0), nil, key.N, key.E, key.D)
		if err != nil {
			fatal(err)
		}
		srv := &devices.Server{Cert: cert, CrashOnHeartbeat: vulnerable}
		switch {
		case *chaosEvery > 0:
			srv.Faults = faults.NewEveryN(*chaosEvery, faults.Reset)
		case *chaosRate > 0:
			// Stall gets a small share so timeouts exercise the retry
			// path without dominating wall-clock; the rest splits
			// between pre- and post-hello hangups.
			srv.Faults = faults.NewPlan(*chaosSeed+int64(i), faults.Weights{
				Refuse: *chaosRate * 0.45,
				Reset:  *chaosRate * 0.45,
				Stall:  *chaosRate * 0.10,
			})
		}
		if vulnerable {
			// Like 74% of the vulnerable devices in the paper's data:
			// RSA key exchange only, so recorded traffic decrypts
			// passively once the key factors.
			srv.Suites = []string{devices.SuiteRSA}
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		go srv.Serve(ln)
		servers = append(servers, srv)
		targets = append(targets, ln.Addr().String())
	}
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	fmt.Printf("scanning %d devices (%d with entropy-hole firmware)...\n", *nDevices, *nVuln)
	results, err := scanner.Scan(context.Background(), targets, scanner.Options{
		Workers:        *workers,
		ProbeHeartbeat: *heartbleed,
		Timeout:        3 * time.Second,
		MaxAttempts:    *retries,
		RetrySeed:      *chaosSeed,
		Metrics:        reg,
		Events:         events,
	})
	if err != nil {
		fatal(err)
	}
	if *chaosRate > 0 || *chaosEvery > 0 {
		retried, recovered := 0, 0
		for _, r := range results {
			if r.Attempts > 1 {
				retried++
				if r.Err == nil {
					recovered++
				}
			}
		}
		fmt.Printf("chaos: %d targets needed retries, %d recovered (%d total retries)\n",
			retried, recovered, int(reg.CounterValue(`scanner_retries_total{cause="refused"}`)+
				reg.CounterValue(`scanner_retries_total{cause="reset"}`)+
				reg.CounterValue(`scanner_retries_total{cause="timeout"}`)))
	}
	var moduli []*big.Int
	ok := 0
	for _, r := range results {
		if r.Err != nil || r.Cert == nil {
			continue
		}
		ok++
		moduli = append(moduli, r.Cert.N)
		if *heartbleed && !r.HeartbeatOK {
			fmt.Printf("  %s: heartbeat probe failed (device crashed — the Heartbleed-scan effect)\n", r.Addr)
		}
	}
	fmt.Printf("harvested %d certificates\n", ok)

	factored, err := batchgcd.Factor(moduli)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("batch GCD factored %d keys:\n", len(factored))
	for _, f := range factored {
		p, q, err := batchgcd.SplitModulus(moduli[f.Index], f.Divisor)
		if err != nil {
			continue
		}
		fmt.Printf("  %s: p=%x... q=%x...\n", results[f.Index].Addr, firstBytes(p), firstBytes(q))
	}
	if *heartbleed {
		crashed := 0
		for _, s := range servers {
			if s.Crashed() {
				crashed++
			}
		}
		fmt.Printf("%d devices are now offline after heartbeat probing\n", crashed)
	}
	if *metrics {
		reg.Snapshot().WritePrometheus(os.Stderr)
	}
}

func firstBytes(n *big.Int) []byte {
	b := n.Bytes()
	if len(b) > 6 {
		b = b[:6]
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scanmock:", err)
	os.Exit(1)
}

// Command weakkeys runs the full weak-key study end to end — ecosystem
// simulation, scan harvesting, batch GCD, fingerprinting, longitudinal
// analysis — and prints any of the paper's tables and figures.
//
// Examples:
//
//	weakkeys -all                 # every table and figure, full scale
//	weakkeys -scale 0.2 -table 1  # quick run, dataset summary
//	weakkeys -figure 3            # the Juniper time series
//	weakkeys -csv Juniper         # CSV series for external plotting
//	weakkeys -metrics -table 1    # plus the per-stage pipeline report
//	weakkeys -listen :8080        # live /metrics, /debug/vars, pprof
//	weakkeys -trace run.json      # Chrome trace_event span export
//
// Chaos testing (seeded fault injection, see DESIGN.md):
//
//	weakkeys -gcd-crash reduce:1            # kill GCD node 1 mid-reduce
//	weakkeys -gcd-straggle build:2:30s \
//	         -gcd-straggler-timeout 100ms   # speculate around a straggler
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"time"

	"github.com/factorable/weakkeys/internal/analysis"
	"github.com/factorable/weakkeys/internal/core"
	"github.com/factorable/weakkeys/internal/faults"
	"github.com/factorable/weakkeys/internal/pipeline"
	"github.com/factorable/weakkeys/internal/report"
	"github.com/factorable/weakkeys/internal/scanstore"
	"github.com/factorable/weakkeys/internal/telemetry"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// gcdFaultPlan builds the node fault plan from -gcd-crash/-gcd-straggle
// specs; nil when no fault was requested.
func gcdFaultPlan(crashes, straggles []string) (*faults.NodePlan, error) {
	if len(crashes) == 0 && len(straggles) == 0 {
		return nil, nil
	}
	plan := faults.NewNodePlan()
	for _, s := range crashes {
		ph, node, err := faults.ParseCrashSpec(s)
		if err != nil {
			return nil, err
		}
		plan.Crash(node, ph)
	}
	for _, s := range straggles {
		ph, node, d, err := faults.ParseStraggleSpec(s)
		if err != nil {
			return nil, err
		}
		plan.Straggle(node, ph, d)
	}
	return plan, nil
}

func main() {
	var (
		seed      = flag.Int64("seed", 2016, "simulation seed")
		scale     = flag.Float64("scale", 1.0, "population scale multiplier")
		bits      = flag.Int("bits", 256, "RSA modulus size for simulated keys")
		subsets   = flag.Int("subsets", 16, "batch GCD subsets k (>=2 distributes; 1 = single tree)")
		mitm      = flag.Float64("mitm", 0.002, "per-device probability of the key-substituting middlebox")
		bitErr    = flag.Float64("biterr", 0.0002, "per-observation bit-error probability")
		other     = flag.Bool("other-protocols", true, "include SSH and mail-protocol corpora (Table 4)")
		table     = flag.Int("table", 0, "print one paper table (1-5)")
		figure    = flag.Int("figure", 0, "print one paper figure (1-10)")
		all       = flag.Bool("all", false, "print every table and figure")
		summary   = flag.Bool("summary", false, "print the headline-findings summary")
		anomalies = flag.Bool("anomalies", false, "run the beyond-GCD anomaly pass (shared moduli, exponent census, Fermat/small-factor probes) and print its summary")
		csvFor    = flag.String("csv", "", "emit the CSV time series for a vendor (e.g. Juniper)")
		vendor    = flag.String("vendor", "", "print the time-series chart for one vendor")
		sources   = flag.Bool("sources", false, "print the per-source corpus accounting")
		export    = flag.String("export", "", "write per-vendor CSV series into a directory")
		saveTo    = flag.String("save", "", "save the scan corpus to a file after the run")
		loadFrom  = flag.String("load", "", "analyze a previously saved scan corpus instead of simulating")
		metrics   = flag.Bool("metrics", false, "print the per-stage pipeline report (wall, CPU, items in/out) after the run")
		listen    = flag.String("listen", "", "serve live diagnostics on this address (/metrics, /debug/vars, /debug/pprof); :0 picks a port")
		traceOut  = flag.String("trace", "", "write a Chrome trace_event JSON file of the run's spans")
		hold      = flag.Duration("hold", 0, "keep the diagnostics server alive this long after the run (for scraping short runs)")
		quiet     = flag.Bool("q", false, "suppress progress output")
		logLevel  = flag.String("log-level", "warn", "stderr structured-log floor: debug, info, warn or error")
		logFormat = flag.String("log-format", "text", "stderr structured-log encoding: text or json")
		eventsN   = flag.Int("events", 1024, "flight-recorder capacity in events (/debug/events window)")

		gcdCrashes, gcdStraggles multiFlag
		gcdStragglerTimeout      = flag.Duration("gcd-straggler-timeout", 0, "speculatively re-execute GCD nodes slower than this (0 disables)")
	)
	flag.Var(&gcdCrashes, "gcd-crash", "inject a GCD node crash, phase:node (e.g. reduce:1); repeatable")
	flag.Var(&gcdStraggles, "gcd-straggle", "inject a GCD node stall, phase:node:duration (e.g. build:2:30s); repeatable")
	flag.Parse()

	gcdFaults, err := gcdFaultPlan(gcdCrashes, gcdStraggles)
	if err != nil {
		fmt.Fprintln(os.Stderr, "weakkeys:", err)
		os.Exit(1)
	}

	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	// Ctrl-C cancels the pipeline end to end: the context reaches every
	// stage, including the product-tree levels inside the batch GCD, so
	// interrupting mid-computation returns promptly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// One registry is shared by every layer; the tracer only exists when
	// a trace file was requested.
	reg := telemetry.New()
	var tracer *telemetry.Tracer
	if *traceOut != "" {
		tracer = telemetry.NewTracer()
	}
	teeLevel, err := telemetry.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "weakkeys:", err)
		os.Exit(1)
	}
	if *logFormat != "text" && *logFormat != "json" {
		fmt.Fprintf(os.Stderr, "weakkeys: -log-format must be text or json, got %q\n", *logFormat)
		os.Exit(1)
	}
	events := telemetry.NewEventLog(telemetry.EventConfig{
		Size:      *eventsN,
		Level:     slog.LevelDebug,
		Tee:       os.Stderr,
		TeeFormat: *logFormat,
		TeeLevel:  teeLevel,
	})
	writeTrace := func() {
		if *traceOut == "" {
			return
		}
		if err := tracer.WriteFile(*traceOut); err != nil {
			fmt.Fprintln(os.Stderr, "weakkeys: trace:", err)
			return
		}
		logf("wrote trace to %s (load at chrome://tracing or ui.perfetto.dev)", *traceOut)
	}
	diagnostics := &telemetry.Diagnostics{
		Registry: reg,
		Events:   events,
		Tracer:   tracer,
		Info:     map[string]string{"binary": "weakkeys"},
	}
	var diag *telemetry.Server
	if *listen != "" {
		var err error
		diag, err = diagnostics.ListenAndServe(*listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "weakkeys:", err)
			os.Exit(1)
		}
		defer diag.Close()
		logf("diagnostics on http://%s/metrics (also /debug/vars, /debug/events, /debug/bundle, /debug/pprof)", diag.Addr)
	}
	holdOpen := func() {
		if diag != nil && *hold > 0 {
			logf("holding diagnostics server for %v...", *hold)
			select {
			case <-time.After(*hold):
			case <-ctx.Done():
			}
		}
	}

	// Progress lines come from the pipeline's own stage events.
	progress := func(ev pipeline.Event) {
		switch ev.Kind {
		case pipeline.StageStart:
			logf("[%d/%d] %s...", ev.Index+1, ev.Total, ev.Stage)
		case pipeline.StageDone:
			logf("[%d/%d] %s done in %v (%d in, %d out)",
				ev.Index+1, ev.Total, ev.Stage, ev.Stats.Wall.Round(time.Millisecond),
				ev.Stats.ItemsIn, ev.Stats.ItemsOut)
		case pipeline.StageError:
			logf("[%d/%d] %s failed: %v", ev.Index+1, ev.Total, ev.Stage, ev.Err)
		}
	}

	start := time.Now()
	var study *core.Study
	if *loadFrom != "" {
		logf("loading corpus from %s...", *loadFrom)
		f, ferr := os.Open(*loadFrom)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "weakkeys:", ferr)
			os.Exit(1)
		}
		store, lerr := scanstore.Load(f)
		f.Close()
		if lerr != nil {
			fmt.Fprintln(os.Stderr, "weakkeys:", lerr)
			os.Exit(1)
		}
		study, err = core.AnalyzeStore(ctx, store, core.Options{
			KeyBits:             *bits,
			Subsets:             *subsets,
			Progress:            progress,
			Telemetry:           reg,
			Events:              events,
			Tracer:              tracer,
			GCDFaults:           gcdFaults,
			GCDStragglerTimeout: *gcdStragglerTimeout,
			Anomalies:           *anomalies,
		})
	} else {
		logf("running pipeline (scale %.2f, %d-bit keys, k=%d)...", *scale, *bits, *subsets)
		study, err = core.Run(ctx, core.Options{
			Seed:           *seed,
			KeyBits:        *bits,
			Scale:          *scale,
			Subsets:        *subsets,
			MITMRate:       *mitm,
			BitErrorRate:   *bitErr,
			OtherProtocols: *other,
			Progress:       progress,
			HarvestProgress: func(done, total int) {
				if done%24 == 0 {
					logf("  harvest: month %d/%d", done, total)
				}
			},
			Telemetry:           reg,
			Events:              events,
			Tracer:              tracer,
			GCDFaults:           gcdFaults,
			GCDStragglerTimeout: *gcdStragglerTimeout,
			Anomalies:           *anomalies,
		})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "weakkeys:", err)
		// A failed or interrupted run still has a cost profile: print the
		// partial per-stage report and the final registry snapshot so the
		// work done before the failure is not lost.
		if *metrics && study != nil && study.Report != nil {
			fmt.Fprintln(os.Stderr, "partial per-stage report:")
			study.Report.WriteText(os.Stderr)
			fmt.Fprintln(os.Stderr, "final metrics snapshot:")
			reg.Snapshot().WritePrometheus(os.Stderr)
		}
		writeTrace()
		holdOpen()
		os.Exit(1)
	}
	cs := study.Analyzer.CorpusStats()
	logf("pipeline done in %v: %d host records, %d distinct moduli, %d factored",
		time.Since(start).Round(time.Millisecond), cs.HTTPSHostRecords, cs.TotalDistinctModuli, cs.VulnerableModuli)
	if study.GCDStats.Reassigned > 0 {
		logf("distgcd supervisor reassigned %d subset(s) after node failures", study.GCDStats.Reassigned)
	}
	if study.GCDPartial != nil {
		fmt.Fprintln(os.Stderr, "weakkeys: warning: results are partial:", study.GCDPartial)
	}
	if *metrics {
		if err := study.Report.WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "weakkeys:", err)
			os.Exit(1)
		}
	}

	out := os.Stdout
	fail := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "weakkeys:", err)
			os.Exit(1)
		}
	}
	if *saveTo != "" {
		f, err := os.Create(*saveTo)
		fail(err)
		fail(study.Store.Save(f))
		fail(f.Close())
		logf("saved scan corpus to %s", *saveTo)
	}
	if *export != "" {
		files, err := study.ExportCSV(*export)
		fail(err)
		logf("exported %d CSV series to %s", files, *export)
	}
	switch {
	case *all:
		for n := 1; n <= 5; n++ {
			fail(study.Table(out, n))
			fmt.Fprintln(out)
		}
		fail(study.Sources(out))
		fmt.Fprintln(out)
		for _, n := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} {
			fail(study.Figure(out, n))
			fmt.Fprintln(out)
		}
		fail(study.Summary(out))
	case *sources:
		fail(study.Sources(out))
	case *summary:
		fail(study.Summary(out))
	case *table != 0:
		fail(study.Table(out, *table))
	case *figure != 0:
		fail(study.Figure(out, *figure))
	case *csvFor != "":
		series := study.VendorSeries(*csvFor, "")
		fail(reportCSV(out, series))
	case *vendor != "":
		series := study.VendorSeries(*vendor, "")
		series.Name = *vendor + " hosts (total and vulnerable)"
		fail(report.SeriesChart(out, series, 8))
	default:
		if !*anomalies {
			fail(study.Table(out, 1))
			fmt.Fprintln(out)
			fail(study.Figure(out, 1))
		}
	}
	if *anomalies {
		fmt.Fprintln(out)
		fail(study.Anomalies(out))
	}
	writeTrace()
	holdOpen()
}

// reportCSV writes the series as CSV on w.
func reportCSV(w *os.File, s analysis.Series) error {
	return report.SeriesCSV(w, s)
}

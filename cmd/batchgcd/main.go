// Command batchgcd factors RSA moduli that share prime factors. It reads
// one hexadecimal modulus per line from a file (or stdin), runs the batch
// GCD — the quasilinear single-tree algorithm, or the paper's k-subset
// cluster-partitioned variant — and prints each vulnerable modulus with
// its recovered factors.
//
//	batchgcd -k 16 moduli.hex
//	weakkeys-generated corpora, openssl-exported moduli, etc.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"math/big"
	"os"
	"strings"
	"time"

	"github.com/factorable/weakkeys/internal/batchgcd"
	"github.com/factorable/weakkeys/internal/certs"
	"github.com/factorable/weakkeys/internal/distgcd"
	"github.com/factorable/weakkeys/internal/sshkeys"
	"github.com/factorable/weakkeys/internal/telemetry"
)

func main() {
	var (
		k       = flag.Int("k", 1, "number of subsets (>=2 runs the cluster-partitioned variant)")
		stats   = flag.Bool("stats", false, "print timing and memory statistics")
		listen  = flag.String("listen", "", "serve live diagnostics on this address (/metrics, /debug/vars, /debug/pprof)")
		metrics = flag.Bool("metrics", false, "dump the final metrics snapshot (Prometheus text format) to stderr")
	)
	flag.Parse()

	reg := telemetry.New()
	if *listen != "" {
		srv, err := telemetry.ListenAndServe(*listen, reg)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "diagnostics on http://%s/metrics\n", srv.Addr)
	}

	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	moduli, err := readModuli(in)
	if err != nil {
		fatal(err)
	}
	if len(moduli) == 0 {
		fatal(fmt.Errorf("no moduli on input"))
	}

	start := time.Now()
	var results []batchgcd.Result
	var runStats distgcd.Stats
	if *k >= 2 {
		results, runStats, err = distgcd.Run(context.Background(), moduli, distgcd.Options{Subsets: *k, Metrics: reg})
	} else {
		results, err = batchgcd.Factor(moduli)
	}
	if err != nil {
		fatal(err)
	}
	for _, r := range results {
		n := moduli[r.Index]
		p, q, splitErr := batchgcd.SplitModulus(n, r.Divisor)
		if splitErr != nil {
			// Both primes shared: report the divisor only.
			fmt.Printf("%d vulnerable divisor=%x\n", r.Index, r.Divisor)
			continue
		}
		fmt.Printf("%d vulnerable p=%x q=%x\n", r.Index, p, q)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "factored %d of %d moduli in %v\n",
			len(results), len(moduli), time.Since(start).Round(time.Millisecond))
		if *k >= 2 {
			fmt.Fprintf(os.Stderr, "k=%d: total CPU %v, peak per-node tree %d bytes\n",
				runStats.Subsets, runStats.CPU.Round(time.Millisecond), runStats.Bytes)
		}
	}
	if *metrics {
		reg.Snapshot().WritePrometheus(os.Stderr)
	}
}

// readModuli parses the input as PEM modulus blocks (cmd/keygen -format
// pem) when it starts with a PEM header, otherwise as one hex modulus per
// line; blank lines and #-comments are skipped.
func readModuli(r io.Reader) ([]*big.Int, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if strings.HasPrefix(strings.TrimSpace(string(data)), "-----BEGIN") {
		return certs.ParseModulusPEMs(data)
	}
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []*big.Int
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// authorized_keys / known_hosts style ssh-rsa lines.
		if strings.HasPrefix(line, sshkeys.KeyType+" ") {
			key, _, err := sshkeys.ParseAuthorizedKey(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			out = append(out, key.N)
			continue
		}
		line = strings.TrimPrefix(line, "0x")
		// keygen -private lines carry "N p=... q=..."; use field one.
		if i := strings.IndexByte(line, ' '); i > 0 {
			line = line[:i]
		}
		n, ok := new(big.Int).SetString(line, 16)
		if !ok || n.Sign() <= 0 {
			return nil, fmt.Errorf("line %d: not a hex modulus", lineNo)
		}
		out = append(out, n)
	}
	return out, sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "batchgcd:", err)
	os.Exit(1)
}

// Command gcdbench benchmarks the batch-GCD math kernel: the full
// product-tree + squared-remainder-tree + GCD-sweep pipeline
// (batchgcd.FactorCtx) over a synthetic corpus, executed on
// internal/kernel engines of different widths.
//
// It measures three things the refactor claims:
//
//   - scaling: wall clock on the GOMAXPROCS-wide pooled engine versus
//     the 1-worker serial baseline, plus a full workers sweep
//     (1, 2, 4, ... up to the core count) so the scaling curve is in
//     the report, not just its endpoints;
//   - allocations: total mallocs with arena recycling on versus an
//     engine with recycling disabled — the pre-refactor
//     new-big.Int-per-node behaviour;
//   - kernel telemetry: the engine's own ops/chunks/arena ledger.
//
// Results land in a JSON report (see -json); scripts/bench-gcd.sh
// enforces the acceptance floors (>=2x speedup on 4+ cores, arenas
// strictly cheaper than no arenas).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/big"
	"math/rand"
	"os"
	"runtime"
	"time"

	"github.com/factorable/weakkeys/internal/batchgcd"
	"github.com/factorable/weakkeys/internal/kernel"
)

type sweepPoint struct {
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
	Speedup float64 `json:"speedup_vs_serial"`
}

type report struct {
	Moduli      int `json:"moduli"`
	ModulusBits int `json:"modulus_bits"`
	Runs        int `json:"runs"`
	Cores       int `json:"cores"`
	GOMAXPROCS  int `json:"gomaxprocs"`
	Vulnerable  int `json:"vulnerable"`

	SerialSeconds   float64 `json:"serial_seconds"`
	ParallelSeconds float64 `json:"parallel_seconds"`
	Speedup         float64 `json:"speedup"`

	ParallelAllocs uint64  `json:"parallel_allocs"`
	NoArenaAllocs  uint64  `json:"noarena_allocs"`
	AllocsSavedPct float64 `json:"allocs_saved_pct"`

	Sweep  []sweepPoint `json:"workers_sweep"`
	Kernel kernel.Stats `json:"kernel"`
}

func main() {
	var (
		nModuli = flag.Int("moduli", 20000, "corpus size in distinct moduli")
		seed    = flag.Int64("seed", 2016, "corpus generation seed")
		runs    = flag.Int("runs", 2, "timed repetitions per configuration (best run is reported)")
		jsonOut = flag.String("json", "", "write the JSON report to this file (default stdout)")
		quiet   = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	fatal := func(err error) {
		fmt.Fprintln(os.Stderr, "gcdbench:", err)
		os.Exit(1)
	}

	logf("generating %d moduli from seed %d...", *nModuli, *seed)
	t0 := time.Now()
	mods := generateCorpus(rand.New(rand.NewSource(*seed)), *nModuli)
	logf("corpus ready in %v", time.Since(t0).Round(time.Millisecond))

	cores := runtime.NumCPU()
	out := report{
		Moduli:      *nModuli,
		ModulusBits: mods[0].BitLen(),
		Runs:        *runs,
		Cores:       cores,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}

	// measure runs FactorCtx on eng, returning the best wall clock over
	// -runs repetitions, the malloc count of the last repetition, and
	// the result count (cross-checked across configurations).
	measure := func(eng *kernel.Engine) (time.Duration, uint64, int) {
		ctx := kernel.With(context.Background(), eng)
		best := time.Duration(0)
		var allocs uint64
		var found int
		for r := 0; r < *runs; r++ {
			runtime.GC()
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			t0 := time.Now()
			res, err := batchgcd.FactorCtx(ctx, mods)
			d := time.Since(t0)
			runtime.ReadMemStats(&m1)
			if err != nil {
				fatal(err)
			}
			found = len(res)
			allocs = m1.Mallocs - m0.Mallocs
			if best == 0 || d < best {
				best = d
			}
		}
		return best, allocs, found
	}

	// Workers sweep: 1, 2, 4, ... up to the core count (always
	// including the core count itself). The 1-worker point is the
	// serial baseline, the widest point the production shape.
	var widths []int
	for w := 1; w < cores; w *= 2 {
		widths = append(widths, w)
	}
	widths = append(widths, cores)

	var serial, parallel time.Duration
	for _, w := range widths {
		eng := kernel.New(w)
		d, allocs, found := measure(eng)
		if out.Vulnerable != 0 && found != out.Vulnerable {
			fatal(fmt.Errorf("workers=%d found %d vulnerable, earlier run found %d", w, found, out.Vulnerable))
		}
		out.Vulnerable = found
		out.Sweep = append(out.Sweep, sweepPoint{Workers: w, Seconds: d.Seconds()})
		if w == 1 {
			serial = d
		}
		if w == cores {
			parallel = d
			out.ParallelAllocs = allocs
			out.Kernel = eng.Stats()
		}
		eng.Close()
		logf("workers=%d: %v (%d vulnerable, %d allocs)", w, d.Round(time.Millisecond), found, allocs)
	}
	for i := range out.Sweep {
		out.Sweep[i].Speedup = serial.Seconds() / out.Sweep[i].Seconds
	}
	out.SerialSeconds = serial.Seconds()
	out.ParallelSeconds = parallel.Seconds()
	out.Speedup = serial.Seconds() / parallel.Seconds()

	// Arena ablation: same width, recycling off — the pre-refactor
	// allocation behaviour (a fresh big.Int per scratch value).
	legacy := kernel.New(cores, kernel.WithoutArenaReuse())
	d, noArena, found := measure(legacy)
	legacy.Close()
	if found != out.Vulnerable {
		fatal(fmt.Errorf("no-arena run found %d vulnerable, arena run found %d", found, out.Vulnerable))
	}
	out.NoArenaAllocs = noArena
	if noArena > 0 {
		out.AllocsSavedPct = 100 * (1 - float64(out.ParallelAllocs)/float64(noArena))
	}
	logf("no-arena: %v (%d allocs; arenas save %.1f%%)", d.Round(time.Millisecond), noArena, out.AllocsSavedPct)

	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *jsonOut != "" {
		if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
			fatal(err)
		}
	} else {
		os.Stdout.Write(buf)
	}
	logf("serial %v, parallel %v on %d cores: %.2fx",
		serial.Round(time.Millisecond), parallel.Round(time.Millisecond), cores, out.Speedup)
}

// generateCorpus returns n distinct 128-bit semiprimes with about 1%
// sharing a prime with another modulus, the paper's population shape.
func generateCorpus(rng *rand.Rand, n int) []*big.Int {
	prime := func() *big.Int {
		for {
			p := new(big.Int).SetUint64(rng.Uint64() | 1<<63 | 1)
			if p.ProbablyPrime(0) {
				return p
			}
		}
	}
	mods := make([]*big.Int, 0, n)
	seen := make(map[string]bool, n)
	add := func(m *big.Int) {
		key := string(m.Bytes())
		if !seen[key] {
			seen[key] = true
			mods = append(mods, m)
		}
	}
	for len(mods) < n/100 {
		shared := prime()
		add(new(big.Int).Mul(shared, prime()))
		add(new(big.Int).Mul(shared, prime()))
	}
	for len(mods) < n {
		add(new(big.Int).Mul(prime(), prime()))
	}
	rng.Shuffle(len(mods), func(i, j int) { mods[i], mods[j] = mods[j], mods[i] })
	return mods
}

// Command ingestbench measures incremental corpus ingestion against the
// full index rebuild it replaces. It synthesizes a corpus of 128-bit
// RSA moduli (a small fraction sharing primes, as in the paper's
// population), splits off a delta, and times:
//
//   - full:   batch GCD over the whole corpus, factor recovery, then
//     keycheck.Build from scratch — the paper's re-run-everything loop
//   - ingest: Snapshot.Ingest of the delta into the existing index
//
// Both paths end at the same place: a snapshot with complete verdicts
// (including factors) for every corpus modulus. The ingest path probes
// the delta against the existing per-shard products, runs a delta-local
// batch GCD, and extends only the touched product trees — so it should
// beat the full rebuild by a wide margin.
// Results land in a JSON report (see -json) with the measured speedup;
// scripts/bench-ingest.sh enforces the >=5x acceptance floor.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/big"
	"math/rand"
	"os"
	"time"

	"github.com/factorable/weakkeys/internal/batchgcd"
	"github.com/factorable/weakkeys/internal/fingerprint"
	"github.com/factorable/weakkeys/internal/keycheck"
	"github.com/factorable/weakkeys/internal/scanstore"
)

type report struct {
	CorpusModuli     int     `json:"corpus_moduli"`
	DeltaModuli      int     `json:"delta_moduli"`
	Shards           int     `json:"shards"`
	Runs             int     `json:"runs"`
	FullBuildSeconds float64 `json:"full_build_seconds"`
	IngestSeconds    float64 `json:"ingest_seconds"`
	Speedup          float64 `json:"speedup"`
	TouchedShards    int     `json:"touched_shards"`
	NodesReused      int     `json:"nodes_reused"`
	NodesBuilt       int     `json:"nodes_built"`
	NewFactored      int     `json:"new_factored"`
	Refactored       int     `json:"refactored"`
}

func main() {
	var (
		nModuli   = flag.Int("moduli", 20000, "corpus size in distinct moduli")
		deltaFrac = flag.Float64("delta", 0.05, "fraction of the corpus arriving as the delta")
		shards    = flag.Int("shards", keycheck.DefaultShards, "index shard count")
		seed      = flag.Int64("seed", 2016, "corpus generation seed")
		runs      = flag.Int("runs", 3, "timed repetitions (best run is reported)")
		jsonOut   = flag.String("json", "", "write the JSON report to this file (default stdout)")
		quiet     = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	fatal := func(err error) {
		fmt.Fprintln(os.Stderr, "ingestbench:", err)
		os.Exit(1)
	}

	deltaN := int(float64(*nModuli) * *deltaFrac)
	if deltaN < 1 || deltaN >= *nModuli {
		fatal(fmt.Errorf("delta fraction %v leaves no base or no delta", *deltaFrac))
	}

	logf("generating %d moduli (%d delta) from seed %d...", *nModuli, deltaN, *seed)
	start := time.Now()
	mods := generateCorpus(rand.New(rand.NewSource(*seed)), *nModuli)
	base, delta := mods[:*nModuli-deltaN], mods[*nModuli-deltaN:]
	fullStore := storeFor(mods)
	baseStore := storeFor(base)
	deltaStore := storeFor(delta)
	logf("corpus ready in %v", time.Since(start).Round(time.Millisecond))

	// fullPipeline is everything a restart pays today: batch GCD across
	// the whole corpus, factor recovery, and a from-scratch index build.
	ctx := context.Background()
	fullPipeline := func() (*keycheck.Snapshot, error) {
		results, err := batchgcd.FactorCtx(ctx, mods)
		if err != nil {
			return nil, err
		}
		fp := &fingerprint.Result{Factors: make(map[string]fingerprint.Factors, len(results))}
		for _, r := range results {
			n := mods[r.Index]
			if r.Divisor.Cmp(n) == 0 {
				continue // clique divisor; Build treats it as unrecovered
			}
			p, q, err := batchgcd.SplitModulus(n, r.Divisor)
			if err != nil {
				continue
			}
			fp.Factors[string(n.Bytes())] = fingerprint.Factors{P: p, Q: q}
		}
		return keycheck.Build(ctx, keycheck.BuildInput{Store: fullStore, Fingerprint: fp, Shards: *shards})
	}

	fullBest := time.Duration(0)
	var fullFactored int
	for r := 0; r < *runs; r++ {
		t0 := time.Now()
		snap, err := fullPipeline()
		if err != nil {
			fatal(err)
		}
		d := time.Since(t0)
		if fullBest == 0 || d < fullBest {
			fullBest = d
		}
		fullFactored = snap.Factored()
		logf("full gcd+build %d/%d: %v (%d factored)", r+1, *runs, d.Round(time.Millisecond), snap.Factored())
	}

	// The base index is last month's completed analysis: batch GCD over
	// the base corpus, factors recovered, index built. Untimed — the
	// incremental path inherits it instead of redoing it.
	baseResults, err := batchgcd.FactorCtx(ctx, base)
	if err != nil {
		fatal(err)
	}
	baseFP := &fingerprint.Result{Factors: make(map[string]fingerprint.Factors, len(baseResults))}
	for _, r := range baseResults {
		n := base[r.Index]
		if r.Divisor.Cmp(n) == 0 {
			continue
		}
		p, q, err := batchgcd.SplitModulus(n, r.Divisor)
		if err != nil {
			continue
		}
		baseFP.Factors[string(n.Bytes())] = fingerprint.Factors{P: p, Q: q}
	}
	old, err := keycheck.Build(ctx, keycheck.BuildInput{Store: baseStore, Fingerprint: baseFP, Shards: *shards})
	if err != nil {
		fatal(err)
	}

	ingestBest := time.Duration(0)
	var rep keycheck.IngestReport
	for r := 0; r < *runs; r++ {
		t0 := time.Now()
		snap, ir, err := old.Ingest(ctx, keycheck.BuildInput{Store: deltaStore})
		if err != nil {
			fatal(err)
		}
		d := time.Since(t0)
		if got := snap.Factored(); got != fullFactored {
			fatal(fmt.Errorf("ingest snapshot factored %d moduli, full pipeline factored %d", got, fullFactored))
		}
		if ingestBest == 0 || d < ingestBest {
			ingestBest, rep = d, ir
		}
		logf("ingest %d/%d: %v (%d novel, %d factored, %d fold-backs, %d/%d shards touched)",
			r+1, *runs, d.Round(time.Millisecond), ir.DeltaModuli, ir.NewFactored, ir.Refactored,
			ir.TouchedShards, len(ir.Shards))
	}

	out := report{
		CorpusModuli:     *nModuli,
		DeltaModuli:      deltaN,
		Shards:           *shards,
		Runs:             *runs,
		FullBuildSeconds: fullBest.Seconds(),
		IngestSeconds:    ingestBest.Seconds(),
		Speedup:          fullBest.Seconds() / ingestBest.Seconds(),
		TouchedShards:    rep.TouchedShards,
		NodesReused:      rep.NodesReused,
		NodesBuilt:       rep.NodesBuilt,
		NewFactored:      rep.NewFactored,
		Refactored:       rep.Refactored,
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *jsonOut != "" {
		if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
			fatal(err)
		}
	} else {
		os.Stdout.Write(buf)
	}
	logf("full build %v, ingest %v: %.1fx", fullBest.Round(time.Millisecond),
		ingestBest.Round(time.Millisecond), out.Speedup)
}

// generateCorpus returns n distinct 128-bit semiprimes. About 1% share
// a prime with another modulus — half of those pairs straddle the
// base/delta boundary so the ingest pays for mate fold-back too.
func generateCorpus(rng *rand.Rand, n int) []*big.Int {
	prime := func() *big.Int {
		for {
			p := new(big.Int).SetUint64(rng.Uint64() | 1<<63 | 1)
			if p.ProbablyPrime(0) {
				return p
			}
		}
	}
	mods := make([]*big.Int, 0, n)
	seen := make(map[string]bool, n)
	add := func(m *big.Int) {
		key := string(m.Bytes())
		if !seen[key] {
			seen[key] = true
			mods = append(mods, m)
		}
	}
	weak := n / 100
	for len(mods) < weak {
		shared := prime()
		add(new(big.Int).Mul(shared, prime()))
		add(new(big.Int).Mul(shared, prime()))
	}
	for len(mods) < n {
		add(new(big.Int).Mul(prime(), prime()))
	}
	// Shuffle so the shared-prime mates scatter across the base/delta
	// split and across shards.
	rng.Shuffle(len(mods), func(i, j int) { mods[i], mods[j] = mods[j], mods[i] })
	return mods[:n]
}

func storeFor(mods []*big.Int) *scanstore.Store {
	st := scanstore.New()
	when := time.Date(2016, 3, 1, 0, 0, 0, 0, time.UTC)
	for i, m := range mods {
		st.AddBareKeyObservation(fmt.Sprintf("192.0.2.%d", i%250), when, scanstore.SourceCensys, scanstore.HTTPS, m)
	}
	return st
}

// Command keyrouter fronts a cluster of keyserverd replicas: it owns no
// index itself, only the placement arithmetic. A /v1/check for a corpus
// member is answered by the replica owning the modulus's home shard in
// one hop; a novel modulus is scatter-gathered across owners of every
// shard so the distributed GCD sweep still covers the whole corpus.
// Replica failures retry against placement peers with backoff, slow
// home forwards are hedged to the secondary owner, and when a shard has
// no reachable owner the router answers from the coverage it has with
// "degraded": true and the unreachable shard list instead of a 500.
//
//	POST /v1/check       route one modulus/certificate check
//	POST /v1/ingest      route new moduli to their home-shard owners
//	GET  /v1/exemplars   proxied from any usable replica
//	GET  /cluster/status placement, per-replica health, breakers
//	GET  /healthz        router liveness
//	GET  /readyz         200 only while every shard has a usable owner
//	/metrics /debug/*    the usual diagnostics pillar
//
// The -replicas list must be the same ordered list every replica was
// started with (-cluster-peers): placement is pure arithmetic over that
// list, so agreement on it is the only coordination the cluster needs.
//
// Example (three replicas, replication 2):
//
//	keyserverd -listen 127.0.0.1:9001 -cluster-self 127.0.0.1:9001 \
//	    -cluster-peers 127.0.0.1:9001,127.0.0.1:9002,127.0.0.1:9003 &
//	... same for :9002 and :9003 ...
//	keyrouter -listen 127.0.0.1:9000 \
//	    -replicas 127.0.0.1:9001,127.0.0.1:9002,127.0.0.1:9003
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/factorable/weakkeys/internal/cluster"
	"github.com/factorable/weakkeys/internal/keycheck"
	"github.com/factorable/weakkeys/internal/telemetry"
)

func main() {
	var (
		listen       = flag.String("listen", "127.0.0.1:9000", "serve the routed check API on this address; :0 picks a port")
		replicas     = flag.String("replicas", "", "comma-separated ordered host:port list of the keyserverd replicas (required)")
		shards       = flag.Int("shards", keycheck.DefaultShards, "cluster-wide shard count (must match the replicas)")
		replication  = flag.Int("replication", cluster.DefaultReplication, "shard replication factor (must match the replicas)")
		reqTimeout   = flag.Duration("request-timeout", 10*time.Second, "per-replica request timeout")
		retries      = flag.Int("retries", 3, "extra scatter rounds for shards whose owner failed (negative: none)")
		retryBackoff = flag.Duration("retry-backoff", 50*time.Millisecond, "first inter-round retry delay (doubled per round, jittered)")
		retryBudget  = flag.Int64("retry-budget", 10000, "lifetime cap on retry requests (negative disables)")
		hedgeAfter   = flag.Duration("hedge-after", 250*time.Millisecond, "duplicate a slow home forward to the peer owner after this long (negative disables)")
		probeEvery   = flag.Duration("probe-interval", 500*time.Millisecond, "replica /readyz probe interval")
		probeTimeout = flag.Duration("probe-timeout", time.Second, "replica /readyz probe timeout")
		brkFailures  = flag.Int("breaker-failures", 3, "consecutive failures that open a replica's circuit breaker")
		brkCooldown  = flag.Duration("breaker-cooldown", time.Second, "how long an open breaker waits before the half-open probe")
		drainFor     = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown deadline")
		quiet        = flag.Bool("q", false, "suppress progress output")
		logLevel     = flag.String("log-level", "info", "stderr log floor: debug, info, warn or error")
		logFormat    = flag.String("log-format", "text", "stderr log encoding: text or json")
		eventsN      = flag.Int("events", 1024, "flight-recorder capacity in events")
	)
	flag.Parse()

	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	fatal := func(err error) {
		fmt.Fprintln(os.Stderr, "keyrouter:", err)
		os.Exit(1)
	}

	var addrs []string
	for _, r := range strings.Split(*replicas, ",") {
		if r = strings.TrimSpace(r); r != "" {
			addrs = append(addrs, r)
		}
	}
	if len(addrs) == 0 {
		fatal(errors.New("-replicas is required (comma-separated host:port list)"))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	reg := telemetry.New()
	teeLevel, err := telemetry.ParseLevel(*logLevel)
	if err != nil {
		fatal(err)
	}
	if *logFormat != "text" && *logFormat != "json" {
		fatal(fmt.Errorf("-log-format must be text or json, got %q", *logFormat))
	}
	events := telemetry.NewEventLog(telemetry.EventConfig{
		Size:      *eventsN,
		Level:     slog.LevelDebug,
		Tee:       os.Stderr,
		TeeFormat: *logFormat,
		TeeLevel:  teeLevel,
	})

	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Replicas:        addrs,
		Shards:          *shards,
		Replication:     *replication,
		RequestTimeout:  *reqTimeout,
		Retries:         *retries,
		RetryBackoff:    *retryBackoff,
		RetryBudget:     *retryBudget,
		HedgeAfter:      *hedgeAfter,
		ProbeInterval:   *probeEvery,
		ProbeTimeout:    *probeTimeout,
		BreakerFailures: *brkFailures,
		BreakerCooldown: *brkCooldown,
		Metrics:         reg,
		Events:          events,
	})
	if err != nil {
		fatal(err)
	}
	rt.Start(ctx)
	p := rt.Placement()
	for _, addr := range addrs {
		logf("replica %s owns shards %v", addr, p.OwnedBy(addr))
	}

	diag := &telemetry.Diagnostics{
		Registry: reg,
		Events:   events,
		Info: map[string]string{
			"binary":      "keyrouter",
			"listen":      *listen,
			"replicas":    strings.Join(addrs, ","),
			"shards":      fmt.Sprint(*shards),
			"replication": fmt.Sprint(p.Replication()),
		},
	}
	mux := rt.Mux()
	diagMux := diag.Mux()
	mux.Handle("/metrics", diagMux)
	mux.Handle("/debug/", diagMux)

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}()
	logf("cluster router on http://%s/v1/check (%d replicas, %d shards, replication %d)",
		ln.Addr(), len(addrs), p.Shards(), p.Replication())
	events.Info(ctx, "serving", slog.String("addr", ln.Addr().String()))

	<-ctx.Done()
	logf("shutting down...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "keyrouter: shutdown:", err)
	}
	logf("bye")
}

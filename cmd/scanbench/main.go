// Command scanbench benchmarks the zscan engine and audits its
// sharding guarantees, in process (no sockets — the simulated fleet is
// the target, so the number measured is the engine's own overhead:
// permutation stepping, pacing bookkeeping, window accounting, harvest
// dispatch).
//
// It produces three results:
//
//   - throughput: best unpaced single-process probes/sec over -runs
//     sweeps of the whole space — the number scripts/bench-scan.sh
//     holds against its floor;
//   - shard audit: a per-index visit count over a 2-shard walk of the
//     full space, proving zero overlap and zero omission exactly (not
//     statistically), plus the shard size imbalance;
//   - shard sweep: both shards run as concurrent engines against one
//     fleet, checking the harvested device sets partition the fleet.
//
// Results land in a JSON report (see -json); scripts/bench-scan.sh
// enforces the floors.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/factorable/weakkeys/internal/scanstore"
	"github.com/factorable/weakkeys/internal/zscan"
)

type shardAudit struct {
	Shards   int    `json:"shards"`
	Space    uint64 `json:"space"`
	Covered  uint64 `json:"covered"`
	Overlap  uint64 `json:"overlap"`
	Omission uint64 `json:"omission"`
	// ImbalancePct is the max deviation of a shard's target count from
	// the even split, in percent.
	ImbalancePct float64  `json:"imbalance_pct"`
	ShardSizes   []uint64 `json:"shard_sizes"`
}

type shardSweep struct {
	Shards    int    `json:"shards"`
	Devices   int    `json:"devices"`
	Harvested int    `json:"harvested"`
	Duplicate int    `json:"duplicate_devices"`
	Probes    uint64 `json:"probes"`
}

type report struct {
	Space      uint64 `json:"space"`
	Devices    int    `json:"devices"`
	Workers    int    `json:"workers"`
	Runs       int    `json:"runs"`
	Cores      int    `json:"cores"`
	GOMAXPROCS int    `json:"gomaxprocs"`

	ProbesPerSec int64   `json:"probes_per_sec"`
	BestSeconds  float64 `json:"best_seconds"`
	Hits         uint64  `json:"hits"`

	Audit shardAudit `json:"shard_audit"`
	Sweep shardSweep `json:"shard_sweep"`
}

func main() {
	var (
		space   = flag.Uint64("space", 1<<21, "address-space size for the timed sweep")
		devs    = flag.Int("devices", 256, "devices in the simulated fleet")
		seed    = flag.Int64("seed", 2016, "permutation and fleet seed")
		workers = flag.Int("workers", 0, "probe workers (0 = GOMAXPROCS)")
		runs    = flag.Int("runs", 2, "timed sweeps (best is reported)")
		jsonOut = flag.String("json", "", "write the JSON report to this file (default stdout)")
		quiet   = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	fatal := func(err error) {
		fmt.Fprintln(os.Stderr, "scanbench:", err)
		os.Exit(1)
	}

	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	out := report{
		Space:      *space,
		Devices:    *devs,
		Workers:    w,
		Runs:       *runs,
		Cores:      runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	logf("building fleet: %d devices over %d addresses...", *devs, *space)
	fleet, err := zscan.NewSimFleet(zscan.FleetOptions{
		Space: *space, Devices: *devs, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}

	// Throughput: unpaced full-space sweeps, best of -runs.
	var best time.Duration
	for r := 0; r < *runs; r++ {
		eng, err := zscan.New(zscan.Options{
			Space: *space, Seed: *seed, Workers: w,
			Prober: fleet, Store: scanstore.New(),
		})
		if err != nil {
			fatal(err)
		}
		rep, err := eng.Run(context.Background())
		if err != nil {
			fatal(err)
		}
		if rep.Probes != *space {
			fatal(fmt.Errorf("sweep probed %d of %d addresses", rep.Probes, *space))
		}
		out.Hits = rep.Hits
		if best == 0 || rep.Elapsed < best {
			best = rep.Elapsed
		}
		logf("run %d: %d probes in %v (%.0f probes/sec, %d hits)",
			r+1, rep.Probes, rep.Elapsed.Round(time.Millisecond), rep.ProbesPerSec, rep.Hits)
	}
	out.BestSeconds = best.Seconds()
	out.ProbesPerSec = int64(float64(*space) / best.Seconds())

	// Shard audit: exact per-index visit accounting over a 2-shard walk.
	logf("auditing 2-shard coverage over %d addresses...", *space)
	out.Audit = auditShards(*space, *seed, 2, fatal)

	// Shard sweep: the same partition exercised through full engines
	// running concurrently, harvest-level.
	logf("running 2 concurrent shard engines...")
	out.Sweep = sweepShards(fleet, *space, *seed, 2, w, fatal)

	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		fatal(err)
	}
	buf = append(buf, '\n')
	if *jsonOut != "" {
		if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
			fatal(err)
		}
	} else {
		os.Stdout.Write(buf)
	}
	logf("best sweep %.2fs -> %d probes/sec; audit: %d covered, %d overlap, %d omitted",
		out.BestSeconds, out.ProbesPerSec, out.Audit.Covered, out.Audit.Overlap, out.Audit.Omission)
}

// auditShards walks every shard of a fresh cycle and counts visits per
// index — exact coverage proof, one byte per address.
func auditShards(space uint64, seed int64, shards int, fatal func(error)) shardAudit {
	cyc, err := zscan.NewCycle(space, seed)
	if err != nil {
		fatal(err)
	}
	counts := make([]uint8, space)
	audit := shardAudit{Shards: shards, Space: space}
	for s := 0; s < shards; s++ {
		walk, err := cyc.Shard(s, shards)
		if err != nil {
			fatal(err)
		}
		var n uint64
		for {
			idx, ok := walk.Next()
			if !ok {
				break
			}
			if counts[idx] < 255 {
				counts[idx]++
			}
			n++
		}
		audit.ShardSizes = append(audit.ShardSizes, n)
	}
	for _, c := range counts {
		switch {
		case c == 0:
			audit.Omission++
		case c == 1:
			audit.Covered++
		default:
			audit.Covered++
			audit.Overlap += uint64(c - 1)
		}
	}
	even := float64(space) / float64(shards)
	for _, n := range audit.ShardSizes {
		dev := 100 * (float64(n) - even) / even
		if dev < 0 {
			dev = -dev
		}
		if dev > audit.ImbalancePct {
			audit.ImbalancePct = dev
		}
	}
	return audit
}

// sweepShards runs one engine per shard concurrently against a shared
// fleet and checks the harvested devices partition it.
func sweepShards(fleet *zscan.SimFleet, space uint64, seed int64, shards, workers int, fatal func(error)) shardSweep {
	stores := make([]*scanstore.Store, shards)
	reports := make([]zscan.Report, shards)
	var wg sync.WaitGroup
	errs := make([]error, shards)
	for s := 0; s < shards; s++ {
		stores[s] = scanstore.New()
		eng, err := zscan.New(zscan.Options{
			Space: space, Seed: seed, Shard: s, Shards: shards,
			Workers: workers, Prober: fleet, Store: stores[s],
		})
		if err != nil {
			fatal(err)
		}
		wg.Add(1)
		go func(s int, eng *zscan.Engine) {
			defer wg.Done()
			reports[s], errs[s] = eng.Run(context.Background())
		}(s, eng)
	}
	wg.Wait()
	sweep := shardSweep{Shards: shards, Devices: fleet.DeviceCount()}
	var ips []string
	for s := 0; s < shards; s++ {
		if errs[s] != nil {
			fatal(errs[s])
		}
		sweep.Probes += reports[s].Probes
		for _, r := range stores[s].Records() {
			ips = append(ips, r.IP)
		}
	}
	sweep.Harvested = len(ips)
	sort.Strings(ips)
	for i := 1; i < len(ips); i++ {
		if ips[i] == ips[i-1] {
			sweep.Duplicate++
		}
	}
	return sweep
}

module github.com/factorable/weakkeys

go 1.22

// Package weakkeys is a from-scratch Go reproduction of "Weak Keys Remain
// Widespread in Network Devices" (Hastings, Fried, Heninger; ACM IMC
// 2016): the batch-GCD factoring core (single-tree and cluster-
// partitioned), the flawed-RNG key-generation substrate, a simulated
// six-year internet-wide scan corpus, the implementation-fingerprint
// pipeline, and the longitudinal vendor-response analysis.
//
// The implementation lives under internal/; the runnable surfaces are the
// commands under cmd/ (weakkeys, batchgcd, scanmock), the examples under
// examples/, and the benchmark harness in bench_test.go, which
// regenerates every table and figure of the paper's evaluation. See
// README.md, DESIGN.md and EXPERIMENTS.md.
package weakkeys

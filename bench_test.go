// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus the ablation benches DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem
//
// The Table/Figure benches measure the cost of regenerating each result
// from a shared, cached study (the study itself is timed by
// BenchmarkStudyPipeline); Figure 2's bench is the experiment itself — a
// subset-count sweep of the cluster-partitioned batch GCD with total-CPU
// and peak-memory metrics reported alongside wall-clock time.
package weakkeys_test

import (
	"context"
	"io"
	"math/big"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/factorable/weakkeys/internal/batchgcd"
	"github.com/factorable/weakkeys/internal/certs"
	"github.com/factorable/weakkeys/internal/core"
	"github.com/factorable/weakkeys/internal/devices"
	"github.com/factorable/weakkeys/internal/distgcd"
	"github.com/factorable/weakkeys/internal/numtheory"
	"github.com/factorable/weakkeys/internal/pipeline"
	"github.com/factorable/weakkeys/internal/population"
	"github.com/factorable/weakkeys/internal/prodtree"
	"github.com/factorable/weakkeys/internal/scanner"
	"github.com/factorable/weakkeys/internal/weakrsa"
)

// ---- shared fixtures -------------------------------------------------

var (
	studyOnce sync.Once
	study     *core.Study
	studyErr  error
)

// benchStudy returns a cached 10%-scale study (every pipeline stage is
// identical to full scale).
func benchStudy(b *testing.B) *core.Study {
	b.Helper()
	studyOnce.Do(func() {
		study, studyErr = core.Run(context.Background(), core.Options{
			Seed: 2016, KeyBits: 128, Scale: 0.10, Subsets: 4, OtherProtocols: true,
		})
	})
	if studyErr != nil {
		b.Fatal(studyErr)
	}
	return study
}

var (
	corpusOnce sync.Once
	corpus4k   []*big.Int
)

// benchCorpus returns a cached 4096-modulus corpus with ~2% shared-prime
// keys, the workload for the factoring benches.
func benchCorpus(b *testing.B) []*big.Int {
	b.Helper()
	corpusOnce.Do(func() {
		f := population.NewKeyFactory(1, 256)
		for i := 0; i < 4096; i++ {
			var k *weakrsa.PrivateKey
			var err error
			if i%50 == 0 {
				k, err = f.SharedPrime("bench", weakrsa.PrimeNaive)
			} else {
				k, err = f.Healthy()
			}
			if err != nil {
				panic(err)
			}
			corpus4k = append(corpus4k, k.N)
		}
	})
	return corpus4k
}

// ---- Tables ----------------------------------------------------------

func BenchmarkTable1DatasetSummary(b *testing.B) {
	s := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Table(io.Discard, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2VendorResponses(b *testing.B) {
	s := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Table(io.Discard, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3ScanComparison(b *testing.B) {
	s := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Table(io.Discard, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4Protocols(b *testing.B) {
	s := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Table(io.Discard, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5OpenSSLFingerprint(b *testing.B) {
	// The per-prime test at the heart of Table 5: sieve p-1 against the
	// first 2048 primes.
	f := population.NewKeyFactory(5, 256)
	k, err := f.Healthy()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		numtheory.SatisfiesOpenSSLProperty(k.P)
	}
}

// ---- Figures ---------------------------------------------------------

func BenchmarkFigure1AggregateSeries(b *testing.B) {
	s := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Figure(io.Discard, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure2PartitionedVsPlain is the Figure 2 experiment: the
// k-subset partitioned batch GCD versus the single tree, over the same
// corpus. Alongside ns/op it reports the total CPU work and the peak
// per-node tree footprint — the two quantities the paper trades against
// wall clock (1089 CPU-hours and 70-100 GB/node for 86 wall-minutes,
// versus 500 minutes and >500 GB on one machine).
func BenchmarkFigure2PartitionedVsPlain(b *testing.B) {
	moduli := benchCorpus(b)
	b.Run("singletree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := batchgcd.Factor(moduli); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, k := range []int{2, 4, 8, 16} {
		b.Run(bname("k", k), func(b *testing.B) {
			var cpu, mem int64
			for i := 0; i < b.N; i++ {
				_, stats, err := distgcd.Run(context.Background(), moduli, distgcd.Options{Subsets: k})
				if err != nil {
					b.Fatal(err)
				}
				cpu += stats.CPU.Nanoseconds()
				mem = stats.Bytes
			}
			b.ReportMetric(float64(cpu)/float64(b.N), "cpu-ns/op")
			b.ReportMetric(float64(mem), "peak-node-bytes")
		})
	}
}

func benchFigure(b *testing.B, n int) {
	s := benchStudy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Figure(io.Discard, n); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3Juniper(b *testing.B)          { benchFigure(b, 3) }
func BenchmarkFigure4Innominate(b *testing.B)       { benchFigure(b, 4) }
func BenchmarkFigure5IBM(b *testing.B)              { benchFigure(b, 5) }
func BenchmarkFigure6Cisco(b *testing.B)            { benchFigure(b, 6) }
func BenchmarkFigure7CiscoEOL(b *testing.B)         { benchFigure(b, 7) }
func BenchmarkFigure8HP(b *testing.B)               { benchFigure(b, 8) }
func BenchmarkFigure9NoResponse(b *testing.B)       { benchFigure(b, 9) }
func BenchmarkFigure10NewlyVulnerable(b *testing.B) { benchFigure(b, 10) }

// ---- Core algorithm scaling ------------------------------------------

func BenchmarkBatchGCD(b *testing.B) {
	moduli := benchCorpus(b)
	for _, n := range []int{256, 1024, 4096} {
		sub := moduli[:n]
		b.Run(bname("n", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := batchgcd.Factor(sub); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkNaivePairwiseGCD(b *testing.B) {
	moduli := benchCorpus(b)
	for _, n := range []int{256, 1024} {
		sub := moduli[:n]
		b.Run(bname("n", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := batchgcd.FactorPairwise(sub); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkProductTree(b *testing.B) {
	moduli := benchCorpus(b)
	for _, n := range []int{1024, 4096} {
		sub := moduli[:n]
		b.Run(bname("n", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := prodtree.New(sub); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRemainderTreeVariants is the DESIGN.md ablation: the squared
// remainder tree (Bernstein's P mod N² trick, what batch GCD needs)
// versus the plain variant.
func BenchmarkRemainderTreeVariants(b *testing.B) {
	moduli := benchCorpus(b)[:1024]
	tree, err := prodtree.New(moduli)
	if err != nil {
		b.Fatal(err)
	}
	root := tree.Root()
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tree.RemainderTree(root)
		}
	})
	b.Run("squared", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tree.RemainderTreeSquared(root)
		}
	})
}

// BenchmarkProductTreeLeafBatch is the DESIGN.md ablation: pre-multiplying
// leaf pairs before building the tree halves the node count at the cost
// of bigger leaves.
func BenchmarkProductTreeLeafBatch(b *testing.B) {
	moduli := benchCorpus(b)[:2048]
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := prodtree.New(moduli); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prebatched", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			batched := make([]*big.Int, 0, len(moduli)/2)
			for j := 0; j+1 < len(moduli); j += 2 {
				batched = append(batched, new(big.Int).Mul(moduli[j], moduli[j+1]))
			}
			if _, err := prodtree.New(batched); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- Substrate benches -------------------------------------------------

func BenchmarkKeygen(b *testing.B) {
	for _, tc := range []struct {
		name string
		gen  weakrsa.PrimeGen
	}{{"naive", weakrsa.PrimeNaive}, {"openssl", weakrsa.PrimeOpenSSL}} {
		b.Run(tc.name, func(b *testing.B) {
			f := population.NewKeyFactory(int64(b.N), 256)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.SharedPrime("pool", tc.gen); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScannerWorkers is the DESIGN.md ablation: certificate-harvest
// throughput versus worker-pool width over a loopback device fleet.
func BenchmarkScannerWorkers(b *testing.B) {
	f := population.NewKeyFactory(3, 128)
	var targets []string
	var servers []*devices.Server
	for i := 0; i < 32; i++ {
		k, err := f.Healthy()
		if err != nil {
			b.Fatal(err)
		}
		cert, err := certs.SelfSigned(big.NewInt(int64(i+1)), certs.Name{CommonName: "bench"},
			time.Unix(0, 0), time.Unix(1<<40, 0), nil, k.N, k.E, k.D)
		if err != nil {
			b.Fatal(err)
		}
		srv := &devices.Server{Cert: cert}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go srv.Serve(ln)
		servers = append(servers, srv)
		targets = append(targets, ln.Addr().String())
	}
	b.Cleanup(func() {
		for _, s := range servers {
			s.Close()
		}
	})
	for _, w := range []int{1, 4, 16} {
		b.Run(bname("workers", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results, err := scanner.Scan(context.Background(), targets, scanner.Options{Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range results {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}

// BenchmarkPipelineOverhead measures the cost of running work wrapped in
// pipeline stages versus calling it directly. The wrapping is two clock
// reads, two rusage syscalls and a couple of allocations per stage —
// well under 1% of any real stage (the cheapest production stage, Dedup,
// is milliseconds; the wrapper is microseconds).
func BenchmarkPipelineOverhead(b *testing.B) {
	moduli := benchCorpus(b)[:512]
	work := func() error {
		_, err := prodtree.New(moduli)
		return err
	}
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := work(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("staged", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := pipeline.Run(context.Background(),
				pipeline.Stage{Name: "work", Run: func(ctx context.Context, st *pipeline.Stats) error {
					return work()
				}})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	// The wrapper alone, with no work inside: the absolute per-stage cost.
	b.Run("empty-stage", func(b *testing.B) {
		noop := pipeline.Stage{Name: "noop", Run: func(ctx context.Context, st *pipeline.Stats) error { return nil }}
		for i := 0; i < b.N; i++ {
			if _, err := pipeline.Run(context.Background(), noop); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkStudyPipeline(b *testing.B) {
	// The full pipeline at 5% scale: simulation, scanning, batch GCD,
	// fingerprinting, analysis.
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(context.Background(), core.Options{
			Seed: int64(i), KeyBits: 128, Scale: 0.05, Subsets: 4,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func bname(k string, v int) string {
	return k + "=" + itoa(v)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

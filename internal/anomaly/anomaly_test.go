package anomaly

import (
	"context"
	"math/big"
	"math/rand"
	"testing"
	"time"

	"github.com/factorable/weakkeys/internal/certs"
	"github.com/factorable/weakkeys/internal/numtheory"
	"github.com/factorable/weakkeys/internal/scanstore"
	"github.com/factorable/weakkeys/internal/telemetry"
	"github.com/factorable/weakkeys/internal/weakrsa"
)

func TestClassifyExponent(t *testing.T) {
	// The oversized case uses 2^80 + 1: parsed certificates carry
	// exponents past int64, and the census must classify them rather
	// than truncate (the ISSUE's census satellite).
	oversized := new(big.Int).Lsh(big.NewInt(1), 80)
	oversized.Add(oversized, big.NewInt(1))
	cases := []struct {
		e    *big.Int
		want ExponentClass
	}{
		{nil, ExponentNonPositive},
		{big.NewInt(0), ExponentNonPositive},
		{big.NewInt(-3), ExponentNonPositive},
		{big.NewInt(1), ExponentOne},
		{big.NewInt(2), ExponentEven},
		{big.NewInt(65536), ExponentEven},
		{new(big.Int).Lsh(big.NewInt(1), 80), ExponentEven}, // even beats oversized
		{big.NewInt(3), ExponentSmall},
		{big.NewInt(17), ExponentSmall},
		{big.NewInt(65535), ExponentSmall},
		{big.NewInt(65537), ExponentOK},
		{big.NewInt(1<<32 - 1), ExponentOK},
		{big.NewInt(1<<32 + 1), ExponentOversized},
		{oversized, ExponentOversized},
	}
	for _, c := range cases {
		if got := ClassifyExponent(c.e); got != c.want {
			t.Errorf("ClassifyExponent(%v) = %q, want %q", c.e, got, c.want)
		}
	}
}

func TestCensus(t *testing.T) {
	var c Census
	for _, e := range []int64{65537, 65537, 3, 1, 2} {
		c.Add(big.NewInt(e))
	}
	if c.Total != 5 {
		t.Errorf("Total = %d", c.Total)
	}
	if c.Anomalous() != 3 {
		t.Errorf("Anomalous() = %d, want 3", c.Anomalous())
	}
	if c.Classes[ExponentOK] != 2 || c.Classes[ExponentSmall] != 1 {
		t.Errorf("classes: %v", c.Classes)
	}
}

// testKeys generates one key per anomaly class plus an honest control.
func testKeys(t *testing.T) (honest, close_, small *weakrsa.PrivateKey) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	var err error
	if honest, err = weakrsa.GenerateKey(rng, weakrsa.Options{Bits: 128}); err != nil {
		t.Fatal(err)
	}
	if close_, err = weakrsa.GenerateClosePrimes(rng, weakrsa.Options{Bits: 128}); err != nil {
		t.Fatal(err)
	}
	if small, err = weakrsa.GenerateSmallFactor(rng, weakrsa.Options{Bits: 128}, 0); err != nil {
		t.Fatal(err)
	}
	return honest, close_, small
}

func TestProbeFactor(t *testing.T) {
	honest, close_, small := testKeys(t)

	cls, p, q := (Probe{}).Factor(close_.N)
	if cls != ProbeFermatWeak {
		t.Fatalf("close primes: class %q", cls)
	}
	if p.Cmp(close_.P) != 0 || q.Cmp(close_.Q) != 0 {
		t.Errorf("close primes: split %v, %v", p, q)
	}

	cls, p, q = (Probe{}).Factor(small.N)
	if cls != ProbeSmallFactor {
		t.Fatalf("small factor: class %q", cls)
	}
	if new(big.Int).Mul(p, q).Cmp(small.N) != 0 || p.Cmp(bigOne) <= 0 {
		t.Errorf("small factor: split %v, %v is not a nontrivial factorization", p, q)
	}

	if cls, _, _ := (Probe{}).Factor(honest.N); cls != ProbeNone {
		t.Errorf("honest 128-bit modulus flagged %q at default budgets", cls)
	}

	// Guards: nil, non-positive, primes.
	for _, n := range []*big.Int{nil, big.NewInt(0), big.NewInt(-6), big.NewInt(104729)} {
		if cls, _, _ := (Probe{}).Factor(n); cls != ProbeNone {
			t.Errorf("Factor(%v) = %q", n, cls)
		}
	}

	// Negative budgets disable every probe.
	disabled := Probe{FermatSteps: -1, TrialPrimes: -1, RhoSteps: -1}
	if cls, _, _ := disabled.Factor(small.N); cls != ProbeNone {
		t.Errorf("disabled probes still classified %q", cls)
	}
}

func certWith(t *testing.T, subject certs.Name, n *big.Int, e int) *certs.Certificate {
	t.Helper()
	c := &certs.Certificate{
		SerialNumber: big.NewInt(int64(n.Bits()[0] % 100000)),
		Subject:      subject,
		Issuer:       subject,
		NotBefore:    time.Unix(0, 0),
		NotAfter:     time.Unix(1<<31, 0),
		N:            n,
		E:            e,
	}
	if _, err := c.Fingerprint(); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestIdentitiesAndAnalyze(t *testing.T) {
	honest, close_, small := testKeys(t)
	sharedGroup, err := weakrsa.NewSharedModulusGroup([]byte("fw-1.0"), 128, weakrsa.PrimeNaive)
	if err != nil {
		t.Fatal(err)
	}
	shared := sharedGroup.Key()

	store := scanstore.New()
	day := time.Date(2016, 4, 1, 0, 0, 0, 0, time.UTC)
	add := func(ip string, c *certs.Certificate) {
		if err := store.AddCertObservation(ip, day, scanstore.SourceCensys, scanstore.HTTPS, c); err != nil {
			t.Fatal(err)
		}
	}
	// The shared modulus appears under three distinct subjects (and a
	// repeat of one) across four hosts.
	add("10.0.0.1", certWith(t, certs.Name{CommonName: "router-a"}, shared.N, shared.E))
	add("10.0.0.2", certWith(t, certs.Name{CommonName: "router-b"}, shared.N, shared.E))
	add("10.0.0.3", certWith(t, certs.Name{CommonName: "router-c"}, shared.N, shared.E))
	add("10.0.0.4", certWith(t, certs.Name{CommonName: "router-a"}, shared.N, shared.E))
	// The honest modulus under one subject on two hosts: not shared.
	add("10.0.1.1", certWith(t, certs.Name{CommonName: "honest"}, honest.N, honest.E))
	add("10.0.1.2", certWith(t, certs.Name{CommonName: "honest"}, honest.N, honest.E))
	// Probe targets, plus one bad-exponent certificate.
	add("10.0.2.1", certWith(t, certs.Name{CommonName: "fermat"}, close_.N, close_.E))
	add("10.0.2.2", certWith(t, certs.Name{CommonName: "smallfac"}, small.N, 2))
	// A bare key served from two IPs: identities fall back to IPs.
	bare, err := weakrsa.GenerateKey(rand.New(rand.NewSource(8)), weakrsa.Options{Bits: 128})
	if err != nil {
		t.Fatal(err)
	}
	store.AddBareKeyObservation("10.0.3.1", day, scanstore.SourceCensys, scanstore.SSH, bare.N)
	store.AddBareKeyObservation("10.0.3.2", day, scanstore.SourceCensys, scanstore.SSH, bare.N)

	ids := Identities(store, string(shared.N.Bytes()))
	if len(ids) != 3 || ids[0] != "CN=router-a" {
		t.Errorf("shared identities: %v", ids)
	}
	if ids := Identities(store, string(honest.N.Bytes())); len(ids) != 1 {
		t.Errorf("honest identities: %v", ids)
	}
	if ids := Identities(store, string(bare.N.Bytes())); len(ids) != 2 {
		t.Errorf("bare-key identities should fall back to IPs: %v", ids)
	}

	reg := telemetry.New()
	rep, err := Analyze(context.Background(), Config{Store: store, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Moduli != 5 {
		t.Errorf("Moduli = %d, want 5", rep.Moduli)
	}
	// Shared: the firmware modulus (3 subjects) and the bare key (2 IPs).
	if rep.SharedCount != 2 || len(rep.SharedModuli) != 2 {
		t.Fatalf("SharedCount = %d, list %v", rep.SharedCount, rep.SharedModuli)
	}
	for _, sm := range rep.SharedModuli {
		if sm.ModulusHex == shared.N.Text(16) {
			if sm.Count != 3 || sm.Hosts != 4 {
				t.Errorf("shared modulus: count %d hosts %d", sm.Count, sm.Hosts)
			}
		}
	}
	if rep.FermatWeakCount != 1 || rep.FermatWeak[0].ModulusHex != close_.N.Text(16) {
		t.Errorf("fermat findings: %+v", rep.FermatWeak)
	}
	if rep.SmallFactorCount != 1 || rep.SmallFactor[0].ModulusHex != small.N.Text(16) {
		t.Errorf("small-factor findings: %+v", rep.SmallFactor)
	}
	// Census: 6 distinct certs (the router-a and honest repeats dedupe),
	// one with e=2.
	if rep.Certs != 6 || rep.Exponents.Total != 6 {
		t.Errorf("Certs = %d, census total %d", rep.Certs, rep.Exponents.Total)
	}
	if rep.Exponents.Classes[ExponentEven] != 1 {
		t.Errorf("census classes: %v", rep.Exponents.Classes)
	}
	if rep.Exponents.Anomalous() < 1 {
		t.Errorf("Anomalous() = %d", rep.Exponents.Anomalous())
	}

	if _, err := Analyze(context.Background(), Config{}); err == nil {
		t.Error("nil store accepted")
	}
}

// TestProbeBudgetsHoldAgainstGoldenModuli pins that the default online
// budgets cannot split honestly generated corpus moduli — the property
// the keycheck golden corpus relies on (novel clean submissions must stay
// clean when the check path probes them).
func TestProbeBudgetsHoldAgainstGoldenModuli(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 4; i++ {
		k, err := weakrsa.GenerateKey(rng, weakrsa.Options{Bits: 128})
		if err != nil {
			t.Fatal(err)
		}
		if cls, p, _ := (Probe{}).Factor(k.N); cls != ProbeNone {
			t.Errorf("honest key %d fell to %q (factor %v)", i, cls, p)
		}
	}
	// And the converse: the close-prime generator's gap stays within the
	// default ascent budget by a wide margin.
	k, err := weakrsa.GenerateClosePrimes(rng, weakrsa.Options{Bits: 128})
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := numtheory.FermatFactor(k.N, DefaultFermatSteps); p == nil {
		t.Error("close-prime key out of reach of the default Fermat budget")
	}
}

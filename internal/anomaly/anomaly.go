// Package anomaly finds the weak-key classes that batch GCD alone
// misses. The Tor-relays study ("Major key alert!") showed a corpus can
// carry moduli that are individually factorable or operationally
// compromised without sharing a prime with anything: the same modulus
// serving distinct identities (operators sharing or stealing a key, or
// a middlebox interposing one certificate on many hosts), non-standard
// public exponents (e = 1 means no encryption at all; even e is not
// invertible; tiny e invites low-exponent attacks), moduli whose primes
// were drawn too close together (Fermat-factorable, a "When RSA Fails"
// prime-selection flaw), and moduli carrying small prime factors
// (broken primality testing or bit corruption).
//
// The package provides the offline analysis pass over a corpus
// (Analyze), and the bounded per-modulus probes (Probe) and exponent
// classifier (ClassifyExponent) that the online /v1/check path reuses to
// flag the same classes live.
package anomaly

import (
	"context"
	"fmt"
	"log/slog"
	"math/big"
	"sort"
	"sync"
	"time"

	"github.com/factorable/weakkeys/internal/kernel"
	"github.com/factorable/weakkeys/internal/numtheory"
	"github.com/factorable/weakkeys/internal/scanstore"
	"github.com/factorable/weakkeys/internal/telemetry"
)

// ExponentClass labels one public exponent for the census.
type ExponentClass string

const (
	// ExponentOK is a conventional exponent: odd, at least 65537, and
	// not absurdly large.
	ExponentOK ExponentClass = "ok"
	// ExponentOne is e = 1: "encryption" is the identity function and
	// the plaintext is on the wire.
	ExponentOne ExponentClass = "one"
	// ExponentEven is an even e, which has no inverse mod φ(N): the key
	// can never decrypt and usually signals a broken generator.
	ExponentEven ExponentClass = "even"
	// ExponentSmall is an odd e below 65537 (3, 5, 17, ...): legal RSA
	// but exposed to low-exponent and related-message attacks, and a
	// reliable implementation fingerprint.
	ExponentSmall ExponentClass = "small"
	// ExponentOversized is an exponent wider than 32 bits, seen in the
	// wild from confused generators that swap fields or emit garbage.
	ExponentOversized ExponentClass = "oversized"
	// ExponentNonPositive is e <= 0, which is not an RSA exponent at
	// all.
	ExponentNonPositive ExponentClass = "nonpositive"
)

// oversizedBits is the exponent width beyond which the census calls an
// exponent oversized (the Tor study found exponents past 2^32).
const oversizedBits = 32

// ClassifyExponent labels a public exponent. The argument is a big.Int
// because parsed certificates in the wild carry exponents well past
// int64; the census must not truncate them.
func ClassifyExponent(e *big.Int) ExponentClass {
	switch {
	case e == nil || e.Sign() <= 0:
		return ExponentNonPositive
	case e.Cmp(bigOne) == 0:
		return ExponentOne
	case e.Bit(0) == 0:
		return ExponentEven
	case e.BitLen() > oversizedBits:
		return ExponentOversized
	case e.Cmp(big65537) < 0:
		return ExponentSmall
	default:
		return ExponentOK
	}
}

var (
	bigOne   = big.NewInt(1)
	big65537 = big.NewInt(65537)
)

// Census tallies exponents by class.
type Census struct {
	Total   int                   `json:"total"`
	Classes map[ExponentClass]int `json:"classes,omitempty"`
}

// Add classifies e, counts it, and returns the class.
func (c *Census) Add(e *big.Int) ExponentClass {
	cls := ClassifyExponent(e)
	if c.Classes == nil {
		c.Classes = make(map[ExponentClass]int)
	}
	c.Total++
	c.Classes[cls]++
	return cls
}

// Anomalous counts the census entries outside ExponentOK.
func (c *Census) Anomalous() int {
	n := 0
	for cls, count := range c.Classes {
		if cls != ExponentOK {
			n += count
		}
	}
	return n
}

// ProbeClass labels a probe hit.
type ProbeClass string

const (
	// ProbeNone: the probes found nothing within their budgets. Not a
	// proof of strength — only that this budget cannot break the key.
	ProbeNone ProbeClass = ""
	// ProbeFermatWeak: the primes are close enough that Fermat's method
	// split the modulus within the ascent budget.
	ProbeFermatWeak ProbeClass = "fermat_weak"
	// ProbeSmallFactor: trial division or Pollard rho pulled out a
	// nontrivial factor within the step budget.
	ProbeSmallFactor ProbeClass = "small_factor"
)

// Default probe budgets: small enough that a probe of one novel modulus
// stays in the low milliseconds on the serving path, large enough to
// catch every naturally occurring instance of the flaw classes (close
// primes land in a handful of Fermat steps; small factors fall to trial
// division almost immediately).
const (
	DefaultFermatSteps = 512
	DefaultTrialPrimes = 128
	DefaultRhoSteps    = 256
)

// Probe bundles the bounded per-modulus factoring probes. The zero
// value selects the default budgets; a negative field disables that
// probe.
type Probe struct {
	// FermatSteps bounds the Fermat ascent (number of a values tried
	// from ceil(sqrt(N)) upward).
	FermatSteps int
	// TrialPrimes bounds trial division to the first n primes.
	TrialPrimes int
	// RhoSteps bounds each Pollard rho run.
	RhoSteps int
}

func (p Probe) withDefaults() Probe {
	if p.FermatSteps == 0 {
		p.FermatSteps = DefaultFermatSteps
	}
	if p.TrialPrimes == 0 {
		p.TrialPrimes = DefaultTrialPrimes
	}
	if p.RhoSteps == 0 {
		p.RhoSteps = DefaultRhoSteps
	}
	return p
}

// Factor runs the probes against n in cost order — trial division,
// Fermat ascent, Pollard rho — and returns the class of the first hit
// with a nontrivial split pHit <= qHit of n (qHit may be composite for a
// small-factor hit). ProbeNone with nil factors means every budget was
// exhausted.
func (p Probe) Factor(n *big.Int) (cls ProbeClass, pHit, qHit *big.Int) {
	p = p.withDefaults()
	if n == nil || n.Sign() <= 0 || n.BitLen() < 2 || n.ProbablyPrime(12) {
		return ProbeNone, nil, nil
	}
	if p.TrialPrimes > 0 {
		if small, _ := numtheory.SmallFactors(n, p.TrialPrimes); len(small) > 0 {
			sp, sq := split(n, new(big.Int).SetUint64(small[0].Prime))
			return ProbeSmallFactor, sp, sq
		}
	}
	if p.FermatSteps > 0 {
		if fp, fq := numtheory.FermatFactor(n, p.FermatSteps); fp != nil {
			return ProbeFermatWeak, fp, fq
		}
	}
	if p.RhoSteps > 0 {
		if d := numtheory.PollardRho(n, p.RhoSteps); d != nil {
			sp, sq := split(n, d)
			return ProbeSmallFactor, sp, sq
		}
	}
	return ProbeNone, nil, nil
}

// split orders a divisor d of n against its cofactor.
func split(n, d *big.Int) (*big.Int, *big.Int) {
	q := new(big.Int).Quo(n, d)
	if d.Cmp(q) > 0 {
		d, q = q, d
	}
	return d, q
}

// Identities returns the distinct identities under which the store
// observed the modulus: the subjects of the certificates serving it
// when any exist, else the distinct IPs that served the bare key. Two
// or more identities on one modulus is the shared-modulus signal — the
// paper's SSH-middlebox detector (one key, many hosts) and the
// Tor-relays shared-modulus graph both reduce to this count.
func Identities(store *scanstore.Store, modKey string) []string {
	set := make(map[string]bool)
	for _, c := range store.CertsWithModulus(modKey) {
		set[c.Subject.String()] = true
	}
	if len(set) == 0 {
		for _, ip := range store.IPsServingModulus(modKey, "") {
			set[ip] = true
		}
	}
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// IdentityCounts returns the distinct-identity count for every modulus
// key the store observed under two or more identities, with the same
// semantics as Identities (cert subjects; IP fallback for certless
// keys) in one pass over the store — per-modulus Identities calls are
// linear in the store and would make a corpus-wide sweep quadratic.
func IdentityCounts(store *scanstore.Store) map[string]int {
	subjects := make(map[string]map[string]bool)
	for _, c := range store.DistinctCerts() {
		mk := c.ModulusKey()
		if subjects[mk] == nil {
			subjects[mk] = make(map[string]bool)
		}
		subjects[mk][c.Subject.String()] = true
	}
	var zeroFP [32]byte
	bareIPs := make(map[string]map[string]bool)
	for _, r := range store.Records() {
		if r.CertFP != zeroFP || subjects[r.ModKey] != nil {
			continue
		}
		if bareIPs[r.ModKey] == nil {
			bareIPs[r.ModKey] = make(map[string]bool)
		}
		bareIPs[r.ModKey][r.IP] = true
	}
	out := make(map[string]int)
	for mk, set := range subjects {
		if len(set) >= 2 {
			out[mk] = len(set)
		}
	}
	for mk, set := range bareIPs {
		if len(set) >= 2 && subjects[mk] == nil {
			out[mk] = len(set)
		}
	}
	return out
}

// SharedModulus is one modulus observed under distinct identities.
type SharedModulus struct {
	ModulusHex string `json:"modulus_hex"`
	// Identities lists the distinct identities (capped at a sample of
	// maxIdentitySample); Count is the full number.
	Identities []string `json:"identities,omitempty"`
	Count      int      `json:"count"`
	// Hosts is the number of distinct IPs ever observed serving the
	// modulus, over every protocol.
	Hosts int `json:"hosts"`
}

// ProbeFinding is one modulus a probe broke.
type ProbeFinding struct {
	ModulusHex string `json:"modulus_hex"`
	Bits       int    `json:"bits"`
	FactorPHex string `json:"factor_p_hex"`
	FactorQHex string `json:"factor_q_hex"`
}

// maxIdentitySample bounds the identities listed per shared modulus.
const maxIdentitySample = 8

// maxFindings bounds each finding list in the report; the *Count fields
// always carry the complete totals.
const maxFindings = 256

// Report is the result of one corpus anomaly pass.
type Report struct {
	// Moduli is the number of distinct corpus moduli analyzed; Certs the
	// number of distinct certificates behind the exponent census.
	Moduli int `json:"moduli"`
	Certs  int `json:"certs"`
	// SharedCount / FermatWeakCount / SmallFactorCount are the complete
	// totals; the lists below are capped at maxFindings entries each.
	SharedCount      int             `json:"shared_count"`
	FermatWeakCount  int             `json:"fermat_weak_count"`
	SmallFactorCount int             `json:"small_factor_count"`
	SharedModuli     []SharedModulus `json:"shared_moduli,omitempty"`
	FermatWeak       []ProbeFinding  `json:"fermat_weak,omitempty"`
	SmallFactor      []ProbeFinding  `json:"small_factor,omitempty"`
	Exponents        Census          `json:"exponents"`
	Elapsed          time.Duration   `json:"elapsed_ns"`
}

// Config configures Analyze.
type Config struct {
	// Store is the corpus to analyze (required).
	Store *scanstore.Store
	// Probe sets the per-modulus factoring budgets (zero value: the
	// defaults).
	Probe Probe
	// Metrics receives anomaly_* counters and gauges (nil disables).
	Metrics *telemetry.Registry
	// Events receives the structured pass summary (nil disables).
	Events *telemetry.EventLog
}

// Analyze runs the full anomaly pass over a corpus: the shared-modulus
// graph, the exponent census over every distinct certificate, and the
// Fermat and small-factor probes over every distinct modulus, fanned
// out on the shared kernel pool. The probes are embarrassingly parallel
// and dominate the cost; everything else is one pass over the store.
func Analyze(ctx context.Context, cfg Config) (*Report, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("anomaly: nil store")
	}
	start := time.Now()
	moduli, keys := cfg.Store.DistinctModuli()
	rep := &Report{Moduli: len(moduli)}

	// Shared-modulus graph: one bulk pass counts identities per modulus;
	// the listed sample (at most maxFindings entries) pays for the
	// per-modulus identity and host lookups.
	counts := IdentityCounts(cfg.Store)
	for i, key := range keys {
		n, ok := counts[key]
		if !ok {
			continue
		}
		rep.SharedCount++
		if len(rep.SharedModuli) < maxFindings {
			sm := SharedModulus{
				ModulusHex: moduli[i].Text(16),
				Count:      n,
				Hosts:      len(cfg.Store.IPsServingModulus(key, "")),
			}
			ids := Identities(cfg.Store, key)
			if len(ids) > maxIdentitySample {
				ids = ids[:maxIdentitySample]
			}
			sm.Identities = ids
			rep.SharedModuli = append(rep.SharedModuli, sm)
		}
	}

	// Exponent census over the distinct certificates.
	for _, c := range cfg.Store.DistinctCerts() {
		rep.Certs++
		rep.Exponents.Add(big.NewInt(int64(c.E)))
	}

	// Factoring probes, fanned out on the kernel pool.
	probe := cfg.Probe.withDefaults()
	type hit struct {
		idx  int
		cls  ProbeClass
		p, q *big.Int
	}
	var mu sync.Mutex
	var hits []hit
	eng := kernel.FromContext(ctx)
	if err := eng.Run(ctx, len(moduli), func(i int, _ *kernel.Arena) {
		cls, p, q := probe.Factor(moduli[i])
		if cls == ProbeNone {
			return
		}
		mu.Lock()
		hits = append(hits, hit{idx: i, cls: cls, p: p, q: q})
		mu.Unlock()
	}); err != nil {
		return nil, fmt.Errorf("anomaly: probe sweep cancelled: %w", err)
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i].idx < hits[j].idx })
	for _, h := range hits {
		f := ProbeFinding{
			ModulusHex: moduli[h.idx].Text(16),
			Bits:       moduli[h.idx].BitLen(),
			FactorPHex: h.p.Text(16),
			FactorQHex: h.q.Text(16),
		}
		switch h.cls {
		case ProbeFermatWeak:
			rep.FermatWeakCount++
			if len(rep.FermatWeak) < maxFindings {
				rep.FermatWeak = append(rep.FermatWeak, f)
			}
		case ProbeSmallFactor:
			rep.SmallFactorCount++
			if len(rep.SmallFactor) < maxFindings {
				rep.SmallFactor = append(rep.SmallFactor, f)
			}
		}
	}
	rep.Elapsed = time.Since(start)

	if reg := cfg.Metrics; reg != nil {
		reg.Gauge("anomaly_shared_moduli").Set(float64(rep.SharedCount))
		reg.Gauge("anomaly_fermat_weak").Set(float64(rep.FermatWeakCount))
		reg.Gauge("anomaly_small_factor").Set(float64(rep.SmallFactorCount))
		for cls, count := range rep.Exponents.Classes {
			reg.Gauge(fmt.Sprintf(`anomaly_exponents{class="%s"}`, cls)).Set(float64(count))
		}
		reg.Histogram("anomaly_analyze_seconds", telemetry.DurationBuckets).ObserveDuration(rep.Elapsed)
	}
	cfg.Events.Info(ctx, "anomaly analysis complete",
		slog.Int("moduli", rep.Moduli),
		slog.Int("shared", rep.SharedCount),
		slog.Int("fermat_weak", rep.FermatWeakCount),
		slog.Int("small_factor", rep.SmallFactorCount),
		slog.Int("anomalous_exponents", rep.Exponents.Anomalous()),
		slog.Duration("elapsed", rep.Elapsed))
	return rep, nil
}

package scanstore

import (
	"fmt"
	"math/big"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/factorable/weakkeys/internal/certs"
	"github.com/factorable/weakkeys/internal/weakrsa"
)

func newCert(t *testing.T, seed int64) *certs.Certificate {
	t.Helper()
	k, err := weakrsa.GenerateKey(rand.New(rand.NewSource(seed)), weakrsa.Options{Bits: 96})
	if err != nil {
		t.Fatal(err)
	}
	c, err := certs.SelfSigned(big.NewInt(seed), certs.Name{CommonName: fmt.Sprintf("dev-%d", seed)},
		time.Unix(0, 0), time.Unix(1<<40, 0), nil, k.N, k.E, k.D)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func date(y, m, d int) time.Time {
	return time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC)
}

func TestAddAndStats(t *testing.T) {
	s := New()
	c1, c2 := newCert(t, 1), newCert(t, 2)
	d1, d2 := date(2010, 7, 15), date(2016, 4, 11)

	if err := s.AddCertObservation("10.0.0.1", d1, SourceEFF, HTTPS, c1); err != nil {
		t.Fatal(err)
	}
	if err := s.AddCertObservation("10.0.0.2", d1, SourceEFF, HTTPS, c2); err != nil {
		t.Fatal(err)
	}
	// Same host and cert seen again later: a new record, no new cert.
	if err := s.AddCertObservation("10.0.0.1", d2, SourceCensys, HTTPS, c1); err != nil {
		t.Fatal(err)
	}

	st := s.Stats(HTTPS)
	if st.HostRecords != 3 {
		t.Errorf("HostRecords = %d, want 3", st.HostRecords)
	}
	if st.DistinctCerts != 2 {
		t.Errorf("DistinctCerts = %d, want 2", st.DistinctCerts)
	}
	if st.DistinctModuli != 2 {
		t.Errorf("DistinctModuli = %d, want 2", st.DistinctModuli)
	}
	if st.ScanDates != 2 {
		t.Errorf("ScanDates = %d, want 2", st.ScanDates)
	}
	if !st.FirstScan.Equal(d1) || !st.LastScan.Equal(d2) {
		t.Errorf("scan range %v..%v", st.FirstScan, st.LastScan)
	}
}

func TestBareKeysCountTowardModuliOnly(t *testing.T) {
	s := New()
	c := newCert(t, 3)
	s.AddCertObservation("10.0.0.1", date(2015, 10, 29), SourceCensys, HTTPS, c)
	n := big.NewInt(0xABCDEF123457)
	s.AddBareKeyObservation("10.0.0.9", date(2015, 10, 29), SourceCensys, SSH, n)

	all := s.Stats("")
	if all.DistinctModuli != 2 {
		t.Errorf("all-protocol moduli = %d, want 2", all.DistinctModuli)
	}
	if all.DistinctCerts != 1 {
		t.Errorf("certs = %d, want 1 (SSH keys have none)", all.DistinctCerts)
	}
	ssh := s.Stats(SSH)
	if ssh.HostRecords != 1 || ssh.DistinctModuli != 1 || ssh.DistinctCerts != 0 {
		t.Errorf("ssh stats: %+v", ssh)
	}
}

func TestDistinctModuliStableOrder(t *testing.T) {
	s := New()
	n1, n2 := big.NewInt(111115), big.NewInt(222227)
	s.AddBareKeyObservation("a", date(2012, 1, 1), SourcePQ, SSH, n1)
	s.AddBareKeyObservation("b", date(2012, 1, 1), SourcePQ, SSH, n2)
	s.AddBareKeyObservation("c", date(2012, 2, 1), SourcePQ, SSH, n1) // dup
	mods, keys := s.DistinctModuli()
	if len(mods) != 2 || len(keys) != 2 {
		t.Fatalf("got %d moduli", len(mods))
	}
	if mods[0].Cmp(n1) != 0 || mods[1].Cmp(n2) != 0 {
		t.Error("first-seen order violated")
	}
	if keys[0] != string(n1.Bytes()) {
		t.Error("keys not parallel to moduli")
	}
}

func TestScanDatesSorted(t *testing.T) {
	s := New()
	c := newCert(t, 4)
	for _, d := range []time.Time{date(2014, 4, 1), date(2010, 7, 1), date(2012, 6, 1)} {
		s.AddCertObservation("ip", d, SourceEcosystem, HTTPS, c)
	}
	got := s.ScanDates(HTTPS)
	if len(got) != 3 {
		t.Fatalf("dates: %v", got)
	}
	if !got[0].Equal(date(2010, 7, 1)) || !got[2].Equal(date(2014, 4, 1)) {
		t.Errorf("unsorted: %v", got)
	}
	if len(s.ScanDates(SSH)) != 0 {
		t.Error("SSH has no dates")
	}
}

func TestRecordsOn(t *testing.T) {
	s := New()
	c := newCert(t, 5)
	s.AddCertObservation("a", date(2013, 1, 1), SourceRapid7, HTTPS, c)
	s.AddCertObservation("b", date(2013, 1, 1), SourceRapid7, HTTPS, c)
	s.AddCertObservation("c", date(2013, 2, 1), SourceRapid7, HTTPS, c)
	if got := len(s.RecordsOn(date(2013, 1, 1), HTTPS)); got != 2 {
		t.Errorf("records on 2013-01-01 = %d, want 2", got)
	}
	if got := len(s.RecordsOn(date(2013, 3, 1), HTTPS)); got != 0 {
		t.Errorf("records on empty date = %d", got)
	}
}

func TestCertLookup(t *testing.T) {
	s := New()
	c := newCert(t, 6)
	s.AddCertObservation("a", date(2013, 1, 1), SourceRapid7, HTTPS, c)
	fp, _ := c.Fingerprint()
	if got := s.Cert(fp); got == nil || got.N.Cmp(c.N) != 0 {
		t.Error("cert lookup failed")
	}
	if s.Cert([32]byte{1}) != nil {
		t.Error("unknown fingerprint should be nil")
	}
}

func TestCertsWithModulusAndIPs(t *testing.T) {
	s := New()
	// Two certificates with the SAME modulus (the Internet Rimon MITM
	// shape), served from many IPs.
	k, err := weakrsa.GenerateKey(rand.New(rand.NewSource(7)), weakrsa.Options{Bits: 96})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(serial int64, cn string) *certs.Certificate {
		c, err := certs.SelfSigned(big.NewInt(serial), certs.Name{CommonName: cn},
			time.Unix(0, 0), time.Unix(1, 0), nil, k.N, k.E, k.D)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	c1, c2 := mk(1, "router-a"), mk(2, "router-b")
	s.AddCertObservation("198.51.100.1", date(2014, 1, 1), SourceRapid7, HTTPS, c1)
	s.AddCertObservation("198.51.100.2", date(2014, 1, 1), SourceRapid7, HTTPS, c2)
	s.AddCertObservation("198.51.100.1", date(2014, 2, 1), SourceRapid7, HTTPS, c1)

	certsWith := s.CertsWithModulus(c1.ModulusKey())
	if len(certsWith) != 2 {
		t.Errorf("certs with modulus = %d, want 2", len(certsWith))
	}
	ips := s.IPsServingModulus(c1.ModulusKey(), HTTPS)
	if len(ips) != 2 || ips[0] != "198.51.100.1" {
		t.Errorf("IPs: %v", ips)
	}
	if got := s.IPsServingModulus(c1.ModulusKey(), SSH); len(got) != 0 {
		t.Errorf("SSH IPs should be empty: %v", got)
	}
}

func TestConcurrentAdds(t *testing.T) {
	s := New()
	c := newCert(t, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				ip := fmt.Sprintf("10.%d.0.%d", w, i)
				if err := s.AddCertObservation(ip, date(2015, 1, 1), SourceCensys, HTTPS, c); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats(HTTPS)
	if st.HostRecords != 400 {
		t.Errorf("records = %d, want 400", st.HostRecords)
	}
	if st.DistinctCerts != 1 || st.DistinctModuli != 1 {
		t.Errorf("dedup under concurrency broken: %+v", st)
	}
}

package scanstore

import (
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"
	"math/big"

	"github.com/factorable/weakkeys/internal/certs"
)

// snapshotVersion guards the on-disk format.
const snapshotVersion = 1

// snapshot is the serialized form of a Store: records plus the distinct
// certificate DER blobs and the distinct moduli (bare keys have no
// certificate, so moduli must be stored explicitly) in first-seen order.
type snapshot struct {
	Version int
	Records []HostRecord
	CertDER [][]byte
	Moduli  [][]byte
}

// Save writes the store to w as gzip-compressed gob. The format is the
// stand-in for the paper's MySQL scan database: 1.5B host records lived
// on a 6TB SSD cache; a full simulated corpus is a few tens of MB.
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	snap := snapshot{
		Version: snapshotVersion,
		// Copy the records under the lock: the gob encode below runs
		// after RUnlock, and a concurrent Add appending to the shared
		// backing array would race the encoder.
		Records: append([]HostRecord(nil), s.records...),
		Moduli:  make([][]byte, 0, len(s.modOrder)),
		CertDER: make([][]byte, 0, len(s.certs)),
	}
	for _, key := range s.modOrder {
		snap.Moduli = append(snap.Moduli, []byte(key))
	}
	var err error
	for _, c := range s.certs {
		var der []byte
		der, err = c.Marshal()
		if err != nil {
			break
		}
		snap.CertDER = append(snap.CertDER, der)
	}
	s.mu.RUnlock()
	if err != nil {
		return fmt.Errorf("scanstore: save: %w", err)
	}
	zw := gzip.NewWriter(w)
	if err := gob.NewEncoder(zw).Encode(snap); err != nil {
		return fmt.Errorf("scanstore: save: %w", err)
	}
	return zw.Close()
}

// Load reads a store previously written with Save.
func Load(r io.Reader) (*Store, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("scanstore: load: %w", err)
	}
	defer zr.Close()
	var snap snapshot
	if err := gob.NewDecoder(zr).Decode(&snap); err != nil {
		return nil, fmt.Errorf("scanstore: load: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("scanstore: snapshot version %d not supported (this build reads version %d)",
			snap.Version, snapshotVersion)
	}
	s := New()
	for _, der := range snap.CertDER {
		c, err := certs.Parse(der)
		if err != nil {
			return nil, fmt.Errorf("scanstore: load cert: %w", err)
		}
		fp, err := c.Fingerprint()
		if err != nil {
			return nil, fmt.Errorf("scanstore: load cert: %w", err)
		}
		s.addCertLocked(fp, c)
	}
	for _, mod := range snap.Moduli {
		s.addModulusLocked(string(mod), new(big.Int).SetBytes(mod))
	}
	s.records = snap.Records
	// Integrity: every record's cert fingerprint must resolve (bare keys
	// have a zero fingerprint).
	for i, rec := range s.records {
		if rec.CertFP == ([32]byte{}) {
			continue
		}
		if _, ok := s.certs[rec.CertFP]; !ok {
			return nil, fmt.Errorf("scanstore: record %d references missing certificate", i)
		}
	}
	return s, nil
}

// deltaVersion guards the on-disk delta-segment format.
const deltaVersion = 1

// deltaSegment is the serialized form of "everything after a
// checkpoint": the new records, plus only the certificates and moduli
// first seen after it. A segment is not self-contained — records may
// reference certificates the base snapshot already holds — so it only
// loads on top of a store that contains its base.
type deltaSegment struct {
	Version int
	Base    Checkpoint
	Records []HostRecord
	CertDER [][]byte
	Moduli  [][]byte
}

// SaveDelta writes everything added after the checkpoint as a
// gzip-compressed gob segment. Cutting a segment is a positional slice
// of the three append-only tables — no content diffing — which is what
// keeps the save O(delta) while the store grows.
func (s *Store) SaveDelta(w io.Writer, since Checkpoint) error {
	s.mu.RLock()
	if since.Records < 0 || since.Records > len(s.records) ||
		since.Certs < 0 || since.Certs > len(s.certOrder) ||
		since.Moduli < 0 || since.Moduli > len(s.modOrder) {
		s.mu.RUnlock()
		return fmt.Errorf("scanstore: save delta: checkpoint %+v out of range", since)
	}
	seg := deltaSegment{
		Version: deltaVersion,
		Base:    since,
		Records: append([]HostRecord(nil), s.records[since.Records:]...),
		Moduli:  make([][]byte, 0, len(s.modOrder)-since.Moduli),
		CertDER: make([][]byte, 0, len(s.certOrder)-since.Certs),
	}
	for _, key := range s.modOrder[since.Moduli:] {
		seg.Moduli = append(seg.Moduli, []byte(key))
	}
	var err error
	for _, fp := range s.certOrder[since.Certs:] {
		var der []byte
		der, err = s.certs[fp].Marshal()
		if err != nil {
			break
		}
		seg.CertDER = append(seg.CertDER, der)
	}
	s.mu.RUnlock()
	if err != nil {
		return fmt.Errorf("scanstore: save delta: %w", err)
	}
	zw := gzip.NewWriter(w)
	if err := gob.NewEncoder(zw).Encode(seg); err != nil {
		return fmt.Errorf("scanstore: save delta: %w", err)
	}
	return zw.Close()
}

// LoadSince appends a delta segment to the store. The store must be at
// exactly the segment's base checkpoint — segments chain, each one's
// base being the position the previous save left the store at — and a
// mismatch is rejected before anything is applied. Every record in the
// segment must resolve its certificate against the segment or the
// existing store.
func (s *Store) LoadSince(r io.Reader) error {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return fmt.Errorf("scanstore: load delta: %w", err)
	}
	defer zr.Close()
	var seg deltaSegment
	if err := gob.NewDecoder(zr).Decode(&seg); err != nil {
		return fmt.Errorf("scanstore: load delta: %w", err)
	}
	if seg.Version != deltaVersion {
		return fmt.Errorf("scanstore: delta version %d not supported (this build reads version %d)",
			seg.Version, deltaVersion)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if got := (Checkpoint{Records: len(s.records), Certs: len(s.certOrder), Moduli: len(s.modOrder)}); got != seg.Base {
		return fmt.Errorf("scanstore: delta base %+v does not match store position %+v", seg.Base, got)
	}
	for _, der := range seg.CertDER {
		c, err := certs.Parse(der)
		if err != nil {
			return fmt.Errorf("scanstore: load delta cert: %w", err)
		}
		fp, err := c.Fingerprint()
		if err != nil {
			return fmt.Errorf("scanstore: load delta cert: %w", err)
		}
		s.addCertLocked(fp, c)
	}
	for _, mod := range seg.Moduli {
		s.addModulusLocked(string(mod), new(big.Int).SetBytes(mod))
	}
	for i, rec := range seg.Records {
		if rec.CertFP != ([32]byte{}) {
			if _, ok := s.certs[rec.CertFP]; !ok {
				return fmt.Errorf("scanstore: delta record %d references missing certificate", i)
			}
		}
	}
	s.records = append(s.records, seg.Records...)
	return nil
}

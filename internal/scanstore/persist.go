package scanstore

import (
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"io"
	"math/big"

	"github.com/factorable/weakkeys/internal/certs"
)

// snapshotVersion guards the on-disk format.
const snapshotVersion = 1

// snapshot is the serialized form of a Store: records plus the distinct
// certificate DER blobs and the distinct moduli (bare keys have no
// certificate, so moduli must be stored explicitly) in first-seen order.
type snapshot struct {
	Version int
	Records []HostRecord
	CertDER [][]byte
	Moduli  [][]byte
}

// Save writes the store to w as gzip-compressed gob. The format is the
// stand-in for the paper's MySQL scan database: 1.5B host records lived
// on a 6TB SSD cache; a full simulated corpus is a few tens of MB.
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	snap := snapshot{
		Version: snapshotVersion,
		// Copy the records under the lock: the gob encode below runs
		// after RUnlock, and a concurrent Add appending to the shared
		// backing array would race the encoder.
		Records: append([]HostRecord(nil), s.records...),
		Moduli:  make([][]byte, 0, len(s.modOrder)),
		CertDER: make([][]byte, 0, len(s.certs)),
	}
	for _, key := range s.modOrder {
		snap.Moduli = append(snap.Moduli, []byte(key))
	}
	var err error
	for _, c := range s.certs {
		var der []byte
		der, err = c.Marshal()
		if err != nil {
			break
		}
		snap.CertDER = append(snap.CertDER, der)
	}
	s.mu.RUnlock()
	if err != nil {
		return fmt.Errorf("scanstore: save: %w", err)
	}
	zw := gzip.NewWriter(w)
	if err := gob.NewEncoder(zw).Encode(snap); err != nil {
		return fmt.Errorf("scanstore: save: %w", err)
	}
	return zw.Close()
}

// Load reads a store previously written with Save.
func Load(r io.Reader) (*Store, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("scanstore: load: %w", err)
	}
	defer zr.Close()
	var snap snapshot
	if err := gob.NewDecoder(zr).Decode(&snap); err != nil {
		return nil, fmt.Errorf("scanstore: load: %w", err)
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("scanstore: snapshot version %d not supported (this build reads version %d)",
			snap.Version, snapshotVersion)
	}
	s := New()
	for _, der := range snap.CertDER {
		c, err := certs.Parse(der)
		if err != nil {
			return nil, fmt.Errorf("scanstore: load cert: %w", err)
		}
		fp, err := c.Fingerprint()
		if err != nil {
			return nil, fmt.Errorf("scanstore: load cert: %w", err)
		}
		s.certs[fp] = c
	}
	for _, mod := range snap.Moduli {
		s.addModulusLocked(string(mod), new(big.Int).SetBytes(mod))
	}
	s.records = snap.Records
	// Integrity: every record's cert fingerprint must resolve (bare keys
	// have a zero fingerprint).
	for i, rec := range s.records {
		if rec.CertFP == ([32]byte{}) {
			continue
		}
		if _, ok := s.certs[rec.CertFP]; !ok {
			return nil, fmt.Errorf("scanstore: record %d references missing certificate", i)
		}
	}
	return s, nil
}

// Package scanstore is the study's dataset layer: it accumulates host
// records (an IP/certificate pair observed on a given scan date, the unit
// the paper counts 1.5 billion of), deduplicates certificates and RSA
// moduli, and answers the aggregate queries behind Table 1, Table 3 and
// Figure 1. It stands in for the paper's MySQL database.
package scanstore

import (
	"fmt"
	"math/big"
	"sort"
	"sync"
	"time"

	"github.com/factorable/weakkeys/internal/certs"
)

// Protocol identifies the scanned service.
type Protocol string

// Protocols in the study: HTTPS is analyzed fully; the rest only feed
// moduli into the batch GCD run (Table 4).
const (
	HTTPS Protocol = "HTTPS"
	SSH   Protocol = "SSH"
	POP3S Protocol = "POP3S"
	IMAPS Protocol = "IMAPS"
	SMTPS Protocol = "SMTPS"
)

// Source identifies the scan project a record came from (Section 3.1).
type Source string

// Scan data sources, in chronological order of first appearance.
const (
	SourceEFF       Source = "EFF"
	SourcePQ        Source = "P&Q"
	SourceEcosystem Source = "Ecosystem"
	SourceRapid7    Source = "Rapid7"
	SourceCensys    Source = "Censys"
)

// Serving-layer sources: moduli that entered a corpus through the check
// service's write paths rather than a scan project. They never feed the
// paper's per-source tables (report rendering marks them unknown), and
// keeping them distinct stops replicated or user-submitted keys from
// polluting scan-source statistics and attribution.
const (
	// SourceAPI marks a modulus submitted through POST /v1/ingest; the
	// record's IP is the submitting client's.
	SourceAPI Source = "API"
	// SourceSync marks a modulus replicated from a cluster peer via
	// /v1/sync; the record's IP is the peer's address, and the original
	// observation's provenance lives on the origin replica.
	SourceSync Source = "Sync"
)

// HostRecord is one observation: a host at an IP served a certificate on
// a date.
type HostRecord struct {
	IP       string
	Date     time.Time
	Source   Source
	Protocol Protocol
	// CertFP keys into the store's distinct-certificate table. For bare
	// keys (SSH and the mail protocols when only the key was kept) it is
	// zero and ModKey is set directly.
	CertFP [32]byte
	// ModKey keys into the distinct-modulus table.
	ModKey string
	// RSAOnly records that the host advertised RSA key exchange with no
	// forward-secret alternative during the handshake — the Section 2.1
	// passive-decryption exposure (74% of vulnerable devices in the
	// paper's April 2016 data).
	RSAOnly bool
}

// Observation is the full-fidelity input record; AddCertObservation and
// AddBareKeyObservation are conveniences over Add.
type Observation struct {
	IP       string
	Date     time.Time
	Source   Source
	Protocol Protocol
	// Cert is the served certificate; nil for bare-key protocols, in
	// which case Modulus must be set.
	Cert    *certs.Certificate
	Modulus *big.Int
	RSAOnly bool
}

// Store accumulates records. It is safe for concurrent use: the scanner
// harvests with many workers.
type Store struct {
	mu      sync.RWMutex
	records []HostRecord
	certs   map[[32]byte]*certs.Certificate
	moduli  map[string]*big.Int
	// modOrder preserves first-seen order so DistinctModuli is stable;
	// certOrder does the same for certificates. Both are append-only,
	// which is what makes a Checkpoint a plain position triple.
	modOrder  []string
	certOrder [][32]byte
}

// New returns an empty store.
func New() *Store {
	return &Store{
		certs:  make(map[[32]byte]*certs.Certificate),
		moduli: make(map[string]*big.Int),
	}
}

// Add records an observation.
func (s *Store) Add(o Observation) error {
	rec := HostRecord{
		IP: o.IP, Date: o.Date, Source: o.Source, Protocol: o.Protocol,
		RSAOnly: o.RSAOnly,
	}
	var n *big.Int
	if o.Cert != nil {
		fp, err := o.Cert.Fingerprint()
		if err != nil {
			return fmt.Errorf("scanstore: %w", err)
		}
		rec.CertFP = fp
		rec.ModKey = o.Cert.ModulusKey()
		n = o.Cert.N
	} else if o.Modulus != nil {
		rec.ModKey = string(o.Modulus.Bytes())
		n = o.Modulus
	} else {
		return fmt.Errorf("scanstore: observation carries neither certificate nor modulus")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if o.Cert != nil {
		s.addCertLocked(rec.CertFP, o.Cert)
	}
	s.addModulusLocked(rec.ModKey, n)
	s.records = append(s.records, rec)
	return nil
}

// AddCertObservation records that ip served cert on date via the given
// source/protocol.
func (s *Store) AddCertObservation(ip string, date time.Time, src Source, proto Protocol, cert *certs.Certificate) error {
	return s.Add(Observation{IP: ip, Date: date, Source: src, Protocol: proto, Cert: cert})
}

// AddBareKeyObservation records a host serving a bare RSA public key
// (SSH host keys; mail-protocol scans where only moduli were extracted).
func (s *Store) AddBareKeyObservation(ip string, date time.Time, src Source, proto Protocol, n *big.Int) {
	// The only error path requires a certificate; bare keys cannot hit it.
	_ = s.Add(Observation{IP: ip, Date: date, Source: src, Protocol: proto, Modulus: n})
}

func (s *Store) addModulusLocked(key string, n *big.Int) {
	if _, ok := s.moduli[key]; !ok {
		s.moduli[key] = n
		s.modOrder = append(s.modOrder, key)
	}
}

func (s *Store) addCertLocked(fp [32]byte, c *certs.Certificate) {
	if _, ok := s.certs[fp]; !ok {
		s.certs[fp] = c
		s.certOrder = append(s.certOrder, fp)
	}
}

// Records returns all host records. The returned slice is shared; treat
// it as read-only.
func (s *Store) Records() []HostRecord {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.records
}

// DistinctCerts returns every distinct certificate, sorted by serial
// then fingerprint for deterministic iteration.
func (s *Store) DistinctCerts() []*certs.Certificate {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*certs.Certificate, 0, len(s.certs))
	for _, c := range s.certs {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if c := out[i].SerialNumber.Cmp(out[j].SerialNumber); c != 0 {
			return c < 0
		}
		return out[i].ModulusKey() < out[j].ModulusKey()
	})
	return out
}

// Cert returns the distinct certificate for a fingerprint, or nil.
func (s *Store) Cert(fp [32]byte) *certs.Certificate {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.certs[fp]
}

// DistinctModuli returns every distinct modulus in first-seen order,
// together with a parallel slice of map keys so callers can translate
// batch-GCD result indices back to moduli.
func (s *Store) DistinctModuli() ([]*big.Int, []string) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*big.Int, len(s.modOrder))
	keys := make([]string, len(s.modOrder))
	for i, k := range s.modOrder {
		out[i] = s.moduli[k]
		keys[i] = k
	}
	return out, keys
}

// Stats are the Table 1 aggregates over an optional protocol filter
// (empty Protocol means all).
type Stats struct {
	HostRecords         int
	DistinctCerts       int
	DistinctModuli      int
	ScanDates           int
	FirstScan, LastScan time.Time
}

// Stats computes aggregates for one protocol ("" for all).
func (s *Store) Stats(proto Protocol) Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var st Stats
	certSet := make(map[[32]byte]bool)
	modSet := make(map[string]bool)
	dateSet := make(map[string]bool)
	for _, r := range s.records {
		if proto != "" && r.Protocol != proto {
			continue
		}
		st.HostRecords++
		if r.CertFP != ([32]byte{}) {
			certSet[r.CertFP] = true
		}
		modSet[r.ModKey] = true
		dateSet[r.Date.Format("2006-01-02")] = true
		if st.FirstScan.IsZero() || r.Date.Before(st.FirstScan) {
			st.FirstScan = r.Date
		}
		if r.Date.After(st.LastScan) {
			st.LastScan = r.Date
		}
	}
	st.DistinctCerts = len(certSet)
	st.DistinctModuli = len(modSet)
	st.ScanDates = len(dateSet)
	return st
}

// ScanDates returns the distinct scan dates for a protocol in ascending
// order.
func (s *Store) ScanDates(proto Protocol) []time.Time {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set := make(map[time.Time]bool)
	for _, r := range s.records {
		if proto != "" && r.Protocol != proto {
			continue
		}
		set[r.Date] = true
	}
	out := make([]time.Time, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}

// RecordsOn returns the records for one scan date and protocol.
func (s *Store) RecordsOn(date time.Time, proto Protocol) []HostRecord {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []HostRecord
	for _, r := range s.records {
		if r.Date.Equal(date) && (proto == "" || r.Protocol == proto) {
			out = append(out, r)
		}
	}
	return out
}

// CertsWithModulus returns all distinct certificates carrying the given
// modulus key — the pivot the shared-prime extrapolation and the MITM
// detector both need.
func (s *Store) CertsWithModulus(modKey string) []*certs.Certificate {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []*certs.Certificate
	for _, c := range s.certs {
		if c.ModulusKey() == modKey {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].SerialNumber.Cmp(out[j].SerialNumber) < 0
	})
	return out
}

// IPsServingModulus returns the distinct IPs that ever served the modulus
// on the given protocol ("" for all): the Internet Rimon detector counts
// these (922 IPs, one key).
func (s *Store) IPsServingModulus(modKey string, proto Protocol) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set := make(map[string]bool)
	for _, r := range s.records {
		if r.ModKey != modKey {
			continue
		}
		if proto != "" && r.Protocol != proto {
			continue
		}
		set[r.IP] = true
	}
	out := make([]string, 0, len(set))
	for ip := range set {
		out = append(out, ip)
	}
	sort.Strings(out)
	return out
}

// Checkpoint marks a position in the store's three append-only tables.
// Because records, certificates and moduli are only ever appended (in
// first-seen order), "everything after this checkpoint" is a pure
// positional slice — the handle the incremental-ingest path uses to cut
// delta segments without diffing contents.
type Checkpoint struct {
	Records int `json:"records"`
	Certs   int `json:"certs"`
	Moduli  int `json:"moduli"`
}

// Checkpoint returns the store's current position.
func (s *Store) Checkpoint() Checkpoint {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Checkpoint{Records: len(s.records), Certs: len(s.certOrder), Moduli: len(s.modOrder)}
}

// replayLocked builds a self-contained store from a subset of records,
// pulling each record's certificate and modulus from the parent. The
// result is a valid standalone Store: every referenced certificate is
// present, even when it was first seen before the subset begins.
func (s *Store) replayLocked(recs []HostRecord) *Store {
	out := New()
	for _, r := range recs {
		if r.CertFP != ([32]byte{}) {
			if c := s.certs[r.CertFP]; c != nil {
				out.addCertLocked(r.CertFP, c)
			}
		}
		if n := s.moduli[r.ModKey]; n != nil {
			out.addModulusLocked(r.ModKey, n)
		}
		out.records = append(out.records, r)
	}
	return out
}

// Since returns a self-contained store holding every record added after
// the checkpoint — the delta to feed Snapshot.Ingest. A checkpoint taken
// from a different (longer) store yields an empty delta rather than a
// panic.
func (s *Store) Since(cp Checkpoint) *Store {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if cp.Records < 0 {
		cp.Records = 0
	}
	if cp.Records > len(s.records) {
		cp.Records = len(s.records)
	}
	return s.replayLocked(s.records[cp.Records:])
}

// DeltaOn returns a self-contained store holding one scan date's records
// for a protocol ("" for all) — the per-month delta of the longitudinal
// loop.
func (s *Store) DeltaOn(date time.Time, proto Protocol) *Store {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var recs []HostRecord
	for _, r := range s.records {
		if r.Date.Equal(date) && (proto == "" || r.Protocol == proto) {
			recs = append(recs, r)
		}
	}
	return s.replayLocked(recs)
}

package scanstore

import (
	"bytes"
	"compress/gzip"
	"encoding/gob"
	"fmt"
	"math/big"
	"strings"
	"sync"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	s := New()
	c1, c2 := newCert(t, 60), newCert(t, 61)
	s.AddCertObservation("10.0.0.1", date(2012, 6, 15), SourceEcosystem, HTTPS, c1)
	s.AddCertObservation("10.0.0.2", date(2014, 4, 15), SourceRapid7, HTTPS, c2)
	s.AddCertObservation("10.0.0.1", date(2014, 4, 15), SourceRapid7, HTTPS, c1)
	s.AddBareKeyObservation("10.9.9.9", date(2015, 10, 29), SourceCensys, SSH, big.NewInt(0xF00DF00D1))

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	a, b := s.Stats(""), got.Stats("")
	if a != b {
		t.Errorf("stats mismatch: %+v vs %+v", a, b)
	}
	mods1, keys1 := s.DistinctModuli()
	mods2, keys2 := got.DistinctModuli()
	if len(mods1) != len(mods2) {
		t.Fatalf("moduli count: %d vs %d", len(mods1), len(mods2))
	}
	for i := range mods1 {
		if mods1[i].Cmp(mods2[i]) != 0 || keys1[i] != keys2[i] {
			t.Errorf("modulus %d mismatch (order must be preserved)", i)
		}
	}
	fp, _ := c1.Fingerprint()
	rc := got.Cert(fp)
	if rc == nil || rc.Subject != c1.Subject {
		t.Error("certificate content lost")
	}
	if err := rc.Verify(nil); err != nil {
		t.Errorf("reloaded certificate fails verification: %v", err)
	}
	if len(got.Records()) != 4 {
		t.Errorf("records: %d", len(got.Records()))
	}
}

// TestSaveRacesAdd is the -race regression for the snapshot capture:
// Save used to alias s.records and gob-encode it after releasing the
// lock, so a concurrent Add mutating the shared backing array raced the
// encoder. The copy-under-lock fix makes this quiet under -race.
func TestSaveRacesAdd(t *testing.T) {
	s := New()
	c := newCert(t, 70)
	for i := 0; i < 50; i++ {
		s.AddCertObservation(fmt.Sprintf("10.0.0.%d", i), date(2013, 1, 1), SourceRapid7, HTTPS, c)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			s.AddCertObservation(fmt.Sprintf("10.1.%d.%d", i/256, i%256), date(2014, 2, 2), SourceCensys, HTTPS, c)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			var buf bytes.Buffer
			if err := s.Save(&buf); err != nil {
				t.Error(err)
				return
			}
			if _, err := Load(&buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
}

func TestLoadRejectsVersionMismatch(t *testing.T) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if err := gob.NewEncoder(zw).Encode(snapshot{Version: 99}); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	_, err := Load(&buf)
	if err == nil {
		t.Fatal("version-99 snapshot accepted")
	}
	// The error must name both the found and the supported version so an
	// operator knows which side to upgrade.
	if !strings.Contains(err.Error(), "99") || !strings.Contains(err.Error(), fmt.Sprint(snapshotVersion)) {
		t.Errorf("error %q does not name found (99) and supported (%d) versions", err, snapshotVersion)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestSaveLoadEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := New().Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats("").HostRecords != 0 {
		t.Error("empty store should stay empty")
	}
}

// TestDeltaSegmentRoundTrip: snapshot a base, keep scanning, cut a
// delta, and replay snapshot + delta elsewhere — the incremental-ingest
// persistence path.
func TestDeltaSegmentRoundTrip(t *testing.T) {
	s := New()
	c1 := newCert(t, 70)
	s.AddCertObservation("10.0.0.1", date(2015, 1, 1), SourceRapid7, HTTPS, c1)
	s.AddBareKeyObservation("10.0.0.2", date(2015, 1, 1), SourceRapid7, SSH, big.NewInt(0xBA5EBA111))

	var base bytes.Buffer
	if err := s.Save(&base); err != nil {
		t.Fatal(err)
	}
	cp := s.Checkpoint()
	if cp.Records != 2 || cp.Certs != 1 || cp.Moduli != 2 {
		t.Fatalf("checkpoint %+v", cp)
	}

	// The delta: a new cert, a new bare key, and a re-observation of the
	// old cert (no new cert/modulus entries for the latter).
	c2 := newCert(t, 71)
	s.AddCertObservation("10.0.0.3", date(2015, 2, 1), SourceRapid7, HTTPS, c2)
	s.AddBareKeyObservation("10.0.0.4", date(2015, 2, 1), SourceRapid7, SSH, big.NewInt(0xC0FFEE123))
	s.AddCertObservation("10.0.0.1", date(2015, 2, 1), SourceRapid7, HTTPS, c1)

	var delta bytes.Buffer
	if err := s.SaveDelta(&delta, cp); err != nil {
		t.Fatal(err)
	}

	got, err := Load(&base)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.LoadSince(bytes.NewReader(delta.Bytes())); err != nil {
		t.Fatal(err)
	}
	if a, b := s.Stats(""), got.Stats(""); a != b {
		t.Errorf("stats mismatch after delta replay: %+v vs %+v", a, b)
	}
	mods1, keys1 := s.DistinctModuli()
	mods2, keys2 := got.DistinctModuli()
	if len(mods1) != len(mods2) {
		t.Fatalf("moduli count: %d vs %d", len(mods1), len(mods2))
	}
	for i := range mods1 {
		if mods1[i].Cmp(mods2[i]) != 0 || keys1[i] != keys2[i] {
			t.Errorf("modulus %d mismatch (order must be preserved)", i)
		}
	}
	if got.Checkpoint() != s.Checkpoint() {
		t.Errorf("positions diverged: %+v vs %+v", got.Checkpoint(), s.Checkpoint())
	}

	// A second application must be rejected: the store has moved past the
	// segment's base.
	if err := got.LoadSince(bytes.NewReader(delta.Bytes())); err == nil ||
		!strings.Contains(err.Error(), "base") {
		t.Errorf("re-applying delta: err = %v, want base mismatch", err)
	}
}

func TestSaveDeltaBadCheckpoint(t *testing.T) {
	s := New()
	s.AddBareKeyObservation("10.0.0.1", date(2015, 1, 1), SourceRapid7, SSH, big.NewInt(0xABCDEF01))
	var buf bytes.Buffer
	if err := s.SaveDelta(&buf, Checkpoint{Records: 99}); err == nil {
		t.Error("out-of-range checkpoint accepted")
	}
}

// TestSinceAndDeltaOn: the in-memory delta cuts used by the serving and
// longitudinal paths.
func TestSinceAndDeltaOn(t *testing.T) {
	s := New()
	c1 := newCert(t, 80)
	s.AddCertObservation("10.0.0.1", date(2015, 1, 1), SourceRapid7, HTTPS, c1)
	cp := s.Checkpoint()
	s.AddBareKeyObservation("10.0.0.2", date(2015, 2, 1), SourceRapid7, SSH, big.NewInt(0xD00DAD011))
	s.AddCertObservation("10.0.0.3", date(2015, 2, 1), SourceRapid7, HTTPS, c1) // old cert, re-observed

	d := s.Since(cp)
	if len(d.Records()) != 2 {
		t.Fatalf("since: %d records, want 2", len(d.Records()))
	}
	// Self-contained: the re-observed certificate must resolve in the delta.
	fp, _ := c1.Fingerprint()
	if d.Cert(fp) == nil {
		t.Error("delta lost the re-observed certificate")
	}
	mods, _ := d.DistinctModuli()
	if len(mods) != 2 {
		t.Errorf("since: %d distinct moduli, want 2 (bare key + c1's)", len(mods))
	}
	// An overlong checkpoint clamps to empty rather than panicking.
	if n := len(s.Since(Checkpoint{Records: 1 << 20}).Records()); n != 0 {
		t.Errorf("overlong checkpoint yielded %d records", n)
	}

	feb := s.DeltaOn(date(2015, 2, 1), "")
	if len(feb.Records()) != 2 {
		t.Errorf("DeltaOn(feb): %d records, want 2", len(feb.Records()))
	}
	if ssh := s.DeltaOn(date(2015, 2, 1), SSH); len(ssh.Records()) != 1 {
		t.Errorf("DeltaOn(feb, SSH): %d records, want 1", len(ssh.Records()))
	}
}

package distgcd

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/factorable/weakkeys/internal/faults"
	"github.com/factorable/weakkeys/internal/telemetry"
)

// NodeFailure records one subset permanently lost to a node failure.
type NodeFailure struct {
	// Node is the subset/node index (the round-robin partition id).
	Node int
	// Phase is the phase the node died in ("build" or "reduce").
	Phase faults.Phase
	// Err is the terminal error after reassignment was exhausted.
	Err error
}

// PartialError reports that the run completed but some subsets were
// abandoned after their nodes failed and reassignment ran out: the
// returned results are valid for the surviving subsets but GCD pairs
// involving a lost subset's moduli may be missing. Callers that prefer
// partial coverage over no coverage (a cluster job hours in) can detect
// it with errors.As and keep the results.
type PartialError struct {
	Failures []NodeFailure
}

func (e *PartialError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "distgcd: %d subset(s) lost:", len(e.Failures))
	for _, f := range e.Failures {
		fmt.Fprintf(&b, " node %d (%s): %v;", f.Node, f.Phase, f.Err)
	}
	return strings.TrimSuffix(b.String(), ";")
}

// Unwrap exposes each lost subset's terminal error, so
// errors.Is(err, faults.ErrNodeCrash) sees through the summary.
func (e *PartialError) Unwrap() []error {
	errs := make([]error, len(e.Failures))
	for i, f := range e.Failures {
		errs[i] = f.Err
	}
	return errs
}

// gcdInstruments is the supervisor's telemetry: failures detected,
// subsets reassigned, stragglers speculatively duplicated, plus the
// structured event log the incident narrative goes to.
type gcdInstruments struct {
	failures   *telemetry.Counter // distgcd_node_failures_total
	reassign   *telemetry.Counter // distgcd_node_reassignments_total
	stragglers *telemetry.Counter // distgcd_stragglers_total
	events     *telemetry.EventLog
	reassignN  atomic.Int64
}

func newGCDInstruments(reg *telemetry.Registry, events *telemetry.EventLog) *gcdInstruments {
	return &gcdInstruments{
		failures:   reg.Counter("distgcd_node_failures_total"),
		reassign:   reg.Counter("distgcd_node_reassignments_total"),
		stragglers: reg.Counter("distgcd_stragglers_total"),
		events:     events,
	}
}

// runPhase pushes every node through one phase under supervision,
// concurrently. It returns the nodes that finished the phase (the
// original worker, a reassigned replacement, or a speculative duplicate
// — whichever won) and the subsets that were permanently lost.
func runPhase(ctx context.Context, nodes []*node, phase faults.Phase,
	work func(context.Context, *node) error, spec func(*node) *node,
	opts Options, ins *gcdInstruments) (finished []*node, failed []NodeFailure) {
	winners := make([]*node, len(nodes))
	errs := make([]error, len(nodes))
	var wg sync.WaitGroup
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n *node) {
			defer wg.Done()
			winners[i], errs[i] = superviseOne(ctx, n, phase, work, spec, opts, ins)
		}(i, n)
	}
	wg.Wait()
	for i, n := range nodes {
		if errs[i] != nil {
			failed = append(failed, NodeFailure{Node: n.id, Phase: phase, Err: errs[i]})
			continue
		}
		finished = append(finished, winners[i])
	}
	return finished, failed
}

// superviseOne shepherds a single subset through one phase. A node that
// dies (faults.ErrNodeCrash — an injected or detected machine loss) has
// its subset reassigned to a fresh worker, up to opts.MaxReassign
// times; any other error, or exhausting reassignment, loses the subset.
func superviseOne(ctx context.Context, n *node, phase faults.Phase,
	work func(context.Context, *node) error, spec func(*node) *node,
	opts Options, ins *gcdInstruments) (*node, error) {
	attempt := n
	for tries := 0; ; tries++ {
		winner, err := raceStraggler(ctx, attempt, work, spec, opts, ins)
		if err == nil {
			return winner, nil
		}
		if !errors.Is(err, faults.ErrNodeCrash) {
			return nil, err
		}
		ins.failures.Inc()
		ins.events.Warn(ctx, "node crashed",
			slog.Int("node", n.id),
			slog.String("phase", string(phase)),
			slog.Int("tries", tries))
		if tries >= opts.MaxReassign || ctx.Err() != nil {
			ins.events.Error(ctx, "subset lost",
				slog.Int("node", n.id),
				slog.String("phase", string(phase)),
				slog.Int("tries", tries),
				slog.String("error", err.Error()))
			return nil, err
		}
		ins.reassign.Inc()
		ins.reassignN.Add(1)
		attempt = attempt.replacement()
		ins.events.Warn(ctx, "subset reassigned",
			slog.Int("node", n.id),
			slog.String("phase", string(phase)),
			slog.Int("reassignment", tries+1))
	}
}

// raceStraggler runs work on n and, when speculation is enabled and the
// worker outlives the straggler window, races a duplicate on the same
// subset — the first finisher wins and the loser is cancelled (the
// MapReduce "backup task" defence against slow machines). With
// speculation disabled it simply waits for the worker.
func raceStraggler(ctx context.Context, n *node,
	work func(context.Context, *node) error, spec func(*node) *node,
	opts Options, ins *gcdInstruments) (*node, error) {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel() // reclaims the losing worker at its next level check

	type outcome struct {
		n   *node
		err error
	}
	ch := make(chan outcome, 2)
	go func() { ch <- outcome{n, work(ctx, n)} }()

	if opts.StragglerTimeout <= 0 || spec == nil {
		o := <-ch
		return o.n, o.err
	}
	t := time.NewTimer(opts.StragglerTimeout)
	defer t.Stop()
	var first outcome
	select {
	case first = <-ch:
		return first.n, first.err
	case <-t.C:
	}
	ins.stragglers.Inc()
	ins.events.Info(ctx, "straggler speculation",
		slog.Int("node", n.id),
		slog.Duration("after", opts.StragglerTimeout))
	dup := spec(n)
	go func() { ch <- outcome{dup, work(ctx, dup)} }()
	first = <-ch
	if first.err == nil {
		return first.n, nil
	}
	// The first finisher failed (e.g. the straggler was also armed to
	// crash); the other worker may still deliver.
	second := <-ch
	if second.err == nil {
		return second.n, nil
	}
	return nil, first.err
}

package distgcd

import (
	"context"
	"errors"
	"math/big"
	"math/rand"
	"testing"

	"github.com/factorable/weakkeys/internal/batchgcd"
	"github.com/factorable/weakkeys/internal/numtheory"
)

func primes(t testing.TB, seed int64, n, bits int) []*big.Int {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[string]bool)
	out := make([]*big.Int, 0, n)
	for len(out) < n {
		p, err := numtheory.GenPrimeNaive(rng, bits)
		if err != nil {
			t.Fatal(err)
		}
		if seen[p.String()] {
			continue
		}
		seen[p.String()] = true
		out = append(out, p)
	}
	return out
}

func mul(a, b *big.Int) *big.Int { return new(big.Int).Mul(a, b) }

// mixedCorpus builds a corpus with known vulnerable indices: some safe
// moduli from disjoint primes, some sharing a prime within the corpus.
func mixedCorpus(t testing.TB, seed int64, nSafe, nShared, bits int) ([]*big.Int, map[int]bool) {
	ps := primes(t, seed, 2*nSafe+nShared+1, bits)
	var moduli []*big.Int
	want := make(map[int]bool)
	for i := 0; i < nSafe; i++ {
		moduli = append(moduli, mul(ps[2*i], ps[2*i+1]))
	}
	shared := ps[2*nSafe]
	for i := 0; i < nShared; i++ {
		want[len(moduli)] = true
		moduli = append(moduli, mul(shared, ps[2*nSafe+1+i]))
	}
	if nShared == 1 {
		// A single user of the shared prime is not vulnerable.
		want = map[int]bool{}
	}
	return moduli, want
}

func TestRunMatchesExpected(t *testing.T) {
	moduli, want := mixedCorpus(t, 1, 6, 4, 48)
	for _, k := range []int{1, 2, 3, 4, 7, 10, 100} {
		res, stats, err := Run(context.Background(), moduli, Options{Subsets: k})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		got := make(map[int]bool)
		for _, r := range res {
			got[r.Index] = true
		}
		for i := range moduli {
			if got[i] != want[i] {
				t.Errorf("k=%d index %d: got %v want %v", k, i, got[i], want[i])
			}
		}
		if int(stats.ItemsIn) != len(moduli) {
			t.Errorf("k=%d: stats.ItemsIn = %d", k, stats.ItemsIn)
		}
		if k <= len(moduli) && stats.Subsets != k {
			t.Errorf("k=%d: stats.Subsets = %d", k, stats.Subsets)
		}
	}
}

func TestRunAgreesWithSingleTreeDivisors(t *testing.T) {
	moduli, _ := mixedCorpus(t, 2, 5, 3, 48)
	single, err := batchgcd.Factor(moduli)
	if err != nil {
		t.Fatal(err)
	}
	dist, _, err := Run(context.Background(), moduli, Options{Subsets: 4})
	if err != nil {
		t.Fatal(err)
	}
	sdiv := make(map[int]string)
	for _, r := range single {
		sdiv[r.Index] = r.Divisor.String()
	}
	if len(single) != len(dist) {
		t.Fatalf("result count: single %d, dist %d", len(single), len(dist))
	}
	for _, r := range dist {
		if sdiv[r.Index] != r.Divisor.String() {
			t.Errorf("index %d: single divisor %s, dist %s", r.Index, sdiv[r.Index], r.Divisor)
		}
	}
}

func TestRunCliqueAcrossSubsets(t *testing.T) {
	// Force clique members into different subsets (round-robin placement
	// with k=3 puts indices 0,1,2 on different nodes).
	ps := primes(t, 3, 3, 48)
	moduli := []*big.Int{mul(ps[0], ps[1]), mul(ps[0], ps[2]), mul(ps[1], ps[2])}
	res, _, err := Run(context.Background(), moduli, Options{Subsets: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("want 3 vulnerable, got %v", res)
	}
	for _, r := range res {
		// Both primes shared -> divisor is the whole modulus, as in the
		// single-tree algorithm.
		if r.Divisor.Cmp(moduli[r.Index]) != 0 {
			t.Errorf("index %d: divisor %v", r.Index, r.Divisor)
		}
	}
}

func TestRunDuplicates(t *testing.T) {
	ps := primes(t, 4, 2, 48)
	n := mul(ps[0], ps[1])
	res, _, err := Run(context.Background(), []*big.Int{n, new(big.Int).Set(n)}, Options{Subsets: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("duplicates must not be self-vulnerable: %v", res)
	}
}

func TestRunErrors(t *testing.T) {
	if _, _, err := Run(context.Background(), nil, Options{Subsets: 2}); err != batchgcd.ErrNoInput {
		t.Errorf("empty input: %v", err)
	}
	moduli, _ := mixedCorpus(t, 5, 2, 0, 48)
	if _, _, err := Run(context.Background(), moduli, Options{Subsets: 0}); err == nil {
		t.Error("Subsets=0 should error")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := Run(ctx, moduli, Options{Subsets: 2}); err == nil {
		t.Error("cancelled context should error")
	}
}

func TestStatsPopulated(t *testing.T) {
	moduli, _ := mixedCorpus(t, 6, 10, 5, 64)
	_, stats, err := Run(context.Background(), moduli, Options{Subsets: 4})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CPU <= 0 {
		t.Error("CPU should be positive")
	}
	if stats.Bytes <= 0 {
		t.Error("Bytes (peak node mem) should be positive")
	}
	if stats.Wall <= 0 {
		t.Error("Wall should be positive")
	}
}

func TestPeakMemShrinksWithMoreSubsets(t *testing.T) {
	// The entire point of the partitioned algorithm: per-node trees are
	// smaller. Peak per-node memory with k=8 must be well below k=1.
	moduli, _ := mixedCorpus(t, 7, 32, 0, 64)
	_, s1, err := Run(context.Background(), moduli, Options{Subsets: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, s8, err := Run(context.Background(), moduli, Options{Subsets: 8})
	if err != nil {
		t.Fatal(err)
	}
	if s8.Bytes >= s1.Bytes {
		t.Errorf("k=8 peak %d should be below k=1 peak %d", s8.Bytes, s1.Bytes)
	}
}

func TestRunCancelledContext(t *testing.T) {
	ps := primes(t, 11, 12, 64)
	moduli := make([]*big.Int, 0, 6)
	for i := 0; i+1 < len(ps); i += 2 {
		moduli = append(moduli, new(big.Int).Mul(ps[i], ps[i+1]))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := Run(ctx, moduli, Options{Subsets: 3}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run err = %v, want wrapped context.Canceled", err)
	}
}

func TestRunItemsInOut(t *testing.T) {
	ps := primes(t, 12, 6, 64)
	// Two moduli sharing ps[0]: both vulnerable.
	moduli := []*big.Int{
		new(big.Int).Mul(ps[0], ps[1]),
		new(big.Int).Mul(ps[0], ps[2]),
		new(big.Int).Mul(ps[3], ps[4]),
	}
	results, stats, err := Run(context.Background(), moduli, Options{Subsets: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ItemsIn != 3 {
		t.Errorf("ItemsIn = %d, want 3", stats.ItemsIn)
	}
	if int(stats.ItemsOut) != len(results) || stats.ItemsOut != 2 {
		t.Errorf("ItemsOut = %d (results %d), want 2", stats.ItemsOut, len(results))
	}
}

// Package distgcd implements the cluster-parallel batch GCD variant of
// Hastings, Fried and Heninger (IMC 2016, Section 3.2 and Figure 2).
//
// The single-tree batch GCD bottlenecks on the gigantic product at the
// centre of the tree: GMP (and math/big) multiplication is single-threaded
// per operation, and at the paper's scale the central product of 81
// million moduli dominates both time and memory. The paper's modification
// divides the n moduli into k subsets, computes only the k subset products
// P1..Pk, and pairs every product with every subset's remainder tree. The
// total work rises (quadratic in k) but each unit is small enough to run
// in parallel across cluster nodes and the monster central product is
// never formed: the authors report 86 minutes across 22 machines versus
// 500 minutes on one large-memory machine.
//
// Here each cluster node is a goroutine with its own subset and product
// tree; subset products are exchanged over channels, standing in for the
// cluster interconnect. The arithmetic is identical to the real system.
package distgcd

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"sort"
	"time"

	"github.com/factorable/weakkeys/internal/batchgcd"
	"github.com/factorable/weakkeys/internal/faults"
	"github.com/factorable/weakkeys/internal/kernel"
	"github.com/factorable/weakkeys/internal/pipeline"
	"github.com/factorable/weakkeys/internal/prodtree"
	"github.com/factorable/weakkeys/internal/telemetry"
)

// Options configures a distributed run.
type Options struct {
	// Subsets is the number of subsets k the moduli are divided into
	// (one per simulated cluster node). The paper used k = 16 for the
	// 81M-moduli run. Must be >= 1; 1 degenerates to the single-tree
	// algorithm on one node.
	Subsets int
	// Metrics, when set, receives live run telemetry: distgcd_moduli,
	// distgcd_subsets, distgcd_results, distgcd_total_cpu_seconds and
	// distgcd_peak_node_tree_bytes gauges, plus per-node
	// distgcd_node_tree_bytes{node="i"} / distgcd_node_busy_seconds
	// gauges updated as each node finishes a phase — the per-node memory
	// and CPU ledger the paper reports per cluster machine. The
	// supervisor adds distgcd_node_failures_total,
	// distgcd_node_reassignments_total and distgcd_stragglers_total.
	Metrics *telemetry.Registry
	// Events, when set, records the supervisor's structured incident
	// narrative in the flight recorder: node crashes and subset
	// reassignments at warn, straggler speculation at info, and subsets
	// permanently lost at error — the who/when/why behind the counters.
	Events *telemetry.EventLog
	// Faults, when set, injects node failures for chaos testing: a node
	// whose (id, phase) is armed dies at phase entry with
	// faults.ErrNodeCrash (standing in for a machine loss) or stalls
	// before starting work. Injections are one-shot, so a reassigned
	// re-run of the subset survives — the recovery path under test.
	Faults *faults.NodePlan
	// StragglerTimeout, when > 0, arms speculative execution: a node
	// that has not finished its current phase within this window is
	// duplicated onto a fresh worker and the first finisher wins (the
	// MapReduce "backup task" defence). Zero disables speculation.
	StragglerTimeout time.Duration
	// MaxReassign bounds how many times a dead node's subset is
	// reassigned before the run abandons the subset and degrades to
	// partial results (a *PartialError). 0 means the default of 2;
	// negative disables reassignment entirely.
	MaxReassign int
}

// Stats reports the cost profile of a run on the shared per-stage stats
// type, mirroring the quantities the paper compares: Wall is the
// wall-clock time, CPU the total busy time summed across nodes (the
// paper's "1089 CPU hours"), Bytes the peak per-node product-tree
// footprint (the paper's "70-100 GB per node"), ItemsIn the input
// modulus count and ItemsOut the number of vulnerable results.
type Stats struct {
	pipeline.Stats
	// Subsets is the effective subset count k (clamped to the input size).
	Subsets int
	// Reassigned counts subset re-runs after node deaths.
	Reassigned int
	// LostSubsets counts subsets abandoned after reassignment ran out;
	// non-zero only when Run also returns a *PartialError.
	LostSubsets int
}

// Run executes the partitioned batch GCD over moduli and returns the
// vulnerable results (same semantics as batchgcd.Factor: duplicates are
// deduplicated first, indices refer to the input slice) plus run stats.
// The context cancels in-flight work mid-computation: every node checks
// it per tree level, so cancellation returns within one level's work
// with an error wrapping the context's.
//
// Node failures (injected via Options.Faults, or any worker returning
// faults.ErrNodeCrash) are handled by a supervisor: the dead node's
// subset is reassigned to a fresh worker, and only after MaxReassign
// consecutive deaths is the subset abandoned. If some subsets finish
// and others are abandoned, Run returns the surviving results together
// with a *PartialError summarising what was lost, so an hours-long
// cluster job degrades instead of evaporating.
func Run(ctx context.Context, moduli []*big.Int, opts Options) ([]batchgcd.Result, Stats, error) {
	start := time.Now()
	var stats Stats
	if len(moduli) == 0 {
		return nil, stats, batchgcd.ErrNoInput
	}
	k := opts.Subsets
	if k < 1 {
		return nil, stats, errors.New("distgcd: Subsets must be >= 1")
	}
	if k > len(moduli) {
		k = len(moduli)
	}
	stats.Subsets = k
	stats.ItemsIn = int64(len(moduli))
	if opts.MaxReassign == 0 {
		opts.MaxReassign = 2
	} else if opts.MaxReassign < 0 {
		opts.MaxReassign = 0
	}
	opts.Metrics.Gauge("distgcd_moduli").Set(float64(len(moduli)))
	opts.Metrics.Gauge("distgcd_subsets").Set(float64(k))
	ins := newGCDInstruments(opts.Metrics, opts.Events)

	distinct, backrefs := dedup(moduli)

	// Assign distinct moduli round-robin to k nodes. Round-robin keeps
	// subset sizes balanced regardless of input ordering.
	subsets := make([][]*big.Int, k)
	subsetOrigin := make([][]int, k) // index into distinct
	for i, m := range distinct {
		node := i % k
		subsets[node] = append(subsets[node], m)
		subsetOrigin[node] = append(subsetOrigin[node], i)
	}

	nodes := make([]*node, 0, k)
	for id := 0; id < k; id++ {
		if len(subsets[id]) == 0 {
			continue
		}
		nodes = append(nodes, &node{id: id, moduli: subsets[id], origin: subsetOrigin[id],
			faults: opts.Faults, metrics: opts.Metrics})
	}

	// Phase 1 (supervised): every node builds its subset product tree.
	// A speculative build duplicate starts from scratch — the straggler
	// holds no state worth sharing.
	buildWork := func(ctx context.Context, n *node) error { return n.buildTree(ctx) }
	built, lostBuild := runPhase(ctx, nodes, faults.PhaseBuild, buildWork,
		func(n *node) *node { return n.replacement() }, opts, ins)
	if err := ctx.Err(); err != nil {
		return nil, stats, fmt.Errorf("distgcd: cancelled: %w", err)
	}
	if len(built) == 0 {
		return nil, stats, fmt.Errorf("distgcd: every subset lost in build phase: %w", lostBuild[0].Err)
	}

	// Exchange: gather the surviving subset products (the cluster
	// all-to-all). A subset lost in build simply isn't part of the
	// exchange — the survivors' pairwise GCDs are still exact.
	products := make([]*big.Int, len(built))
	for i, n := range built {
		products[i] = n.tree.Root()
	}

	// Phase 2 (supervised): every node pairs every product with its own
	// subset. A replacement for a node that died mid-reduce lost its
	// tree with the machine and rebuilds it first; a speculative
	// duplicate of a live straggler shares the original's tree, which is
	// read-only during remainder computation.
	reduceWork := func(ctx context.Context, n *node) error {
		if n.tree == nil {
			if err := n.buildTree(ctx); err != nil {
				return err
			}
		}
		return n.reduceAll(ctx, products)
	}
	reduceSpec := func(n *node) *node {
		dup := n.replacement()
		dup.tree, dup.treeBytes = n.tree, n.treeBytes
		return dup
	}
	finished, lostReduce := runPhase(ctx, built, faults.PhaseReduce, reduceWork, reduceSpec, opts, ins)
	if err := ctx.Err(); err != nil {
		return nil, stats, fmt.Errorf("distgcd: cancelled: %w", err)
	}
	if len(finished) == 0 {
		return nil, stats, fmt.Errorf("distgcd: every subset lost in reduce phase: %w", lostReduce[0].Err)
	}

	// Collect results and stats from the subsets that made it.
	var results []batchgcd.Result
	for _, n := range finished {
		stats.CPU += n.busy
		if b := n.treeBytes; b > stats.Bytes {
			stats.Bytes = b
		}
		for j, d := range n.divisors {
			if d == nil {
				continue
			}
			for _, orig := range backrefs[n.origin[j]] {
				results = append(results, batchgcd.Result{Index: orig, Divisor: d})
			}
		}
	}
	// Supervision can reorder completion; keep the output canonical so
	// same-seed chaos runs are byte-for-byte identical to clean runs.
	sort.Slice(results, func(i, j int) bool { return results[i].Index < results[j].Index })

	stats.Wall = time.Since(start)
	stats.ItemsOut = int64(len(results))
	stats.Reassigned = int(ins.reassignN.Load())
	stats.LostSubsets = len(lostBuild) + len(lostReduce)
	opts.Metrics.Gauge("distgcd_results").Set(float64(len(results)))
	opts.Metrics.Gauge("distgcd_total_cpu_seconds").Set(stats.CPU.Seconds())
	opts.Metrics.Gauge("distgcd_peak_node_tree_bytes").Set(float64(stats.Bytes))
	kernel.FromContext(ctx).Publish(opts.Metrics)
	if stats.LostSubsets > 0 {
		return results, stats, &PartialError{Failures: append(lostBuild, lostReduce...)}
	}
	return results, stats, nil
}

// node is one simulated cluster node.
type node struct {
	id      int
	moduli  []*big.Int
	origin  []int
	faults  *faults.NodePlan
	metrics *telemetry.Registry

	tree      *prodtree.Tree
	treeBytes int64
	busy      time.Duration
	divisors  []*big.Int
}

// replacement is a fresh worker for the same subset — the supervisor's
// reassignment target after this node dies, or a speculative duplicate.
// It shares the immutable subset (moduli, origins) but none of the
// dead node's state.
func (n *node) replacement() *node {
	return &node{id: n.id, moduli: n.moduli, origin: n.origin, faults: n.faults, metrics: n.metrics}
}

// inject applies any scheduled fault for this node's phase: a straggle
// stalls the worker (long enough to trip the supervisor's speculation
// window), a crash kills it with faults.ErrNodeCrash. Both are one-shot
// in the plan, so the re-execution of this subset runs clean.
func (n *node) inject(ctx context.Context, phase faults.Phase) error {
	if d := n.faults.StraggleFor(n.id, phase); d > 0 {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if n.faults.CrashFires(n.id, phase) {
		return fmt.Errorf("distgcd: node %d (%s): %w", n.id, phase, faults.ErrNodeCrash)
	}
	return nil
}

// publish mirrors the node's running cost counters into the registry,
// one trace-view-style track per node, so a live scrape mid-run shows
// which nodes are done with which phase.
func (n *node) publish() {
	label := fmt.Sprintf(`{node="%d"}`, n.id)
	n.metrics.Gauge("distgcd_node_tree_bytes" + label).Set(float64(n.treeBytes))
	n.metrics.Gauge("distgcd_node_busy_seconds" + label).Set(n.busy.Seconds())
	n.metrics.Gauge("distgcd_node_moduli" + label).Set(float64(len(n.moduli)))
}

func (n *node) buildTree(ctx context.Context) error {
	sp := telemetry.SpanFrom(ctx).ChildTrack(fmt.Sprintf("node%d.build", n.id), n.id+1)
	defer sp.End()
	if err := n.inject(ctx, faults.PhaseBuild); err != nil {
		return err
	}
	t0 := time.Now()
	tree, err := prodtree.NewCtx(ctx, n.moduli)
	if err != nil {
		return err
	}
	n.tree = tree
	n.treeBytes = tree.Bytes()
	n.busy += time.Since(t0)
	sp.SetArg("tree_bytes", n.treeBytes)
	sp.SetArg("moduli", len(n.moduli))
	n.publish()
	return nil
}

// reduceAll combines the evidence from every subset product. For the
// node's own product Ps the Bernstein squared-remainder trick removes the
// modulus's own contribution: zs = (Ps mod Ni²)/Ni. Foreign products Pj
// contribute Pj mod Ni directly. The product of all contributions modulo
// Ni is congruent to (P/Ni) mod Ni for the global product P, so
// gcd(Ni, ∏ contributions) equals the divisor the single-tree algorithm
// reports.
func (n *node) reduceAll(ctx context.Context, products []*big.Int) error {
	sp := telemetry.SpanFrom(ctx).ChildTrack(fmt.Sprintf("node%d.reduce", n.id), n.id+1)
	defer sp.End()
	if err := n.inject(ctx, faults.PhaseReduce); err != nil {
		return err
	}
	t0 := time.Now()
	defer func() { n.busy += time.Since(t0); n.publish() }()

	// Find this node's own product in the exchange by value: a
	// reassigned worker rebuilt its tree, so its root is a different
	// *big.Int from the one exchanged, with the same value.
	self := -1
	selfRoot := n.tree.Root()
	for i, p := range products {
		if p.Cmp(selfRoot) == 0 {
			self = i
			break
		}
	}
	if self < 0 {
		return errors.New("distgcd: node product missing from exchange")
	}

	// combined[i] accumulates ∏_j contribution_j mod Ni. The per-modulus
	// loops are independent; they run on the shared kernel pool, so k
	// concurrent nodes queue work on one GOMAXPROCS-wide pool instead of
	// spawning k goroutine sets of their own.
	eng := kernel.FromContext(ctx)
	combined := make([]*big.Int, len(n.moduli))
	zs, err := n.tree.RemainderTreeSquaredCtx(ctx, selfRoot)
	if err != nil {
		return err
	}
	err = eng.Run(ctx, len(n.moduli), func(i int, a *kernel.Arena) {
		z := a.Get()
		z.Quo(zs[i], n.moduli[i])
		combined[i] = new(big.Int).Mod(z, n.moduli[i])
	})
	if err != nil {
		return fmt.Errorf("distgcd: node %d reduce cancelled: %w", n.id, err)
	}
	for j, p := range products {
		if j == self {
			continue
		}
		rems, err := n.tree.RemainderTreeCtx(ctx, p)
		if err != nil {
			return err
		}
		err = eng.Run(ctx, len(n.moduli), func(i int, _ *kernel.Arena) {
			combined[i].Mul(combined[i], rems[i])
			combined[i].Mod(combined[i], n.moduli[i])
		})
		if err != nil {
			return fmt.Errorf("distgcd: node %d reduce cancelled: %w", n.id, err)
		}
	}

	n.divisors = make([]*big.Int, len(n.moduli))
	err = eng.Run(ctx, len(n.moduli), func(i int, a *kernel.Arena) {
		g := a.Get()
		g.GCD(nil, nil, combined[i], n.moduli[i])
		if g.Cmp(one) != 0 {
			n.divisors[i] = new(big.Int).Set(g)
		}
	})
	if err != nil {
		return fmt.Errorf("distgcd: node %d gcd sweep cancelled: %w", n.id, err)
	}
	return nil
}

var one = big.NewInt(1)

// dedup mirrors batchgcd's deduplication so both entry points agree on
// what "vulnerable" means for repeated inputs.
func dedup(moduli []*big.Int) (distinct []*big.Int, backrefs [][]int) {
	seen := make(map[string]int, len(moduli))
	for i, m := range moduli {
		key := string(m.Bytes())
		if j, ok := seen[key]; ok {
			backrefs[j] = append(backrefs[j], i)
			continue
		}
		seen[key] = len(distinct)
		distinct = append(distinct, m)
		backrefs = append(backrefs, []int{i})
	}
	return distinct, backrefs
}

package distgcd

import (
	"context"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/factorable/weakkeys/internal/batchgcd"
)

// TestPropertyDistributedMatchesSingleTree fuzzes random corpus shapes —
// random mixes of disjoint and shared primes, duplicates, and subset
// counts — and requires the cluster-partitioned algorithm to agree with
// the single-tree algorithm on both membership and divisors.
func TestPropertyDistributedMatchesSingleTree(t *testing.T) {
	// A fixed pool of smallish primes keeps each trial fast while still
	// exercising every sharing topology.
	pool := primes(t, 99, 14, 40)
	f := func(seed int64, kRaw, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%40) + 2
		k := int(kRaw%9) + 1
		moduli := make([]*big.Int, n)
		for i := range moduli {
			a := rng.Intn(len(pool))
			b := rng.Intn(len(pool))
			if a == b {
				b = (b + 1) % len(pool)
			}
			moduli[i] = new(big.Int).Mul(pool[a], pool[b])
		}
		single, err := batchgcd.Factor(moduli)
		if err != nil {
			return false
		}
		dist, _, err := Run(context.Background(), moduli, Options{Subsets: k})
		if err != nil {
			return false
		}
		if len(single) != len(dist) {
			return false
		}
		sdiv := make(map[int]string, len(single))
		for _, r := range single {
			sdiv[r.Index] = r.Divisor.String()
		}
		for _, r := range dist {
			if sdiv[r.Index] != r.Divisor.String() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDistributedMatchesPairwiseMembership checks the distributed
// algorithm against the ground-truth quadratic baseline.
func TestPropertyDistributedMatchesPairwiseMembership(t *testing.T) {
	pool := primes(t, 123, 10, 40)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(25) + 2
		moduli := make([]*big.Int, n)
		for i := range moduli {
			a := rng.Intn(len(pool))
			b := (a + 1 + rng.Intn(len(pool)-1)) % len(pool)
			moduli[i] = new(big.Int).Mul(pool[a], pool[b])
		}
		dist, _, err := Run(context.Background(), moduli, Options{Subsets: 4})
		if err != nil {
			return false
		}
		pair, err := batchgcd.FactorPairwise(moduli)
		if err != nil {
			return false
		}
		dSet := make(map[int]bool)
		for _, r := range dist {
			dSet[r.Index] = true
		}
		pSet := make(map[int]bool)
		for _, r := range pair {
			pSet[r.Index] = true
		}
		if len(dSet) != len(pSet) {
			return false
		}
		for i := range pSet {
			if !dSet[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

package distgcd

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/factorable/weakkeys/internal/batchgcd"
	"github.com/factorable/weakkeys/internal/faults"
	"github.com/factorable/weakkeys/internal/telemetry"
)

func divisorsByIndex(res []batchgcd.Result) map[int]string {
	m := make(map[int]string, len(res))
	for _, r := range res {
		m[r.Index] = r.Divisor.String()
	}
	return m
}

// TestNodeCrashMidReduceRecovered is the distgcd half of the chaos
// acceptance: a node dies in the reduce phase, the supervisor reassigns
// its subset (rebuilding the lost tree on the replacement), and the
// vulnerable-moduli output is identical to a fault-free run.
func TestNodeCrashMidReduceRecovered(t *testing.T) {
	moduli, _ := mixedCorpus(t, 21, 6, 4, 48)
	clean, _, err := Run(context.Background(), moduli, Options{Subsets: 4})
	if err != nil {
		t.Fatal(err)
	}

	reg := telemetry.New()
	plan := faults.NewNodePlan().Crash(1, faults.PhaseReduce)
	res, stats, err := Run(context.Background(), moduli, Options{Subsets: 4, Faults: plan, Metrics: reg})
	if err != nil {
		t.Fatalf("supervisor should recover a single crash: %v", err)
	}
	want, got := divisorsByIndex(clean), divisorsByIndex(res)
	if len(got) != len(want) {
		t.Fatalf("chaos run found %d vulnerable, clean run %d", len(got), len(want))
	}
	for i, d := range want {
		if got[i] != d {
			t.Errorf("index %d: divisor %q, clean run had %q", i, got[i], d)
		}
	}
	if stats.Reassigned != 1 {
		t.Errorf("stats.Reassigned = %d, want 1", stats.Reassigned)
	}
	if stats.LostSubsets != 0 {
		t.Errorf("stats.LostSubsets = %d, want 0", stats.LostSubsets)
	}
	if v := reg.CounterValue("distgcd_node_reassignments_total"); v != 1 {
		t.Errorf("distgcd_node_reassignments_total = %d, want 1", v)
	}
	if v := reg.CounterValue("distgcd_node_failures_total"); v != 1 {
		t.Errorf("distgcd_node_failures_total = %d, want 1", v)
	}
}

func TestNodeCrashDuringBuildRecovered(t *testing.T) {
	moduli, _ := mixedCorpus(t, 22, 5, 3, 48)
	clean, _, err := Run(context.Background(), moduli, Options{Subsets: 3})
	if err != nil {
		t.Fatal(err)
	}
	plan := faults.NewNodePlan().Crash(0, faults.PhaseBuild).Crash(2, faults.PhaseReduce)
	res, stats, err := Run(context.Background(), moduli, Options{Subsets: 3, Faults: plan})
	if err != nil {
		t.Fatalf("two single crashes on different nodes must be recovered: %v", err)
	}
	want, got := divisorsByIndex(clean), divisorsByIndex(res)
	if len(got) != len(want) {
		t.Fatalf("chaos run found %d vulnerable, clean run %d", len(got), len(want))
	}
	for i, d := range want {
		if got[i] != d {
			t.Errorf("index %d: divisor %q, clean run had %q", i, got[i], d)
		}
	}
	if stats.Reassigned != 2 {
		t.Errorf("stats.Reassigned = %d, want 2", stats.Reassigned)
	}
}

func TestNodeCrashDegradesToPartial(t *testing.T) {
	// Index 1 shares a prime with index 2; with k=2 they sit on
	// different nodes. MaxReassign < 0 disables recovery, so killing
	// node 1 must surface a PartialError while node 0's subset still
	// reports its internal clique.
	moduli, want := mixedCorpus(t, 23, 4, 4, 48)
	reg := telemetry.New()
	plan := faults.NewNodePlan().Crash(1, faults.PhaseReduce)
	res, stats, err := Run(context.Background(), moduli,
		Options{Subsets: 2, Faults: plan, MaxReassign: -1, Metrics: reg})
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PartialError", err)
	}
	if len(pe.Failures) != 1 || pe.Failures[0].Node != 1 || pe.Failures[0].Phase != faults.PhaseReduce {
		t.Errorf("failures = %+v", pe.Failures)
	}
	if !errors.Is(err, faults.ErrNodeCrash) {
		t.Error("PartialError should wrap the node's terminal error")
	}
	if stats.LostSubsets != 1 {
		t.Errorf("stats.LostSubsets = %d, want 1", stats.LostSubsets)
	}
	// Partial results: node 0 (even indices) still reports, node 1's
	// divisors are gone. Every surviving result must be genuine.
	for _, r := range res {
		if r.Index%2 != 0 {
			t.Errorf("index %d came from the dead node", r.Index)
		}
		if !want[r.Index] {
			t.Errorf("index %d reported vulnerable but is not", r.Index)
		}
	}
	if v := reg.CounterValue("distgcd_node_reassignments_total"); v != 0 {
		t.Errorf("reassignments = %d with reassignment disabled", v)
	}
}

func TestStragglerSpeculativelyReexecuted(t *testing.T) {
	moduli, _ := mixedCorpus(t, 24, 6, 4, 48)
	clean, _, err := Run(context.Background(), moduli, Options{Subsets: 4})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.New()
	// Node 2 stalls for far longer than the straggler window in each
	// phase; the speculative duplicate (build: fresh tree, reduce:
	// shared tree) must carry the run without waiting out the stall.
	plan := faults.NewNodePlan().
		Straggle(2, faults.PhaseBuild, 30*time.Second).
		Straggle(2, faults.PhaseReduce, 30*time.Second)
	start := time.Now()
	res, _, err := Run(context.Background(), moduli, Options{
		Subsets: 4, Faults: plan, StragglerTimeout: 50 * time.Millisecond, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("run waited out the straggler: %v", elapsed)
	}
	want, got := divisorsByIndex(clean), divisorsByIndex(res)
	if len(got) != len(want) {
		t.Fatalf("speculative run found %d vulnerable, clean run %d", len(got), len(want))
	}
	for i, d := range want {
		if got[i] != d {
			t.Errorf("index %d: divisor %q, clean run had %q", i, got[i], d)
		}
	}
	if v := reg.CounterValue("distgcd_stragglers_total"); v < 2 {
		t.Errorf("distgcd_stragglers_total = %d, want >= 2", v)
	}
}

func TestChaosRunDeterministic(t *testing.T) {
	moduli, _ := mixedCorpus(t, 25, 5, 3, 48)
	run := func() string {
		plan := faults.NewNodePlan().Crash(0, faults.PhaseBuild).Crash(1, faults.PhaseReduce)
		res, _, err := Run(context.Background(), moduli, Options{Subsets: 3, Faults: plan})
		if err != nil {
			t.Fatal(err)
		}
		out := ""
		for _, r := range res {
			out += r.Divisor.String() + "@"
			out += string(rune('0'+r.Index)) + ";"
		}
		return out
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same-plan chaos runs differ:\n%s\n%s", a, b)
	}
}

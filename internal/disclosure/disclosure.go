// Package disclosure models the responsible-disclosure processes the
// paper documents: the 2012 notification of 61 vendors (37 for RSA keys)
// by the authors of the original weak-keys study, and the May 2016
// notification of the newly vulnerable vendors by the paper's authors.
// It captures contact discoverability, response latency, advisories and
// patches as event timelines, and regenerates the aggregate observations
// of Sections 2.5, 4.4 and 5.1.
package disclosure

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/factorable/weakkeys/internal/devices"
)

// ContactKind is how (or whether) a security contact could be found.
type ContactKind int

const (
	// ContactNone: no contact point was discoverable; notification fell
	// back to RFC 2142 mailboxes (security@, support@).
	ContactNone ContactKind = iota
	// ContactSecurityPage: a security contact or web form was found on
	// the company site (13 vendors in 2012).
	ContactSecurityPage
	// ContactPersonal: reached through personal connections (2 vendors).
	ContactPersonal
	// ContactCERT: contact established through CERT/CC or ICS-CERT
	// coordination.
	ContactCERT
)

func (c ContactKind) String() string {
	switch c {
	case ContactSecurityPage:
		return "security page"
	case ContactPersonal:
		return "personal connection"
	case ContactCERT:
		return "CERT coordination"
	default:
		return "none (RFC 2142 fallback)"
	}
}

// EventKind classifies timeline events.
type EventKind int

const (
	// Notified: the notification was sent.
	Notified EventKind = iota
	// AutoAck: an automated acknowledgement arrived.
	AutoAck
	// Acked: a human acknowledged receipt.
	Acked
	// Advisory: a public security advisory was published.
	Advisory
	// Patch: a fix shipped (firmware update or new product revision).
	Patch
	// Closed: the vendor closed the report without engaging (the
	// Sangfor support-form outcome).
	Closed
)

func (e EventKind) String() string {
	switch e {
	case Notified:
		return "notified"
	case AutoAck:
		return "auto-ack"
	case Acked:
		return "acknowledged"
	case Advisory:
		return "advisory"
	case Patch:
		return "patch"
	case Closed:
		return "closed"
	default:
		return fmt.Sprintf("EventKind(%d)", int(e))
	}
}

// Event is one dated step in a vendor's disclosure timeline.
type Event struct {
	Date time.Time
	Kind EventKind
	// Note carries free-form detail (CVE ids, advisory names).
	Note string
}

// Timeline is one vendor's disclosure history.
type Timeline struct {
	Vendor  string
	Contact ContactKind
	// Campaign identifies the notification wave ("2012" or "2016").
	Campaign string
	Events   []Event
}

// sorted returns events in date order.
func (t *Timeline) sorted() []Event {
	out := append([]Event(nil), t.Events...)
	sort.Slice(out, func(i, j int) bool { return out[i].Date.Before(out[j].Date) })
	return out
}

// First returns the first event of a kind, or a zero Event and false.
func (t *Timeline) First(kind EventKind) (Event, bool) {
	for _, e := range t.sorted() {
		if e.Kind == kind {
			return e, true
		}
	}
	return Event{}, false
}

// Responded reports whether any non-automated response arrived.
func (t *Timeline) Responded() bool {
	for _, e := range t.Events {
		switch e.Kind {
		case Acked, Advisory, Patch:
			return true
		}
	}
	return false
}

// TimeToAdvisory returns the delay from notification to public advisory.
func (t *Timeline) TimeToAdvisory() (time.Duration, error) {
	n, ok := t.First(Notified)
	if !ok {
		return 0, errors.New("disclosure: never notified")
	}
	a, ok := t.First(Advisory)
	if !ok {
		return 0, errors.New("disclosure: no advisory")
	}
	return a.Date.Sub(n.Date), nil
}

func d(y, m, day int) time.Time {
	return time.Date(y, time.Month(m), day, 0, 0, 0, 0, time.UTC)
}

// Campaign2012 reconstructs the 2012 RSA notification from Table 2 and
// Section 2.5: 37 vendors notified February-June 2012, contact
// discoverable for a minority, five eventual public advisories, and the
// response mix of the registry. Events not pinned by the paper (exact
// per-vendor dates) are placed on the documented campaign envelope.
func Campaign2012() []Timeline {
	notif := d(2012, 2, 15)
	var out []Timeline
	for _, v := range devices.Notified2012() {
		tl := Timeline{Vendor: v.Name, Campaign: "2012"}
		tl.Events = append(tl.Events, Event{Date: notif, Kind: Notified})
		switch v.Response {
		case devices.PublicAdvisory:
			tl.Contact = ContactSecurityPage
			tl.Events = append(tl.Events, Event{Date: notif.AddDate(0, 0, 14), Kind: Acked})
			if m, err := time.Parse("2006-01", v.AdvisoryMonth); err == nil {
				note := ""
				if v.Name == "IBM" {
					note = "CVE-2012-2187"
				}
				tl.Events = append(tl.Events,
					Event{Date: m.AddDate(0, 0, 14), Kind: Advisory, Note: note},
					Event{Date: m.AddDate(0, 1, 0), Kind: Patch})
			}
		case devices.PrivateResponse:
			tl.Contact = ContactSecurityPage
			tl.Events = append(tl.Events, Event{Date: notif.AddDate(0, 1, 0), Kind: Acked})
		case devices.AutoResponse:
			tl.Contact = ContactNone
			tl.Events = append(tl.Events, Event{Date: notif.AddDate(0, 0, 1), Kind: AutoAck})
		default:
			tl.Contact = ContactNone
		}
		out = append(out, tl)
	}
	return out
}

// Campaign2016 reconstructs the May 2016 notification of the newly
// vulnerable vendors (Section 4.4): Huawei responded and published an
// advisory with CVE-2016-6670 in August 2016; ADTRAN responded
// substantively without an advisory; D-Link and Schmid Telecom never
// answered; Sangfor's support form closed the request.
func Campaign2016() []Timeline {
	notif := d(2016, 5, 10)
	return []Timeline{
		{
			Vendor: "Huawei", Campaign: "2016", Contact: ContactSecurityPage,
			Events: []Event{
				{Date: notif, Kind: Notified},
				{Date: notif.AddDate(0, 0, 20), Kind: Acked},
				{Date: d(2016, 8, 15), Kind: Advisory, Note: "CVE-2016-6670"},
				{Date: d(2016, 8, 15), Kind: Patch, Note: "software update"},
			},
		},
		{
			Vendor: "ADTRAN", Campaign: "2016", Contact: ContactSecurityPage,
			Events: []Event{
				{Date: notif, Kind: Notified},
				{Date: notif.AddDate(0, 0, 25), Kind: Acked},
			},
		},
		{
			Vendor: "D-Link", Campaign: "2016", Contact: ContactSecurityPage,
			Events: []Event{{Date: notif, Kind: Notified}},
		},
		{
			Vendor: "Sangfor", Campaign: "2016", Contact: ContactNone,
			Events: []Event{
				{Date: notif, Kind: Notified},
				{Date: notif.AddDate(0, 0, 7), Kind: Closed, Note: "support request closed"},
			},
		},
		{
			Vendor: "Schmid Telecom", Campaign: "2016", Contact: ContactNone,
			Events: []Event{{Date: notif, Kind: Notified, Note: "information-request web form"}},
		},
	}
}

// Stats aggregates a set of timelines into the quantities Section 5.1
// discusses.
type Stats struct {
	Vendors             int
	DiscoverableContact int
	Responded           int
	Advisories          int
	Patches             int
	// MedianTimeToAdvisory is zero when no advisories exist.
	MedianTimeToAdvisory time.Duration
}

// Aggregate computes Stats over timelines.
func Aggregate(timelines []Timeline) Stats {
	var st Stats
	var delays []time.Duration
	for i := range timelines {
		tl := &timelines[i]
		st.Vendors++
		if tl.Contact != ContactNone {
			st.DiscoverableContact++
		}
		if tl.Responded() {
			st.Responded++
		}
		if _, ok := tl.First(Advisory); ok {
			st.Advisories++
			if dur, err := tl.TimeToAdvisory(); err == nil {
				delays = append(delays, dur)
			}
		}
		if _, ok := tl.First(Patch); ok {
			st.Patches++
		}
	}
	if len(delays) > 0 {
		sort.Slice(delays, func(i, j int) bool { return delays[i] < delays[j] })
		st.MedianTimeToAdvisory = delays[len(delays)/2]
	}
	return st
}

package disclosure

import (
	"testing"
	"time"
)

func TestCampaign2012Counts(t *testing.T) {
	tls := Campaign2012()
	if len(tls) != 37 {
		t.Fatalf("2012 campaign covered %d vendors, want 37", len(tls))
	}
	st := Aggregate(tls)
	if st.Advisories != 5 {
		t.Errorf("advisories = %d, want 5", st.Advisories)
	}
	// "The majority of the vendors who were contacted never responded."
	if st.Responded*2 >= st.Vendors+1 {
		t.Errorf("responded = %d of %d: majority should not respond", st.Responded, st.Vendors)
	}
	// Minority with discoverable contacts (13 + 2 of 37 in 2012 — our
	// reconstruction marks advisory+private vendors as discoverable).
	if st.DiscoverableContact >= st.Vendors/2+5 {
		t.Errorf("discoverable contacts = %d of %d, should be a minority-ish", st.DiscoverableContact, st.Vendors)
	}
	if st.Patches != 5 {
		t.Errorf("patches = %d, want 5 (advisory vendors)", st.Patches)
	}
	if st.MedianTimeToAdvisory <= 0 {
		t.Error("median time to advisory should be positive")
	}
}

func TestCampaign2012EveryVendorNotified(t *testing.T) {
	for _, tl := range Campaign2012() {
		if _, ok := tl.First(Notified); !ok {
			t.Errorf("%s never notified", tl.Vendor)
		}
		if tl.Campaign != "2012" {
			t.Errorf("%s campaign label %q", tl.Vendor, tl.Campaign)
		}
	}
}

func TestCampaign2012IBMHasCVE(t *testing.T) {
	for _, tl := range Campaign2012() {
		if tl.Vendor != "IBM" {
			continue
		}
		adv, ok := tl.First(Advisory)
		if !ok {
			t.Fatal("IBM advisory missing")
		}
		if adv.Note != "CVE-2012-2187" {
			t.Errorf("IBM advisory note %q", adv.Note)
		}
		dur, err := tl.TimeToAdvisory()
		if err != nil {
			t.Fatal(err)
		}
		// Notified February, advisory September: about seven months.
		if dur < 6*30*24*time.Hour || dur > 8*30*24*time.Hour {
			t.Errorf("IBM time-to-advisory = %v", dur)
		}
		return
	}
	t.Fatal("IBM not in campaign")
}

func TestCampaign2016(t *testing.T) {
	tls := Campaign2016()
	if len(tls) != 5 {
		t.Fatalf("2016 campaign covered %d vendors, want 5", len(tls))
	}
	st := Aggregate(tls)
	// Only two acknowledged (Huawei, ADTRAN); one advisory (Huawei).
	if st.Responded != 2 {
		t.Errorf("responded = %d, want 2", st.Responded)
	}
	if st.Advisories != 1 || st.Patches != 1 {
		t.Errorf("advisories/patches = %d/%d, want 1/1", st.Advisories, st.Patches)
	}
	for _, tl := range tls {
		if tl.Vendor != "Huawei" {
			continue
		}
		adv, _ := tl.First(Advisory)
		if adv.Note != "CVE-2016-6670" {
			t.Errorf("Huawei CVE note %q", adv.Note)
		}
	}
}

func TestTimelineQueries(t *testing.T) {
	tl := Timeline{
		Vendor: "X",
		Events: []Event{
			{Date: d(2012, 6, 1), Kind: Advisory},
			{Date: d(2012, 2, 1), Kind: Notified},
			{Date: d(2012, 3, 1), Kind: Acked},
		},
	}
	if first, _ := tl.First(Notified); !first.Date.Equal(d(2012, 2, 1)) {
		t.Error("First should sort by date")
	}
	dur, err := tl.TimeToAdvisory()
	if err != nil || dur != d(2012, 6, 1).Sub(d(2012, 2, 1)) {
		t.Errorf("TimeToAdvisory = %v, %v", dur, err)
	}
	if !tl.Responded() {
		t.Error("acked timeline should count as responded")
	}
	empty := Timeline{Vendor: "Y"}
	if empty.Responded() {
		t.Error("empty timeline responded")
	}
	if _, err := empty.TimeToAdvisory(); err == nil {
		t.Error("missing notification should error")
	}
	auto := Timeline{Events: []Event{{Date: d(2012, 2, 2), Kind: AutoAck}}}
	if auto.Responded() {
		t.Error("auto-ack alone is not a response")
	}
}

func TestStringers(t *testing.T) {
	for _, k := range []EventKind{Notified, AutoAck, Acked, Advisory, Patch, Closed, EventKind(99)} {
		if k.String() == "" {
			t.Errorf("EventKind(%d) has empty string", int(k))
		}
	}
	for _, c := range []ContactKind{ContactNone, ContactSecurityPage, ContactPersonal, ContactCERT} {
		if c.String() == "" {
			t.Errorf("ContactKind(%d) has empty string", int(c))
		}
	}
}

func TestAggregateEmpty(t *testing.T) {
	st := Aggregate(nil)
	if st.Vendors != 0 || st.MedianTimeToAdvisory != 0 {
		t.Errorf("empty aggregate: %+v", st)
	}
}

package entropy

import (
	"errors"
	"io"
)

// KernelEra models the three generations of Linux RNG behaviour the paper
// traces (Sections 2.4, 2.5, 5.1):
//
//   - EraPre2012: the boot-time entropy hole. Device events trickle in
//     but /dev/urandom serves deterministic output long before any real
//     entropy is credited, and first-boot key generation reads it anyway.
//   - EraPatched2012: the July 2012 kernel patch ("/dev/random fixups"):
//     interrupt events are mixed and credited aggressively, so the pool
//     seeds during boot — but urandom still never blocks, so a
//     sufficiently early read remains dangerous.
//   - EraGetrandom2014: getrandom(2) (July 2014) blocks until seeded;
//     key generation through it cannot observe the unseeded state.
//
// The paper hypothesizes that the post-2012 decline in newly produced
// weak keys is "likely due to newer products using updated versions of
// the Linux kernel"; this type lets the simulation state that hypothesis
// as executable behaviour.
type KernelEra int

const (
	EraPre2012 KernelEra = iota
	EraPatched2012
	EraGetrandom2014
)

func (e KernelEra) String() string {
	switch e {
	case EraPre2012:
		return "pre-2012 (entropy hole)"
	case EraPatched2012:
		return "2012 patch (aggressive crediting)"
	case EraGetrandom2014:
		return "getrandom(2) era"
	default:
		return "unknown era"
	}
}

// ErrTooEarly is returned when key generation runs before the RNG is
// usable under the era's rules.
var ErrTooEarly = errors.New("entropy: key generation before RNG is usable")

// DeviceRNG couples a pool with an era's read discipline.
type DeviceRNG struct {
	Era  KernelEra
	Pool *Pool
}

// BootDevice boots a device of the given era: the same firmware seed and
// event stream, but era-dependent crediting. Pre-2012 kernels credited
// device interrupts little or nothing on embedded platforms; the 2012
// patch credits the same events; getrandom-era firmware additionally
// reads through the blocking interface.
func BootDevice(era KernelEra, cfg BootConfig) *DeviceRNG {
	adjusted := cfg
	if era == EraPre2012 {
		// The entropy hole: events are mixed but credited nothing, so
		// the pool never reaches the seeded threshold during early boot.
		adjusted.Events = make([]BootEvent, len(cfg.Events))
		for i, ev := range cfg.Events {
			adjusted.Events[i] = BootEvent{Data: ev.Data, CreditBits: 0}
		}
		adjusted.DeviceUniqueCredit = 0
	}
	return &DeviceRNG{Era: era, Pool: Boot(adjusted)}
}

// Read draws key material under the era's discipline: urandom semantics
// for the first two eras, getrandom semantics for the third.
func (d *DeviceRNG) Read(p []byte) (int, error) {
	if d.Era == EraGetrandom2014 {
		n, err := d.Pool.GetRandom(p)
		if err != nil {
			return n, ErrTooEarly
		}
		return n, nil
	}
	return d.Pool.Read(p)
}

// Usable reports whether first-boot key generation on this device can
// obtain safe randomness right now: pre-2012 devices with no unique data
// cannot; patched kernels can once events have credited enough; the
// getrandom era refuses to proceed otherwise.
func (d *DeviceRNG) Usable() bool {
	switch d.Era {
	case EraGetrandom2014, EraPatched2012:
		return d.Pool.Seeded()
	default:
		return d.Pool.Seeded() // pre-2012 pools essentially never are at boot
	}
}

// ensure DeviceRNG satisfies io.Reader for key-generation call sites.
var _ io.Reader = (*DeviceRNG)(nil)

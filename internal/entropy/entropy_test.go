package entropy

import (
	"bytes"
	"io"
	"testing"
	"time"
)

func TestDeterministicStream(t *testing.T) {
	a := NewPool([]byte("firmware-v1"))
	b := NewPool([]byte("firmware-v1"))
	bufA, bufB := make([]byte, 64), make([]byte, 64)
	if _, err := io.ReadFull(a, bufA); err != nil {
		t.Fatal(err)
	}
	if _, err := io.ReadFull(b, bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA, bufB) {
		t.Error("identical boot states must produce identical streams — this IS the vulnerability")
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := NewPool([]byte("firmware-v1"))
	b := NewPool([]byte("firmware-v2"))
	bufA, bufB := make([]byte, 32), make([]byte, 32)
	a.Read(bufA)
	b.Read(bufB)
	if bytes.Equal(bufA, bufB) {
		t.Error("different seeds should diverge")
	}
}

func TestMixForksStream(t *testing.T) {
	a := NewPool([]byte("fw"))
	b := NewPool([]byte("fw"))
	buf := make([]byte, 32)
	a.Read(buf)
	b.Read(buf)
	a.Mix([]byte("network packet"), 8)
	bufA, bufB := make([]byte, 32), make([]byte, 32)
	a.Read(bufA)
	b.Read(bufB)
	if bytes.Equal(bufA, bufB) {
		t.Error("mix must fork the output stream")
	}
}

func TestMixIsOrderSensitive(t *testing.T) {
	a := NewPool([]byte("fw"))
	b := NewPool([]byte("fw"))
	a.Mix([]byte("x"), 0)
	a.Mix([]byte("y"), 0)
	b.Mix([]byte("y"), 0)
	b.Mix([]byte("x"), 0)
	bufA, bufB := make([]byte, 16), make([]byte, 16)
	a.Read(bufA)
	b.Read(bufB)
	if bytes.Equal(bufA, bufB) {
		t.Error("mix order should matter")
	}
}

func TestReadNeverFails(t *testing.T) {
	p := NewPool(nil)
	big := make([]byte, 10000)
	n, err := p.Read(big)
	if n != len(big) || err != nil {
		t.Errorf("urandom semantics: Read = %d, %v", n, err)
	}
}

func TestReadContinuesStream(t *testing.T) {
	// Reading 64 bytes at once equals reading 64 bytes in odd chunks.
	a := NewPool([]byte("s"))
	b := NewPool([]byte("s"))
	whole := make([]byte, 64)
	a.Read(whole)
	var parts []byte
	for _, sz := range []int{1, 7, 13, 31, 12} {
		chunk := make([]byte, sz)
		b.Read(chunk)
		parts = append(parts, chunk...)
	}
	if !bytes.Equal(whole, parts) {
		t.Error("chunked reads must match a single read")
	}
}

func TestGetRandomBlocksUntilSeeded(t *testing.T) {
	p := NewPool([]byte("fw"))
	buf := make([]byte, 16)
	if _, err := p.GetRandom(buf); err != ErrNotSeeded {
		t.Errorf("unseeded GetRandom = %v, want ErrNotSeeded", err)
	}
	p.Mix([]byte("hw rng"), SeedThreshold-1)
	if _, err := p.GetRandom(buf); err != ErrNotSeeded {
		t.Error("one bit short of threshold should still block")
	}
	p.Mix([]byte("one more"), 1)
	if !p.Seeded() {
		t.Fatal("pool should now be seeded")
	}
	if _, err := p.GetRandom(buf); err != nil {
		t.Errorf("seeded GetRandom failed: %v", err)
	}
	if p.CreditedBits() != SeedThreshold {
		t.Errorf("CreditedBits = %d", p.CreditedBits())
	}
}

func TestMixTimeGranularity(t *testing.T) {
	base := time.Date(2012, 2, 1, 0, 0, 0, 0, time.UTC)
	// Two devices mixing times within the same second at 1s granularity
	// stay identical; at 1ms granularity they diverge.
	a, b := NewPool([]byte("fw")), NewPool([]byte("fw"))
	a.MixTime(base.Add(100*time.Millisecond), time.Second)
	b.MixTime(base.Add(900*time.Millisecond), time.Second)
	bufA, bufB := make([]byte, 16), make([]byte, 16)
	a.Read(bufA)
	b.Read(bufB)
	if !bytes.Equal(bufA, bufB) {
		t.Error("same coarse timestamp should keep pools identical")
	}
	c, d := NewPool([]byte("fw")), NewPool([]byte("fw"))
	c.MixTime(base.Add(100*time.Millisecond), time.Millisecond)
	d.MixTime(base.Add(900*time.Millisecond), time.Millisecond)
	c.Read(bufA)
	d.Read(bufB)
	if bytes.Equal(bufA, bufB) {
		t.Error("fine-grained timestamps should diverge pools")
	}
}

func TestClone(t *testing.T) {
	p := NewPool([]byte("fw"))
	half := make([]byte, 20)
	p.Read(half) // leave a partial block buffered
	c := p.Clone()
	bufP, bufC := make([]byte, 40), make([]byte, 40)
	p.Read(bufP)
	c.Read(bufC)
	if !bytes.Equal(bufP, bufC) {
		t.Error("clone must continue the identical stream")
	}
	p.Mix([]byte("x"), 0)
	p.Read(bufP)
	c.Read(bufC)
	if bytes.Equal(bufP, bufC) {
		t.Error("clone must be independent after divergence")
	}
}

func TestBootOrdering(t *testing.T) {
	cfg := BootConfig{
		FirmwareSeed: []byte("model-X-fw-1.0"),
		DeviceUnique: []byte("00:11:22:33:44:55"),
		Events: []BootEvent{
			{Data: []byte("irq 17"), CreditBits: 2},
			{Data: []byte("packet"), CreditBits: 4},
		},
	}
	p1 := Boot(cfg)
	p2 := Boot(cfg)
	b1, b2 := make([]byte, 32), make([]byte, 32)
	p1.Read(b1)
	p2.Read(b2)
	if !bytes.Equal(b1, b2) {
		t.Error("identical boot configs must agree")
	}
	if p1.CreditedBits() != 6 {
		t.Errorf("credited = %d, want 6", p1.CreditedBits())
	}
	// A different MAC diverges the stream even at zero credit.
	cfg2 := cfg
	cfg2.DeviceUnique = []byte("66:77:88:99:aa:bb")
	p3 := Boot(cfg2)
	b3 := make([]byte, 32)
	p3.Read(b3)
	if bytes.Equal(b1, b3) {
		t.Error("distinct device-unique data must diverge streams")
	}
}

func TestBootNoDeviceUnique(t *testing.T) {
	// The vulnerable pattern: nothing distinguishes two devices.
	cfg := BootConfig{FirmwareSeed: []byte("fw")}
	p1, p2 := Boot(cfg), Boot(cfg)
	b1, b2 := make([]byte, 32), make([]byte, 32)
	p1.Read(b1)
	p2.Read(b2)
	if !bytes.Equal(b1, b2) {
		t.Error("devices without unique boot data must collide")
	}
	if p1.Seeded() {
		t.Error("no events -> unseeded")
	}
}

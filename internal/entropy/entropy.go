// Package entropy models the operating-system random number generator
// subsystem whose failure modes produced the weak keys studied in the
// paper (Section 2.4).
//
// The core failure: on headless, embedded and low-resource devices the OS
// RNG may not have incorporated any external entropy by the time an
// application generates a long-term key, typically on first boot. Two
// devices of the same model then start from identical RNG states. If the
// key-generation process additionally stirs in a low-entropy source (the
// current time, arriving packets) *between* generating the two RSA primes,
// different devices agree on the first prime and diverge on the second —
// producing distinct moduli that share exactly one prime factor, the
// signature batch GCD detects.
//
// Pool is a deterministic cryptographic pool (SHA-256 based, stdlib only).
// Determinism is the point: it lets the simulation reproduce the flaw
// exactly. The package also models the two fixes the paper discusses: the
// 2012 kernel patch (credit external events before unblocking) and the
// 2014 getrandom(2) system call (block until properly seeded).
package entropy

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"time"
)

// SeedThreshold is the number of mixed entropy bits the pool requires
// before it considers itself properly seeded, mirroring the kernel's
// /dev/urandom initialization threshold.
const SeedThreshold = 128

// ErrNotSeeded is returned by GetRandom when the pool has not yet reached
// SeedThreshold, modeling getrandom(2)'s blocking behaviour (introduced
// July 2014) as an error for simulation purposes.
var ErrNotSeeded = errors.New("entropy: pool not seeded (getrandom would block)")

// Pool is a deterministic entropy pool. The zero value is NOT usable; use
// NewPool. Pool is not safe for concurrent use — each simulated device
// owns its pool, as each real device owns its kernel RNG.
type Pool struct {
	state   [sha256.Size]byte
	counter uint64
	// credited is the number of entropy bits credited by Mix calls.
	credited int
	// buf holds unread bytes of the current output block.
	buf []byte
}

// NewPool returns a pool whose initial state is derived solely from seed.
// Passing the same seed reproduces the same output stream: this models a
// device model's firmware image booting with no hardware entropy, where
// "seed" is everything deterministic about the boot (kernel image, device
// model, default configuration).
func NewPool(seed []byte) *Pool {
	p := &Pool{}
	p.state = sha256.Sum256(seed)
	return p
}

// Mix stirs data into the pool and credits it with creditBits bits of
// entropy. Real kernels estimate credit from event timing; the simulation
// declares it so experiments can place the seeding instant precisely.
func (p *Pool) Mix(data []byte, creditBits int) {
	h := sha256.New()
	h.Write(p.state[:])
	h.Write(data)
	sum := h.Sum(nil)
	copy(p.state[:], sum)
	if creditBits > 0 {
		p.credited += creditBits
	}
	p.buf = nil // output stream forks at every mix
}

// MixTime stirs a timestamp truncated to the given granularity, crediting
// zero entropy: this is the "current time" stirring the paper identifies
// as the divergence source between the two primes. Coarse granularity
// (e.g. one second) means many devices mixing "the same" boot-relative
// time keep identical states, while finer jitter diverges them.
func (p *Pool) MixTime(t time.Time, granularity time.Duration) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(t.UnixNano()/int64(granularity)))
	p.Mix(b[:], 0)
}

// Seeded reports whether the pool has been credited with at least
// SeedThreshold bits.
func (p *Pool) Seeded() bool { return p.credited >= SeedThreshold }

// CreditedBits returns the total credited entropy bits.
func (p *Pool) CreditedBits() int { return p.credited }

// Read fills b from the pool's output stream and never fails: this is
// /dev/urandom semantics, which returns data whether or not the pool has
// been seeded — the "boot-time entropy hole". Output is generated in
// SHA-256 counter mode over the current state.
func (p *Pool) Read(b []byte) (int, error) {
	n := len(b)
	for len(b) > 0 {
		if len(p.buf) == 0 {
			var ctr [8]byte
			binary.BigEndian.PutUint64(ctr[:], p.counter)
			p.counter++
			h := sha256.New()
			h.Write(p.state[:])
			h.Write(ctr[:])
			p.buf = h.Sum(nil)
		}
		c := copy(b, p.buf)
		p.buf = p.buf[c:]
		b = b[c:]
	}
	return n, nil
}

// GetRandom models getrandom(2): it fails with ErrNotSeeded until the
// pool is properly seeded, then behaves like Read. Firmware built after
// the 2014 fix uses this and therefore cannot produce boot-time weak keys.
func (p *Pool) GetRandom(b []byte) (int, error) {
	if !p.Seeded() {
		return 0, ErrNotSeeded
	}
	return p.Read(b)
}

// Clone returns an independent copy of the pool, useful for tests that
// need to compare the streams of two devices with identical boot states.
func (p *Pool) Clone() *Pool {
	c := *p
	c.buf = append([]byte(nil), p.buf...)
	return &c
}

// BootEvent is an entropy-bearing event observed during a simulated boot.
type BootEvent struct {
	// Data is the event payload mixed into the pool (e.g. a packet
	// header, an interrupt timestamp).
	Data []byte
	// CreditBits is the entropy credit. Pre-2012-patch kernels credited
	// device events late or not at all on embedded platforms; the 2012
	// fix mixes and credits them aggressively.
	CreditBits int
}

// BootConfig describes how a device model initializes its RNG at boot.
type BootConfig struct {
	// FirmwareSeed is the deterministic boot state shared by every device
	// of a model running the same firmware image.
	FirmwareSeed []byte
	// DeviceUnique is per-device data mixed at boot when the hardware or
	// firmware provides any (serial numbers, MAC addresses, stored seed
	// files). Vulnerable firmware leaves this empty or mixes it only
	// after key generation.
	DeviceUnique []byte
	// DeviceUniqueCredit is the entropy credit for DeviceUnique. A MAC
	// address mixes distinctness but deserves ~0 real entropy credit;
	// a stored random seed file deserves full credit.
	DeviceUniqueCredit int
	// Events are boot-time entropy events in arrival order.
	Events []BootEvent
}

// Boot constructs a pool per the configuration: firmware seed first, then
// device-unique data, then events in order. This mirrors the kernel's
// init ordering; the key-generation entropy hole occurs when an
// application reads before (or with too few of) the Events.
func Boot(cfg BootConfig) *Pool {
	p := NewPool(cfg.FirmwareSeed)
	if len(cfg.DeviceUnique) > 0 {
		p.Mix(cfg.DeviceUnique, cfg.DeviceUniqueCredit)
	}
	for _, ev := range cfg.Events {
		p.Mix(ev.Data, ev.CreditBits)
	}
	return p
}

package entropy

import (
	"bytes"
	"testing"

	"io"
)

// bootCfg is a typical embedded boot: same firmware everywhere, a MAC
// that differs per device, a handful of interrupt events that a patched
// kernel credits and an unpatched one does not.
func bootCfg(mac string) BootConfig {
	return BootConfig{
		FirmwareSeed:       []byte("router-fw-3.1"),
		DeviceUnique:       []byte(mac),
		DeviceUniqueCredit: 0, // a MAC is distinct but not secret
		Events: []BootEvent{
			{Data: []byte("irq 12"), CreditBits: 48},
			{Data: []byte("irq 17"), CreditBits: 48},
			{Data: []byte("eth0 rx"), CreditBits: 64},
		},
	}
}

// identicalBoot strips even the MAC — the worst-case fleet of clones.
func identicalBoot() BootConfig {
	cfg := bootCfg("")
	cfg.DeviceUnique = nil
	return cfg
}

func TestPre2012ClonesCollide(t *testing.T) {
	a := BootDevice(EraPre2012, identicalBoot())
	b := BootDevice(EraPre2012, identicalBoot())
	bufA, bufB := make([]byte, 32), make([]byte, 32)
	if _, err := a.Read(bufA); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Read(bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA, bufB) {
		t.Error("pre-2012 clones must produce identical key material — the vulnerability")
	}
	if a.Usable() {
		t.Error("pre-2012 boot should not be seeded (events credited nothing)")
	}
}

func TestPatched2012SeedsFromEvents(t *testing.T) {
	d := BootDevice(EraPatched2012, identicalBoot())
	if !d.Pool.Seeded() {
		t.Fatal("the 2012 patch credits boot events; pool should be seeded")
	}
	if !d.Usable() {
		t.Error("patched device should be usable after boot events")
	}
	// Crucially, urandom still reads fine either way — the patch makes
	// the output good, not the interface safe.
	buf := make([]byte, 16)
	if _, err := d.Read(buf); err != nil {
		t.Errorf("urandom read failed: %v", err)
	}
}

func TestPatched2012StillDivergesOnlyWithEvents(t *testing.T) {
	// Two patched devices with the same firmware but their own distinct
	// event payloads diverge; with byte-identical event streams they
	// would not. In practice interrupt timing payloads differ, which is
	// what the credit models.
	cfgA, cfgB := identicalBoot(), identicalBoot()
	cfgB.Events[2] = BootEvent{Data: []byte("eth0 rx jitter-77"), CreditBits: 64}
	a := BootDevice(EraPatched2012, cfgA)
	b := BootDevice(EraPatched2012, cfgB)
	bufA, bufB := make([]byte, 32), make([]byte, 32)
	a.Read(bufA)
	b.Read(bufB)
	if bytes.Equal(bufA, bufB) {
		t.Error("distinct event payloads must diverge the streams")
	}
}

func TestGetrandomRefusesEarlyReads(t *testing.T) {
	// A getrandom-era device whose events have not yet arrived refuses
	// to produce key material instead of producing a weak key.
	cfg := identicalBoot()
	cfg.Events = nil
	d := BootDevice(EraGetrandom2014, cfg)
	buf := make([]byte, 16)
	if _, err := d.Read(buf); err != ErrTooEarly {
		t.Errorf("unseeded getrandom read = %v, want ErrTooEarly", err)
	}
	// After the events arrive, reads proceed.
	for _, ev := range identicalBoot().Events {
		d.Pool.Mix(ev.Data, ev.CreditBits)
	}
	if _, err := d.Read(buf); err != nil {
		t.Errorf("seeded getrandom read failed: %v", err)
	}
}

func TestEraStrings(t *testing.T) {
	for _, e := range []KernelEra{EraPre2012, EraPatched2012, EraGetrandom2014, KernelEra(9)} {
		if e.String() == "" {
			t.Errorf("era %d has no string", int(e))
		}
	}
}

func TestDeviceRNGIsReader(t *testing.T) {
	var r io.Reader = BootDevice(EraPre2012, identicalBoot())
	buf := make([]byte, 8)
	if _, err := io.ReadFull(r, buf); err != nil {
		t.Fatal(err)
	}
}

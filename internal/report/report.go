// Package report renders the study's tables and figures as text: aligned
// tables for Tables 1-5, two-panel ASCII time-series charts in the style
// of the paper's figures (total population above, vulnerable below), and
// CSV export for external plotting.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"github.com/factorable/weakkeys/internal/analysis"
	"github.com/factorable/weakkeys/internal/scanstore"
)

// Table writes an aligned text table.
func Table(w io.Writer, title string, headers []string, rows [][]string) error {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		parts := make([]string, len(headers))
		for i := range headers {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			parts[i] = pad(cell, widths[i])
		}
		_, err := fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := line(headers); err != nil {
		return err
	}
	rule := make([]string, len(headers))
	for i := range headers {
		rule[i] = strings.Repeat("-", widths[i])
	}
	if err := line(rule); err != nil {
		return err
	}
	for _, row := range rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// SeriesChart renders a Series as the paper's two-panel figure: the total
// population on top, the vulnerable population below, with a shared time
// axis and source-era markers.
func SeriesChart(w io.Writer, s analysis.Series, height int) error {
	if height < 2 {
		height = 4
	}
	if len(s.Dates) == 0 {
		_, err := fmt.Fprintf(w, "%s: no scans\n", s.Name)
		return err
	}
	if _, err := fmt.Fprintf(w, "%s\n", s.Name); err != nil {
		return err
	}
	if err := panel(w, "total", s.Total, height); err != nil {
		return err
	}
	if err := panel(w, "vulnerable", s.Vuln, height); err != nil {
		return err
	}
	// Time axis: first, Heartbleed-adjacent midpoint, last.
	first := s.Dates[0].Format("2006-01")
	last := s.Dates[len(s.Dates)-1].Format("2006-01")
	mid := s.Dates[len(s.Dates)/2].Format("2006-01")
	width := len(s.Dates)
	axis := pad(first, width/2) + pad(mid, width-width/2-len(last)) + last
	if _, err := fmt.Fprintf(w, "  %s\n", axis); err != nil {
		return err
	}
	// Era markers.
	eras := make([]byte, len(s.Dates))
	for i, src := range s.Sources {
		eras[i] = eraMark(src)
	}
	_, err := fmt.Fprintf(w, "  %s\n  (E=EFF P=P&Q e=Ecosystem R=Rapid7 C=Censys)\n", string(eras))
	return err
}

// eraMark maps scan sources to single-character era markers ('e'
// disambiguates Ecosystem from EFF).
func eraMark(src scanstore.Source) byte {
	switch src {
	case scanstore.SourceEFF:
		return 'E'
	case scanstore.SourcePQ:
		return 'P'
	case scanstore.SourceEcosystem:
		return 'e'
	case scanstore.SourceRapid7:
		return 'R'
	case scanstore.SourceCensys:
		return 'C'
	default:
		return '?'
	}
}

func panel(w io.Writer, label string, vals []int, height int) error {
	max := 0
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	if max == 0 {
		max = 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", len(vals)))
	}
	for i, v := range vals {
		// Scale to rows; row 0 is the top.
		h := (v*height + max - 1) / max
		for r := 0; r < h; r++ {
			grid[height-1-r][i] = '#'
		}
	}
	for r, rowBytes := range grid {
		yLabel := ""
		switch r {
		case 0:
			yLabel = fmt.Sprintf("%6d", max)
		case height - 1:
			yLabel = fmt.Sprintf("%6d", 0)
		default:
			yLabel = strings.Repeat(" ", 6)
		}
		if _, err := fmt.Fprintf(w, "%s |%s| %s\n", yLabel, string(rowBytes), labelOnce(label, r)); err != nil {
			return err
		}
	}
	return nil
}

func labelOnce(label string, row int) string {
	if row == 0 {
		return label
	}
	return ""
}

// SeriesCSV writes a Series as CSV (date, source, total, vulnerable).
func SeriesCSV(w io.Writer, s analysis.Series) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"date", "source", "total", "vulnerable"}); err != nil {
		return err
	}
	for i, d := range s.Dates {
		src := ""
		if i < len(s.Sources) {
			src = string(s.Sources[i])
		}
		rec := []string{d.Format("2006-01-02"), src,
			fmt.Sprint(s.Total[i]), fmt.Sprint(s.Vuln[i])}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Itoa is a tiny helper for building table rows.
func Itoa(v int) string { return fmt.Sprint(v) }

// Pct formats a fraction as a percentage with two decimals.
func Pct(num, den int) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2f%%", 100*float64(num)/float64(den))
}

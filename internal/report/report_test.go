package report

import (
	"strings"
	"testing"
	"time"

	"github.com/factorable/weakkeys/internal/analysis"
	"github.com/factorable/weakkeys/internal/scanstore"
)

func TestTableAlignment(t *testing.T) {
	var b strings.Builder
	err := Table(&b, "Table X", []string{"Name", "Count"}, [][]string{
		{"Juniper", "12345"},
		{"HP", "7"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Table X") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines: %d\n%s", len(lines), out)
	}
	// Separator row present.
	if !strings.Contains(lines[2], "---") {
		t.Errorf("no rule line: %q", lines[2])
	}
	// Columns align: "Count" column starts at the same offset everywhere.
	idx := strings.Index(lines[1], "Count")
	if !strings.HasPrefix(lines[3][idx:], "12345") {
		t.Errorf("misaligned: %q", lines[3])
	}
}

func TestTableShortRows(t *testing.T) {
	var b strings.Builder
	if err := Table(&b, "", []string{"A", "B", "C"}, [][]string{{"x"}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "x") {
		t.Error("short row dropped")
	}
}

func testSeries() analysis.Series {
	mk := func(y, m int) time.Time { return time.Date(y, time.Month(m), 15, 0, 0, 0, 0, time.UTC) }
	return analysis.Series{
		Name:    "Juniper/",
		Dates:   []time.Time{mk(2012, 6), mk(2013, 6), mk(2014, 3), mk(2014, 5)},
		Total:   []int{100, 150, 200, 120},
		Vuln:    []int{10, 20, 30, 15},
		Sources: []scanstore.Source{scanstore.SourceEcosystem, scanstore.SourceEcosystem, scanstore.SourceRapid7, scanstore.SourceRapid7},
	}
}

func TestSeriesChart(t *testing.T) {
	var b strings.Builder
	if err := SeriesChart(&b, testSeries(), 4); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Juniper/") {
		t.Error("missing name")
	}
	if !strings.Contains(out, "total") || !strings.Contains(out, "vulnerable") {
		t.Error("missing panel labels")
	}
	if !strings.Contains(out, "200") || !strings.Contains(out, "30") {
		t.Error("missing y-axis maxima")
	}
	if !strings.Contains(out, "2012-06") || !strings.Contains(out, "2014-05") {
		t.Error("missing time axis")
	}
	if !strings.Contains(out, "eeRR") {
		t.Errorf("missing era markers:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Error("chart has no marks")
	}
}

func TestSeriesChartEmpty(t *testing.T) {
	var b strings.Builder
	if err := SeriesChart(&b, analysis.Series{Name: "empty"}, 4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "no scans") {
		t.Error("empty series should say so")
	}
}

func TestSeriesCSV(t *testing.T) {
	var b strings.Builder
	if err := SeriesCSV(&b, testSeries()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("csv lines: %d", len(lines))
	}
	if lines[0] != "date,source,total,vulnerable" {
		t.Errorf("header: %q", lines[0])
	}
	if lines[1] != "2012-06-15,Ecosystem,100,10" {
		t.Errorf("row: %q", lines[1])
	}
}

func TestPct(t *testing.T) {
	if got := Pct(313330, 81228736); got != "0.39%" {
		t.Errorf("Pct = %q", got)
	}
	if Pct(1, 0) != "n/a" {
		t.Error("division by zero should be n/a")
	}
	if Itoa(42) != "42" {
		t.Error("Itoa")
	}
}

func TestEraMarks(t *testing.T) {
	cases := map[scanstore.Source]byte{
		scanstore.SourceEFF:       'E',
		scanstore.SourcePQ:        'P',
		scanstore.SourceEcosystem: 'e',
		scanstore.SourceRapid7:    'R',
		scanstore.SourceCensys:    'C',
		scanstore.Source("x"):     '?',
	}
	for src, want := range cases {
		if got := eraMark(src); got != want {
			t.Errorf("eraMark(%s) = %c, want %c", src, got, want)
		}
	}
}

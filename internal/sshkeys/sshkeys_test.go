package sshkeys

import (
	"math/big"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/factorable/weakkeys/internal/weakrsa"
)

func testKey(t *testing.T, seed int64) *PublicKey {
	t.Helper()
	k, err := weakrsa.GenerateKey(rand.New(rand.NewSource(seed)), weakrsa.Options{Bits: 128})
	if err != nil {
		t.Fatal(err)
	}
	return &PublicKey{E: k.E, N: k.N}
}

func TestBlobRoundTrip(t *testing.T) {
	want := testKey(t, 1)
	got, err := Parse(want.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.E != want.E || got.N.Cmp(want.N) != 0 {
		t.Error("round trip mismatch")
	}
}

func TestAuthorizedKeyRoundTrip(t *testing.T) {
	want := testKey(t, 2)
	line := want.MarshalAuthorizedKey("root@firewall-a")
	if !strings.HasPrefix(line, "ssh-rsa ") || !strings.HasSuffix(line, "root@firewall-a\n") {
		t.Errorf("line shape: %q", line)
	}
	got, comment, err := ParseAuthorizedKey(line)
	if err != nil {
		t.Fatal(err)
	}
	if got.N.Cmp(want.N) != 0 || got.E != want.E {
		t.Error("key mismatch")
	}
	if comment != "root@firewall-a" {
		t.Errorf("comment %q", comment)
	}
	// Without a comment.
	got2, comment2, err := ParseAuthorizedKey(want.MarshalAuthorizedKey(""))
	if err != nil || comment2 != "" || got2.N.Cmp(want.N) != 0 {
		t.Errorf("no-comment parse: %v %q", err, comment2)
	}
}

func TestMPIntLeadingZero(t *testing.T) {
	// A modulus with the top bit set must get a sign byte in the mpint
	// encoding (interoperability with real SSH implementations).
	n, _ := new(big.Int).SetString("ff00000000000000000000000000000001", 16)
	k := &PublicKey{E: 65537, N: n}
	blob := k.Marshal()
	got, err := Parse(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.N.Cmp(n) != 0 {
		t.Error("high-bit modulus round trip failed")
	}
	// The mpint for N inside the blob must carry the 0x00 prefix: find
	// the length of the final string and check its first byte.
	// Layout: 4+7 (type) + 4+3 (e=65537) + 4 + mpint(n).
	nField := blob[4+7+4+3+4:]
	if nField[0] != 0x00 {
		t.Errorf("missing sign byte: % x", nField[:2])
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0, 0, 0},
		[]byte("not a blob"),
		appendString(nil, []byte("ssh-dss")),
		(&PublicKey{E: 3, N: big.NewInt(15)}).Marshal()[:10], // truncated
		append((&PublicKey{E: 3, N: big.NewInt(15)}).Marshal(), 0xFF),
	}
	for i, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, _, err := ParseAuthorizedKey("ssh-rsa"); err == nil {
		t.Error("short line accepted")
	}
	if _, _, err := ParseAuthorizedKey("ssh-ed25519 AAAA x"); err == nil {
		t.Error("wrong type accepted")
	}
	if _, _, err := ParseAuthorizedKey("ssh-rsa !!! x"); err == nil {
		t.Error("bad base64 accepted")
	}
}

func TestParseRejectsBadNumbers(t *testing.T) {
	// Zero modulus.
	blob := appendString(nil, []byte(KeyType))
	blob = appendMPInt(blob, big.NewInt(65537))
	blob = appendMPInt(blob, big.NewInt(0))
	if _, err := Parse(blob); err == nil {
		t.Error("zero modulus accepted")
	}
	// Oversized exponent.
	blob2 := appendString(nil, []byte(KeyType))
	blob2 = appendMPInt(blob2, new(big.Int).Lsh(big.NewInt(1), 40))
	blob2 = appendMPInt(blob2, big.NewInt(15))
	if _, err := Parse(blob2); err == nil {
		t.Error("huge exponent accepted")
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(raw uint64, eRaw uint16) bool {
		n := new(big.Int).SetUint64(raw | 1)
		if n.Sign() == 0 {
			return true
		}
		e := int(eRaw)%65536 + 3
		k := &PublicKey{E: e, N: n}
		got, _, err := ParseAuthorizedKey(k.MarshalAuthorizedKey("c"))
		if err != nil {
			return false
		}
		return got.E == e && got.N.Cmp(n) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func FuzzParseAuthorizedKey(f *testing.F) {
	k := &PublicKey{E: 65537, N: big.NewInt(0xDEADBEEF12345)}
	f.Add(k.MarshalAuthorizedKey("seed"))
	f.Add("ssh-rsa AAAA")
	f.Add("")
	f.Fuzz(func(t *testing.T, line string) {
		key, _, err := ParseAuthorizedKey(line)
		if err != nil {
			return
		}
		// Anything accepted must round-trip.
		got, _, err := ParseAuthorizedKey(key.MarshalAuthorizedKey(""))
		if err != nil || got.N.Cmp(key.N) != 0 {
			t.Fatalf("accepted key does not round trip: %v", err)
		}
	})
}

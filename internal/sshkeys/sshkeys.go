// Package sshkeys implements the ssh-rsa public-key wire format (RFC 4253
// section 6.6: string "ssh-rsa", mpint e, mpint n) and the one-line
// authorized_keys/known_hosts representation. The paper's batch GCD
// corpus included 6.3M RSA SSH host keys (Table 4); this package is the
// ingestion path for such keys, used by cmd/keygen -format ssh and
// cmd/batchgcd.
package sshkeys

import (
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
	"strings"
)

// KeyType is the algorithm name carried in the blob.
const KeyType = "ssh-rsa"

// maxBlob bounds a key blob to keep parsers safe on hostile input.
const maxBlob = 1 << 16

// PublicKey is an RSA public key in SSH terms.
type PublicKey struct {
	E int
	N *big.Int
}

// Marshal encodes the key as an ssh-rsa wire blob.
func (k *PublicKey) Marshal() []byte {
	e := big.NewInt(int64(k.E))
	var out []byte
	out = appendString(out, []byte(KeyType))
	out = appendMPInt(out, e)
	out = appendMPInt(out, k.N)
	return out
}

// MarshalAuthorizedKey renders the one-line format: "ssh-rsa <base64>
// <comment>\n".
func (k *PublicKey) MarshalAuthorizedKey(comment string) string {
	line := KeyType + " " + base64.StdEncoding.EncodeToString(k.Marshal())
	if comment != "" {
		line += " " + comment
	}
	return line + "\n"
}

// Parse decodes an ssh-rsa wire blob.
func Parse(blob []byte) (*PublicKey, error) {
	if len(blob) > maxBlob {
		return nil, errors.New("sshkeys: blob too large")
	}
	algo, rest, err := readString(blob)
	if err != nil {
		return nil, err
	}
	if string(algo) != KeyType {
		return nil, fmt.Errorf("sshkeys: unsupported key type %q", algo)
	}
	eBytes, rest, err := readString(rest)
	if err != nil {
		return nil, err
	}
	nBytes, rest, err := readString(rest)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, errors.New("sshkeys: trailing data after key")
	}
	e := new(big.Int).SetBytes(eBytes)
	if !e.IsInt64() || e.Int64() <= 0 || e.Int64() > 1<<31 {
		return nil, errors.New("sshkeys: exponent out of range")
	}
	n := new(big.Int).SetBytes(nBytes)
	if n.Sign() <= 0 {
		return nil, errors.New("sshkeys: non-positive modulus")
	}
	return &PublicKey{E: int(e.Int64()), N: n}, nil
}

// ParseAuthorizedKey parses one "ssh-rsa <base64> [comment]" line,
// returning the key and the comment.
func ParseAuthorizedKey(line string) (*PublicKey, string, error) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) < 2 {
		return nil, "", errors.New("sshkeys: malformed authorized_keys line")
	}
	if fields[0] != KeyType {
		return nil, "", fmt.Errorf("sshkeys: unsupported key type %q", fields[0])
	}
	blob, err := base64.StdEncoding.DecodeString(fields[1])
	if err != nil {
		return nil, "", fmt.Errorf("sshkeys: bad base64: %w", err)
	}
	key, err := Parse(blob)
	if err != nil {
		return nil, "", err
	}
	comment := ""
	if len(fields) > 2 {
		comment = strings.Join(fields[2:], " ")
	}
	return key, comment, nil
}

// appendString appends an RFC 4251 string (uint32 length + bytes).
func appendString(out, s []byte) []byte {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(s)))
	return append(append(out, hdr[:]...), s...)
}

// appendMPInt appends an RFC 4251 mpint: minimal big-endian two's
// complement; a leading zero byte is inserted when the high bit is set so
// positive values stay positive.
func appendMPInt(out []byte, v *big.Int) []byte {
	b := v.Bytes()
	if len(b) > 0 && b[0]&0x80 != 0 {
		b = append([]byte{0}, b...)
	}
	return appendString(out, b)
}

// readString consumes one RFC 4251 string.
func readString(in []byte) (s, rest []byte, err error) {
	if len(in) < 4 {
		return nil, nil, errors.New("sshkeys: truncated length")
	}
	n := binary.BigEndian.Uint32(in[:4])
	if n > maxBlob || int(n) > len(in)-4 {
		return nil, nil, errors.New("sshkeys: truncated string")
	}
	return in[4 : 4+n], in[4+n:], nil
}

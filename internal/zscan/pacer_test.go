package zscan

import (
	"context"
	"testing"
	"time"
)

func TestPacerNilIsUnpaced(t *testing.T) {
	var p *pacer
	start := time.Now()
	for i := 0; i < 1000; i++ {
		if !p.wait(context.Background()) {
			t.Fatal("nil pacer refused a token")
		}
	}
	if time.Since(start) > 100*time.Millisecond {
		t.Error("nil pacer slept")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if p.wait(ctx) {
		t.Error("nil pacer must observe cancellation")
	}
}

func TestPacerEnforcesRate(t *testing.T) {
	p := newPacer(1000, 1)
	start := time.Now()
	for i := 0; i < 300; i++ {
		if !p.wait(context.Background()) {
			t.Fatal("pacer refused a token")
		}
	}
	elapsed := time.Since(start)
	// 300 tokens at 1000/s is ~300ms; allow wide slack downward for the
	// initial bucket but catch an unpaced sprint.
	if elapsed < 200*time.Millisecond {
		t.Errorf("300 tokens at 1000/s took %v, want >= 200ms", elapsed)
	}
}

func TestPacerBurstAllowsCatchUp(t *testing.T) {
	// A bucket with capacity should hand out accumulated allowance
	// without sleeping once per token.
	p := newPacer(100000, 1000)
	time.Sleep(20 * time.Millisecond) // accrue ~2000 tokens, capped at 1000
	start := time.Now()
	for i := 0; i < 1000; i++ {
		if !p.wait(context.Background()) {
			t.Fatal("pacer refused a token")
		}
	}
	if elapsed := time.Since(start); elapsed > 200*time.Millisecond {
		t.Errorf("draining the burst allowance took %v", elapsed)
	}
}

func TestPacerCancel(t *testing.T) {
	p := newPacer(1, 1)
	if !p.wait(context.Background()) {
		t.Fatal("first token must be available")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	if p.wait(ctx) {
		t.Fatal("canceled wait must report false")
	}
	if time.Since(start) > 500*time.Millisecond {
		t.Error("cancel did not interrupt the wait promptly")
	}
}

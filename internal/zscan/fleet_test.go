package zscan

import (
	"context"
	"testing"

	"github.com/factorable/weakkeys/internal/certs"
	"github.com/factorable/weakkeys/internal/devices"
	"github.com/factorable/weakkeys/internal/faults"
	"github.com/factorable/weakkeys/internal/scanner"
)

func testFleet(t *testing.T, opts FleetOptions) *SimFleet {
	t.Helper()
	f, err := NewSimFleet(opts)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFleetDeterministic(t *testing.T) {
	opts := FleetOptions{Space: 4096, Devices: 24, Vulnerable: 0.5, Seed: 11}
	a := testFleet(t, opts)
	b := testFleet(t, opts)
	ai, bi := a.Indexes(), b.Indexes()
	if len(ai) != 24 || len(ai) != len(bi) {
		t.Fatalf("device counts %d/%d, want 24", len(ai), len(bi))
	}
	for i := range ai {
		if ai[i] != bi[i] {
			t.Fatalf("placement differs at %d: %d vs %d", i, ai[i], bi[i])
		}
	}
	aw, bw := a.WeakExemplars(), b.WeakExemplars()
	if len(aw) == 0 {
		t.Fatal("no weak exemplars in a half-vulnerable fleet")
	}
	for i := range aw {
		if aw[i] != bw[i] {
			t.Fatalf("weak exemplars differ at %d", i)
		}
	}
}

func TestFleetProbeHitAndMiss(t *testing.T) {
	f := testFleet(t, FleetOptions{Space: 1 << 16, Devices: 8, Seed: 3})
	idxs := f.Indexes()
	ctx := context.Background()

	res := f.Probe(ctx, idxs[0])
	if res.Err != nil {
		t.Fatalf("probe of live device: %v", res.Err)
	}
	cert, err := certs.Parse(res.DER)
	if err != nil {
		t.Fatalf("device DER does not parse: %v", err)
	}
	if cert.N == nil || cert.N.Sign() <= 0 {
		t.Fatal("parsed certificate has no modulus")
	}
	if len(res.Suites) == 0 {
		t.Fatal("device advertised no suites")
	}

	// Pick an empty index: one past a device that has no neighbor.
	empty := uint64(0)
	taken := make(map[uint64]bool, len(idxs))
	for _, i := range idxs {
		taken[i] = true
	}
	for taken[empty] {
		empty++
	}
	miss := f.Probe(ctx, empty)
	if miss.Err != ErrNoDevice {
		t.Fatalf("probe of empty index: err = %v, want ErrNoDevice", miss.Err)
	}
	if cause := scanner.Cause(miss.Err); cause != scanner.CauseTimeout {
		t.Fatalf("miss classifies as %q, want timeout", cause)
	}
}

func TestFleetWeakDevicesAreRSAOnly(t *testing.T) {
	f := testFleet(t, FleetOptions{Space: 4096, Devices: 16, Vulnerable: 0.5, Seed: 5})
	ctx := context.Background()
	rsaOnly := 0
	for _, idx := range f.Indexes() {
		res := f.Probe(ctx, idx)
		if res.Err != nil {
			t.Fatalf("probe %d: %v", idx, res.Err)
		}
		if devices.RSAOnly(res.Suites) {
			rsaOnly++
		}
	}
	if rsaOnly != 8 {
		t.Fatalf("RSA-only devices = %d, want 8 (the vulnerable half)", rsaOnly)
	}
}

func TestFleetFaultEveryNRecovers(t *testing.T) {
	f := testFleet(t, FleetOptions{
		Space: 1024, Devices: 6, Seed: 9,
		FaultEvery: 2, FaultAction: faults.Reset,
	})
	ctx := context.Background()
	for _, idx := range f.Indexes() {
		first := f.Probe(ctx, idx)
		if first.Err == nil {
			t.Fatalf("device %d: first probe must fault under EveryN(2)", idx)
		}
		if !scanner.Transient(first.Err) {
			t.Fatalf("device %d: injected reset classified permanent: %v", idx, first.Err)
		}
		second := f.Probe(ctx, idx)
		if second.Err != nil {
			t.Fatalf("device %d: second probe must recover, got %v", idx, second.Err)
		}
	}
}

func TestFaultClassification(t *testing.T) {
	cases := []struct {
		err       error
		cause     string
		transient bool
	}{
		{errRefused, scanner.CauseRefused, true},
		{errReset, scanner.CauseReset, true},
		{errStall, scanner.CauseTimeout, true},
		{errTruncate, scanner.CauseReset, true},
		{errGarble, scanner.CausePermanent, false},
		{ErrNoDevice, scanner.CauseTimeout, true},
	}
	for _, tc := range cases {
		if got := scanner.Cause(tc.err); got != tc.cause {
			t.Errorf("Cause(%v) = %q, want %q", tc.err, got, tc.cause)
		}
		if got := scanner.Transient(tc.err); got != tc.transient {
			t.Errorf("Transient(%v) = %v, want %v", tc.err, got, tc.transient)
		}
	}
}

func TestWeakExemplarsComeFromFullCohorts(t *testing.T) {
	f := testFleet(t, FleetOptions{Space: 8192, Devices: 32, Vulnerable: 0.5, Seed: 21})
	ex := f.WeakExemplars()
	if len(ex) < 2 {
		t.Fatalf("weak exemplars = %d, want >= 2 (cohorts of 2-6 over 16 weak devices)", len(ex))
	}
	seen := make(map[string]bool)
	for _, m := range ex {
		if seen[m] {
			continue
		}
		seen[m] = true
	}
	if len(seen) < 2 {
		t.Fatalf("distinct weak exemplars = %d, want >= 2", len(seen))
	}
}

func TestFleetValidation(t *testing.T) {
	if _, err := NewSimFleet(FleetOptions{Space: 0}); err == nil {
		t.Error("zero space must be rejected")
	}
	if _, err := NewSimFleet(FleetOptions{Space: 4, Devices: 8}); err == nil {
		t.Error("more devices than addresses must be rejected")
	}
	if _, err := NewSimFleet(FleetOptions{Space: 100, Vulnerable: 1.5}); err == nil {
		t.Error("fraction > 1 must be rejected")
	}
}

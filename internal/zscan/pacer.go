package zscan

import (
	"context"
	"time"
)

// pacer is the sender's token bucket. The naive per-probe ticker the
// old scanner used cannot pace past ~1k probes/sec: time.Sleep and
// ticker wakeups have ~1ms granularity, so any scheme that sleeps
// between individual probes is capped at one probe per wakeup. The
// bucket instead accrues fractional tokens continuously and lets the
// sender burst through the accumulated allowance after each sleep —
// the standard high-rate pacing shape. A nil pacer is unpaced.
type pacer struct {
	rate   float64 // tokens per second
	cap    float64 // bucket capacity
	tokens float64
	last   time.Time
}

// minSleep batches sleeps to at least scheduler granularity; shorter
// requests just burn CPU without improving pacing accuracy.
const minSleep = time.Millisecond

// newPacer returns a bucket issuing rate tokens/sec with the given
// burst capacity (0 picks rate/100, i.e. 10ms of allowance, floored at
// 1). rate <= 0 returns nil: unpaced.
func newPacer(rate float64, burst int) *pacer {
	if rate <= 0 {
		return nil
	}
	cap := float64(burst)
	if b := rate / 100; cap < b {
		cap = b
	}
	if cap < 1 {
		cap = 1
	}
	return &pacer{rate: rate, cap: cap, tokens: 1, last: time.Now()}
}

// wait blocks until one token is available (or the context ends) and
// consumes it. It reports false only when the context was canceled.
func (p *pacer) wait(ctx context.Context) bool {
	if p == nil {
		return ctx.Err() == nil
	}
	for {
		now := time.Now()
		p.tokens += now.Sub(p.last).Seconds() * p.rate
		p.last = now
		if p.tokens > p.cap {
			p.tokens = p.cap
		}
		if p.tokens >= 1 {
			p.tokens--
			return true
		}
		sleep := time.Duration((1 - p.tokens) / p.rate * float64(time.Second))
		if sleep < minSleep {
			sleep = minSleep
		}
		t := time.NewTimer(sleep)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return false
		}
	}
}

package zscan

import (
	"context"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"github.com/factorable/weakkeys/internal/faults"
	"github.com/factorable/weakkeys/internal/scanner"
	"github.com/factorable/weakkeys/internal/scanstore"
	"github.com/factorable/weakkeys/internal/telemetry"
)

func TestEngineFullSweep(t *testing.T) {
	fleet := testFleet(t, FleetOptions{Space: 4096, Devices: 32, Seed: 1})
	store := scanstore.New()
	reg := telemetry.New()
	eng, err := New(Options{
		Space: 4096, Seed: 1, Prober: fleet, Store: store, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Probes != 4096 {
		t.Errorf("probes = %d, want 4096", rep.Probes)
	}
	if rep.Hits != 32 {
		t.Errorf("hits = %d, want 32", rep.Hits)
	}
	if rep.Misses != 4096-32 {
		t.Errorf("misses = %d, want %d", rep.Misses, 4096-32)
	}
	if rep.Stored != 32 {
		t.Errorf("stored = %d, want 32", rep.Stored)
	}
	if rep.NovelModuli+rep.DuplicateModuli != 32 {
		t.Errorf("novel %d + dup %d != 32", rep.NovelModuli, rep.DuplicateModuli)
	}
	if got := len(store.Records()); got != 32 {
		t.Errorf("store records = %d, want 32", got)
	}
	if v := reg.CounterValue("zscan_probes_total"); v != 4096 {
		t.Errorf("zscan_probes_total = %d, want 4096", v)
	}
	if v := reg.CounterValue("zscan_hits_total"); v != 32 {
		t.Errorf("zscan_hits_total = %d, want 32", v)
	}
	if v := reg.GaugeValue("zscan_inflight"); v != 0 {
		t.Errorf("zscan_inflight = %g after run, want 0", v)
	}
}

// TestEngineResweepRecoversFaults is the ZMap loss model end to end:
// cycle 1 faults every device (EveryN(2) hits connection 1), cycle 2
// recovers all of them. No in-place retries anywhere.
func TestEngineResweepRecoversFaults(t *testing.T) {
	fleet := testFleet(t, FleetOptions{
		Space: 2048, Devices: 16, Seed: 2,
		FaultEvery: 2, FaultAction: faults.Reset,
	})
	store := scanstore.New()
	eng, err := New(Options{
		Space: 2048, Seed: 2, Cycles: 2, Prober: fleet, Store: store,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cycles != 2 {
		t.Fatalf("cycles = %d, want 2", rep.Cycles)
	}
	if rep.Hits != 16 {
		t.Errorf("hits = %d, want 16 (every device recovered on cycle 2)", rep.Hits)
	}
	if rep.Errors[scanner.CauseReset] != 16 {
		t.Errorf("reset errors = %d, want 16 (every device faulted on cycle 1)",
			rep.Errors[scanner.CauseReset])
	}
	// Cycle 2's observations carry cycle 2's scan date.
	dates := store.ScanDates(scanstore.HTTPS)
	if len(dates) != 1 {
		t.Fatalf("scan dates = %v, want exactly the cycle-2 date", dates)
	}
	want := time.Date(2016, 4, 2, 0, 0, 0, 0, time.UTC)
	if !dates[0].Equal(want) {
		t.Errorf("scan date = %v, want %v", dates[0], want)
	}
}

// TestEngineShardsPartitionFleet runs the 2-shard coordination-free
// split: two engines with the same (space, seed) and disjoint shards
// must harvest every device exactly once between them.
func TestEngineShardsPartitionFleet(t *testing.T) {
	const space, devs = 4096, 24
	fleet := testFleet(t, FleetOptions{Space: space, Devices: devs, Seed: 4})
	var ips []string
	totalProbes := uint64(0)
	for shard := 0; shard < 2; shard++ {
		store := scanstore.New()
		eng, err := New(Options{
			Space: space, Seed: 4, Shard: shard, Shards: 2,
			Prober: fleet, Store: store,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := eng.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		totalProbes += rep.Probes
		for _, r := range store.Records() {
			ips = append(ips, r.IP)
		}
	}
	if totalProbes != space {
		t.Errorf("total probes across shards = %d, want %d", totalProbes, space)
	}
	if len(ips) != devs {
		t.Fatalf("total harvested = %d, want %d (omission or overlap)", len(ips), devs)
	}
	sort.Strings(ips)
	for i := 1; i < len(ips); i++ {
		if ips[i] == ips[i-1] {
			t.Fatalf("device %s harvested by both shards", ips[i])
		}
	}
}

func TestEngineCheckpointChain(t *testing.T) {
	dir := t.TempDir()
	fleet := testFleet(t, FleetOptions{Space: 2048, Devices: 18, Seed: 6})
	store := scanstore.New()
	eng, err := New(Options{
		Space: 2048, Seed: 6, Prober: fleet, Store: store,
		CheckpointDir: dir, CheckpointEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checkpoints < 4 {
		t.Fatalf("checkpoints = %d, want >= 4 for 18 stored at every-4", rep.Checkpoints)
	}
	files, err := filepath.Glob(filepath.Join(dir, "zscan-*.delta"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(files)
	if len(files) != rep.Checkpoints {
		t.Fatalf("delta files = %d, report says %d", len(files), rep.Checkpoints)
	}
	// Replaying the chain into a fresh store reconstructs the harvest.
	replay := scanstore.New()
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		err = replay.LoadSince(f)
		f.Close()
		if err != nil {
			t.Fatalf("replay %s: %v", path, err)
		}
	}
	if got, want := len(replay.Records()), rep.Stored; got != want {
		t.Fatalf("replayed records = %d, want %d", got, want)
	}
}

// TestEngineCheckpointRestartContinuesChain restarts a shard into a
// non-empty checkpoint dir: the new engine must continue the delta
// numbering past the existing segments instead of silently overwriting
// them, the first run's files must survive byte-for-byte, and the full
// chain must still replay in order.
func TestEngineCheckpointRestartContinuesChain(t *testing.T) {
	dir := t.TempDir()
	fleet := testFleet(t, FleetOptions{Space: 2048, Devices: 18, Seed: 6})
	run := func(date time.Time) Report {
		store := scanstore.New()
		if _, err := LoadCheckpoints(dir, store); err != nil {
			t.Fatal(err)
		}
		eng, err := New(Options{
			Space: 2048, Seed: 6, Prober: fleet, Store: store,
			CheckpointDir: dir, CheckpointEvery: 4, Date: date,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := eng.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	rep1 := run(time.Date(2016, 4, 1, 0, 0, 0, 0, time.UTC))
	files1, err := filepath.Glob(filepath.Join(dir, "zscan-*.delta"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(files1)
	if len(files1) != rep1.Checkpoints || rep1.Checkpoints < 4 {
		t.Fatalf("first run: %d files for %d checkpoints", len(files1), rep1.Checkpoints)
	}
	before := make(map[string][]byte, len(files1))
	for _, path := range files1 {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		before[path] = data
	}

	// Restart: fresh engine and store, same directory.
	rep2 := run(time.Date(2016, 4, 2, 0, 0, 0, 0, time.UTC))
	files2, err := filepath.Glob(filepath.Join(dir, "zscan-*.delta"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(files2)
	if got, want := len(files2), len(files1)+rep2.Checkpoints; got != want {
		t.Fatalf("after restart: %d delta files, want %d (first run's %d + second run's %d)",
			got, want, len(files1), rep2.Checkpoints)
	}
	for _, path := range files1 {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != string(before[path]) {
			t.Errorf("restart rewrote existing segment %s", filepath.Base(path))
		}
	}

	// The combined chain still replays front to back.
	replay := scanstore.New()
	total := 0
	for _, path := range files2 {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		err = replay.LoadSince(f)
		f.Close()
		if err != nil {
			t.Fatalf("replay %s: %v", path, err)
		}
		total++
	}
	if total != len(files2) {
		t.Fatalf("replayed %d of %d segments", total, len(files2))
	}
	if got, want := len(replay.Records()), rep1.Stored+rep2.Stored; got != want {
		t.Fatalf("replayed records = %d, want %d (both runs)", got, want)
	}
}

func TestEnginePacing(t *testing.T) {
	fleet := testFleet(t, FleetOptions{Space: 400, Devices: 1, Seed: 7})
	store := scanstore.New()
	eng, err := New(Options{
		Space: 400, Seed: 7, Rate: 1000, Burst: 1, Prober: fleet, Store: store,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rep, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if rep.Probes != 400 {
		t.Fatalf("probes = %d, want 400", rep.Probes)
	}
	// 400 probes at 1000/s should take ~400ms; accept anything over
	// 250ms so a loaded CI box can't flake the lower bound.
	if elapsed < 250*time.Millisecond {
		t.Errorf("sweep finished in %v: pacing not applied", elapsed)
	}
}

func TestEngineCancel(t *testing.T) {
	fleet := testFleet(t, FleetOptions{Space: 1 << 20, Devices: 4, Seed: 8})
	store := scanstore.New()
	eng, err := New(Options{
		Space: 1 << 20, Seed: 8, Rate: 2000, Prober: fleet, Store: store,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	rep, err := eng.Run(ctx)
	if err == nil {
		t.Fatal("canceled run must report the context error")
	}
	if rep.Probes >= 1<<20 {
		t.Fatalf("probes = %d: cancel did not stop the sweep", rep.Probes)
	}
}

func TestEngineValidation(t *testing.T) {
	fleet := testFleet(t, FleetOptions{Space: 64, Devices: 2, Seed: 1})
	store := scanstore.New()
	bad := []Options{
		{Space: 64, Store: store},                                     // no prober
		{Space: 64, Prober: fleet},                                    // no store
		{Space: 64, Prober: fleet, Store: store, Shard: 2, Shards: 2}, // shard out of range
		{Space: 64, Prober: fleet, Store: store, Rate: -1},            // negative rate
		{Space: 0, Prober: fleet, Store: store},                       // empty space
		{Space: maxSpace + 1, Prober: fleet, Store: store, Shard: 0},  // oversized space
	}
	for i, o := range bad {
		if _, err := New(o); err == nil {
			t.Errorf("options %d must be rejected", i)
		}
	}
}

package zscan

import (
	"context"
	"fmt"
	"io"
	"math/big"
	"math/rand"
	"net"
	"sort"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/factorable/weakkeys/internal/certs"
	"github.com/factorable/weakkeys/internal/devices"
	"github.com/factorable/weakkeys/internal/faults"
	"github.com/factorable/weakkeys/internal/population"
	"github.com/factorable/weakkeys/internal/weakrsa"
)

// Prober answers one stateless probe against an address index. The
// engine never retries a probe in place — losses are re-covered by the
// next full-cycle sweep, the ZMap loss model — so a Prober only ever
// reports what one attempt saw.
type Prober interface {
	Probe(ctx context.Context, index uint64) ProbeResult
}

// ProbeResult is the outcome of one probe. Exactly one of Err or a
// certificate payload is meaningful. Simulated probes return the raw
// DER and leave Cert nil — parsing is the harvest loop's job, keeping
// the send path allocation-light; network probes that already parsed
// the certificate may fill Cert directly.
type ProbeResult struct {
	Index  uint64
	DER    []byte
	Cert   *certs.Certificate
	Suites []string
	Err    error
}

// ErrNoDevice reports a probe into empty address space — by far the
// common case of an internet-scale sweep. It is a shared sentinel (no
// allocation on the miss path) and implements net.Error with
// Timeout() == true, so generic classification treats an empty address
// exactly like an unanswered SYN.
var ErrNoDevice error = &simNetError{msg: "zscan: no device at address", timeout: true}

type simNetError struct {
	msg     string
	timeout bool
}

func (e *simNetError) Error() string   { return e.msg }
func (e *simNetError) Timeout() bool   { return e.timeout }
func (e *simNetError) Temporary() bool { return e.timeout }

// Injected-fault outcomes, shaped to classify under scanner.Cause the
// same way the real devices.Server faults do over a socket.
var (
	errRefused        = fmt.Errorf("zscan: sim connect: %w", syscall.ECONNREFUSED)
	errReset          = fmt.Errorf("zscan: sim handshake: %w", syscall.ECONNRESET)
	errStall    error = &simNetError{msg: "zscan: sim handshake: i/o timeout", timeout: true}
	errTruncate       = fmt.Errorf("zscan: sim certificate payload: %w", io.ErrUnexpectedEOF)
	errGarble         = fmt.Errorf("zscan: sim server hello: protocol violation")
)

// FleetOptions configures a simulated fleet.
type FleetOptions struct {
	// Space is the address-space size the fleet is scattered over.
	Space uint64
	// Devices is the number of listening devices (default 64; must fit
	// in Space).
	Devices int
	// Vulnerable is the fraction of devices given shared-prime keys
	// from one factory pool (boot cohorts of 2-6 devices sharing their
	// first prime). Default 0.25.
	Vulnerable float64
	// Bits is the RSA modulus size (default 256 — study-scale keys).
	Bits int
	// Seed makes the fleet deterministic: placement, keys, certs.
	Seed int64
	// FaultEvery, when > 0, gives every device a deterministic
	// faults.NewEveryN(FaultEvery, FaultAction) plan: its probes 1,
	// FaultEvery+1, ... fault, everything between passes. With
	// FaultEvery=2 the first sweep faults every device and the second
	// sweep recovers every device — the guaranteed-recovery shape
	// chaos smoke tests want.
	FaultEvery int
	// FaultAction is the action for FaultEvery plans (default Reset).
	FaultAction faults.Action
	// FaultWeights, when any weight is set and FaultEvery is 0, gives
	// every device a seeded probabilistic fault plan.
	FaultWeights faults.Weights
}

func (o FleetOptions) withDefaults() (FleetOptions, error) {
	if o.Space == 0 {
		return o, fmt.Errorf("zscan: fleet needs a non-empty space")
	}
	if o.Devices <= 0 {
		o.Devices = 64
	}
	if uint64(o.Devices) > o.Space {
		return o, fmt.Errorf("zscan: %d devices cannot fit in a space of %d", o.Devices, o.Space)
	}
	if o.Vulnerable < 0 || o.Vulnerable > 1 {
		return o, fmt.Errorf("zscan: Vulnerable fraction %g outside [0,1]", o.Vulnerable)
	}
	if o.Vulnerable == 0 {
		o.Vulnerable = 0.25
	}
	if o.Bits <= 0 {
		o.Bits = 256
	}
	return o, nil
}

// simDevice is one listening endpoint: a pre-marshaled certificate, its
// advertised suites, and an optional per-device fault plan.
type simDevice struct {
	der    []byte
	suites []string
	key    *weakrsa.PrivateKey
	weak   bool
	plan   *faults.Plan
	dead   atomic.Bool // crashed devices stop answering
}

// SimFleet is an in-memory device population: a sparse map from address
// index to device, probed by hash lookup rather than a socket. It is
// what lets a single CI core drive the millions-of-probes regime — the
// wire protocol is exercised separately by devices.Server tests and by
// TCPProber — while keeping the interesting parts real: deterministic
// shared-prime key material, vendor-shaped certificates, and seeded
// per-device fault plans.
type SimFleet struct {
	opts    FleetOptions
	byIndex map[uint64]*simDevice
	indexes []uint64 // sorted, for deterministic iteration
}

// NewSimFleet builds a deterministic fleet: device placement, key
// assignment (shared-prime cohorts for the vulnerable fraction, healthy
// keys for the rest) and certificates are all pure functions of the
// options.
func NewSimFleet(opts FleetOptions) (*SimFleet, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(o.Seed))
	byIndex := make(map[uint64]*simDevice, o.Devices)
	indexes := make([]uint64, 0, o.Devices)
	for len(indexes) < o.Devices {
		idx := uint64(rng.Int63n(int64(o.Space)))
		if _, dup := byIndex[idx]; dup {
			continue
		}
		byIndex[idx] = nil
		indexes = append(indexes, idx)
	}
	sort.Slice(indexes, func(i, j int) bool { return indexes[i] < indexes[j] })

	factory := population.NewKeyFactory(o.Seed, o.Bits)
	vulnCount := int(o.Vulnerable*float64(o.Devices) + 0.5)
	notBefore := time.Date(2012, 1, 1, 0, 0, 0, 0, time.UTC)
	notAfter := notBefore.AddDate(10, 0, 0)
	for i, idx := range indexes {
		weak := i < vulnCount
		var key *weakrsa.PrivateKey
		if weak {
			key, err = factory.SharedPrime("fleet", weakrsa.PrimeOpenSSL)
		} else {
			key, err = factory.Healthy()
		}
		if err != nil {
			return nil, fmt.Errorf("zscan: fleet key %d: %w", i, err)
		}
		cert, err := certs.SelfSigned(big.NewInt(int64(i)+1),
			certs.Name{CommonName: "system generated", Organization: "SimFleet"},
			notBefore, notAfter,
			[]string{fmt.Sprintf("device-%d.fleet.sim", i)},
			key.N, key.E, key.D)
		if err != nil {
			return nil, fmt.Errorf("zscan: fleet cert %d: %w", i, err)
		}
		der, err := cert.Marshal()
		if err != nil {
			return nil, fmt.Errorf("zscan: fleet cert %d: %w", i, err)
		}
		suites := []string{devices.SuiteRSA, devices.SuiteECDHE}
		if weak {
			// The embedded-device tell from the paper: weak keys live on
			// gear that only speaks static-RSA key exchange.
			suites = []string{devices.SuiteRSA}
		}
		d := &simDevice{der: der, suites: suites, key: key, weak: weak}
		switch {
		case o.FaultEvery > 0:
			d.plan = faults.NewEveryN(o.FaultEvery, o.FaultAction)
		case o.FaultWeights != (faults.Weights{}):
			d.plan = faults.NewPlan(o.Seed+int64(i)+1, o.FaultWeights)
		}
		byIndex[idx] = d
	}
	return &SimFleet{opts: o, byIndex: byIndex, indexes: indexes}, nil
}

// Probe implements Prober by map lookup. Misses return the shared
// ErrNoDevice sentinel; hits consult the device's fault plan and
// either fail the way the corresponding socket fault would or hand
// back the pre-marshaled DER.
func (f *SimFleet) Probe(_ context.Context, index uint64) ProbeResult {
	d, ok := f.byIndex[index]
	if !ok {
		return ProbeResult{Index: index, Err: ErrNoDevice}
	}
	if d.dead.Load() {
		return ProbeResult{Index: index, Err: ErrNoDevice}
	}
	dec := d.plan.Next()
	if dec.Crash {
		d.dead.Store(true)
		return ProbeResult{Index: index, Err: errReset}
	}
	switch dec.Action {
	case faults.Refuse:
		return ProbeResult{Index: index, Err: errRefused}
	case faults.Reset:
		return ProbeResult{Index: index, Err: errReset}
	case faults.Stall:
		return ProbeResult{Index: index, Err: errStall}
	case faults.Truncate:
		return ProbeResult{Index: index, Err: errTruncate}
	case faults.Garble:
		return ProbeResult{Index: index, Err: errGarble}
	}
	return ProbeResult{Index: index, DER: d.der, Suites: d.suites}
}

// Space returns the configured address-space size.
func (f *SimFleet) Space() uint64 { return f.opts.Space }

// DeviceCount returns the number of devices placed in the space.
func (f *SimFleet) DeviceCount() int { return len(f.indexes) }

// Indexes returns the sorted addresses that have a device listening.
func (f *SimFleet) Indexes() []uint64 {
	out := make([]uint64, len(f.indexes))
	copy(out, f.indexes)
	return out
}

// WeakExemplars returns the lowercase-hex moduli of vulnerable devices
// whose boot cohort has at least two members in the fleet — i.e. keys
// that batch GCD over the fleet's harvest will actually factor. Moduli
// are returned in device order.
func (f *SimFleet) WeakExemplars() []string {
	members := make(map[string]int)
	for _, idx := range f.indexes {
		d := f.byIndex[idx]
		if d.weak {
			members[d.key.P.String()]++
		}
	}
	var out []string
	for _, idx := range f.indexes {
		d := f.byIndex[idx]
		if d.weak && members[d.key.P.String()] >= 2 {
			out = append(out, fmt.Sprintf("%x", d.key.N))
		}
	}
	return out
}

// TCPProber probes real devices.Server endpoints over loopback TCP —
// the full wire protocol, for tests and small realism runs; the
// simulated fleet carries the throughput regime.
type TCPProber struct {
	// Addr maps an address index to a dialable host:port.
	Addr func(index uint64) (string, bool)
	// Timeout bounds dial plus handshake (default 5s).
	Timeout time.Duration
}

// Probe dials the index's address and runs the certificate fetch.
// Indexes with no mapped address miss with ErrNoDevice.
func (t *TCPProber) Probe(ctx context.Context, index uint64) ProbeResult {
	addr, ok := t.Addr(index)
	if !ok {
		return ProbeResult{Index: index, Err: ErrNoDevice}
	}
	timeout := t.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	d := net.Dialer{Timeout: timeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return ProbeResult{Index: index, Err: err}
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return ProbeResult{Index: index, Err: err}
	}
	cert, suites, err := devices.FetchCertSuites(conn)
	if err != nil {
		return ProbeResult{Index: index, Err: err}
	}
	return ProbeResult{Index: index, Cert: cert, Suites: suites}
}

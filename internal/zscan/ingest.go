package zscan

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/factorable/weakkeys/internal/scanner"
	"github.com/factorable/weakkeys/internal/telemetry"
)

// BridgeOptions configures the continuous-ingest bridge.
type BridgeOptions struct {
	// URL is the ingest endpoint — a keyserverd or keyrouter
	// POST /v1/ingest address.
	URL string
	// BatchSize is moduli per request (default 256, capped at the
	// server's 4096 per-request limit).
	BatchSize int
	// FlushInterval flushes a partial batch that has been waiting this
	// long (default 500ms), bounding scan-to-verdict latency when the
	// harvest trickles.
	FlushInterval time.Duration
	// QueueSize bounds moduli buffered between harvest and delivery
	// (default 8192). A full queue blocks Offer — backpressure into
	// the harvest loop instead of unbounded memory.
	QueueSize int
	// MaxAttempts caps delivery attempts per batch (default 5);
	// RetryBackoff is the first retry delay (default 100ms, doubling
	// with jitter); RetryBudget caps retries across the bridge's
	// lifetime (0 = default 64, negative = unlimited); Seed keys the
	// jitter.
	MaxAttempts  int
	RetryBackoff time.Duration
	RetryBudget  int
	Seed         int64
	// Client is the HTTP client (default: 10s-timeout client).
	Client *http.Client
	// Metrics/Events receive delivery telemetry.
	Metrics *telemetry.Registry
	Events  *telemetry.EventLog
}

const maxIngestBatch = 4096 // the server's per-request moduli cap

func (o BridgeOptions) withDefaults() (BridgeOptions, error) {
	if o.URL == "" {
		return o, fmt.Errorf("zscan: BridgeOptions.URL is required")
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 256
	}
	if o.BatchSize > maxIngestBatch {
		o.BatchSize = maxIngestBatch
	}
	if o.FlushInterval <= 0 {
		o.FlushInterval = 500 * time.Millisecond
	}
	if o.QueueSize <= 0 {
		o.QueueSize = 8192
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 5
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 100 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 10 * time.Second}
	}
	return o, nil
}

// BridgeStats is the bridge's delivery ledger.
type BridgeStats struct {
	// Offered is moduli accepted into the queue; Delivered ones
	// acknowledged by the server; Dropped ones lost to a permanently
	// failed batch.
	Offered   uint64 `json:"offered"`
	Delivered uint64 `json:"delivered"`
	Dropped   uint64 `json:"dropped"`
	// Batches/FailedBatches/Retries count requests.
	Batches       uint64 `json:"batches"`
	FailedBatches uint64 `json:"failed_batches"`
	Retries       uint64 `json:"retries"`
	// Factored sums the server-reported new_factored + refactored
	// across acknowledged batches — weak keys the scan just exposed.
	Factored uint64 `json:"factored"`
}

// Bridge streams harvested moduli into POST /v1/ingest in batches, on
// the scanner's retry machinery (exponential backoff, seeded jitter,
// lifetime retry budget), so a standing scan continuously folds newly
// seen keys into the serving index — /v1/check verdicts flip without a
// server restart. Create with NewBridge, feed with Offer, then Close to
// flush.
type Bridge struct {
	o      BridgeOptions
	queue  chan string
	wg     sync.WaitGroup
	budget *scanner.Budget
	jitter *scanner.Jitter

	offered   atomic.Uint64
	delivered atomic.Uint64
	dropped   atomic.Uint64
	batches   atomic.Uint64
	failed    atomic.Uint64
	retries   atomic.Uint64
	factored  atomic.Uint64

	ins bridgeInstruments
}

type bridgeInstruments struct {
	events    *telemetry.EventLog
	delivered *telemetry.Counter
	dropped   *telemetry.Counter
	batchOK   *telemetry.Counter
	batchFail *telemetry.Counter
	retriesC  *telemetry.Counter
	factoredC *telemetry.Counter
	queueLen  *telemetry.Gauge
}

// NewBridge validates options and starts the delivery goroutine.
func NewBridge(opts BridgeOptions) (*Bridge, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	budgetSize := int64(o.RetryBudget)
	switch {
	case budgetSize == 0:
		budgetSize = 64
	case budgetSize < 0:
		budgetSize = 1<<63 - 1
	}
	reg := o.Metrics
	b := &Bridge{
		o:      o,
		queue:  make(chan string, o.QueueSize),
		budget: scanner.NewBudget(budgetSize),
		jitter: scanner.NewJitter(o.Seed),
		ins: bridgeInstruments{
			events:    o.Events,
			delivered: reg.Counter("zscan_ingest_keys_total"),
			dropped:   reg.Counter("zscan_ingest_dropped_total"),
			batchOK:   reg.Counter(`zscan_ingest_batches_total{outcome="ok"}`),
			batchFail: reg.Counter(`zscan_ingest_batches_total{outcome="failed"}`),
			retriesC:  reg.Counter("zscan_ingest_retries_total"),
			factoredC: reg.Counter("zscan_ingest_factored_total"),
			queueLen:  reg.Gauge("zscan_ingest_queue"),
		},
	}
	b.wg.Add(1)
	go b.deliver()
	return b, nil
}

// Offer queues one hex modulus for delivery, blocking when the queue is
// full (backpressure) until space frees or the context ends. Calling
// Offer after Close panics, like any send on a closed channel — the
// engine always finishes harvesting before the bridge is closed.
func (b *Bridge) Offer(ctx context.Context, modulusHex string) error {
	select {
	case b.queue <- modulusHex:
		b.offered.Add(1)
		b.ins.queueLen.Set(float64(len(b.queue)))
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close flushes the queue and stops the delivery goroutine, returning
// after the final batch settles.
func (b *Bridge) Close() {
	close(b.queue)
	b.wg.Wait()
}

// Stats returns the delivery ledger so far.
func (b *Bridge) Stats() BridgeStats {
	return BridgeStats{
		Offered:       b.offered.Load(),
		Delivered:     b.delivered.Load(),
		Dropped:       b.dropped.Load(),
		Batches:       b.batches.Load(),
		FailedBatches: b.failed.Load(),
		Retries:       b.retries.Load(),
		Factored:      b.factored.Load(),
	}
}

// deliver is the bridge's single consumer: batch up queued moduli and
// post each batch, flushing partials on a timer and draining fully at
// Close.
func (b *Bridge) deliver() {
	defer b.wg.Done()
	ticker := time.NewTicker(b.o.FlushInterval)
	defer ticker.Stop()
	batch := make([]string, 0, b.o.BatchSize)
	flush := func() {
		if len(batch) == 0 {
			return
		}
		b.post(batch)
		batch = batch[:0]
	}
	for {
		select {
		case m, ok := <-b.queue:
			if !ok {
				flush()
				return
			}
			batch = append(batch, m)
			b.ins.queueLen.Set(float64(len(b.queue)))
			if len(batch) >= b.o.BatchSize {
				flush()
			}
		case <-ticker.C:
			flush()
		}
	}
}

// ingestReply is the slice of the server's ingest report the bridge
// reads back.
type ingestReply struct {
	DeltaModuli int `json:"delta_moduli"`
	Duplicates  int `json:"duplicates"`
	NewFactored int `json:"new_factored"`
	Refactored  int `json:"refactored"`
}

// post delivers one batch with retries: transient failures (transport
// errors, 429 honoring Retry-After, 5xx) back off and retry under the
// budget; permanent rejections (other 4xx) drop the batch — a
// malformed batch re-posted forever would wedge the whole bridge.
func (b *Bridge) post(batch []string) {
	ctx := context.Background()
	body, err := json.Marshal(struct {
		ModuliHex []string `json:"moduli_hex"`
	}{ModuliHex: batch})
	if err != nil {
		b.drop(ctx, batch, fmt.Sprintf("marshal: %v", err))
		return
	}
	backoff := b.o.RetryBackoff
	for attempt := 1; ; attempt++ {
		reply, retryAfter, err := b.postOnce(body)
		if err == nil {
			b.batches.Add(1)
			b.delivered.Add(uint64(len(batch)))
			b.factored.Add(uint64(reply.NewFactored + reply.Refactored))
			b.ins.batchOK.Inc()
			b.ins.delivered.Add(int64(len(batch)))
			b.ins.factoredC.Add(int64(reply.NewFactored + reply.Refactored))
			b.ins.events.Info(ctx, "zscan ingest batch delivered",
				slog.Int("keys", len(batch)),
				slog.Int("novel", reply.DeltaModuli),
				slog.Int("factored", reply.NewFactored+reply.Refactored),
				slog.Int("attempt", attempt))
			return
		}
		if permanent(err) || attempt >= b.o.MaxAttempts || !b.budget.Take() {
			b.drop(ctx, batch, err.Error())
			return
		}
		b.retries.Add(1)
		b.ins.retriesC.Inc()
		sleep := b.jitter.Jitter(backoff)
		if retryAfter > sleep {
			sleep = retryAfter
		}
		b.ins.events.Debug(ctx, "zscan ingest retry",
			slog.Int("attempt", attempt),
			slog.Duration("backoff", sleep),
			slog.String("err", err.Error()))
		time.Sleep(sleep)
		backoff = scanner.DoubleBackoff(backoff, 5*time.Second)
	}
}

func (b *Bridge) drop(ctx context.Context, batch []string, reason string) {
	b.failed.Add(1)
	b.dropped.Add(uint64(len(batch)))
	b.ins.batchFail.Inc()
	b.ins.dropped.Add(int64(len(batch)))
	b.ins.events.Error(ctx, "zscan ingest batch dropped",
		slog.Int("keys", len(batch)),
		slog.String("reason", reason))
}

// permanentError marks a server rejection retrying cannot fix.
type permanentError struct{ msg string }

func (e *permanentError) Error() string { return e.msg }

func permanent(err error) bool {
	_, ok := err.(*permanentError)
	return ok
}

// postOnce performs one HTTP attempt. 429 and 5xx return ordinary
// (retryable) errors; other non-200 statuses return permanentError.
func (b *Bridge) postOnce(body []byte) (ingestReply, time.Duration, error) {
	var reply ingestReply
	resp, err := b.o.Client.Post(b.o.URL, "application/json", bytes.NewReader(body))
	if err != nil {
		return reply, 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return reply, 0, err
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		// A garbled success body is still a delivery; counts just read 0.
		_ = json.Unmarshal(data, &reply)
		return reply, 0, nil
	case resp.StatusCode == http.StatusTooManyRequests:
		var after time.Duration
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
				after = time.Duration(secs) * time.Second
			}
		}
		return reply, after, fmt.Errorf("zscan: ingest rate limited (429)")
	case resp.StatusCode >= 500:
		return reply, 0, fmt.Errorf("zscan: ingest server error (%d)", resp.StatusCode)
	default:
		return reply, 0, &permanentError{msg: fmt.Sprintf(
			"zscan: ingest rejected (%d): %s", resp.StatusCode, truncate(data, 200))}
	}
}

func truncate(b []byte, n int) string {
	if len(b) > n {
		b = b[:n]
	}
	return string(b)
}

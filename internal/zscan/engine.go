package zscan

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"github.com/factorable/weakkeys/internal/certs"
	"github.com/factorable/weakkeys/internal/devices"
	"github.com/factorable/weakkeys/internal/scanner"
	"github.com/factorable/weakkeys/internal/scanstore"
	"github.com/factorable/weakkeys/internal/telemetry"
)

// Options configures an Engine run.
type Options struct {
	// Space is the address-space size to sweep.
	Space uint64
	// Shard/Shards partition the cycle: this process walks shard Shard
	// of Shards coordination-free slices (defaults 0 of 1).
	Shard, Shards int
	// Seed keys the permutation (generator + start element), so a
	// given (Space, Seed, Shards) triple fully determines every
	// shard's visit sequence across processes.
	Seed int64
	// Cycles is how many full sweeps to run (default 1). Probes lost
	// to transient faults are not retried in place; the next cycle
	// re-covers them — the ZMap loss model.
	Cycles int
	// Rate caps probes/sec via a token bucket (0 = unpaced).
	Rate float64
	// Burst is the bucket capacity (default max(Rate/100, 1)).
	Burst int
	// Window bounds probes in flight between sender and harvester
	// (default 1024).
	Window int
	// Workers is the number of probe goroutines (default 8).
	Workers int
	// Prober answers the probes — a SimFleet or a TCPProber.
	Prober Prober
	// Store receives one observation per successful probe.
	Store *scanstore.Store
	// Date is the scan date stamped on cycle 0's observations; cycle k
	// is stamped Date+k days, so per-cycle deltas stay separable.
	// Defaults to 2016-04-01, the paper's final scan month.
	Date time.Time
	// Source attributes the observations (default SourceCensys).
	Source scanstore.Source
	// CheckpointDir, when set, receives numbered scanstore delta
	// segments as the harvest advances.
	CheckpointDir string
	// CheckpointEvery is the number of stored observations per delta
	// checkpoint (default 256).
	CheckpointEvery int
	// Ingest, when set, receives every novel modulus the harvest sees;
	// the bridge batches them into POST /v1/ingest.
	Ingest *Bridge
	// Metrics/Events receive zscan_* telemetry and structured events.
	Metrics *telemetry.Registry
	Events  *telemetry.EventLog
}

func (o Options) withDefaults() (Options, error) {
	if o.Prober == nil {
		return o, fmt.Errorf("zscan: Options.Prober is required")
	}
	if o.Store == nil {
		return o, fmt.Errorf("zscan: Options.Store is required")
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.Shard < 0 || o.Shard >= o.Shards {
		return o, fmt.Errorf("zscan: shard %d outside [0,%d)", o.Shard, o.Shards)
	}
	if o.Cycles <= 0 {
		o.Cycles = 1
	}
	if o.Rate < 0 || o.Rate != o.Rate {
		return o, fmt.Errorf("zscan: Rate must be >= 0, got %g", o.Rate)
	}
	if o.Window <= 0 {
		o.Window = 1024
	}
	if o.Workers <= 0 {
		o.Workers = 8
	}
	if o.Date.IsZero() {
		o.Date = time.Date(2016, 4, 1, 0, 0, 0, 0, time.UTC)
	}
	if o.Source == "" {
		o.Source = scanstore.SourceCensys
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 256
	}
	return o, nil
}

// Report is the accounting for one Run.
type Report struct {
	Cycles int `json:"cycles"`
	// Probes is how many addresses were probed (all cycles).
	Probes uint64 `json:"probes"`
	// Hits is probes that returned a certificate; Misses is probes
	// into empty address space.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Errors buckets failed probes against live devices by
	// scanner.Cause.
	Errors map[string]uint64 `json:"errors,omitempty"`
	// Stored counts observations persisted; StoreErrors counts ones
	// the store rejected (skipped, not fatal).
	Stored      int `json:"stored"`
	StoreErrors int `json:"store_errors,omitempty"`
	// NovelModuli / DuplicateModuli split the hits by whether the
	// modulus was first seen this run.
	NovelModuli     int `json:"novel_moduli"`
	DuplicateModuli int `json:"duplicate_moduli"`
	// Checkpoints counts delta segments written to CheckpointDir.
	Checkpoints int `json:"checkpoints"`
	// Elapsed and ProbesPerSec describe the whole run.
	Elapsed      time.Duration `json:"elapsed_ns"`
	ProbesPerSec float64       `json:"probes_per_sec"`
}

// instruments is the engine's pre-resolved metric handle set (all
// nil-safe no-ops when Options.Metrics is unset), following the
// scanner's pattern: resolve once, touch only atomics per probe.
type instruments struct {
	events      *telemetry.EventLog
	probes      *telemetry.Counter
	hits        *telemetry.Counter
	misses      *telemetry.Counter
	errs        map[string]*telemetry.Counter
	inflight    *telemetry.Gauge
	harvestLag  *telemetry.Histogram
	novel       *telemetry.Counter
	dup         *telemetry.Counter
	checkpoints *telemetry.Counter
	cycles      *telemetry.Counter
	rate        *telemetry.Gauge
}

func (o Options) instruments() instruments {
	reg := o.Metrics
	errs := make(map[string]*telemetry.Counter)
	for _, cause := range []string{scanner.CauseRefused, scanner.CauseReset,
		scanner.CauseTimeout, scanner.CauseCanceled, scanner.CausePermanent} {
		errs[cause] = reg.Counter(`zscan_probe_errors_total{cause="` + cause + `"}`)
	}
	return instruments{
		events:      o.Events,
		probes:      reg.Counter("zscan_probes_total"),
		hits:        reg.Counter("zscan_hits_total"),
		misses:      reg.Counter("zscan_misses_total"),
		errs:        errs,
		inflight:    reg.Gauge("zscan_inflight"),
		harvestLag:  reg.Histogram("zscan_harvest_lag_seconds", telemetry.DurationBuckets),
		novel:       reg.Counter("zscan_novel_moduli_total"),
		dup:         reg.Counter("zscan_duplicate_moduli_total"),
		checkpoints: reg.Counter("zscan_checkpoints_total"),
		cycles:      reg.Counter("zscan_cycles_total"),
		rate:        reg.Gauge("zscan_probes_per_sec"),
	}
}

// Engine is the decoupled send/harvest scan loop: a paced sender walks
// the permutation and dispatches stateless probes into a bounded
// in-flight window; probe workers answer them; a single harvester
// validates certificates, stores observations, dedups moduli, writes
// delta checkpoints and feeds the ingest bridge. Sender and harvester
// share nothing but the window — the ZMap architecture, where the send
// loop never blocks on response processing.
type Engine struct {
	o     Options
	cycle *Cycle
	ins   instruments

	// Harvester-owned state (single goroutine, no locking).
	seen    map[string]bool
	lastCP  scanstore.Checkpoint
	sinceCP int
	rep     Report
	// cpNext is the filename index of the next delta segment. It starts
	// past the highest zscan-*.delta already in CheckpointDir, so a shard
	// restarted into a non-empty directory extends the chain instead of
	// silently overwriting it (Report.Checkpoints counts this run only).
	cpNext int
}

// New validates the options and builds the permutation.
func New(opts Options) (*Engine, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	cyc, err := NewCycle(o.Space, o.Seed)
	if err != nil {
		return nil, err
	}
	cpNext := 0
	if o.CheckpointDir != "" {
		if err := os.MkdirAll(o.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("zscan: checkpoint dir: %w", err)
		}
		if cpNext, err = nextCheckpointIndex(o.CheckpointDir); err != nil {
			return nil, err
		}
	}
	return &Engine{
		o:      o,
		cycle:  cyc,
		ins:    o.instruments(),
		seen:   make(map[string]bool),
		rep:    Report{Errors: make(map[string]uint64)},
		cpNext: cpNext,
	}, nil
}

// LoadCheckpoints replays every zscan-*.delta segment in dir into store,
// in index order — the restart rehydration step. Delta segments are
// positional (each records the store position it was saved against), so
// a shard restarted into a non-empty checkpoint dir must fold the
// existing chain back into its store before scanning; the engine then
// appends new segments that chain onto the old ones. Returns the number
// of segments replayed; a missing or empty dir replays zero.
func LoadCheckpoints(dir string, store *scanstore.Store) (int, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "zscan-*.delta"))
	if err != nil {
		return 0, fmt.Errorf("zscan: load checkpoints: %w", err)
	}
	sort.Strings(matches)
	for i, path := range matches {
		f, err := os.Open(path)
		if err != nil {
			return i, fmt.Errorf("zscan: load checkpoints: %w", err)
		}
		err = store.LoadSince(f)
		f.Close()
		if err != nil {
			return i, fmt.Errorf("zscan: load checkpoints: replay %s: %w", filepath.Base(path), err)
		}
	}
	return len(matches), nil
}

// nextCheckpointIndex scans dir for existing zscan-*.delta segments and
// returns the index after the highest one, so a restarted shard appends
// to the delta chain rather than clobbering it and corrupting LoadSince
// replay.
func nextCheckpointIndex(dir string) (int, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "zscan-*.delta"))
	if err != nil {
		return 0, fmt.Errorf("zscan: checkpoint dir: %w", err)
	}
	next := 0
	for _, m := range matches {
		base := filepath.Base(m)
		var idx int
		if _, err := fmt.Sscanf(base, "zscan-%d.delta", &idx); err != nil {
			return 0, fmt.Errorf("zscan: checkpoint dir holds unrecognized delta %q", base)
		}
		if idx+1 > next {
			next = idx + 1
		}
	}
	return next, nil
}

// Cycle exposes the engine's permutation (for audits and tests).
func (e *Engine) Cycle() *Cycle { return e.cycle }

// harvestItem carries a finished probe to the harvester, timestamped so
// harvest lag (time a response waits before validation) is measurable.
type harvestItem struct {
	res  ProbeResult
	done time.Time
}

// Run executes the configured number of full-cycle sweeps. It returns
// the partial report alongside the context's error when canceled
// mid-sweep; checkpointing and store errors surface in the report and
// events rather than aborting the scan.
func (e *Engine) Run(ctx context.Context) (Report, error) {
	start := time.Now()
	e.lastCP = e.o.Store.Checkpoint()
	var runErr error
	for c := 0; c < e.o.Cycles; c++ {
		date := e.o.Date.AddDate(0, 0, c)
		if err := e.runCycle(ctx, c, date); err != nil {
			runErr = err
			break
		}
		e.rep.Cycles++
		e.ins.cycles.Inc()
	}
	if err := e.checkpoint(ctx, true); err != nil && runErr == nil {
		runErr = err
	}
	e.rep.Elapsed = time.Since(start)
	if s := e.rep.Elapsed.Seconds(); s > 0 {
		e.rep.ProbesPerSec = float64(e.rep.Probes) / s
	}
	e.ins.rate.Set(e.rep.ProbesPerSec)
	if len(e.rep.Errors) == 0 {
		e.rep.Errors = nil
	}
	return e.rep, runErr
}

// runCycle sweeps this process's shard of one full cycle: sender →
// window → workers → harvester, with a barrier at the end (jobs close,
// workers drain, harvester finishes) so the next cycle's observations
// carry the next scan date exactly.
func (e *Engine) runCycle(ctx context.Context, cycleNo int, date time.Time) error {
	walk, err := e.cycle.Shard(e.o.Shard, e.o.Shards)
	if err != nil {
		return err
	}
	e.ins.events.Info(ctx, "zscan cycle start",
		slog.Int("cycle", cycleNo),
		slog.Int("shard", e.o.Shard),
		slog.Int("shards", e.o.Shards),
		slog.Uint64("targets", walk.Remaining()))
	cycleStart := time.Now()
	probesBefore := e.rep.Probes

	window := make(chan struct{}, e.o.Window)
	jobs := make(chan uint64)
	results := make(chan harvestItem, e.o.Window)
	var workers sync.WaitGroup
	for w := 0; w < e.o.Workers; w++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for idx := range jobs {
				res := e.o.Prober.Probe(ctx, idx)
				results <- harvestItem{res: res, done: time.Now()}
			}
		}()
	}
	harvestDone := make(chan struct{})
	go func() {
		defer close(harvestDone)
		for item := range results {
			<-window
			e.ins.inflight.Add(-1)
			e.harvest(ctx, date, item)
		}
	}()

	pace := newPacer(e.o.Rate, e.o.Burst)
send:
	for {
		idx, ok := walk.Next()
		if !ok {
			break
		}
		if !pace.wait(ctx) {
			break
		}
		select {
		case window <- struct{}{}:
		case <-ctx.Done():
			break send
		}
		e.ins.inflight.Add(1)
		select {
		case jobs <- idx:
			e.rep.Probes++
			e.ins.probes.Inc()
		case <-ctx.Done():
			<-window
			e.ins.inflight.Add(-1)
			break send
		}
	}
	close(jobs)
	workers.Wait()
	close(results)
	<-harvestDone

	elapsed := time.Since(cycleStart)
	probes := e.rep.Probes - probesBefore
	if s := elapsed.Seconds(); s > 0 {
		e.ins.rate.Set(float64(probes) / s)
	}
	e.ins.events.Info(ctx, "zscan cycle done",
		slog.Int("cycle", cycleNo),
		slog.Uint64("probes", probes),
		slog.Uint64("hits", e.rep.Hits),
		slog.Int("stored", e.rep.Stored),
		slog.Duration("elapsed", elapsed))
	return ctx.Err()
}

// harvest validates one finished probe: classify failures, parse the
// certificate if the prober returned raw DER, store the observation,
// dedup the modulus, feed the ingest bridge, and checkpoint when due.
// It runs on the single harvester goroutine.
func (e *Engine) harvest(ctx context.Context, date time.Time, item harvestItem) {
	res := item.res
	if res.Err != nil {
		if res.Err == ErrNoDevice {
			e.rep.Misses++
			e.ins.misses.Inc()
			return
		}
		e.ins.harvestLag.ObserveDuration(time.Since(item.done))
		cause := scanner.Cause(res.Err)
		e.rep.Errors[cause]++
		if c := e.ins.errs[cause]; c != nil {
			c.Inc()
		}
		e.ins.events.Debug(ctx, "zscan probe failed",
			slog.Uint64("index", res.Index),
			slog.String("cause", cause))
		return
	}
	e.ins.harvestLag.ObserveDuration(time.Since(item.done))
	cert := res.Cert
	if cert == nil {
		var err error
		cert, err = certs.Parse(res.DER)
		if err != nil {
			e.rep.Errors[scanner.CausePermanent]++
			e.ins.errs[scanner.CausePermanent].Inc()
			e.ins.events.Warn(ctx, "zscan certificate parse failed",
				slog.Uint64("index", res.Index),
				slog.String("err", err.Error()))
			return
		}
	}
	e.rep.Hits++
	e.ins.hits.Inc()
	err := e.o.Store.Add(scanstore.Observation{
		IP:       indexToIP(res.Index),
		Date:     date,
		Source:   e.o.Source,
		Protocol: scanstore.HTTPS,
		Cert:     cert,
		RSAOnly:  devices.RSAOnly(res.Suites),
	})
	if err != nil {
		e.rep.StoreErrors++
		e.ins.events.Warn(ctx, "zscan store failed",
			slog.Uint64("index", res.Index),
			slog.String("err", err.Error()))
		return
	}
	e.rep.Stored++
	e.sinceCP++
	key := cert.ModulusKey()
	if e.seen[key] {
		e.rep.DuplicateModuli++
		e.ins.dup.Inc()
	} else {
		e.seen[key] = true
		e.rep.NovelModuli++
		e.ins.novel.Inc()
		if e.o.Ingest != nil {
			if err := e.o.Ingest.Offer(ctx, fmt.Sprintf("%x", cert.N)); err != nil {
				e.ins.events.Warn(ctx, "zscan ingest offer failed",
					slog.String("err", err.Error()))
			}
		}
	}
	if e.sinceCP >= e.o.CheckpointEvery {
		if err := e.checkpoint(ctx, false); err != nil {
			e.ins.events.Error(ctx, "zscan checkpoint failed",
				slog.String("err", err.Error()))
		}
	}
}

// checkpoint writes a scanstore delta segment covering everything since
// the previous checkpoint. Segments are numbered so LoadSince can chain
// them back in order. final flushes a trailing partial segment.
func (e *Engine) checkpoint(ctx context.Context, final bool) error {
	if e.o.CheckpointDir == "" || e.sinceCP == 0 {
		return nil
	}
	if !final && e.sinceCP < e.o.CheckpointEvery {
		return nil
	}
	path := filepath.Join(e.o.CheckpointDir,
		fmt.Sprintf("zscan-%04d.delta", e.cpNext))
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("zscan: checkpoint: %w", err)
	}
	if err := e.o.Store.SaveDelta(f, e.lastCP); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("zscan: checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("zscan: checkpoint: %w", err)
	}
	records := e.sinceCP
	e.lastCP = e.o.Store.Checkpoint()
	e.sinceCP = 0
	e.cpNext++
	e.rep.Checkpoints++
	e.ins.checkpoints.Inc()
	e.ins.events.Info(ctx, "zscan checkpoint saved",
		slog.String("path", path),
		slog.Int("records", records))
	return nil
}

// indexToIP renders an address index as a dotted quad in the simulated
// scan's address plane (the low 32 bits of the index).
func indexToIP(idx uint64) string {
	return fmt.Sprintf("%d.%d.%d.%d",
		byte(idx>>24), byte(idx>>16), byte(idx>>8), byte(idx))
}

package zscan

import (
	"fmt"
	"math/bits"
	"math/rand"
)

// Cycle is a full-cycle pseudorandom permutation of an address space —
// the ZMap target generator. Instead of keeping per-target state (a
// visited bitmap over the space), the scan walks the multiplicative
// cyclic group of integers modulo a prime p chosen just above the
// space: starting from a seeded element, each step multiplies by a
// fixed generator, and because the generator is a primitive root the
// walk provably visits every group element {1, ..., p-1} exactly once
// before returning to its start. Group elements map to address indexes
// by e ↦ e-1; the few elements past the space (p-1 is the first prime
// ≥ space+1, so the overshoot is a prime gap) are skipped on the fly.
//
// The payoff is the one ZMap is built on: targets arrive in
// pseudorandom order (no destination network sees a sequential sweep),
// the iterator is O(1) state (current element, multiplier), and a scan
// can be split across processes with zero coordination — see Shard.
type Cycle struct {
	space uint64 // addresses are indexes [0, space)
	p     uint64 // prime modulus; the group is {1, ..., p-1}
	g     uint64 // seeded primitive root mod p: the step multiplier
	start uint64 // seeded first group element
}

// maxSpace bounds the address space. The limit keeps the group-order
// factorization (trial division below) trivially fast; an IPv4-sized
// space (2^32) sits well inside it.
const maxSpace = uint64(1) << 40

// NewCycle builds the permutation for a space of the given size. The
// seed selects both the generator (one of the φ(p-1) primitive roots)
// and the start element, so different seeds produce different visit
// orders over the identical covered set — each sweep of a standing
// scan can re-key its permutation while keeping full-cycle coverage.
func NewCycle(space uint64, seed int64) (*Cycle, error) {
	if space == 0 {
		return nil, fmt.Errorf("zscan: empty address space")
	}
	if space > maxSpace {
		return nil, fmt.Errorf("zscan: space %d exceeds the supported maximum %d", space, maxSpace)
	}
	p, factors := groupModulus(space + 1)
	m := p - 1
	r := primitiveRoot(p, factors)
	rng := rand.New(rand.NewSource(seed))
	// r^k is a primitive root exactly when gcd(k, p-1) = 1, so a seeded
	// coprime exponent picks a uniformly random generator.
	var g uint64
	for {
		k := 1 + uint64(rng.Int63n(int64(m)))
		if gcd64(k, m) == 1 {
			g = powmod(r, k, p)
			break
		}
	}
	start := 1 + uint64(rng.Int63n(int64(m)))
	return &Cycle{space: space, p: p, g: g, start: start}, nil
}

// Space returns the address-space size the cycle covers.
func (c *Cycle) Space() uint64 { return c.space }

// Modulus returns the prime group modulus p.
func (c *Cycle) Modulus() uint64 { return c.p }

// Generator returns the seeded primitive root stepping the walk.
func (c *Cycle) Generator() uint64 { return c.g }

// Shard returns the walk for shard index of count coordination-free
// partitions. The full cycle is the sequence start·g^k for
// k = 0..p-2; shard i takes the positions k ≡ i (mod count), i.e. it
// starts at start·g^i and steps by g^count. The shards are disjoint
// and their union is the whole cycle by construction — N scanner
// processes agreeing only on (space, seed, count) split the space
// exactly, with no shared state and no handshake.
func (c *Cycle) Shard(index, count int) (*Walk, error) {
	if count < 1 {
		return nil, fmt.Errorf("zscan: shard count %d < 1", count)
	}
	if index < 0 || index >= count {
		return nil, fmt.Errorf("zscan: shard index %d outside [0,%d)", index, count)
	}
	m := c.p - 1
	i, n := uint64(index), uint64(count)
	var remaining uint64
	if i < m {
		// Positions k in [0, m) with k ≡ i (mod n).
		remaining = (m - i + n - 1) / n
	}
	return &Walk{
		space:     c.space,
		p:         c.p,
		cur:       mulmod(c.start, powmod(c.g, i, c.p), c.p),
		mult:      powmod(c.g, n, c.p),
		remaining: remaining,
	}, nil
}

// Walk iterates one shard of a Cycle. Its entire state is the current
// group element, the stride multiplier and a countdown — the stateless-
// scanning property: nothing grows with the space or with progress.
type Walk struct {
	space, p, cur, mult uint64
	remaining           uint64
}

// Next returns the next address index in the shard's pseudorandom
// order, or ok=false when the shard's slice of the cycle is exhausted.
// Group elements beyond the space (the prime-gap overshoot) are skipped
// internally.
func (w *Walk) Next() (uint64, bool) {
	for w.remaining > 0 {
		e := w.cur
		w.remaining--
		w.cur = mulmod(w.cur, w.mult, w.p)
		if e-1 < w.space {
			return e - 1, true
		}
	}
	return 0, false
}

// Remaining reports how many group elements the walk has yet to
// examine — an upper bound on the indexes it will still yield.
func (w *Walk) Remaining() uint64 { return w.remaining }

// groupModulus finds the smallest usable prime p ≥ n together with the
// distinct prime factors of p-1 (needed for the primitive-root test).
// The rare prime whose p-1 resists the bounded trial division is
// skipped in favour of the next one.
func groupModulus(n uint64) (uint64, []uint64) {
	if n < 3 {
		n = 3
	}
	if n%2 == 0 {
		n++
	}
	for c := n; ; c += 2 {
		if !isPrime64(c) {
			continue
		}
		if f, ok := distinctFactors(c - 1); ok {
			return c, f
		}
	}
}

// distinctFactors returns the distinct prime factors of m by trial
// division up to 2^20, requiring any leftover cofactor to be prime.
// For m ≤ 2^40 a composite cofactor would need two factors above 2^20,
// which cannot both fit — so failure is only possible near the maxSpace
// ceiling, and the caller just tries the next prime.
func distinctFactors(m uint64) ([]uint64, bool) {
	var out []uint64
	if m%2 == 0 {
		out = append(out, 2)
		for m%2 == 0 {
			m /= 2
		}
	}
	for d := uint64(3); d <= 1<<20 && d*d <= m; d += 2 {
		if m%d == 0 {
			out = append(out, d)
			for m%d == 0 {
				m /= d
			}
		}
	}
	if m > 1 {
		if !isPrime64(m) {
			return nil, false
		}
		out = append(out, m)
	}
	return out, true
}

// primitiveRoot finds the smallest generator of the full group: h is a
// primitive root iff h^((p-1)/q) ≠ 1 for every distinct prime factor q
// of p-1.
func primitiveRoot(p uint64, factors []uint64) uint64 {
	m := p - 1
	if m == 1 {
		return 1
	}
	for h := uint64(2); ; h++ {
		ok := true
		for _, q := range factors {
			if powmod(h, m/q, p) == 1 {
				ok = false
				break
			}
		}
		if ok {
			return h
		}
	}
}

// mulmod computes a·b mod m without overflow for any m < 2^64: the
// 128-bit product's high half is always below m, so the hardware
// 128/64 division cannot trap.
func mulmod(a, b, m uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, rem := bits.Div64(hi, lo, m)
	return rem
}

// powmod computes b^e mod m by square-and-multiply.
func powmod(b, e, m uint64) uint64 {
	if m == 1 {
		return 0
	}
	r := uint64(1)
	b %= m
	for e > 0 {
		if e&1 == 1 {
			r = mulmod(r, b, m)
		}
		b = mulmod(b, b, m)
		e >>= 1
	}
	return r
}

func gcd64(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// mrBases is a deterministic Miller-Rabin witness set covering every
// 64-bit integer.
var mrBases = [...]uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}

// isPrime64 is a deterministic primality test for uint64.
func isPrime64(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, sp := range mrBases {
		if n == sp {
			return true
		}
		if n%sp == 0 {
			return false
		}
	}
	d, s := n-1, 0
	for d&1 == 0 {
		d >>= 1
		s++
	}
witness:
	for _, a := range mrBases {
		x := powmod(a, d, n)
		if x == 1 || x == n-1 {
			continue
		}
		for i := 0; i < s-1; i++ {
			x = mulmod(x, x, n)
			if x == n-1 {
				continue witness
			}
		}
		return false
	}
	return true
}

package zscan

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/factorable/weakkeys/internal/scanstore"
)

// ingestSink is a test double for POST /v1/ingest: it records batches
// and can fail the first N requests with a configurable status.
type ingestSink struct {
	mu       sync.Mutex
	batches  [][]string
	failN    int
	failCode int
}

func (s *ingestSink) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failN > 0 {
		s.failN--
		http.Error(w, "injected failure", s.failCode)
		return
	}
	var req struct {
		ModuliHex []string `json:"moduli_hex"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.batches = append(s.batches, req.ModuliHex)
	fmt.Fprintf(w, `{"delta_moduli":%d,"duplicates":0,"new_factored":1,"refactored":0}`, len(req.ModuliHex))
}

func (s *ingestSink) total() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, b := range s.batches {
		n += len(b)
	}
	return n
}

func (s *ingestSink) batchCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.batches)
}

func TestBridgeBatchesAndFlushes(t *testing.T) {
	sink := &ingestSink{}
	srv := httptest.NewServer(sink)
	defer srv.Close()
	b, err := NewBridge(BridgeOptions{
		URL: srv.URL, BatchSize: 2, FlushInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if err := b.Offer(ctx, fmt.Sprintf("%02x", i+1)); err != nil {
			t.Fatal(err)
		}
	}
	b.Close()
	if got := sink.total(); got != 5 {
		t.Errorf("server received %d moduli, want 5", got)
	}
	if got := sink.batchCount(); got != 3 {
		t.Errorf("server received %d batches, want 3 (2+2+1)", got)
	}
	st := b.Stats()
	if st.Delivered != 5 || st.Dropped != 0 {
		t.Errorf("stats = %+v, want 5 delivered / 0 dropped", st)
	}
	if st.Factored != 3 {
		t.Errorf("factored = %d, want 3 (one per acknowledged batch)", st.Factored)
	}
}

func TestBridgeRetriesTransientFailures(t *testing.T) {
	sink := &ingestSink{failN: 2, failCode: http.StatusInternalServerError}
	srv := httptest.NewServer(sink)
	defer srv.Close()
	b, err := NewBridge(BridgeOptions{
		URL: srv.URL, BatchSize: 4, RetryBackoff: time.Millisecond, MaxAttempts: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := b.Offer(ctx, fmt.Sprintf("%02x", i+1)); err != nil {
			t.Fatal(err)
		}
	}
	b.Close()
	st := b.Stats()
	if st.Delivered != 3 {
		t.Errorf("delivered = %d, want 3 after retries", st.Delivered)
	}
	if st.Retries < 2 {
		t.Errorf("retries = %d, want >= 2", st.Retries)
	}
	if sink.total() != 3 {
		t.Errorf("server received %d moduli, want 3", sink.total())
	}
}

func TestBridgeDropsPermanentRejections(t *testing.T) {
	sink := &ingestSink{failN: 1 << 30, failCode: http.StatusBadRequest}
	srv := httptest.NewServer(sink)
	defer srv.Close()
	b, err := NewBridge(BridgeOptions{
		URL: srv.URL, BatchSize: 4, RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Offer(context.Background(), "ab"); err != nil {
		t.Fatal(err)
	}
	b.Close()
	st := b.Stats()
	if st.Dropped != 1 || st.FailedBatches != 1 {
		t.Errorf("stats = %+v, want 1 dropped / 1 failed batch", st)
	}
	if st.Retries != 0 {
		t.Errorf("retries = %d: a 4xx must not be retried", st.Retries)
	}
}

func TestBridgeRetriesRateLimit(t *testing.T) {
	sink := &ingestSink{failN: 1, failCode: http.StatusTooManyRequests}
	srv := httptest.NewServer(sink)
	defer srv.Close()
	b, err := NewBridge(BridgeOptions{
		URL: srv.URL, RetryBackoff: time.Millisecond, MaxAttempts: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Offer(context.Background(), "cd"); err != nil {
		t.Fatal(err)
	}
	b.Close()
	if st := b.Stats(); st.Delivered != 1 {
		t.Errorf("delivered = %d, want 1 after the 429 retry", st.Delivered)
	}
}

func TestBridgeValidation(t *testing.T) {
	if _, err := NewBridge(BridgeOptions{}); err == nil {
		t.Error("missing URL must be rejected")
	}
}

// TestEngineFeedsBridge wires engine → bridge → mock ingest endpoint:
// every novel modulus the harvest sees must be delivered.
func TestEngineFeedsBridge(t *testing.T) {
	sink := &ingestSink{}
	srv := httptest.NewServer(sink)
	defer srv.Close()
	bridge, err := NewBridge(BridgeOptions{
		URL: srv.URL, BatchSize: 4, FlushInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	fleet := testFleet(t, FleetOptions{Space: 2048, Devices: 20, Vulnerable: 0.5, Seed: 13})
	store := scanstore.New()
	eng, err := New(Options{
		Space: 2048, Seed: 13, Prober: fleet, Store: store, Ingest: bridge,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	bridge.Close()
	st := bridge.Stats()
	if rep.NovelModuli == 0 {
		t.Fatal("sweep found no novel moduli")
	}
	if st.Offered != uint64(rep.NovelModuli) {
		t.Errorf("offered = %d, want %d (one per novel modulus)", st.Offered, rep.NovelModuli)
	}
	if st.Delivered != st.Offered {
		t.Errorf("delivered = %d, offered = %d: bridge lost keys", st.Delivered, st.Offered)
	}
	if sink.total() != rep.NovelModuli {
		t.Errorf("server received %d moduli, want %d", sink.total(), rep.NovelModuli)
	}
}

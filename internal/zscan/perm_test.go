package zscan

import (
	"math/rand"
	"sync"
	"testing"
)

// collect drains a walk into a slice.
func collect(t *testing.T, w *Walk) []uint64 {
	t.Helper()
	var out []uint64
	for {
		idx, ok := w.Next()
		if !ok {
			return out
		}
		if idx >= uint64(cap(out)) && len(out) > 1<<24 {
			t.Fatal("walk did not terminate")
		}
		out = append(out, idx)
	}
}

func TestCycleCoversSpaceExactlyOnce(t *testing.T) {
	for _, space := range []uint64{1, 2, 3, 10, 97, 255, 1000, 4096} {
		c, err := NewCycle(space, 42)
		if err != nil {
			t.Fatalf("space %d: %v", space, err)
		}
		w, err := c.Shard(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[uint64]int)
		for _, idx := range collect(t, w) {
			if idx >= space {
				t.Fatalf("space %d: index %d out of range", space, idx)
			}
			seen[idx]++
		}
		if uint64(len(seen)) != space {
			t.Fatalf("space %d: visited %d distinct indexes, want %d", space, len(seen), space)
		}
		for idx, n := range seen {
			if n != 1 {
				t.Fatalf("space %d: index %d visited %d times", space, idx, n)
			}
		}
	}
}

// TestShardsDisjointAndComplete is the core sharding property: for any
// shard count, every index is visited by exactly one shard exactly
// once — zero overlap, zero omission. Shards walk concurrently so the
// race detector also certifies that walks share no state.
func TestShardsDisjointAndComplete(t *testing.T) {
	for _, tc := range []struct {
		space  uint64
		shards int
	}{
		{100, 2}, {1000, 2}, {1000, 3}, {4096, 7}, {5000, 16}, {10, 32},
	} {
		c, err := NewCycle(tc.space, 7)
		if err != nil {
			t.Fatal(err)
		}
		visits := make([][]uint64, tc.shards)
		var wg sync.WaitGroup
		for s := 0; s < tc.shards; s++ {
			w, err := c.Shard(s, tc.shards)
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func(s int, w *Walk) {
				defer wg.Done()
				for {
					idx, ok := w.Next()
					if !ok {
						return
					}
					visits[s] = append(visits[s], idx)
				}
			}(s, w)
		}
		wg.Wait()
		owner := make(map[uint64]int)
		total := 0
		for s, vs := range visits {
			for _, idx := range vs {
				if idx >= tc.space {
					t.Fatalf("space %d/%d shards: index %d out of range", tc.space, tc.shards, idx)
				}
				if prev, dup := owner[idx]; dup {
					t.Fatalf("space %d/%d shards: index %d visited by shards %d and %d",
						tc.space, tc.shards, idx, prev, s)
				}
				owner[idx] = s
				total++
			}
		}
		if uint64(total) != tc.space {
			t.Fatalf("space %d/%d shards: %d visits, want %d (omission)", tc.space, tc.shards, total, tc.space)
		}
	}
}

func TestOrderDiffersPerSeed(t *testing.T) {
	const space = 1000
	order := func(seed int64) []uint64 {
		c, err := NewCycle(space, seed)
		if err != nil {
			t.Fatal(err)
		}
		w, err := c.Shard(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		return collect(t, w)
	}
	a, b := order(1), order(2)
	if len(a) != space || len(b) != space {
		t.Fatalf("lengths %d/%d, want %d", len(a), len(b), space)
	}
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical visit orders")
	}
	// And the same seed replays exactly — the cross-process agreement
	// sharding depends on.
	c := order(1)
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("seed 1 not deterministic at position %d", i)
		}
	}
}

// TestRandomizedShardProperty fuzzes (space, seed, shards) combinations
// against the exactly-once invariant.
func TestRandomizedShardProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		space := 1 + uint64(rng.Intn(3000))
		seed := rng.Int63()
		shards := 1 + rng.Intn(9)
		c, err := NewCycle(space, seed)
		if err != nil {
			t.Fatal(err)
		}
		seen := make(map[uint64]bool)
		total := uint64(0)
		for s := 0; s < shards; s++ {
			w, err := c.Shard(s, shards)
			if err != nil {
				t.Fatal(err)
			}
			for {
				idx, ok := w.Next()
				if !ok {
					break
				}
				if seen[idx] {
					t.Fatalf("space=%d seed=%d shards=%d: duplicate index %d", space, seed, shards, idx)
				}
				seen[idx] = true
				total++
			}
		}
		if total != space {
			t.Fatalf("space=%d seed=%d shards=%d: covered %d", space, seed, shards, total)
		}
	}
}

func TestShardValidation(t *testing.T) {
	c, err := NewCycle(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct{ index, count int }{
		{0, 0}, {-1, 2}, {2, 2}, {5, 3},
	} {
		if _, err := c.Shard(tc.index, tc.count); err == nil {
			t.Errorf("Shard(%d, %d) must fail", tc.index, tc.count)
		}
	}
	if _, err := NewCycle(0, 1); err == nil {
		t.Error("empty space must be rejected")
	}
	if _, err := NewCycle(maxSpace+1, 1); err == nil {
		t.Error("oversized space must be rejected")
	}
}

func TestWalkRemainingIsUpperBound(t *testing.T) {
	c, err := NewCycle(500, 3)
	if err != nil {
		t.Fatal(err)
	}
	w, err := c.Shard(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	before := w.Remaining()
	n := uint64(len(collect(t, w)))
	if n > before {
		t.Fatalf("walk yielded %d > Remaining %d", n, before)
	}
	if w.Remaining() != 0 {
		t.Fatalf("exhausted walk Remaining = %d", w.Remaining())
	}
}

func TestNumberTheoryHelpers(t *testing.T) {
	primes := []uint64{2, 3, 5, 7, 101, 65537, 4294967291, 1<<32 + 15}
	for _, p := range primes {
		if !isPrime64(p) {
			t.Errorf("isPrime64(%d) = false", p)
		}
	}
	composites := []uint64{0, 1, 4, 9, 91, 65539 * 3, 4294967291 * 2}
	for _, n := range composites {
		if isPrime64(n) {
			t.Errorf("isPrime64(%d) = true", n)
		}
	}
	// Generator order check: for a sample cycle the generator must have
	// full order p-1, i.e. g^((p-1)/q) != 1 for every prime factor q.
	c, err := NewCycle(1<<16, 12345)
	if err != nil {
		t.Fatal(err)
	}
	p := c.Modulus()
	factors, ok := distinctFactors(p - 1)
	if !ok {
		t.Fatalf("factoring %d-1 failed", p)
	}
	for _, q := range factors {
		if powmod(c.Generator(), (p-1)/q, p) == 1 {
			t.Fatalf("generator %d has order dividing (p-1)/%d: not primitive", c.Generator(), q)
		}
	}
}

package devices

import (
	"fmt"

	"github.com/factorable/weakkeys/internal/certs"
	"github.com/factorable/weakkeys/internal/weakrsa"
)

// KeyMode describes how a device model's firmware generates its key, which
// determines the factoring failure mode batch GCD will see.
type KeyMode int

const (
	// KeyHealthy: unique primes per device; never factorable.
	KeyHealthy KeyMode = iota
	// KeySharedPrime: the boot-time entropy hole — devices share the
	// first prime and diverge on the second (Section 2.4).
	KeySharedPrime
	// KeyClique: the IBM failure — all keys are drawn from a tiny fixed
	// prime pool (9 primes, 36 possible keys; Section 3.3.2).
	KeyClique
	// KeyClosePrimes: both primes drawn from one narrow window, so the
	// modulus falls to a short Fermat ascent — the "When RSA Fails"
	// prime-selection flaw. Invisible to batch GCD: no prime is shared.
	KeyClosePrimes
	// KeySmallFactor: a broken primality test ships a tiny "prime", so
	// trial division or Pollard rho splits the modulus immediately.
	KeySmallFactor
	// KeyUnsafeExponent: the modulus is honest but the firmware emits a
	// broken public exponent (e = 1, even e, or a tiny unsafe e).
	KeyUnsafeExponent
	// KeySharedModulus: the entire fleet ships one keypair baked into the
	// firmware image, so the same modulus serves every device identity.
	KeySharedModulus
)

func (m KeyMode) String() string {
	switch m {
	case KeyHealthy:
		return "healthy"
	case KeySharedPrime:
		return "shared-prime"
	case KeyClique:
		return "clique"
	case KeyClosePrimes:
		return "close-primes"
	case KeySmallFactor:
		return "small-factor"
	case KeyUnsafeExponent:
		return "unsafe-exponent"
	case KeySharedModulus:
		return "shared-modulus"
	default:
		return fmt.Sprintf("KeyMode(%d)", int(m))
	}
}

// Identity is the per-device data a profile's certificate template can
// draw on.
type Identity struct {
	// IP is the device's dotted-quad address.
	IP string
	// Serial is a per-device serial number.
	Serial int64
	// Model is the device model within the vendor's line, when the
	// vendor's certificates identify one (Cisco does; Juniper does not).
	Model string
}

// Profile describes one device family: who makes it, what its certificates
// look like, and how (badly) it generates keys. Profiles are the bridge
// between the population simulator and the fingerprint pipeline: the
// fingerprints must recover vendors from exactly the information the
// profile puts in the certificate.
type Profile struct {
	// Vendor is the canonical vendor name (matches Registry).
	Vendor string
	// Model of the device family; empty when certificates do not reveal
	// a model.
	Model string
	// Subject renders the certificate distinguished name for a device.
	Subject func(id Identity) certs.Name
	// DNSNames renders subject alternative names (nil for most vendors).
	DNSNames func(id Identity) []string
	// VulnerableKeyMode is the key-generation failure of the vulnerable
	// firmware line (devices that are vulnerable use this mode;
	// non-vulnerable devices of the same family use KeyHealthy).
	VulnerableKeyMode KeyMode
	// PrimeGen is the prime generation style of the implementation,
	// which drives the Table 5 OpenSSL fingerprint.
	PrimeGen weakrsa.PrimeGen
	// IdentifiedBySubject is true when Section 3.3.1 subject
	// fingerprinting can label the vendor from the certificate alone.
	// False for IBM (anonymous certificates, identified by the clique
	// moduli) and for the IP-only Fritz!Box certificates.
	IdentifiedBySubject bool
}

func ip4(id Identity) string { return id.IP }

// Profiles for the vendors whose behaviour the paper's figures track.
// Subject shapes follow Section 3.3.1 verbatim where the paper quotes
// them.
var (
	// Juniper SRX/ScreenOS devices: every certificate carries the bare
	// "CN=system generated" with no vendor or model information.
	ProfileJuniper = Profile{
		Vendor: "Juniper",
		Subject: func(id Identity) certs.Name {
			return certs.Name{CommonName: "system generated"}
		},
		VulnerableKeyMode:   KeySharedPrime,
		PrimeGen:            weakrsa.PrimeNaive, // Table 5: not OpenSSL
		IdentifiedBySubject: true,
	}

	// Innominate mGuard industrial security appliances.
	ProfileInnominate = Profile{
		Vendor: "Innominate",
		Model:  "mGuard",
		Subject: func(id Identity) certs.Name {
			return certs.Name{CommonName: fmt.Sprintf("mGuard-%06d", id.Serial), Organization: "Innominate"}
		},
		VulnerableKeyMode:   KeySharedPrime,
		PrimeGen:            weakrsa.PrimeOpenSSL,
		IdentifiedBySubject: true,
	}

	// IBM Remote Supervisor Adapter II / BladeCenter Management Module:
	// certificates carry customer-supplied fields and nothing naming
	// IBM; identification is via the 36-key clique.
	ProfileIBM = Profile{
		Vendor: "IBM",
		Subject: func(id Identity) certs.Name {
			return certs.Name{
				CommonName:   ip4(id),
				Organization: fmt.Sprintf("Customer Site %03d", id.Serial%311),
			}
		},
		VulnerableKeyMode:   KeyClique,
		PrimeGen:            weakrsa.PrimeOpenSSL,
		IdentifiedBySubject: false,
	}

	// HP Integrated Lights-Out management cards.
	ProfileHP = Profile{
		Vendor: "HP",
		Model:  "iLO",
		Subject: func(id Identity) certs.Name {
			return certs.Name{
				CommonName:         fmt.Sprintf("ILO%010d", id.Serial),
				Organization:       "Hewlett-Packard",
				OrganizationalUnit: "ISS",
			}
		},
		VulnerableKeyMode:   KeySharedPrime,
		PrimeGen:            weakrsa.PrimeOpenSSL,
		IdentifiedBySubject: true,
	}

	// McAfee SnapGear: the all-defaults distinguished name the paper
	// quotes.
	ProfileMcAfee = Profile{
		Vendor: "McAfee",
		Model:  "SnapGear",
		Subject: func(id Identity) certs.Name {
			return certs.Name{
				CommonName:         "Default Common Name",
				Organization:       "Default Organization",
				OrganizationalUnit: "Default Unit",
			}
		},
		VulnerableKeyMode:   KeySharedPrime,
		PrimeGen:            weakrsa.PrimeOpenSSL,
		IdentifiedBySubject: true,
	}

	// Fritz!Box DSL modems: myfritz.net common names and fritz.box SANs
	// for most devices; a minority serve IP-only subjects and are
	// labelled only through shared-prime extrapolation (Section 3.3.2).
	ProfileFritzBox = Profile{
		Vendor: "Fritz!Box",
		Subject: func(id Identity) certs.Name {
			return certs.Name{CommonName: fmt.Sprintf("%012x.myfritz.net", uint64(id.Serial))}
		},
		DNSNames: func(id Identity) []string {
			return []string{"fritz.box", "www.fritz.box", "myfritz.box", "www.myfritz.box", "fritz.fonwlan.box"}
		},
		VulnerableKeyMode:   KeySharedPrime,
		PrimeGen:            weakrsa.PrimeOpenSSL,
		IdentifiedBySubject: true,
	}

	// ProfileFritzBoxIPOnly is the Fritz!Box sub-population whose
	// certificate subject identifies only an IP address in octets.
	ProfileFritzBoxIPOnly = Profile{
		Vendor: "Fritz!Box",
		Model:  "ip-only",
		Subject: func(id Identity) certs.Name {
			return certs.Name{CommonName: ip4(id)}
		},
		VulnerableKeyMode:   KeySharedPrime,
		PrimeGen:            weakrsa.PrimeOpenSSL,
		IdentifiedBySubject: false,
	}
)

// CiscoModels are the small-business lines of Figure 7, with their
// end-of-life announcement months (YYYY-MM; approximate within the
// simulation's month grid).
var CiscoModels = []struct {
	Model string
	EOL   string
}{
	{"RV082", "2013-04"},
	{"RV120W", "2014-01"},
	{"RV220W", "2014-07"},
	{"RV180", "2015-03"},
	{"SA520", "2013-10"},
}

// ProfileCisco builds the per-model Cisco profile: the organizational
// unit names the exact model, which is what lets the paper study
// end-of-life effects per model.
func ProfileCisco(model string) Profile {
	return Profile{
		Vendor: "Cisco",
		Model:  model,
		Subject: func(id Identity) certs.Name {
			return certs.Name{
				CommonName:         fmt.Sprintf("%s-%08d", model, id.Serial),
				Organization:       "Cisco Systems, Inc.",
				OrganizationalUnit: model,
			}
		},
		VulnerableKeyMode:   KeySharedPrime,
		PrimeGen:            weakrsa.PrimeOpenSSL,
		IdentifiedBySubject: true,
	}
}

// GenericProfile builds a plain "O=vendor" profile, the common pattern the
// paper notes for Hewlett-Packard, Xerox, TP-LINK and Conel s.r.o.; it
// serves for the Figure 9/10 vendors without documented special shapes.
func GenericProfile(vendor string, mode KeyMode, gen weakrsa.PrimeGen) Profile {
	return Profile{
		Vendor: vendor,
		Subject: func(id Identity) certs.Name {
			return certs.Name{
				CommonName:   fmt.Sprintf("device-%08d", id.Serial),
				Organization: vendor,
			}
		},
		VulnerableKeyMode:   mode,
		PrimeGen:            gen,
		IdentifiedBySubject: true,
	}
}

// ProfileDellImaging is the Dell Imaging Group line that shares prime
// factors with Xerox devices (the Fuji Xerox manufacturing partnership,
// Section 3.3.2).
var ProfileDellImaging = Profile{
	Vendor: "Dell",
	Model:  "Imaging",
	Subject: func(id Identity) certs.Name {
		return certs.Name{
			CommonName:         fmt.Sprintf("printer-%06d", id.Serial),
			Organization:       "Dell Inc.",
			OrganizationalUnit: "Dell Imaging Group",
		}
	},
	VulnerableKeyMode:   KeySharedPrime,
	PrimeGen:            weakrsa.PrimeNaive, // shares Xerox's (non-OpenSSL) stack
	IdentifiedBySubject: true,
}

// ProfileSiemens is the Siemens Building Automation interface whose
// moduli overlap the IBM clique (Section 3.3.2).
var ProfileSiemens = Profile{
	Vendor: "Siemens",
	Model:  "Building Automation",
	Subject: func(id Identity) certs.Name {
		return certs.Name{
			CommonName:   fmt.Sprintf("bacnet-%06d", id.Serial),
			Organization: "Siemens Building Automation",
		}
	},
	VulnerableKeyMode:   KeySharedPrime,
	PrimeGen:            weakrsa.PrimeNaive,
	IdentifiedBySubject: true,
}

// ProfileSiemensOverlap is the Siemens sub-population whose certificates
// carry moduli from the IBM prime clique (first seen February 2013,
// Section 3.3.2): same subject shape as ProfileSiemens, clique key mode.
// Its primes are the IBM pool's, hence OpenSSL-style.
var ProfileSiemensOverlap = Profile{
	Vendor:              "Siemens",
	Model:               "Building Automation",
	Subject:             ProfileSiemens.Subject,
	VulnerableKeyMode:   KeyClique,
	PrimeGen:            weakrsa.PrimeOpenSSL,
	IdentifiedBySubject: true,
}

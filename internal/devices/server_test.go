package devices

import (
	"errors"
	"io"
	"math/big"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/factorable/weakkeys/internal/certs"
	"github.com/factorable/weakkeys/internal/faults"
	"github.com/factorable/weakkeys/internal/weakrsa"
)

func serverCert(t *testing.T) *certs.Certificate {
	t.Helper()
	k, err := weakrsa.GenerateKey(rand.New(rand.NewSource(17)), weakrsa.Options{Bits: 128})
	if err != nil {
		t.Fatal(err)
	}
	c, err := certs.SelfSigned(big.NewInt(77), certs.Name{CommonName: "system generated"},
		time.Unix(0, 0), time.Unix(1<<40, 0), nil, k.N, k.E, k.D)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func startServer(t *testing.T, s *Server) net.Addr {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	return ln.Addr()
}

func dial(t *testing.T, addr net.Addr) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	t.Cleanup(func() { conn.Close() })
	return conn
}

func TestFetchCertOverTCP(t *testing.T) {
	want := serverCert(t)
	srv := &Server{Cert: want}
	addr := startServer(t, srv)

	conn := dial(t, addr)
	got, err := FetchCert(conn)
	if err != nil {
		t.Fatal(err)
	}
	if got.N.Cmp(want.N) != 0 {
		t.Error("fetched modulus differs")
	}
	if got.Subject != want.Subject {
		t.Error("fetched subject differs")
	}
	if err := got.Verify(nil); err != nil {
		t.Errorf("fetched certificate does not verify: %v", err)
	}
}

func TestRepeatedHandshakesOneConnection(t *testing.T) {
	srv := &Server{Cert: serverCert(t)}
	addr := startServer(t, srv)
	conn := dial(t, addr)
	for i := 0; i < 3; i++ {
		if _, err := FetchCert(conn); err != nil {
			t.Fatalf("handshake %d: %v", i, err)
		}
	}
}

func TestHeartbeatEcho(t *testing.T) {
	srv := &Server{Cert: serverCert(t)}
	addr := startServer(t, srv)
	conn := dial(t, addr)
	if err := ProbeHeartbeat(conn, []byte("ping-payload")); err != nil {
		t.Errorf("patched device should answer heartbeats: %v", err)
	}
	if srv.Crashed() {
		t.Error("patched device should not crash")
	}
}

func TestHeartbeatCrashesVulnerableDevice(t *testing.T) {
	srv := &Server{Cert: serverCert(t), CrashOnHeartbeat: true}
	addr := startServer(t, srv)

	conn := dial(t, addr)
	if err := ProbeHeartbeat(conn, []byte("x")); err == nil {
		t.Error("crash-prone device should fail the probe")
	}
	// Wait for the listener to actually close.
	deadline := time.Now().Add(5 * time.Second)
	for !srv.Crashed() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !srv.Crashed() {
		t.Fatal("device did not record the crash")
	}
	// Subsequent scans cannot reach the device: this is how Heartbleed
	// probing removed populations from the scan record.
	c2, err := net.DialTimeout("tcp", addr.String(), time.Second)
	if err == nil {
		c2.SetDeadline(time.Now().Add(2 * time.Second))
		if _, ferr := FetchCert(c2); ferr == nil {
			t.Error("crashed device still served a certificate")
		}
		c2.Close()
	}
}

func TestUnknownMessageHangsUp(t *testing.T) {
	srv := &Server{Cert: serverCert(t)}
	addr := startServer(t, srv)
	conn := dial(t, addr)
	if _, err := conn.Write([]byte("GET / HTTP/1.0\r\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Error("server should hang up on unknown protocol")
	}
}

func TestSuitesAdvertised(t *testing.T) {
	srv := &Server{Cert: serverCert(t), Suites: []string{SuiteRSA}}
	addr := startServer(t, srv)
	conn := dial(t, addr)
	cert, suites, err := FetchCertSuites(conn)
	if err != nil {
		t.Fatal(err)
	}
	if cert == nil {
		t.Fatal("no cert")
	}
	if len(suites) != 1 || suites[0] != SuiteRSA {
		t.Errorf("suites: %v", suites)
	}
	if !RSAOnly(suites) {
		t.Error("RSA-only device not recognized")
	}
}

func TestSuitesDefaultBoth(t *testing.T) {
	srv := &Server{Cert: serverCert(t)}
	addr := startServer(t, srv)
	conn := dial(t, addr)
	_, suites, err := FetchCertSuites(conn)
	if err != nil {
		t.Fatal(err)
	}
	if len(suites) != 2 {
		t.Errorf("default suites: %v", suites)
	}
	if RSAOnly(suites) {
		t.Error("dual-suite device misclassified as RSA-only")
	}
}

func TestRSAOnlyClassifier(t *testing.T) {
	cases := []struct {
		suites []string
		want   bool
	}{
		{[]string{SuiteRSA}, true},
		{[]string{SuiteRSA, SuiteECDHE}, false},
		{[]string{SuiteECDHE}, false},
		{nil, false},
		{[]string{""}, false},
	}
	for _, c := range cases {
		if got := RSAOnly(c.suites); got != c.want {
			t.Errorf("RSAOnly(%v) = %v, want %v", c.suites, got, c.want)
		}
	}
}

// --- fault injection ---

func TestFaultRefuseAndReset(t *testing.T) {
	for _, action := range []faults.Action{faults.Refuse, faults.Reset} {
		srv := &Server{Cert: serverCert(t), Faults: faults.NewEveryN(1, action)}
		addr := startServer(t, srv)
		conn, err := net.Dial("tcp", addr.String())
		if err != nil {
			continue // the RST raced connect() on loopback: fault delivered
		}
		conn.SetDeadline(time.Now().Add(5 * time.Second))
		if _, err := FetchCert(conn); err == nil {
			t.Errorf("%v: handshake should fail", action)
		}
		conn.Close()
	}
}

func TestFaultStallHitsClientDeadline(t *testing.T) {
	srv := &Server{Cert: serverCert(t), Faults: faults.NewEveryN(1, faults.Stall)}
	addr := startServer(t, srv)
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(150 * time.Millisecond))
	_, err = FetchCert(conn)
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Errorf("stalled handshake error = %v, want timeout", err)
	}
}

func TestFaultTruncateCutsCertificate(t *testing.T) {
	srv := &Server{Cert: serverCert(t), Faults: faults.NewEveryN(1, faults.Truncate)}
	addr := startServer(t, srv)
	conn := dial(t, addr)
	_, err := FetchCert(conn)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated payload error = %v, want unexpected EOF", err)
	}
}

func TestFaultGarbleIsProtocolError(t *testing.T) {
	srv := &Server{Cert: serverCert(t), Faults: faults.NewEveryN(1, faults.Garble)}
	addr := startServer(t, srv)
	conn := dial(t, addr)
	_, err := FetchCert(conn)
	if err == nil || !strings.Contains(err.Error(), "unexpected server response") {
		t.Errorf("garbled hello error = %v, want protocol error", err)
	}
}

func TestFaultEveryOtherConnection(t *testing.T) {
	// Every-2 plan: connection 1 reset, connection 2 served — the shape
	// a retrying scanner recovers from deterministically.
	srv := &Server{Cert: serverCert(t), Faults: faults.NewEveryN(2, faults.Reset)}
	addr := startServer(t, srv)
	c1 := dial(t, addr)
	if _, err := FetchCert(c1); err == nil {
		t.Error("first connection should be reset")
	}
	c2 := dial(t, addr)
	if _, err := FetchCert(c2); err != nil {
		t.Errorf("second connection should be served: %v", err)
	}
}

func TestFaultCrashAfterN(t *testing.T) {
	srv := &Server{Cert: serverCert(t), Faults: faults.NewPlan(1, faults.Weights{}).CrashAfter(3)}
	addr := startServer(t, srv)
	for i := 0; i < 2; i++ {
		conn := dial(t, addr)
		if _, err := FetchCert(conn); err != nil {
			t.Fatalf("connection %d before the crash should be served: %v", i+1, err)
		}
	}
	c3, err := net.Dial("tcp", addr.String())
	if err == nil {
		c3.SetDeadline(time.Now().Add(2 * time.Second))
		if _, ferr := FetchCert(c3); ferr == nil {
			t.Error("third connection should hit the crash")
		}
		c3.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for !srv.Crashed() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !srv.Crashed() {
		t.Fatal("device did not record the crash")
	}
	if c4, err := net.DialTimeout("tcp", addr.String(), time.Second); err == nil {
		c4.SetDeadline(time.Now().Add(time.Second))
		if _, ferr := FetchCert(c4); ferr == nil {
			t.Error("crashed device still served a certificate")
		}
		c4.Close()
	}
}

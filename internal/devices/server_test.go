package devices

import (
	"math/big"
	"math/rand"
	"net"
	"testing"
	"time"

	"github.com/factorable/weakkeys/internal/certs"
	"github.com/factorable/weakkeys/internal/weakrsa"
)

func serverCert(t *testing.T) *certs.Certificate {
	t.Helper()
	k, err := weakrsa.GenerateKey(rand.New(rand.NewSource(17)), weakrsa.Options{Bits: 128})
	if err != nil {
		t.Fatal(err)
	}
	c, err := certs.SelfSigned(big.NewInt(77), certs.Name{CommonName: "system generated"},
		time.Unix(0, 0), time.Unix(1<<40, 0), nil, k.N, k.E, k.D)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func startServer(t *testing.T, s *Server) net.Addr {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	return ln.Addr()
}

func dial(t *testing.T, addr net.Addr) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	conn.SetDeadline(time.Now().Add(5 * time.Second))
	t.Cleanup(func() { conn.Close() })
	return conn
}

func TestFetchCertOverTCP(t *testing.T) {
	want := serverCert(t)
	srv := &Server{Cert: want}
	addr := startServer(t, srv)

	conn := dial(t, addr)
	got, err := FetchCert(conn)
	if err != nil {
		t.Fatal(err)
	}
	if got.N.Cmp(want.N) != 0 {
		t.Error("fetched modulus differs")
	}
	if got.Subject != want.Subject {
		t.Error("fetched subject differs")
	}
	if err := got.Verify(nil); err != nil {
		t.Errorf("fetched certificate does not verify: %v", err)
	}
}

func TestRepeatedHandshakesOneConnection(t *testing.T) {
	srv := &Server{Cert: serverCert(t)}
	addr := startServer(t, srv)
	conn := dial(t, addr)
	for i := 0; i < 3; i++ {
		if _, err := FetchCert(conn); err != nil {
			t.Fatalf("handshake %d: %v", i, err)
		}
	}
}

func TestHeartbeatEcho(t *testing.T) {
	srv := &Server{Cert: serverCert(t)}
	addr := startServer(t, srv)
	conn := dial(t, addr)
	if err := ProbeHeartbeat(conn, []byte("ping-payload")); err != nil {
		t.Errorf("patched device should answer heartbeats: %v", err)
	}
	if srv.Crashed() {
		t.Error("patched device should not crash")
	}
}

func TestHeartbeatCrashesVulnerableDevice(t *testing.T) {
	srv := &Server{Cert: serverCert(t), CrashOnHeartbeat: true}
	addr := startServer(t, srv)

	conn := dial(t, addr)
	if err := ProbeHeartbeat(conn, []byte("x")); err == nil {
		t.Error("crash-prone device should fail the probe")
	}
	// Wait for the listener to actually close.
	deadline := time.Now().Add(5 * time.Second)
	for !srv.Crashed() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !srv.Crashed() {
		t.Fatal("device did not record the crash")
	}
	// Subsequent scans cannot reach the device: this is how Heartbleed
	// probing removed populations from the scan record.
	c2, err := net.DialTimeout("tcp", addr.String(), time.Second)
	if err == nil {
		c2.SetDeadline(time.Now().Add(2 * time.Second))
		if _, ferr := FetchCert(c2); ferr == nil {
			t.Error("crashed device still served a certificate")
		}
		c2.Close()
	}
}

func TestUnknownMessageHangsUp(t *testing.T) {
	srv := &Server{Cert: serverCert(t)}
	addr := startServer(t, srv)
	conn := dial(t, addr)
	if _, err := conn.Write([]byte("GET / HTTP/1.0\r\n")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Error("server should hang up on unknown protocol")
	}
}

func TestSuitesAdvertised(t *testing.T) {
	srv := &Server{Cert: serverCert(t), Suites: []string{SuiteRSA}}
	addr := startServer(t, srv)
	conn := dial(t, addr)
	cert, suites, err := FetchCertSuites(conn)
	if err != nil {
		t.Fatal(err)
	}
	if cert == nil {
		t.Fatal("no cert")
	}
	if len(suites) != 1 || suites[0] != SuiteRSA {
		t.Errorf("suites: %v", suites)
	}
	if !RSAOnly(suites) {
		t.Error("RSA-only device not recognized")
	}
}

func TestSuitesDefaultBoth(t *testing.T) {
	srv := &Server{Cert: serverCert(t)}
	addr := startServer(t, srv)
	conn := dial(t, addr)
	_, suites, err := FetchCertSuites(conn)
	if err != nil {
		t.Fatal(err)
	}
	if len(suites) != 2 {
		t.Errorf("default suites: %v", suites)
	}
	if RSAOnly(suites) {
		t.Error("dual-suite device misclassified as RSA-only")
	}
}

func TestRSAOnlyClassifier(t *testing.T) {
	cases := []struct {
		suites []string
		want   bool
	}{
		{[]string{SuiteRSA}, true},
		{[]string{SuiteRSA, SuiteECDHE}, false},
		{[]string{SuiteECDHE}, false},
		{nil, false},
		{[]string{""}, false},
	}
	for _, c := range cases {
		if got := RSAOnly(c.suites); got != c.want {
			t.Errorf("RSAOnly(%v) = %v, want %v", c.suites, got, c.want)
		}
	}
}

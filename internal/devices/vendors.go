// Package devices encodes the vendor and device-model knowledge the paper
// builds its analysis on: the 2012 notification registry (Table 2), the
// OpenSSL-fingerprint classification (Table 5), per-vendor certificate
// subject templates (Section 3.3.1), and the device-side TLS-lite server
// the simulated scanner talks to.
package devices

import "fmt"

// ResponseCategory classifies how a vendor responded to the February/March
// 2012 vulnerability notification (Table 2).
type ResponseCategory int

const (
	// PublicAdvisory: the vendor released a public security advisory.
	PublicAdvisory ResponseCategory = iota
	// PrivateResponse: the vendor responded substantively but never
	// published an advisory.
	PrivateResponse
	// AutoResponse: only an automated acknowledgement was received.
	AutoResponse
	// NoResponse: the vendor never responded at all.
	NoResponse
	// NotNotified2012: vendors that were not part of the 2012 RSA/TLS
	// notification (e.g. newly vulnerable vendors first contacted in
	// May 2016, Section 4.4).
	NotNotified2012
)

func (r ResponseCategory) String() string {
	switch r {
	case PublicAdvisory:
		return "public advisory"
	case PrivateResponse:
		return "private response"
	case AutoResponse:
		return "auto-response"
	case NoResponse:
		return "no response"
	case NotNotified2012:
		return "not notified in 2012"
	default:
		return fmt.Sprintf("ResponseCategory(%d)", int(r))
	}
}

// OpenSSLClass is the Table 5 classification derived from the prime
// factors of a vendor's factored keys.
type OpenSSLClass int

const (
	// OpenSSLUnknown: no factored keys, so the private-key fingerprint
	// cannot be evaluated.
	OpenSSLUnknown OpenSSLClass = iota
	// OpenSSLLikely: every factored prime satisfies the OpenSSL p-1
	// property, so the implementation is likely OpenSSL.
	OpenSSLLikely
	// OpenSSLNot: a substantial fraction of factored primes violate the
	// property, so the implementation is definitely not OpenSSL.
	OpenSSLNot
)

func (c OpenSSLClass) String() string {
	switch c {
	case OpenSSLLikely:
		return "satisfies OpenSSL fingerprint"
	case OpenSSLNot:
		return "does not satisfy"
	default:
		return "unknown"
	}
}

// Vendor is an entry in the study's vendor registry.
type Vendor struct {
	// Name is the canonical vendor name used across the study.
	Name string
	// Response is the Table 2 notification outcome.
	Response ResponseCategory
	// OpenSSL is the ground-truth Table 5 classification; the
	// fingerprint pipeline re-derives it from factored primes and the
	// experiment harness compares the two.
	OpenSSL OpenSSLClass
	// AdvisoryMonth, for PublicAdvisory vendors, is the month the
	// advisory appeared, as "YYYY-MM".
	AdvisoryMonth string
	// SSHOnly marks vendors whose vulnerable keys were SSH host keys
	// rather than TLS certificates (Intel, Tropos).
	SSHOnly bool
}

// Registry lists the 37 vendors notified in 2012 about weak RSA keys
// (Table 2) plus the vendors that appear in the study's later analysis
// (newly vulnerable since 2012, Section 4.4; fingerprint-only entries from
// Table 5).
//
// Column placement caveat: the paper's Table 2 names all 37 vendors but
// the text only pins the category of those discussed in Section 4 (the
// five public advisories, Cisco's and HP's private responses, and the ten
// never-responders of Figure 9). The remaining vendors' categories below
// are a best-effort reconstruction of the table layout; no experiment
// depends on them beyond the aggregate "about half acknowledged receipt".
var Registry = []Vendor{
	// Public security advisories (five, Section 2.5/4.1). Juniper: April
	// + July 2012; Innominate: June 2012; IBM: September 2012 (CVE-2012-
	// 2187); Intel and Tropos published SSH-key disclosures.
	{Name: "Juniper", Response: PublicAdvisory, OpenSSL: OpenSSLNot, AdvisoryMonth: "2012-04"},
	{Name: "Innominate", Response: PublicAdvisory, OpenSSL: OpenSSLLikely, AdvisoryMonth: "2012-06"},
	{Name: "IBM", Response: PublicAdvisory, OpenSSL: OpenSSLLikely, AdvisoryMonth: "2012-09"},
	{Name: "Intel", Response: PublicAdvisory, AdvisoryMonth: "2012-06", SSHOnly: true},
	{Name: "Tropos", Response: PublicAdvisory, AdvisoryMonth: "2012-07", SSHOnly: true},

	// Substantive private responses (Section 4.2 discusses Cisco and HP).
	{Name: "Cisco", Response: PrivateResponse, OpenSSL: OpenSSLLikely},
	{Name: "HP", Response: PrivateResponse, OpenSSL: OpenSSLLikely},
	{Name: "Emerson", Response: PrivateResponse},
	{Name: "Pogoplug", Response: PrivateResponse},
	{Name: "Brocade", Response: PrivateResponse},
	{Name: "NTI", Response: PrivateResponse, OpenSSL: OpenSSLLikely},
	{Name: "2-Wire", Response: PrivateResponse, OpenSSL: OpenSSLLikely},
	{Name: "Sinetica", Response: PrivateResponse},

	// Automated acknowledgements only.
	{Name: "AudioCodes", Response: AutoResponse},
	{Name: "Motorola", Response: AutoResponse},
	{Name: "SkyStream", Response: AutoResponse, OpenSSL: OpenSSLLikely},
	{Name: "Ruckus", Response: AutoResponse},
	{Name: "Kyocera", Response: AutoResponse},

	// Never responded. The majority of contacted vendors fall here
	// (Section 5.1); Figure 9 names ten, D-Link is confirmed in 4.4, and
	// the remainder of the reconstruction lands here so that exactly
	// "about half" (18 of 37) acknowledged receipt in some form.
	{Name: "Sentry", Response: NoResponse},
	{Name: "Hillstone Networks", Response: NoResponse},
	{Name: "Haivision", Response: NoResponse},
	{Name: "Pronto", Response: NoResponse},
	{Name: "BelAir", Response: NoResponse},
	{Name: "Simton", Response: NoResponse},
	{Name: "JDSU", Response: NoResponse},
	{Name: "MRV", Response: NoResponse},
	{Name: "Thomson", Response: NoResponse, OpenSSL: OpenSSLLikely},
	{Name: "Fritz!Box", Response: NoResponse, OpenSSL: OpenSSLLikely},
	{Name: "Linksys", Response: NoResponse, OpenSSL: OpenSSLLikely},
	{Name: "Fortinet", Response: NoResponse, OpenSSL: OpenSSLNot},
	{Name: "ZyXEL", Response: NoResponse, OpenSSL: OpenSSLNot},
	// Dell: the paper's Table 5 lists Dell under "satisfy", but the Dell
	// population this simulation models is the Imaging Group line that
	// shares Xerox's (non-OpenSSL) stack — so the simulation's ground
	// truth is OpenSSLNot. See DESIGN.md.
	{Name: "Dell", Response: NoResponse, OpenSSL: OpenSSLNot},
	{Name: "Kronos", Response: NoResponse, OpenSSL: OpenSSLNot},
	{Name: "Xerox", Response: NoResponse, OpenSSL: OpenSSLNot},
	{Name: "McAfee", Response: NoResponse, OpenSSL: OpenSSLLikely},
	{Name: "TP-LINK", Response: NoResponse, OpenSSL: OpenSSLLikely},
	{Name: "D-Link", Response: NoResponse, OpenSSL: OpenSSLLikely},

	// Newly vulnerable since 2012 (Section 4.4), contacted May 2016.
	{Name: "Huawei", Response: NotNotified2012, OpenSSL: OpenSSLNot},
	{Name: "ADTRAN", Response: NotNotified2012, OpenSSL: OpenSSLLikely},
	{Name: "Sangfor", Response: NotNotified2012, OpenSSL: OpenSSLLikely},
	{Name: "Schmid Telecom", Response: NotNotified2012, OpenSSL: OpenSSLLikely},

	// Fingerprint-identified vendors without their own notification row.
	{Name: "Siemens", Response: NotNotified2012, OpenSSL: OpenSSLNot},
	{Name: "Conel s.r.o.", Response: NotNotified2012, OpenSSL: OpenSSLLikely},
}

// Notified2012Count is the number of vendors the 2012 RSA notification
// reached per the paper.
const Notified2012Count = 37

// ByName returns the registry entry for name, or nil.
func ByName(name string) *Vendor {
	for i := range Registry {
		if Registry[i].Name == name {
			return &Registry[i]
		}
	}
	return nil
}

// Notified2012 returns the vendors contacted in the 2012 disclosure.
func Notified2012() []Vendor {
	var out []Vendor
	for _, v := range Registry {
		if v.Response != NotNotified2012 {
			out = append(out, v)
		}
	}
	return out
}

// CountByResponse tallies the 2012-notified vendors per category,
// regenerating the column totals of Table 2.
func CountByResponse() map[ResponseCategory]int {
	out := make(map[ResponseCategory]int)
	for _, v := range Notified2012() {
		out[v.Response]++
	}
	return out
}

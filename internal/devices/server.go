package devices

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/factorable/weakkeys/internal/certs"
	"github.com/factorable/weakkeys/internal/faults"
)

// The device wire protocol is a deliberately minimal stand-in for the TLS
// handshake the paper's scanners performed: the client sends a hello, the
// server returns its DER certificate. The study only ever needs the
// certificate bytes — exactly like the custom certificate fetchers used by
// the EFF, P&Q and Ecosystem scans. A heartbeat message models the
// Heartbleed-probe behaviour: some real devices (Juniper NetScreen, HP
// iLO) crashed when scanned for Heartbleed, and the simulation reproduces
// that failure mode.
const (
	msgClientHello = "CLIENTHELLO v1"
	msgServerHello = "SERVERHELLO"
	msgHeartbeat   = "HEARTBEAT"
	msgHeartbeatA  = "HEARTBEATACK"
)

// maxCertLen bounds the certificate size a client will accept.
const maxCertLen = 1 << 20

// Cipher-suite families a device can advertise. The study cares about
// one distinction (Section 2.1): a compromised key on a device that only
// supports RSA key exchange allows fully passive decryption; forward-
// secret suites require an active attack.
const (
	SuiteRSA   = "RSA"
	SuiteECDHE = "ECDHE"
)

// Server serves one simulated device's management interface.
type Server struct {
	// Cert is the certificate presented on every handshake.
	Cert *certs.Certificate
	// Suites is the advertised cipher-suite families; nil means both
	// RSA and ECDHE. The paper found 74% of vulnerable devices in the
	// April 2016 scan supported only RSA key exchange.
	Suites []string
	// CrashOnHeartbeat marks firmware that dies when probed with a
	// heartbeat (the Heartbleed-scan crash reports of Section 4.1/4.2).
	CrashOnHeartbeat bool
	// Faults, when set, injects seeded connection-level chaos before the
	// protocol handler runs: refused and reset connections, stalls past
	// the client deadline, truncated or garbled SERVERHELLOs, and
	// crash-after-N-connections. A nil plan serves every connection
	// normally. Same seed (and connection order) replays the same faults.
	Faults *faults.Plan

	mu       sync.Mutex
	ln       net.Listener
	crashed  atomic.Bool
	derCache []byte
}

// Serve accepts connections on ln until the listener is closed or the
// device "crashes". It blocks; run it in a goroutine.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	der, err := s.Cert.Marshal()
	if err != nil {
		s.mu.Unlock()
		return err
	}
	s.derCache = der
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.crashed.Load() {
				return nil // crash is an expected termination
			}
			return err
		}
		d := s.Faults.Next()
		if d.Crash {
			// Crash-after-N firmware: this connection is the device's
			// last. Abort it and stop accepting, like the heartbeat
			// crash path.
			s.crashed.Store(true)
			abortConn(conn)
			s.Close()
			return nil
		}
		if d.Action == faults.Pass {
			go s.handle(conn)
		} else {
			go s.injectFault(conn, d.Action)
		}
	}
}

// abortConn closes conn with an RST rather than an orderly FIN, so the
// peer observes a connection reset — what a crashing embedded stack
// produces.
func abortConn(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	conn.Close()
}

// injectFault serves one connection according to a fault decision
// instead of the real protocol handler.
func (s *Server) injectFault(conn net.Conn, a faults.Action) {
	if a == faults.Refuse {
		// Slam the door before reading anything: the client's dial
		// succeeds and its first read fails.
		abortConn(conn)
		return
	}
	defer conn.Close()
	r := bufio.NewReader(conn)
	if _, err := r.ReadString('\n'); err != nil {
		return
	}
	switch a {
	case faults.Reset:
		abortConn(conn)
	case faults.Stall:
		// Hold the connection open without answering until the client
		// gives up (its deadline) and closes; the discard read returns
		// on that close.
		io.Copy(io.Discard, r)
	case faults.Truncate:
		s.mu.Lock()
		der := s.derCache
		s.mu.Unlock()
		fmt.Fprintf(conn, "%s %d %s\n", msgServerHello, len(der), SuiteRSA)
		conn.Write(der[:len(der)/2])
	case faults.Garble:
		io.WriteString(conn, "SRVHELO ?garbled?\n")
	}
}

// Close stops the server.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln != nil {
		return s.ln.Close()
	}
	return nil
}

// Crashed reports whether a heartbeat probe has taken the device down.
func (s *Server) Crashed() bool { return s.crashed.Load() }

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	for {
		line, err := r.ReadString('\n')
		if err != nil {
			return
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == msgClientHello:
			suites := s.Suites
			if len(suites) == 0 {
				suites = []string{SuiteRSA, SuiteECDHE}
			}
			fmt.Fprintf(conn, "%s %d %s\n", msgServerHello, len(s.derCache), strings.Join(suites, ","))
			if _, err := conn.Write(s.derCache); err != nil {
				return
			}
		case strings.HasPrefix(line, msgHeartbeat+" "):
			if s.CrashOnHeartbeat {
				// The firmware falls over: drop this connection and stop
				// accepting new ones. The device disappears from
				// subsequent scans, which is precisely the population
				// effect visible after April 2014.
				s.crashed.Store(true)
				s.Close()
				return
			}
			n, err := strconv.Atoi(strings.TrimPrefix(line, msgHeartbeat+" "))
			if err != nil || n < 0 || n > 4096 {
				return
			}
			// A correct implementation echoes exactly the declared
			// length — no overread.
			payload := make([]byte, n)
			if _, err := io.ReadFull(r, payload); err != nil {
				return
			}
			fmt.Fprintf(conn, "%s %d\n", msgHeartbeatA, n)
			if _, err := conn.Write(payload); err != nil {
				return
			}
		default:
			return // unknown message: hang up, as embedded stacks do
		}
	}
}

// FetchCert performs the client side of the handshake over an established
// connection and returns the parsed certificate.
func FetchCert(conn io.ReadWriter) (*certs.Certificate, error) {
	c, _, err := FetchCertSuites(conn)
	return c, err
}

// FetchCertSuites is FetchCert plus the cipher-suite families the server
// advertised.
func FetchCertSuites(conn io.ReadWriter) (*certs.Certificate, []string, error) {
	if _, err := io.WriteString(conn, msgClientHello+"\n"); err != nil {
		return nil, nil, err
	}
	r := bufio.NewReader(conn)
	header, err := r.ReadString('\n')
	if err != nil {
		return nil, nil, err
	}
	header = strings.TrimRight(header, "\r\n")
	fields := strings.Fields(header)
	if len(fields) < 2 || fields[0] != msgServerHello {
		return nil, nil, fmt.Errorf("devices: unexpected server response %q", header)
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil || n <= 0 || n > maxCertLen {
		return nil, nil, errors.New("devices: bad certificate length")
	}
	var suites []string
	if len(fields) >= 3 {
		suites = strings.Split(fields[2], ",")
	}
	der := make([]byte, n)
	if _, err := io.ReadFull(r, der); err != nil {
		return nil, nil, err
	}
	c, err := certs.Parse(der)
	if err != nil {
		return nil, nil, err
	}
	return c, suites, nil
}

// RSAOnly reports whether a suite list contains RSA key exchange and no
// forward-secret alternative.
func RSAOnly(suites []string) bool {
	hasRSA, hasOther := false, false
	for _, s := range suites {
		if s == SuiteRSA {
			hasRSA = true
		} else if s != "" {
			hasOther = true
		}
	}
	return hasRSA && !hasOther
}

// ProbeHeartbeat sends a heartbeat with the given payload and reports
// whether the device answered correctly. An error or short read means the
// device dropped the connection (possibly crashing, as vulnerable
// firmware did when Heartbleed-scanned).
func ProbeHeartbeat(conn io.ReadWriter, payload []byte) error {
	if _, err := fmt.Fprintf(conn, "%s %d\n", msgHeartbeat, len(payload)); err != nil {
		return err
	}
	if _, err := conn.Write(payload); err != nil {
		return err
	}
	r := bufio.NewReader(conn)
	header, err := r.ReadString('\n')
	if err != nil {
		return err
	}
	header = strings.TrimRight(header, "\r\n")
	want := fmt.Sprintf("%s %d", msgHeartbeatA, len(payload))
	if header != want {
		return fmt.Errorf("devices: heartbeat response %q, want %q", header, want)
	}
	echo := make([]byte, len(payload))
	if _, err := io.ReadFull(r, echo); err != nil {
		return err
	}
	if string(echo) != string(payload) {
		return errors.New("devices: heartbeat echo mismatch")
	}
	return nil
}

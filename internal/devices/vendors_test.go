package devices

import "testing"

func TestRegistry37Notified(t *testing.T) {
	if got := len(Notified2012()); got != Notified2012Count {
		t.Errorf("notified vendors = %d, want %d", got, Notified2012Count)
	}
}

func TestRegistryFivePublicAdvisories(t *testing.T) {
	counts := CountByResponse()
	if counts[PublicAdvisory] != 5 {
		t.Errorf("public advisories = %d, want 5", counts[PublicAdvisory])
	}
	// "About half of the vendors acknowledged receipt" — advisories,
	// private and auto responses together.
	acked := counts[PublicAdvisory] + counts[PrivateResponse] + counts[AutoResponse]
	if acked < 14 || acked > 23 {
		t.Errorf("acknowledged = %d, want about half of 37", acked)
	}
}

func TestRegistryNoDuplicates(t *testing.T) {
	seen := make(map[string]bool)
	for _, v := range Registry {
		if seen[v.Name] {
			t.Errorf("duplicate vendor %q", v.Name)
		}
		seen[v.Name] = true
	}
}

func TestByName(t *testing.T) {
	v := ByName("Juniper")
	if v == nil || v.Response != PublicAdvisory || v.OpenSSL != OpenSSLNot {
		t.Errorf("Juniper entry wrong: %+v", v)
	}
	if ByName("Acme") != nil {
		t.Error("unknown vendor should be nil")
	}
}

func TestTLSAdvisoryVendors(t *testing.T) {
	// Only three vendors with HTTPS RSA vulnerabilities released a
	// public advisory and patch in 2012: Juniper, Innominate, IBM
	// (Section 5.3). Intel and Tropos advisories were SSH-only.
	var tlsAdvisories []string
	for _, v := range Registry {
		if v.Response == PublicAdvisory && !v.SSHOnly {
			tlsAdvisories = append(tlsAdvisories, v.Name)
		}
	}
	if len(tlsAdvisories) != 3 {
		t.Errorf("TLS advisories: %v, want Juniper/Innominate/IBM", tlsAdvisories)
	}
}

func TestOpenSSLClassifications(t *testing.T) {
	// Spot-check Table 5 membership.
	likely := []string{"Cisco", "HP", "IBM", "Innominate", "McAfee", "TP-LINK", "Thomson", "Fritz!Box", "Linksys", "D-Link", "Sangfor", "Schmid Telecom"}
	// Dell deviates from the paper's Table 5 here because the simulated
	// Dell population is the Xerox-stack Imaging line (see vendors.go).
	not := []string{"Juniper", "Fortinet", "Huawei", "Kronos", "Siemens", "Xerox", "ZyXEL", "Dell"}
	for _, name := range likely {
		if v := ByName(name); v == nil || v.OpenSSL != OpenSSLLikely {
			t.Errorf("%s should satisfy the OpenSSL fingerprint", name)
		}
	}
	for _, name := range not {
		if v := ByName(name); v == nil || v.OpenSSL != OpenSSLNot {
			t.Errorf("%s should not satisfy the OpenSSL fingerprint", name)
		}
	}
}

func TestStringers(t *testing.T) {
	if PublicAdvisory.String() != "public advisory" || NoResponse.String() != "no response" {
		t.Error("ResponseCategory strings wrong")
	}
	if ResponseCategory(99).String() == "" {
		t.Error("unknown category should stringify")
	}
	if OpenSSLLikely.String() == "" || OpenSSLNot.String() == "" || OpenSSLUnknown.String() == "" {
		t.Error("OpenSSLClass strings empty")
	}
	if KeyHealthy.String() != "healthy" || KeySharedPrime.String() != "shared-prime" || KeyClique.String() != "clique" {
		t.Error("KeyMode strings wrong")
	}
	if KeyMode(9).String() == "" {
		t.Error("unknown KeyMode should stringify")
	}
}

func TestProfiles(t *testing.T) {
	id := Identity{IP: "192.0.2.7", Serial: 1234, Model: "RV082"}

	if got := ProfileJuniper.Subject(id); got.CommonName != "system generated" || got.Organization != "" {
		t.Errorf("Juniper subject: %v", got)
	}
	if !ProfileJuniper.IdentifiedBySubject {
		t.Error("Juniper is identified by its distinctive CN")
	}

	cisco := ProfileCisco("RV082")
	if got := cisco.Subject(id); got.OrganizationalUnit != "RV082" {
		t.Errorf("Cisco OU should carry the model: %v", got)
	}

	if got := ProfileMcAfee.Subject(id); got.CommonName != "Default Common Name" {
		t.Errorf("McAfee subject: %v", got)
	}

	if ProfileIBM.IdentifiedBySubject {
		t.Error("IBM certificates carry no vendor info")
	}
	if ProfileIBM.VulnerableKeyMode != KeyClique {
		t.Error("IBM uses the clique failure")
	}

	fb := ProfileFritzBox
	sans := fb.DNSNames(id)
	found := false
	for _, s := range sans {
		if s == "fritz.box" {
			found = true
		}
	}
	if !found {
		t.Errorf("Fritz!Box SANs missing fritz.box: %v", sans)
	}
	if ProfileFritzBoxIPOnly.Subject(id).CommonName != "192.0.2.7" {
		t.Error("IP-only Fritz!Box subject should be the IP")
	}

	g := GenericProfile("ZyXEL", KeySharedPrime, 0)
	if g.Subject(id).Organization != "ZyXEL" {
		t.Error("generic profile should carry O=vendor")
	}
}

func TestCiscoModelsHaveEOL(t *testing.T) {
	if len(CiscoModels) != 5 {
		t.Errorf("Figure 7 tracks 5 model lines, have %d", len(CiscoModels))
	}
	for _, m := range CiscoModels {
		if m.EOL == "" {
			t.Errorf("model %s missing EOL month", m.Model)
		}
	}
}

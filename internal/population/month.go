// Package population simulates the device ecosystem the paper measured:
// per-vendor device populations evolving from July 2010 through April
// 2016, with deployment growth, churn, end-of-life decline, the
// Heartbleed shock of April 2014, vendor fixes reaching new products, and
// newly vulnerable product lines appearing after 2012.
//
// The simulator is the substitution (DESIGN.md §1) for the paper's
// internet-wide scan corpora: it produces real certificates over real RSA
// keys whose weakness structure matches the paper's failure modes, so the
// entire downstream pipeline — scanning, storage, batch GCD,
// fingerprinting, longitudinal analysis — runs unmodified, just at
// laptop scale. Target curves are parameterised from the numbers and
// figure shapes the paper reports; per-vendor scale factors are recorded
// in EXPERIMENTS.md.
package population

import (
	"fmt"
	"time"
)

// Month indexes the simulation timeline: 0 is July 2010, the EFF SSL
// Observatory's first scan; the timeline ends April 2016, the latest
// Censys scan in the study.
type Month int

// Timeline bounds.
const (
	// StartYear/StartMonth anchor Month 0.
	StartYear  = 2010
	StartMonth = time.July
	// Months is the timeline length: July 2010 .. April 2016 inclusive.
	Months = 70
)

// MonthOf converts a calendar year/month to a timeline index.
func MonthOf(year int, month time.Month) Month {
	return Month((year-StartYear)*12 + int(month) - int(StartMonth))
}

// ParseMonth parses "YYYY-MM" into a timeline index.
func ParseMonth(s string) (Month, error) {
	t, err := time.Parse("2006-01", s)
	if err != nil {
		return 0, fmt.Errorf("population: bad month %q: %w", s, err)
	}
	return MonthOf(t.Year(), t.Month()), nil
}

// MustMonth is ParseMonth for static tables; it panics on bad input.
func MustMonth(s string) Month {
	m, err := ParseMonth(s)
	if err != nil {
		panic(err)
	}
	return m
}

// Time returns the scan instant for the month: the 15th, the mid-month
// representative scan the study selects when sources scanned more often.
func (m Month) Time() time.Time {
	y := StartYear + (int(StartMonth)-1+int(m))/12
	mo := time.Month((int(StartMonth)-1+int(m))%12 + 1)
	return time.Date(y, mo, 15, 0, 0, 0, 0, time.UTC)
}

// String renders "YYYY-MM".
func (m Month) String() string {
	return m.Time().Format("2006-01")
}

// Valid reports whether the month lies on the study timeline.
func (m Month) Valid() bool { return m >= 0 && m < Months }

// Well-known events on the timeline.
var (
	// Disclosure is the 2012 vendor notification window's start.
	Disclosure = MustMonth("2012-02")
	// Heartbleed is the Heartbleed disclosure (April 2014), the single
	// largest drop in vulnerable keys in the dataset.
	Heartbleed = MustMonth("2014-04")
	// LinuxPatch is the kernel RNG mitigation (July 2012).
	LinuxPatch = MustMonth("2012-07")
	// Getrandom is the getrandom(2) introduction (July 2014).
	Getrandom = MustMonth("2014-07")
)

package population

import (
	"math/big"
	"testing"

	"github.com/factorable/weakkeys/internal/numtheory"
	"github.com/factorable/weakkeys/internal/weakrsa"
)

func TestHealthyKeysDistinct(t *testing.T) {
	f := NewKeyFactory(1, 128)
	seen := make(map[string]bool)
	var primes []*big.Int
	for i := 0; i < 10; i++ {
		k, err := f.Healthy()
		if err != nil {
			t.Fatal(err)
		}
		if err := k.Validate(); err != nil {
			t.Fatal(err)
		}
		if k.N.BitLen() != 128 {
			t.Errorf("modulus %d bits", k.N.BitLen())
		}
		if seen[k.N.String()] {
			t.Error("healthy keys must be distinct")
		}
		seen[k.N.String()] = true
		primes = append(primes, k.P, k.Q)
	}
	// No shared primes anywhere.
	for i := range primes {
		for j := i + 1; j < len(primes); j++ {
			if primes[i].Cmp(primes[j]) == 0 {
				t.Fatal("healthy primes collided")
			}
		}
	}
}

func TestSharedPrimeCohorts(t *testing.T) {
	f := NewKeyFactory(2, 128)
	var keys []*weakrsa.PrivateKey
	for i := 0; i < 12; i++ {
		k, err := f.SharedPrime("VendorA", weakrsa.PrimeNaive)
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	// Count distinct first primes: cohort sizes are 2..6, so 12 keys
	// need between 2 and 6 cohorts.
	firsts := make(map[string]int)
	for _, k := range keys {
		firsts[k.P.String()]++
	}
	if len(firsts) < 2 || len(firsts) > 6 {
		t.Errorf("cohort count = %d for 12 keys", len(firsts))
	}
	for p, n := range firsts {
		if n > 6 {
			t.Errorf("cohort %s... has %d members, max 6", p[:8], n)
		}
	}
	// All moduli distinct, and every cohort-mate pair shares exactly the
	// first prime (gcd = P).
	for i := range keys {
		for j := i + 1; j < len(keys); j++ {
			if keys[i].N.Cmp(keys[j].N) == 0 {
				t.Fatal("duplicate shared-prime modulus")
			}
			g := new(big.Int).GCD(nil, nil, keys[i].N, keys[j].N)
			if keys[i].P.Cmp(keys[j].P) == 0 {
				if g.Cmp(keys[i].P) != 0 {
					t.Error("cohort mates should share exactly P")
				}
			} else if g.Cmp(big.NewInt(1)) != 0 {
				t.Error("non-mates should be coprime")
			}
		}
	}
}

func TestSharedPrimePoolsIndependent(t *testing.T) {
	f := NewKeyFactory(3, 128)
	a, err := f.SharedPrime("A", weakrsa.PrimeNaive)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.SharedPrime("B", weakrsa.PrimeNaive)
	if err != nil {
		t.Fatal(err)
	}
	if a.P.Cmp(b.P) == 0 {
		t.Error("different pools must not share primes")
	}
}

func TestSharedPrimeCrossVendorPool(t *testing.T) {
	// The Dell/Xerox overlap: two callers naming the same pool share
	// prime material.
	f := NewKeyFactory(4, 128)
	a, _ := f.SharedPrime("Xerox", weakrsa.PrimeNaive)
	b, _ := f.SharedPrime("Xerox", weakrsa.PrimeNaive)
	if a.P.Cmp(b.P) != 0 {
		t.Error("same pool should share the cohort prime")
	}
}

func TestSharedPrimeStyleRespected(t *testing.T) {
	f := NewKeyFactory(5, 128)
	k, err := f.SharedPrime("ssl-vendor", weakrsa.PrimeOpenSSL)
	if err != nil {
		t.Fatal(err)
	}
	if !numtheory.SatisfiesOpenSSLProperty(k.P) || !numtheory.SatisfiesOpenSSLProperty(k.Q) {
		t.Error("OpenSSL-style pool must satisfy the fingerprint")
	}
}

func TestCliqueKeyBounded(t *testing.T) {
	f := NewKeyFactory(6, 128)
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		k, err := f.CliqueKey("IBM", weakrsa.PrimeNaive)
		if err != nil {
			t.Fatal(err)
		}
		seen[k.N.String()] = true
	}
	if len(seen) > weakrsa.IBMCliqueKeys {
		t.Errorf("%d distinct clique keys, max %d", len(seen), weakrsa.IBMCliqueKeys)
	}
	if len(seen) < 10 {
		t.Errorf("only %d distinct clique keys from 100 draws", len(seen))
	}
	if f.Clique("IBM") == nil {
		t.Error("clique should be exposed after first draw")
	}
	if f.Clique("nope") != nil {
		t.Error("unknown clique should be nil")
	}
}

func TestFactoryDeterminism(t *testing.T) {
	a, b := NewKeyFactory(7, 128), NewKeyFactory(7, 128)
	ka, err := a.Healthy()
	if err != nil {
		t.Fatal(err)
	}
	kb, err := b.Healthy()
	if err != nil {
		t.Fatal(err)
	}
	if ka.N.Cmp(kb.N) != 0 {
		t.Error("same seed must reproduce the same keys")
	}
	if a.Bits() != 128 {
		t.Error("Bits accessor wrong")
	}
}

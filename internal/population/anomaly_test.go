package population

import (
	"context"
	"testing"

	"github.com/factorable/weakkeys/internal/anomaly"
	"github.com/factorable/weakkeys/internal/devices"
	"github.com/factorable/weakkeys/internal/numtheory"
	"github.com/factorable/weakkeys/internal/scanstore"
	"github.com/factorable/weakkeys/internal/weakrsa"
)

func TestKeyFactoryAnomalyModes(t *testing.T) {
	f := NewKeyFactory(21, 128)

	cp, err := f.ClosePrimeKey(weakrsa.PrimeNaive)
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := numtheory.FermatFactor(cp.N, anomaly.DefaultFermatSteps); p == nil {
		t.Error("close-prime key out of Fermat reach")
	}

	sf, err := f.SmallFactorKey(weakrsa.PrimeNaive)
	if err != nil {
		t.Fatal(err)
	}
	if sf.P.BitLen() > weakrsa.SmallFactorBits {
		t.Errorf("small factor is %d bits", sf.P.BitLen())
	}

	ue, err := f.UnsafeExponentKey(weakrsa.PrimeNaive, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ue.E != 1 {
		t.Errorf("E = %d, want 1", ue.E)
	}

	a, err := f.SharedModulusKey("fw-a", weakrsa.PrimeNaive)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.SharedModulusKey("fw-a", weakrsa.PrimeNaive)
	if err != nil {
		t.Fatal(err)
	}
	if a.N.Cmp(b.N) != 0 {
		t.Error("same group must serve one modulus")
	}
	c, err := f.SharedModulusKey("fw-b", weakrsa.PrimeNaive)
	if err != nil {
		t.Fatal(err)
	}
	if a.N.Cmp(c.N) == 0 {
		t.Error("distinct groups collided")
	}
}

// TestAnomalyLinesProduceAnomalousCorpus runs a tiny simulation over the
// anomaly ecosystem and checks the analysis pass finds every class.
func TestAnomalyLinesProduceAnomalousCorpus(t *testing.T) {
	sim, err := New(Config{Seed: 33, KeyBits: 128, Lines: AnomalyLines()})
	if err != nil {
		t.Fatal(err)
	}
	store := scanstore.New()
	if err := sim.Run(context.Background(), store); err != nil {
		t.Fatal(err)
	}
	rep, err := anomaly.Analyze(context.Background(), anomaly.Config{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FermatWeakCount == 0 {
		t.Error("no Fermat-weak moduli in the anomaly ecosystem")
	}
	if rep.SmallFactorCount == 0 {
		t.Error("no small-factor moduli")
	}
	if rep.SharedCount == 0 {
		t.Error("no shared moduli")
	}
	if rep.Exponents.Classes[anomaly.ExponentOne] == 0 {
		t.Errorf("no e=1 certificates; census %v", rep.Exponents.Classes)
	}
	modes := map[devices.KeyMode]bool{}
	for _, l := range AnomalyLines() {
		modes[l.Profile.VulnerableKeyMode] = true
	}
	for _, m := range []devices.KeyMode{devices.KeyClosePrimes, devices.KeySmallFactor,
		devices.KeyUnsafeExponent, devices.KeySharedModulus} {
		if !modes[m] {
			t.Errorf("AnomalyLines missing mode %v", m)
		}
	}
}

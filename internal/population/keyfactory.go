package population

import (
	"fmt"
	"math/big"
	"math/rand"

	"github.com/factorable/weakkeys/internal/numtheory"
	"github.com/factorable/weakkeys/internal/weakrsa"
)

// KeyFactory hands out RSA keys to simulated devices. It implements the
// three key-generation outcomes the ecosystem exhibits:
//
//   - healthy keys: fresh unique primes, never factorable;
//   - shared-prime keys: drawn from named pools, where devices join
//     "boot cohorts" that share their first prime (the entropy-hole
//     failure). Pool names let distinct vendors share prime material —
//     the Dell Imaging / Xerox overlap (Section 3.3.2) uses one pool;
//   - clique keys: drawn from a named tiny prime pool à la IBM, where
//     whole keys (not just primes) collide across devices.
//
// The factory is deterministic given its seed.
type KeyFactory struct {
	bits int
	rng  *rand.Rand

	cohorts map[string]*cohort
	cliques map[string]*cliqueState
	shared  map[string]*weakrsa.SharedModulusGroup
}

type cohort struct {
	prime   *big.Int
	gen     weakrsa.PrimeGen
	members int
	size    int // cohort closes when members == size
}

type cliqueState struct {
	clique *weakrsa.Clique
	draws  int
}

// NewKeyFactory returns a factory producing keys with the given modulus
// size. Sizes of 256 bits keep the full-study pipeline fast; all
// algorithms are size-agnostic.
func NewKeyFactory(seed int64, bits int) *KeyFactory {
	return &KeyFactory{
		bits:    bits,
		rng:     rand.New(rand.NewSource(seed)),
		cohorts: make(map[string]*cohort),
		cliques: make(map[string]*cliqueState),
		shared:  make(map[string]*weakrsa.SharedModulusGroup),
	}
}

// Bits returns the modulus size the factory produces.
func (f *KeyFactory) Bits() int { return f.bits }

func (f *KeyFactory) prime(gen weakrsa.PrimeGen) (*big.Int, error) {
	switch gen {
	case weakrsa.PrimeOpenSSL:
		return numtheory.GenPrimeOpenSSL(f.rng, f.bits/2)
	default:
		return numtheory.GenPrimeNaive(f.rng, f.bits/2)
	}
}

func assemble(p, q *big.Int, e int) (*weakrsa.PrivateKey, error) {
	if p.Cmp(q) == 0 {
		return nil, fmt.Errorf("population: degenerate p == q")
	}
	pm := new(big.Int).Sub(p, big.NewInt(1))
	qm := new(big.Int).Sub(q, big.NewInt(1))
	phi := new(big.Int).Mul(pm, qm)
	d := new(big.Int).ModInverse(big.NewInt(int64(e)), phi)
	if d == nil {
		return nil, fmt.Errorf("population: gcd(e, phi) != 1")
	}
	return &weakrsa.PrivateKey{
		PublicKey: weakrsa.PublicKey{N: new(big.Int).Mul(p, q), E: e},
		D:         d, P: new(big.Int).Set(p), Q: new(big.Int).Set(q),
	}, nil
}

// Healthy returns a key with two fresh primes. Healthy keys always use
// naive generation: their primes are never factored, so the OpenSSL
// fingerprint (which requires the private key via factoring) cannot see
// them — exactly the paper's observation that the fingerprint "only
// covers models generating vulnerable keys".
func (f *KeyFactory) Healthy() (*weakrsa.PrivateKey, error) {
	for attempt := 0; attempt < 16; attempt++ {
		p, err := f.prime(weakrsa.PrimeNaive)
		if err != nil {
			return nil, err
		}
		q, err := f.prime(weakrsa.PrimeNaive)
		if err != nil {
			return nil, err
		}
		k, err := assemble(p, q, weakrsa.DefaultExponent)
		if err != nil {
			continue
		}
		if k.N.BitLen() != f.bits {
			continue
		}
		return k, nil
	}
	return nil, fmt.Errorf("population: healthy key generation failed")
}

// SharedPrime returns a key whose first prime is the named pool's current
// cohort prime, generated with the pool's prime style. Cohort sizes are
// drawn uniformly from [2,6]; when a cohort fills, the next call opens a
// new one. Every key from the same cohort shares its first prime, so the
// batch GCD factors all of them once two or more exist.
func (f *KeyFactory) SharedPrime(pool string, gen weakrsa.PrimeGen) (*weakrsa.PrivateKey, error) {
	c := f.cohorts[pool]
	if c == nil || c.members >= c.size {
		prime, err := f.prime(gen)
		if err != nil {
			return nil, err
		}
		c = &cohort{prime: prime, gen: gen, size: 2 + f.rng.Intn(5)}
		f.cohorts[pool] = c
	}
	for attempt := 0; attempt < 16; attempt++ {
		q, err := f.prime(c.gen)
		if err != nil {
			return nil, err
		}
		k, err := assemble(c.prime, q, weakrsa.DefaultExponent)
		if err != nil {
			continue
		}
		if k.N.BitLen() != f.bits {
			continue
		}
		c.members++
		return k, nil
	}
	return nil, fmt.Errorf("population: shared-prime key generation failed for pool %q", pool)
}

// CliqueKey draws a key from the named clique (created on first use with
// weakrsa.IBMCliquePrimes primes in the given generation style). Draws
// cycle pseudo-randomly through the clique's finite key set, so whole-key
// collisions across devices are the norm — the IBM failure.
func (f *KeyFactory) CliqueKey(name string, gen weakrsa.PrimeGen) (*weakrsa.PrivateKey, error) {
	cs := f.cliques[name]
	if cs == nil {
		cl, err := weakrsa.NewClique([]byte("clique:"+name), weakrsa.IBMCliquePrimes, f.bits, gen)
		if err != nil {
			return nil, err
		}
		cs = &cliqueState{clique: cl}
		f.cliques[name] = cs
	}
	cs.draws++
	return cs.clique.Key(f.rng.Intn(cs.clique.KeyCount()))
}

// ClosePrimeKey returns a key whose primes were drawn from one narrow
// window (weakrsa.GenerateClosePrimes): Fermat-factorable, but invisible
// to batch GCD because no prime is shared with any other key.
func (f *KeyFactory) ClosePrimeKey(gen weakrsa.PrimeGen) (*weakrsa.PrivateKey, error) {
	return weakrsa.GenerateClosePrimes(f.rng, weakrsa.Options{Bits: f.bits, PrimeGen: gen})
}

// SmallFactorKey returns a key whose first prime is tiny — the
// broken-primality-test flaw; trial division splits it immediately.
func (f *KeyFactory) SmallFactorKey(gen weakrsa.PrimeGen) (*weakrsa.PrivateKey, error) {
	return weakrsa.GenerateSmallFactor(f.rng, weakrsa.Options{Bits: f.bits, PrimeGen: gen}, 0)
}

// UnsafeExponentKey returns an honest modulus carrying the given broken
// public exponent (e = 1, even e, or a tiny unsafe e).
func (f *KeyFactory) UnsafeExponentKey(gen weakrsa.PrimeGen, e int) (*weakrsa.PrivateKey, error) {
	return weakrsa.GenerateUnsafeExponent(f.rng, weakrsa.Options{Bits: f.bits, PrimeGen: gen}, e)
}

// SharedModulusKey returns the named firmware group's single baked-in
// keypair: every device of the group serves the identical modulus.
func (f *KeyFactory) SharedModulusKey(name string, gen weakrsa.PrimeGen) (*weakrsa.PrivateKey, error) {
	g := f.shared[name]
	if g == nil {
		var err error
		g, err = weakrsa.NewSharedModulusGroup([]byte("firmware:"+name), f.bits, gen)
		if err != nil {
			return nil, err
		}
		f.shared[name] = g
	}
	return g.Key(), nil
}

// Clique exposes the named clique's generator (nil if never drawn from),
// so experiments can enumerate the ground-truth prime pool.
func (f *KeyFactory) Clique(name string) *weakrsa.Clique {
	if cs := f.cliques[name]; cs != nil {
		return cs.clique
	}
	return nil
}

package population

import (
	"fmt"
	"sort"
)

// Point is a control point: the target population value at a month.
type Point struct {
	M Month
	V float64
}

// Curve is a piecewise-linear target-population curve in "paper units"
// (hosts as printed in the paper's figures). Evaluation clamps to the
// first/last point outside the control range. Curves encode the figure
// shapes — growth, end-of-life decline, the Heartbleed cliff — directly
// from the paper's plots.
type Curve []Point

// C builds a curve from "YYYY-MM", value pairs; it panics on malformed
// input (curves are static tables) and keeps points sorted.
func C(pairs ...any) Curve {
	if len(pairs)%2 != 0 {
		panic("population: C needs month/value pairs")
	}
	out := make(Curve, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		m := MustMonth(pairs[i].(string))
		var v float64
		switch x := pairs[i+1].(type) {
		case int:
			v = float64(x)
		case float64:
			v = x
		default:
			panic(fmt.Sprintf("population: bad curve value %T", pairs[i+1]))
		}
		out = append(out, Point{M: m, V: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].M < out[j].M })
	return out
}

// Eval returns the interpolated target at month m.
func (c Curve) Eval(m Month) float64 {
	if len(c) == 0 {
		return 0
	}
	if m <= c[0].M {
		return c[0].V
	}
	if m >= c[len(c)-1].M {
		return c[len(c)-1].V
	}
	i := sort.Search(len(c), func(i int) bool { return c[i].M >= m })
	lo, hi := c[i-1], c[i]
	frac := float64(m-lo.M) / float64(hi.M-lo.M)
	return lo.V + frac*(hi.V-lo.V)
}

// Peak returns the maximum control value.
func (c Curve) Peak() float64 {
	max := 0.0
	for _, p := range c {
		if p.V > max {
			max = p.V
		}
	}
	return max
}

// Scale returns a copy with all values multiplied by f.
func (c Curve) Scale(f float64) Curve {
	out := make(Curve, len(c))
	for i, p := range c {
		out[i] = Point{M: p.M, V: p.V * f}
	}
	return out
}

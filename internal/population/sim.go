package population

import (
	"context"
	"fmt"
	"math/big"
	"math/rand"
	"time"

	"github.com/factorable/weakkeys/internal/certs"
	"github.com/factorable/weakkeys/internal/devices"
	"github.com/factorable/weakkeys/internal/scanstore"
	"github.com/factorable/weakkeys/internal/telemetry"
	"github.com/factorable/weakkeys/internal/weakrsa"
)

// Config parameterises a simulation run.
type Config struct {
	// Seed makes the whole ecosystem reproducible.
	Seed int64
	// KeyBits is the RSA modulus size (default 256; see DESIGN.md on the
	// downscaling substitution).
	KeyBits int
	// Scale multiplies every population curve (default 1.0). Tests use
	// small scales; the full study uses 1.0.
	Scale float64
	// Lines is the vendor ecosystem; DefaultDynamics() if nil.
	Lines []Line
	// MITMRate is the per-device probability of sitting behind the
	// key-substituting ISP middlebox (Internet Rimon, Section 3.3.3).
	MITMRate float64
	// BitErrorRate is the per-observation probability that the recorded
	// certificate suffers a single-bit modulus corruption in
	// transmission or storage (Section 3.3.5).
	BitErrorRate float64
	// OtherProtocols adds the SSH and mail-protocol key populations of
	// Table 4 to the corpus.
	OtherProtocols bool
	// IPReuse is the probability a newly deployed device takes over an
	// address a retired device freed, rather than a fresh one. IP churn
	// is what made certificate transitions ambiguous in the paper's
	// IBM analysis ("the varying subjects of these new certificates
	// indicated that these new certificates were due to IP churn").
	IPReuse float64
	// Progress, when set, is called after each simulated month with the
	// number of months completed and the total. Calls are synchronous on
	// the simulating goroutine.
	Progress func(done, total int)
	// Metrics, when set, receives live harvest telemetry: the
	// population_months_done / population_devices_alive gauges, the
	// population_observations_total counter, the per-month
	// population_month_seconds histogram and the
	// population_sim_hosts_per_sec rate gauge — per-month simulation
	// rates observable while a long harvest runs.
	Metrics *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.KeyBits == 0 {
		c.KeyBits = 256
	}
	if c.Scale == 0 {
		c.Scale = 1.0
	}
	if c.Lines == nil {
		c.Lines = DefaultDynamics()
	}
	return c
}

// Device is one simulated network device (or, after churn, one device
// incarnation: a fresh IP and certificate).
type Device struct {
	ID         int64
	IP         string
	LineIdx    int
	Vulnerable bool
	BehindMITM bool
	// RSAOnly marks devices supporting only RSA key exchange.
	RSAOnly  bool
	Key      *weakrsa.PrivateKey
	Cert     *certs.Certificate
	Deployed Month
	Retired  Month // -1 while alive
}

// Truth is the ground-truth label for one distinct certificate, used to
// score the fingerprint pipeline.
type Truth struct {
	Vendor     string
	Model      string
	Vulnerable bool
	LineIdx    int
	BehindMITM bool
}

// Series is a per-line ground-truth population time series.
type Series struct {
	Total [Months]int
	Vuln  [Months]int
}

// Simulation evolves the ecosystem month by month and emits scan
// observations.
type Simulation struct {
	cfg     Config
	rng     *rand.Rand
	factory *KeyFactory

	alive   [][]*Device // per line
	nextID  int64
	series  []Series
	truth   map[[32]byte]Truth
	mitmKey *weakrsa.PrivateKey
	freeIPs []string
	// caCerts holds per-line vendor device-CA certificates (lazy).
	caCerts map[int]*caIdentity

	// sshPool tracks the Table 4 SSH host-key population.
	sshHealthy []*big.Int
	sshVuln    []*big.Int
	mailKeys   map[scanstore.Protocol][]*big.Int
}

// New creates a simulation.
func New(cfg Config) (*Simulation, error) {
	c := cfg.withDefaults()
	s := &Simulation{
		cfg:     c,
		rng:     rand.New(rand.NewSource(c.Seed)),
		factory: NewKeyFactory(c.Seed+1, c.KeyBits),
		alive:   make([][]*Device, len(c.Lines)),
		series:  make([]Series, len(c.Lines)),
		truth:   make(map[[32]byte]Truth),
		caCerts: make(map[int]*caIdentity),
	}
	if c.MITMRate > 0 {
		k, err := s.factory.Healthy()
		if err != nil {
			return nil, err
		}
		s.mitmKey = k
	}
	return s, nil
}

// Factory exposes the key factory (for ground-truth access to cliques).
func (s *Simulation) Factory() *KeyFactory { return s.factory }

// MITMModulus returns the middlebox's substituted modulus, or nil.
func (s *Simulation) MITMModulus() *big.Int {
	if s.mitmKey == nil {
		return nil
	}
	return s.mitmKey.N
}

// TruthByFP returns ground-truth labels keyed by certificate fingerprint.
func (s *Simulation) TruthByFP() map[[32]byte]Truth { return s.truth }

// TruthSeries returns the ground-truth population series for a line.
func (s *Simulation) TruthSeries(line int) Series { return s.series[line] }

// Lines returns the configured ecosystem.
func (s *Simulation) Lines() []Line { return s.cfg.Lines }

func (s *Simulation) newIP() string {
	if len(s.freeIPs) > 0 && s.rng.Float64() < s.cfg.IPReuse {
		ip := s.freeIPs[len(s.freeIPs)-1]
		s.freeIPs = s.freeIPs[:len(s.freeIPs)-1]
		return ip
	}
	id := s.nextID
	return fmt.Sprintf("10.%d.%d.%d", (id>>16)&0xFF, (id>>8)&0xFF, id&0xFF)
}

// retire takes a device offline and returns its address to the pool.
func (s *Simulation) retire(d *Device, m Month) {
	d.Retired = m
	s.freeIPs = append(s.freeIPs, d.IP)
}

// deploy creates a device for a line in the given vulnerability class.
func (s *Simulation) deploy(lineIdx int, vulnerable bool, m Month) (*Device, error) {
	s.nextID++
	d := &Device{
		ID:         s.nextID,
		IP:         s.newIP(),
		LineIdx:    lineIdx,
		Vulnerable: vulnerable,
		Deployed:   m,
		Retired:    -1,
	}
	if s.cfg.MITMRate > 0 && s.rng.Float64() < s.cfg.MITMRate {
		d.BehindMITM = true
	}
	d.RSAOnly = s.rng.Float64() < s.cfg.Lines[lineIdx].rsaOnlyShare()
	if err := s.issueKeyAndCert(d, m); err != nil {
		return nil, err
	}
	s.alive[lineIdx] = append(s.alive[lineIdx], d)
	return d, nil
}

// caIdentity is a vendor device CA: its certificate and signing key.
type caIdentity struct {
	cert *certs.Certificate
	key  *weakrsa.PrivateKey
}

// caFor lazily creates the device CA for a line.
func (s *Simulation) caFor(lineIdx int) (*caIdentity, error) {
	if ca, ok := s.caCerts[lineIdx]; ok {
		return ca, nil
	}
	line := &s.cfg.Lines[lineIdx]
	key, err := s.factory.Healthy()
	if err != nil {
		return nil, err
	}
	name := certs.Name{
		CommonName:   line.Profile.Vendor + " Device CA",
		Organization: line.Profile.Vendor,
	}
	cert, err := certs.SelfSigned(big.NewInt(-(int64(lineIdx) + 1)), name,
		Month(0).Time().AddDate(-5, 0, 0), Month(0).Time().AddDate(20, 0, 0),
		nil, key.N, key.E, key.D)
	if err != nil {
		return nil, err
	}
	ca := &caIdentity{cert: cert, key: key}
	s.caCerts[lineIdx] = ca
	return ca, nil
}

// CACert exposes a line's device-CA certificate (nil when the line
// self-signs), for tests.
func (s *Simulation) CACert(lineIdx int) *certs.Certificate {
	if ca, ok := s.caCerts[lineIdx]; ok {
		return ca.cert
	}
	return nil
}

// issueKeyAndCert draws a key of the device's class and builds its
// certificate, registering ground truth.
func (s *Simulation) issueKeyAndCert(d *Device, m Month) error {
	line := &s.cfg.Lines[d.LineIdx]
	var key *weakrsa.PrivateKey
	var err error
	if d.Vulnerable {
		switch line.Profile.VulnerableKeyMode {
		case devices.KeyClique:
			key, err = s.factory.CliqueKey(line.cliqueName(), line.Profile.PrimeGen)
		case devices.KeySharedPrime:
			key, err = s.factory.SharedPrime(line.pool(), line.Profile.PrimeGen)
		case devices.KeyClosePrimes:
			key, err = s.factory.ClosePrimeKey(line.Profile.PrimeGen)
		case devices.KeySmallFactor:
			key, err = s.factory.SmallFactorKey(line.Profile.PrimeGen)
		case devices.KeyUnsafeExponent:
			key, err = s.factory.UnsafeExponentKey(line.Profile.PrimeGen, line.unsafeExponent())
		case devices.KeySharedModulus:
			key, err = s.factory.SharedModulusKey(line.pool(), line.Profile.PrimeGen)
		default:
			return fmt.Errorf("population: line %d marked vulnerable with healthy key mode", d.LineIdx)
		}
	} else {
		key, err = s.factory.Healthy()
	}
	if err != nil {
		return err
	}
	d.Key = key

	id := devices.Identity{IP: d.IP, Serial: d.ID, Model: line.Profile.Model}
	var sans []string
	if line.Profile.DNSNames != nil {
		sans = line.Profile.DNSNames(id)
	}
	nb := m.Time()
	var cert *certs.Certificate
	if line.DeviceCA {
		ca, err := s.caFor(d.LineIdx)
		if err != nil {
			return err
		}
		cert = &certs.Certificate{
			SerialNumber: big.NewInt(d.ID),
			Subject:      line.Profile.Subject(id),
			Issuer:       ca.cert.Subject,
			NotBefore:    nb,
			NotAfter:     nb.AddDate(10, 0, 0),
			DNSNames:     sans,
			N:            key.N,
			E:            key.E,
		}
		if err := cert.SignWith(ca.key.N, ca.key.D); err != nil {
			return err
		}
	} else {
		var err error
		cert, err = certs.SelfSigned(big.NewInt(d.ID), line.Profile.Subject(id),
			nb, nb.AddDate(10, 0, 0), sans, key.N, key.E, key.D)
		if err != nil {
			return err
		}
	}
	d.Cert = cert
	fp, err := cert.Fingerprint()
	if err != nil {
		return err
	}
	s.truth[fp] = Truth{
		Vendor:     line.Profile.Vendor,
		Model:      line.Profile.Model,
		Vulnerable: d.Vulnerable,
		LineIdx:    d.LineIdx,
		BehindMITM: d.BehindMITM,
	}
	return nil
}

// step advances one line by one month: churn, class flips, then target
// tracking.
func (s *Simulation) step(lineIdx int, m Month) error {
	line := &s.cfg.Lines[lineIdx]
	cur := s.alive[lineIdx]

	// Churn: replace devices (new IP, new cert, same class). Deploys
	// append to s.alive[lineIdx]; iterate over the pre-churn snapshot.
	// Deploy before retiring so the replacement never lands on the IP
	// being vacated this very month.
	for _, d := range cur {
		if line.Churn > 0 && s.rng.Float64() < line.Churn {
			if _, err := s.deploy(lineIdx, d.Vulnerable, m); err != nil {
				return err
			}
			s.retire(d, m)
		}
	}
	s.alive[lineIdx] = compactAlive(s.alive[lineIdx])
	cur = s.alive[lineIdx]

	// Flips: regenerate the certificate into the other class, keeping
	// the IP (the Juniper vuln<->safe transitions).
	for _, d := range cur {
		var p float64
		if d.Vulnerable {
			p = line.FlipVulnToSafe
		} else {
			p = line.FlipSafeToVuln
		}
		if p > 0 && s.rng.Float64() < p {
			d.Vulnerable = !d.Vulnerable
			if err := s.issueKeyAndCert(d, m); err != nil {
				return err
			}
		}
	}

	// Track targets.
	targetV := int(line.Vuln.Eval(m)*s.cfg.Scale + 0.5)
	targetT := int(line.Total.Eval(m)*s.cfg.Scale + 0.5)
	if targetV > targetT {
		targetV = targetT
	}
	targetS := targetT - targetV
	var haveV, haveS int
	for _, d := range cur {
		if d.Vulnerable {
			haveV++
		} else {
			haveS++
		}
	}
	adjust := func(have, want int, vulnerable bool) error {
		for have < want {
			if _, err := s.deploy(lineIdx, vulnerable, m); err != nil {
				return err
			}
			have++
		}
		if have > want {
			// Retire the oldest devices of the class first: real
			// population declines shed the long-deployed units.
			for _, d := range s.alive[lineIdx] {
				if have <= want {
					break
				}
				if d.Retired < 0 && d.Vulnerable == vulnerable {
					s.retire(d, m)
					have--
				}
			}
		}
		return nil
	}
	if err := adjust(haveV, targetV, true); err != nil {
		return err
	}
	if err := adjust(haveS, targetS, false); err != nil {
		return err
	}
	s.alive[lineIdx] = compactAlive(s.alive[lineIdx])

	// Record ground truth series.
	var tv, tt int
	for _, d := range s.alive[lineIdx] {
		tt++
		if d.Vulnerable {
			tv++
		}
	}
	s.series[lineIdx].Total[m] = tt
	s.series[lineIdx].Vuln[m] = tv
	return nil
}

func compactAlive(in []*Device) []*Device {
	out := in[:0]
	for _, d := range in {
		if d.Retired < 0 {
			out = append(out, d)
		}
	}
	return out
}

// SourceFor returns the scan source active in a month, mirroring the
// study's source eras (Section 3.1), and whether any scan ran that month.
// The EFF observatory scanned twice (07/2010, 12/2010); P&Q once
// (10/2011); Ecosystem monthly 06/2012-01/2014; Rapid7 through 06/2015;
// Censys through 04/2016. Months between eras have no scan — the gaps
// visible in Figure 1.
func SourceFor(m Month) (scanstore.Source, bool) {
	switch {
	case m == MustMonth("2010-07") || m == MustMonth("2010-12"):
		return scanstore.SourceEFF, true
	case m == MustMonth("2011-10"):
		return scanstore.SourcePQ, true
	case m >= MustMonth("2012-06") && m <= MustMonth("2014-01"):
		return scanstore.SourceEcosystem, true
	case m >= MustMonth("2014-02") && m <= MustMonth("2015-06"):
		return scanstore.SourceRapid7, true
	case m >= MustMonth("2015-07") && m <= MustMonth("2016-04"):
		return scanstore.SourceCensys, true
	default:
		return "", false
	}
}

// Coverage is the fraction of alive hosts a source's methodology actually
// observes; the differences reproduce the between-era level shifts in
// Figure 1 ("artifacts from the different scan methodologies used by each
// team are clearly visible").
func Coverage(src scanstore.Source) float64 {
	switch src {
	case scanstore.SourceEFF:
		return 0.70
	case scanstore.SourcePQ:
		return 0.78
	case scanstore.SourceEcosystem:
		return 0.92
	case scanstore.SourceRapid7:
		// Close to Ecosystem's: a wider gap would manufacture an
		// era-boundary drop in the vulnerable series large enough to
		// compete with the genuine Heartbleed cliff two months later.
		return 0.90
	case scanstore.SourceCensys:
		return 0.98
	default:
		return 1.0
	}
}

// Run simulates the full timeline, writing observations into store. The
// context is checked once per simulated month, so cancelling aborts a
// long harvest between months with an error wrapping the context's.
func (s *Simulation) Run(ctx context.Context, store *scanstore.Store) error {
	if s.cfg.OtherProtocols {
		if err := s.buildOtherProtocolKeys(); err != nil {
			return err
		}
	}
	reg := s.cfg.Metrics
	monthsDone := reg.Gauge("population_months_done")
	aliveGauge := reg.Gauge("population_devices_alive")
	rateGauge := reg.Gauge("population_sim_hosts_per_sec")
	monthHist := reg.Histogram("population_month_seconds", telemetry.DurationBuckets)
	harvestSpan := telemetry.SpanFrom(ctx)
	for m := Month(0); m < Months; m++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("population: harvest cancelled at month %d/%d: %w", int(m), int(Months), err)
		}
		sp := harvestSpan.Child(m.String())
		t0 := time.Now()
		for li := range s.cfg.Lines {
			if err := s.step(li, m); err != nil {
				sp.End()
				return err
			}
		}
		if src, ok := SourceFor(m); ok {
			if err := s.observe(store, m, src); err != nil {
				sp.End()
				return err
			}
		}
		alive := 0
		for _, line := range s.alive {
			alive += len(line)
		}
		elapsed := time.Since(t0)
		monthsDone.Set(float64(int(m) + 1))
		aliveGauge.Set(float64(alive))
		monthHist.ObserveDuration(elapsed)
		if secs := elapsed.Seconds(); secs > 0 {
			rateGauge.Set(float64(alive) / secs)
		}
		sp.SetArg("devices_alive", alive)
		sp.End()
		if s.cfg.Progress != nil {
			s.cfg.Progress(int(m)+1, int(Months))
		}
	}
	if s.cfg.OtherProtocols {
		s.observeOtherProtocols(store)
	}
	return nil
}

// observe samples the alive population per the source's coverage and
// records host observations, applying the MITM substitution and
// transmission bit errors.
func (s *Simulation) observe(store *scanstore.Store, m Month, src scanstore.Source) error {
	obs := s.cfg.Metrics.Counter("population_observations_total")
	cov := Coverage(src)
	date := m.Time()
	for li, line := range s.alive {
		for _, d := range line {
			if s.rng.Float64() > cov {
				continue
			}
			cert := d.Cert
			if d.BehindMITM {
				cert = s.substituteMITM(cert)
			}
			// Rapid7's collection recorded intermediate certificates at
			// the same address without chaining them (Section 3.1).
			if src == scanstore.SourceRapid7 && s.cfg.Lines[li].DeviceCA {
				if ca, err := s.caFor(li); err == nil {
					inter := scanstore.Observation{
						IP: d.IP, Date: date, Source: src,
						Protocol: scanstore.HTTPS, Cert: ca.cert,
						RSAOnly: d.RSAOnly,
					}
					if err := store.Add(inter); err != nil {
						return err
					}
				}
			}
			if s.cfg.BitErrorRate > 0 && s.rng.Float64() < s.cfg.BitErrorRate {
				cert = corruptObservation(cert, s.rng)
			}
			err := store.Add(scanstore.Observation{
				IP: d.IP, Date: date, Source: src, Protocol: scanstore.HTTPS,
				Cert: cert, RSAOnly: d.RSAOnly,
			})
			if err != nil {
				return err
			}
			obs.Inc()
		}
	}
	return nil
}

// substituteMITM returns a copy of cert with only the public key swapped
// for the middlebox's fixed key — signature and all other fields kept,
// exactly the Internet Rimon behaviour.
func (s *Simulation) substituteMITM(c *certs.Certificate) *certs.Certificate {
	out := *c
	out.N = s.mitmKey.N
	out.E = s.mitmKey.E
	return &out
}

// corruptObservation flips one random low-half bit of the modulus in the
// recorded copy.
func corruptObservation(c *certs.Certificate, rng *rand.Rand) *certs.Certificate {
	out := *c
	out.N = weakrsa.CorruptBits(c.N, rng.Intn(c.N.BitLen()-2))
	return &out
}

// buildOtherProtocolKeys creates the Table 4 key populations: SSH host
// keys with a small vulnerable subset, and clean mail-protocol keys.
func (s *Simulation) buildOtherProtocolKeys() error {
	mk := func(n int, out *[]*big.Int) error {
		for i := 0; i < n; i++ {
			k, err := s.factory.Healthy()
			if err != nil {
				return err
			}
			*out = append(*out, k.N)
		}
		return nil
	}
	if err := mk(60, &s.sshHealthy); err != nil {
		return err
	}
	for i := 0; i < 8; i++ {
		k, err := s.factory.SharedPrime("ssh-hostkeys", weakrsa.PrimeNaive)
		if err != nil {
			return err
		}
		s.sshVuln = append(s.sshVuln, k.N)
	}
	s.mailKeys = make(map[scanstore.Protocol][]*big.Int)
	for _, p := range []scanstore.Protocol{scanstore.POP3S, scanstore.IMAPS, scanstore.SMTPS} {
		var keys []*big.Int
		if err := mk(45, &keys); err != nil {
			return err
		}
		s.mailKeys[p] = keys
	}
	return nil
}

// observeOtherProtocols emits the one-shot protocol scans of Table 4:
// SSH on 2015-10, the mail protocols on 2016-04.
func (s *Simulation) observeOtherProtocols(store *scanstore.Store) {
	sshDate := time.Date(2015, 10, 29, 0, 0, 0, 0, time.UTC)
	i := 0
	for _, n := range s.sshHealthy {
		store.AddBareKeyObservation(fmt.Sprintf("172.16.0.%d", i), sshDate, scanstore.SourceCensys, scanstore.SSH, n)
		i++
	}
	for _, n := range s.sshVuln {
		store.AddBareKeyObservation(fmt.Sprintf("172.16.0.%d", i), sshDate, scanstore.SourceCensys, scanstore.SSH, n)
		i++
	}
	mailDate := time.Date(2016, 4, 25, 0, 0, 0, 0, time.UTC)
	for proto, keys := range s.mailKeys {
		for j, n := range keys {
			store.AddBareKeyObservation(fmt.Sprintf("172.17.%d.%d", protoOctet(proto), j), mailDate, scanstore.SourceCensys, proto, n)
		}
	}
}

func protoOctet(p scanstore.Protocol) int {
	switch p {
	case scanstore.POP3S:
		return 1
	case scanstore.IMAPS:
		return 2
	case scanstore.SMTPS:
		return 3
	default:
		return 9
	}
}

package population

import (
	"testing"
	"time"
)

func TestMonthConversions(t *testing.T) {
	if MonthOf(2010, time.July) != 0 {
		t.Error("July 2010 should be month 0")
	}
	if MonthOf(2016, time.April) != 69 {
		t.Errorf("April 2016 = %d, want 69", MonthOf(2016, time.April))
	}
	if Months != 70 {
		t.Errorf("timeline = %d months", Months)
	}
	for _, s := range []string{"2010-07", "2012-02", "2014-04", "2016-04"} {
		m, err := ParseMonth(s)
		if err != nil {
			t.Fatal(err)
		}
		if m.String() != s {
			t.Errorf("round trip %q -> %q", s, m.String())
		}
		if !m.Valid() {
			t.Errorf("%s should be on the timeline", s)
		}
	}
	if _, err := ParseMonth("2012/02"); err == nil {
		t.Error("bad format accepted")
	}
	if Month(-1).Valid() || Month(70).Valid() {
		t.Error("out-of-range months should be invalid")
	}
}

func TestMonthTime(t *testing.T) {
	got := MustMonth("2014-04").Time()
	if got.Year() != 2014 || got.Month() != time.April || got.Day() != 15 {
		t.Errorf("scan instant: %v", got)
	}
}

func TestKnownEvents(t *testing.T) {
	if Heartbleed.String() != "2014-04" {
		t.Error("Heartbleed month wrong")
	}
	if Disclosure.String() != "2012-02" {
		t.Error("disclosure month wrong")
	}
	if LinuxPatch.String() != "2012-07" || Getrandom.String() != "2014-07" {
		t.Error("kernel event months wrong")
	}
}

func TestMustMonthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustMonth should panic on bad input")
		}
	}()
	MustMonth("not-a-month")
}

func TestCurveEval(t *testing.T) {
	c := C("2011-01", 100, "2012-01", 200, "2014-01", 200)
	cases := []struct {
		m    string
		want float64
	}{
		{"2010-07", 100}, // clamp before
		{"2011-01", 100},
		{"2011-07", 150}, // midpoint
		{"2012-01", 200},
		{"2013-01", 200},
		{"2016-04", 200}, // clamp after
	}
	for _, tc := range cases {
		if got := c.Eval(MustMonth(tc.m)); got != tc.want {
			t.Errorf("Eval(%s) = %v, want %v", tc.m, got, tc.want)
		}
	}
	if (Curve{}).Eval(0) != 0 {
		t.Error("empty curve should evaluate to 0")
	}
}

func TestCurveSortedAndScaled(t *testing.T) {
	c := C("2014-01", 50, "2011-01", 100) // out of order input
	if c[0].M != MustMonth("2011-01") {
		t.Error("curve points should sort by month")
	}
	if c.Peak() != 100 {
		t.Errorf("peak = %v", c.Peak())
	}
	s := c.Scale(0.5)
	if s.Peak() != 50 {
		t.Errorf("scaled peak = %v", s.Peak())
	}
	if c.Peak() != 100 {
		t.Error("Scale should not mutate")
	}
}

func TestCurveBadInputsPanic(t *testing.T) {
	for _, f := range []func(){
		func() { C("2011-01") },
		func() { C("2011-01", "x") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

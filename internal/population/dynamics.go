package population

import (
	"github.com/factorable/weakkeys/internal/devices"
	"github.com/factorable/weakkeys/internal/weakrsa"
)

// Line is one simulated device family: a fingerprint profile plus its
// population targets. Curves are in simulation units — the paper's
// figure shapes divided by per-vendor scale factors recorded in
// EXPERIMENTS.md — so that vulnerable populations stay statistically
// meaningful at laptop scale while cross-vendor shapes, orderings,
// inflection months and the Heartbleed cliff match the paper.
type Line struct {
	Profile devices.Profile
	// Total targets the whole fingerprinted population; Vuln targets the
	// subset serving factorable keys. Vuln must stay below Total.
	Total Curve
	Vuln  Curve
	// PrimePool names the shared-prime pool for KeySharedPrime lines;
	// defaults to Vendor/Model. Distinct lines naming the same pool
	// share prime material across vendors (Dell Imaging ↔ Xerox).
	PrimePool string
	// CliqueName names the clique for KeyClique lines; defaults to the
	// vendor name. Siemens' overlap line names IBM's clique.
	CliqueName string
	// Churn is the monthly probability a device is replaced (new IP,
	// new certificate, same vulnerability class).
	Churn float64
	// FlipVulnToSafe / FlipSafeToVuln are monthly per-device
	// probabilities of regenerating the certificate into the other
	// class on the same IP — the Juniper transition behaviour
	// (Section 4.1: 1,100 vuln→safe, 1,200 safe→vuln, 250 both).
	FlipVulnToSafe, FlipSafeToVuln float64
	// CrashOnHeartbeat marks firmware that dies when Heartbleed-probed
	// (Juniper NetScreen, HP iLO anecdotes).
	CrashOnHeartbeat bool
	// RSAOnlyShare is the fraction of this family's devices supporting
	// only RSA key exchange (no forward secrecy). Zero means the
	// study-wide default (DefaultRSAOnlyShare) applies.
	RSAOnlyShare float64
	// DeviceCA, when set, issues this family's certificates from a
	// vendor device CA instead of self-signing. The Rapid7 scans
	// recorded such intermediate certificates alongside the leaf
	// without chaining them (Section 3.1); the analysis must
	// reconstruct chains and keep only the lowest certificate.
	DeviceCA bool
	// UnsafeExponent is the broken public exponent KeyUnsafeExponent
	// lines emit; defaults to 1 (the worst of the Tor-study findings:
	// "encryption" that leaves plaintext on the wire).
	UnsafeExponent int
}

// DefaultRSAOnlyShare reproduces the paper's April 2016 measurement: 74%
// of vulnerable devices supported only RSA key exchange, making passive
// decryption possible with a factored key.
const DefaultRSAOnlyShare = 0.74

// rsaOnlyShare returns the effective RSA-only fraction.
func (l *Line) rsaOnlyShare() float64 {
	if l.RSAOnlyShare > 0 {
		return l.RSAOnlyShare
	}
	return DefaultRSAOnlyShare
}

// pool returns the effective shared-prime pool name.
func (l *Line) pool() string {
	if l.PrimePool != "" {
		return l.PrimePool
	}
	if l.Profile.Model != "" {
		return l.Profile.Vendor + "/" + l.Profile.Model
	}
	return l.Profile.Vendor
}

// unsafeExponent returns the effective broken exponent.
func (l *Line) unsafeExponent() int {
	if l.UnsafeExponent != 0 {
		return l.UnsafeExponent
	}
	return 1
}

// cliqueName returns the effective clique name.
func (l *Line) cliqueName() string {
	if l.CliqueName != "" {
		return l.CliqueName
	}
	return l.Profile.Vendor
}

// DefaultDynamics returns the full study ecosystem: every vendor whose
// time series the paper plots (Figures 3-10), with curve shapes
// transcribed from those figures.
func DefaultDynamics() []Line {
	lines := []Line{
		// Figure 3 — Juniper: vulnerable population RISES for two years
		// after the April/July 2012 advisories; the April 2014
		// Heartbleed shock removes ~3/8 of the total population and a
		// third of the vulnerable one; both recover slightly after.
		{
			Profile: devices.ProfileJuniper,
			Total: C("2010-07", 200, "2011-10", 400, "2012-06", 550,
				"2014-04", 800, "2014-05", 500, "2015-07", 550, "2016-04", 600),
			Vuln: C("2010-07", 15, "2012-02", 35, "2012-07", 40,
				"2014-04", 56, "2014-05", 33, "2015-07", 36, "2016-04", 38),
			Churn:            0.010,
			FlipVulnToSafe:   0.004,
			FlipSafeToVuln:   0.0004,
			CrashOnHeartbeat: true,
		},
		// Figure 4 — Innominate mGuard: vulnerable population stays flat
		// for four years after the June 2012 advisory while the total
		// population grows (fixed new devices, unpatched old ones).
		{
			Profile: devices.ProfileInnominate,
			Total: C("2010-07", 60, "2012-06", 150, "2014-04", 230,
				"2016-04", 300),
			Vuln: C("2010-07", 10, "2012-02", 32, "2012-06", 35,
				"2016-04", 34),
			Churn: 0.006,
		},
		// Figure 5 — IBM RSA-II / BladeCenter MM: the 36-key clique.
		// Already declining by 2012, marked Heartbleed drop. IBM
		// certificates carry no vendor info, so the fingerprinted
		// population IS the vulnerable clique population.
		{
			Profile: devices.ProfileIBM,
			Total: C("2010-07", 120, "2012-02", 80, "2012-09", 70,
				"2014-04", 45, "2014-05", 22, "2016-04", 12),
			Vuln: C("2010-07", 118, "2012-02", 79, "2012-09", 69,
				"2014-04", 44, "2014-05", 21, "2016-04", 11),
			Churn: 0.012, // certificate replacement on IBM devices was IP churn
		},
		// Figure 8 — HP iLO: vulnerable peak in 2012, steady decline,
		// visible post-Heartbleed drop in the total population.
		{
			Profile: devices.ProfileHP,
			Total: C("2010-07", 400, "2012-06", 1000, "2014-04", 900,
				"2014-05", 680, "2016-04", 550),
			Vuln: C("2010-07", 10, "2012-02", 30, "2013-06", 18,
				"2014-04", 12, "2014-05", 8, "2016-04", 4),
			Churn:            0.008,
			CrashOnHeartbeat: true,
		},
		// Figure 9 — never-responded vendors.
		// Thomson: both populations decline together.
		{
			Profile: devices.GenericProfile("Thomson", devices.KeySharedPrime, weakrsa.PrimeOpenSSL),
			Total:   C("2010-07", 2000, "2012-06", 1200, "2016-04", 350),
			Vuln:    C("2010-07", 15, "2012-06", 9, "2016-04", 2),
			Churn:   0.010,
		},
		// Fritz!Box: marked vulnerable increase until a 2014 fix, then
		// decline; total keeps growing. Two sub-lines: the myfritz.net
		// population and the IP-only-subject population that only
		// shared-prime extrapolation can label.
		{
			Profile: devices.ProfileFritzBox,
			Total: C("2010-07", 250, "2012-06", 700, "2014-06", 1250,
				"2016-04", 1350),
			Vuln: C("2010-07", 25, "2012-06", 120, "2014-06", 260,
				"2015-06", 150, "2016-04", 80),
			PrimePool: "Fritz!Box",
			Churn:     0.012,
		},
		{
			Profile:   devices.ProfileFritzBoxIPOnly,
			Total:     C("2010-07", 30, "2014-06", 140, "2016-04", 150),
			Vuln:      C("2010-07", 4, "2014-06", 30, "2015-06", 18, "2016-04", 10),
			PrimePool: "Fritz!Box", // same firmware, same prime material
			Churn:     0.012,
		},
		// Linksys: vulnerable decline tracks the total decline.
		{
			Profile: devices.GenericProfile("Linksys", devices.KeySharedPrime, weakrsa.PrimeOpenSSL),
			Total:   C("2010-07", 1500, "2012-06", 1100, "2016-04", 550),
			Vuln:    C("2010-07", 120, "2012-06", 70, "2016-04", 10),
			Churn:   0.010,
		},
		// Fortinet: total grows strongly; few vulnerable, slow decline.
		{
			Profile:  devices.GenericProfile("Fortinet", devices.KeySharedPrime, weakrsa.PrimeNaive),
			Total:    C("2010-07", 300, "2014-01", 1200, "2016-04", 2000),
			Vuln:     C("2010-07", 25, "2012-06", 20, "2016-04", 8),
			Churn:    0.010,
			DeviceCA: true,
		},
		// ZyXEL: both decline together.
		{
			Profile: devices.GenericProfile("ZyXEL", devices.KeySharedPrime, weakrsa.PrimeNaive),
			Total:   C("2010-07", 800, "2012-06", 650, "2016-04", 280),
			Vuln:    C("2010-07", 80, "2012-06", 55, "2016-04", 14),
			Churn:   0.010,
		},
		// Dell: the Imaging Group line shares prime material with Xerox
		// (Fuji Xerox manufacturing); populations decline gently.
		{
			Profile:   devices.ProfileDellImaging,
			Total:     C("2010-07", 400, "2012-06", 300, "2016-04", 140),
			Vuln:      C("2010-07", 15, "2012-06", 10, "2016-04", 4),
			PrimePool: "Xerox",
			Churn:     0.008,
		},
		// Kronos: small, slow decline, non-OpenSSL stack.
		{
			Profile: devices.GenericProfile("Kronos", devices.KeySharedPrime, weakrsa.PrimeNaive),
			Total:   C("2010-07", 80, "2012-06", 75, "2016-04", 45),
			Vuln:    C("2010-07", 25, "2012-06", 20, "2016-04", 8),
			Churn:   0.006,
		},
		// Xerox: non-OpenSSL; shares its pool with Dell Imaging.
		{
			Profile:   devices.GenericProfile("Xerox", devices.KeySharedPrime, weakrsa.PrimeNaive),
			Total:     C("2010-07", 80, "2012-06", 70, "2016-04", 35),
			Vuln:      C("2010-07", 25, "2012-06", 18, "2016-04", 5),
			PrimePool: "Xerox",
			Churn:     0.006,
		},
		// McAfee SnapGear: declines with its total.
		{
			Profile: devices.ProfileMcAfee,
			Total:   C("2010-07", 60, "2012-06", 50, "2016-04", 18),
			Vuln:    C("2010-07", 18, "2012-06", 12, "2016-04", 3),
			Churn:   0.006,
		},
		// TP-LINK: total grows; vulnerable grows with it, then eases.
		{
			Profile: devices.GenericProfile("TP-LINK", devices.KeySharedPrime, weakrsa.PrimeOpenSSL),
			Total:   C("2010-07", 20, "2014-06", 60, "2016-04", 70),
			Vuln:    C("2010-07", 2, "2014-06", 32, "2016-04", 24),
			Churn:   0.010,
		},
		// Figure 10 — newly vulnerable since 2012.
		// ADTRAN: stable total; HTTPS RSA vulnerability introduced 2015.
		{
			Profile: devices.GenericProfile("ADTRAN", devices.KeySharedPrime, weakrsa.PrimeOpenSSL),
			Total:   C("2010-07", 700, "2016-04", 800),
			Vuln:    C("2014-12", 0, "2015-03", 4, "2016-04", 20),
			Churn:   0.008,
		},
		// D-Link: no response in 2012; small vulnerable population then,
		// dramatic growth after 2013.
		{
			Profile: devices.GenericProfile("D-Link", devices.KeySharedPrime, weakrsa.PrimeOpenSSL),
			Total:   C("2010-07", 1000, "2014-01", 1600, "2016-04", 2000),
			Vuln: C("2010-07", 4, "2012-06", 6, "2013-06", 20,
				"2014-06", 80, "2016-04", 200),
			Churn: 0.012,
		},
		// Huawei: first vulnerable hosts April 2015, dramatic increase;
		// certificates identify an India business unit.
		{
			Profile: devices.GenericProfile("Huawei", devices.KeySharedPrime, weakrsa.PrimeNaive),
			Total:   C("2010-07", 100, "2014-01", 400, "2016-04", 600),
			Vuln:    C("2015-03", 0, "2015-04", 3, "2015-10", 14, "2016-04", 30),
			Churn:   0.012,
		},
		// Sangfor: growing total, small new vulnerable population.
		{
			Profile: devices.GenericProfile("Sangfor", devices.KeySharedPrime, weakrsa.PrimeOpenSSL),
			Total:   C("2010-07", 40, "2013-01", 150, "2016-04", 400),
			Vuln:    C("2014-12", 0, "2015-06", 3, "2016-04", 10),
			Churn:   0.010,
		},
		// Schmid Telecom: tiny population, large vulnerable share.
		{
			Profile: devices.GenericProfile("Schmid Telecom", devices.KeySharedPrime, weakrsa.PrimeOpenSSL),
			Total:   C("2010-07", 8, "2013-01", 12, "2016-04", 15),
			Vuln:    C("2013-06", 0, "2014-06", 4, "2016-04", 8),
			Churn:   0.006,
		},
		// Conel s.r.o.: one of the paper's canonical "O=vendor" subject
		// examples; a small industrial-router population.
		{
			Profile: devices.GenericProfile("Conel s.r.o.", devices.KeySharedPrime, weakrsa.PrimeOpenSSL),
			Total:   C("2010-07", 30, "2013-01", 60, "2016-04", 80),
			Vuln:    C("2010-07", 4, "2013-01", 8, "2016-04", 6),
			Churn:   0.008,
		},
		// Siemens Building Automation: its own shared-prime line, plus
		// the overlap sub-line below serving IBM-clique moduli from
		// February 2013 onward (Section 3.3.2).
		{
			Profile: devices.ProfileSiemens,
			Total:   C("2010-07", 100, "2013-01", 140, "2016-04", 150),
			Vuln:    C("2010-07", 4, "2013-01", 8, "2016-04", 8),
			Churn:   0.006,
		},
		{
			Profile:    devices.ProfileSiemensOverlap,
			Total:      C("2013-01", 0, "2013-02", 6, "2016-04", 24),
			Vuln:       C("2013-01", 0, "2013-02", 6, "2016-04", 24),
			CliqueName: "IBM",
			Churn:      0.004,
		},
	}
	// Figure 6/7 — Cisco: per-model lines so end-of-life effects are
	// visible per model. Totals rise until the EOL month, then decline;
	// vulnerable counts rise through 2014 and ease in the last year
	// (the vendor responded privately, never published an advisory).
	for i, m := range devices.CiscoModels {
		eol := m.EOL
		peak := 300 + 40*float64(i)
		vuln := C("2010-07", peak*0.02, "2012-06", peak*0.06,
			"2014-06", peak*0.10, "2016-04", peak*0.07)
		if m.Model == "RV082" {
			// The paper found vulnerable hosts for every Figure 7 model
			// except the RV082.
			vuln = C("2010-07", 0)
		}
		lines = append(lines, Line{
			Profile: devices.ProfileCisco(m.Model),
			Total: C("2010-07", peak*0.4, eol, peak, "2016-04",
				peak*0.55),
			Vuln:     vuln,
			Churn:    0.010,
			DeviceCA: true,
		})
	}
	return lines
}

// AnomalyLines returns the device families exhibiting the anomalous-key
// classes batch GCD cannot see (the Tor-relays study's taxonomy): close
// primes, small factors, broken exponents, and a fleet-wide shared
// modulus. They are not part of DefaultDynamics — the paper's figures
// don't plot them — but simulations can append them to exercise the
// anomaly analytics end to end.
func AnomalyLines() []Line {
	return []Line{
		// Smartcard-style token vendor whose primes come from one narrow
		// window ("When RSA Fails"): every vulnerable key Fermat-splits.
		{
			Profile: devices.GenericProfile("TokenWorks", devices.KeyClosePrimes, weakrsa.PrimeNaive),
			Total:   C("2010-07", 30, "2016-04", 60),
			Vuln:    C("2010-07", 6, "2016-04", 14),
			Churn:   0.008,
		},
		// A vendor whose firmware short-circuited its primality test and
		// ships moduli with a tiny prime factor.
		{
			Profile: devices.GenericProfile("NetLatch", devices.KeySmallFactor, weakrsa.PrimeNaive),
			Total:   C("2010-07", 25, "2016-04", 45),
			Vuln:    C("2010-07", 5, "2016-04", 10),
			Churn:   0.008,
		},
		// IP cameras emitting e = 1: the modulus is honest but
		// "encryption" is the identity function.
		{
			Profile:        devices.GenericProfile("CamSight", devices.KeyUnsafeExponent, weakrsa.PrimeOpenSSL),
			Total:          C("2010-07", 40, "2016-04", 70),
			Vuln:           C("2010-07", 8, "2016-04", 16),
			UnsafeExponent: 1,
			Churn:          0.010,
		},
		// A router line whose firmware image bakes in one keypair: the
		// whole fleet serves the same modulus under distinct identities.
		{
			Profile: devices.GenericProfile("CloneGate", devices.KeySharedModulus, weakrsa.PrimeNaive),
			Total:   C("2010-07", 30, "2016-04", 55),
			Vuln:    C("2010-07", 10, "2016-04", 20),
			Churn:   0.012,
		},
	}
}

// siemensOverlapStart is when the Siemens/IBM shared modulus first
// appears in scans.
var siemensOverlapStart = MustMonth("2013-02")

package population

import (
	"context"
	"errors"
	"testing"

	"github.com/factorable/weakkeys/internal/scanstore"
)

// testSim runs a scaled-down ecosystem quickly.
func testSim(t *testing.T, scale float64, mitm, bitErr float64, other bool) (*Simulation, *scanstore.Store) {
	t.Helper()
	sim, err := New(Config{
		Seed:           42,
		KeyBits:        128,
		Scale:          scale,
		MITMRate:       mitm,
		BitErrorRate:   bitErr,
		OtherProtocols: other,
	})
	if err != nil {
		t.Fatal(err)
	}
	store := scanstore.New()
	if err := sim.Run(context.Background(), store); err != nil {
		t.Fatal(err)
	}
	return sim, store
}

func TestSimTracksTargets(t *testing.T) {
	sim, _ := testSim(t, 0.2, 0, 0, false)
	lines := sim.Lines()
	for li, line := range lines {
		series := sim.TruthSeries(li)
		for _, ms := range []string{"2012-06", "2014-03", "2016-04"} {
			m := MustMonth(ms)
			wantT := int(line.Total.Eval(m)*0.2 + 0.5)
			wantV := int(line.Vuln.Eval(m)*0.2 + 0.5)
			if wantV > wantT {
				wantV = wantT
			}
			gotT, gotV := series.Total[m], series.Vuln[m]
			// Flips can wobble counts within the month; allow slack of 2
			// or 15%.
			if diff(gotT, wantT) > maxi(2, wantT*15/100) {
				t.Errorf("line %d (%s) %s: total %d, want ~%d", li, line.Profile.Vendor, ms, gotT, wantT)
			}
			if diff(gotV, wantV) > maxi(2, wantV*15/100) {
				t.Errorf("line %d (%s) %s: vuln %d, want ~%d", li, line.Profile.Vendor, ms, gotV, wantV)
			}
		}
	}
}

func diff(a, b int) int {
	if a > b {
		return a - b
	}
	return b - a
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestSimObservationsLandInEras(t *testing.T) {
	_, store := testSim(t, 0.1, 0, 0, false)
	bySource := make(map[scanstore.Source]int)
	for _, r := range store.Records() {
		bySource[r.Source]++
	}
	for _, src := range []scanstore.Source{scanstore.SourceEFF, scanstore.SourcePQ,
		scanstore.SourceEcosystem, scanstore.SourceRapid7, scanstore.SourceCensys} {
		if bySource[src] == 0 {
			t.Errorf("no observations from %s", src)
		}
	}
	// Ecosystem era (20 scans) must dominate EFF (2 scans).
	if bySource[scanstore.SourceEcosystem] <= bySource[scanstore.SourceEFF] {
		t.Error("era record volumes implausible")
	}
}

func TestSimScanGaps(t *testing.T) {
	// No scans between the eras: e.g. 2011-01..2011-09 and 2012-01..2012-05.
	if _, ok := SourceFor(MustMonth("2011-03")); ok {
		t.Error("2011-03 had no scan")
	}
	if _, ok := SourceFor(MustMonth("2012-03")); ok {
		t.Error("2012-03 had no scan")
	}
	if src, ok := SourceFor(MustMonth("2014-04")); !ok || src != scanstore.SourceRapid7 {
		t.Errorf("2014-04 should be Rapid7, got %v %v", src, ok)
	}
	if src, ok := SourceFor(MustMonth("2016-04")); !ok || src != scanstore.SourceCensys {
		t.Errorf("2016-04 should be Censys, got %v %v", src, ok)
	}
}

func TestCoverageOrdering(t *testing.T) {
	// Censys sees the most; EFF the least (Nmap-era methodology).
	if !(Coverage(scanstore.SourceCensys) > Coverage(scanstore.SourceEcosystem)) ||
		!(Coverage(scanstore.SourceEcosystem) > Coverage(scanstore.SourceEFF)) {
		t.Error("coverage ordering wrong")
	}
	if Coverage(scanstore.Source("other")) != 1.0 {
		t.Error("unknown source should default to full coverage")
	}
}

func TestSimTruthConsistency(t *testing.T) {
	sim, store := testSim(t, 0.1, 0, 0, false)
	truth := sim.TruthByFP()
	if len(truth) == 0 {
		t.Fatal("no ground truth recorded")
	}
	// Every observed HTTPS certificate has a truth record (no MITM or
	// bit errors in this run) — except the vendor device-CA
	// intermediates the Rapid7 era records alongside leaves.
	caFPs := make(map[[32]byte]bool)
	for li := range sim.Lines() {
		if ca := sim.CACert(li); ca != nil {
			fp, err := ca.Fingerprint()
			if err != nil {
				t.Fatal(err)
			}
			caFPs[fp] = true
		}
	}
	if len(caFPs) == 0 {
		t.Error("expected device-CA lines in the default dynamics")
	}
	missing := 0
	for _, r := range store.Records() {
		if caFPs[r.CertFP] {
			continue
		}
		if _, ok := truth[r.CertFP]; !ok {
			missing++
		}
	}
	if missing != 0 {
		t.Errorf("%d observed certificates missing ground truth", missing)
	}
}

func TestSimMITMObservations(t *testing.T) {
	sim, store := testSim(t, 0.1, 0.02, 0, false)
	mitmN := sim.MITMModulus()
	if mitmN == nil {
		t.Fatal("MITM key missing")
	}
	key := string(mitmN.Bytes())
	ips := store.IPsServingModulus(key, scanstore.HTTPS)
	if len(ips) < 2 {
		t.Errorf("MITM modulus seen at %d IPs, want several", len(ips))
	}
	// The substituted certificates retain distinct subjects: many certs,
	// one modulus.
	certsWith := store.CertsWithModulus(key)
	if len(certsWith) < 2 {
		t.Errorf("MITM modulus should appear in multiple distinct certs, got %d", len(certsWith))
	}
}

func TestSimBitErrors(t *testing.T) {
	sim, store := testSim(t, 0.1, 0, 0.01, false)
	truth := sim.TruthByFP()
	// Bit-error observations create certificates without truth records.
	corrupted := 0
	seen := make(map[[32]byte]bool)
	for _, r := range store.Records() {
		if seen[r.CertFP] {
			continue
		}
		seen[r.CertFP] = true
		if _, ok := truth[r.CertFP]; !ok {
			corrupted++
		}
	}
	if corrupted == 0 {
		t.Error("expected some bit-error certificates at rate 0.01")
	}
}

func TestSimOtherProtocols(t *testing.T) {
	_, store := testSim(t, 0.05, 0, 0, true)
	ssh := store.Stats(scanstore.SSH)
	if ssh.HostRecords != 68 {
		t.Errorf("SSH hosts = %d, want 68", ssh.HostRecords)
	}
	for _, p := range []scanstore.Protocol{scanstore.POP3S, scanstore.IMAPS, scanstore.SMTPS} {
		st := store.Stats(p)
		if st.HostRecords != 45 {
			t.Errorf("%s hosts = %d, want 45", p, st.HostRecords)
		}
	}
}

func TestSimDeterminism(t *testing.T) {
	_, s1 := testSim(t, 0.05, 0, 0, false)
	_, s2 := testSim(t, 0.05, 0, 0, false)
	a, b := s1.Stats(""), s2.Stats("")
	if a != b {
		t.Errorf("same seed, different stats: %+v vs %+v", a, b)
	}
}

func TestSimChurnCreatesRetirements(t *testing.T) {
	sim, _ := testSim(t, 0.2, 0, 0, false)
	// Distinct certificates must exceed the peak alive population:
	// churn and flips retire and replace devices over six years.
	totalAlive2016 := 0
	for li := range sim.Lines() {
		totalAlive2016 += sim.TruthSeries(li).Total[Months-1]
	}
	if len(sim.TruthByFP()) <= totalAlive2016 {
		t.Errorf("truth records %d should exceed final alive %d", len(sim.TruthByFP()), totalAlive2016)
	}
}

func TestSimRSAOnlyShare(t *testing.T) {
	sim, store := testSim(t, 0.1, 0, 0, false)
	_ = sim
	// Roughly DefaultRSAOnlyShare of HTTPS observations should be
	// RSA-only (the default applies to every line in this config).
	rsaOnly, total := 0, 0
	for _, r := range store.Records() {
		if r.Protocol != scanstore.HTTPS {
			continue
		}
		total++
		if r.RSAOnly {
			rsaOnly++
		}
	}
	if total == 0 {
		t.Fatal("no records")
	}
	frac := float64(rsaOnly) / float64(total)
	if frac < 0.60 || frac > 0.88 {
		t.Errorf("RSA-only fraction = %.3f, want near %v", frac, DefaultRSAOnlyShare)
	}
}

func TestSimIPReuse(t *testing.T) {
	simA, err := New(Config{Seed: 5, KeyBits: 128, Scale: 0.1, IPReuse: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	storeA := scanstore.New()
	if err := simA.Run(context.Background(), storeA); err != nil {
		t.Fatal(err)
	}
	// With heavy reuse, some IPs must be served by more than one
	// distinct certificate-holder (different serials).
	serialsPerIP := make(map[string]map[string]bool)
	for _, r := range storeA.Records() {
		c := storeA.Cert(r.CertFP)
		if c == nil {
			continue
		}
		if serialsPerIP[r.IP] == nil {
			serialsPerIP[r.IP] = make(map[string]bool)
		}
		serialsPerIP[r.IP][c.SerialNumber.String()] = true
	}
	reused := 0
	for _, serials := range serialsPerIP {
		if len(serials) > 1 {
			reused++
		}
	}
	if reused == 0 {
		t.Error("IPReuse=0.8 produced no multi-device IPs")
	}
}

func TestIntermediatesOnlyInRapid7Era(t *testing.T) {
	sim, store := testSim(t, 0.1, 0, 0, false)
	caFPs := make(map[[32]byte]bool)
	for li := range sim.Lines() {
		if ca := sim.CACert(li); ca != nil {
			fp, err := ca.Fingerprint()
			if err != nil {
				t.Fatal(err)
			}
			caFPs[fp] = true
		}
	}
	if len(caFPs) == 0 {
		t.Fatal("no device-CA lines in default dynamics")
	}
	sawRapid7 := false
	for _, r := range store.Records() {
		if !caFPs[r.CertFP] {
			continue
		}
		if r.Source != scanstore.SourceRapid7 {
			t.Fatalf("intermediate recorded by %s; only Rapid7 collected them", r.Source)
		}
		sawRapid7 = true
	}
	if !sawRapid7 {
		t.Error("no intermediates recorded in the Rapid7 era")
	}
}

func TestSimRunCancelled(t *testing.T) {
	sim, err := New(Config{Seed: 9, KeyBits: 128, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := sim.Run(ctx, scanstore.New()); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run err = %v, want wrapped context.Canceled", err)
	}
}

func TestSimRunProgress(t *testing.T) {
	var calls, last, total int
	sim, err := New(Config{Seed: 9, KeyBits: 128, Scale: 0.02,
		Progress: func(done, months int) { calls++; last = done; total = months }})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(context.Background(), scanstore.New()); err != nil {
		t.Fatal(err)
	}
	if calls != int(Months) || last != int(Months) || total != int(Months) {
		t.Errorf("progress calls=%d last=%d total=%d, want all %d", calls, last, total, Months)
	}
}

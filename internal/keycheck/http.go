package keycheck

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/big"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/factorable/weakkeys/internal/certs"
	"github.com/factorable/weakkeys/internal/scanstore"
	"github.com/factorable/weakkeys/internal/telemetry"
)

// maxBodyBytes bounds a /v1/check request body (a 16384-bit modulus in
// hex is 4KB; PEM certificates a little more).
const maxBodyBytes = 1 << 20

// checkRequest is the JSON envelope for POST /v1/check. Exactly one of
// the fields must be set. A raw PEM body (starting with "-----BEGIN")
// is also accepted for curl-friendliness.
type checkRequest struct {
	// ModulusHex is the RSA modulus as hex, optional 0x prefix.
	ModulusHex string `json:"modulus_hex,omitempty"`
	// CertPEM is a WEAKKEYS CERTIFICATE (or RSA MODULUS) PEM.
	CertPEM string `json:"cert_pem,omitempty"`
	// CertDER is a DER certificate (base64-encoded by JSON).
	CertDER []byte `json:"cert_der,omitempty"`
	// ExponentHex optionally carries the public exponent alongside
	// modulus_hex, so the exponent-anomaly check (e = 1, even e, ...)
	// covers bare-modulus submissions too. Certificate submissions carry
	// their exponent already and ignore this field.
	ExponentHex string `json:"exponent_hex,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
	// RequestID echoes the request's correlation ID so a client error
	// line can be joined against /debug/events and debug bundles.
	RequestID string `json:"request_id,omitempty"`
}

// statsResponse is the GET /v1/stats document.
type statsResponse struct {
	Index SnapshotStats `json:"index"`
	Cache struct {
		Size   int   `json:"size"`
		Hits   int64 `json:"hits"`
		Misses int64 `json:"misses"`
	} `json:"cache"`
	SnapshotSwaps  int64 `json:"snapshot_swaps"`
	TrackedClients int   `json:"tracked_clients"`
}

// exemplarsResponse is the GET /v1/exemplars document: known-answer
// corpus keys for smoke tests and load generators.
type exemplarsResponse struct {
	Factored []string `json:"factored"`
	Clean    []string `json:"clean"`
	// Shared lists member moduli the corpus observed under two or more
	// distinct identities (shared_modulus exemplars).
	Shared []string `json:"shared,omitempty"`
}

// API serves the key-check HTTP endpoints for one Service.
type API struct {
	svc     *Service
	limiter *RateLimiter
	reg     *telemetry.Registry

	// allowIngest gates POST /v1/ingest (on by default; an operator
	// exposing the checker publicly turns the write path off).
	allowIngest bool

	requestSeconds *telemetry.Histogram
	rateLimited    *telemetry.Counter
}

// SetAllowIngest enables or disables POST /v1/ingest. Call before
// serving.
func (a *API) SetAllowIngest(allow bool) { a.allowIngest = allow }

// NewAPI wires a Service to HTTP. limiter may be nil (no rate limit);
// reg may be nil (no HTTP telemetry).
func NewAPI(svc *Service, limiter *RateLimiter, reg *telemetry.Registry) *API {
	if limiter != nil {
		limiter.evictions = reg.Counter("keycheck_ratelimit_evictions_total")
	}
	return &API{
		svc:            svc,
		limiter:        limiter,
		reg:            reg,
		allowIngest:    true,
		requestSeconds: reg.Histogram("keycheck_http_request_seconds", telemetry.DurationBuckets),
		rateLimited:    reg.Counter("keycheck_ratelimited_total"),
	}
}

// Mux returns the API routes:
//
//	POST /v1/check      check one modulus or certificate
//	POST /v1/ingest     fold new moduli into the live index
//	GET  /v1/stats      index, cache and limiter statistics
//	GET  /v1/exemplars  known factored/clean corpus keys (?n=8)
//	GET  /healthz       liveness: 200 while the process serves at all
//	GET  /readyz        readiness: 200 only with a snapshot loaded and
//	                    the drain gate open (503 otherwise)
func (a *API) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/check", a.withRequestID(a.handleCheck))
	mux.HandleFunc("/v1/ingest", a.withRequestID(a.handleIngest))
	mux.HandleFunc("/v1/stats", a.withRequestID(a.handleStats))
	mux.HandleFunc("/v1/exemplars", a.withRequestID(a.handleExemplars))
	mux.HandleFunc("/healthz", a.handleHealthz)
	mux.HandleFunc("/readyz", a.handleReadyz)
	return mux
}

// handleHealthz is the liveness probe: it answers as long as the
// process accepts connections, carrying no judgement about the index.
// Deliberately the cheapest possible handler — no parsing, no locks
// beyond the response write — so an aggressive prober costs nothing.
func (a *API) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ok\n"))
}

// handleReadyz is the readiness probe the cluster router keys replica
// selection on: 200 only when a snapshot is published and the drain
// gate is open. A draining replica flips to 503 here while still
// finishing its in-flight checks, so the router stops sending new
// traffic without the replica dropping anything.
func (a *API) handleReadyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !a.svc.Ready() {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("draining\n"))
		return
	}
	w.Write([]byte("ready\n"))
}

// withRequestID resolves the request's correlation ID — a valid inbound
// X-Request-Id, the trace-id of a W3C traceparent, or a freshly minted
// one — threads it through the context, and echoes it on the response.
// It wraps every route, so every response (200s, sheds, rate limits and
// malformed bodies alike) carries X-Request-Id.
func (a *API) withRequestID(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id, _ := telemetry.HTTPRequestID(r)
		w.Header().Set("X-Request-Id", id)
		h(w, r.WithContext(telemetry.ContextWithRequestID(r.Context(), id)))
	}
}

func (a *API) handleCheck(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { a.requestSeconds.ObserveDuration(time.Since(start)) }()
	if r.Method != http.MethodPost {
		a.writeError(w, r, http.StatusMethodNotAllowed, errors.New("keycheck: POST only"))
		return
	}
	if !a.limiter.Allow(clientKey(r)) {
		a.rateLimited.Inc()
		w.Header().Set("Retry-After", "1")
		a.writeError(w, r, http.StatusTooManyRequests, errors.New("keycheck: rate limit exceeded"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		a.writeError(w, r, http.StatusBadRequest, fmt.Errorf("%w: %v", ErrMalformed, err))
		return
	}
	n, e, err := parseSubmission(body)
	if err != nil {
		a.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	v, err := a.svc.Check(r.Context(), n)
	if err != nil {
		switch {
		case errors.Is(err, ErrOverloaded), errors.Is(err, ErrDraining):
			w.Header().Set("Retry-After", "1")
			a.writeError(w, r, http.StatusServiceUnavailable, err)
		default:
			a.writeError(w, r, http.StatusInternalServerError, err)
		}
		return
	}
	// The exponent fold-in happens after the service (and its cache):
	// cached verdicts are exponent-free and keyed by modulus alone, and
	// the same modulus under different exponents reuses one cache entry.
	if uv := ApplyExponent(v, e); uv.Status != v.Status {
		a.svc.verdicts[StatusUnsafeExponent].Inc()
		v = uv
	}
	a.writeJSON(w, http.StatusOK, v)
}

// ingestRequest is the JSON envelope for POST /v1/ingest: new moduli to
// fold into the live index without a restart.
type ingestRequest struct {
	ModuliHex []string `json:"moduli_hex"`
}

// maxIngestModuli bounds one ingest request; bigger deltas belong in
// delta segments fed through SIGHUP.
const maxIngestModuli = 4096

func (a *API) handleIngest(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	defer func() { a.requestSeconds.ObserveDuration(time.Since(start)) }()
	if r.Method != http.MethodPost {
		a.writeError(w, r, http.StatusMethodNotAllowed, errors.New("keycheck: POST only"))
		return
	}
	if !a.allowIngest {
		a.writeError(w, r, http.StatusForbidden, errors.New("keycheck: ingest disabled on this server"))
		return
	}
	if !a.limiter.Allow(clientKey(r)) {
		a.rateLimited.Inc()
		w.Header().Set("Retry-After", "1")
		a.writeError(w, r, http.StatusTooManyRequests, errors.New("keycheck: rate limit exceeded"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		a.writeError(w, r, http.StatusBadRequest, fmt.Errorf("%w: %v", ErrMalformed, err))
		return
	}
	var req ingestRequest
	if err := json.Unmarshal(body, &req); err != nil {
		a.writeError(w, r, http.StatusBadRequest, fmt.Errorf("%w: %v", ErrMalformed, err))
		return
	}
	if len(req.ModuliHex) == 0 {
		a.writeError(w, r, http.StatusBadRequest, fmt.Errorf("%w: moduli_hex is empty", ErrMalformed))
		return
	}
	if len(req.ModuliHex) > maxIngestModuli {
		a.writeError(w, r, http.StatusBadRequest,
			fmt.Errorf("%w: %d moduli exceeds the per-request limit of %d", ErrMalformed, len(req.ModuliHex), maxIngestModuli))
		return
	}
	// All-or-nothing: a malformed modulus rejects the request before the
	// merge starts, so a partially-applied delta can't exist.
	store := scanstore.New()
	now := time.Now().UTC()
	for i, hex := range req.ModuliHex {
		n, err := ParseModulusHex(hex)
		if err != nil {
			a.writeError(w, r, http.StatusBadRequest, fmt.Errorf("moduli_hex[%d]: %w", i, err))
			return
		}
		// SourceAPI: a client-submitted key, not a scan observation —
		// per-source statistics must not credit a scan project with it.
		store.AddBareKeyObservation(clientKey(r), now, scanstore.SourceAPI, scanstore.HTTPS, n)
	}
	rep, err := a.svc.Ingest(r.Context(), BuildInput{Store: store})
	if err != nil {
		a.writeError(w, r, http.StatusInternalServerError, err)
		return
	}
	a.writeJSON(w, http.StatusOK, rep)
}

// ParseSubmission parses a /v1/check request body — the JSON envelope
// (modulus_hex / cert_pem / cert_der) or a raw PEM — into a validated
// modulus. Exported so the cluster router can resolve a submission's
// home shard before forwarding it.
func ParseSubmission(body []byte) (*big.Int, error) {
	n, _, err := parseSubmission(body)
	return n, err
}

// ParseSubmissionWithExponent is ParseSubmission plus the submission's
// public exponent when one is available — from the certificate, or from
// the envelope's exponent_hex next to modulus_hex. A nil exponent with
// a nil error means the submission carried none (bare modulus).
func ParseSubmissionWithExponent(body []byte) (n, e *big.Int, err error) {
	return parseSubmission(body)
}

// parseSubmission accepts the JSON envelope or a raw PEM body.
func parseSubmission(body []byte) (n, e *big.Int, err error) {
	trimmed := bytes.TrimSpace(body)
	if bytes.HasPrefix(trimmed, []byte("-----BEGIN")) {
		return parsePEMWithExponent(trimmed)
	}
	var req checkRequest
	if err := json.Unmarshal(trimmed, &req); err != nil {
		return nil, nil, fmt.Errorf("%w: body is neither JSON nor PEM: %v", ErrMalformed, err)
	}
	switch {
	case req.ModulusHex != "":
		n, err = ParseModulusHex(req.ModulusHex)
		if err != nil {
			return nil, nil, err
		}
		if req.ExponentHex != "" {
			if e, err = parseExponentHex(req.ExponentHex); err != nil {
				return nil, nil, err
			}
		}
		return n, e, nil
	case req.CertPEM != "":
		return parsePEMWithExponent([]byte(req.CertPEM))
	case len(req.CertDER) > 0:
		c, err := certs.Parse(req.CertDER)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: cert_der: %v", ErrMalformed, err)
		}
		if n, err = validateModulus(c.N); err != nil {
			return nil, nil, err
		}
		return n, big.NewInt(int64(c.E)), nil
	}
	return nil, nil, fmt.Errorf("%w: set one of modulus_hex, cert_pem, cert_der", ErrMalformed)
}

// parsePEMWithExponent mirrors ParseCertPEM but keeps the certificate's
// exponent; bare RSA MODULUS blocks carry none.
func parsePEMWithExponent(data []byte) (*big.Int, *big.Int, error) {
	if c, err := certs.ParsePEM(data); err == nil {
		n, err := validateModulus(c.N)
		if err != nil {
			return nil, nil, err
		}
		return n, big.NewInt(int64(c.E)), nil
	}
	mods, err := certs.ParseModulusPEMs(data)
	if err != nil || len(mods) == 0 {
		return nil, nil, fmt.Errorf("%w: no certificate or modulus PEM block", ErrMalformed)
	}
	n, err := validateModulus(mods[0])
	if err != nil {
		return nil, nil, err
	}
	return n, nil, nil
}

// maxExponentHexDigits bounds exponent_hex; anything wider than the
// modulus bound is garbage and classifies as oversized long before
// this, so the cap only guards against megabyte bodies.
const maxExponentHexDigits = MaxModulusBits / 4

// parseExponentHex parses exponent_hex. Unlike the modulus, tiny, even
// and zero values are accepted — classifying broken exponents is the
// point of carrying it.
func parseExponentHex(s string) (*big.Int, error) {
	s = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(s), "0x"))
	if s == "" {
		return nil, fmt.Errorf("%w: empty exponent_hex", ErrMalformed)
	}
	if len(s) > maxExponentHexDigits {
		return nil, fmt.Errorf("%w: exponent_hex longer than %d digits", ErrMalformed, maxExponentHexDigits)
	}
	if len(s)%2 == 1 {
		s = "0" + s
	}
	raw, err := hex.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("%w: exponent_hex: %v", ErrMalformed, err)
	}
	return new(big.Int).SetBytes(raw), nil
}

func (a *API) handleStats(w http.ResponseWriter, r *http.Request) {
	var resp statsResponse
	resp.Index = a.svc.Index().Snapshot().Stats()
	resp.Cache.Size = a.svc.CacheLen()
	resp.Cache.Hits = a.svc.cacheHits.Value()
	resp.Cache.Misses = a.svc.cacheMisses.Value()
	resp.SnapshotSwaps = a.svc.Index().Swaps()
	resp.TrackedClients = a.limiter.Clients()
	a.writeJSON(w, http.StatusOK, resp)
}

func (a *API) handleExemplars(w http.ResponseWriter, r *http.Request) {
	n := 8
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 || v > 1024 {
			a.writeError(w, r, http.StatusBadRequest, fmt.Errorf("%w: n must be 1..1024", ErrMalformed))
			return
		}
		n = v
	}
	var resp exemplarsResponse
	snap := a.svc.Index().Snapshot()
	resp.Factored, resp.Clean = snap.Exemplars(n)
	resp.Shared = snap.SharedExemplars(n)
	a.writeJSON(w, http.StatusOK, resp)
}

func (a *API) writeJSON(w http.ResponseWriter, code int, v any) {
	a.reg.Counter(fmt.Sprintf(`keycheck_http_requests_total{code="%d"}`, code)).Inc()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeError renders a failure with the request's correlation ID in
// both the body and (via withRequestID) the X-Request-Id header, and
// leaves a warn-level event in the flight recorder so the operator can
// look the ID up after the fact.
func (a *API) writeError(w http.ResponseWriter, r *http.Request, code int, err error) {
	id := telemetry.RequestIDFrom(r.Context())
	a.svc.cfg.Events.Warn(r.Context(), "request failed",
		slog.String("path", r.URL.Path),
		slog.Int("status", code),
		slog.String("error", err.Error()))
	a.writeJSON(w, code, errorResponse{Error: err.Error(), RequestID: id})
}

// clientKey identifies the caller for rate limiting: the first
// X-Forwarded-For hop when present (the deployment-behind-a-proxy
// case), else the connection's source IP.
func clientKey(r *http.Request) string {
	if xff := r.Header.Get("X-Forwarded-For"); xff != "" {
		if i := strings.IndexByte(xff, ','); i >= 0 {
			xff = xff[:i]
		}
		return strings.TrimSpace(xff)
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

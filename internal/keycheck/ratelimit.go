package keycheck

import (
	"sync"
	"time"

	"github.com/factorable/weakkeys/internal/telemetry"
)

// RateLimiter is a per-client token bucket: each client key (the HTTP
// layer uses the caller's IP) gets Burst tokens refilled at Rate per
// second. A public check service is a free factoring oracle if left
// unmetered — the paper's ethics section withheld exactly this data —
// so the limiter is on by default in cmd/keyserverd.
type RateLimiter struct {
	mu        sync.Mutex
	rate      float64 // tokens per second
	burst     float64
	max       int // tracked-client bound
	buckets   map[string]*tokenBucket
	now       func() time.Time
	evictions *telemetry.Counter // forced (non-idle) evictions; nil-safe
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// maxTrackedClients bounds limiter memory; see sweep.
const maxTrackedClients = 16384

// NewRateLimiter returns a limiter granting burst tokens per client,
// refilled at rate per second. rate <= 0 returns nil; a nil limiter
// allows everything.
func NewRateLimiter(rate float64, burst int) *RateLimiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &RateLimiter{
		rate:    rate,
		burst:   float64(burst),
		max:     maxTrackedClients,
		buckets: make(map[string]*tokenBucket),
		now:     time.Now,
	}
}

// Allow reports whether client may proceed, consuming one token if so.
func (l *RateLimiter) Allow(client string) bool {
	if l == nil {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b := l.buckets[client]
	if b == nil {
		if len(l.buckets) >= l.max {
			l.sweepLocked(now)
		}
		b = &tokenBucket{tokens: l.burst, last: now}
		l.buckets[client] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// sweepLocked enforces the tracked-client bound. First pass: drop
// buckets that have refilled to burst — an idle client's bucket is
// indistinguishable from a fresh one, so evicting it never changes
// behaviour. If every client is still active (the address-spraying
// case: an attacker cycling source addresses keeps every bucket warm),
// buckets are force-evicted stalest-first until the map is back under
// max; each forced eviction is counted, since it can briefly re-grant a
// throttled client its burst.
func (l *RateLimiter) sweepLocked(now time.Time) {
	for key, b := range l.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*l.rate >= l.burst {
			delete(l.buckets, key)
		}
	}
	for len(l.buckets) >= l.max {
		var stalest string
		var stalestAt time.Time
		for key, b := range l.buckets {
			if stalest == "" || b.last.Before(stalestAt) {
				stalest, stalestAt = key, b.last
			}
		}
		delete(l.buckets, stalest)
		l.evictions.Inc()
	}
}

// Clients returns the number of tracked client buckets.
func (l *RateLimiter) Clients() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}

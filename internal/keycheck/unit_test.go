package keycheck

import (
	"errors"
	"fmt"
	"math/big"
	"testing"
	"time"

	"github.com/factorable/weakkeys/internal/telemetry"
)

func TestBloomNoFalseNegatives(t *testing.T) {
	const n = 2000
	f := newBloom(n)
	for i := 0; i < n; i++ {
		f.add(fmt.Sprintf("member-%d", i))
	}
	for i := 0; i < n; i++ {
		if !f.mayContain(fmt.Sprintf("member-%d", i)) {
			t.Fatalf("false negative for member-%d", i)
		}
	}
	// ~1% expected at 10 bits/item, k=7; 5% is the alarm threshold.
	fp := 0
	for i := 0; i < n; i++ {
		if f.mayContain(fmt.Sprintf("stranger-%d", i)) {
			fp++
		}
	}
	if fp > n/20 {
		t.Errorf("false positive rate %d/%d > 5%%", fp, n)
	}
}

func TestBloomNil(t *testing.T) {
	f := newBloom(0)
	if f != nil {
		t.Fatal("empty bloom not nil")
	}
	f.add("x") // must not panic
	if f.mayContain("x") {
		t.Error("nil bloom claims membership")
	}
}

func TestVerdictCacheLRU(t *testing.T) {
	c := newVerdictCache(2)
	va := Verdict{Status: StatusClean, ModulusBits: 1}
	vb := Verdict{Status: StatusClean, ModulusBits: 2}
	vc := Verdict{Status: StatusFactored, ModulusBits: 3}

	c.put("a", 1, va)
	c.put("b", 1, vb)
	c.put("c", 1, vc) // evicts a, the least recently used
	if _, ok := c.get("a", 1); ok {
		t.Error("a survived eviction")
	}
	if v, ok := c.get("b", 1); !ok || v.ModulusBits != 2 {
		t.Error("b lost")
	}
	c.put("d", 1, va) // b was just touched, so c is evicted
	if _, ok := c.get("c", 1); ok {
		t.Error("c survived eviction after b was touched")
	}
	if _, ok := c.get("b", 1); !ok {
		t.Error("recently used b evicted")
	}

	c.put("b", 1, vc) // update in place, no growth
	if v, _ := c.get("b", 1); v.Status != StatusFactored {
		t.Error("update lost")
	}
	if c.len() != 2 {
		t.Errorf("len %d, want 2", c.len())
	}
	c.purge()
	if c.len() != 0 {
		t.Errorf("purged len %d", c.len())
	}
}

func TestVerdictCacheNil(t *testing.T) {
	for _, c := range []*verdictCache{newVerdictCache(0), newVerdictCache(-1)} {
		c.put("k", 1, Verdict{})
		if _, ok := c.get("k", 1); ok {
			t.Error("nil cache hit")
		}
		if c.len() != 0 {
			t.Error("nil cache has length")
		}
		c.purge()
	}
}

// TestVerdictCacheGeneration: an entry tagged with one snapshot
// generation misses — and is evicted — when probed under another.
func TestVerdictCacheGeneration(t *testing.T) {
	c := newVerdictCache(4)
	c.put("k", 1, Verdict{Status: StatusFactored})
	if v, ok := c.get("k", 1); !ok || v.Status != StatusFactored {
		t.Fatal("same-generation hit lost")
	}
	if _, ok := c.get("k", 2); ok {
		t.Fatal("cross-generation entry served")
	}
	if c.len() != 0 {
		t.Errorf("stale entry not evicted: len %d", c.len())
	}
	// Re-put under the new generation wins.
	c.put("k", 2, Verdict{Status: StatusClean})
	if v, ok := c.get("k", 2); !ok || v.Status != StatusClean {
		t.Error("new-generation entry lost")
	}
}

func TestRateLimiterBurstAndRefill(t *testing.T) {
	l := NewRateLimiter(2, 3) // 2 tokens/sec, burst 3
	now := time.Unix(1_000_000, 0)
	l.now = func() time.Time { return now }

	for i := 0; i < 3; i++ {
		if !l.Allow("c") {
			t.Fatalf("burst request %d denied", i)
		}
	}
	if l.Allow("c") {
		t.Fatal("allowed past burst")
	}
	now = now.Add(500 * time.Millisecond) // refills one token
	if !l.Allow("c") {
		t.Error("denied after refill")
	}
	if l.Allow("c") {
		t.Error("allowed beyond refilled tokens")
	}
	now = now.Add(time.Hour) // refill caps at burst, not an hour of tokens
	for i := 0; i < 3; i++ {
		if !l.Allow("c") {
			t.Fatalf("post-idle request %d denied", i)
		}
	}
	if l.Allow("c") {
		t.Error("idle client accumulated more than burst")
	}
}

func TestRateLimiterNil(t *testing.T) {
	var l *RateLimiter
	if !l.Allow("anyone") || l.Clients() != 0 {
		t.Error("nil limiter must allow everything")
	}
	if NewRateLimiter(0, 5) != nil {
		t.Error("rate 0 should disable the limiter")
	}
}

// TestRateLimiterSweep: when the tracked-client map is full, buckets
// that have refilled to burst (idle clients) are evicted; an actively
// throttled client's bucket survives.
func TestRateLimiterSweep(t *testing.T) {
	l := NewRateLimiter(1, 2)
	now := time.Unix(2_000_000, 0)
	l.now = func() time.Time { return now }
	l.max = 2

	l.Allow("active")
	l.Allow("active") // exhausted: 0 tokens
	l.Allow("idle")
	now = now.Add(time.Hour) // idle's bucket refills fully; so does active's

	l.Allow("active") // active: back to burst, consumes one → 1 token
	if l.Clients() != 2 {
		t.Fatalf("tracked %d clients, want 2", l.Clients())
	}
	// A third client forces a sweep: idle (full bucket) is dropped,
	// active (partial bucket) kept.
	if !l.Allow("newcomer") {
		t.Fatal("newcomer denied")
	}
	if l.Clients() != 2 {
		t.Errorf("after sweep: %d clients, want 2 (active + newcomer)", l.Clients())
	}
	if !l.Allow("active") {
		t.Error("active client lost its bucket in the sweep")
	}
	if l.Allow("active") {
		t.Error("active client's token count reset by sweep")
	}
}

func TestParseModulusHex(t *testing.T) {
	hex := modN1.Text(16)
	for _, in := range []string{hex, "0x" + hex, "  0x" + hex + "\n", "0" + hex} {
		n, err := ParseModulusHex(in)
		if err != nil {
			t.Errorf("%q: %v", in, err)
			continue
		}
		if n.Cmp(modN1) != 0 {
			t.Errorf("%q parsed to %s", in, n.Text(16))
		}
	}
	for _, in := range []string{
		"", "0x", "nothex", "ff", // empty / too small
		modN1.Text(16) + "00", // even
	} {
		if _, err := ParseModulusHex(in); !errors.Is(err, ErrMalformed) {
			t.Errorf("%q: err = %v, want ErrMalformed", in, err)
		}
	}
	// An oversized modulus is rejected before it reaches the GCD path.
	huge := new(big.Int).Lsh(big.NewInt(1), MaxModulusBits)
	huge.SetBit(huge, 0, 1)
	if _, err := ParseModulusHex(huge.Text(16)); !errors.Is(err, ErrMalformed) {
		t.Errorf("oversized modulus: err = %v, want ErrMalformed", err)
	}
}

func TestParseCertDERGarbage(t *testing.T) {
	if _, err := ParseCertDER([]byte("junk")); !errors.Is(err, ErrMalformed) {
		t.Errorf("err = %v, want ErrMalformed", err)
	}
}

// TestRateLimiterHardCap is the regression test for unbounded bucket
// growth: when every tracked client is actively throttled (nothing idle
// for the sweep to reclaim — an attacker cycling source addresses), the
// limiter force-evicts the stalest bucket instead of growing past max,
// and counts each forced eviction.
func TestRateLimiterHardCap(t *testing.T) {
	reg := telemetry.New()
	l := NewRateLimiter(0.001, 1) // refill so slow no bucket ever looks idle
	now := time.Unix(3_000_000, 0)
	l.now = func() time.Time { return now }
	l.max = 8
	l.evictions = reg.Counter("keycheck_ratelimit_evictions_total")

	for i := 0; i < 1000; i++ {
		client := fmt.Sprintf("198.51.100.%d", i)
		l.Allow(client) // consumes the single burst token
		l.Allow(client) // denied: bucket stays hot
		if got := l.Clients(); got > l.max {
			t.Fatalf("client %d: tracked %d buckets, cap %d", i, got, l.max)
		}
		now = now.Add(time.Millisecond) // distinct timestamps: eviction is stalest-first
	}
	if got := reg.CounterValue("keycheck_ratelimit_evictions_total"); got < 1000-int64(l.max) {
		t.Errorf("forced evictions = %d, want >= %d", got, 1000-l.max)
	}
	// The most recent clients — the freshest buckets — must have survived.
	if l.Allow("198.51.100.999") {
		t.Error("freshest throttled client's bucket was evicted (burst re-granted)")
	}
}

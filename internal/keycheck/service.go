package keycheck

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/big"
	"runtime"
	"sync"
	"time"

	"github.com/factorable/weakkeys/internal/faults"
	"github.com/factorable/weakkeys/internal/kernel"
	"github.com/factorable/weakkeys/internal/telemetry"
)

// Overload and lifecycle errors; the HTTP layer maps both to 503.
var (
	// ErrOverloaded is returned when every worker is busy and the
	// caller's queue wait expired — the load-shedding path.
	ErrOverloaded = errors.New("keycheck: overloaded, try again")
	// ErrDraining is returned for checks arriving after Drain started.
	ErrDraining = errors.New("keycheck: draining for shutdown")
)

// Config tunes a Service. The zero value serves with GOMAXPROCS
// workers, a 50ms queue wait and a 4096-entry verdict cache.
type Config struct {
	// Workers bounds concurrent GCD-path checks.
	Workers int
	// QueueWait is how long a check waits for a worker before being
	// shed with ErrOverloaded. Zero selects 50ms; negative sheds
	// immediately.
	QueueWait time.Duration
	// CacheSize is the LRU verdict-cache capacity. Zero selects 4096;
	// negative disables caching.
	CacheSize int
	// Metrics receives the serving telemetry (nil disables).
	Metrics *telemetry.Registry
	// Events receives structured serving events — shed decisions,
	// snapshot swaps, ingest reports — correlated with the request ID
	// riding the context (nil disables).
	Events *telemetry.EventLog
	// Requests, when set, tracks per-request state for /debug/requests:
	// in-flight checks and ingests plus the recent and slowest finished
	// ones (nil disables).
	Requests *telemetry.RequestTracker
	// Faults, when set, injects per-check chaos: Refuse sheds the
	// check, Stall holds its worker for FaultStall. Drives the chaos
	// tests; nil in production.
	Faults *faults.Plan
	// FaultStall is the injected Stall duration (default 10ms).
	FaultStall time.Duration
	// OnIngest, when set, observes every ingest that published a new
	// snapshot — the cluster sync journal's feed. The report carries
	// the hex keys of the novel moduli in NovelKeys. Called after the
	// successor snapshot is live, still under the ingest serialization
	// lock, so observers see publishes in order.
	OnIngest func(IngestReport)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueWait == 0 {
		c.QueueWait = 50 * time.Millisecond
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	if c.FaultStall <= 0 {
		c.FaultStall = 10 * time.Millisecond
	}
	return c
}

// Service is the production serving path over an Index: bounded worker
// pool, LRU verdict cache, graceful drain and telemetry. Safe for
// concurrent use.
type Service struct {
	idx   *Index
	cfg   Config
	cache *verdictCache
	sem   chan struct{}

	drainMu  sync.Mutex
	draining bool
	inflight sync.WaitGroup

	// ingestMu serializes ingests: each folds the delta into the
	// snapshot it loaded, so two running concurrently would each publish
	// a successor missing the other's moduli.
	ingestMu sync.Mutex

	checkSeconds  *telemetry.Histogram
	cacheHits     *telemetry.Counter
	cacheMisses   *telemetry.Counter
	inflightGauge *telemetry.Gauge
	verdicts      map[Status]*telemetry.Counter

	// prePutHook, when set by tests, runs between computing a verdict
	// and inserting it into the cache — the window the generation tag
	// protects against a concurrent Publish.
	prePutHook func()
}

// NewService publishes snap and returns a serving wrapper around it.
func NewService(snap *Snapshot, cfg Config) *Service {
	cfg = cfg.withDefaults()
	reg := cfg.Metrics
	s := &Service{
		idx:           NewIndex(snap),
		cfg:           cfg,
		cache:         newVerdictCache(cfg.CacheSize),
		sem:           make(chan struct{}, cfg.Workers),
		checkSeconds:  reg.Histogram("keycheck_check_seconds", telemetry.DurationBuckets),
		cacheHits:     reg.Counter("keycheck_cache_hits_total"),
		cacheMisses:   reg.Counter("keycheck_cache_misses_total"),
		inflightGauge: reg.Gauge("keycheck_inflight_checks"),
		verdicts: map[Status]*telemetry.Counter{
			StatusFactored:       reg.Counter(`keycheck_checks_total{verdict="factored"}`),
			StatusSharedFactor:   reg.Counter(`keycheck_checks_total{verdict="shared_factor"}`),
			StatusFermatWeak:     reg.Counter(`keycheck_checks_total{verdict="fermat_weak"}`),
			StatusSmallFactor:    reg.Counter(`keycheck_checks_total{verdict="small_factor"}`),
			StatusSharedModulus:  reg.Counter(`keycheck_checks_total{verdict="shared_modulus"}`),
			StatusUnsafeExponent: reg.Counter(`keycheck_checks_total{verdict="unsafe_exponent"}`),
			StatusClean:          reg.Counter(`keycheck_checks_total{verdict="clean"}`),
		},
	}
	s.publishGauges(snap)
	return s
}

// Index exposes the underlying index (read path and snapshot swap).
func (s *Service) Index() *Index { return s.idx }

// Publish atomically swaps in a rebuilt snapshot — the fold-in motion
// for new study results — and invalidates the verdict cache, since a
// previously clean key may now be factored. Readers are never blocked.
func (s *Service) Publish(snap *Snapshot) {
	s.idx.Swap(snap)
	s.cache.purge()
	s.cfg.Metrics.Counter("keycheck_snapshot_swaps_total").Inc()
	s.publishGauges(snap)
	if snap != nil {
		s.cfg.Events.Info(context.Background(), "snapshot published",
			slog.Uint64("generation", snap.Generation()),
			slog.Int("moduli", snap.moduli),
			slog.Int("factored", snap.factored))
	}
}

func (s *Service) publishGauges(snap *Snapshot) {
	reg := s.cfg.Metrics
	if reg == nil || snap == nil {
		return
	}
	reg.Gauge("keycheck_index_moduli").Set(float64(snap.moduli))
	reg.Gauge("keycheck_index_factored").Set(float64(snap.factored))
	for i, sh := range snap.shards {
		reg.Gauge(fmt.Sprintf(`keycheck_shard_moduli{shard="%d"}`, i)).Set(float64(sh.moduli))
		reg.Gauge(fmt.Sprintf(`keycheck_shard_factored{shard="%d"}`, i)).Set(float64(len(sh.factored)))
	}
}

func (s *Service) shed(ctx context.Context, cause string) error {
	s.cfg.Metrics.Counter(`keycheck_shed_total{cause="` + cause + `"}`).Inc()
	s.cfg.Events.Warn(ctx, "check shed", slog.String("cause", cause))
	if cause == "draining" {
		return ErrDraining
	}
	return ErrOverloaded
}

// Check runs one modulus through the serving path: drain gate, fault
// injection, cache, bounded worker pool, index lookup.
func (s *Service) Check(ctx context.Context, n *big.Int) (Verdict, error) {
	track := s.cfg.Requests.Start("check", telemetry.RequestIDFrom(ctx))
	track.Set("modulus_bits", n.BitLen())
	s.drainMu.Lock()
	if s.draining {
		s.drainMu.Unlock()
		track.Finish("shed:draining")
		return Verdict{}, s.shed(ctx, "draining")
	}
	s.inflight.Add(1)
	s.drainMu.Unlock()
	defer s.inflight.Done()

	var stall time.Duration
	if s.cfg.Faults != nil {
		switch d := s.cfg.Faults.Next(); {
		case d.Crash || d.Action == faults.Refuse:
			s.cfg.Metrics.Counter("keycheck_faults_injected_total").Inc()
			track.Finish("shed:fault")
			return Verdict{}, s.shed(ctx, "fault")
		case d.Action == faults.Stall:
			s.cfg.Metrics.Counter("keycheck_faults_injected_total").Inc()
			stall = s.cfg.FaultStall
		}
	}

	// The whole check — cache probe, index lookup, cache insert — is
	// pinned to one snapshot, and cache traffic is tagged with its
	// generation. Without the tag, a check that computes its verdict
	// against the pre-swap snapshot and loses the race with Publish's
	// purge would insert a stale verdict afterwards, to be served until
	// the next swap.
	snap := s.idx.Snapshot()
	key := string(n.Bytes())
	if v, ok := s.cache.get(key, snap.Generation()); ok {
		s.cacheHits.Inc()
		v.Cached = true
		s.verdicts[v.Status].Inc()
		track.Set("cache", "hit")
		track.Set("verdict", string(v.Status))
		track.Set("shard", v.Shard)
		track.Finish(string(v.Status))
		s.cfg.Events.Debug(ctx, "check served",
			slog.String("verdict", string(v.Status)),
			slog.Int("shard", v.Shard),
			slog.Bool("cached", true))
		return v, nil
	}
	s.cacheMisses.Inc()
	track.Set("cache", "miss")

	// Bounded pool: a slot now, or within QueueWait, or shed.
	select {
	case s.sem <- struct{}{}:
	default:
		if s.cfg.QueueWait < 0 {
			track.Finish("shed:queue")
			return Verdict{}, s.shed(ctx, "queue")
		}
		timer := time.NewTimer(s.cfg.QueueWait)
		defer timer.Stop()
		select {
		case s.sem <- struct{}{}:
		case <-timer.C:
			track.Finish("shed:queue")
			return Verdict{}, s.shed(ctx, "queue")
		case <-ctx.Done():
			track.Finish("canceled")
			return Verdict{}, ctx.Err()
		}
	}
	s.inflightGauge.Add(1)
	defer func() {
		s.inflightGauge.Add(-1)
		<-s.sem
	}()

	if stall > 0 {
		select {
		case <-time.After(stall):
		case <-ctx.Done():
			track.Finish("canceled")
			return Verdict{}, ctx.Err()
		}
	}

	start := time.Now()
	v := snap.Check(n)
	s.checkSeconds.ObserveDuration(time.Since(start))
	s.verdicts[v.Status].Inc()
	if s.prePutHook != nil {
		s.prePutHook()
	}
	s.cache.put(key, snap.Generation(), v)
	track.Set("verdict", string(v.Status))
	track.Set("shard", v.Shard)
	track.Finish(string(v.Status))
	s.cfg.Events.Debug(ctx, "check served",
		slog.String("verdict", string(v.Status)),
		slog.Int("shard", v.Shard),
		slog.Bool("cached", false),
		slog.Duration("latency", time.Since(start)))
	return v, nil
}

// Ingest folds a delta corpus into the live snapshot and publishes the
// merged successor (see Snapshot.Ingest). Checks are never blocked: the
// merge happens off to the side and lands via the same atomic swap as
// Publish. Ingests are serialized against each other; an ingest that
// finds nothing new publishes nothing.
func (s *Service) Ingest(ctx context.Context, in BuildInput) (IngestReport, error) {
	// Ingests ride the same drain gate as checks: one arriving after
	// Drain started is refused, and Drain waits for a running merge to
	// publish (or fail) before declaring the service quiesced — the
	// shutdown race the cluster exercises on every rolling restart.
	s.drainMu.Lock()
	if s.draining {
		s.drainMu.Unlock()
		return IngestReport{}, ErrDraining
	}
	s.inflight.Add(1)
	s.drainMu.Unlock()
	defer s.inflight.Done()

	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	reg := s.cfg.Metrics
	track := s.cfg.Requests.Start("ingest", telemetry.RequestIDFrom(ctx))
	// Carry the event log down the stack so the kernel engine can emit
	// correlated job events without a signature change.
	ctx = telemetry.ContextWithEvents(ctx, s.cfg.Events)
	start := time.Now()
	snap := s.idx.Snapshot()
	ns, rep, err := snap.Ingest(ctx, in)
	reg.Histogram("keycheck_ingest_seconds", telemetry.DurationBuckets).ObserveDuration(time.Since(start))
	if err != nil {
		reg.Counter(`keycheck_ingest_total{outcome="error"}`).Inc()
		track.Finish("error")
		s.cfg.Events.Error(ctx, "ingest failed", slog.String("error", err.Error()))
		return rep, err
	}
	reg.Counter(`keycheck_ingest_total{outcome="ok"}`).Inc()
	reg.Counter("keycheck_ingest_moduli_total").Add(int64(rep.DeltaModuli))
	reg.Counter("keycheck_ingest_duplicates_total").Add(int64(rep.Duplicates))
	reg.Counter("keycheck_ingest_factored_total").Add(int64(rep.NewFactored))
	reg.Counter("keycheck_ingest_refactored_total").Add(int64(rep.Refactored))
	if reg != nil {
		for _, sr := range rep.Shards {
			reg.Gauge(fmt.Sprintf(`keycheck_shard_nodes_reused{shard="%d"}`, sr.Shard)).Set(float64(sr.NodesReused))
			reg.Gauge(fmt.Sprintf(`keycheck_shard_nodes_total{shard="%d"}`, sr.Shard)).Set(float64(sr.NodesTotal))
		}
		kernel.FromContext(ctx).Publish(reg)
	}
	track.Set("delta_moduli", rep.DeltaModuli)
	track.Set("new_factored", rep.NewFactored)
	track.Set("duplicates", rep.Duplicates)
	s.cfg.Events.Info(ctx, "ingest report",
		slog.Int("delta_moduli", rep.DeltaModuli),
		slog.Int("duplicates", rep.Duplicates),
		slog.Int("new_factored", rep.NewFactored),
		slog.Int("refactored", rep.Refactored),
		slog.Bool("published", ns != snap),
		slog.Duration("latency", time.Since(start)))
	if ns != snap {
		s.Publish(ns)
		if s.cfg.OnIngest != nil {
			s.cfg.OnIngest(rep)
		}
		track.Finish("published")
	} else {
		track.Finish("noop")
	}
	return rep, nil
}

// Draining reports whether Drain has started — the readiness half of
// the /readyz probe: a draining replica still answers in-flight checks
// but must stop receiving new traffic.
func (s *Service) Draining() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	return s.draining
}

// Ready reports whether the service can take traffic: a snapshot is
// published and the drain gate is open.
func (s *Service) Ready() bool {
	return s.idx.Snapshot() != nil && !s.Draining()
}

// Drain stops admitting new checks and blocks until every in-flight
// check finishes — the graceful half of shutdown. Safe to call more
// than once.
func (s *Service) Drain() {
	s.drainMu.Lock()
	already := s.draining
	s.draining = true
	s.drainMu.Unlock()
	if !already {
		s.cfg.Events.Info(context.Background(), "drain started")
	}
	s.inflight.Wait()
	if !already {
		s.cfg.Events.Info(context.Background(), "drain complete")
	}
}

// CacheLen returns the current verdict-cache size.
func (s *Service) CacheLen() int { return s.cache.len() }

package keycheck

import (
	"context"
	"fmt"
	"math/big"
	"time"

	"github.com/factorable/weakkeys/internal/anomaly"
	"github.com/factorable/weakkeys/internal/batchgcd"
	"github.com/factorable/weakkeys/internal/kernel"
	"github.com/factorable/weakkeys/internal/prodtree"
)

// ShardIngest is the per-shard ledger of one Ingest: how many moduli and
// factored entries the shard gained, and how much of its product tree
// survived by reference. A Reused == Total shard with Shared set rode
// along untouched — the whole shard object is the predecessor's.
type ShardIngest struct {
	Shard       int  `json:"shard"`
	NewModuli   int  `json:"new_moduli"`
	NewFactored int  `json:"new_factored"`
	NewShared   int  `json:"new_shared,omitempty"`
	NodesReused int  `json:"nodes_reused"`
	NodesTotal  int  `json:"nodes_total"`
	Shared      bool `json:"shared"`
}

// IngestReport summarizes one incremental ingest.
type IngestReport struct {
	// DeltaModuli is the count of distinct delta moduli not already in
	// the corpus; Duplicates is how many the corpus already indexed.
	DeltaModuli int `json:"delta_moduli"`
	Duplicates  int `json:"duplicates"`
	// NewFactored counts delta moduli that entered the index factored
	// (they share a prime inside the delta or with the old corpus).
	NewFactored int `json:"new_factored"`
	// Refactored counts pre-existing corpus members that were clean
	// before and became factored because a delta modulus shares one of
	// their primes — the "When RSA Fails" fold-back.
	Refactored int `json:"refactored"`
	// Skipped counts delta moduli homed in shards this snapshot does
	// not own (cluster replicas only): they are someone else's to
	// index, and the sync protocol delivers them there. They still ride
	// the GCD sweep against the owned shards, so an owned member
	// sharing a prime with one is re-labeled factored here (counted in
	// Refactored) even though the mate itself lands elsewhere.
	Skipped int `json:"skipped,omitempty"`
	// NovelKeys carries the hex encodings of the novel moduli that
	// entered the index — the feed a cluster replica appends to its
	// sync journal so peers can pull the delta. Excluded from the JSON
	// report; it is operational plumbing, not a statistic.
	NovelKeys []string `json:"-"`
	// TouchedShards is how many shards were replaced; the remaining
	// shards of the new snapshot are the predecessor's, by reference.
	TouchedShards int `json:"touched_shards"`
	// NodesReused / NodesBuilt partition the new snapshot's product-tree
	// nodes into ones shared with the predecessor and ones multiplied
	// fresh — the structural-sharing ratio the per-shard telemetry
	// gauges expose.
	NodesReused int           `json:"nodes_reused"`
	NodesBuilt  int           `json:"nodes_built"`
	Elapsed     time.Duration `json:"elapsed_ns"`
	Shards      []ShardIngest `json:"shards"`
}

// shardDelta accumulates what one shard gains from an ingest.
type shardDelta struct {
	newKeys    []string
	newMods    []*big.Int
	newEntries map[string]Entry
	// newShared maps delta moduli (novel or already-member) the delta
	// store observed under two or more identities to their count.
	newShared map[string]int
}

func (d *shardDelta) entry(key string, e Entry) {
	if d.newEntries == nil {
		d.newEntries = make(map[string]Entry)
	}
	d.newEntries[key] = e
}

// Ingest folds a delta corpus into the snapshot and returns the merged
// successor without rebuilding the untouched parts: the paper's monthly
// re-run of the full batch GCD becomes, online, (a) one GCD pass of
// each new modulus against the existing per-shard products, (b) a small
// batch GCD among the delta alone, and (c) a structural merge that
// extends each touched shard's product tree up its right spine
// (prodtree.Extend) while untouched shards are shared by reference.
//
// Both prime-sharing directions are handled: a delta modulus sharing a
// prime with the old corpus is factored on the spot, and the old member
// it shares with — clean until now — is re-labeled factored too, so the
// member-implies-factored-or-clean invariant of Check survives.
//
// On a cluster replica (a snapshot with owned shards) delta moduli
// homed in unowned shards are not indexed — their home owner does that —
// but they still participate in every GCD pass: against the owned shard
// products (re-labeling owned mates) and in the delta-internal batch
// GCD. That lets a replica learn that one of its own members shares a
// prime with a key homed on a disjoint owner set when the sync feed
// delivers that key. The re-label only fires for mates already indexed
// when the foreign key arrives, so it is convergence hygiene, not the
// correctness guarantee — the router's full scatter at check time is
// what consults every live owner.
//
// in.Store carries the delta observations (required); in.Fingerprint,
// when set, contributes known factorizations and vendor labels for
// delta moduli. in.Shards must be zero or match the snapshot. The
// receiver is never modified and stays fully usable.
func (s *Snapshot) Ingest(ctx context.Context, in BuildInput) (*Snapshot, IngestReport, error) {
	start := time.Now()
	var rep IngestReport
	if in.Store == nil {
		return nil, rep, fmt.Errorf("keycheck: ingest: nil store")
	}
	if in.Shards != 0 && in.Shards != len(s.shards) {
		return nil, rep, fmt.Errorf("keycheck: ingest: shard count %d does not match snapshot's %d (re-sharding needs a full rebuild)",
			in.Shards, len(s.shards))
	}
	nShards := len(s.shards)

	// Partition the delta into novel moduli and already-known
	// duplicates. The exact membership list of a shard is its product
	// tree's leaf level; only shards that actually receive delta keys
	// pay for materializing it as a set.
	moduli, keys := in.Store.DistinctModuli()
	members := make([]map[string]bool, nShards)
	memberSet := func(si int) map[string]bool {
		if members[si] == nil {
			set := make(map[string]bool)
			if t := s.shards[si].tree; t != nil {
				for _, leaf := range t.Leaves() {
					set[string(leaf.Bytes())] = true
				}
			}
			members[si] = set
		}
		return members[si]
	}
	deltas := make([]*shardDelta, nShards)
	for i := range deltas {
		deltas[i] = &shardDelta{}
	}
	var novelMods []*big.Int
	var novelKeys []string
	var foreignMods []*big.Int
	// Delta-internal shared-modulus graph: a delta that shows one modulus
	// under distinct identities marks it shared, whether the modulus is
	// novel or already a member. Counts only ever grow (max-merge below):
	// per-store counts cannot be summed without the identity sets.
	identities := anomaly.IdentityCounts(in.Store)
	for i, key := range keys {
		si := shardOf(key, nShards)
		if !s.owns(si) {
			// Unowned home shard: not ours to index, but the modulus
			// still joins the GCD sweep below so owned members sharing
			// one of its primes get re-labeled.
			rep.Skipped++
			foreignMods = append(foreignMods, moduli[i])
			continue
		}
		if cnt, ok := identities[key]; ok && cnt > s.shards[si].shared[key] {
			// Factored members stay out of the shared map (the verdict
			// outranks the identity graph), so a count bump on one is
			// not a delta.
			if _, done := s.shards[si].factored[key]; !done {
				if deltas[si].newShared == nil {
					deltas[si].newShared = make(map[string]int)
				}
				deltas[si].newShared[key] = cnt
			}
		}
		if memberSet(si)[key] {
			rep.Duplicates++
			continue
		}
		novelMods = append(novelMods, moduli[i])
		novelKeys = append(novelKeys, key)
		deltas[si].newKeys = append(deltas[si].newKeys, key)
		deltas[si].newMods = append(deltas[si].newMods, moduli[i])
	}
	rep.DeltaModuli = len(novelMods)
	rep.NovelKeys = make([]string, len(novelMods))
	for j, n := range novelMods {
		rep.NovelKeys[j] = hexOf(n)
	}
	anyShared := false
	for _, d := range deltas {
		if len(d.newShared) > 0 {
			anyShared = true
			break
		}
	}
	if len(novelMods) == 0 && len(foreignMods) == 0 && !anyShared {
		// Nothing new: the snapshot is already the merge.
		rep.Elapsed = time.Since(start)
		return s, rep, nil
	}

	// sweep is every delta modulus taking part in the GCD passes: the
	// owned novel ones first (their indices line up with novelMods), then
	// the foreign ones, which contribute divisors and mate re-labels but
	// no index entries.
	sweep := novelMods
	if len(foreignMods) > 0 {
		sweep = make([]*big.Int, 0, len(novelMods)+len(foreignMods))
		sweep = append(sweep, novelMods...)
		sweep = append(sweep, foreignMods...)
	}

	// (b) Delta-internal batch GCD: primes shared among the new moduli
	// themselves (a fresh batch of devices from the same flawed
	// firmware) never touch the old products.
	deltaDiv := make(map[int]*big.Int) // sweep index -> divisor
	if len(sweep) > 1 {
		res, err := batchgcd.FactorCtx(ctx, sweep)
		if err != nil {
			return nil, rep, fmt.Errorf("keycheck: ingest: delta batch GCD: %w", err)
		}
		for _, r := range res {
			deltaDiv[r.Index] = r.Divisor
		}
	}

	// (a) Each sweep modulus (owned and foreign alike) against every
	// existing shard product, via one remainder tree of the delta per
	// shard — skipped entirely for shared-identity-only deltas, which
	// carry no modulus the corpus hasn't already swept.
	shardGCD := make([]map[int]*big.Int, nShards) // shard -> sweep idx -> gi
	mates := make([][]mate, nShards)
	if len(sweep) > 0 {
		if err := s.sweepShards(ctx, sweep, shardGCD, mates); err != nil {
			return nil, rep, err
		}
	}

	// Resolve factorizations. pool accumulates every prime recovered
	// during this ingest, to split the degenerate divisor == N cases.
	var pool []*big.Int
	splitEntry := func(n, d *big.Int) (Entry, bool) {
		p, q, err := batchgcd.SplitModulus(n, d)
		if err != nil {
			return Entry{}, false
		}
		pool = append(pool, p, q)
		return Entry{P: p, Q: q}, true
	}

	// Old members being shared with become factored: their mate divisor
	// is always proper (a delta modulus equal to a member would have
	// been a duplicate).
	for si := range mates {
		for _, m := range mates[si] {
			if _, done := s.shards[si].factored[m.key]; done {
				continue
			}
			if _, done := deltas[si].newEntries[m.key]; done {
				continue
			}
			if e, ok := splitEntry(m.mod, m.divisor); ok {
				deltas[si].entry(m.key, e)
				rep.Refactored++
			}
		}
	}

	// Novel moduli with at least one divisor become factored. Known
	// factorizations from the delta's own fingerprint run are taken
	// as-is; otherwise the first proper divisor splits the modulus, and
	// degenerate cases (every divisor equals N: both primes shared)
	// fall back to the recovered-prime pool and finally to a pairwise
	// GCD among the still-unresolved delta moduli (the clique case).
	var knownFactors map[string]struct{ p, q *big.Int }
	if in.Fingerprint != nil {
		knownFactors = make(map[string]struct{ p, q *big.Int }, len(in.Fingerprint.Factors))
		for key, f := range in.Fingerprint.Factors {
			knownFactors[key] = struct{ p, q *big.Int }{f.P, f.Q}
		}
	}
	resolved := make([]*Entry, len(novelMods))
	var unresolved []int
	for j, n := range novelMods {
		var divs []*big.Int
		for si := range shardGCD {
			if gi := shardGCD[si][j]; gi != nil {
				divs = append(divs, gi)
			}
		}
		if d := deltaDiv[j]; d != nil {
			divs = append(divs, d)
		}
		if f, ok := knownFactors[novelKeys[j]]; ok {
			e := Entry{P: f.p, Q: f.q}
			pool = append(pool, f.p, f.q)
			resolved[j] = &e
			continue
		}
		if len(divs) == 0 {
			continue // clean member
		}
		var proper *big.Int
		for _, d := range divs {
			if d.Cmp(n) < 0 {
				proper = d
				break
			}
		}
		if proper == nil {
			unresolved = append(unresolved, j)
			continue
		}
		if e, ok := splitEntry(n, proper); ok {
			resolved[j] = &e
		} else {
			unresolved = append(unresolved, j)
		}
	}
	if len(unresolved) > 0 {
		// Pairwise fallback over the small unresolved set only: for a
		// clique (every modulus shares both primes) each pair shares
		// exactly one prime, so the pairwise divisors are proper.
		sub := make([]*big.Int, len(unresolved))
		for i, j := range unresolved {
			sub[i] = novelMods[j]
		}
		pairDiv := make(map[int]*big.Int)
		if len(sub) > 1 {
			if res, err := batchgcd.FactorPairwise(sub); err == nil {
				for _, r := range res {
					pairDiv[r.Index] = r.Divisor
				}
			}
		}
		fromPool := func(n *big.Int) *big.Int {
			g := new(big.Int)
			for _, p := range pool {
				g.GCD(nil, nil, n, p)
				if g.Cmp(one) > 0 && g.Cmp(n) < 0 {
					return new(big.Int).Set(g)
				}
			}
			return s.recoverDivisor(n)
		}
		for i, j := range unresolved {
			n := novelMods[j]
			d := pairDiv[i]
			if d == nil || d.Cmp(n) >= 0 {
				d = fromPool(n)
			}
			if d == nil {
				continue // unsplittable; stays a plain member
			}
			if e, ok := splitEntry(n, d); ok {
				resolved[j] = &e
			}
		}
	}
	for j, e := range resolved {
		if e == nil {
			continue
		}
		key := novelKeys[j]
		deltas[shardOf(key, nShards)].entry(key, *e)
		rep.NewFactored++
	}

	// Vendor labels ride along for delta moduli whose certificates the
	// delta fingerprint labeled, mirroring Build.
	if in.Fingerprint != nil {
		for _, d := range deltas {
			for key, e := range d.newEntries {
				for _, c := range in.Store.CertsWithModulus(key) {
					fp, err := c.Fingerprint()
					if err != nil {
						continue
					}
					if lbl, ok := in.Fingerprint.Labels[fp]; ok {
						e.Vendor, e.Attribution = lbl.Vendor, lbl.Method.String()
						d.newEntries[key] = e
						break
					}
				}
			}
		}
	}

	// A sweep of only foreign moduli that re-labeled nothing leaves the
	// snapshot untouched: publishing a structurally identical successor
	// would purge verdict caches for no reason.
	changed := false
	for _, d := range deltas {
		if len(d.newMods) > 0 || len(d.newEntries) > 0 || len(d.newShared) > 0 {
			changed = true
			break
		}
	}
	if !changed {
		rep.Elapsed = time.Since(start)
		return s, rep, nil
	}

	// (c) Structural merge: untouched shards are shared by reference;
	// touched shards get a copy-on-write factored map, an Extend-ed
	// product tree (new leaves multiplied up the right spine only), and
	// a cloned-or-regrown Bloom filter.
	ns := &Snapshot{
		shards:   make([]*shard, nShards),
		moduli:   s.moduli + len(novelMods),
		factored: s.factored,
		gen:      snapGen.Add(1),
		own:      s.own,
		probe:    s.probe,
	}
	rep.Shards = make([]ShardIngest, nShards)
	for si := range s.shards {
		old, d := s.shards[si], deltas[si]
		sr := &rep.Shards[si]
		sr.Shard = si
		if len(d.newMods) == 0 && len(d.newEntries) == 0 && len(d.newShared) == 0 {
			ns.shards[si] = old
			sr.Shared = true
			sr.NodesReused = old.tree.Nodes()
			sr.NodesTotal = sr.NodesReused
			rep.NodesReused += sr.NodesReused
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, rep, fmt.Errorf("keycheck: ingest merge cancelled at shard %d: %w", si, err)
		}
		nsh := &shard{moduli: old.moduli + len(d.newMods)}
		nsh.factored = make(map[string]Entry, len(old.factored)+len(d.newEntries))
		for key, e := range old.factored {
			nsh.factored[key] = e
		}
		for key, e := range d.newEntries {
			nsh.factored[key] = e
		}
		ns.factored += len(nsh.factored) - len(old.factored)
		// The shared map tracks only unfactored members: anything this
		// ingest factored leaves it, and shared delta keys that arrived
		// already factored never enter.
		droppedShared := 0
		for key := range d.newEntries {
			if _, ok := old.shared[key]; ok {
				droppedShared++
			}
		}
		if len(d.newShared) == 0 && droppedShared == 0 {
			nsh.shared = old.shared
		} else {
			nsh.shared = make(map[string]int, len(old.shared)+len(d.newShared))
			for key, cnt := range old.shared {
				nsh.shared[key] = cnt
			}
			for key, cnt := range d.newShared {
				if cnt > nsh.shared[key] {
					nsh.shared[key] = cnt
				}
			}
			for key := range d.newEntries {
				delete(nsh.shared, key)
			}
			for key := range d.newShared {
				if _, factored := nsh.factored[key]; factored {
					delete(nsh.shared, key)
				}
			}
		}
		if len(d.newMods) > 0 {
			tree, err := prodtree.ExtendCtx(ctx, old.tree, d.newMods)
			if err != nil {
				return nil, rep, fmt.Errorf("keycheck: ingest shard %d: %w", si, err)
			}
			nsh.tree = tree
			nsh.bloom = extendBloom(old.bloom, nsh.tree, d.newKeys, nsh.moduli)
		} else {
			// Only re-labeled members: the membership structures are
			// untouched and stay shared.
			nsh.tree = old.tree
			nsh.bloom = old.bloom
		}
		// A member promoted to factored or shared must leave the
		// clean-exemplar sample; novel clean keys top it back up.
		for _, key := range old.cleanSample {
			_, nowFactored := nsh.factored[key]
			_, nowShared := nsh.shared[key]
			if !nowFactored && !nowShared {
				nsh.cleanSample = append(nsh.cleanSample, key)
			}
		}
		for _, key := range d.newKeys {
			if len(nsh.cleanSample) >= exemplarSample {
				break
			}
			_, f := nsh.factored[key]
			_, sh := nsh.shared[key]
			if !f && !sh {
				nsh.cleanSample = append(nsh.cleanSample, key)
			}
		}
		ns.shards[si] = nsh
		rep.TouchedShards++
		sr.NewModuli = len(d.newMods)
		sr.NewFactored = len(d.newEntries)
		sr.NewShared = len(d.newShared)
		sr.NodesTotal = nsh.tree.Nodes()
		if nsh.tree == old.tree {
			sr.NodesReused = sr.NodesTotal
		} else {
			sr.NodesReused = prodtree.SharedNodes(old.tree, nsh.tree)
		}
		rep.NodesReused += sr.NodesReused
		rep.NodesBuilt += sr.NodesTotal - sr.NodesReused
	}
	for _, sh := range ns.shards {
		ns.shared += len(sh.shared)
	}
	rep.Elapsed = time.Since(start)
	return ns, rep, nil
}

// mate is an existing member found to share a prime with a delta
// modulus during an ingest sweep.
type mate struct {
	shard   int
	key     string
	mod     *big.Int
	divisor *big.Int
}

// sweepShards runs every sweep modulus against every existing shard
// product, via one remainder tree of the delta per shard:
// gcd(N, P mod N) = gcd(N, P) exposes the primes N shares with the
// shard without ever forming P/N. Shards fan out on the shared kernel
// pool, like Build. Alongside, each shard scans its own leaves against
// the divisors it yielded to find the old members being shared with
// (the mates to re-label). Results land in shardGCD (shard -> sweep
// index -> common divisor) and mates, both indexed by shard.
func (s *Snapshot) sweepShards(ctx context.Context, sweep []*big.Int, shardGCD []map[int]*big.Int, mates [][]mate) error {
	errs := make([]error, len(s.shards))
	dt, err := prodtree.NewCtx(ctx, sweep)
	if err != nil {
		return fmt.Errorf("keycheck: ingest: delta tree: %w", err)
	}
	var treed []int // shards that actually hold a product tree
	for si := range s.shards {
		if s.shards[si].tree != nil {
			treed = append(treed, si)
		}
	}
	eng := kernel.FromContext(ctx)
	runErr := eng.Run(ctx, len(treed), func(k int, a *kernel.Arena) {
		si := treed[k]
		sh := s.shards[si]
		rems, err := dt.RemainderTreeCtx(ctx, sh.product())
		if err != nil {
			errs[si] = fmt.Errorf("keycheck: ingest shard %d: %w", si, err)
			return
		}
		var gis []*big.Int
		for j, rem := range rems {
			n := sweep[j]
			var gi *big.Int
			if rem.Sign() == 0 {
				// n divides the whole shard product: every prime of
				// n lives in this shard.
				gi = n
			} else {
				gi = new(big.Int).GCD(nil, nil, n, rem)
				if gi.Cmp(one) <= 0 {
					continue
				}
			}
			if shardGCD[si] == nil {
				shardGCD[si] = make(map[int]*big.Int)
			}
			shardGCD[si][j] = gi
			gis = append(gis, gi)
		}
		if len(gis) == 0 {
			return
		}
		// Mate scan: which existing members of this shard share a
		// prime with the delta? Only shards that yielded a divisor
		// pay for it, and only with small GCDs.
		g := a.Get()
		for _, leaf := range sh.tree.Leaves() {
			for _, gi := range gis {
				g.GCD(nil, nil, leaf, gi)
				if g.Cmp(one) > 0 && g.Cmp(leaf) < 0 {
					mates[si] = append(mates[si], mate{
						shard: si, key: string(leaf.Bytes()),
						mod: leaf, divisor: new(big.Int).Set(g),
					})
					break
				}
			}
		}
	})
	if runErr != nil {
		return fmt.Errorf("keycheck: ingest cancelled: %w", runErr)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// extendBloom returns the filter for a shard that gained newKeys. While
// the grown shard still fits the old filter's sizing the filter is
// cloned and the new keys added; once outgrown it is rebuilt over every
// leaf with doubling headroom, so repeated small ingests settle into
// cheap clone-and-add.
func extendBloom(old *bloomFilter, tree *prodtree.Tree, newKeys []string, total int) *bloomFilter {
	if old.fits(total) {
		f := old.clone()
		for _, key := range newKeys {
			f.add(key)
		}
		return f
	}
	size := total * 2
	if old != nil && old.sized*2 > size {
		size = old.sized * 2
	}
	f := newBloom(size)
	f.sized = size
	for _, leaf := range tree.Leaves() {
		f.add(string(leaf.Bytes()))
	}
	return f
}

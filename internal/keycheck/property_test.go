package keycheck

import (
	"context"
	"math/big"
	"math/rand"
	"testing"

	"github.com/factorable/weakkeys/internal/fingerprint"
	"github.com/factorable/weakkeys/internal/scanstore"
)

// genPrimes returns n distinct 64-bit probable primes from a seeded
// source, so every trial is reproducible from the test's constants.
func genPrimes(rng *rand.Rand, n int) []*big.Int {
	out := make([]*big.Int, 0, n)
	seen := make(map[uint64]bool)
	for len(out) < n {
		c := rng.Uint64() | 1<<63 | 1
		if seen[c] {
			continue
		}
		seen[c] = true
		p := new(big.Int).SetUint64(c)
		if p.ProbablyPrime(20) {
			out = append(out, p)
		}
	}
	return out
}

// TestIngestEquivalenceProperty is the tentpole invariant, randomized:
// Build(full corpus) and Build(old) → Ingest(delta) must produce
// identical verdicts for every corpus modulus, across shard counts,
// split points and prime-sharing densities — including empty old
// corpora, delta-internal cliques, cross-boundary shared primes and
// duplicated observations. Ground truth comes from the generated
// primes, so both paths are also checked against what the answer must
// actually be. Runs under -race in CI.
func TestIngestEquivalenceProperty(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(20160805))
	sharedPool := genPrimes(rng, 24)
	fresh := genPrimes(rng, 400)
	nextFresh := 0
	freshPrime := func() *big.Int {
		p := fresh[nextFresh%len(fresh)]
		nextFresh++
		return p
	}

	shardCounts := []int{1, 2, 3, 5, 8}
	for trial := 0; trial < 10; trial++ {
		shards := shardCounts[trial%len(shardCounts)]
		nMod := 20 + rng.Intn(60)

		// Generate the corpus: ~40% of moduli draw both primes from a
		// small shared pool (cliques and cross-split sharing), the rest
		// are clean semiprimes from single-use primes.
		type genMod struct {
			n    *big.Int
			p, q *big.Int
		}
		var mods []genMod
		seen := make(map[string]bool)
		for len(mods) < nMod {
			var p, q *big.Int
			if rng.Float64() < 0.4 {
				p = sharedPool[rng.Intn(len(sharedPool))]
				q = sharedPool[rng.Intn(len(sharedPool))]
				if p.Cmp(q) == 0 {
					continue
				}
			} else {
				p, q = freshPrime(), freshPrime()
			}
			n := new(big.Int).Mul(p, q)
			key := string(n.Bytes())
			if seen[key] {
				continue
			}
			seen[key] = true
			mods = append(mods, genMod{n: n, p: p, q: q})
		}

		// Ground truth: a modulus is weak iff one of its primes appears
		// in another corpus modulus.
		sharedWithin := func(set []genMod) map[int]bool {
			uses := make(map[string]int)
			for _, m := range set {
				uses[m.p.String()]++
				uses[m.q.String()]++
			}
			weak := make(map[int]bool)
			for i, m := range set {
				if uses[m.p.String()] > 1 || uses[m.q.String()] > 1 {
					weak[i] = true
				}
			}
			return weak
		}
		// factorsFor builds the study-fingerprint factor table a Build
		// over the given subset would have been handed.
		factorsFor := func(set []genMod) *fingerprint.Result {
			weak := sharedWithin(set)
			fp := &fingerprint.Result{Factors: make(map[string]fingerprint.Factors)}
			for i := range weak {
				m := set[i]
				fp.Factors[string(m.n.Bytes())] = fingerprint.Factors{P: m.p, Q: m.q}
			}
			return fp
		}
		storeFor := func(set []genMod) *scanstore.Store {
			st := scanstore.New()
			for i, m := range set {
				st.AddBareKeyObservation("10.1.0.1", date(2016, 1, 1+i%28), scanstore.SourceCensys, scanstore.SSH, m.n)
			}
			return st
		}

		oldN := rng.Intn(nMod + 1) // 0 (everything is delta) .. nMod (pure duplicates)
		old, delta := mods[:oldN], mods[oldN:]

		full, err := Build(ctx, BuildInput{Store: storeFor(mods), Fingerprint: factorsFor(mods), Shards: shards})
		if err != nil {
			t.Fatalf("trial %d: full build: %v", trial, err)
		}

		var base *Snapshot
		if oldN == 0 {
			base = Empty(shards)
		} else {
			base, err = Build(ctx, BuildInput{Store: storeFor(old), Fingerprint: factorsFor(old), Shards: shards})
			if err != nil {
				t.Fatalf("trial %d: old build: %v", trial, err)
			}
		}
		// The delta re-observes a few old moduli on top of the new ones:
		// the ingest must count them as duplicates, not corrupt anything.
		deltaSet := append([]genMod(nil), delta...)
		for i := 0; i < 3 && i < oldN; i++ {
			deltaSet = append(deltaSet, old[rng.Intn(oldN)])
		}
		var inc *Snapshot
		if len(deltaSet) == 0 {
			inc = base
		} else {
			inc, _, err = base.Ingest(ctx, BuildInput{Store: storeFor(deltaSet)})
			if err != nil {
				t.Fatalf("trial %d: ingest: %v", trial, err)
			}
		}

		weak := sharedWithin(mods)
		for i, m := range mods {
			vf := full.Check(m.n)
			vi := inc.Check(m.n)
			if vf.Status != vi.Status || vf.Known != vi.Known {
				t.Fatalf("trial %d (shards=%d, old=%d/%d) modulus %d: full=%q/%v incremental=%q/%v",
					trial, shards, oldN, nMod, i, vf.Status, vf.Known, vi.Status, vi.Known)
			}
			wantStatus := StatusClean
			if weak[i] {
				wantStatus = StatusFactored
			}
			if vi.Status != wantStatus || !vi.Known {
				t.Fatalf("trial %d modulus %d: verdict %q/%v, ground truth %q/known",
					trial, i, vi.Status, vi.Known, wantStatus)
			}
			if weak[i] {
				wantF := map[string]bool{m.p.Text(16): true, m.q.Text(16): true}
				if !wantF[vi.FactorP] || !wantF[vi.FactorQ] || vi.FactorP == vi.FactorQ {
					t.Fatalf("trial %d modulus %d: incremental factors %s,%s, want {%s,%s}",
						trial, i, vi.FactorP, vi.FactorQ, m.p.Text(16), m.q.Text(16))
				}
				if !wantF[vf.FactorP] || !wantF[vf.FactorQ] || vf.FactorP == vf.FactorQ {
					t.Fatalf("trial %d modulus %d: full factors %s,%s, want {%s,%s}",
						trial, i, vf.FactorP, vf.FactorQ, m.p.Text(16), m.q.Text(16))
				}
			}
		}
		// Non-member probes agree too: a novel modulus sharing a pool
		// prime, and a fully clean one.
		probe := new(big.Int).Mul(sharedPool[rng.Intn(len(sharedPool))], freshPrime())
		vf, vi := full.Check(probe), inc.Check(probe)
		if vf.Status != vi.Status || vf.Known != vi.Known {
			t.Fatalf("trial %d shared probe: full=%q/%v incremental=%q/%v", trial, vf.Status, vf.Known, vi.Status, vi.Known)
		}
		cleanProbe := new(big.Int).Mul(freshPrime(), freshPrime())
		vf, vi = full.Check(cleanProbe), inc.Check(cleanProbe)
		if vf.Status != StatusClean || vi.Status != StatusClean || vf.Known || vi.Known {
			t.Fatalf("trial %d clean probe: full=%q/%v incremental=%q/%v", trial, vf.Status, vf.Known, vi.Status, vi.Known)
		}
	}
}

package keycheck

import (
	"context"
	"errors"
	"math/big"
	"sync"
	"testing"
	"time"

	"github.com/factorable/weakkeys/internal/faults"
	"github.com/factorable/weakkeys/internal/scanstore"
	"github.com/factorable/weakkeys/internal/telemetry"
)

// TestServiceChaosFaults drives concurrent checks through a service
// whose fault plan refuses and stalls a fraction of them. Every check
// must end in exactly one of two states — a correct verdict or a shed —
// and the telemetry must account for each injected fault. Runs under
// -race in CI.
func TestServiceChaosFaults(t *testing.T) {
	reg := telemetry.New()
	plan := faults.NewPlan(7, faults.Weights{Refuse: 0.25, Stall: 0.1})
	svc := NewService(goldenSnapshot(t, 2), Config{
		Workers:    4,
		CacheSize:  -1, // every check exercises the full path
		Metrics:    reg,
		Faults:     plan,
		FaultStall: time.Millisecond,
	})

	inputs := []*big.Int{modN1, modN2, modN3, modNs, modNc}
	want := map[string]Status{
		string(modN1.Bytes()): StatusFactored,
		string(modN2.Bytes()): StatusFactored,
		string(modN3.Bytes()): StatusClean,
		string(modNs.Bytes()): StatusSharedFactor,
		string(modNc.Bytes()): StatusClean,
	}

	const goroutines, perG = 16, 20
	var ok, shed int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				n := inputs[(g+i)%len(inputs)]
				v, err := svc.Check(context.Background(), n)
				mu.Lock()
				switch {
				case err == nil:
					ok++
					if v.Status != want[string(n.Bytes())] {
						t.Errorf("wrong verdict for %s: %+v", n.Text(16), v)
					}
				case errors.Is(err, ErrOverloaded):
					shed++
				default:
					t.Errorf("unexpected error: %v", err)
				}
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()

	if ok+shed != goroutines*perG {
		t.Errorf("accounting: %d ok + %d shed != %d checks", ok, shed, goroutines*perG)
	}
	injected := plan.Injected()
	if shed < injected[faults.Refuse] {
		t.Errorf("%d sheds < %d injected refusals", shed, injected[faults.Refuse])
	}
	wantInjected := injected[faults.Refuse] + injected[faults.Stall]
	if got := reg.CounterValue("keycheck_faults_injected_total"); got != wantInjected {
		t.Errorf("keycheck_faults_injected_total = %d, want %d", got, wantInjected)
	}
	if got := reg.CounterValue(`keycheck_shed_total{cause="fault"}`); got != injected[faults.Refuse] {
		t.Errorf(`keycheck_shed_total{cause="fault"} = %d, want %d`, got, injected[faults.Refuse])
	}
	if injected[faults.Refuse] == 0 || injected[faults.Stall] == 0 {
		t.Errorf("plan injected nothing (refuse=%d stall=%d); chaos test is vacuous",
			injected[faults.Refuse], injected[faults.Stall])
	}
}

// TestServiceShedsWhenSaturated pins the worker pool behaviour: with one
// worker held by a stalled check and a negative queue wait, every other
// check is shed immediately with ErrOverloaded.
func TestServiceShedsWhenSaturated(t *testing.T) {
	reg := telemetry.New()
	svc := NewService(goldenSnapshot(t, 1), Config{
		Workers:    1,
		QueueWait:  -1, // shed instead of queueing
		CacheSize:  -1,
		Metrics:    reg,
		Faults:     faults.NewEveryN(1, faults.Stall), // every check stalls its worker
		FaultStall: 100 * time.Millisecond,
	})

	done := make(chan error, 1)
	go func() {
		_, err := svc.Check(context.Background(), modNc)
		done <- err
	}()
	// Wait for the stalled check to occupy the sole worker.
	deadline := time.Now().Add(10 * time.Second)
	for reg.GaugeValue("keycheck_inflight_checks") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("stalled check never acquired the worker")
		}
		time.Sleep(time.Millisecond)
	}

	const contenders = 5
	for i := 0; i < contenders; i++ {
		n := new(big.Int).SetBit(big.NewInt(int64(i)*2+1), 40, 1)
		if _, err := svc.Check(context.Background(), n); !errors.Is(err, ErrOverloaded) {
			t.Errorf("contender %d: err = %v, want ErrOverloaded", i, err)
		}
	}
	if err := <-done; err != nil {
		t.Errorf("stalled check itself failed: %v", err)
	}
	if got := reg.CounterValue(`keycheck_shed_total{cause="queue"}`); got != contenders {
		t.Errorf(`keycheck_shed_total{cause="queue"} = %d, want %d`, got, contenders)
	}
}

// TestDrain: checks in flight when Drain starts must complete; checks
// arriving afterwards are refused with ErrDraining.
func TestDrain(t *testing.T) {
	reg := telemetry.New()
	svc := NewService(goldenSnapshot(t, 1), Config{
		Workers:    2,
		Metrics:    reg,
		Faults:     faults.NewEveryN(1, faults.Stall),
		FaultStall: 30 * time.Millisecond,
	})

	type outcome struct {
		v   Verdict
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		v, err := svc.Check(context.Background(), modN1)
		done <- outcome{v, err}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for reg.GaugeValue("keycheck_inflight_checks") < 1 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight check never started")
		}
		time.Sleep(time.Millisecond)
	}

	svc.Drain()
	// Drain returned, so the in-flight check must have finished — its
	// result is already buffered.
	select {
	case out := <-done:
		if out.err != nil || out.v.Status != StatusFactored {
			t.Errorf("in-flight check during drain: %+v, %v", out.v, out.err)
		}
	default:
		t.Error("Drain returned before the in-flight check completed")
	}

	if _, err := svc.Check(context.Background(), modN2); !errors.Is(err, ErrDraining) {
		t.Errorf("post-drain check: err = %v, want ErrDraining", err)
	}
	if got := reg.CounterValue(`keycheck_shed_total{cause="draining"}`); got != 1 {
		t.Errorf(`keycheck_shed_total{cause="draining"} = %d, want 1`, got)
	}
	svc.Drain() // idempotent
}

// TestPublishInvalidatesCache: a snapshot swap must purge cached
// verdicts — a key that was clean may be factored in the new corpus.
func TestPublishInvalidatesCache(t *testing.T) {
	reg := telemetry.New()
	svc := NewService(goldenSnapshot(t, 1), Config{Metrics: reg})
	ctx := context.Background()

	if _, err := svc.Check(ctx, modN1); err != nil {
		t.Fatal(err)
	}
	v, err := svc.Check(ctx, modN1)
	if err != nil || !v.Cached {
		t.Fatalf("second check not cached: %+v, %v", v, err)
	}
	if svc.CacheLen() != 1 {
		t.Fatalf("cache len %d", svc.CacheLen())
	}

	svc.Publish(goldenSnapshot(t, 1))
	if svc.CacheLen() != 0 {
		t.Errorf("cache survived snapshot swap: len %d", svc.CacheLen())
	}
	v, err = svc.Check(ctx, modN1)
	if err != nil || v.Cached {
		t.Errorf("post-swap check served stale cache: %+v, %v", v, err)
	}
	if got := reg.CounterValue("keycheck_snapshot_swaps_total"); got != 1 {
		t.Errorf("keycheck_snapshot_swaps_total = %d, want 1", got)
	}
}

// TestServiceQueueWaitAdmits: a check that finds all workers busy but
// sees one free within QueueWait is admitted, not shed.
func TestServiceQueueWaitAdmits(t *testing.T) {
	svc := NewService(goldenSnapshot(t, 1), Config{
		Workers:    1,
		QueueWait:  2 * time.Second,
		CacheSize:  -1,
		Faults:     faults.NewEveryN(2, faults.Stall), // stall every 2nd check
		FaultStall: 20 * time.Millisecond,
	})
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n := new(big.Int).SetBit(big.NewInt(int64(i)*2+1), 50, 1)
			_, errs[i] = svc.Check(context.Background(), n)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("check %d shed despite generous queue wait: %v", i, err)
		}
	}
}

// TestServiceContextCancelled: a queued check whose context dies while
// waiting for a worker returns the context error, not a verdict.
func TestServiceContextCancelled(t *testing.T) {
	svc := NewService(goldenSnapshot(t, 1), Config{
		Workers:    1,
		QueueWait:  10 * time.Second,
		CacheSize:  -1,
		Faults:     faults.NewEveryN(1, faults.Stall),
		FaultStall: 200 * time.Millisecond,
	})
	started := make(chan struct{})
	go func() {
		close(started)
		svc.Check(context.Background(), modNc)
	}()
	<-started
	time.Sleep(20 * time.Millisecond) // let the first check take the worker

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	if _, err := svc.Check(ctx, modN3); !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	svc.Drain()
}

func BenchmarkServiceCheck(b *testing.B) {
	snap, err := buildBenchSnapshot()
	if err != nil {
		b.Fatal(err)
	}
	svc := NewService(snap, Config{CacheSize: -1})
	ctx := context.Background()
	b.Run("known", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			svc.Check(ctx, modN1)
		}
	})
	b.Run("novel-gcd", func(b *testing.B) {
		n := new(big.Int).Mul(r2, r3)
		for i := 0; i < b.N; i++ {
			svc.Check(ctx, n)
		}
	})
}

// buildBenchSnapshot indexes a 513-modulus corpus so the novel-GCD
// benchmark reduces against realistically sized shard products.
func buildBenchSnapshot() (*Snapshot, error) {
	store := scanstore.New()
	when := date(2013, 1, 1)
	base := new(big.Int).Lsh(big.NewInt(1), 127)
	for i := int64(0); i < 512; i++ {
		n := new(big.Int).Add(base, big.NewInt(i*2+1))
		store.AddBareKeyObservation("10.0.0.1", when, scanstore.SourceRapid7, scanstore.SSH, n)
	}
	store.AddBareKeyObservation("10.0.0.2", when, scanstore.SourceRapid7, scanstore.SSH, modN1)
	return Build(context.Background(), BuildInput{Store: store, Shards: 4})
}

// TestStaleVerdictNotCachedAcrossSwap pins the swap/insert race: a check
// computes its verdict against the pre-swap snapshot, then Publish swaps
// and purges, then the check inserts. Untagged, that stale verdict would
// be served from cache until the next swap; generation tagging makes the
// next check recompute against the new snapshot.
func TestStaleVerdictNotCachedAcrossSwap(t *testing.T) {
	full := goldenSnapshot(t, 2)

	// Same corpus with no factorizations: N1 flips factored -> clean.
	store := scanstore.New()
	store.AddBareKeyObservation("10.0.0.1", date(2013, 5, 1), scanstore.SourceRapid7, scanstore.SSH, modN1)
	store.AddBareKeyObservation("10.0.0.2", date(2013, 5, 1), scanstore.SourceRapid7, scanstore.SSH, modN2)
	store.AddBareKeyObservation("10.0.0.3", date(2013, 5, 1), scanstore.SourceRapid7, scanstore.SSH, modN3)
	lost, err := Build(context.Background(), BuildInput{Store: store, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}

	svc := NewService(full, Config{})
	ctx := context.Background()
	fired := false
	svc.prePutHook = func() {
		if !fired {
			fired = true
			svc.Publish(lost)
		}
	}

	// Computed against `full` (factored), inserted after the swap+purge.
	v, err := svc.Check(ctx, modN1)
	if err != nil || v.Status != StatusFactored {
		t.Fatalf("first check = %+v, %v, want factored off the old snapshot", v, err)
	}
	if !fired {
		t.Fatal("hook did not fire")
	}
	// Must recompute against `lost`, not serve the stale insert.
	v, err = svc.Check(ctx, modN1)
	if err != nil {
		t.Fatal(err)
	}
	if v.Cached || v.Status != StatusClean {
		t.Fatalf("post-swap check = %+v, want uncached clean (stale factored verdict served)", v)
	}
	// And the recomputed verdict is cached under the new generation.
	v, err = svc.Check(ctx, modN1)
	if err != nil || !v.Cached || v.Status != StatusClean {
		t.Fatalf("third check = %+v, %v, want cached clean", v, err)
	}
}

// TestIngestRacesDrain pins the rolling-restart invariant: an Ingest
// racing Drain either lands completely (the delta is in the published
// snapshot) or is refused with ErrDraining — never a half-merged index.
// Drain must also wait out an in-flight merge before declaring quiesced.
func TestIngestRacesDrain(t *testing.T) {
	for round := 0; round < 6; round++ {
		svc := NewService(goldenSnapshot(t, 2), Config{Workers: 2})
		baseline := svc.Index().Snapshot().Moduli()
		delta := deltaStore(t, new(big.Int).Mul(s1, s2), new(big.Int).Mul(s3, s4))

		type outcome struct {
			rep IngestReport
			err error
		}
		done := make(chan outcome, 1)
		go func() {
			rep, err := svc.Ingest(context.Background(), BuildInput{Store: delta})
			done <- outcome{rep, err}
		}()
		// Vary the interleaving: sometimes Drain beats the ingest to the
		// gate, sometimes it arrives mid-merge and must wait.
		time.Sleep(time.Duration(round) * 200 * time.Microsecond)
		svc.Drain()
		out := <-done

		got := svc.Index().Snapshot().Moduli()
		switch {
		case out.err == nil:
			if out.rep.DeltaModuli != 2 || got != baseline+2 {
				t.Fatalf("round %d: ingest won but report=%+v moduli=%d (baseline %d)",
					round, out.rep, got, baseline)
			}
		case errors.Is(out.err, ErrDraining):
			if got != baseline {
				t.Fatalf("round %d: refused ingest mutated the index: %d -> %d", round, baseline, got)
			}
		default:
			t.Fatalf("round %d: ingest err = %v, want nil or ErrDraining", round, out.err)
		}

		// The gate stays shut after drain.
		if _, err := svc.Ingest(context.Background(), BuildInput{Store: delta}); !errors.Is(err, ErrDraining) {
			t.Fatalf("round %d: post-drain ingest err = %v, want ErrDraining", round, err)
		}
	}
}

// Package keycheck is the serving layer of the study: an online weak-key
// lookup service over a completed corpus, the reproduction of
// factorable.net's "check my key" endpoint that the original batch-GCD
// papers deployed and that "Ensuring High-Quality Randomness in
// Cryptographic Key Generation" proposes as a registration-time check.
//
// The queryable artifact is an immutable Snapshot: the corpus's distinct
// moduli sharded by modulus hash, each shard fronted by a Bloom filter
// over every observed modulus with an exact map of the factored moduli
// behind it, plus the shard's modulus product for the GCD path. A
// submitted modulus that is in the corpus answers from the exact map; a
// novel one is still checked by GCD against every shard's product —
// exactly how factorable.net handled fresh submissions, and the reason
// an online service is more than a set lookup: a key never seen by any
// scan is still compromised if it shares a prime with the corpus.
//
// Snapshots are published through an Index and swapped atomically, so
// new study results are folded in without blocking readers. Service
// wraps an Index with the production serving path — bounded worker
// pool, LRU verdict cache, graceful drain, telemetry, fault injection —
// and NewMux exposes it over HTTP (POST /v1/check, GET /v1/stats).
package keycheck

import (
	"encoding/hex"
	"errors"
	"fmt"
	"math/big"
	"strings"

	"github.com/factorable/weakkeys/internal/anomaly"
	"github.com/factorable/weakkeys/internal/certs"
)

// Status classifies a checked modulus.
type Status string

const (
	// StatusFactored: the modulus is in the corpus and batch GCD
	// recovered its factorization. The key is compromised.
	StatusFactored Status = "factored"
	// StatusSharedFactor: the modulus is novel but shares a prime with
	// the corpus; the GCD path recovered the factorization on the spot.
	// The key is compromised.
	StatusSharedFactor Status = "shared_factor"
	// StatusFermatWeak: the modulus is novel and the online Fermat probe
	// split it — its primes are close enough that the factorization falls
	// out in a bounded ascent from sqrt(N). The key is compromised.
	StatusFermatWeak Status = "fermat_weak"
	// StatusSmallFactor: the modulus is novel and trial division or
	// Pollard rho recovered a small prime factor. The key is compromised.
	StatusSmallFactor Status = "small_factor"
	// StatusSharedModulus: the modulus is in the corpus and was observed
	// there under two or more distinct identities — no factorization is
	// known, but any identity holding the private key can impersonate or
	// decrypt every other. The key must be treated as compromised.
	StatusSharedModulus Status = "shared_modulus"
	// StatusUnsafeExponent: the submission carried a public exponent that
	// breaks RSA outright (e = 1 or even e) or falls outside sane bounds.
	// The modulus itself may be fine; the key as used is not.
	StatusUnsafeExponent Status = "unsafe_exponent"
	// StatusClean: no shared factor with the corpus is known and no
	// anomaly probe fired. Not a proof of safety — only that this corpus
	// and these probes cannot break the key.
	StatusClean Status = "clean"
)

// Verdict is the service's answer for one modulus. Field order is the
// wire order of the JSON API.
type Verdict struct {
	Status Status `json:"status"`
	// Known reports whether the modulus itself appears in the corpus.
	Known bool `json:"known"`
	// ModulusBits is the submitted modulus's bit length.
	ModulusBits int `json:"modulus_bits"`
	// Shard is the home shard of the modulus hash.
	Shard int `json:"shard"`
	// FactorP/FactorQ (hex, P <= Q) are set when a full factorization
	// is known or was recovered by the GCD path.
	FactorP string `json:"factor_p_hex,omitempty"`
	FactorQ string `json:"factor_q_hex,omitempty"`
	// Divisor (hex) is the nontrivial common divisor the GCD path found
	// for a shared_factor verdict.
	Divisor string `json:"divisor_hex,omitempty"`
	// Vendor/Attribution carry the internal/fingerprint vendor label of
	// the corpus certificate serving this modulus, when one exists.
	Vendor      string `json:"vendor,omitempty"`
	Attribution string `json:"attribution,omitempty"`
	// Cached marks a verdict answered from the LRU cache.
	Cached bool `json:"cached,omitempty"`
	// Partial marks a verdict from a cluster replica that does not own
	// the modulus's home shard: the membership half (Known, exact
	// factors) is unauthoritative and only the replica's own shard
	// products were consulted. A compromised verdict is still
	// definitive; a clean one is not. The router strips this flag once
	// it has gathered full coverage.
	Partial bool `json:"partial,omitempty"`
	// SharedWith is the number of distinct identities the corpus observed
	// serving this modulus, for a shared_modulus verdict.
	SharedWith int `json:"shared_with,omitempty"`
	// ExponentClass names the anomaly class of the submitted public
	// exponent for an unsafe_exponent verdict ("one", "even",
	// "nonpositive", "oversized").
	ExponentClass string `json:"exponent_class,omitempty"`
}

// Compromised reports whether the verdict means the private key is
// recoverable from public data.
func (v Verdict) Compromised() bool {
	switch v.Status {
	case StatusFactored, StatusSharedFactor, StatusFermatWeak, StatusSmallFactor:
		return true
	}
	return false
}

// ApplyExponent folds a submitted public exponent into a verdict:
// a clean verdict upgrades to unsafe_exponent when the exponent's
// census class is broken outright (e = 1, even e, nonpositive, or
// oversized). The small-exponent class (odd e in 3..65535) is legal
// RSA and stays census-only — it never flips a verdict. Compromised
// verdicts are worse than the exponent and are left untouched.
func ApplyExponent(v Verdict, e *big.Int) Verdict {
	if e == nil || v.Status != StatusClean {
		return v
	}
	switch cls := anomaly.ClassifyExponent(e); cls {
	case anomaly.ExponentOne, anomaly.ExponentEven,
		anomaly.ExponentNonPositive, anomaly.ExponentOversized:
		v.Status = StatusUnsafeExponent
		v.ExponentClass = string(cls)
	}
	return v
}

// Submission limits. MaxModulusBits bounds the accepted key size so a
// hostile client cannot feed multi-megabyte integers into the GCD path;
// MinModulusBits rejects degenerate toy inputs.
const (
	MaxModulusBits = 16384
	MinModulusBits = 16
)

// ErrMalformed wraps every submission-parsing failure; the HTTP layer
// maps it to 400.
var ErrMalformed = errors.New("keycheck: malformed submission")

// ParseModulusHex parses a hex-encoded modulus submission (with or
// without an 0x prefix) and validates its size.
func ParseModulusHex(s string) (*big.Int, error) {
	s = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(s), "0x"))
	if s == "" {
		return nil, fmt.Errorf("%w: empty modulus_hex", ErrMalformed)
	}
	if len(s)%2 == 1 {
		s = "0" + s
	}
	raw, err := hex.DecodeString(s)
	if err != nil {
		return nil, fmt.Errorf("%w: modulus_hex: %v", ErrMalformed, err)
	}
	return validateModulus(new(big.Int).SetBytes(raw))
}

// ParseCertPEM extracts and validates the RSA modulus from a PEM
// submission: either a WEAKKEYS CERTIFICATE block or a bare WEAKKEYS RSA
// MODULUS block.
func ParseCertPEM(data []byte) (*big.Int, error) {
	if c, err := certs.ParsePEM(data); err == nil {
		return validateModulus(c.N)
	}
	mods, err := certs.ParseModulusPEMs(data)
	if err != nil || len(mods) == 0 {
		return nil, fmt.Errorf("%w: no certificate or modulus PEM block", ErrMalformed)
	}
	return validateModulus(mods[0])
}

// ParseCertDER extracts and validates the RSA modulus from a DER
// certificate submission.
func ParseCertDER(data []byte) (*big.Int, error) {
	c, err := certs.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%w: cert_der: %v", ErrMalformed, err)
	}
	return validateModulus(c.N)
}

func validateModulus(n *big.Int) (*big.Int, error) {
	if n == nil || n.Sign() <= 0 {
		return nil, fmt.Errorf("%w: modulus must be positive", ErrMalformed)
	}
	if bits := n.BitLen(); bits < MinModulusBits || bits > MaxModulusBits {
		return nil, fmt.Errorf("%w: modulus is %d bits, want %d..%d",
			ErrMalformed, bits, MinModulusBits, MaxModulusBits)
	}
	if n.Bit(0) == 0 {
		return nil, fmt.Errorf("%w: modulus is even", ErrMalformed)
	}
	return n, nil
}

func hexOf(n *big.Int) string { return n.Text(16) }

package keycheck

import (
	"context"
	"math/big"
	"testing"

	"github.com/factorable/weakkeys/internal/scanstore"
)

// Fresh fixed primes for delta fixtures — none of them appear in the
// golden corpus.
var (
	s1 = mustHex("e142ea7d17be3111")
	s2 = mustHex("ec1b8ca1f91e1d4d")
	s3 = mustHex("e14ff3d719db3ad1")
	s4 = mustHex("ece66fa2fd5166e7")
	s5 = mustHex("b02b61c4a3d70629")
	s6 = mustHex("e27a984d654821d1")
)

func deltaStore(t *testing.T, mods ...*big.Int) *scanstore.Store {
	t.Helper()
	store := scanstore.New()
	for i, n := range mods {
		store.AddBareKeyObservation("10.9.0.1", date(2013, 6, 1+i), scanstore.SourceRapid7, scanstore.SSH, n)
	}
	return store
}

// TestIngestSharedWithOldCorpus is the core incremental scenario: a
// delta modulus shares one prime with a previously-clean corpus member.
// The delta key must come in factored AND the old member must be
// re-labeled factored (the fold-back), at every shard count.
func TestIngestSharedWithOldCorpus(t *testing.T) {
	dm := new(big.Int).Mul(q1, s1) // shares q1 with clean member N3 = q1*q2
	for _, shards := range []int{1, 2, 4, 8} {
		snap := goldenSnapshot(t, shards)
		ns, rep, err := snap.Ingest(context.Background(), BuildInput{Store: deltaStore(t, dm)})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if rep.DeltaModuli != 1 || rep.NewFactored != 1 || rep.Refactored != 1 {
			t.Errorf("shards=%d: report %+v, want 1 delta / 1 factored / 1 refactored", shards, rep)
		}
		v := ns.Check(dm)
		if v.Status != StatusFactored || !v.Known {
			t.Errorf("shards=%d: delta modulus = %+v, want factored/known", shards, v)
		}
		if v.FactorP != q1.Text(16) && v.FactorQ != q1.Text(16) {
			t.Errorf("shards=%d: delta factors %s,%s lack %s", shards, v.FactorP, v.FactorQ, q1.Text(16))
		}
		v = ns.Check(modN3)
		if v.Status != StatusFactored || !v.Known {
			t.Errorf("shards=%d: old member N3 = %+v, want factored after fold-back", shards, v)
		}
		// The predecessor snapshot must be untouched: N3 still clean there.
		if v := snap.Check(modN3); v.Status != StatusClean {
			t.Errorf("shards=%d: predecessor mutated, N3 = %+v", shards, v)
		}
	}
}

// TestIngestCleanAndCliqueDelta: a clean novel modulus becomes a known
// member, and a prime shared only inside the delta is found by the
// delta-internal batch GCD without touching the old products.
func TestIngestCleanAndCliqueDelta(t *testing.T) {
	clean := new(big.Int).Mul(s2, s3)
	c1 := new(big.Int).Mul(s4, s5)
	c2 := new(big.Int).Mul(s4, s6)
	for _, shards := range []int{1, 3, 8} {
		snap := goldenSnapshot(t, shards)
		ns, rep, err := snap.Ingest(context.Background(), BuildInput{Store: deltaStore(t, clean, c1, c2)})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if rep.DeltaModuli != 3 || rep.NewFactored != 2 || rep.Refactored != 0 {
			t.Errorf("shards=%d: report %+v, want 3 delta / 2 factored / 0 refactored", shards, rep)
		}
		if v := ns.Check(clean); v.Status != StatusClean || !v.Known {
			t.Errorf("shards=%d: clean delta = %+v, want clean/known", shards, v)
		}
		for _, n := range []*big.Int{c1, c2} {
			v := ns.Check(n)
			if v.Status != StatusFactored || !v.Known {
				t.Errorf("shards=%d: clique member = %+v, want factored/known", shards, v)
			}
			if v.FactorP != s4.Text(16) && v.FactorQ != s4.Text(16) {
				t.Errorf("shards=%d: clique factors %s,%s lack %s", shards, v.FactorP, v.FactorQ, s4.Text(16))
			}
		}
	}
}

// TestIngestDegenerateDivisor: the delta modulus is built from two
// corpus primes living in the same (single) shard, so the per-shard GCD
// degenerates to N itself. The mate scan plus recovered-prime pool must
// still split it, and both old members sharing its primes fold back.
func TestIngestDegenerateDivisor(t *testing.T) {
	dm := new(big.Int).Mul(p2, q2) // p2 from N1 (already factored), q2 from N3 (clean)
	snap := goldenSnapshot(t, 1)
	ns, rep, err := snap.Ingest(context.Background(), BuildInput{Store: deltaStore(t, dm)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NewFactored != 1 || rep.Refactored != 1 {
		t.Errorf("report %+v, want 1 factored / 1 refactored (N3 only; N1 already factored)", rep)
	}
	v := ns.Check(dm)
	if v.Status != StatusFactored {
		t.Fatalf("degenerate delta = %+v, want factored", v)
	}
	got := map[string]bool{v.FactorP: true, v.FactorQ: true}
	if !got[p2.Text(16)] || !got[q2.Text(16)] {
		t.Errorf("factors %s,%s, want %s,%s", v.FactorP, v.FactorQ, p2.Text(16), q2.Text(16))
	}
	if v := ns.Check(modN3); v.Status != StatusFactored {
		t.Errorf("N3 after degenerate ingest = %+v, want factored", v)
	}
}

// TestIngestDuplicatesOnly: re-ingesting the existing corpus is a no-op
// that returns the receiver itself.
func TestIngestDuplicatesOnly(t *testing.T) {
	snap := goldenSnapshot(t, 4)
	ns, rep, err := snap.Ingest(context.Background(), BuildInput{Store: deltaStore(t, modN1, modN2, modN3)})
	if err != nil {
		t.Fatal(err)
	}
	if ns != snap {
		t.Error("duplicate-only ingest did not return the receiver")
	}
	if rep.Duplicates != 3 || rep.DeltaModuli != 0 || rep.TouchedShards != 0 {
		t.Errorf("report %+v, want 3 duplicates, nothing else", rep)
	}
}

// TestIngestStructuralSharing: after a one-modulus ingest into many
// shards, every untouched shard is the predecessor's by reference and
// the report accounts every reused node.
func TestIngestStructuralSharing(t *testing.T) {
	snap := goldenSnapshot(t, 8)
	dm := new(big.Int).Mul(s2, s3)
	ns, rep, err := snap.Ingest(context.Background(), BuildInput{Store: deltaStore(t, dm)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TouchedShards != 1 {
		t.Fatalf("touched %d shards, want 1", rep.TouchedShards)
	}
	shared := 0
	for si := range snap.shards {
		if ns.shards[si] == snap.shards[si] {
			shared++
			if !rep.Shards[si].Shared {
				t.Errorf("shard %d shared but not reported so", si)
			}
		}
	}
	if shared != 7 {
		t.Errorf("%d shards shared by reference, want 7", shared)
	}
	if rep.NodesReused == 0 {
		t.Error("no nodes reported reused")
	}
	if ns.Generation() <= snap.Generation() {
		t.Errorf("generation did not advance: %d -> %d", snap.Generation(), ns.Generation())
	}
	// Verdicts on the merged snapshot still match the golden semantics.
	if v := ns.Check(modN1); v.Status != StatusFactored || v.Vendor != "Juniper" {
		t.Errorf("N1 after ingest = %+v", v)
	}
	if v := ns.Check(dm); v.Status != StatusClean || !v.Known {
		t.Errorf("ingested clean modulus = %+v", v)
	}
}

// TestIngestForeignMate: on a partial (cluster-replica) snapshot, a
// delta modulus homed in an unowned shard is skipped from the index but
// still rides the GCD sweep — an owned member sharing one of its primes
// must be re-labeled. The owner of the foreign key may share no shard
// with this replica, so the sync feed is the only way the pair ever
// meets here.
func TestIngestForeignMate(t *testing.T) {
	const shards = 4
	ctx := context.Background()
	ownShard := ShardOf(modN3, shards)

	store := scanstore.New()
	store.AddBareKeyObservation("10.0.0.3", date(2013, 5, 1), scanstore.SourceRapid7, scanstore.SSH, modN3)
	snap, err := Build(ctx, BuildInput{Store: store, Shards: shards, OwnShards: []int{ownShard}})
	if err != nil {
		t.Fatal(err)
	}

	// foreignWith brute-forces an odd cofactor so p*c homes in a shard
	// this snapshot does not own.
	foreignWith := func(p *big.Int) *big.Int {
		c := mustHex("c132b11d89ab4e63")
		two := big.NewInt(2)
		for i := 0; i < 1<<14; i++ {
			m := new(big.Int).Mul(p, c)
			if ShardOf(m, shards) != ownShard {
				return m
			}
			c.Add(c, two)
		}
		t.Fatalf("no cofactor keeps a multiple of %s out of shard %d", p.Text(16), ownShard)
		return nil
	}

	// A foreign modulus sharing q1 with the owned clean member N3.
	dm := foreignWith(q1)
	ns, rep, err := snap.Ingest(ctx, BuildInput{Store: deltaStore(t, dm)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Skipped != 1 || rep.DeltaModuli != 0 || rep.Refactored != 1 || rep.NewFactored != 0 {
		t.Errorf("report %+v, want 1 skipped / 0 delta / 1 refactored", rep)
	}
	if ns == snap {
		t.Fatal("mate re-label did not publish a new snapshot")
	}
	if ns.Moduli() != snap.Moduli() {
		t.Errorf("foreign modulus changed the index size: %d -> %d", snap.Moduli(), ns.Moduli())
	}
	v := ns.Check(modN3)
	if v.Status != StatusFactored || !v.Known {
		t.Fatalf("owned mate N3 = %+v, want factored after the foreign sweep", v)
	}
	if v.FactorP != q1.Text(16) && v.FactorQ != q1.Text(16) {
		t.Errorf("mate factors %s,%s lack the shared prime %s", v.FactorP, v.FactorQ, q1.Text(16))
	}
	if v := ns.Check(dm); v.Known {
		t.Errorf("foreign modulus was indexed: %+v", v)
	}

	// A foreign modulus sharing nothing with the owned corpus is a pure
	// pass-through: no new snapshot, nothing indexed, nothing re-labeled.
	noop := foreignWith(s2)
	ns2, rep2, err := ns.Ingest(ctx, BuildInput{Store: deltaStore(t, noop)})
	if err != nil {
		t.Fatal(err)
	}
	if ns2 != ns {
		t.Error("foreign-only clean ingest published a needless snapshot")
	}
	if rep2.Skipped != 1 || rep2.DeltaModuli != 0 || rep2.Refactored != 0 {
		t.Errorf("noop report %+v, want 1 skipped and nothing else", rep2)
	}
}

// TestIngestShardMismatch: re-sharding requires a full rebuild.
func TestIngestShardMismatch(t *testing.T) {
	snap := goldenSnapshot(t, 4)
	_, _, err := snap.Ingest(context.Background(), BuildInput{Store: deltaStore(t, modNc), Shards: 8})
	if err == nil {
		t.Error("mismatched shard count accepted")
	}
	if _, _, err := snap.Ingest(context.Background(), BuildInput{}); err == nil {
		t.Error("nil store accepted")
	}
}

// TestIngestIntoEmpty: the longitudinal loop's first month starts from
// Empty and ingests the whole corpus — equivalent to a fresh Build.
func TestIngestIntoEmpty(t *testing.T) {
	c1 := new(big.Int).Mul(s4, s5)
	c2 := new(big.Int).Mul(s4, s6)
	clean := new(big.Int).Mul(s2, s3)
	ns, rep, err := Empty(4).Ingest(context.Background(), BuildInput{Store: deltaStore(t, c1, c2, clean)})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeltaModuli != 3 || rep.NewFactored != 2 {
		t.Errorf("report %+v, want 3 delta / 2 factored", rep)
	}
	if v := ns.Check(c1); v.Status != StatusFactored || !v.Known {
		t.Errorf("c1 = %+v, want factored/known", v)
	}
	if v := ns.Check(clean); v.Status != StatusClean || !v.Known {
		t.Errorf("clean = %+v, want clean/known", v)
	}
}

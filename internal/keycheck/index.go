package keycheck

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/big"
	"sort"
	"sync/atomic"

	"github.com/factorable/weakkeys/internal/anomaly"
	"github.com/factorable/weakkeys/internal/fingerprint"
	"github.com/factorable/weakkeys/internal/kernel"
	"github.com/factorable/weakkeys/internal/prodtree"
	"github.com/factorable/weakkeys/internal/scanstore"
)

// Entry is the exact-map record for one factored corpus modulus.
type Entry struct {
	// P, Q is the recovered factorization, P <= Q.
	P, Q *big.Int
	// Vendor and Attribution are the fingerprint label of a corpus
	// certificate serving this modulus ("" when unlabeled or bare-key).
	Vendor      string
	Attribution string
}

// shard holds one hash partition of the corpus: a Bloom filter over
// every modulus observed in the partition, the exact map of factored
// moduli behind it, and the partition's product tree for the GCD path.
// All fields are immutable after Build/Ingest; Ingest replaces touched
// shards wholesale and shares untouched ones by reference.
type shard struct {
	bloom    *bloomFilter
	factored map[string]Entry
	// tree is the shard's modulus product tree. Keeping the whole tree
	// (not just the root) is what lets Ingest extend it incrementally:
	// prodtree.Extend reuses every node whose subtree gained no new
	// leaf, and the leaf level doubles as the shard's exact membership
	// list.
	tree   *prodtree.Tree
	moduli int
	// shared maps unfactored member moduli the corpus observed under two
	// or more distinct identities to their identity count — the
	// shared-modulus graph projected onto this shard, minus anything
	// batch GCD already broke (a factored verdict outranks the identity
	// graph). Shared members answer shared_modulus instead of clean.
	shared map[string]int
	// cleanSample holds a few non-factored, non-shared member keys for
	// Snapshot.Exemplars (smoke tests and load generators need known
	// clean corpus members without shipping the whole corpus).
	cleanSample []string
}

// product returns the shard's modulus product, or nil for an empty shard.
func (sh *shard) product() *big.Int {
	if sh.tree == nil {
		return nil
	}
	return sh.tree.Root()
}

// exemplarSample bounds the per-shard clean-key sample.
const exemplarSample = 32

// Snapshot is an immutable, queryable index over one corpus. Snapshots
// are built once (Build) or derived from a predecessor (Ingest),
// published through an Index, and shared by any number of concurrent
// readers without locking.
type Snapshot struct {
	shards   []*shard
	moduli   int
	factored int
	// gen is a process-unique generation stamp. Verdict caches tag
	// entries with it so a verdict computed against one snapshot can
	// never be served as current after a swap to another.
	gen uint64
	// own, when non-nil, marks the shards this snapshot actually
	// indexes — the cluster-replica case, where each process owns a
	// placement-assigned subset and the unowned shards stay empty. A
	// nil own means the snapshot indexes every shard (the standalone
	// and router-less deployments).
	own []bool
	// shared counts the shared-modulus members across every shard.
	shared int
	// probe holds the bounded factoring probes Check runs against novel
	// moduli that the GCD path cannot break. The zero value selects the
	// default anomaly budgets; negative budgets disable a probe.
	probe anomaly.Probe
}

// owns reports whether the snapshot indexes shard si.
func (s *Snapshot) owns(si int) bool { return s.own == nil || (si < len(s.own) && s.own[si]) }

// Owned lists the shards this snapshot indexes; nil means all of them.
func (s *Snapshot) Owned() []int {
	if s.own == nil {
		return nil
	}
	var out []int
	for si, ok := range s.own {
		if ok {
			out = append(out, si)
		}
	}
	return out
}

// snapGen issues process-unique snapshot generations.
var snapGen atomic.Uint64

// Generation returns the snapshot's process-unique generation stamp.
func (s *Snapshot) Generation() uint64 { return s.gen }

// Empty returns a snapshot over no corpus at all: every check answers
// clean/novel. It is the seed of a pure-ingest pipeline — the
// longitudinal loop starts Empty and folds in one month at a time.
func Empty(shards int) *Snapshot {
	if shards <= 0 {
		shards = DefaultShards
	}
	snap := &Snapshot{shards: make([]*shard, shards), gen: snapGen.Add(1)}
	for i := range snap.shards {
		snap.shards[i] = &shard{factored: make(map[string]Entry)}
	}
	return snap
}

// DefaultShards is the Build default; the sweet spot at simulation scale
// between per-shard product size and fan-out cost.
const DefaultShards = 8

// BuildInput configures Build.
type BuildInput struct {
	// Store is the scan corpus (required).
	Store *scanstore.Store
	// Fingerprint supplies the factored set and vendor labels; nil
	// builds a membership-and-GCD-only index that can never answer
	// "factored" (it still answers "shared_factor" via the GCD path).
	Fingerprint *fingerprint.Result
	// Shards is the partition count (default DefaultShards).
	Shards int
	// OwnShards, when non-nil, restricts the build to the listed shard
	// indices — the cluster-replica form, where placement assigns each
	// process a subset of the hash space. Moduli homed in other shards
	// are dropped; checks against those shards come back Partial and
	// the router is expected to consult an owner instead.
	OwnShards []int
	// Probe sets the bounded factoring budgets Check applies to novel
	// moduli (zero value: the anomaly defaults; negative fields disable).
	Probe anomaly.Probe
}

// Build constructs a Snapshot from a completed study's corpus. The
// per-shard modulus products are built concurrently; ctx cancels
// mid-build (checked per product-tree level).
func Build(ctx context.Context, in BuildInput) (*Snapshot, error) {
	if in.Store == nil {
		return nil, fmt.Errorf("keycheck: build: nil store")
	}
	nShards := in.Shards
	if nShards <= 0 {
		nShards = DefaultShards
	}
	moduli, keys := in.Store.DistinctModuli()
	snap := &Snapshot{shards: make([]*shard, nShards), gen: snapGen.Add(1), probe: in.Probe}
	if in.OwnShards != nil {
		snap.own = make([]bool, nShards)
		for _, si := range in.OwnShards {
			if si < 0 || si >= nShards {
				return nil, fmt.Errorf("keycheck: build: owned shard %d out of range 0..%d", si, nShards-1)
			}
			snap.own[si] = true
		}
	}
	byShard := make([][]*big.Int, nShards)
	for i := range snap.shards {
		snap.shards[i] = &shard{factored: make(map[string]Entry)}
	}
	var factors map[string]fingerprint.Factors
	if in.Fingerprint != nil {
		factors = in.Fingerprint.Factors
	}
	// One bulk pass over the store projects the shared-modulus graph
	// (same N under distinct identities) onto the shards.
	identities := anomaly.IdentityCounts(in.Store)
	for i, key := range keys {
		si := shardOf(key, nShards)
		if !snap.owns(si) {
			continue
		}
		sh := snap.shards[si]
		byShard[si] = append(byShard[si], moduli[i])
		sh.moduli++
		snap.moduli++
		if f, ok := factors[key]; ok {
			// A factored member outranks its identity graph: the shared
			// map only tracks the unfactored shared moduli, the class
			// batch GCD cannot see.
			sh.factored[key] = Entry{P: f.P, Q: f.Q}
			snap.factored++
		} else if cnt, ok := identities[key]; ok {
			if sh.shared == nil {
				sh.shared = make(map[string]int)
			}
			sh.shared[key] = cnt
			snap.shared++
		} else if len(sh.cleanSample) < exemplarSample {
			sh.cleanSample = append(sh.cleanSample, key)
		}
	}
	// Vendor labels ride along with the factored entries so a verdict
	// can name the implicated implementation, the paper's Section 3.3
	// attribution surfaced per key.
	if in.Fingerprint != nil {
		for si := range snap.shards {
			sh := snap.shards[si]
			for key, e := range sh.factored {
				for _, c := range in.Store.CertsWithModulus(key) {
					fp, err := c.Fingerprint()
					if err != nil {
						continue
					}
					if lbl, ok := in.Fingerprint.Labels[fp]; ok {
						e.Vendor, e.Attribution = lbl.Vendor, lbl.Method.String()
						sh.factored[key] = e
						break
					}
				}
			}
		}
	}
	// Blooms and products. Products dominate build time; fan the shards
	// out on the shared kernel pool, mirroring the subset partitioning
	// of the distributed batch GCD. The nested product-tree builds
	// schedule their levels on the same pool, so total concurrency
	// stays bounded by the pool width instead of shards × GOMAXPROCS.
	eng := kernel.FromContext(ctx)
	errs := make([]error, nShards)
	runErr := eng.Run(ctx, nShards, func(si int, _ *kernel.Arena) {
		sh := snap.shards[si]
		sh.bloom = newBloom(sh.moduli)
		if len(byShard[si]) == 0 {
			return
		}
		for _, n := range byShard[si] {
			sh.bloom.add(string(n.Bytes()))
		}
		tree, err := prodtree.NewCtx(ctx, byShard[si])
		if err != nil {
			errs[si] = fmt.Errorf("keycheck: build shard %d: %w", si, err)
			return
		}
		sh.tree = tree
	})
	if runErr != nil {
		return nil, fmt.Errorf("keycheck: build cancelled: %w", runErr)
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return snap, nil
}

// shardOf maps a modulus key to its home shard by FNV-1a hash.
func shardOf(key string, nShards int) int {
	h := fnv.New64a()
	h.Write([]byte(key))
	return int(h.Sum64() % uint64(nShards))
}

// ShardOf maps a modulus to its home shard — the same FNV-1a placement
// Build and Check use, exported so the cluster router can route a
// submission to the replica owning its home shard without holding any
// index itself.
func ShardOf(n *big.Int, nShards int) int {
	if nShards <= 0 {
		nShards = DefaultShards
	}
	return shardOf(string(n.Bytes()), nShards)
}

var one = big.NewInt(1)

// Check answers for one modulus. The fast path is the home shard's
// Bloom filter plus exact map; a miss falls through to GCD against
// every shard's product, so a key no scan ever observed is still caught
// when it shares a prime with the corpus.
func (s *Snapshot) Check(n *big.Int) Verdict {
	key := string(n.Bytes())
	home := shardOf(key, len(s.shards))
	v := Verdict{Status: StatusClean, ModulusBits: n.BitLen(), Shard: home}
	if !s.owns(home) {
		// A cluster replica that doesn't own the home shard cannot
		// answer membership: its clean/unknown half is only about the
		// shards it holds. The GCD sweep below still runs over the
		// owned products — a shared prime in any of them is definitive.
		v.Partial = true
	}
	homeShard := s.shards[home]
	inBloom := homeShard.bloom.mayContain(key)
	if inBloom {
		if e, ok := homeShard.factored[key]; ok {
			v.Status = StatusFactored
			v.Known = true
			v.FactorP, v.FactorQ = hexOf(e.P), hexOf(e.Q)
			v.Vendor, v.Attribution = e.Vendor, e.Attribution
			return v
		}
	}
	// GCD path. gcd(n, P mod n) = gcd(n, P) finds the product of n's
	// primes shared with shard product P without ever forming P/n.
	g := new(big.Int).Set(one)
	var proper *big.Int // a proper divisor of n, if any shard yields one
	r := new(big.Int)
	for si, sh := range s.shards {
		product := sh.product()
		if product == nil {
			continue
		}
		r.Mod(product, n)
		if r.Sign() == 0 {
			// n divides the shard product outright. For the home shard
			// with a Bloom hit that means n is a corpus member: batch
			// GCD already ran over the whole corpus at build time, so a
			// member absent from the factored map shares no prime.
			if si == home && inBloom {
				v.Known = true
				continue
			}
			// A novel modulus dividing a product means every prime of n
			// is in the corpus.
			g.Set(n)
			continue
		}
		gi := new(big.Int).GCD(nil, nil, n, r)
		if gi.Cmp(one) <= 0 {
			continue
		}
		if gi.Cmp(n) < 0 {
			proper = gi
		}
		g.Mul(g, gi)
		g.GCD(nil, nil, g, n)
	}
	if g.Cmp(one) == 0 {
		if v.Known {
			// A member with no shared prime can still be anomalous: the
			// same modulus observed under distinct identities at scan
			// time. Any identity holding the private key breaks the rest.
			if cnt, ok := homeShard.shared[key]; ok {
				v.Status = StatusSharedModulus
				v.SharedWith = cnt
			}
			return v
		}
		// Novel modulus the corpus cannot touch: run the bounded anomaly
		// probes (trial division, Fermat ascent, Pollard rho). Members
		// skip this — the offline anomaly pass already swept the corpus —
		// and a probe hit is definitive even on a Partial replica.
		if cls, p, q := s.probe.Factor(n); cls != anomaly.ProbeNone {
			switch cls {
			case anomaly.ProbeFermatWeak:
				v.Status = StatusFermatWeak
			case anomaly.ProbeSmallFactor:
				v.Status = StatusSmallFactor
			}
			if p != nil && q != nil {
				if new(big.Int).Mul(p, q).Cmp(n) == 0 {
					v.FactorP, v.FactorQ = hexOf(p), hexOf(q)
				}
				v.Divisor = hexOf(p)
			}
		}
		return v
	}
	v.Status = StatusSharedFactor
	if g.Cmp(n) == 0 && proper == nil {
		// Both primes live in one shard's product, so every per-shard
		// GCD was degenerate. Recover the split from the known factored
		// primes when possible.
		proper = s.recoverDivisor(n)
	}
	if g.Cmp(n) < 0 {
		proper = g
	}
	if proper != nil {
		p := proper
		q := new(big.Int).Quo(n, p)
		if new(big.Int).Mul(p, q).Cmp(n) == 0 {
			if p.Cmp(q) > 0 {
				p, q = q, p
			}
			v.FactorP, v.FactorQ = hexOf(p), hexOf(q)
		}
	}
	v.Divisor = hexOf(g)
	return v
}

// recoverDivisorCap bounds the fallback prime scan for the rare
// both-primes-in-one-shard case.
const recoverDivisorCap = 4096

func (s *Snapshot) recoverDivisor(n *big.Int) *big.Int {
	scanned := 0
	for _, sh := range s.shards {
		for _, e := range sh.factored {
			for _, p := range []*big.Int{e.P, e.Q} {
				g := new(big.Int).GCD(nil, nil, n, p)
				if g.Cmp(one) > 0 && g.Cmp(n) < 0 {
					return g
				}
			}
			if scanned++; scanned >= recoverDivisorCap {
				return nil
			}
		}
	}
	return nil
}

// ShardStats describes one shard for /v1/stats.
type ShardStats struct {
	Moduli      int `json:"moduli"`
	Factored    int `json:"factored"`
	Shared      int `json:"shared,omitempty"`
	ProductBits int `json:"product_bits"`
}

// SnapshotStats describes the snapshot for /v1/stats.
type SnapshotStats struct {
	Moduli   int `json:"moduli"`
	Factored int `json:"factored"`
	// Shared counts the members the corpus observed under two or more
	// distinct identities (the shared-modulus graph).
	Shared int `json:"shared,omitempty"`
	// Owned lists the shards this snapshot indexes; absent when the
	// snapshot holds the whole hash space (non-cluster deployments).
	Owned  []int        `json:"owned_shards,omitempty"`
	Shards []ShardStats `json:"shards"`
}

// Stats summarizes the snapshot.
func (s *Snapshot) Stats() SnapshotStats {
	st := SnapshotStats{Moduli: s.moduli, Factored: s.factored, Shared: s.shared, Owned: s.Owned()}
	for _, sh := range s.shards {
		ss := ShardStats{Moduli: sh.moduli, Factored: len(sh.factored), Shared: len(sh.shared)}
		if p := sh.product(); p != nil {
			ss.ProductBits = p.BitLen()
		}
		st.Shards = append(st.Shards, ss)
	}
	return st
}

// Moduli returns the number of distinct corpus moduli indexed.
func (s *Snapshot) Moduli() int { return s.moduli }

// Factored returns the number of factored corpus moduli indexed.
func (s *Snapshot) Factored() int { return s.factored }

// Shared returns the number of shared-modulus members indexed.
func (s *Snapshot) Shared() int { return s.shared }

// SharedExemplars returns up to n shared-modulus member keys (hex,
// deterministic order) — known-answer inputs for smoke tests.
func (s *Snapshot) SharedExemplars(n int) []string {
	var keys []string
	for _, sh := range s.shards {
		for key := range sh.shared {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	if len(keys) > n {
		keys = keys[:n]
	}
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = hexOf(new(big.Int).SetBytes([]byte(k)))
	}
	return out
}

// Exemplars returns up to n factored and n clean corpus moduli (hex,
// deterministic order) — known-answer inputs for smoke tests and load
// generators.
func (s *Snapshot) Exemplars(n int) (factored, clean []string) {
	var fk, ck []string
	for _, sh := range s.shards {
		for key := range sh.factored {
			fk = append(fk, key)
		}
		ck = append(ck, sh.cleanSample...)
	}
	sort.Strings(fk)
	sort.Strings(ck)
	trunc := func(keys []string) []string {
		if len(keys) > n {
			keys = keys[:n]
		}
		out := make([]string, len(keys))
		for i, k := range keys {
			out[i] = hexOf(new(big.Int).SetBytes([]byte(k)))
		}
		return out
	}
	return trunc(fk), trunc(ck)
}

// Index publishes the live Snapshot. Readers load it with one atomic
// pointer read; Swap folds a rebuilt snapshot in without ever blocking
// them — the factorable.net "fold in the new scan's results" motion.
type Index struct {
	snap  atomic.Pointer[Snapshot]
	swaps atomic.Int64
}

// NewIndex publishes an initial snapshot.
func NewIndex(s *Snapshot) *Index {
	ix := &Index{}
	ix.snap.Store(s)
	return ix
}

// Snapshot returns the currently published snapshot.
func (ix *Index) Snapshot() *Snapshot { return ix.snap.Load() }

// Swap atomically publishes s and returns the previous snapshot.
// In-flight checks keep reading the snapshot they started on.
func (ix *Index) Swap(s *Snapshot) *Snapshot {
	ix.swaps.Add(1)
	return ix.snap.Swap(s)
}

// Swaps counts snapshots published after the initial one.
func (ix *Index) Swaps() int64 { return ix.swaps.Load() }

// Check answers against the currently published snapshot.
func (ix *Index) Check(n *big.Int) Verdict { return ix.snap.Load().Check(n) }

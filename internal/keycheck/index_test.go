package keycheck

import (
	"context"
	"math/big"
	"sync"
	"testing"
	"time"

	"github.com/factorable/weakkeys/internal/certs"
	"github.com/factorable/weakkeys/internal/fingerprint"
	"github.com/factorable/weakkeys/internal/scanstore"
)

// The golden corpus: fixed 64-bit primes so every expected verdict —
// including factor hex strings — is a literal in the tests.
//
//	N1 = p1*p2  in corpus (cert, O=Juniper), factored (shares p1 with N2)
//	N2 = p1*p3  in corpus (bare key), factored
//	N3 = q1*q2  in corpus (bare key), clean
//	Ns = p3*r1  novel, shares p3 with the corpus
//	Nc = r2*r3  novel, clean
var (
	p1 = mustHex("cb1a897ef032256b")
	p2 = mustHex("ba5e34293664b321")
	p3 = mustHex("cddf196d1cc15f59")
	q1 = mustHex("901e692504a24c01")
	q2 = mustHex("fad4173adc25ce7b")
	r1 = mustHex("a627d0c250f0d6ab")
	r2 = mustHex("ea9f25957aa3ea13")
	r3 = mustHex("dd7fc43a8a82154d")

	modN1 = new(big.Int).Mul(p1, p2)
	modN2 = new(big.Int).Mul(p1, p3)
	modN3 = new(big.Int).Mul(q1, q2)
	modNs = new(big.Int).Mul(p3, r1)
	modNc = new(big.Int).Mul(r2, r3)
)

func mustHex(s string) *big.Int {
	n, ok := new(big.Int).SetString(s, 16)
	if !ok {
		panic("bad hex: " + s)
	}
	return n
}

func date(y, m, d int) time.Time {
	return time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC)
}

// certFor self-signs a certificate over the modulus p*q with the given
// organization, deriving the private exponent from the factors.
func certFor(t *testing.T, serial int64, org string, p, q *big.Int) *certs.Certificate {
	t.Helper()
	n := new(big.Int).Mul(p, q)
	phi := new(big.Int).Mul(new(big.Int).Sub(p, one), new(big.Int).Sub(q, one))
	for _, e := range []int64{65537, 257, 17, 5, 3} {
		d := new(big.Int).ModInverse(big.NewInt(e), phi)
		if d == nil {
			continue
		}
		c, err := certs.SelfSigned(big.NewInt(serial), certs.Name{CommonName: "device", Organization: org},
			date(2012, 1, 1), date(2022, 1, 1), nil, n, int(e), d)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	t.Fatalf("no usable public exponent for %v", n)
	return nil
}

// goldenSnapshot assembles the fixed corpus above into a snapshot.
func goldenSnapshot(t *testing.T, shards int) *Snapshot {
	t.Helper()
	store := scanstore.New()
	c1 := certFor(t, 1, "Juniper", p1, p2)
	if err := store.AddCertObservation("10.0.0.1", date(2013, 5, 1), scanstore.SourceRapid7, scanstore.HTTPS, c1); err != nil {
		t.Fatal(err)
	}
	store.AddBareKeyObservation("10.0.0.2", date(2013, 5, 1), scanstore.SourceRapid7, scanstore.SSH, modN2)
	store.AddBareKeyObservation("10.0.0.3", date(2013, 5, 1), scanstore.SourceRapid7, scanstore.SSH, modN3)

	fp1, err := c1.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fpr := &fingerprint.Result{
		Factors: map[string]fingerprint.Factors{
			string(modN1.Bytes()): {P: p2, Q: p1},
			string(modN2.Bytes()): {P: p1, Q: p3},
		},
		Labels: map[[32]byte]fingerprint.Label{
			fp1: {Vendor: "Juniper", Method: fingerprint.BySubject},
		},
	}
	snap, err := Build(context.Background(), BuildInput{Store: store, Fingerprint: fpr, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestPartialSnapshotCheck pins the cluster-replica verdict contract: a
// snapshot built with OwnShards answers definitively for moduli homed
// in its shards, marks everything else Partial, and a Partial verdict
// is still allowed to convict — the GCD sweep over the owned products
// is authoritative even when membership is not.
func TestPartialSnapshotCheck(t *testing.T) {
	store := scanstore.New()
	store.AddBareKeyObservation("10.0.0.1", date(2013, 5, 1), scanstore.SourceRapid7, scanstore.SSH, modN1)
	store.AddBareKeyObservation("10.0.0.2", date(2013, 5, 1), scanstore.SourceRapid7, scanstore.SSH, modN2)
	store.AddBareKeyObservation("10.0.0.3", date(2013, 5, 1), scanstore.SourceRapid7, scanstore.SSH, modN3)
	fpr := &fingerprint.Result{Factors: map[string]fingerprint.Factors{
		string(modN1.Bytes()): {P: p2, Q: p1},
		string(modN2.Bytes()): {P: p1, Q: p3},
	}}
	// At 8 shards, N2 homes in shard 6; N1 (shard 2) and N3 (shard 7)
	// live elsewhere.
	own := []int{ShardOf(modN2, 8)}
	snap, err := Build(context.Background(), BuildInput{Store: store, Fingerprint: fpr, Shards: 8, OwnShards: own})
	if err != nil {
		t.Fatal(err)
	}

	// Owned home shard: full membership answer, no Partial.
	v := snap.Check(modN2)
	if v.Status != StatusFactored || !v.Known || v.Partial {
		t.Errorf("owned member N2 = %+v, want factored/known/definitive", v)
	}

	// Unowned home shard, but N1 shares p1 with the owned N2: the GCD
	// sweep convicts it even though membership is unanswerable here.
	v = snap.Check(modN1)
	if v.Status != StatusSharedFactor || v.Known || !v.Partial {
		t.Errorf("unowned member N1 = %+v, want shared_factor/partial", v)
	}
	if v.Divisor != p1.Text(16) {
		t.Errorf("N1 divisor %s, want shared prime %s", v.Divisor, p1.Text(16))
	}
	if v.FactorP != p2.Text(16) || v.FactorQ != p1.Text(16) {
		t.Errorf("N1 recovered factors %s,%s", v.FactorP, v.FactorQ)
	}

	// Unowned home shard and no shared prime: the clean answer is only
	// about the owned products, and Partial says so.
	v = snap.Check(modN3)
	if v.Status != StatusClean || v.Known || !v.Partial {
		t.Errorf("unowned member N3 = %+v, want clean/partial", v)
	}

	if st := snap.Stats(); len(st.Owned) != 1 || st.Owned[0] != own[0] {
		t.Errorf("Stats().Owned = %v, want %v", st.Owned, own)
	}
	// The partial corpus only indexes what it owns.
	if got := snap.Moduli(); got != 1 {
		t.Errorf("partial snapshot moduli = %d, want 1 (N2 only)", got)
	}
}

// TestVerdictSemantics runs the four golden inputs through Check at
// several shard counts: sharding must never change a verdict.
func TestVerdictSemantics(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 8} {
		snap := goldenSnapshot(t, shards)

		v := snap.Check(modN1)
		if v.Status != StatusFactored || !v.Known {
			t.Errorf("shards=%d: N1 = %+v, want factored/known", shards, v)
		}
		if v.FactorP != p2.Text(16) || v.FactorQ != p1.Text(16) {
			t.Errorf("shards=%d: N1 factors %s,%s", shards, v.FactorP, v.FactorQ)
		}
		if v.Vendor != "Juniper" || v.Attribution != "subject" {
			t.Errorf("shards=%d: N1 vendor %q/%q, want Juniper/subject", shards, v.Vendor, v.Attribution)
		}
		if !v.Compromised() {
			t.Errorf("shards=%d: factored verdict not compromised", shards)
		}

		v = snap.Check(modN2)
		if v.Status != StatusFactored || v.Vendor != "" {
			t.Errorf("shards=%d: N2 = %+v, want factored, no vendor (bare key)", shards, v)
		}

		v = snap.Check(modN3)
		if v.Status != StatusClean || !v.Known {
			t.Errorf("shards=%d: N3 = %+v, want clean/known", shards, v)
		}

		v = snap.Check(modNs)
		if v.Status != StatusSharedFactor || v.Known {
			t.Errorf("shards=%d: Ns = %+v, want shared_factor/novel", shards, v)
		}
		if v.Divisor != p3.Text(16) {
			t.Errorf("shards=%d: Ns divisor %s, want %s", shards, v.Divisor, p3.Text(16))
		}
		if v.FactorP != r1.Text(16) || v.FactorQ != p3.Text(16) {
			t.Errorf("shards=%d: Ns factors %s,%s", shards, v.FactorP, v.FactorQ)
		}

		v = snap.Check(modNc)
		if v.Status != StatusClean || v.Known {
			t.Errorf("shards=%d: Nc = %+v, want clean/novel", shards, v)
		}
	}
}

// TestBothPrimesInCorpus: a novel modulus assembled from two corpus
// primes divides a shard product outright; the index must still call it
// shared_factor and recover a split from the factored prime pool.
func TestBothPrimesInCorpus(t *testing.T) {
	snap := goldenSnapshot(t, 1)
	n := new(big.Int).Mul(p2, p3) // both known primes, modulus itself novel
	v := snap.Check(n)
	if v.Status != StatusSharedFactor {
		t.Fatalf("p2*p3 = %+v, want shared_factor", v)
	}
	if v.FactorP != p2.Text(16) || v.FactorQ != p3.Text(16) {
		t.Errorf("p2*p3 factors %s,%s, want %s,%s", v.FactorP, v.FactorQ, p2.Text(16), p3.Text(16))
	}
}

func TestBuildNilStore(t *testing.T) {
	if _, err := Build(context.Background(), BuildInput{}); err == nil {
		t.Error("nil store accepted")
	}
}

func TestBuildCancelled(t *testing.T) {
	store := scanstore.New()
	for i := int64(0); i < 64; i++ {
		store.AddBareKeyObservation("10.0.0.1", date(2013, 1, 1), scanstore.SourceRapid7, scanstore.SSH,
			new(big.Int).Add(new(big.Int).Lsh(big.NewInt(i+3), 80), big.NewInt(1)))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Build(ctx, BuildInput{Store: store}); err == nil {
		t.Error("cancelled build succeeded")
	}
}

func TestExemplars(t *testing.T) {
	snap := goldenSnapshot(t, 2)
	factored, clean := snap.Exemplars(8)
	if len(factored) != 2 {
		t.Fatalf("factored exemplars: %v", factored)
	}
	if len(clean) != 1 || clean[0] != modN3.Text(16) {
		t.Fatalf("clean exemplars: %v, want [%s]", clean, modN3.Text(16))
	}
	for _, hex := range factored {
		if v := snap.Check(mustHex(hex)); v.Status != StatusFactored {
			t.Errorf("factored exemplar %s answers %s", hex, v.Status)
		}
	}
}

// TestSnapshotSwapUnderReaders hammers Index.Check from many readers
// while a writer swaps between two snapshots with different factored
// sets. Every verdict must be exactly right for one of the two
// published snapshots — never a blend — and the whole test runs under
// -race in CI.
func TestSnapshotSwapUnderReaders(t *testing.T) {
	full := goldenSnapshot(t, 2)

	// The second snapshot drops N1/N2's factorizations: same corpus,
	// nothing factored (a study re-run that lost the GCD results).
	store := scanstore.New()
	store.AddBareKeyObservation("10.0.0.1", date(2013, 5, 1), scanstore.SourceRapid7, scanstore.SSH, modN1)
	store.AddBareKeyObservation("10.0.0.2", date(2013, 5, 1), scanstore.SourceRapid7, scanstore.SSH, modN2)
	store.AddBareKeyObservation("10.0.0.3", date(2013, 5, 1), scanstore.SourceRapid7, scanstore.SSH, modN3)
	empty, err := Build(context.Background(), BuildInput{Store: store, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}

	ix := NewIndex(full)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := ix.Check(modN1)
				// Valid under `full`: factored. Valid under `empty`:
				// clean but known (member, nothing factored).
				if !(v.Status == StatusFactored && v.Known) && !(v.Status == StatusClean && v.Known) {
					t.Errorf("torn verdict during swap: %+v", v)
					return
				}
				if v.Status == StatusFactored && v.FactorP != p2.Text(16) {
					t.Errorf("factored verdict with wrong factors: %+v", v)
					return
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			ix.Swap(empty)
		} else {
			ix.Swap(full)
		}
	}
	close(stop)
	wg.Wait()
	if got := ix.Swaps(); got != 200 {
		t.Errorf("swaps = %d, want 200", got)
	}
}

func TestStats(t *testing.T) {
	snap := goldenSnapshot(t, 4)
	st := snap.Stats()
	if st.Moduli != 3 || st.Factored != 2 || len(st.Shards) != 4 {
		t.Fatalf("stats: %+v", st)
	}
	total, factored, productBits := 0, 0, 0
	for _, sh := range st.Shards {
		total += sh.Moduli
		factored += sh.Factored
		productBits += sh.ProductBits
	}
	if total != 3 || factored != 2 {
		t.Errorf("shard totals %d/%d, want 3/2", total, factored)
	}
	// Each 128-bit modulus contributes ~128 bits of product somewhere.
	if productBits < 3*127 {
		t.Errorf("product bits %d, want >= %d", productBits, 3*127)
	}
}

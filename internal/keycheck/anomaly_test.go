package keycheck

import (
	"context"
	"encoding/json"
	"fmt"
	"math/big"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/factorable/weakkeys/internal/anomaly"
	"github.com/factorable/weakkeys/internal/fingerprint"
	"github.com/factorable/weakkeys/internal/scanstore"
)

// Anomalous novel moduli for the online-probe verdicts. cpP/cpQ are
// consecutive primes straddling 2^63.5, so the Fermat ascent splits
// their product immediately; sfQ is a ~120-bit prime whose product with
// 641 falls to trial division.
var (
	cpP   = mustHex("b504f333f9de64e3")
	cpQ   = mustHex("b504f333f9de650f")
	cpMod = new(big.Int).Mul(cpP, cpQ)

	sfP   = big.NewInt(641)
	sfQ   = mustHex("d6e5f84c9ab31027fd5a3c0e917bab")
	sfMod = new(big.Int).Mul(sfP, sfQ)
)

// anomalySnapshot is the golden corpus plus a shared modulus: modN3
// served by two certificates with distinct subjects. One shard keeps
// verdict shard fields deterministically 0.
func anomalySnapshot(t *testing.T) *Snapshot {
	t.Helper()
	store := scanstore.New()
	c1 := certFor(t, 1, "Juniper", p1, p2)
	if err := store.AddCertObservation("10.0.0.1", date(2013, 5, 1), scanstore.SourceRapid7, scanstore.HTTPS, c1); err != nil {
		t.Fatal(err)
	}
	store.AddBareKeyObservation("10.0.0.2", date(2013, 5, 1), scanstore.SourceRapid7, scanstore.SSH, modN2)
	for i, org := range []string{"RouterWorks", "CamCo"} {
		c := certFor(t, int64(31+i), org, q1, q2)
		ip := fmt.Sprintf("10.0.1.%d", i+1)
		if err := store.AddCertObservation(ip, date(2013, 5, 2), scanstore.SourceRapid7, scanstore.HTTPS, c); err != nil {
			t.Fatal(err)
		}
	}
	fp1, err := c1.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fpr := &fingerprint.Result{
		Factors: map[string]fingerprint.Factors{
			string(modN1.Bytes()): {P: p2, Q: p1},
			string(modN2.Bytes()): {P: p1, Q: p3},
		},
		Labels: map[[32]byte]fingerprint.Label{
			fp1: {Vendor: "Juniper", Method: fingerprint.BySubject},
		},
	}
	snap, err := Build(context.Background(), BuildInput{Store: store, Fingerprint: fpr, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestAnomalyGoldenResponses pins the complete JSON bodies of the four
// anomaly verdict classes the online service can answer beyond the
// batch-GCD pair.
func TestAnomalyGoldenResponses(t *testing.T) {
	svc := NewService(anomalySnapshot(t), Config{CacheSize: -1})
	mux := NewAPI(svc, nil, nil).Mux()

	cases := []struct {
		name     string
		body     string
		wantBody string
	}{
		{
			name: "member under two identities",
			body: fmt.Sprintf(`{"modulus_hex":"%s"}`, modN3.Text(16)),
			wantBody: `{"status":"shared_modulus","known":true,"modulus_bits":128,"shard":0,` +
				`"shared_with":2}`,
		},
		{
			name: "novel close-prime key",
			body: fmt.Sprintf(`{"modulus_hex":"%s"}`, cpMod.Text(16)),
			wantBody: `{"status":"fermat_weak","known":false,"modulus_bits":128,"shard":0,` +
				`"factor_p_hex":"b504f333f9de64e3","factor_q_hex":"b504f333f9de650f",` +
				`"divisor_hex":"b504f333f9de64e3"}`,
		},
		{
			name: "novel small-factor key",
			body: fmt.Sprintf(`{"modulus_hex":"%s"}`, sfMod.Text(16)),
			wantBody: `{"status":"small_factor","known":false,"modulus_bits":130,"shard":0,` +
				`"factor_p_hex":"281","factor_q_hex":"d6e5f84c9ab31027fd5a3c0e917bab",` +
				`"divisor_hex":"281"}`,
		},
		{
			name:     "clean key under an even exponent",
			body:     fmt.Sprintf(`{"modulus_hex":"%s","exponent_hex":"2"}`, modNc.Text(16)),
			wantBody: `{"status":"unsafe_exponent","known":false,"modulus_bits":128,"shard":0,"exponent_class":"even"}`,
		},
		{
			name:     "clean key under e=1",
			body:     fmt.Sprintf(`{"modulus_hex":"%s","exponent_hex":"1"}`, modNc.Text(16)),
			wantBody: `{"status":"unsafe_exponent","known":false,"modulus_bits":128,"shard":0,"exponent_class":"one"}`,
		},
		{
			name:     "clean key under an oversized exponent",
			body:     fmt.Sprintf(`{"modulus_hex":"%s","exponent_hex":"10000000001"}`, modNc.Text(16)),
			wantBody: `{"status":"unsafe_exponent","known":false,"modulus_bits":128,"shard":0,"exponent_class":"oversized"}`,
		},
		{
			// The small-exponent class (odd 3..65535) is census-only:
			// legal RSA must not flip the verdict.
			name:     "clean key under e=3 stays clean",
			body:     fmt.Sprintf(`{"modulus_hex":"%s","exponent_hex":"3"}`, modNc.Text(16)),
			wantBody: `{"status":"clean","known":false,"modulus_bits":128,"shard":0}`,
		},
		{
			// A compromised verdict outranks the exponent anomaly.
			name: "factored key under an even exponent stays factored",
			body: fmt.Sprintf(`{"modulus_hex":"%s","exponent_hex":"2"}`, modN1.Text(16)),
			wantBody: `{"status":"factored","known":true,"modulus_bits":128,"shard":0,` +
				`"factor_p_hex":"ba5e34293664b321","factor_q_hex":"cb1a897ef032256b",` +
				`"vendor":"Juniper","attribution":"subject"}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rr := postCheck(mux, tc.body)
			if rr.Code != http.StatusOK {
				t.Fatalf("HTTP %d; body %s", rr.Code, rr.Body)
			}
			if got := rr.Body.String(); got != tc.wantBody+"\n" {
				t.Errorf("body:\n got %s\nwant %s", got, tc.wantBody)
			}
		})
	}
}

// TestProbeDisabled: negative probe budgets turn the online probes off,
// and the anomalous novel keys answer clean again.
func TestProbeDisabled(t *testing.T) {
	store := scanstore.New()
	store.AddBareKeyObservation("10.0.0.3", date(2013, 5, 1), scanstore.SourceRapid7, scanstore.SSH, modN3)
	snap, err := Build(context.Background(), BuildInput{
		Store: store, Shards: 1,
		Probe: anomaly.Probe{FermatSteps: -1, TrialPrimes: -1, RhoSteps: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []*big.Int{cpMod, sfMod} {
		if v := snap.Check(n); v.Status != StatusClean {
			t.Errorf("probes disabled, %s answers %s", n.Text(16), v.Status)
		}
	}
}

// TestSharedModulusIngest drives the shared-modulus graph through the
// incremental path: a delta that re-observes a member under distinct
// identities flips it from clean to shared_modulus, the clean exemplar
// sample drops it, and counts only ever grow.
func TestSharedModulusIngest(t *testing.T) {
	snap := goldenSnapshot(t, 1)
	if v := snap.Check(modN3); v.Status != StatusClean || !v.Known {
		t.Fatalf("pre-ingest N3 = %+v, want clean member", v)
	}
	if got := snap.Shared(); got != 0 {
		t.Fatalf("golden snapshot shared = %d, want 0", got)
	}

	delta := scanstore.New()
	for i, org := range []string{"RouterWorks", "CamCo", "GateCo"} {
		c := certFor(t, int64(41+i), org, q1, q2)
		ip := fmt.Sprintf("10.0.2.%d", i+1)
		if err := delta.AddCertObservation(ip, date(2013, 6, 1), scanstore.SourceRapid7, scanstore.HTTPS, c); err != nil {
			t.Fatal(err)
		}
	}
	ns, rep, err := snap.Ingest(context.Background(), BuildInput{Store: delta})
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeltaModuli != 0 || rep.Duplicates != 1 {
		t.Fatalf("report %+v, want duplicate-only delta", rep)
	}
	if ns == snap {
		t.Fatal("shared-only delta did not publish a successor")
	}
	if got := ns.Shared(); got != 1 {
		t.Errorf("successor shared = %d, want 1", got)
	}
	v := ns.Check(modN3)
	if v.Status != StatusSharedModulus || !v.Known || v.SharedWith != 3 {
		t.Errorf("post-ingest N3 = %+v, want shared_modulus with 3 identities", v)
	}
	if _, clean := ns.Exemplars(8); len(clean) != 0 {
		t.Errorf("clean exemplars %v still include the shared member", clean)
	}
	if got := ns.SharedExemplars(8); len(got) != 1 || got[0] != modN3.Text(16) {
		t.Errorf("shared exemplars %v, want [%s]", got, modN3.Text(16))
	}

	// A later delta with fewer identities must not shrink the count.
	delta2 := scanstore.New()
	c := certFor(t, 51, "OnlyOne", q1, q2)
	if err := delta2.AddCertObservation("10.0.3.1", date(2013, 7, 1), scanstore.SourceRapid7, scanstore.HTTPS, c); err != nil {
		t.Fatal(err)
	}
	ns2, _, err := ns.Ingest(context.Background(), BuildInput{Store: delta2})
	if err != nil {
		t.Fatal(err)
	}
	if v := ns2.Check(modN3); v.SharedWith != 3 {
		t.Errorf("shrinking delta dropped the identity count: %+v", v)
	}

	// The predecessor is untouched (immutability contract).
	if v := snap.Check(modN3); v.Status != StatusClean {
		t.Errorf("predecessor mutated: %+v", v)
	}
}

// TestSharedExemplarsEndpoint: /v1/exemplars lists shared members once
// the snapshot has any.
func TestSharedExemplarsEndpoint(t *testing.T) {
	svc := NewService(anomalySnapshot(t), Config{CacheSize: -1})
	mux := NewAPI(svc, nil, nil).Mux()
	req := httptest.NewRequest(http.MethodGet, "/v1/exemplars?n=4", nil)
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("HTTP %d", rr.Code)
	}
	var ex exemplarsResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &ex); err != nil {
		t.Fatal(err)
	}
	if len(ex.Shared) != 1 || ex.Shared[0] != modN3.Text(16) {
		t.Errorf("shared exemplars %v, want [%s]", ex.Shared, modN3.Text(16))
	}
	if len(ex.Clean) != 0 {
		t.Errorf("clean exemplars %v, want none (the only clean member is shared)", ex.Clean)
	}
}

// TestApplyExponentClasses pins the upgrade matrix of ApplyExponent.
func TestApplyExponentClasses(t *testing.T) {
	clean := Verdict{Status: StatusClean}
	cases := []struct {
		e         *big.Int
		wantClass string
	}{
		{big.NewInt(1), "one"},
		{big.NewInt(6), "even"},
		{big.NewInt(0), "nonpositive"},
		{new(big.Int).Add(new(big.Int).Lsh(one, 80), one), "oversized"},
		{big.NewInt(3), ""},     // small: census-only
		{big.NewInt(65537), ""}, // ok
		{nil, ""},               // no exponent submitted
	}
	for _, tc := range cases {
		v := ApplyExponent(clean, tc.e)
		if tc.wantClass == "" {
			if v.Status != StatusClean || v.ExponentClass != "" {
				t.Errorf("e=%v upgraded to %s/%s", tc.e, v.Status, v.ExponentClass)
			}
			continue
		}
		if v.Status != StatusUnsafeExponent || v.ExponentClass != tc.wantClass {
			t.Errorf("e=%v = %s/%s, want unsafe_exponent/%s", tc.e, v.Status, v.ExponentClass, tc.wantClass)
		}
	}
	factored := Verdict{Status: StatusFactored}
	if v := ApplyExponent(factored, big.NewInt(2)); v.Status != StatusFactored {
		t.Errorf("factored verdict downgraded to %s", v.Status)
	}
}

// TestVerdictCompromised: the two probe classes convict; shared_modulus
// and unsafe_exponent do not claim private-key recovery.
func TestVerdictCompromised(t *testing.T) {
	for st, want := range map[Status]bool{
		StatusFactored:       true,
		StatusSharedFactor:   true,
		StatusFermatWeak:     true,
		StatusSmallFactor:    true,
		StatusSharedModulus:  false,
		StatusUnsafeExponent: false,
		StatusClean:          false,
	} {
		if got := (Verdict{Status: st}).Compromised(); got != want {
			t.Errorf("Compromised(%s) = %v, want %v", st, got, want)
		}
	}
}

// TestMemberSkipsProbes: corpus members never pay for (or get flagged
// by) the online probes — the offline anomaly pass covers members. A
// member that would be Fermat-factorable still answers by membership.
func TestMemberSkipsProbes(t *testing.T) {
	store := scanstore.New()
	store.AddBareKeyObservation("10.0.0.9", date(2013, 5, 1), scanstore.SourceRapid7, scanstore.SSH, cpMod)
	snap, err := Build(context.Background(), BuildInput{Store: store, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	v := snap.Check(cpMod)
	if v.Status != StatusClean || !v.Known {
		t.Errorf("member close-prime key = %+v, want clean/known (probes are for novel keys)", v)
	}
}

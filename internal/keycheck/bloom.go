package keycheck

import "hash/fnv"

// bloomFilter is a fixed-size Bloom filter over modulus keys. It fronts
// each shard's exact tables: a negative answer proves the modulus was
// never observed by any scan (and routes the check straight to the GCD
// path); a positive answer is confirmed against the exact maps. Filters
// are built once per snapshot and never mutated, so reads need no
// locking; an ingest either clones a filter (copy-on-write, while the
// delta still fits its sizing) or rebuilds it larger.
type bloomFilter struct {
	bits  []uint64
	m     uint64 // number of bits
	k     int    // hash functions
	items int
	sized int // item count the filter was sized for
}

// bloomBitsPerItem gives ~1% false positives with k = 7 — ample, since a
// false positive only costs one redundant GCD probe, never a wrong
// verdict.
const (
	bloomBitsPerItem = 10
	bloomHashes      = 7
)

// newBloom sizes a filter for n items. n == 0 yields a nil filter, whose
// mayContain is always false.
func newBloom(n int) *bloomFilter {
	if n <= 0 {
		return nil
	}
	m := uint64(n * bloomBitsPerItem)
	if m < 64 {
		m = 64
	}
	return &bloomFilter{bits: make([]uint64, (m+63)/64), m: m, k: bloomHashes, sized: n}
}

// clone returns a mutable copy sharing nothing with f, so an ingest can
// add the delta keys without touching the filter still being read
// through the published predecessor snapshot. Cloning a nil filter
// yields nil.
func (f *bloomFilter) clone() *bloomFilter {
	if f == nil {
		return nil
	}
	c := *f
	c.bits = append([]uint64(nil), f.bits...)
	return &c
}

// fits reports whether the filter's sizing still covers n items at the
// designed false-positive rate.
func (f *bloomFilter) fits(n int) bool {
	return f != nil && n <= f.sized
}

// hashPair derives the two FNV hashes that seed double hashing
// (Kirsch-Mitzenmacher: index_i = h1 + i*h2 suffices for k functions).
func hashPair(key string) (uint64, uint64) {
	h1 := fnv.New64a()
	h1.Write([]byte(key))
	a := h1.Sum64()
	h2 := fnv.New64()
	h2.Write([]byte(key))
	b := h2.Sum64() | 1 // odd, so it cycles all of m for power-of-two m
	return a, b
}

func (f *bloomFilter) add(key string) {
	if f == nil {
		return
	}
	a, b := hashPair(key)
	for i := 0; i < f.k; i++ {
		idx := (a + uint64(i)*b) % f.m
		f.bits[idx/64] |= 1 << (idx % 64)
	}
	f.items++
}

func (f *bloomFilter) mayContain(key string) bool {
	if f == nil {
		return false
	}
	a, b := hashPair(key)
	for i := 0; i < f.k; i++ {
		idx := (a + uint64(i)*b) % f.m
		if f.bits[idx/64]&(1<<(idx%64)) == 0 {
			return false
		}
	}
	return true
}

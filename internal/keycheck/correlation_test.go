package keycheck

import (
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/factorable/weakkeys/internal/telemetry"
)

// newCorrelatedAPI builds an API whose Service carries the full
// observability wiring: event log, request tracker, metrics.
func newCorrelatedAPI(t *testing.T, limiter *RateLimiter) (*API, *Service, *telemetry.EventLog, *telemetry.RequestTracker) {
	t.Helper()
	events := telemetry.NewEventLog(telemetry.EventConfig{})
	requests := telemetry.NewRequestTracker(32, 8)
	snap := goldenSnapshot(t, 1)
	svc := NewService(snap, Config{CacheSize: -1, Events: events, Requests: requests})
	return NewAPI(svc, limiter, nil), svc, events, requests
}

func doCheck(mux *http.ServeMux, body string, hdr map[string]string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/v1/check", strings.NewReader(body))
	req.RemoteAddr = "192.0.2.1:4242"
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, req)
	return rr
}

// TestRequestIDOnEveryResponse is satellite coverage for the request
// correlation contract: every response — success, malformed, method not
// allowed, rate limited, shedding — carries X-Request-Id, inbound IDs
// are echoed, and error bodies repeat the ID as request_id.
func TestRequestIDOnEveryResponse(t *testing.T) {
	api, svc, events, _ := newCorrelatedAPI(t, nil)
	mux := api.Mux()
	clean := fmt.Sprintf(`{"modulus_hex":"%s"}`, modNc.Text(16))

	// 200: a minted ID appears on the response even with nothing inbound.
	rr := doCheck(mux, clean, nil)
	if rr.Code != http.StatusOK {
		t.Fatalf("check: HTTP %d (%s)", rr.Code, rr.Body)
	}
	minted := rr.Header().Get("X-Request-Id")
	if minted == "" {
		t.Fatal("200 response without X-Request-Id")
	}

	// Inbound X-Request-Id is echoed verbatim.
	rr = doCheck(mux, clean, map[string]string{"X-Request-Id": "caller-7"})
	if got := rr.Header().Get("X-Request-Id"); got != "caller-7" {
		t.Fatalf("echo = %q, want caller-7", got)
	}

	// A traceparent trace-id is adopted when no X-Request-Id is present.
	rr = doCheck(mux, clean, map[string]string{
		"traceparent": "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
	})
	if got := rr.Header().Get("X-Request-Id"); got != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("traceparent adoption = %q", got)
	}

	// 400: header plus request_id in the body plus a warn event.
	rr = doCheck(mux, `{}`, map[string]string{"X-Request-Id": "bad-1"})
	if rr.Code != http.StatusBadRequest {
		t.Fatalf("malformed: HTTP %d", rr.Code)
	}
	if rr.Header().Get("X-Request-Id") != "bad-1" {
		t.Fatal("400 response without echoed X-Request-Id")
	}
	if !strings.Contains(rr.Body.String(), `"request_id":"bad-1"`) {
		t.Fatalf("400 body missing request_id: %s", rr.Body)
	}
	evs := events.EventsFilter(slog.LevelWarn, "bad-1", 0)
	if len(evs) != 1 || evs[0].Msg != "request failed" {
		t.Fatalf("flight recorder for bad-1 = %+v, want one request-failed warn", evs)
	}

	// 405: the wrapper covers non-POST too.
	req := httptest.NewRequest(http.MethodGet, "/v1/check", nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed || rec.Header().Get("X-Request-Id") == "" {
		t.Fatalf("405: HTTP %d, X-Request-Id %q", rec.Code, rec.Header().Get("X-Request-Id"))
	}

	// 503: a draining server still correlates its refusals.
	svc.Drain()
	rr = doCheck(mux, clean, map[string]string{"X-Request-Id": "drained-1"})
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("drain: HTTP %d (%s)", rr.Code, rr.Body)
	}
	if rr.Header().Get("X-Request-Id") != "drained-1" {
		t.Fatal("503 response without echoed X-Request-Id")
	}
	if !strings.Contains(rr.Body.String(), `"request_id":"drained-1"`) {
		t.Fatalf("503 body missing request_id: %s", rr.Body)
	}
	shed := events.EventsFilter(slog.LevelWarn, "drained-1", 0)
	found := false
	for _, ev := range shed {
		if ev.Msg == "check shed" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no check-shed event for drained-1: %+v", shed)
	}
}

// TestRequestIDOnRateLimit: a 429 carries the correlation ID like any
// other refusal.
func TestRequestIDOnRateLimit(t *testing.T) {
	api, _, _, _ := newCorrelatedAPI(t, NewRateLimiter(1, 1))
	mux := api.Mux()
	clean := fmt.Sprintf(`{"modulus_hex":"%s"}`, modNc.Text(16))

	var limited *httptest.ResponseRecorder
	for i := 0; i < 5; i++ {
		r := doCheck(mux, clean, map[string]string{"X-Request-Id": fmt.Sprintf("limit-%d", i)})
		if r.Code == http.StatusTooManyRequests {
			limited = r
			break
		}
	}
	if limited == nil {
		t.Fatal("never rate limited")
	}
	if limited.Header().Get("X-Request-Id") == "" {
		t.Fatal("429 response without X-Request-Id")
	}
	if !strings.Contains(limited.Body.String(), `"request_id":"limit-`) {
		t.Fatalf("429 body missing request_id: %s", limited.Body)
	}
}

// TestCheckEventsAndTracker ties one successful check to its flight-
// recorder events and its request-tracker record.
func TestCheckEventsAndTracker(t *testing.T) {
	api, _, events, requests := newCorrelatedAPI(t, nil)
	mux := api.Mux()

	rr := doCheck(mux, fmt.Sprintf(`{"modulus_hex":"%s"}`, modN1.Text(16)),
		map[string]string{"X-Request-Id": "trace-me"})
	if rr.Code != http.StatusOK {
		t.Fatalf("check: HTTP %d (%s)", rr.Code, rr.Body)
	}

	evs := events.EventsFilter(slog.LevelDebug, "trace-me", 0)
	if len(evs) == 0 {
		t.Fatal("no events correlated to trace-me")
	}
	var served bool
	for _, ev := range evs {
		if ev.Msg == "check served" {
			served = true
			if ev.Attr("verdict") != "factored" {
				t.Errorf("check served verdict = %q, want factored", ev.Attr("verdict"))
			}
		}
	}
	if !served {
		t.Fatalf("no check-served event: %+v", evs)
	}

	st := requests.State()
	if len(st.Recent) != 1 {
		t.Fatalf("tracker recent = %+v, want one record", st.Recent)
	}
	rec := st.Recent[0]
	if rec.Kind != "check" || rec.RequestID != "trace-me" || rec.Outcome != "factored" {
		t.Fatalf("tracker record = %+v", rec)
	}
	if rec.Fields["verdict"] != "factored" {
		t.Fatalf("tracker fields = %+v", rec.Fields)
	}
}

// TestIngestCorrelation: the ingest path starts a tracked request and
// leaves an ingest-report event under the same ID.
func TestIngestCorrelation(t *testing.T) {
	api, _, events, requests := newCorrelatedAPI(t, nil)
	mux := api.Mux()

	w1 := fmt.Sprintf(`{"moduli_hex":["%s"]}`, modNs.Text(16))
	req := httptest.NewRequest(http.MethodPost, "/v1/ingest", strings.NewReader(w1))
	req.RemoteAddr = "192.0.2.7:4242"
	req.Header.Set("X-Request-Id", "ingest-1")
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("ingest: HTTP %d (%s)", rr.Code, rr.Body)
	}
	if rr.Header().Get("X-Request-Id") != "ingest-1" {
		t.Fatal("ingest response without echoed X-Request-Id")
	}

	evs := events.EventsFilter(slog.LevelInfo, "ingest-1", 0)
	var report bool
	for _, ev := range evs {
		if ev.Msg == "ingest report" {
			report = true
		}
	}
	if !report {
		t.Fatalf("no ingest-report event for ingest-1: %+v", evs)
	}

	st := requests.State()
	if len(st.Recent) != 1 || st.Recent[0].Kind != "ingest" || st.Recent[0].RequestID != "ingest-1" {
		t.Fatalf("tracker recent = %+v", st.Recent)
	}
}

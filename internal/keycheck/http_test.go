package keycheck

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/big"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/factorable/weakkeys/internal/telemetry"
)

// newTestAPI serves the golden corpus with a single shard so the
// verdicts' shard field is deterministically 0. Caching is disabled so
// golden bodies never grow a "cached":true field; rate limiting is off
// unless the test passes a limiter.
func newTestAPI(t *testing.T, limiter *RateLimiter, reg *telemetry.Registry) (*API, *Service) {
	t.Helper()
	snap := goldenSnapshot(t, 1)
	svc := NewService(snap, Config{CacheSize: -1, Metrics: reg})
	return NewAPI(svc, limiter, reg), svc
}

func postCheck(mux *http.ServeMux, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/v1/check", strings.NewReader(body))
	req.RemoteAddr = "192.0.2.1:4242"
	// A fixed inbound ID keeps error bodies (which echo it) golden.
	req.Header.Set("X-Request-Id", "golden-test")
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, req)
	return rr
}

// TestGoldenResponses pins the complete JSON bodies of the API's four
// canonical answers: a factored corpus key, a novel key sharing a prime
// with the corpus, a clean key, and a malformed submission.
func TestGoldenResponses(t *testing.T) {
	api, _ := newTestAPI(t, nil, nil)
	mux := api.Mux()

	cases := []struct {
		name     string
		body     string
		wantCode int
		wantBody string
	}{
		{
			name:     "factored corpus key",
			body:     fmt.Sprintf(`{"modulus_hex":"%s"}`, modN1.Text(16)),
			wantCode: http.StatusOK,
			wantBody: `{"status":"factored","known":true,"modulus_bits":128,"shard":0,` +
				`"factor_p_hex":"ba5e34293664b321","factor_q_hex":"cb1a897ef032256b",` +
				`"vendor":"Juniper","attribution":"subject"}`,
		},
		{
			name:     "novel key sharing a factor",
			body:     fmt.Sprintf(`{"modulus_hex":"%s"}`, modNs.Text(16)),
			wantCode: http.StatusOK,
			wantBody: `{"status":"shared_factor","known":false,"modulus_bits":128,"shard":0,` +
				`"factor_p_hex":"a627d0c250f0d6ab","factor_q_hex":"cddf196d1cc15f59",` +
				`"divisor_hex":"cddf196d1cc15f59"}`,
		},
		{
			name:     "clean novel key",
			body:     fmt.Sprintf(`{"modulus_hex":"0x%s"}`, modNc.Text(16)), // 0x prefix accepted
			wantCode: http.StatusOK,
			wantBody: `{"status":"clean","known":false,"modulus_bits":128,"shard":0}`,
		},
		{
			name:     "clean corpus key",
			body:     fmt.Sprintf(`{"modulus_hex":"%s"}`, modN3.Text(16)),
			wantCode: http.StatusOK,
			wantBody: `{"status":"clean","known":true,"modulus_bits":128,"shard":0}`,
		},
		{
			name:     "malformed: empty envelope",
			body:     `{}`,
			wantCode: http.StatusBadRequest,
			wantBody: `{"error":"keycheck: malformed submission: set one of modulus_hex, cert_pem, cert_der","request_id":"golden-test"}`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rr := postCheck(mux, tc.body)
			if rr.Code != tc.wantCode {
				t.Fatalf("HTTP %d, want %d; body %s", rr.Code, tc.wantCode, rr.Body)
			}
			if got := rr.Body.String(); got != tc.wantBody+"\n" {
				t.Errorf("body:\n got %s\nwant %s", got, tc.wantBody)
			}
			if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
				t.Errorf("Content-Type %q", ct)
			}
		})
	}
}

func TestMalformedSubmissions(t *testing.T) {
	api, _ := newTestAPI(t, nil, nil)
	mux := api.Mux()
	for _, body := range []string{
		`{"modulus_hex":"zz"}`,               // not hex
		`{"modulus_hex":""}`,                 // empty
		`{"modulus_hex":"10"}`,               // 5 bits, below MinModulusBits
		`{"modulus_hex":"0de0b6b3a763fffe"}`, // even
		`how do i check my key`,              // not JSON, not PEM
		`{"cert_pem":"-----BEGIN NOTHING-----"}`,
	} {
		rr := postCheck(mux, body)
		if rr.Code != http.StatusBadRequest {
			t.Errorf("body %q: HTTP %d, want 400 (%s)", body, rr.Code, rr.Body)
			continue
		}
		var er errorResponse
		if err := json.Unmarshal(rr.Body.Bytes(), &er); err != nil || !strings.Contains(er.Error, "malformed") {
			t.Errorf("body %q: error response %s", body, rr.Body)
		}
	}
}

// TestPEMSubmission covers the three certificate submission routes: a
// raw PEM body, the cert_pem JSON field, and base64 DER. All must
// resolve to the same factored verdict as the modulus itself.
func TestPEMSubmission(t *testing.T) {
	api, _ := newTestAPI(t, nil, nil)
	mux := api.Mux()
	c := certFor(t, 9, "Juniper", p1, p2)
	var pem bytes.Buffer
	if err := c.EncodePEM(&pem); err != nil {
		t.Fatal(err)
	}
	der, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}

	bodies := map[string]string{
		"raw PEM":  pem.String(),
		"cert_pem": string(mustJSON(t, checkRequest{CertPEM: pem.String()})),
		"cert_der": string(mustJSON(t, checkRequest{CertDER: der})),
	}
	for name, body := range bodies {
		rr := postCheck(mux, body)
		if rr.Code != http.StatusOK {
			t.Errorf("%s: HTTP %d (%s)", name, rr.Code, rr.Body)
			continue
		}
		var v Verdict
		if err := json.Unmarshal(rr.Body.Bytes(), &v); err != nil {
			t.Fatal(err)
		}
		if v.Status != StatusFactored || v.Vendor != "Juniper" {
			t.Errorf("%s: verdict %+v, want factored Juniper", name, v)
		}
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	buf, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

func TestCheckMethodNotAllowed(t *testing.T) {
	api, _ := newTestAPI(t, nil, nil)
	req := httptest.NewRequest(http.MethodGet, "/v1/check", nil)
	rr := httptest.NewRecorder()
	api.Mux().ServeHTTP(rr, req)
	if rr.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/check: HTTP %d, want 405", rr.Code)
	}
}

// TestRateLimiting drives one client past its burst and checks both the
// 429 and that a distinct client (different X-Forwarded-For hop) still
// has its own budget.
func TestRateLimiting(t *testing.T) {
	reg := telemetry.New()
	api, _ := newTestAPI(t, NewRateLimiter(1, 3), reg)
	mux := api.Mux()
	body := fmt.Sprintf(`{"modulus_hex":"%s"}`, modNc.Text(16))

	do := func(client string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/v1/check", strings.NewReader(body))
		req.RemoteAddr = "192.0.2.1:4242"
		req.Header.Set("X-Forwarded-For", client+", 10.0.0.1")
		rr := httptest.NewRecorder()
		mux.ServeHTTP(rr, req)
		return rr
	}

	for i := 0; i < 3; i++ {
		if rr := do("a"); rr.Code != http.StatusOK {
			t.Fatalf("request %d: HTTP %d (%s)", i, rr.Code, rr.Body)
		}
	}
	rr := do("a")
	if rr.Code != http.StatusTooManyRequests {
		t.Fatalf("over burst: HTTP %d, want 429", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if rr := do("b"); rr.Code != http.StatusOK {
		t.Errorf("distinct client limited: HTTP %d", rr.Code)
	}
	if got := reg.CounterValue("keycheck_ratelimited_total"); got != 1 {
		t.Errorf("keycheck_ratelimited_total = %d, want 1", got)
	}
}

func TestStatsEndpoint(t *testing.T) {
	reg := telemetry.New()
	api, svc := newTestAPI(t, NewRateLimiter(100, 100), reg)
	mux := api.Mux()
	postCheck(mux, fmt.Sprintf(`{"modulus_hex":"%s"}`, modN1.Text(16)))

	req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	req.RemoteAddr = "192.0.2.1:4242"
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("HTTP %d", rr.Code)
	}
	var st statsResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Index.Moduli != 3 || st.Index.Factored != 2 {
		t.Errorf("index stats %+v", st.Index)
	}
	if st.TrackedClients != 1 {
		t.Errorf("tracked clients = %d, want 1", st.TrackedClients)
	}

	svc.Publish(goldenSnapshot(t, 1))
	rr = httptest.NewRecorder()
	mux.ServeHTTP(rr, req)
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.SnapshotSwaps != 1 {
		t.Errorf("snapshot swaps = %d, want 1", st.SnapshotSwaps)
	}
}

func TestExemplarsEndpoint(t *testing.T) {
	api, _ := newTestAPI(t, nil, nil)
	mux := api.Mux()
	req := httptest.NewRequest(http.MethodGet, "/v1/exemplars?n=2", nil)
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, req)
	if rr.Code != http.StatusOK {
		t.Fatalf("HTTP %d", rr.Code)
	}
	var ex exemplarsResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &ex); err != nil {
		t.Fatal(err)
	}
	if len(ex.Factored) != 2 || len(ex.Clean) != 1 {
		t.Errorf("exemplars %d/%d, want 2 factored, 1 clean", len(ex.Factored), len(ex.Clean))
	}

	req = httptest.NewRequest(http.MethodGet, "/v1/exemplars?n=0", nil)
	rr = httptest.NewRecorder()
	mux.ServeHTTP(rr, req)
	if rr.Code != http.StatusBadRequest {
		t.Errorf("n=0: HTTP %d, want 400", rr.Code)
	}
}

// TestCachedVerdict: with caching on, a repeat submission answers from
// the LRU and says so on the wire.
func TestCachedVerdict(t *testing.T) {
	reg := telemetry.New()
	snap := goldenSnapshot(t, 1)
	svc := NewService(snap, Config{Metrics: reg})
	mux := NewAPI(svc, nil, reg).Mux()
	body := fmt.Sprintf(`{"modulus_hex":"%s"}`, modN1.Text(16))

	first := postCheck(mux, body)
	second := postCheck(mux, body)
	if strings.Contains(first.Body.String(), `"cached":true`) {
		t.Error("first response claims cached")
	}
	if !strings.Contains(second.Body.String(), `"cached":true`) {
		t.Errorf("repeat response not cached: %s", second.Body)
	}
	if hits := reg.CounterValue("keycheck_cache_hits_total"); hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}
	if got := reg.CounterValue(`keycheck_http_requests_total{code="200"}`); got != 2 {
		t.Errorf(`keycheck_http_requests_total{code="200"} = %d, want 2`, got)
	}
	if got := reg.CounterValue(`keycheck_checks_total{verdict="factored"}`); got != 2 {
		t.Errorf("factored verdict counter = %d, want 2", got)
	}
}

// TestIngestEndpoint drives the live-update path over HTTP: a novel
// weak pair flips from clean to factored without a rebuild, a replay
// counts only duplicates, malformed and oversized requests are
// rejected atomically, and the endpoint can be disabled.
func TestIngestEndpoint(t *testing.T) {
	reg := telemetry.New()
	api, svc := newTestAPI(t, nil, reg)
	mux := api.Mux()

	post := func(body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/v1/ingest", strings.NewReader(body))
		req.RemoteAddr = "192.0.2.7:4242"
		rr := httptest.NewRecorder()
		mux.ServeHTTP(rr, req)
		return rr
	}

	// A fresh weak pair: both still clean before the ingest.
	w1 := new(big.Int).Mul(s4, s5)
	w2 := new(big.Int).Mul(s4, s6)
	if v, _ := svc.Check(context.Background(), w1); v.Status != StatusClean {
		t.Fatalf("pre-ingest w1 = %+v", v)
	}

	rr := post(fmt.Sprintf(`{"moduli_hex":["%s","%s"]}`, w1.Text(16), w2.Text(16)))
	if rr.Code != http.StatusOK {
		t.Fatalf("ingest: %d %s", rr.Code, rr.Body)
	}
	var rep IngestReport
	if err := json.Unmarshal(rr.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.DeltaModuli != 2 || rep.NewFactored != 2 {
		t.Errorf("report %+v, want 2 delta / 2 factored", rep)
	}
	if v, _ := svc.Check(context.Background(), w1); v.Status != StatusFactored || !v.Known {
		t.Errorf("post-ingest w1 = %+v, want factored/known", v)
	}
	if got := reg.CounterValue(`keycheck_ingest_total{outcome="ok"}`); got != 1 {
		t.Errorf(`keycheck_ingest_total{outcome="ok"} = %d`, got)
	}
	if got := reg.CounterValue("keycheck_ingest_factored_total"); got != 2 {
		t.Errorf("keycheck_ingest_factored_total = %d", got)
	}

	// Replaying the same delta: nothing new, no snapshot swap.
	swaps := svc.Index().Swaps()
	rr = post(fmt.Sprintf(`{"moduli_hex":["%s"]}`, w1.Text(16)))
	if rr.Code != http.StatusOK {
		t.Fatalf("replay: %d %s", rr.Code, rr.Body)
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Duplicates != 1 || rep.DeltaModuli != 0 {
		t.Errorf("replay report %+v, want 1 duplicate", rep)
	}
	if svc.Index().Swaps() != swaps {
		t.Error("duplicate-only ingest published a snapshot")
	}

	// A malformed modulus rejects the whole request: nothing applied.
	before := svc.Index().Snapshot()
	rr = post(fmt.Sprintf(`{"moduli_hex":["%s","nothex"]}`, new(big.Int).Mul(s2, s3).Text(16)))
	if rr.Code != http.StatusBadRequest {
		t.Errorf("malformed batch: %d, want 400", rr.Code)
	}
	if svc.Index().Snapshot() != before {
		t.Error("malformed batch partially applied")
	}

	for _, tc := range []struct {
		name, body string
		want       int
	}{
		{"empty list", `{"moduli_hex":[]}`, http.StatusBadRequest},
		{"bad json", `{`, http.StatusBadRequest},
	} {
		if rr := post(tc.body); rr.Code != tc.want {
			t.Errorf("%s: %d, want %d", tc.name, rr.Code, tc.want)
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/v1/ingest", nil)
	rr = httptest.NewRecorder()
	mux.ServeHTTP(rr, req)
	if rr.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET: %d, want 405", rr.Code)
	}

	api.SetAllowIngest(false)
	if rr := post(fmt.Sprintf(`{"moduli_hex":["%s"]}`, w1.Text(16))); rr.Code != http.StatusForbidden {
		t.Errorf("disabled ingest: %d, want 403", rr.Code)
	}
}

package keycheck

import (
	"container/list"
	"sync"
)

// verdictCache is a fixed-capacity LRU over modulus-key → Verdict. The
// serving workload is heavy-tailed — the same embedded device keys are
// checked over and over — so a small cache absorbs most of the GCD
// path. Entries are invalidated wholesale on snapshot swap (the verdict
// may change when new results fold in), and each entry carries the
// generation of the snapshot it was computed against: a check that
// straddles a swap would otherwise insert its stale verdict after the
// purge, where it could be served until the next swap.
type verdictCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List
	items map[string]*list.Element
}

type cacheEntry struct {
	key string
	gen uint64
	v   Verdict
}

// newVerdictCache returns a cache holding up to max verdicts; max <= 0
// returns nil, and a nil cache never hits.
func newVerdictCache(max int) *verdictCache {
	if max <= 0 {
		return nil
	}
	return &verdictCache{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the cached verdict for key, provided it was computed
// against snapshot generation wantGen. A generation mismatch — an entry
// raced in around a swap — evicts the entry and misses.
func (c *verdictCache) get(key string, wantGen uint64) (Verdict, bool) {
	if c == nil {
		return Verdict{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return Verdict{}, false
	}
	e := el.Value.(*cacheEntry)
	if e.gen != wantGen {
		c.ll.Remove(el)
		delete(c.items, key)
		return Verdict{}, false
	}
	c.ll.MoveToFront(el)
	return e.v, true
}

// put caches v as computed against snapshot generation gen.
func (c *verdictCache) put(key string, gen uint64, v Verdict) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*cacheEntry)
		e.gen, e.v = gen, v
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, gen: gen, v: v})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

func (c *verdictCache) purge() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.items)
}

func (c *verdictCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

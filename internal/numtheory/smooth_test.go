package numtheory

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestSmoothPart(t *testing.T) {
	cases := []struct {
		n, smooth, cofactor int64
	}{
		{360, 360, 1},   // 2^3*3^2*5 fully smooth
		{7919, 1, 7919}, // prime beyond first 100? 7919 is the 1000th prime
		{2 * 2 * 7919, 4, 7919},
		{1, 1, 1},
	}
	for _, c := range cases {
		s, cf := SmoothPart(big.NewInt(c.n), 100)
		if s.Int64() != c.smooth || cf.Int64() != c.cofactor {
			t.Errorf("SmoothPart(%d) = (%v,%v), want (%d,%d)", c.n, s, cf, c.smooth, c.cofactor)
		}
	}
}

func TestSmoothPartInvariant(t *testing.T) {
	// smooth * cofactor == n, and cofactor has no factor among the sieve.
	f := func(v uint32) bool {
		n := big.NewInt(int64(v) + 2)
		s, cf := SmoothPart(n, 50)
		prod := new(big.Int).Mul(s, cf)
		if prod.Cmp(n) != 0 {
			return false
		}
		var m, q big.Int
		for _, p := range FirstPrimes(50) {
			if cf.Cmp(big.NewInt(1)) != 0 && m.Mod(cf, q.SetUint64(p)).Sign() == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSmoothBits(t *testing.T) {
	if got := SmoothBits(big.NewInt(1024), 10); got != 11 {
		t.Errorf("SmoothBits(1024) = %d, want 11", got)
	}
	if got := SmoothBits(big.NewInt(7919), 100); got != 1 {
		t.Errorf("SmoothBits(7919) = %d, want 1", got)
	}
}

func TestGCD(t *testing.T) {
	a, b := big.NewInt(3*5*7), big.NewInt(5*7*11)
	if got := GCD(a, b); got.Int64() != 35 {
		t.Errorf("GCD = %v, want 35", got)
	}
	if a.Int64() != 105 || b.Int64() != 385 {
		t.Error("GCD mutated arguments")
	}
}

func TestIsWellFormedModulus(t *testing.T) {
	r := testRand(21)
	p, _ := GenPrimeNaive(r, 64)
	q, _ := GenPrimeNaive(r, 64)
	n := new(big.Int).Mul(p, q)
	if !IsWellFormedModulus(n, 128, 256) {
		t.Errorf("genuine modulus rejected: %v", n)
	}
	// Flip one low bit: with overwhelming probability the result picks up
	// small factors or goes even.
	flipped := new(big.Int).Xor(n, big.NewInt(1)) // now even
	if IsWellFormedModulus(flipped, 128, 256) {
		t.Error("even number accepted as modulus")
	}
	if IsWellFormedModulus(p, 64, 256) {
		t.Error("prime accepted as modulus")
	}
	if IsWellFormedModulus(n, 120, 256) {
		t.Error("wrong-bit-length modulus accepted")
	}
	if IsWellFormedModulus(big.NewInt(-15), 4, 10) {
		t.Error("negative accepted")
	}
	// Divisible by 3.
	m3 := new(big.Int).Lsh(big.NewInt(3), 125)
	m3.Add(m3, big.NewInt(3))
	if IsWellFormedModulus(m3, m3.BitLen(), 256) {
		t.Error("multiple of 3 accepted")
	}
}

func TestModInverse(t *testing.T) {
	inv := ModInverse(big.NewInt(3), big.NewInt(11))
	if inv.Int64() != 4 {
		t.Errorf("3^-1 mod 11 = %v, want 4", inv)
	}
	if ModInverse(big.NewInt(4), big.NewInt(8)) != nil {
		t.Error("non-coprime inverse should be nil")
	}
}

package numtheory

import (
	"errors"
	"io"
	"math/big"
)

// ErrEntropy is returned when the supplied entropy source fails or is
// exhausted before a prime could be generated.
var ErrEntropy = errors.New("numtheory: entropy source failed")

var (
	one = big.NewInt(1)
	two = big.NewInt(2)
)

// IsProbablePrime reports whether n is prime with error probability at most
// 4^-rounds, using math/big's Miller-Rabin implementation (which also runs
// a Baillie-PSW-style Lucas test). Negative numbers, zero and one are
// never prime.
func IsProbablePrime(n *big.Int, rounds int) bool {
	if n.Sign() <= 0 {
		return false
	}
	return n.ProbablyPrime(rounds)
}

// NextPrime returns the smallest probable prime >= n. It scans odd
// candidates; for cryptographic sizes the prime gap makes this fast. The
// argument is not modified.
func NextPrime(n *big.Int) *big.Int {
	c := new(big.Int).Set(n)
	if c.Cmp(two) <= 0 {
		return big.NewInt(2)
	}
	if c.Bit(0) == 0 {
		c.Add(c, one)
	}
	for !c.ProbablyPrime(20) {
		c.Add(c, two)
	}
	return c
}

// RandomOdd reads bits/8 bytes from r and returns an odd integer of exactly
// the requested bit length (top two bits forced to 1, as RSA prime
// generation conventionally does so the product of two primes has full
// length).
func RandomOdd(r io.Reader, bits int) (*big.Int, error) {
	if bits < 16 {
		return nil, errors.New("numtheory: bit length too small")
	}
	buf := make([]byte, (bits+7)/8)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, ErrEntropy
	}
	excess := len(buf)*8 - bits
	buf[0] &= 0xFF >> uint(excess)
	buf[0] |= 0xC0 >> uint(excess)
	buf[len(buf)-1] |= 1
	return new(big.Int).SetBytes(buf), nil
}

// OpenSSLSievePrimes is the number of small primes OpenSSL's prime
// generator trial-divides against, and therefore the number the paper's
// implementation fingerprint checks (Section 3.3.4).
const OpenSSLSievePrimes = 2048

// trialDivisionPrimes is the sieve depth used purely as a speed
// optimization by the "naive" generator. It is deliberately much smaller
// than OpenSSLSievePrimes so naive primes keep the unconstrained p-1
// distribution the paper relies on (only ~7.5% satisfy the OpenSSL
// property by chance).
const trialDivisionPrimes = 256

// genPrimeSieved is the incremental prime search shared by both generator
// flavours. It draws a random odd starting point, caches its residues
// modulo the first sievePrimes primes, and scans candidates start+delta
// (delta even) rejecting any divisible by a sieve prime. When excludeOne
// is set it additionally rejects candidates congruent to 1 modulo any odd
// sieve prime — this is exactly OpenSSL's probable_prime loop and is what
// makes p-1 free of small odd prime factors.
func genPrimeSieved(r io.Reader, bits, sievePrimes int, excludeOne bool) (*big.Int, error) {
	primes := FirstPrimes(sievePrimes)
	rems := make([]uint64, len(primes))
	var m big.Int
	for draws := 0; draws < 1000; draws++ {
		start, err := RandomOdd(r, bits)
		if err != nil {
			return nil, err
		}
		for i, q := range primes {
			rems[i] = m.Mod(start, m.SetUint64(q)).Uint64()
		}
		// Bound the scan so one unlucky start cannot push the candidate
		// past the requested bit length or skew the distribution too far.
		const maxDelta = 1 << 16
	scan:
		for delta := uint64(0); delta < maxDelta; delta += 2 {
			for i, q := range primes {
				rem := (rems[i] + delta) % q
				if rem == 0 {
					continue scan
				}
				if excludeOne && rem == 1 && q != 2 {
					continue scan
				}
			}
			cand := new(big.Int).Add(start, m.SetUint64(delta))
			if cand.BitLen() != bits {
				break // wrapped past the top; redraw
			}
			if cand.ProbablyPrime(20) {
				return cand, nil
			}
		}
	}
	return nil, errors.New("numtheory: prime generation exhausted redraw budget")
}

// GenPrimeNaive generates a probable prime of the given bit length from r
// with no constraint on the factorization of p-1. This models the prime
// generation used by non-OpenSSL embedded implementations in the paper:
// only ~7.5% of primes produced this way satisfy the OpenSSL p-1 property
// by chance (Mironov's estimate quoted in Section 3.3.4).
func GenPrimeNaive(r io.Reader, bits int) (*big.Int, error) {
	return genPrimeSieved(r, bits, trialDivisionPrimes, false)
}

// GenPrimeOpenSSL generates a probable prime of the given bit length whose
// p-1 is not divisible by any odd prime among the first OpenSSLSievePrimes
// primes — the distinctive OpenSSL behaviour observed by Mironov. The
// returned primes always satisfy SatisfiesOpenSSLProperty.
func GenPrimeOpenSSL(r io.Reader, bits int) (*big.Int, error) {
	return genPrimeSieved(r, bits, OpenSSLSievePrimes, true)
}

// SatisfiesOpenSSLProperty reports whether the prime p could have been
// produced by OpenSSL's generator: p-1 has no odd prime factor among the
// first OpenSSLSievePrimes primes. This is the per-prime test behind the
// paper's Table 5 classification.
func SatisfiesOpenSSLProperty(p *big.Int) bool {
	pm1 := new(big.Int).Sub(p, one)
	var m big.Int
	for _, q := range FirstPrimes(OpenSSLSievePrimes)[1:] {
		if m.Mod(pm1, m.SetUint64(q)).Sign() == 0 {
			return false
		}
	}
	return true
}

// GenSafePrime generates a probable safe prime (p where (p-1)/2 is also
// prime). Safe primes trivially satisfy the OpenSSL property, which is why
// the paper checks that no vulnerable implementation produced exclusively
// safe primes before trusting the fingerprint.
func GenSafePrime(r io.Reader, bits int) (*big.Int, error) {
	for attempts := 0; attempts < 200000; attempts++ {
		q, err := GenPrimeNaive(r, bits-1)
		if err != nil {
			return nil, err
		}
		p := new(big.Int).Lsh(q, 1)
		p.Add(p, one)
		if p.BitLen() == bits && p.ProbablyPrime(20) {
			return p, nil
		}
	}
	return nil, errors.New("numtheory: failed to generate safe prime")
}

// IsSafePrime reports whether p and (p-1)/2 are both probable primes.
func IsSafePrime(p *big.Int) bool {
	if !p.ProbablyPrime(20) {
		return false
	}
	q := new(big.Int).Sub(p, one)
	q.Rsh(q, 1)
	return q.ProbablyPrime(20)
}

package numtheory

import "math/big"

// SmoothPart returns the largest divisor of n composed entirely of primes
// among the first nPrimes primes, together with the remaining cofactor.
// n must be positive. The bit-error classifier uses this: one or more bit
// flips in a valid RSA modulus yield an essentially random integer, which
// is expected to carry many small prime factors, whereas a well-formed
// modulus p*q has none.
func SmoothPart(n *big.Int, nPrimes int) (smooth, cofactor *big.Int) {
	smooth = big.NewInt(1)
	cofactor = new(big.Int).Set(n)
	var q, m big.Int
	for _, p := range FirstPrimes(nPrimes) {
		q.SetUint64(p)
		for {
			var rem big.Int
			m.QuoRem(cofactor, &q, &rem)
			if rem.Sign() != 0 {
				break
			}
			cofactor.Set(&m)
			smooth.Mul(smooth, &q)
		}
	}
	return smooth, cofactor
}

// SmoothBits returns the bit length of the smooth part of n with respect to
// the first nPrimes primes; a cheap scalar summary used by classifiers.
func SmoothBits(n *big.Int, nPrimes int) int {
	s, _ := SmoothPart(n, nPrimes)
	return s.BitLen()
}

// GCD returns gcd(a, b) as a fresh big.Int; arguments are not modified.
func GCD(a, b *big.Int) *big.Int {
	return new(big.Int).GCD(nil, nil, a, b)
}

// IsWellFormedModulus reports whether n plausibly is an RSA modulus of the
// given bit length: correct size, odd, not prime, and with no prime factor
// among the first sievePrimes primes. The paper found 107 of 313,330
// vulnerable moduli failed this test, almost all due to transmission or
// storage bit errors.
func IsWellFormedModulus(n *big.Int, bits, sievePrimes int) bool {
	if n.Sign() <= 0 || n.Bit(0) == 0 {
		return false
	}
	if n.BitLen() != bits {
		return false
	}
	var m, q big.Int
	for _, p := range FirstPrimes(sievePrimes) {
		if m.Mod(n, q.SetUint64(p)).Sign() == 0 {
			return false
		}
	}
	return !n.ProbablyPrime(8)
}

// ModInverse returns a^-1 mod m, or nil if a and m are not coprime.
func ModInverse(a, m *big.Int) *big.Int {
	return new(big.Int).ModInverse(a, m)
}

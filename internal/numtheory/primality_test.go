package numtheory

import (
	"bytes"
	"math/big"
	"math/rand"
	"testing"
)

// testRand returns a deterministic entropy source for reproducible tests.
func testRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func TestIsProbablePrime(t *testing.T) {
	cases := []struct {
		v    int64
		want bool
	}{
		{-7, false}, {0, false}, {1, false}, {2, true}, {3, true},
		{4, false}, {17, true}, {561, false} /* Carmichael */, {7919, true},
	}
	for _, c := range cases {
		if got := IsProbablePrime(big.NewInt(c.v), 20); got != c.want {
			t.Errorf("IsProbablePrime(%d) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestNextPrime(t *testing.T) {
	cases := []struct{ in, want int64 }{
		{0, 2}, {2, 2}, {3, 3}, {4, 5}, {14, 17}, {90, 97}, {7907, 7907},
	}
	for _, c := range cases {
		if got := NextPrime(big.NewInt(c.in)); got.Int64() != c.want {
			t.Errorf("NextPrime(%d) = %v, want %d", c.in, got, c.want)
		}
	}
}

func TestNextPrimeDoesNotMutate(t *testing.T) {
	n := big.NewInt(10)
	NextPrime(n)
	if n.Int64() != 10 {
		t.Error("NextPrime mutated its argument")
	}
}

func TestRandomOdd(t *testing.T) {
	r := testRand(42)
	for _, bits := range []int{16, 64, 128, 512, 513} {
		v, err := RandomOdd(r, bits)
		if err != nil {
			t.Fatalf("RandomOdd(%d): %v", bits, err)
		}
		if v.BitLen() != bits {
			t.Errorf("RandomOdd(%d) has bit length %d", bits, v.BitLen())
		}
		if v.Bit(0) != 1 {
			t.Errorf("RandomOdd(%d) is even", bits)
		}
		if v.Bit(bits-2) != 1 {
			t.Errorf("RandomOdd(%d) second-highest bit not set", bits)
		}
	}
}

func TestRandomOddRejectsTinyBits(t *testing.T) {
	if _, err := RandomOdd(testRand(1), 8); err == nil {
		t.Error("expected error for 8-bit request")
	}
}

func TestRandomOddEntropyFailure(t *testing.T) {
	if _, err := RandomOdd(bytes.NewReader(nil), 64); err != ErrEntropy {
		t.Errorf("got %v, want ErrEntropy", err)
	}
}

func TestGenPrimeNaive(t *testing.T) {
	r := testRand(7)
	for i := 0; i < 4; i++ {
		p, err := GenPrimeNaive(r, 128)
		if err != nil {
			t.Fatal(err)
		}
		if p.BitLen() != 128 {
			t.Errorf("prime bit length %d, want 128", p.BitLen())
		}
		if !p.ProbablyPrime(30) {
			t.Errorf("GenPrimeNaive produced composite %v", p)
		}
	}
}

func TestGenPrimeNaiveDeterministicGivenEntropy(t *testing.T) {
	p1, err := GenPrimeNaive(testRand(99), 128)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := GenPrimeNaive(testRand(99), 128)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Cmp(p2) != 0 {
		t.Error("same entropy stream produced different primes — the shared-prime vulnerability model depends on this determinism")
	}
}

func TestGenPrimeOpenSSLSatisfiesProperty(t *testing.T) {
	r := testRand(3)
	for i := 0; i < 3; i++ {
		p, err := GenPrimeOpenSSL(r, 128)
		if err != nil {
			t.Fatal(err)
		}
		if !p.ProbablyPrime(30) {
			t.Fatalf("composite from GenPrimeOpenSSL: %v", p)
		}
		if !SatisfiesOpenSSLProperty(p) {
			t.Errorf("OpenSSL-style prime %v fails the OpenSSL property", p)
		}
	}
}

func TestNaivePrimesMostlyFailOpenSSLProperty(t *testing.T) {
	// Mironov's estimate: ~7.5% of unconstrained primes satisfy the
	// property. With 40 samples the chance all satisfy it is ~0; we just
	// assert a strict majority fails.
	r := testRand(11)
	fail := 0
	const n = 40
	for i := 0; i < n; i++ {
		p, err := GenPrimeNaive(r, 128)
		if err != nil {
			t.Fatal(err)
		}
		if !SatisfiesOpenSSLProperty(p) {
			fail++
		}
	}
	if fail < n*3/4 {
		t.Errorf("only %d/%d naive primes fail the OpenSSL property; expected a large majority", fail, n)
	}
}

func TestSatisfiesOpenSSLPropertyKnownValues(t *testing.T) {
	// p = 23: p-1 = 22 = 2*11, 11 is a small odd prime -> fails.
	if SatisfiesOpenSSLProperty(big.NewInt(23)) {
		t.Error("23 should fail the property (22 = 2*11)")
	}
	// A safe prime far beyond the sieve range: p-1 = 2q with q prime and
	// huge, so no small odd factor. Construct via GenSafePrime.
	p, err := GenSafePrime(testRand(5), 64)
	if err != nil {
		t.Fatal(err)
	}
	if !SatisfiesOpenSSLProperty(p) {
		t.Errorf("safe prime %v should satisfy the property", p)
	}
}

func TestGenSafePrime(t *testing.T) {
	p, err := GenSafePrime(testRand(8), 48)
	if err != nil {
		t.Fatal(err)
	}
	if p.BitLen() != 48 {
		t.Errorf("bit length %d, want 48", p.BitLen())
	}
	if !IsSafePrime(p) {
		t.Errorf("%v is not a safe prime", p)
	}
}

func TestIsSafePrime(t *testing.T) {
	// 23 is safe (11 prime); 13 is not (6 composite).
	if !IsSafePrime(big.NewInt(23)) {
		t.Error("23 is a safe prime")
	}
	if IsSafePrime(big.NewInt(13)) {
		t.Error("13 is not a safe prime")
	}
	if IsSafePrime(big.NewInt(24)) {
		t.Error("24 is not prime at all")
	}
}

func TestGenPrimeEntropyFailurePropagates(t *testing.T) {
	if _, err := GenPrimeNaive(bytes.NewReader(nil), 64); err == nil {
		t.Error("expected entropy error")
	}
	if _, err := GenPrimeOpenSSL(bytes.NewReader(nil), 64); err == nil {
		t.Error("expected entropy error")
	}
}

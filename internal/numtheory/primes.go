// Package numtheory provides the elementary number-theoretic building
// blocks used throughout the weak-key study: small-prime sieves,
// probabilistic primality testing, modular arithmetic helpers, and
// smooth-part extraction.
//
// The package intentionally works with math/big so the same routines serve
// both the key-generation substrate (internal/weakrsa) and the factoring
// core (internal/batchgcd). Everything here is deterministic given its
// inputs; randomized routines take an explicit io.Reader entropy source.
package numtheory

import (
	"math/big"
	"sort"
)

// SmallPrimes returns the first n primes, computed with an Eratosthenes
// sieve. The result is freshly allocated on every call; callers that need
// the list repeatedly should cache it (see FirstPrimes for the shared
// cached variant).
func SmallPrimes(n int) []uint64 {
	if n <= 0 {
		return nil
	}
	// Upper bound for the nth prime: n(ln n + ln ln n) for n >= 6.
	limit := uint64(16)
	if n >= 6 {
		fn := float64(n)
		limit = uint64(fn*(ln(fn)+ln(ln(fn)))) + 8
	}
	for {
		primes := sieve(limit)
		if len(primes) >= n {
			return primes[:n:n]
		}
		limit *= 2
	}
}

// ln is a tiny natural-log approximation sufficient for sieve sizing; it
// avoids importing math for a single call site and never needs to be
// precise (an overestimate merely sieves slightly further).
func ln(x float64) float64 {
	// Use the identity ln(x) = 2*atanh((x-1)/(x+1)) via its series.
	// Range-reduce by powers of 2: ln(x) = k*ln2 + ln(m), m in [1,2).
	const ln2 = 0.6931471805599453
	k := 0.0
	for x >= 2 {
		x /= 2
		k++
	}
	for x < 1 {
		x *= 2
		k--
	}
	y := (x - 1) / (x + 1)
	y2 := y * y
	term := y
	sum := 0.0
	for i := 1; i < 40; i += 2 {
		sum += term / float64(i)
		term *= y2
	}
	return k*ln2 + 2*sum
}

// sieve returns all primes <= limit.
func sieve(limit uint64) []uint64 {
	if limit < 2 {
		return nil
	}
	composite := make([]bool, limit+1)
	var primes []uint64
	for p := uint64(2); p <= limit; p++ {
		if composite[p] {
			continue
		}
		primes = append(primes, p)
		for m := p * p; m <= limit; m += p {
			composite[m] = true
		}
	}
	return primes
}

// firstPrimesCache holds the largest prime list computed so far by
// FirstPrimes. Access is unsynchronized-by-copy: the slice header is
// replaced atomically enough for our single-initialization usage pattern;
// concurrent callers may redundantly recompute but never observe a torn
// slice because slices are only ever grown and reassigned whole.
var firstPrimesCache []uint64

// FirstPrimes returns the first n primes from a shared cache. The returned
// slice MUST NOT be modified. It is the list OpenSSL-style prime generation
// sieves against (the paper's fingerprint uses the first 2048 primes).
func FirstPrimes(n int) []uint64 {
	c := firstPrimesCache
	if len(c) < n {
		c = SmallPrimes(n)
		firstPrimesCache = c
	}
	return c[:n]
}

// IsSmallPrime reports whether v appears in the first n primes. The lookup
// is a binary search over the shared cache.
func IsSmallPrime(v uint64, n int) bool {
	primes := FirstPrimes(n)
	i := sort.Search(len(primes), func(i int) bool { return primes[i] >= v })
	return i < len(primes) && primes[i] == v
}

// PrimeProduct returns the product of the first n primes as a big.Int.
// It is used by smooth-part extraction (Bernstein's algorithm) and by the
// bit-error classifier.
func PrimeProduct(n int) *big.Int {
	primes := FirstPrimes(n)
	leaves := make([]*big.Int, len(primes))
	for i, p := range primes {
		leaves[i] = new(big.Int).SetUint64(p)
	}
	return TreeProduct(leaves)
}

// TreeProduct multiplies the given values with a balanced binary product
// tree, which is asymptotically faster than a linear fold when the operands
// grow large. Inputs are not modified. An empty input yields 1.
func TreeProduct(vals []*big.Int) *big.Int {
	switch len(vals) {
	case 0:
		return big.NewInt(1)
	case 1:
		return new(big.Int).Set(vals[0])
	}
	cur := make([]*big.Int, len(vals))
	copy(cur, vals)
	for len(cur) > 1 {
		out := make([]*big.Int, 0, (len(cur)+1)/2)
		for i := 0; i+1 < len(cur); i += 2 {
			out = append(out, new(big.Int).Mul(cur[i], cur[i+1]))
		}
		if len(cur)%2 == 1 {
			out = append(out, cur[len(cur)-1])
		}
		cur = out
	}
	return cur[0]
}

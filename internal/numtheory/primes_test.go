package numtheory

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSmallPrimesPrefix(t *testing.T) {
	want := []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47}
	got := SmallPrimes(len(want))
	if len(got) != len(want) {
		t.Fatalf("SmallPrimes(%d) returned %d primes", len(want), len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("prime[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSmallPrimesCounts(t *testing.T) {
	for _, n := range []int{1, 2, 10, 100, 1000, 2048} {
		got := SmallPrimes(n)
		if len(got) != n {
			t.Errorf("SmallPrimes(%d) returned %d primes", n, len(got))
		}
	}
	if SmallPrimes(0) != nil {
		t.Error("SmallPrimes(0) should be nil")
	}
	if SmallPrimes(-3) != nil {
		t.Error("SmallPrimes(-3) should be nil")
	}
}

func TestSmallPrimes2048th(t *testing.T) {
	// The 2048th prime is 17863; the paper's OpenSSL fingerprint sieves
	// exactly this far.
	primes := SmallPrimes(2048)
	if got := primes[2047]; got != 17863 {
		t.Errorf("2048th prime = %d, want 17863", got)
	}
}

func TestSmallPrimesAllPrime(t *testing.T) {
	for _, p := range SmallPrimes(500) {
		if !new(big.Int).SetUint64(p).ProbablyPrime(20) {
			t.Errorf("sieve produced composite %d", p)
		}
	}
}

func TestFirstPrimesCaching(t *testing.T) {
	a := FirstPrimes(100)
	b := FirstPrimes(50)
	if len(a) != 100 || len(b) != 50 {
		t.Fatalf("lengths: %d, %d", len(a), len(b))
	}
	for i := range b {
		if a[i] != b[i] {
			t.Fatalf("cache inconsistency at %d", i)
		}
	}
}

func TestIsSmallPrime(t *testing.T) {
	cases := []struct {
		v    uint64
		want bool
	}{
		{2, true}, {3, true}, {4, false}, {17863, true}, {17862, false},
		{1, false}, {0, false}, {541, true},
	}
	for _, c := range cases {
		if got := IsSmallPrime(c.v, 2048); got != c.want {
			t.Errorf("IsSmallPrime(%d) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestPrimeProduct(t *testing.T) {
	// 2*3*5*7*11 = 2310
	if got := PrimeProduct(5); got.Cmp(big.NewInt(2310)) != 0 {
		t.Errorf("PrimeProduct(5) = %v, want 2310", got)
	}
	if got := PrimeProduct(0); got.Cmp(big.NewInt(1)) != 0 {
		t.Errorf("PrimeProduct(0) = %v, want 1", got)
	}
}

func TestTreeProduct(t *testing.T) {
	cases := []struct {
		in   []int64
		want int64
	}{
		{nil, 1},
		{[]int64{7}, 7},
		{[]int64{2, 3}, 6},
		{[]int64{2, 3, 5}, 30},
		{[]int64{1, 2, 3, 4, 5, 6, 7}, 5040},
	}
	for _, c := range cases {
		vals := make([]*big.Int, len(c.in))
		for i, v := range c.in {
			vals[i] = big.NewInt(v)
		}
		if got := TreeProduct(vals); got.Cmp(big.NewInt(c.want)) != 0 {
			t.Errorf("TreeProduct(%v) = %v, want %d", c.in, got, c.want)
		}
	}
}

func TestTreeProductDoesNotMutateInputs(t *testing.T) {
	vals := []*big.Int{big.NewInt(3), big.NewInt(5), big.NewInt(7)}
	TreeProduct(vals)
	if vals[0].Int64() != 3 || vals[1].Int64() != 5 || vals[2].Int64() != 7 {
		t.Error("TreeProduct mutated its inputs")
	}
}

func TestTreeProductMatchesLinearFold(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(n uint8) bool {
		count := int(n%50) + 1
		vals := make([]*big.Int, count)
		linear := big.NewInt(1)
		for i := range vals {
			vals[i] = new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), 64))
			vals[i].Add(vals[i], big.NewInt(1))
			linear.Mul(linear, vals[i])
		}
		return TreeProduct(vals).Cmp(linear) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestLnApproximation(t *testing.T) {
	// ln only sizes the sieve; it needs to be within a few percent.
	cases := []struct{ x, want float64 }{
		{2.718281828, 1.0}, {10, 2.302585}, {1000, 6.907755}, {0.5, -0.693147},
	}
	for _, c := range cases {
		got := ln(c.x)
		if diff := got - c.want; diff > 0.01 || diff < -0.01 {
			t.Errorf("ln(%g) = %g, want ~%g", c.x, got, c.want)
		}
	}
}

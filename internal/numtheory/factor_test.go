package numtheory

import (
	"math/big"
	"testing"
	"testing/quick"
	"time"
)

func TestSmallFactors(t *testing.T) {
	// 360 = 2^3 * 3^2 * 5
	factors, cofactor := SmallFactors(big.NewInt(360), 100)
	want := []PrimePower{{2, 3}, {3, 2}, {5, 1}}
	if len(factors) != len(want) {
		t.Fatalf("factors: %v", factors)
	}
	for i, w := range want {
		if factors[i] != w {
			t.Errorf("factor %d = %v, want %v", i, factors[i], w)
		}
	}
	if cofactor.Int64() != 1 {
		t.Errorf("cofactor = %v", cofactor)
	}
	// 2 * 7919 with only the first 100 primes sieved: 7919 survives.
	factors, cofactor = SmallFactors(big.NewInt(2*7919), 100)
	if len(factors) != 1 || factors[0] != (PrimePower{2, 1}) || cofactor.Int64() != 7919 {
		t.Errorf("got %v, %v", factors, cofactor)
	}
}

func TestPollardRhoFindsFactors(t *testing.T) {
	cases := []struct {
		a, b int64
	}{
		{10007, 10009},
		{104729, 1299709},
		{7919, 7919}, // square
	}
	for _, c := range cases {
		n := new(big.Int).Mul(big.NewInt(c.a), big.NewInt(c.b))
		d := PollardRho(n, 1_000_000)
		if d == nil {
			t.Errorf("rho failed on %d*%d", c.a, c.b)
			continue
		}
		var rem big.Int
		if rem.Mod(n, d).Sign() != 0 {
			t.Errorf("rho returned a non-divisor %v of %v", d, n)
		}
		if d.Cmp(big.NewInt(1)) == 0 || d.Cmp(n) == 0 {
			t.Errorf("rho returned trivial divisor %v", d)
		}
	}
}

func TestPollardRhoRefusesPrimesAndTrivial(t *testing.T) {
	if PollardRho(big.NewInt(104729), 10000) != nil {
		t.Error("rho should return nil on a prime")
	}
	if PollardRho(big.NewInt(1), 10000) != nil {
		t.Error("rho should return nil on 1")
	}
	if PollardRho(big.NewInt(-15), 10000) != nil {
		t.Error("rho should return nil on negatives")
	}
	if d := PollardRho(big.NewInt(2*104729), 10000); d == nil || d.Int64() != 2 {
		t.Errorf("even composite should yield 2, got %v", d)
	}
}

// fermatSteps computes the exact budget FermatFactor needs for n = p*q:
// the ascent runs from ceil(sqrt(n)) to (p+q)/2 inclusive.
func fermatSteps(p, q *big.Int) int {
	n := new(big.Int).Mul(p, q)
	a0 := new(big.Int).Sqrt(n)
	if new(big.Int).Mul(a0, a0).Cmp(n) < 0 {
		a0.Add(a0, big.NewInt(1))
	}
	mid := new(big.Int).Add(p, q)
	mid.Rsh(mid, 1)
	return int(new(big.Int).Sub(mid, a0).Int64()) + 1
}

func TestFermatFactorClosePrimes(t *testing.T) {
	p, err := GenPrimeNaive(testRand(41), 64)
	if err != nil {
		t.Fatal(err)
	}
	q := NextPrime(new(big.Int).Add(p, big.NewInt(2)))
	n := new(big.Int).Mul(p, q)
	fp, fq := FermatFactor(n, 64)
	if fp == nil {
		t.Fatalf("Fermat failed on adjacent primes %v * %v", p, q)
	}
	if fp.Cmp(p) != 0 || fq.Cmp(q) != 0 {
		t.Errorf("Fermat split %v, %v, want %v, %v", fp, fq, p, q)
	}
}

// TestFermatFactorBudgetBoundary pins the budget semantics: a prime pair
// whose ascent needs exactly k steps splits with maxSteps = k and must
// not split with k-1.
func TestFermatFactorBudgetBoundary(t *testing.T) {
	p, err := GenPrimeNaive(testRand(42), 64)
	if err != nil {
		t.Fatal(err)
	}
	// A mate far enough above p that the ascent takes a multi-step budget
	// (~(q-p)²/(8·sqrt(n)) ≈ 2^74/2^67 ≈ 100 steps) but is still
	// comfortably Fermat-weak.
	q := NextPrime(new(big.Int).Add(p, new(big.Int).Lsh(big.NewInt(1), 37)))
	n := new(big.Int).Mul(p, q)
	need := fermatSteps(p, q)
	if need < 2 {
		t.Fatalf("degenerate case: pair needs only %d step(s)", need)
	}
	fp, fq := FermatFactor(n, need)
	if fp == nil || fp.Cmp(p) != 0 || fq.Cmp(q) != 0 {
		t.Fatalf("budget %d: got %v, %v, want %v, %v", need, fp, fq, p, q)
	}
	if fp, _ := FermatFactor(n, need-1); fp != nil {
		t.Errorf("budget %d (one short) still split: %v", need-1, fp)
	}
}

func TestFermatFactorRefusesNonCandidates(t *testing.T) {
	prime, err := GenPrimeNaive(testRand(43), 64)
	if err != nil {
		t.Fatal(err)
	}
	for name, n := range map[string]*big.Int{
		"prime":    prime,
		"one":      big.NewInt(1),
		"zero":     big.NewInt(0),
		"negative": big.NewInt(-21),
		"even":     big.NewInt(1 << 20),
	} {
		if p, q := FermatFactor(n, 1000); p != nil || q != nil {
			t.Errorf("%s: FermatFactor(%v) = %v, %v, want nil", name, n, p, q)
		}
	}
	// A prime square is the step-0 fixed point.
	sq := new(big.Int).Mul(prime, prime)
	p, q := FermatFactor(sq, 1)
	if p == nil || p.Cmp(prime) != 0 || q.Cmp(prime) != 0 {
		t.Errorf("square: got %v, %v, want %v twice", p, q, prime)
	}
}

// TestPollardRhoBudgetExhaustionReturns pins the not-weak path: far-apart
// balanced 96-bit primes exhaust a small step budget and rho must return
// nil promptly instead of hanging (the online check path depends on it).
func TestPollardRhoBudgetExhaustionReturns(t *testing.T) {
	p, err := GenPrimeNaive(testRand(44), 96)
	if err != nil {
		t.Fatal(err)
	}
	q, err := GenPrimeNaive(testRand(45), 96)
	if err != nil {
		t.Fatal(err)
	}
	n := new(big.Int).Mul(p, q)
	done := make(chan *big.Int, 1)
	go func() { done <- PollardRho(n, 512) }()
	select {
	case d := <-done:
		if d != nil {
			t.Errorf("512-step rho factored a 192-bit semiprime: %v", d)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("rho did not return after budget exhaustion")
	}
}

func TestFactorCompletely(t *testing.T) {
	// 2^2 * 3 * 10007 * 10009
	n := big.NewInt(4 * 3)
	n.Mul(n, big.NewInt(10007))
	n.Mul(n, big.NewInt(10009))
	primes, incomplete := FactorCompletely(n, 256, 1_000_000)
	if len(incomplete) != 0 {
		t.Fatalf("incomplete: %v", incomplete)
	}
	prod := big.NewInt(1)
	for _, p := range primes {
		if !p.ProbablyPrime(20) {
			t.Errorf("non-prime factor %v", p)
		}
		prod.Mul(prod, p)
	}
	if prod.Cmp(n) != 0 {
		t.Errorf("product %v != %v", prod, n)
	}
	// Sorted ascending.
	for i := 1; i < len(primes); i++ {
		if primes[i].Cmp(primes[i-1]) < 0 {
			t.Error("factors not sorted")
		}
	}
}

func TestFactorCompletelyProperty(t *testing.T) {
	f := func(raw uint32) bool {
		n := big.NewInt(int64(raw)%100000 + 2)
		primes, incomplete := FactorCompletely(n, 256, 200000)
		prod := big.NewInt(1)
		for _, p := range primes {
			prod.Mul(prod, p)
		}
		for _, c := range incomplete {
			prod.Mul(prod, c)
		}
		return prod.Cmp(n) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFactorCompletelyIncompleteBudget(t *testing.T) {
	// Two 96-bit primes: rho with a tiny budget cannot split the
	// product, so it lands in incomplete.
	p, err := GenPrimeNaive(testRand(31), 96)
	if err != nil {
		t.Fatal(err)
	}
	q, err := GenPrimeNaive(testRand(32), 96)
	if err != nil {
		t.Fatal(err)
	}
	n := new(big.Int).Mul(p, q)
	primes, incomplete := FactorCompletely(n, 64, 10)
	if len(incomplete) != 1 || incomplete[0].Cmp(n) != 0 {
		t.Errorf("expected the whole modulus to resist: primes=%v incomplete=%v", primes, incomplete)
	}
}

package numtheory

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestSmallFactors(t *testing.T) {
	// 360 = 2^3 * 3^2 * 5
	factors, cofactor := SmallFactors(big.NewInt(360), 100)
	want := []PrimePower{{2, 3}, {3, 2}, {5, 1}}
	if len(factors) != len(want) {
		t.Fatalf("factors: %v", factors)
	}
	for i, w := range want {
		if factors[i] != w {
			t.Errorf("factor %d = %v, want %v", i, factors[i], w)
		}
	}
	if cofactor.Int64() != 1 {
		t.Errorf("cofactor = %v", cofactor)
	}
	// 2 * 7919 with only the first 100 primes sieved: 7919 survives.
	factors, cofactor = SmallFactors(big.NewInt(2*7919), 100)
	if len(factors) != 1 || factors[0] != (PrimePower{2, 1}) || cofactor.Int64() != 7919 {
		t.Errorf("got %v, %v", factors, cofactor)
	}
}

func TestPollardRhoFindsFactors(t *testing.T) {
	cases := []struct {
		a, b int64
	}{
		{10007, 10009},
		{104729, 1299709},
		{7919, 7919}, // square
	}
	for _, c := range cases {
		n := new(big.Int).Mul(big.NewInt(c.a), big.NewInt(c.b))
		d := PollardRho(n, 1_000_000)
		if d == nil {
			t.Errorf("rho failed on %d*%d", c.a, c.b)
			continue
		}
		var rem big.Int
		if rem.Mod(n, d).Sign() != 0 {
			t.Errorf("rho returned a non-divisor %v of %v", d, n)
		}
		if d.Cmp(big.NewInt(1)) == 0 || d.Cmp(n) == 0 {
			t.Errorf("rho returned trivial divisor %v", d)
		}
	}
}

func TestPollardRhoRefusesPrimesAndTrivial(t *testing.T) {
	if PollardRho(big.NewInt(104729), 10000) != nil {
		t.Error("rho should return nil on a prime")
	}
	if PollardRho(big.NewInt(1), 10000) != nil {
		t.Error("rho should return nil on 1")
	}
	if PollardRho(big.NewInt(-15), 10000) != nil {
		t.Error("rho should return nil on negatives")
	}
	if d := PollardRho(big.NewInt(2*104729), 10000); d == nil || d.Int64() != 2 {
		t.Errorf("even composite should yield 2, got %v", d)
	}
}

func TestFactorCompletely(t *testing.T) {
	// 2^2 * 3 * 10007 * 10009
	n := big.NewInt(4 * 3)
	n.Mul(n, big.NewInt(10007))
	n.Mul(n, big.NewInt(10009))
	primes, incomplete := FactorCompletely(n, 256, 1_000_000)
	if len(incomplete) != 0 {
		t.Fatalf("incomplete: %v", incomplete)
	}
	prod := big.NewInt(1)
	for _, p := range primes {
		if !p.ProbablyPrime(20) {
			t.Errorf("non-prime factor %v", p)
		}
		prod.Mul(prod, p)
	}
	if prod.Cmp(n) != 0 {
		t.Errorf("product %v != %v", prod, n)
	}
	// Sorted ascending.
	for i := 1; i < len(primes); i++ {
		if primes[i].Cmp(primes[i-1]) < 0 {
			t.Error("factors not sorted")
		}
	}
}

func TestFactorCompletelyProperty(t *testing.T) {
	f := func(raw uint32) bool {
		n := big.NewInt(int64(raw)%100000 + 2)
		primes, incomplete := FactorCompletely(n, 256, 200000)
		prod := big.NewInt(1)
		for _, p := range primes {
			prod.Mul(prod, p)
		}
		for _, c := range incomplete {
			prod.Mul(prod, c)
		}
		return prod.Cmp(n) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFactorCompletelyIncompleteBudget(t *testing.T) {
	// Two 96-bit primes: rho with a tiny budget cannot split the
	// product, so it lands in incomplete.
	p, err := GenPrimeNaive(testRand(31), 96)
	if err != nil {
		t.Fatal(err)
	}
	q, err := GenPrimeNaive(testRand(32), 96)
	if err != nil {
		t.Fatal(err)
	}
	n := new(big.Int).Mul(p, q)
	primes, incomplete := FactorCompletely(n, 64, 10)
	if len(incomplete) != 1 || incomplete[0].Cmp(n) != 0 {
		t.Errorf("expected the whole modulus to resist: primes=%v incomplete=%v", primes, incomplete)
	}
}

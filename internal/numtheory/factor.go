package numtheory

import "math/big"

// SmallFactors returns the prime factorization of n restricted to primes
// among the first nPrimes primes, as (prime, exponent) pairs in
// ascending order, plus the remaining cofactor. The bit-error analysis
// uses this to show corrupted moduli carrying "divisors that are the
// product of many small prime factors" (Section 3.3.5).
func SmallFactors(n *big.Int, nPrimes int) (factors []PrimePower, cofactor *big.Int) {
	cofactor = new(big.Int).Set(n)
	var q, m, rem big.Int
	for _, p := range FirstPrimes(nPrimes) {
		q.SetUint64(p)
		exp := 0
		for {
			m.QuoRem(cofactor, &q, &rem)
			if rem.Sign() != 0 {
				break
			}
			cofactor.Set(&m)
			exp++
		}
		if exp > 0 {
			factors = append(factors, PrimePower{Prime: p, Exp: exp})
		}
	}
	return factors, cofactor
}

// PrimePower is one (prime, exponent) term of a factorization.
type PrimePower struct {
	Prime uint64
	Exp   int
}

// PollardRho attempts to find one nontrivial factor of the composite n
// using Pollard's rho with Brent's cycle detection, bounded by maxSteps
// iterations. It returns nil if no factor was found within the budget or
// n is prime/1. Deterministic given n (the polynomial constant is swept).
//
// Rho complements the batch GCD in the bit-error forensics: a corrupted
// modulus is an essentially random integer, so its small and medium
// factors fall to trial division and rho even though it shares no prime
// with any other key.
func PollardRho(n *big.Int, maxSteps int) *big.Int {
	if n.Sign() <= 0 || n.Cmp(one) == 0 || n.ProbablyPrime(12) {
		return nil
	}
	if n.Bit(0) == 0 {
		return big.NewInt(2)
	}
	for c := int64(1); c <= 8; c++ {
		if d := rhoBrent(n, c, maxSteps); d != nil {
			return d
		}
	}
	return nil
}

// rhoBrent is one rho run with f(x) = x² + c mod n and batched GCDs.
func rhoBrent(n *big.Int, c int64, maxSteps int) *big.Int {
	x := big.NewInt(2)
	y := new(big.Int).Set(x)
	cc := big.NewInt(c)
	d := new(big.Int)
	prod := big.NewInt(1)
	var diff big.Int

	step := func(v *big.Int) {
		v.Mul(v, v)
		v.Add(v, cc)
		v.Mod(v, n)
	}

	const batch = 64
	for steps := 0; steps < maxSteps; {
		// Advance the fast pointer two steps per slow step, batching
		// |x-y| products to amortize the gcd.
		prod.SetInt64(1)
		for i := 0; i < batch && steps < maxSteps; i++ {
			step(x)
			step(y)
			step(y)
			diff.Sub(x, y)
			if diff.Sign() == 0 {
				// Cycle without a factor for this c.
				return nil
			}
			prod.Mul(prod, &diff)
			prod.Mod(prod, n)
			steps++
		}
		d.GCD(nil, nil, prod, n)
		if d.Cmp(one) != 0 && d.Cmp(n) != 0 {
			return new(big.Int).Set(d)
		}
		if d.Cmp(n) == 0 {
			// Overshot: a factor divided the batch product; retry this c
			// step-by-step would be ideal, but sweeping c is simpler and
			// the callers only need best-effort factors.
			return nil
		}
	}
	return nil
}

// FermatFactor attempts to factor n = p*q with close primes by Fermat's
// method: ascend a from ceil(sqrt(n)) and test whether a² - n is a
// perfect square b²; if so, n = (a-b)(a+b). The budget is the number of
// candidate a values tried (so step 0 tests ceil(sqrt(n)) itself, and a
// pair whose midpoint is k above the root needs a budget of k+1). It
// returns nil, nil when no split lands within the budget or n is even,
// a square, prime, or < 2.
//
// Primes drawn too close together — the "When RSA Fails" prime-selection
// flaw where q is the next prime after p, or p and q share high bits —
// fall in a handful of steps: the required ascent is ~(p-q)²/(8·sqrt(n)),
// so any |p-q| below roughly n^(1/4) is within reach of a tiny budget
// while honestly independent primes sit ~sqrt(n)/2 away.
func FermatFactor(n *big.Int, maxSteps int) (p, q *big.Int) {
	if n.Sign() <= 0 || n.BitLen() < 2 || n.Bit(0) == 0 || n.ProbablyPrime(12) {
		return nil, nil
	}
	a := new(big.Int).Sqrt(n)
	aa := new(big.Int).Mul(a, a)
	if aa.Cmp(n) < 0 {
		a.Add(a, one)
	}
	// b2 = a² - n, updated incrementally: stepping a to a+1 adds 2a+1.
	b2 := new(big.Int).Mul(a, a)
	b2.Sub(b2, n)
	b := new(big.Int)
	bb := new(big.Int)
	step := new(big.Int)
	for i := 0; i < maxSteps; i++ {
		b.Sqrt(b2)
		bb.Mul(b, b)
		if bb.Cmp(b2) == 0 {
			p = new(big.Int).Sub(a, b)
			q = new(big.Int).Add(a, b)
			if p.Cmp(one) <= 0 {
				// n itself is the degenerate 1·n split (n a square of
				// nothing useful, or a=(n+1)/2 reached for tiny n).
				return nil, nil
			}
			return p, q
		}
		step.Lsh(a, 1)
		step.Add(step, one)
		b2.Add(b2, step)
		a.Add(a, one)
	}
	return nil, nil
}

// FactorCompletely factors n into probable primes using trial division by
// the first nPrimes primes followed by recursive Pollard rho, each rho
// call bounded by rhoSteps. Factors that resist the budget are returned
// in incomplete. Results are sorted ascending.
func FactorCompletely(n *big.Int, nPrimes, rhoSteps int) (primes []*big.Int, incomplete []*big.Int) {
	small, cofactor := SmallFactors(n, nPrimes)
	for _, pp := range small {
		for i := 0; i < pp.Exp; i++ {
			primes = append(primes, new(big.Int).SetUint64(pp.Prime))
		}
	}
	var rec func(m *big.Int)
	rec = func(m *big.Int) {
		if m.Cmp(one) == 0 {
			return
		}
		if m.ProbablyPrime(12) {
			primes = append(primes, new(big.Int).Set(m))
			return
		}
		d := PollardRho(m, rhoSteps)
		if d == nil {
			incomplete = append(incomplete, new(big.Int).Set(m))
			return
		}
		rec(d)
		rec(new(big.Int).Quo(m, d))
	}
	rec(cofactor)
	sortBig(primes)
	sortBig(incomplete)
	return primes, incomplete
}

func sortBig(xs []*big.Int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j].Cmp(xs[j-1]) < 0; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Package prodtree implements product trees and remainder trees over
// math/big integers, the two primitives behind Bernstein's quasilinear
// batch GCD algorithm ("How to find smooth parts of integers").
//
// A product tree stores, level by level, the pairwise products of its
// inputs up to the single root product. A remainder tree then pushes a
// value (typically the root product) back down the tree, reducing modulo
// each node, so that the value modulo every individual leaf is obtained in
// quasilinear total time instead of n independent divisions by a huge
// number.
//
// The paper scaled this computation to 81 million moduli by splitting the
// input into k subsets (see internal/distgcd); this package provides the
// within-subset trees.
package prodtree

import (
	"context"
	"errors"
	"fmt"
	"math/big"

	"github.com/factorable/weakkeys/internal/kernel"
)

// Tree is a product tree. Levels[0] is the input leaves; each higher level
// halves the node count (odd nodes are carried up unchanged); the last
// level holds a single root equal to the product of all leaves.
type Tree struct {
	Levels [][]*big.Int
}

// ErrEmpty is returned when a tree is requested over no inputs.
var ErrEmpty = errors.New("prodtree: no inputs")

// New builds the product tree of vals. The leaf slice is copied (shallow:
// the *big.Int leaves are aliased, never written). Each level's
// independent multiplications are scheduled on the shared
// internal/kernel worker pool, mirroring the threaded arithmetic of the
// original factorable.net implementation without spawning goroutines
// per call.
func New(vals []*big.Int) (*Tree, error) {
	return NewCtx(context.Background(), vals)
}

// NewCtx is New with cancellation, checked per scheduled work chunk: a
// cancelled build returns — with an error wrapping the context's —
// without waiting for the current level to finish. At the paper's scale
// a single upper level is minutes of work, and sub-level checks are
// what let an operator abort an 81M-moduli run without waiting for the
// central product.
func NewCtx(ctx context.Context, vals []*big.Int) (*Tree, error) {
	if len(vals) == 0 {
		return nil, ErrEmpty
	}
	eng := kernel.FromContext(ctx)
	leaves := make([]*big.Int, len(vals))
	copy(leaves, vals)
	t := &Tree{Levels: [][]*big.Int{leaves}}
	for cur := leaves; len(cur) > 1; {
		next := make([]*big.Int, (len(cur)+1)/2)
		err := eng.Run(ctx, len(cur)/2, func(i int, _ *kernel.Arena) {
			next[i] = new(big.Int).Mul(cur[2*i], cur[2*i+1])
		})
		if err != nil {
			return nil, fmt.Errorf("prodtree: build cancelled at level %d: %w", len(t.Levels), err)
		}
		if len(cur)%2 == 1 {
			next[len(next)-1] = cur[len(cur)-1]
		}
		t.Levels = append(t.Levels, next)
		cur = next
	}
	return t, nil
}

// Extend returns the product tree over t's leaves followed by newLeaves,
// reusing every node of t whose subtree is unaffected by the extension.
// Only the right spine — the nodes whose subtree gained at least one new
// leaf — is recomputed; at each level the unchanged prefix is shared with
// t by reference. This is the incremental-ingest primitive: folding a
// monthly delta into an existing corpus product costs O(log n) spine
// multiplications plus a tree over the delta, instead of rebuilding the
// whole tree from scratch.
//
// t is never modified; a nil or empty t builds a fresh tree. The shared
// nodes make the returned tree an overlay over t: both trees stay valid,
// and neither may have its node values mutated.
func Extend(t *Tree, newLeaves []*big.Int) (*Tree, error) {
	return ExtendCtx(context.Background(), t, newLeaves)
}

// ExtendCtx is Extend with cancellation, checked per scheduled work
// chunk like NewCtx.
func ExtendCtx(ctx context.Context, t *Tree, newLeaves []*big.Int) (*Tree, error) {
	if t == nil || len(t.Levels) == 0 || len(t.Levels[0]) == 0 {
		return NewCtx(ctx, newLeaves)
	}
	if len(newLeaves) == 0 {
		return t, nil
	}
	eng := kernel.FromContext(ctx)
	old := t.Levels[0]
	leaves := make([]*big.Int, 0, len(old)+len(newLeaves))
	leaves = append(append(leaves, old...), newLeaves...)
	nt := &Tree{Levels: [][]*big.Int{leaves}}
	// shared is the length of the prefix of the current level that is
	// identical to t's same level: parents of fully-old pairs stay valid,
	// so the prefix halves per level while everything to its right — the
	// spine absorbing the new leaves — is recomputed.
	shared := len(old)
	for cur := leaves; len(cur) > 1; {
		shared /= 2
		lvl := len(nt.Levels)
		if lvl >= len(t.Levels) {
			shared = 0
		}
		next := make([]*big.Int, (len(cur)+1)/2)
		if shared > 0 {
			copy(next[:shared], t.Levels[lvl][:shared])
		}
		err := eng.Run(ctx, len(next)-shared, func(i int, _ *kernel.Arena) {
			j := shared + i
			if 2*j+1 < len(cur) {
				next[j] = new(big.Int).Mul(cur[2*j], cur[2*j+1])
			} else {
				next[j] = cur[2*j]
			}
		})
		if err != nil {
			return nil, fmt.Errorf("prodtree: extend cancelled at level %d: %w", len(nt.Levels), err)
		}
		nt.Levels = append(nt.Levels, next)
		cur = next
	}
	return nt, nil
}

// Nodes returns the total node count across all levels (leaves included).
func (t *Tree) Nodes() int {
	if t == nil {
		return 0
	}
	n := 0
	for _, level := range t.Levels {
		n += len(level)
	}
	return n
}

// SharedNodes counts the nodes of b that are shared with a by reference
// (same *big.Int), level-aligned from the leaves up. It quantifies the
// structural sharing Extend achieves: an unchanged subtree contributes
// all of its nodes, a rebuilt spine none.
func SharedNodes(a, b *Tree) int {
	if a == nil || b == nil {
		return 0
	}
	shared := 0
	for lvl := 0; lvl < len(a.Levels) && lvl < len(b.Levels); lvl++ {
		av, bv := a.Levels[lvl], b.Levels[lvl]
		for i := 0; i < len(av) && i < len(bv); i++ {
			if av[i] == bv[i] {
				shared++
			}
		}
	}
	return shared
}

// Root returns the product of all leaves. The returned value is shared
// with the tree and must not be modified.
func (t *Tree) Root() *big.Int {
	top := t.Levels[len(t.Levels)-1]
	return top[0]
}

// Leaves returns the leaf level. Shared storage; do not modify.
func (t *Tree) Leaves() []*big.Int {
	return t.Levels[0]
}

// Bytes returns the approximate memory footprint of all node values in
// bytes. The paper reports 70-100 GB per node at the 81M-moduli scale; the
// benchmark harness uses this to reproduce the memory column of that
// comparison at simulation scale.
func (t *Tree) Bytes() int64 {
	var total int64
	for _, level := range t.Levels {
		for _, v := range level {
			total += int64(len(v.Bits())) * int64(wordBytes)
		}
	}
	return total
}

const wordBytes = 32 << (^big.Word(0) >> 63) / 8 // 4 or 8

// RemainderTree pushes x down the product tree: it returns x mod leaf for
// every leaf, computed with one reduction per tree node. x is not
// modified.
//
// This is the plain variant (reduce modulo N). Batch GCD needs the
// squared variant (see RemainderTreeSquared) to recover gcd(N, P/N);
// the plain variant is used by the smooth-part computation and tests.
func (t *Tree) RemainderTree(x *big.Int) []*big.Int {
	rems, _ := t.remainderTree(context.Background(), x, false)
	return rems
}

// RemainderTreeSquared returns x mod leaf² for every leaf. Bernstein's
// batch GCD trick: computing P mod Ni² and then gcd(Ni, (P mod Ni²)/Ni)
// finds the common factor of Ni with the rest of the batch without ever
// forming the exact cofactor P/Ni.
func (t *Tree) RemainderTreeSquared(x *big.Int) []*big.Int {
	rems, _ := t.remainderTree(context.Background(), x, true)
	return rems
}

// RemainderTreeCtx is RemainderTree with cancellation, checked between
// tree levels like NewCtx.
func (t *Tree) RemainderTreeCtx(ctx context.Context, x *big.Int) ([]*big.Int, error) {
	return t.remainderTree(ctx, x, false)
}

// RemainderTreeSquaredCtx is RemainderTreeSquared with cancellation,
// checked between tree levels like NewCtx.
func (t *Tree) RemainderTreeSquaredCtx(ctx context.Context, x *big.Int) ([]*big.Int, error) {
	return t.remainderTree(ctx, x, true)
}

func (t *Tree) remainderTree(ctx context.Context, x *big.Int, squared bool) ([]*big.Int, error) {
	eng := kernel.FromContext(ctx)
	cur := []*big.Int{x}
	top := len(t.Levels) - 1
	if squared && top >= 1 {
		// The first descent step would reduce x mod root². For the
		// canonical batch-GCD call x IS the root product, so x < root²
		// and the reduction is a no-op — yet forming root² is a
		// full-width squaring of the largest number in the tree. Skip
		// the level whenever x < root² is certain from bit lengths
		// alone: bitlen(x) <= 2*bitlen(root)-2 implies
		// x < 2^(2b-2) <= root².
		root := t.Levels[top][0]
		if x.BitLen() <= 2*root.BitLen()-2 {
			top--
		}
	}
	for lvl := top; lvl >= 0; lvl-- {
		nodes := t.Levels[lvl]
		next := make([]*big.Int, len(nodes))
		err := eng.Run(ctx, len(nodes), func(i int, a *kernel.Arena) {
			// An odd trailing node was carried up unchanged, so the parent
			// may literally be the same value; reduce anyway (cheap) to
			// keep the control flow uniform.
			parent := cur[i/2]
			mod := nodes[i]
			if squared {
				sq := a.Get()
				sq.Mul(nodes[i], nodes[i])
				mod = sq
			}
			next[i] = new(big.Int).Mod(parent, mod)
		})
		if err != nil {
			return nil, fmt.Errorf("prodtree: remainder tree cancelled at level %d: %w", lvl, err)
		}
		cur = next
	}
	return cur, nil
}

// Product is a convenience wrapper: the product of vals via a tree.
func Product(vals []*big.Int) (*big.Int, error) {
	t, err := New(vals)
	if err != nil {
		return nil, err
	}
	return t.Root(), nil
}

// RemaindersMod computes x mod m for every m in mods using a freshly built
// product tree of mods. It is the one-shot form of New + RemainderTree.
func RemaindersMod(x *big.Int, mods []*big.Int) ([]*big.Int, error) {
	t, err := New(mods)
	if err != nil {
		return nil, err
	}
	return t.RemainderTree(x), nil
}

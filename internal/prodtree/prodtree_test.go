package prodtree

import (
	"context"
	"errors"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/factorable/weakkeys/internal/kernel"
)

func randInts(seed int64, n, bits int) []*big.Int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*big.Int, n)
	max := new(big.Int).Lsh(big.NewInt(1), uint(bits))
	for i := range out {
		out[i] = new(big.Int).Rand(rng, max)
		out[i].Add(out[i], big.NewInt(2)) // avoid 0 and 1
	}
	return out
}

func TestNewEmpty(t *testing.T) {
	if _, err := New(nil); err != ErrEmpty {
		t.Errorf("got %v, want ErrEmpty", err)
	}
}

func TestSingleLeaf(t *testing.T) {
	tr, err := New([]*big.Int{big.NewInt(42)})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Root().Int64() != 42 {
		t.Errorf("root = %v, want 42", tr.Root())
	}
	if len(tr.Levels) != 1 {
		t.Errorf("levels = %d, want 1", len(tr.Levels))
	}
	rems := tr.RemainderTree(big.NewInt(100))
	if len(rems) != 1 || rems[0].Int64() != 100%42 {
		t.Errorf("remainders = %v", rems)
	}
}

func TestRootMatchesLinearProduct(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 33, 100} {
		vals := randInts(int64(n), n, 64)
		tr, err := New(vals)
		if err != nil {
			t.Fatal(err)
		}
		want := big.NewInt(1)
		for _, v := range vals {
			want.Mul(want, v)
		}
		if tr.Root().Cmp(want) != 0 {
			t.Errorf("n=%d: root mismatch", n)
		}
	}
}

func TestLevelStructure(t *testing.T) {
	vals := randInts(9, 9, 32)
	tr, _ := New(vals)
	wantSizes := []int{9, 5, 3, 2, 1}
	if len(tr.Levels) != len(wantSizes) {
		t.Fatalf("levels = %d, want %d", len(tr.Levels), len(wantSizes))
	}
	for i, w := range wantSizes {
		if len(tr.Levels[i]) != w {
			t.Errorf("level %d has %d nodes, want %d", i, len(tr.Levels[i]), w)
		}
	}
	// Every parent is the product of its children (or a carried odd node).
	for lvl := 0; lvl+1 < len(tr.Levels); lvl++ {
		cur, up := tr.Levels[lvl], tr.Levels[lvl+1]
		for i := 0; i+1 < len(cur); i += 2 {
			prod := new(big.Int).Mul(cur[i], cur[i+1])
			if prod.Cmp(up[i/2]) != 0 {
				t.Errorf("level %d parent %d is not the product of its children", lvl, i/2)
			}
		}
		if len(cur)%2 == 1 && up[len(up)-1].Cmp(cur[len(cur)-1]) != 0 {
			t.Errorf("level %d odd node not carried up", lvl)
		}
	}
}

func TestRemainderTreeMatchesDirectMod(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 17, 50} {
		vals := randInts(int64(100+n), n, 48)
		tr, _ := New(vals)
		x := new(big.Int).Lsh(big.NewInt(0xDEADBEEF), 300)
		x.Add(x, big.NewInt(12345))
		rems := tr.RemainderTree(x)
		for i, v := range vals {
			want := new(big.Int).Mod(x, v)
			if rems[i].Cmp(want) != 0 {
				t.Errorf("n=%d leaf %d: got %v want %v", n, i, rems[i], want)
			}
		}
	}
}

func TestRemainderTreeSquaredMatchesDirectMod(t *testing.T) {
	for _, n := range []int{1, 2, 5, 16, 31} {
		vals := randInts(int64(200+n), n, 48)
		tr, _ := New(vals)
		x := tr.Root() // the batch-GCD usage: reduce the full product
		rems := tr.RemainderTreeSquared(x)
		for i, v := range vals {
			sq := new(big.Int).Mul(v, v)
			want := new(big.Int).Mod(x, sq)
			if rems[i].Cmp(want) != 0 {
				t.Errorf("n=%d leaf %d: squared remainder mismatch", n, i)
			}
		}
	}
}

func TestRemainderTreeDoesNotMutateInput(t *testing.T) {
	vals := randInts(5, 5, 32)
	tr, _ := New(vals)
	x := big.NewInt(1 << 40)
	want := new(big.Int).Set(x)
	tr.RemainderTree(x)
	tr.RemainderTreeSquared(x)
	if x.Cmp(want) != 0 {
		t.Error("remainder tree mutated x")
	}
	for i, v := range randInts(5, 5, 32) {
		if vals[i].Cmp(v) != 0 {
			t.Error("remainder tree mutated a leaf")
		}
	}
}

func TestBytesPositive(t *testing.T) {
	tr, _ := New(randInts(1, 64, 512))
	if tr.Bytes() <= 0 {
		t.Error("Bytes() should be positive")
	}
	// Root alone is ~64*512 bits = 4096 bytes; the whole tree must exceed it.
	if tr.Bytes() < 4096 {
		t.Errorf("Bytes() = %d, implausibly small", tr.Bytes())
	}
}

func TestProductHelper(t *testing.T) {
	p, err := Product([]*big.Int{big.NewInt(6), big.NewInt(7)})
	if err != nil || p.Int64() != 42 {
		t.Errorf("Product = %v, %v", p, err)
	}
	if _, err := Product(nil); err != ErrEmpty {
		t.Errorf("Product(nil) err = %v", err)
	}
}

func TestRemaindersModHelper(t *testing.T) {
	mods := []*big.Int{big.NewInt(3), big.NewInt(5), big.NewInt(7)}
	rems, err := RemaindersMod(big.NewInt(23), mods)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{2, 3, 2}
	for i, w := range want {
		if rems[i].Int64() != w {
			t.Errorf("23 mod %v = %v, want %d", mods[i], rems[i], w)
		}
	}
	if _, err := RemaindersMod(big.NewInt(1), nil); err != ErrEmpty {
		t.Error("expected ErrEmpty")
	}
}

func TestPropertyRootDivisibleByEveryLeaf(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%30) + 1
		vals := randInts(seed, n, 40)
		tr, err := New(vals)
		if err != nil {
			return false
		}
		var m big.Int
		for _, v := range vals {
			if m.Mod(tr.Root(), v).Sign() != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPooledTreeBuild(t *testing.T) {
	// Force the pooled path even on single-core machines by pinning a
	// wide engine on the context.
	eng := kernel.New(4)
	defer eng.Close()
	ctx := kernel.With(context.Background(), eng)
	vals := randInts(77, 257, 64)
	tr, err := NewCtx(ctx, vals)
	if err != nil {
		t.Fatal(err)
	}
	want := big.NewInt(1)
	for _, v := range vals {
		want.Mul(want, v)
	}
	if tr.Root().Cmp(want) != 0 {
		t.Error("parallel tree build produced a wrong product")
	}
	if len(tr.Leaves()) != len(vals) {
		t.Errorf("Leaves() = %d", len(tr.Leaves()))
	}
}

// TestExtendMatchesFullBuild grows trees leaf-batch by leaf-batch and
// checks every level against a from-scratch build over the same leaves.
func TestExtendMatchesFullBuild(t *testing.T) {
	for _, tc := range []struct{ old, add int }{
		{1, 1}, {1, 7}, {2, 2}, {3, 1}, {4, 4}, {5, 3}, {5, 8},
		{7, 1}, {16, 16}, {17, 5}, {33, 9}, {100, 5}, {100, 100},
	} {
		vals := randInts(int64(tc.old*1000+tc.add), tc.old+tc.add, 64)
		base, err := New(vals[:tc.old])
		if err != nil {
			t.Fatal(err)
		}
		ext, err := Extend(base, vals[tc.old:])
		if err != nil {
			t.Fatal(err)
		}
		full, err := New(vals)
		if err != nil {
			t.Fatal(err)
		}
		if len(ext.Levels) != len(full.Levels) {
			t.Fatalf("old=%d add=%d: extend has %d levels, full %d", tc.old, tc.add, len(ext.Levels), len(full.Levels))
		}
		for lvl := range full.Levels {
			if len(ext.Levels[lvl]) != len(full.Levels[lvl]) {
				t.Fatalf("old=%d add=%d level %d: %d nodes, want %d",
					tc.old, tc.add, lvl, len(ext.Levels[lvl]), len(full.Levels[lvl]))
			}
			for i := range full.Levels[lvl] {
				if ext.Levels[lvl][i].Cmp(full.Levels[lvl][i]) != 0 {
					t.Fatalf("old=%d add=%d: node (%d,%d) differs from full build", tc.old, tc.add, lvl, i)
				}
			}
		}
	}
}

// TestExtendSharesStructure asserts Extend reuses the unaffected left
// part of the base tree by reference and never mutates the base.
func TestExtendSharesStructure(t *testing.T) {
	vals := randInts(42, 64+8, 64)
	base, err := New(vals[:64])
	if err != nil {
		t.Fatal(err)
	}
	baseRoot := new(big.Int).Set(base.Root())
	ext, err := Extend(base, vals[64:])
	if err != nil {
		t.Fatal(err)
	}
	// 64 old leaves, 8 new: shared prefix halves per level
	// (64, 32, 16, 8, 4, 2, 1, then the old tree is exhausted).
	wantShared := 64 + 32 + 16 + 8 + 4 + 2 + 1
	if got := SharedNodes(base, ext); got != wantShared {
		t.Errorf("SharedNodes = %d, want %d", got, wantShared)
	}
	if ext.Nodes() <= wantShared {
		t.Errorf("Nodes() = %d, must exceed the shared count", ext.Nodes())
	}
	if base.Root().Cmp(baseRoot) != 0 {
		t.Error("Extend mutated the base tree's root")
	}
	if len(base.Leaves()) != 64 {
		t.Errorf("base leaves grew to %d", len(base.Leaves()))
	}
}

func TestExtendEdgeCases(t *testing.T) {
	vals := randInts(7, 6, 64)
	base, err := New(vals[:3])
	if err != nil {
		t.Fatal(err)
	}
	// Empty extension returns the base unchanged.
	same, err := Extend(base, nil)
	if err != nil || same != base {
		t.Errorf("Extend(base, nil) = %v, %v; want the base tree itself", same, err)
	}
	// Nil base is a fresh build.
	fresh, err := Extend(nil, vals[3:])
	if err != nil {
		t.Fatal(err)
	}
	full, _ := New(vals[3:])
	if fresh.Root().Cmp(full.Root()) != 0 {
		t.Error("Extend(nil, leaves) root differs from New")
	}
	// Nil base and no leaves is the usual empty error.
	if _, err := Extend(nil, nil); err != ErrEmpty {
		t.Errorf("Extend(nil, nil) err = %v, want ErrEmpty", err)
	}
}

func TestExtendCtxCancelled(t *testing.T) {
	base, err := New(randInts(9, 32, 64))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ExtendCtx(ctx, base, randInts(10, 8, 64)); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExtendCtx err = %v, want wrapped context.Canceled", err)
	}
}

func TestNewCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewCtx(ctx, randInts(1, 64, 64)); !errors.Is(err, context.Canceled) {
		t.Fatalf("NewCtx err = %v, want wrapped context.Canceled", err)
	}
	// The uncancelled path matches New.
	vals := randInts(2, 33, 64)
	a, err := NewCtx(context.Background(), vals)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(vals)
	if err != nil {
		t.Fatal(err)
	}
	if a.Root().Cmp(b.Root()) != 0 {
		t.Error("NewCtx root differs from New root")
	}
}

func TestRemainderTreeCtxCancelled(t *testing.T) {
	vals := randInts(3, 32, 64)
	tr, err := New(vals)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := tr.RemainderTreeCtx(ctx, tr.Root()); !errors.Is(err, context.Canceled) {
		t.Fatalf("RemainderTreeCtx err = %v, want wrapped context.Canceled", err)
	}
	if _, err := tr.RemainderTreeSquaredCtx(ctx, tr.Root()); !errors.Is(err, context.Canceled) {
		t.Fatalf("RemainderTreeSquaredCtx err = %v, want wrapped context.Canceled", err)
	}
	// The uncancelled variants agree with the plain ones.
	got, err := tr.RemainderTreeCtx(context.Background(), tr.Root())
	if err != nil {
		t.Fatal(err)
	}
	want := tr.RemainderTree(tr.Root())
	for i := range want {
		if got[i].Cmp(want[i]) != 0 {
			t.Fatalf("leaf %d: ctx variant = %v, plain = %v", i, got[i], want[i])
		}
	}
}

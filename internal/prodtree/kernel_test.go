package prodtree

import (
	"context"
	"math/big"
	"math/rand"
	"testing"

	"github.com/factorable/weakkeys/internal/kernel"
)

// randVals returns n pseudorandom odd values of about bits width.
func randVals(rng *rand.Rand, n, bits int) []*big.Int {
	vals := make([]*big.Int, n)
	for i := range vals {
		v := new(big.Int).Rand(rng, new(big.Int).Lsh(big.NewInt(1), uint(bits)))
		v.SetBit(v, 0, 1).SetBit(v, bits-1, 1)
		vals[i] = v
	}
	return vals
}

// TestPooledBuildsMatchSerial is the bit-identical equivalence
// property: every tree and remainder computed on a wide pooled engine
// must equal the GOMAXPROCS=1 serial baseline, across New, Extend and
// both remainder-tree variants, for a spread of sizes including odd
// node counts. Run under -race this also exercises the pool for data
// races on shared levels.
func TestPooledBuildsMatchSerial(t *testing.T) {
	serial := kernel.New(1)
	pooled := kernel.New(8)
	defer serial.Close()
	defer pooled.Close()
	sctx := kernel.With(context.Background(), serial)
	pctx := kernel.With(context.Background(), pooled)

	rng := rand.New(rand.NewSource(61))
	for _, n := range []int{1, 2, 3, 5, 8, 33, 257, 1000} {
		vals := randVals(rng, n, 96)
		st, err := NewCtx(sctx, vals)
		if err != nil {
			t.Fatal(err)
		}
		pt, err := NewCtx(pctx, vals)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualTrees(t, "New", n, st, pt)

		// Extend both ways over a split of the same inputs.
		if n >= 2 {
			cut := 1 + rng.Intn(n-1)
			sb, err := NewCtx(sctx, vals[:cut])
			if err != nil {
				t.Fatal(err)
			}
			pb, err := NewCtx(pctx, vals[:cut])
			if err != nil {
				t.Fatal(err)
			}
			se, err := ExtendCtx(sctx, sb, vals[cut:])
			if err != nil {
				t.Fatal(err)
			}
			pe, err := ExtendCtx(pctx, pb, vals[cut:])
			if err != nil {
				t.Fatal(err)
			}
			mustEqualTrees(t, "Extend", n, se, pe)
			mustEqualTrees(t, "Extend-vs-New", n, st, pe)
		}

		// Remainder trees: the canonical squared call (x = root, which
		// exercises the top-level skip) and a plain reduction of an
		// arbitrary larger value.
		srem, err := st.RemainderTreeSquaredCtx(sctx, st.Root())
		if err != nil {
			t.Fatal(err)
		}
		prem, err := pt.RemainderTreeSquaredCtx(pctx, pt.Root())
		if err != nil {
			t.Fatal(err)
		}
		mustEqualSlices(t, "RemainderTreeSquared", n, srem, prem)

		x := new(big.Int).Add(st.Root(), big.NewInt(12345))
		sr2, err := st.RemainderTreeCtx(sctx, x)
		if err != nil {
			t.Fatal(err)
		}
		pr2, err := pt.RemainderTreeCtx(pctx, x)
		if err != nil {
			t.Fatal(err)
		}
		mustEqualSlices(t, "RemainderTree", n, sr2, pr2)
	}
}

func mustEqualTrees(t *testing.T, what string, n int, a, b *Tree) {
	t.Helper()
	if len(a.Levels) != len(b.Levels) {
		t.Fatalf("%s n=%d: level counts %d vs %d", what, n, len(a.Levels), len(b.Levels))
	}
	for lvl := range a.Levels {
		mustEqualSlices(t, what, n, a.Levels[lvl], b.Levels[lvl])
	}
}

func mustEqualSlices(t *testing.T, what string, n int, a, b []*big.Int) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s n=%d: lengths %d vs %d", what, n, len(a), len(b))
	}
	for i := range a {
		if a[i].Cmp(b[i]) != 0 {
			t.Fatalf("%s n=%d: value %d differs:\n  %v\n  %v", what, n, i, a[i], b[i])
		}
	}
}

// TestSquaredSkipCorrectness pins the top-level skip against the
// brute-force definition for both the skip case (x < root²) and the
// no-skip case (x >= root²).
func TestSquaredSkipCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 9, 64} {
		vals := randVals(rng, n, 64)
		tree, err := New(vals)
		if err != nil {
			t.Fatal(err)
		}
		root := tree.Root()
		rootSq := new(big.Int).Mul(root, root)
		huge := new(big.Int).Add(new(big.Int).Mul(rootSq, big.NewInt(3)), big.NewInt(17))
		for _, x := range []*big.Int{root, new(big.Int).Sub(root, big.NewInt(1)), huge} {
			got := tree.RemainderTreeSquared(x)
			for i, leaf := range vals {
				sq := new(big.Int).Mul(leaf, leaf)
				want := new(big.Int).Mod(x, sq)
				if got[i].Cmp(want) != 0 {
					t.Fatalf("n=%d leaf %d: x mod leaf² = %v, want %v", n, i, got[i], want)
				}
			}
		}
	}
}

// TestNoArenaAliasingInResults is the aliasing regression test: after
// building trees and remainders on an engine, a scribble job overwrites
// every scratch value the engine's arenas can hand out. If any returned
// tree node or remainder aliased arena storage it would be clobbered.
func TestNoArenaAliasingInResults(t *testing.T) {
	eng := kernel.New(4)
	defer eng.Close()
	ctx := kernel.With(context.Background(), eng)

	rng := rand.New(rand.NewSource(99))
	vals := randVals(rng, 300, 96)
	tree, err := NewCtx(ctx, vals)
	if err != nil {
		t.Fatal(err)
	}
	tree2, err := ExtendCtx(ctx, tree, randVals(rng, 37, 96))
	if err != nil {
		t.Fatal(err)
	}
	rems, err := tree.RemainderTreeSquaredCtx(ctx, tree.Root())
	if err != nil {
		t.Fatal(err)
	}

	// Deep-copy the expected values, then scribble over every arena
	// scratch slot the engine can produce.
	snapTree := copyLevels(tree.Levels)
	snapTree2 := copyLevels(tree2.Levels)
	snapRems := copySlice(rems)
	garbage := new(big.Int).Lsh(big.NewInt(-1), 512)
	err = eng.Run(ctx, 64, func(i int, a *kernel.Arena) {
		for k := 0; k < 256; k++ {
			a.Get().Set(garbage)
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	checkLevels(t, "New tree", tree.Levels, snapTree)
	checkLevels(t, "Extend tree", tree2.Levels, snapTree2)
	for i := range rems {
		if rems[i].Cmp(snapRems[i]) != 0 {
			t.Fatalf("remainder %d shares storage with a scratch arena", i)
		}
	}
}

func copyLevels(levels [][]*big.Int) [][]*big.Int {
	out := make([][]*big.Int, len(levels))
	for i, lvl := range levels {
		out[i] = copySlice(lvl)
	}
	return out
}

func copySlice(vals []*big.Int) []*big.Int {
	out := make([]*big.Int, len(vals))
	for i, v := range vals {
		out[i] = new(big.Int).Set(v)
	}
	return out
}

func checkLevels(t *testing.T, what string, got, want [][]*big.Int) {
	t.Helper()
	for lvl := range got {
		for i := range got[lvl] {
			if got[lvl][i].Cmp(want[lvl][i]) != 0 {
				t.Fatalf("%s: level %d node %d shares storage with a scratch arena", what, lvl, i)
			}
		}
	}
}

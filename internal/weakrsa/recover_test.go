package weakrsa

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRecoverPrivateKey(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	orig, err := GenerateKey(rng, Options{Bits: 128})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := RecoverPrivateKey(&orig.PublicKey, orig.P)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Validate(); err != nil {
		t.Errorf("recovered key invalid: %v", err)
	}
	if rec.D.Cmp(orig.D) != 0 {
		t.Error("recovered private exponent differs")
	}
	// Recovery from the OTHER factor works too.
	rec2, err := RecoverPrivateKey(&orig.PublicKey, orig.Q)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.D.Cmp(orig.D) != 0 {
		t.Error("recovery from q differs")
	}
}

func TestRecoverPrivateKeyErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	k, err := GenerateKey(rng, Options{Bits: 128})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []*big.Int{big.NewInt(1), big.NewInt(0), k.N, big.NewInt(12345)} {
		if _, err := RecoverPrivateKey(&k.PublicKey, bad); err == nil {
			t.Errorf("factor %v accepted", bad)
		}
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	k, err := GenerateKey(rng, Options{Bits: 128})
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw uint64) bool {
		m := new(big.Int).SetUint64(raw)
		m.Mod(m, k.N)
		c, err := k.PublicKey.Encrypt(m)
		if err != nil {
			return false
		}
		p, err := k.Decrypt(c)
		if err != nil {
			return false
		}
		return p.Cmp(m) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEncryptDecryptRangeChecks(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	k, err := GenerateKey(rng, Options{Bits: 128})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.PublicKey.Encrypt(new(big.Int).Neg(big.NewInt(1))); err == nil {
		t.Error("negative message accepted")
	}
	if _, err := k.PublicKey.Encrypt(k.N); err == nil {
		t.Error("oversized message accepted")
	}
	if _, err := k.Decrypt(k.N); err == nil {
		t.Error("oversized ciphertext accepted")
	}
}

func TestSignVerifySig(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	k, err := GenerateKey(rng, Options{Bits: 128})
	if err != nil {
		t.Fatal(err)
	}
	digest := big.NewInt(0xFEEDFACE)
	sig := k.Sign(digest)
	if !k.PublicKey.VerifySig(digest, sig) {
		t.Error("valid signature rejected")
	}
	if k.PublicKey.VerifySig(big.NewInt(0xDEAD), sig) {
		t.Error("signature verified against wrong digest")
	}
	// A forged signature from a RECOVERED key verifies — the attack.
	rec, err := RecoverPrivateKey(&k.PublicKey, k.P)
	if err != nil {
		t.Fatal(err)
	}
	forged := rec.Sign(big.NewInt(0xBADC0DE))
	if !k.PublicKey.VerifySig(big.NewInt(0xBADC0DE), forged) {
		t.Error("recovered key cannot forge — recovery broken")
	}
}

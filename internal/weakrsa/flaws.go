package weakrsa

import (
	"errors"
	"fmt"
	"math/big"

	"github.com/factorable/weakkeys/internal/entropy"
)

// IBMCliquePrimes is the number of primes in the IBM Remote Supervisor
// Adapter II / BladeCenter Management Module prime pool: a bug in their
// prime-generation code left only nine possible primes, yielding 36
// possible public keys (Section 3.3.2).
const IBMCliquePrimes = 9

// IBMCliqueKeys is the number of distinct moduli the clique can produce:
// C(9,2) = 36 unordered pairs of distinct primes.
const IBMCliqueKeys = 36

// Clique deterministically derives a fixed pool of primes from a firmware
// identity and hands out moduli built from pairs of them. It models the
// IBM implementation where every device in the field shares the same tiny
// prime pool.
type Clique struct {
	primes []*big.Int
	bits   int
	e      int
}

// NewClique derives nPrimes primes of half the given modulus size from the
// firmware seed, using the given prime-generation style (the real IBM
// implementation's primes satisfy the OpenSSL fingerprint, Table 5). The
// same seed always yields the same pool — every "device" shares it, which
// is the bug.
func NewClique(firmwareSeed []byte, nPrimes, modulusBits int, gen PrimeGen) (*Clique, error) {
	if nPrimes < 2 {
		return nil, errors.New("weakrsa: clique needs at least two primes")
	}
	pool := entropy.NewPool(firmwareSeed)
	seen := make(map[string]bool, nPrimes)
	primes := make([]*big.Int, 0, nPrimes)
	for len(primes) < nPrimes {
		p, err := gen.gen(pool, modulusBits/2)
		if err != nil {
			return nil, err
		}
		if seen[p.String()] {
			continue
		}
		seen[p.String()] = true
		primes = append(primes, p)
	}
	return &Clique{primes: primes, bits: modulusBits, e: DefaultExponent}, nil
}

// Primes returns the shared prime pool. Shared storage; do not modify.
func (c *Clique) Primes() []*big.Int { return c.primes }

// KeyCount returns the number of distinct moduli the clique can produce.
func (c *Clique) KeyCount() int { return len(c.primes) * (len(c.primes) - 1) / 2 }

// Key returns the key for the unordered pair selected by index in
// [0, KeyCount). A device "chooses" its index from its (weak) RNG, so
// devices collide on whole keys, not just primes.
func (c *Clique) Key(index int) (*PrivateKey, error) {
	total := c.KeyCount()
	if index < 0 || index >= total {
		return nil, fmt.Errorf("weakrsa: clique index %d out of range [0,%d)", index, total)
	}
	// Enumerate pairs (i,j) with i<j in lexicographic order.
	i, j := 0, 1
	for k := 0; k < index; k++ {
		j++
		if j == len(c.primes) {
			i++
			j = i + 1
		}
	}
	p, q := c.primes[i], c.primes[j]
	n := new(big.Int).Mul(p, q)
	d := new(big.Int).ModInverse(big.NewInt(int64(c.e)), phi(p, q))
	if d == nil {
		return nil, fmt.Errorf("weakrsa: clique pair %d has gcd(e,phi)!=1", index)
	}
	return &PrivateKey{PublicKey: PublicKey{N: n, E: c.e}, D: d, P: p, Q: q}, nil
}

// KeyForDevice draws a pair index from the device's RNG and returns the
// corresponding key. With an unseeded pool shared across devices, many
// devices independently "draw" the same index.
func (c *Clique) KeyForDevice(rng *entropy.Pool) (*PrivateKey, error) {
	var b [4]byte
	if _, err := rng.Read(b[:]); err != nil {
		return nil, err
	}
	idx := int(uint32(b[0])<<24|uint32(b[1])<<16|uint32(b[2])<<8|uint32(b[3])) % c.KeyCount()
	if idx < 0 {
		idx += c.KeyCount()
	}
	return c.Key(idx)
}

// CorruptBits returns a copy of n with the given bit positions flipped,
// modeling the memory/wire/storage bit errors behind the 107 non-well-
// formed "moduli" in the paper's dataset (Section 3.3.5). Positions are
// bit indices from the least-significant bit; out-of-range positions
// extend the number.
func CorruptBits(n *big.Int, positions ...int) *big.Int {
	out := new(big.Int).Set(n)
	for _, pos := range positions {
		if pos < 0 {
			continue
		}
		out.SetBit(out, pos, out.Bit(pos)^1)
	}
	return out
}

// SharedPrimePair generates two keys the way two same-model devices with
// identical boot states do: both pools start identical, each key draws its
// first prime from the stream (identical), then each device stirs its own
// slightly-different timestamp, so the second primes diverge. It returns
// the two keys, which share P but not Q — the canonical weak-key pair.
// The helper exists for tests and examples; the population simulator
// drives the same machinery per-device.
func SharedPrimePair(firmwareSeed []byte, bits int, gen PrimeGen, divergeA, divergeB []byte) (*PrivateKey, *PrivateKey, error) {
	mk := func(diverge []byte) (*PrivateKey, error) {
		pool := entropy.NewPool(firmwareSeed)
		return GenerateKey(pool, Options{
			Bits:     bits,
			PrimeGen: gen,
			MidEvent: func() { pool.Mix(diverge, 0) },
		})
	}
	a, err := mk(divergeA)
	if err != nil {
		return nil, nil, err
	}
	b, err := mk(divergeB)
	if err != nil {
		return nil, nil, err
	}
	return a, b, nil
}

package weakrsa

import (
	"math/big"
	"math/rand"
	"testing"

	"github.com/factorable/weakkeys/internal/numtheory"
)

func TestGenerateClosePrimes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	k, err := GenerateClosePrimes(rng, Options{Bits: 128})
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	if k.N.BitLen() != 128 {
		t.Errorf("modulus %d bits", k.N.BitLen())
	}
	// The whole point: a tiny Fermat budget splits it.
	p, q := numtheory.FermatFactor(k.N, 64)
	if p == nil {
		t.Fatal("close-prime modulus resisted a 64-step Fermat ascent")
	}
	if p.Cmp(k.P) != 0 || q.Cmp(k.Q) != 0 {
		t.Errorf("Fermat split %v,%v, want %v,%v", p, q, k.P, k.Q)
	}
}

func TestGenerateSmallFactor(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	k, err := GenerateSmallFactor(rng, Options{Bits: 128}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Validate(); err != nil {
		t.Fatal(err)
	}
	if k.N.BitLen() != 128 {
		t.Errorf("modulus %d bits", k.N.BitLen())
	}
	if k.P.BitLen() > SmallFactorBits {
		t.Errorf("small factor is %d bits, want <= %d", k.P.BitLen(), SmallFactorBits)
	}
	if _, err := GenerateSmallFactor(rng, Options{Bits: 128}, 1); err == nil {
		t.Error("1-bit factor accepted")
	}
	if _, err := GenerateSmallFactor(rng, Options{Bits: 128}, 65); err == nil {
		t.Error("factor wider than half the modulus accepted")
	}
}

func TestGenerateUnsafeExponent(t *testing.T) {
	for _, e := range []int{1, 2, 3, 4, 65536} {
		rng := rand.New(rand.NewSource(13))
		k, err := GenerateUnsafeExponent(rng, Options{Bits: 128}, e)
		if err != nil {
			t.Fatalf("e=%d: %v", e, err)
		}
		if k.E != e {
			t.Errorf("e=%d: key has E=%d", e, k.E)
		}
		if k.N.BitLen() != 128 {
			t.Errorf("e=%d: modulus %d bits", e, k.N.BitLen())
		}
		if new(big.Int).Mul(k.P, k.Q).Cmp(k.N) != 0 {
			t.Errorf("e=%d: N != P*Q", e)
		}
		// Odd e: D must actually invert. Even e: no inverse exists, and
		// the key ships with D = 0 — Validate must reject it.
		if e%2 == 1 {
			if err := k.Validate(); err != nil {
				t.Errorf("e=%d: %v", e, err)
			}
		} else if err := k.Validate(); err == nil {
			t.Errorf("e=%d: even-exponent key validated", e)
		}
	}
}

func TestSharedModulusGroup(t *testing.T) {
	g1, err := NewSharedModulusGroup([]byte("fw-clone-1.0"), 128, PrimeNaive)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewSharedModulusGroup([]byte("fw-clone-1.0"), 128, PrimeNaive)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Key() != g1.Key() {
		t.Error("group must return the identical key object")
	}
	if !g1.Key().PublicKey.Equal(&g2.Key().PublicKey) {
		t.Error("same seed must derive the same shared key")
	}
	if err := g1.Key().Validate(); err != nil {
		t.Error(err)
	}
	g3, err := NewSharedModulusGroup([]byte("fw-clone-2.0"), 128, PrimeNaive)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Key().PublicKey.Equal(&g3.Key().PublicKey) {
		t.Error("distinct seeds collided")
	}
}

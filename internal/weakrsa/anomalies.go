package weakrsa

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"github.com/factorable/weakkeys/internal/entropy"
	"github.com/factorable/weakkeys/internal/numtheory"
)

// This file models the anomalous-key generation flaws the Tor-relays
// study ("Major key alert!") and "When RSA Fails" describe — key classes
// that batch GCD alone never catches because no prime is shared with any
// other key:
//
//   - close primes:   q is chosen as the next prime after p (or p plus a
//     small stir), so Fermat's method splits N in a handful of steps;
//   - small factors:  a broken primality test accepts a tiny "prime", so
//     trial division or Pollard rho splits N;
//   - unsafe exponents: e = 1, even e, or a tiny e emitted by a confused
//     generator;
//   - shared moduli:  the whole fleet ships one hardcoded keypair, so
//     the same N appears under every device identity.
//
// The constructors assemble keys directly instead of calling GenerateKey
// where the flaw itself would be rejected (an even e, for instance, is
// exactly what GenerateKey's exponent validation refuses).

// GenerateClosePrimes draws p honestly and then takes q as the next
// prime above p plus a small even stir drawn from rand — the "When RSA
// Fails" prime-selection flaw where both primes come from one narrow
// window. |p-q| stays far below N^(1/4), so the modulus falls to a
// Fermat ascent of a handful of steps.
func GenerateClosePrimes(rand io.Reader, opts Options) (*PrivateKey, error) {
	o := opts.withDefaults()
	if o.Bits < 32 || o.Bits%2 != 0 {
		return nil, fmt.Errorf("weakrsa: invalid modulus size %d", o.Bits)
	}
	e := big.NewInt(int64(o.E))
	for attempt := 0; attempt < 64; attempt++ {
		p, err := o.PrimeGen.gen(rand, o.Bits/2)
		if err != nil {
			return nil, err
		}
		var stir [2]byte
		if _, err := io.ReadFull(rand, stir[:]); err != nil {
			return nil, err
		}
		gap := int64(stir[0])<<8 | int64(stir[1])
		q := numtheory.NextPrime(new(big.Int).Add(p, big.NewInt(2+2*gap)))
		if p.Cmp(q) == 0 {
			continue
		}
		d := new(big.Int).ModInverse(e, phi(p, q))
		if d == nil {
			continue
		}
		n := new(big.Int).Mul(p, q)
		if n.BitLen() != o.Bits {
			continue
		}
		return &PrivateKey{PublicKey: PublicKey{N: n, E: o.E}, D: d, P: p, Q: q}, nil
	}
	return nil, errors.New("weakrsa: exhausted close-prime generation attempts")
}

// SmallFactorBits is the default size of the bogus "prime" in
// GenerateSmallFactor: comfortably inside the trial-division budget of
// the anomaly probes, the way real broken-primality-test keys carried
// factors of a few hundred.
const SmallFactorBits = 10

// GenerateSmallFactor produces a key whose P is a tiny prime
// (factorBits wide, SmallFactorBits if zero) — the broken-primality-test
// flaw, where the generator's Miller-Rabin was short-circuited and a
// small or composite candidate shipped as a prime. The modulus still has
// the requested bit length; trial division splits it immediately.
func GenerateSmallFactor(rand io.Reader, opts Options, factorBits int) (*PrivateKey, error) {
	o := opts.withDefaults()
	if o.Bits < 32 || o.Bits%2 != 0 {
		return nil, fmt.Errorf("weakrsa: invalid modulus size %d", o.Bits)
	}
	if factorBits == 0 {
		factorBits = SmallFactorBits
	}
	if factorBits < 2 || factorBits > o.Bits/2 {
		return nil, fmt.Errorf("weakrsa: invalid small-factor size %d", factorBits)
	}
	e := big.NewInt(int64(o.E))
	for attempt := 0; attempt < 64; attempt++ {
		p, err := smallPrime(rand, factorBits)
		if err != nil {
			return nil, err
		}
		q, err := o.PrimeGen.gen(rand, o.Bits-factorBits)
		if err != nil {
			return nil, err
		}
		if p.Cmp(q) == 0 {
			continue
		}
		d := new(big.Int).ModInverse(e, phi(p, q))
		if d == nil {
			continue
		}
		n := new(big.Int).Mul(p, q)
		if n.BitLen() != o.Bits {
			continue
		}
		return &PrivateKey{PublicKey: PublicKey{N: n, E: o.E}, D: d, P: p, Q: q}, nil
	}
	return nil, errors.New("weakrsa: exhausted small-factor generation attempts")
}

// smallPrime draws a prime of roughly the requested bit length, below the
// 16-bit floor numtheory's generators enforce: a random value of that
// magnitude bumped to the next prime.
func smallPrime(rand io.Reader, bits int) (*big.Int, error) {
	buf := make([]byte, (bits+7)/8)
	if _, err := io.ReadFull(rand, buf); err != nil {
		return nil, err
	}
	p := new(big.Int).SetBytes(buf)
	mask := new(big.Int).Lsh(big.NewInt(1), uint(bits))
	mask.Sub(mask, big.NewInt(1))
	p.And(p, mask)
	p.SetBit(p, bits-1, 1)
	p = numtheory.NextPrime(p)
	if p.BitLen() > bits {
		// NextPrime crossed the power of two; 2^bits - small is prime-free
		// rarely enough that stepping down is simpler than redrawing.
		p = numtheory.NextPrime(new(big.Int).Lsh(big.NewInt(1), uint(bits-1)))
	}
	return p, nil
}

// GenerateUnsafeExponent produces an honestly-built modulus carrying a
// broken public exponent — e = 1 (identity "encryption"), an even e (no
// inverse mod φ(N) exists), or a tiny unsafe e. GenerateKey rejects
// these up front, which is exactly why the flawed-device model assembles
// the key directly. When e has no inverse, D is zero and Validate fails;
// such keys still serve certificates in the field, which is the point.
func GenerateUnsafeExponent(rand io.Reader, opts Options, e int) (*PrivateKey, error) {
	o := opts.withDefaults()
	if o.Bits < 32 || o.Bits%2 != 0 {
		return nil, fmt.Errorf("weakrsa: invalid modulus size %d", o.Bits)
	}
	for attempt := 0; attempt < 64; attempt++ {
		p, err := o.PrimeGen.gen(rand, o.Bits/2)
		if err != nil {
			return nil, err
		}
		q, err := o.PrimeGen.gen(rand, o.Bits/2)
		if err != nil {
			return nil, err
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		if n.BitLen() != o.Bits {
			continue
		}
		d := new(big.Int).ModInverse(big.NewInt(int64(e)), phi(p, q))
		if d == nil {
			if e > 0 && e%2 == 1 {
				// Odd e can invert for other primes (e.g. 3 | φ here);
				// redraw so the tiny-but-workable exponent stays workable.
				continue
			}
			d = new(big.Int) // no inverse exists: the key can sign nothing, and ships anyway
		}
		return &PrivateKey{PublicKey: PublicKey{N: n, E: e}, D: d, P: p, Q: q}, nil
	}
	return nil, errors.New("weakrsa: exhausted unsafe-exponent generation attempts")
}

// SharedModulusGroup hands every caller the identical keypair, derived
// deterministically from a firmware seed: the cloned-image flaw, where
// the key was baked into the firmware (or a VM template) and every
// device in the fleet serves the same modulus under its own identity.
type SharedModulusGroup struct {
	key *PrivateKey
}

// NewSharedModulusGroup derives the group's single keypair from the
// firmware seed. The same seed always yields the same key — that is the
// bug being modeled.
func NewSharedModulusGroup(firmwareSeed []byte, bits int, gen PrimeGen) (*SharedModulusGroup, error) {
	pool := entropy.NewPool(firmwareSeed)
	key, err := GenerateKey(pool, Options{Bits: bits, PrimeGen: gen})
	if err != nil {
		return nil, err
	}
	return &SharedModulusGroup{key: key}, nil
}

// Key returns the group's shared keypair — the same *PrivateKey for
// every device. Shared storage; do not modify.
func (g *SharedModulusGroup) Key() *PrivateKey { return g.key }

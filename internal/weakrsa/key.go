// Package weakrsa generates RSA keys on top of simulated entropy sources,
// including the flawed generation patterns responsible for the weak keys
// the paper factors: boot-time entropy holes producing shared primes, the
// IBM nine-prime clique, and bit-error corruption of otherwise valid
// moduli.
//
// The generation code deliberately follows the structure of embedded-
// device firmware: primes are drawn sequentially from the OS RNG, with an
// optional low-entropy event (time stirring) between the two draws. Keys
// are honest RSA keys — small by default (512 bits, configurable) so that
// the batch GCD pipeline runs at laptop scale, as discussed in DESIGN.md.
package weakrsa

import (
	"errors"
	"fmt"
	"io"
	"math/big"

	"github.com/factorable/weakkeys/internal/numtheory"
)

// DefaultBits is the default modulus size for simulated keys. The paper's
// devices used 1024- and 2048-bit keys; 512 keeps the product trees
// laptop-sized without changing any algorithm.
const DefaultBits = 512

// DefaultExponent is the conventional RSA public exponent.
const DefaultExponent = 65537

// PrimeGen selects the prime-generation style, which determines whether
// the key matches the paper's OpenSSL fingerprint (Section 3.3.4).
type PrimeGen int

const (
	// PrimeNaive draws primes with no constraint on p-1 (non-OpenSSL
	// implementations; only ~7.5% of such primes satisfy the OpenSSL
	// property by chance).
	PrimeNaive PrimeGen = iota
	// PrimeOpenSSL sieves p-1 against the first 2048 primes, as OpenSSL
	// does.
	PrimeOpenSSL
	// PrimeSafe generates safe primes ((p-1)/2 also prime). No vulnerable
	// vendor in the paper produced exclusively safe primes; the option
	// exists to test that the fingerprint classifier would be fooled.
	PrimeSafe
)

func (g PrimeGen) String() string {
	switch g {
	case PrimeNaive:
		return "naive"
	case PrimeOpenSSL:
		return "openssl"
	case PrimeSafe:
		return "safe"
	default:
		return fmt.Sprintf("PrimeGen(%d)", int(g))
	}
}

func (g PrimeGen) gen(r io.Reader, bits int) (*big.Int, error) {
	switch g {
	case PrimeNaive:
		return numtheory.GenPrimeNaive(r, bits)
	case PrimeOpenSSL:
		return numtheory.GenPrimeOpenSSL(r, bits)
	case PrimeSafe:
		return numtheory.GenSafePrime(r, bits)
	default:
		return nil, fmt.Errorf("weakrsa: unknown PrimeGen %d", int(g))
	}
}

// PublicKey is an RSA public key.
type PublicKey struct {
	N *big.Int
	E int
}

// Equal reports whether two public keys are identical.
func (k *PublicKey) Equal(o *PublicKey) bool {
	return k.E == o.E && k.N.Cmp(o.N) == 0
}

// PrivateKey is an RSA private key with its prime factorization retained,
// as the OpenSSL-fingerprint analysis needs the primes.
type PrivateKey struct {
	PublicKey
	D, P, Q *big.Int
}

// Validate checks the internal consistency of a private key: N = P*Q,
// both primes probable, and D inverting E modulo φ(N).
func (k *PrivateKey) Validate() error {
	if k.P == nil || k.Q == nil || k.N == nil || k.D == nil {
		return errors.New("weakrsa: incomplete key")
	}
	if new(big.Int).Mul(k.P, k.Q).Cmp(k.N) != 0 {
		return errors.New("weakrsa: N != P*Q")
	}
	if !k.P.ProbablyPrime(20) || !k.Q.ProbablyPrime(20) {
		return errors.New("weakrsa: non-prime factor")
	}
	phi := phi(k.P, k.Q)
	ed := new(big.Int).Mul(big.NewInt(int64(k.E)), k.D)
	ed.Mod(ed, phi)
	if ed.Cmp(bigOne) != 0 {
		return errors.New("weakrsa: D does not invert E")
	}
	return nil
}

var bigOne = big.NewInt(1)

func phi(p, q *big.Int) *big.Int {
	pm := new(big.Int).Sub(p, bigOne)
	qm := new(big.Int).Sub(q, bigOne)
	return pm.Mul(pm, qm)
}

// Options configures key generation.
type Options struct {
	// Bits is the modulus size; DefaultBits if zero.
	Bits int
	// E is the public exponent; DefaultExponent if zero.
	E int
	// PrimeGen selects the prime-generation style.
	PrimeGen PrimeGen
	// MidEvent, if non-nil, is invoked after the first prime has been
	// generated and before the second. Flawed firmware effectively stirs
	// a low-entropy value (boot clock, packet count) here: devices with
	// identical RNG state share the first prime and diverge afterwards —
	// the exact mechanism in Section 2.4. The callback typically calls
	// Pool.MixTime on the pool also serving as Rand.
	MidEvent func()
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.Bits == 0 {
		out.Bits = DefaultBits
	}
	if out.E == 0 {
		out.E = DefaultExponent
	}
	return out
}

// GenerateKey produces an RSA key from the entropy source rand using the
// flawed-firmware structure described in Options. The caller chooses how
// broken rand is; the function itself is a correct RSA generator.
func GenerateKey(rand io.Reader, opts Options) (*PrivateKey, error) {
	o := opts.withDefaults()
	if o.Bits < 32 || o.Bits%2 != 0 {
		return nil, fmt.Errorf("weakrsa: invalid modulus size %d", o.Bits)
	}
	// A public exponent below 3 or even can never invert mod φ(N) (φ is
	// always even), so without this check the loop below burns all 64
	// attempts and reports an opaque exhaustion error. The deliberately
	// broken exponents of the anomaly flaw models bypass GenerateKey and
	// assemble keys directly.
	if o.E < 3 || o.E%2 == 0 {
		return nil, fmt.Errorf("weakrsa: invalid public exponent %d (must be odd and >= 3)", o.E)
	}
	e := big.NewInt(int64(o.E))
	for attempt := 0; attempt < 64; attempt++ {
		p, err := o.PrimeGen.gen(rand, o.Bits/2)
		if err != nil {
			return nil, err
		}
		if o.MidEvent != nil {
			o.MidEvent()
		}
		q, err := o.PrimeGen.gen(rand, o.Bits/2)
		if err != nil {
			return nil, err
		}
		if p.Cmp(q) == 0 {
			continue
		}
		ph := phi(p, q)
		d := new(big.Int).ModInverse(e, ph)
		if d == nil {
			continue // gcd(e, phi) != 1; redraw
		}
		n := new(big.Int).Mul(p, q)
		if n.BitLen() != o.Bits {
			continue
		}
		return &PrivateKey{
			PublicKey: PublicKey{N: n, E: o.E},
			D:         d, P: p, Q: q,
		}, nil
	}
	return nil, errors.New("weakrsa: exhausted generation attempts")
}

package weakrsa

import (
	"math/big"
	"math/rand"
	"strings"
	"testing"

	"github.com/factorable/weakkeys/internal/entropy"
	"github.com/factorable/weakkeys/internal/numtheory"
)

func TestGenerateKeyValid(t *testing.T) {
	for _, gen := range []PrimeGen{PrimeNaive, PrimeOpenSSL} {
		rng := rand.New(rand.NewSource(1))
		k, err := GenerateKey(rng, Options{Bits: 128, PrimeGen: gen})
		if err != nil {
			t.Fatalf("%v: %v", gen, err)
		}
		if err := k.Validate(); err != nil {
			t.Errorf("%v: %v", gen, err)
		}
		if k.N.BitLen() != 128 {
			t.Errorf("%v: modulus %d bits", gen, k.N.BitLen())
		}
		if k.E != DefaultExponent {
			t.Errorf("%v: E = %d", gen, k.E)
		}
	}
}

func TestGenerateKeySafePrimes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	k, err := GenerateKey(rng, Options{Bits: 96, PrimeGen: PrimeSafe})
	if err != nil {
		t.Fatal(err)
	}
	if !numtheory.IsSafePrime(k.P) || !numtheory.IsSafePrime(k.Q) {
		t.Error("PrimeSafe must produce safe primes")
	}
}

func TestGenerateKeyRSARoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	k, err := GenerateKey(rng, Options{Bits: 128})
	if err != nil {
		t.Fatal(err)
	}
	msg := big.NewInt(0xC0FFEE)
	ct := new(big.Int).Exp(msg, big.NewInt(int64(k.E)), k.N)
	pt := new(big.Int).Exp(ct, k.D, k.N)
	if pt.Cmp(msg) != 0 {
		t.Error("RSA decryption did not invert encryption")
	}
}

func TestGenerateKeyInvalidOptions(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	if _, err := GenerateKey(rng, Options{Bits: 31}); err == nil {
		t.Error("odd bit size should be rejected")
	}
	if _, err := GenerateKey(rng, Options{Bits: 16}); err == nil {
		t.Error("tiny bit size should be rejected")
	}
	if _, err := GenerateKey(rng, Options{Bits: 128, PrimeGen: PrimeGen(42)}); err == nil {
		t.Error("unknown PrimeGen should be rejected")
	}
}

// TestGenerateKeyExponentValidation pins the up-front exponent check: an
// even, negative, or < 3 exponent never inverts mod φ(N), so it must be
// rejected immediately with a clear error instead of exhausting all 64
// generation attempts, while E == 0 still selects the default.
func TestGenerateKeyExponentValidation(t *testing.T) {
	for _, e := range []int{-1, 1, 2, 4} {
		rng := rand.New(rand.NewSource(5))
		_, err := GenerateKey(rng, Options{Bits: 128, E: e})
		if err == nil {
			t.Errorf("E=%d accepted", e)
			continue
		}
		if !strings.Contains(err.Error(), "invalid public exponent") {
			t.Errorf("E=%d: error %q, want the up-front exponent rejection", e, err)
		}
	}
	rng := rand.New(rand.NewSource(6))
	k, err := GenerateKey(rng, Options{Bits: 128, E: 0})
	if err != nil {
		t.Fatalf("E=0 (default): %v", err)
	}
	if k.E != DefaultExponent {
		t.Errorf("E=0 produced exponent %d, want default %d", k.E, DefaultExponent)
	}
	rng = rand.New(rand.NewSource(7))
	if k, err = GenerateKey(rng, Options{Bits: 128, E: 3}); err != nil || k.E != 3 {
		t.Errorf("E=3: key %v err %v, want a valid e=3 key", k, err)
	} else if err := k.Validate(); err != nil {
		t.Errorf("E=3 key invalid: %v", err)
	}
}

func TestGenerateKeyDefaults(t *testing.T) {
	o := (&Options{}).withDefaults()
	if o.Bits != DefaultBits || o.E != DefaultExponent {
		t.Errorf("defaults: %+v", o)
	}
}

func TestIdenticalEntropyIdenticalKeys(t *testing.T) {
	a := entropy.NewPool([]byte("fw-1.0"))
	b := entropy.NewPool([]byte("fw-1.0"))
	ka, err := GenerateKey(a, Options{Bits: 128})
	if err != nil {
		t.Fatal(err)
	}
	kb, err := GenerateKey(b, Options{Bits: 128})
	if err != nil {
		t.Fatal(err)
	}
	if !ka.PublicKey.Equal(&kb.PublicKey) {
		t.Error("identical entropy must reproduce the identical key")
	}
}

func TestMidEventSharesOnlyFirstPrime(t *testing.T) {
	ka, kb, err := SharedPrimePair([]byte("fw-1.0"), 128, PrimeNaive,
		[]byte("boot-ms-104"), []byte("boot-ms-887"))
	if err != nil {
		t.Fatal(err)
	}
	if ka.P.Cmp(kb.P) != 0 {
		t.Error("first primes must collide (identical pre-event streams)")
	}
	if ka.Q.Cmp(kb.Q) == 0 {
		t.Error("second primes must diverge after the mid-event")
	}
	if ka.N.Cmp(kb.N) == 0 {
		t.Error("moduli must be distinct")
	}
	// And the shared prime is exactly gcd(Na, Nb) — the attack.
	g := new(big.Int).GCD(nil, nil, ka.N, kb.N)
	if g.Cmp(ka.P) != 0 {
		t.Errorf("gcd(Na,Nb) = %v, want shared prime %v", g, ka.P)
	}
}

func TestMidEventSameEventSameKey(t *testing.T) {
	ka, kb, err := SharedPrimePair([]byte("fw"), 128, PrimeNaive,
		[]byte("boot-s-1"), []byte("boot-s-1"))
	if err != nil {
		t.Fatal(err)
	}
	if !ka.PublicKey.Equal(&kb.PublicKey) {
		t.Error("identical mid-events must reproduce the whole key (full collision)")
	}
}

func TestValidateRejectsTampering(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	k, err := GenerateKey(rng, Options{Bits: 128})
	if err != nil {
		t.Fatal(err)
	}
	bad := *k
	bad.N = new(big.Int).Add(k.N, big.NewInt(2))
	if bad.Validate() == nil {
		t.Error("tampered N accepted")
	}
	bad2 := *k
	bad2.D = new(big.Int).Add(k.D, big.NewInt(1))
	if bad2.Validate() == nil {
		t.Error("tampered D accepted")
	}
	bad3 := *k
	bad3.P = nil
	if bad3.Validate() == nil {
		t.Error("nil P accepted")
	}
}

func TestPrimeGenString(t *testing.T) {
	if PrimeNaive.String() != "naive" || PrimeOpenSSL.String() != "openssl" ||
		PrimeSafe.String() != "safe" {
		t.Error("PrimeGen.String labels wrong")
	}
	if PrimeGen(9).String() == "" {
		t.Error("unknown PrimeGen should still stringify")
	}
}

func TestOpenSSLKeysSatisfyFingerprint(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	k, err := GenerateKey(rng, Options{Bits: 128, PrimeGen: PrimeOpenSSL})
	if err != nil {
		t.Fatal(err)
	}
	if !numtheory.SatisfiesOpenSSLProperty(k.P) || !numtheory.SatisfiesOpenSSLProperty(k.Q) {
		t.Error("OpenSSL-style key must satisfy the fingerprint on both primes")
	}
}

func TestProductionKeySizes(t *testing.T) {
	// The paper's devices used 1024- and 2048-bit keys; the simulation
	// defaults to smaller moduli for speed, but every algorithm must
	// hold at production sizes. Generate a 1024-bit shared-prime pair
	// and break it with one gcd.
	if testing.Short() {
		t.Skip("1024-bit generation in -short mode")
	}
	ka, kb, err := SharedPrimePair([]byte("prod-fw"), 1024, PrimeNaive,
		[]byte("boot-a"), []byte("boot-b"))
	if err != nil {
		t.Fatal(err)
	}
	if ka.N.BitLen() != 1024 || kb.N.BitLen() != 1024 {
		t.Fatalf("bit lengths: %d, %d", ka.N.BitLen(), kb.N.BitLen())
	}
	if err := ka.Validate(); err != nil {
		t.Fatal(err)
	}
	g := new(big.Int).GCD(nil, nil, ka.N, kb.N)
	if g.BitLen() != 512 {
		t.Fatalf("shared prime of %d bits, want 512", g.BitLen())
	}
	rec, err := RecoverPrivateKey(&ka.PublicKey, g)
	if err != nil {
		t.Fatal(err)
	}
	if rec.D.Cmp(ka.D) != 0 {
		t.Error("1024-bit recovery mismatch")
	}
}

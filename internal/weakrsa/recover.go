package weakrsa

import (
	"errors"
	"math/big"
)

// RecoverPrivateKey reconstructs a full private key from a public key and
// one prime factor — the attacker's step after batch GCD hands back a
// shared prime (Section 2.3: "an attacker who can find such a pair can
// easily factor both of them").
func RecoverPrivateKey(pub *PublicKey, factor *big.Int) (*PrivateKey, error) {
	if factor.Sign() <= 0 || factor.Cmp(bigOne) == 0 || factor.Cmp(pub.N) >= 0 {
		return nil, errors.New("weakrsa: factor is trivial for this key")
	}
	var rem big.Int
	q := new(big.Int)
	q.QuoRem(pub.N, factor, &rem)
	if rem.Sign() != 0 {
		return nil, errors.New("weakrsa: factor does not divide modulus")
	}
	p := new(big.Int).Set(factor)
	if p.Cmp(q) > 0 {
		p, q = q, p
	}
	d := new(big.Int).ModInverse(big.NewInt(int64(pub.E)), phi(p, q))
	if d == nil {
		return nil, errors.New("weakrsa: e is not invertible modulo phi(N)")
	}
	return &PrivateKey{
		PublicKey: PublicKey{N: new(big.Int).Set(pub.N), E: pub.E},
		D:         d, P: p, Q: q,
	}, nil
}

// Encrypt performs textbook RSA encryption of m (which must lie in
// [0, N)). The study never needs padding: it encrypts session-key-sized
// test values to demonstrate compromise.
func (k *PublicKey) Encrypt(m *big.Int) (*big.Int, error) {
	if m.Sign() < 0 || m.Cmp(k.N) >= 0 {
		return nil, errors.New("weakrsa: message out of range")
	}
	return new(big.Int).Exp(m, big.NewInt(int64(k.E)), k.N), nil
}

// Decrypt inverts Encrypt using the private exponent.
func (k *PrivateKey) Decrypt(c *big.Int) (*big.Int, error) {
	if c.Sign() < 0 || c.Cmp(k.N) >= 0 {
		return nil, errors.New("weakrsa: ciphertext out of range")
	}
	return new(big.Int).Exp(c, k.D, k.N), nil
}

// Sign produces a textbook RSA signature over a pre-hashed digest value
// (reduced modulo N by the caller's convention; see certs.Sign for the
// certificate usage).
func (k *PrivateKey) Sign(digest *big.Int) *big.Int {
	m := new(big.Int).Mod(digest, k.N)
	return m.Exp(m, k.D, k.N)
}

// VerifySig checks a textbook RSA signature against a digest.
func (k *PublicKey) VerifySig(digest, sig *big.Int) bool {
	want := new(big.Int).Mod(digest, k.N)
	got := new(big.Int).Exp(sig, big.NewInt(int64(k.E)), k.N)
	return got.Cmp(want) == 0
}

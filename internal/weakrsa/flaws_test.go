package weakrsa

import (
	"math/big"
	"testing"

	"github.com/factorable/weakkeys/internal/entropy"
)

func testClique(t *testing.T) *Clique {
	t.Helper()
	c, err := NewClique([]byte("ibm-rsa2-fw"), IBMCliquePrimes, 128, PrimeNaive)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCliqueKeyCount(t *testing.T) {
	c := testClique(t)
	if got := c.KeyCount(); got != IBMCliqueKeys {
		t.Errorf("KeyCount = %d, want %d (C(9,2))", got, IBMCliqueKeys)
	}
	if len(c.Primes()) != IBMCliquePrimes {
		t.Errorf("prime pool size %d", len(c.Primes()))
	}
}

func TestCliqueDeterministic(t *testing.T) {
	a := testClique(t)
	b := testClique(t)
	for i := 0; i < IBMCliqueKeys; i++ {
		ka, err := a.Key(i)
		if err != nil {
			t.Fatal(err)
		}
		kb, err := b.Key(i)
		if err != nil {
			t.Fatal(err)
		}
		if !ka.PublicKey.Equal(&kb.PublicKey) {
			t.Fatalf("clique key %d differs across instantiations", i)
		}
	}
}

func TestCliqueKeysDistinctAndValid(t *testing.T) {
	c := testClique(t)
	seen := make(map[string]bool)
	for i := 0; i < c.KeyCount(); i++ {
		k, err := c.Key(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := k.Validate(); err != nil {
			t.Errorf("key %d invalid: %v", i, err)
		}
		s := k.N.String()
		if seen[s] {
			t.Errorf("key %d duplicates an earlier modulus", i)
		}
		seen[s] = true
	}
	if len(seen) != IBMCliqueKeys {
		t.Errorf("%d distinct moduli, want %d", len(seen), IBMCliqueKeys)
	}
}

func TestCliqueEveryPairSharesViaPool(t *testing.T) {
	// Every modulus's primes come from the 9-prime pool.
	c := testClique(t)
	pool := make(map[string]bool)
	for _, p := range c.Primes() {
		pool[p.String()] = true
	}
	for i := 0; i < c.KeyCount(); i++ {
		k, _ := c.Key(i)
		if !pool[k.P.String()] || !pool[k.Q.String()] {
			t.Errorf("key %d uses a prime outside the pool", i)
		}
	}
}

func TestCliqueIndexBounds(t *testing.T) {
	c := testClique(t)
	if _, err := c.Key(-1); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := c.Key(c.KeyCount()); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestCliqueNeedsTwoPrimes(t *testing.T) {
	if _, err := NewClique([]byte("x"), 1, 128, PrimeNaive); err == nil {
		t.Error("single-prime clique accepted")
	}
}

func TestCliqueKeyForDeviceCollides(t *testing.T) {
	// Two devices with identical unseeded pools draw the identical key.
	c := testClique(t)
	k1, err := c.KeyForDevice(entropy.NewPool([]byte("boot")))
	if err != nil {
		t.Fatal(err)
	}
	k2, err := c.KeyForDevice(entropy.NewPool([]byte("boot")))
	if err != nil {
		t.Fatal(err)
	}
	if !k1.PublicKey.Equal(&k2.PublicKey) {
		t.Error("identical pools must draw the identical clique key")
	}
}

func TestCliqueKeyForDeviceCoversRange(t *testing.T) {
	c := testClique(t)
	seen := make(map[string]bool)
	for i := 0; i < 60; i++ {
		pool := entropy.NewPool([]byte{byte(i), byte(i >> 8), 0xA7})
		k, err := c.KeyForDevice(pool)
		if err != nil {
			t.Fatal(err)
		}
		seen[k.N.String()] = true
	}
	if len(seen) < 10 {
		t.Errorf("only %d distinct keys from 60 random devices; draw looks biased", len(seen))
	}
	if len(seen) > IBMCliqueKeys {
		t.Errorf("%d distinct keys exceeds the clique maximum", len(seen))
	}
}

func TestCorruptBits(t *testing.T) {
	n := big.NewInt(0b1010)
	c := CorruptBits(n, 0)
	if c.Int64() != 0b1011 {
		t.Errorf("flip bit 0: %b", c.Int64())
	}
	if n.Int64() != 0b1010 {
		t.Error("CorruptBits mutated input")
	}
	// Double flip restores.
	r := CorruptBits(CorruptBits(n, 2), 2)
	if r.Cmp(n) != 0 {
		t.Error("double flip should restore")
	}
	// Negative positions ignored.
	if CorruptBits(n, -5).Cmp(n) != 0 {
		t.Error("negative position should be a no-op")
	}
	// Multiple flips.
	m := CorruptBits(n, 0, 1)
	if m.Int64() != 0b1001 {
		t.Errorf("flip bits 0,1: %b", m.Int64())
	}
}

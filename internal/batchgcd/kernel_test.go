package batchgcd

import (
	"context"
	"errors"
	"math/big"
	"math/rand"
	"testing"

	"github.com/factorable/weakkeys/internal/kernel"
)

// sharedPrimeCorpus builds n semiprimes from 64-bit primes with a few
// shared-prime pairs and some exact duplicates sprinkled in, the mix
// the dedup and sweep paths have to agree on.
func sharedPrimeCorpus(seed int64, n int) []*big.Int {
	rng := rand.New(rand.NewSource(seed))
	prime := func() *big.Int {
		for {
			p := new(big.Int).SetUint64(rng.Uint64() | 1<<63 | 1)
			if p.ProbablyPrime(0) {
				return p
			}
		}
	}
	mods := make([]*big.Int, 0, n)
	for len(mods) < n/10 {
		shared := prime()
		mods = append(mods,
			new(big.Int).Mul(shared, prime()),
			new(big.Int).Mul(shared, prime()))
	}
	for len(mods) < n-n/20 {
		mods = append(mods, new(big.Int).Mul(prime(), prime()))
	}
	for len(mods) < n {
		mods = append(mods, new(big.Int).Set(mods[rng.Intn(len(mods))])) // duplicates
	}
	rng.Shuffle(len(mods), func(i, j int) { mods[i], mods[j] = mods[j], mods[i] })
	return mods
}

// TestFactorPooledMatchesSerial is the full-Factor half of the
// equivalence property: the pooled engine must produce results
// bit-identical — same order, same indices, same divisors — to the
// 1-worker serial baseline.
func TestFactorPooledMatchesSerial(t *testing.T) {
	serial := kernel.New(1)
	pooled := kernel.New(8)
	defer serial.Close()
	defer pooled.Close()

	for _, seed := range []int64{1, 42, 2016} {
		mods := sharedPrimeCorpus(seed, 400)
		sres, err := FactorCtx(kernel.With(context.Background(), serial), mods)
		if err != nil {
			t.Fatal(err)
		}
		pres, err := FactorCtx(kernel.With(context.Background(), pooled), mods)
		if err != nil {
			t.Fatal(err)
		}
		if len(sres) != len(pres) {
			t.Fatalf("seed %d: %d serial results vs %d pooled", seed, len(sres), len(pres))
		}
		if len(sres) == 0 {
			t.Fatalf("seed %d: corpus produced no vulnerable moduli", seed)
		}
		for i := range sres {
			if sres[i].Index != pres[i].Index || sres[i].Divisor.Cmp(pres[i].Divisor) != 0 {
				t.Fatalf("seed %d: result %d differs: serial {%d %v} pooled {%d %v}",
					seed, i, sres[i].Index, sres[i].Divisor, pres[i].Index, pres[i].Divisor)
			}
		}
	}
}

func TestVulnerableSetCtx(t *testing.T) {
	mods := sharedPrimeCorpus(7, 120)
	want, err := VulnerableSet(mods)
	if err != nil {
		t.Fatal(err)
	}
	got, err := VulnerableSetCtx(context.Background(), mods)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("VulnerableSetCtx found %d vulnerable, VulnerableSet %d", len(got), len(want))
	}
	for i := range want {
		if !got[i] {
			t.Fatalf("index %d missing from VulnerableSetCtx result", i)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := VulnerableSetCtx(ctx, mods); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled VulnerableSetCtx returned %v, want context.Canceled", err)
	}
}

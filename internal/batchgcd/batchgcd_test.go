package batchgcd

import (
	"context"
	"errors"
	"math/big"
	"math/rand"
	"testing"

	"github.com/factorable/weakkeys/internal/numtheory"
)

// corpus builds a deterministic test corpus: nPrimes distinct primes of
// the given bit size, from which moduli can be assembled.
func corpus(t testing.TB, seed int64, nPrimes, bits int) []*big.Int {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[string]bool)
	primes := make([]*big.Int, 0, nPrimes)
	for len(primes) < nPrimes {
		p, err := numtheory.GenPrimeNaive(rng, bits)
		if err != nil {
			t.Fatal(err)
		}
		k := p.String()
		if seen[k] {
			continue
		}
		seen[k] = true
		primes = append(primes, p)
	}
	return primes
}

func mul(a, b *big.Int) *big.Int { return new(big.Int).Mul(a, b) }

func TestFactorNoInput(t *testing.T) {
	if _, err := Factor(nil); err != ErrNoInput {
		t.Errorf("got %v, want ErrNoInput", err)
	}
	if _, err := FactorPairwise(nil); err != ErrNoInput {
		t.Errorf("got %v, want ErrNoInput", err)
	}
}

func TestFactorSharedPrime(t *testing.T) {
	ps := corpus(t, 1, 5, 64)
	// N0 = p0*p1, N1 = p0*p2 share p0; N2 = p3*p4 is safe.
	moduli := []*big.Int{mul(ps[0], ps[1]), mul(ps[0], ps[2]), mul(ps[3], ps[4])}
	res, err := Factor(moduli)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d results, want 2: %v", len(res), res)
	}
	for _, r := range res {
		if r.Index == 2 {
			t.Error("safe modulus reported vulnerable")
		}
		if r.Divisor.Cmp(ps[0]) != 0 {
			t.Errorf("divisor %v, want shared prime %v", r.Divisor, ps[0])
		}
		p, q, err := SplitModulus(moduli[r.Index], r.Divisor)
		if err != nil {
			t.Fatal(err)
		}
		if mul(p, q).Cmp(moduli[r.Index]) != 0 {
			t.Error("split does not multiply back")
		}
	}
}

func TestFactorNoSharedPrimes(t *testing.T) {
	ps := corpus(t, 2, 8, 64)
	moduli := []*big.Int{mul(ps[0], ps[1]), mul(ps[2], ps[3]), mul(ps[4], ps[5]), mul(ps[6], ps[7])}
	res, err := Factor(moduli)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("expected no vulnerable moduli, got %v", res)
	}
}

func TestFactorDuplicatesNotVulnerable(t *testing.T) {
	// The same certificate seen twice must not mark the key vulnerable:
	// the paper deduplicates to 81M distinct moduli before the GCD run.
	ps := corpus(t, 3, 2, 64)
	n := mul(ps[0], ps[1])
	res, err := Factor([]*big.Int{n, new(big.Int).Set(n), n})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("duplicate modulus falsely vulnerable: %v", res)
	}
}

func TestFactorDuplicateOfVulnerableReportsAllCopies(t *testing.T) {
	ps := corpus(t, 4, 3, 64)
	n1 := mul(ps[0], ps[1])
	n2 := mul(ps[0], ps[2])
	res, err := Factor([]*big.Int{n1, n2, new(big.Int).Set(n1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("want all 3 records vulnerable, got %v", res)
	}
}

func TestFactorSingleModulus(t *testing.T) {
	ps := corpus(t, 5, 2, 64)
	res, err := Factor([]*big.Int{mul(ps[0], ps[1])})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Errorf("single modulus cannot share a factor: %v", res)
	}
}

func TestFactorCliqueBothPrimesShared(t *testing.T) {
	// IBM-style clique: every modulus is a product of two primes from a
	// tiny pool, so a modulus can share BOTH primes with neighbours. The
	// batch divisor then equals the modulus; the pairwise fallback must
	// still recover a proper split.
	ps := corpus(t, 6, 3, 64)
	moduli := []*big.Int{
		mul(ps[0], ps[1]), mul(ps[0], ps[2]), mul(ps[1], ps[2]),
	}
	res, err := Factor(moduli)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("all three clique moduli must be vulnerable, got %v", res)
	}
	for _, r := range res {
		if r.Divisor.Cmp(moduli[r.Index]) != 0 {
			t.Errorf("clique divisor should be the whole modulus, got %v", r.Divisor)
		}
	}
	pres, err := FactorPairwise(moduli)
	if err != nil {
		t.Fatal(err)
	}
	if len(pres) != 3 {
		t.Fatalf("pairwise should also flag all three")
	}
	for _, r := range pres {
		p, q, err := SplitModulus(moduli[r.Index], r.Divisor)
		if err != nil {
			t.Fatalf("pairwise divisor should split: %v", err)
		}
		if !p.ProbablyPrime(20) || !q.ProbablyPrime(20) {
			t.Error("split factors are not prime")
		}
	}
}

func TestFactorAgreesWithPairwise(t *testing.T) {
	ps := corpus(t, 7, 12, 48)
	rng := rand.New(rand.NewSource(77))
	var moduli []*big.Int
	for i := 0; i < 30; i++ {
		a, b := rng.Intn(len(ps)), rng.Intn(len(ps))
		if a == b {
			b = (b + 1) % len(ps)
		}
		moduli = append(moduli, mul(ps[a], ps[b]))
	}
	batchSet, err := VulnerableSet(moduli)
	if err != nil {
		t.Fatal(err)
	}
	pres, err := FactorPairwise(moduli)
	if err != nil {
		t.Fatal(err)
	}
	pairSet := make(map[int]bool)
	for _, r := range pres {
		pairSet[r.Index] = true
	}
	// Pairwise finds shared factors between distinct moduli; batch agrees
	// on exactly the same membership (both skip duplicate-equal pairs).
	for i := range moduli {
		if batchSet[i] != pairSet[i] {
			t.Errorf("index %d: batch=%v pairwise=%v", i, batchSet[i], pairSet[i])
		}
	}
}

func TestSplitModulusErrors(t *testing.T) {
	n := big.NewInt(15)
	if _, _, err := SplitModulus(n, big.NewInt(1)); err == nil {
		t.Error("divisor 1 should be rejected")
	}
	if _, _, err := SplitModulus(n, big.NewInt(15)); err == nil {
		t.Error("divisor == n should be rejected")
	}
	if _, _, err := SplitModulus(n, big.NewInt(4)); err == nil {
		t.Error("non-divisor should be rejected")
	}
	p, q, err := SplitModulus(n, big.NewInt(5))
	if err != nil || p.Int64() != 3 || q.Int64() != 5 {
		t.Errorf("SplitModulus(15,5) = %v,%v,%v", p, q, err)
	}
}

func TestFactorLargerCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("larger corpus in -short mode")
	}
	ps := corpus(t, 8, 40, 64)
	var moduli []*big.Int
	wantVuln := make(map[int]bool)
	// 100 safe moduli from disjoint prime pairs would need 200 primes;
	// instead build 15 safe pairs and 10 sharing ps[0].
	for i := 0; i < 30; i += 2 {
		moduli = append(moduli, mul(ps[i], ps[i+1]))
	}
	for i := 30; i < 40; i++ {
		wantVuln[len(moduli)] = true
		moduli = append(moduli, mul(ps[0], ps[i]))
	}
	// ps[0] also appears in moduli[0] = ps[0]*ps[1]: that one becomes
	// vulnerable too.
	wantVuln[0] = true
	set, err := VulnerableSet(moduli)
	if err != nil {
		t.Fatal(err)
	}
	for i := range moduli {
		if set[i] != wantVuln[i] {
			t.Errorf("index %d: got %v want %v", i, set[i], wantVuln[i])
		}
	}
}

func TestFactorCtxCancelled(t *testing.T) {
	ps := corpus(t, 9, 10, 64)
	moduli := make([]*big.Int, 0, 5)
	for i := 0; i+1 < len(ps); i += 2 {
		moduli = append(moduli, new(big.Int).Mul(ps[i], ps[i+1]))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := FactorCtx(ctx, moduli); !errors.Is(err, context.Canceled) {
		t.Fatalf("FactorCtx err = %v, want wrapped context.Canceled", err)
	}
	// Uncancelled FactorCtx matches Factor.
	got, err := FactorCtx(context.Background(), moduli)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Factor(moduli)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("FactorCtx results = %d, Factor = %d", len(got), len(want))
	}
}

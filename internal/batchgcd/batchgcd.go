// Package batchgcd factors RSA moduli that share prime factors, using
// Bernstein's quasilinear batch GCD algorithm as adapted by Heninger,
// Durumeric, Wustrow and Halderman (USENIX Security 2012) and scaled up in
// Hastings, Fried and Heninger (IMC 2016).
//
// Given moduli N1..Nn the algorithm computes P = ∏Ni with a product tree,
// reduces zi = P mod Ni² with a remainder tree, and reports
// gcd(Ni, zi/Ni) ≠ 1 whenever Ni shares a factor with at least one other
// modulus in the batch. Total cost is quasilinear in the input size,
// versus quadratic for the naive all-pairs comparison (also provided here
// as the baseline the paper measures against).
package batchgcd

import (
	"context"
	"errors"
	"fmt"
	"math/big"

	"github.com/factorable/weakkeys/internal/kernel"
	"github.com/factorable/weakkeys/internal/prodtree"
)

// Result is the outcome of a batch GCD run for one input modulus.
type Result struct {
	// Index of the modulus in the input slice.
	Index int
	// Divisor is a nontrivial common divisor shared with at least one
	// other input modulus. For the dominant shared-single-prime failure
	// mode this is the shared prime p itself; when both prime factors are
	// shared with other moduli (e.g. the IBM 9-prime clique) the divisor
	// can equal the modulus, and FactorPairwise recovers the split.
	Divisor *big.Int
}

// ErrNoInput is returned when Factor is called with no moduli.
var ErrNoInput = errors.New("batchgcd: no input moduli")

// Factor runs the batch GCD over moduli and returns one Result per
// vulnerable modulus (a modulus sharing a factor with any other input).
// Duplicate moduli are NOT reported as vulnerable against themselves:
// exact duplicates are skipped by deduplicating internally, matching the
// paper's pipeline which deduplicates the 81M distinct moduli first.
// Input values are not modified.
func Factor(moduli []*big.Int) ([]Result, error) {
	return FactorCtx(context.Background(), moduli)
}

// FactorCtx is Factor with cancellation: the context is plumbed into the
// product- and remainder-tree builds and into the final GCD sweep, all
// scheduled on the shared internal/kernel pool with cancellation
// checked per work chunk, so a cancelled run returns promptly with an
// error wrapping the context's.
func FactorCtx(ctx context.Context, moduli []*big.Int) ([]Result, error) {
	if len(moduli) == 0 {
		return nil, ErrNoInput
	}
	distinct, backrefs := dedup(moduli)
	tree, err := prodtree.NewCtx(ctx, distinct)
	if err != nil {
		return nil, err
	}
	rems, err := tree.RemainderTreeSquaredCtx(ctx, tree.Root())
	if err != nil {
		return nil, err
	}
	// The per-modulus Quo+GCD sweeps are independent; fan them out on
	// the pool into an index-aligned divisor slice, then collect in
	// input order so the output stays byte-stable regardless of
	// scheduling.
	eng := kernel.FromContext(ctx)
	divs := make([]*big.Int, len(distinct))
	err = eng.Run(ctx, len(distinct), func(i int, a *kernel.Arena) {
		n := distinct[i]
		z, g := a.Get(), a.Get()
		z.Quo(rems[i], n) // zi/Ni — exact cofactor of P/Ni modulo Ni
		g.GCD(nil, nil, z, n)
		if g.Cmp(bigOne) != 0 {
			divs[i] = new(big.Int).Set(g)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("batchgcd: gcd sweep cancelled: %w", err)
	}
	var results []Result
	for i := range distinct {
		if divs[i] == nil {
			continue
		}
		for _, orig := range backrefs[i] {
			results = append(results, Result{Index: orig, Divisor: divs[i]})
		}
	}
	return results, nil
}

var bigOne = big.NewInt(1)

// dedup returns the distinct moduli and, for each, the list of original
// indices that held that value.
func dedup(moduli []*big.Int) (distinct []*big.Int, backrefs [][]int) {
	seen := make(map[string]int, len(moduli))
	for i, m := range moduli {
		key := string(m.Bytes())
		if j, ok := seen[key]; ok {
			backrefs[j] = append(backrefs[j], i)
			continue
		}
		seen[key] = len(distinct)
		distinct = append(distinct, m)
		backrefs = append(backrefs, []int{i})
	}
	return distinct, backrefs
}

// SplitModulus splits modulus N given one nontrivial divisor d, returning
// the two factors (p, q) with p <= q, or an error if d does not divide N
// or the division is trivial. When the batch-GCD divisor equals N itself
// (both primes shared), callers should fall back to FactorPairwise over
// the vulnerable subset to recover the split.
func SplitModulus(n, d *big.Int) (p, q *big.Int, err error) {
	if d.Sign() <= 0 || d.Cmp(bigOne) == 0 || d.Cmp(n) >= 0 {
		return nil, nil, errors.New("batchgcd: divisor is trivial for this modulus")
	}
	var rem big.Int
	q = new(big.Int)
	q.QuoRem(n, d, &rem)
	if rem.Sign() != 0 {
		return nil, nil, errors.New("batchgcd: divisor does not divide modulus")
	}
	p = new(big.Int).Set(d)
	if p.Cmp(q) > 0 {
		p, q = q, p
	}
	return p, q, nil
}

// FactorPairwise is the naive quadratic baseline: it computes gcd for
// every pair of distinct moduli. It is vastly slower than Factor for
// large inputs — the paper notes it is infeasible at the 81M scale — but
// it recovers exact per-pair divisors, which Factor cannot when a modulus
// shares both of its primes with other inputs. The benchmark harness for
// Figure 2 measures both.
func FactorPairwise(moduli []*big.Int) ([]Result, error) {
	if len(moduli) == 0 {
		return nil, ErrNoInput
	}
	found := make(map[int]*big.Int)
	var g big.Int
	for i := 0; i < len(moduli); i++ {
		for j := i + 1; j < len(moduli); j++ {
			if moduli[i].Cmp(moduli[j]) == 0 {
				continue // duplicates are the same key, not a shared factor
			}
			g.GCD(nil, nil, moduli[i], moduli[j])
			if g.Cmp(bigOne) == 0 {
				continue
			}
			for _, idx := range [2]int{i, j} {
				if prev, ok := found[idx]; !ok || prev.Cmp(moduli[idx]) == 0 {
					// Prefer a proper divisor over the degenerate
					// whole-modulus divisor.
					found[idx] = new(big.Int).Set(&g)
				}
			}
		}
	}
	results := make([]Result, 0, len(found))
	for i := 0; i < len(moduli); i++ {
		if d, ok := found[i]; ok {
			results = append(results, Result{Index: i, Divisor: d})
		}
	}
	return results, nil
}

// VulnerableSet runs Factor and returns the set of vulnerable input
// indices, a convenience for callers that only need membership.
func VulnerableSet(moduli []*big.Int) (map[int]bool, error) {
	return VulnerableSetCtx(context.Background(), moduli)
}

// VulnerableSetCtx is VulnerableSet with cancellation, so the
// convenience path is as abortable as the full FactorCtx it wraps.
func VulnerableSetCtx(ctx context.Context, moduli []*big.Int) (map[int]bool, error) {
	res, err := FactorCtx(ctx, moduli)
	if err != nil {
		return nil, err
	}
	set := make(map[int]bool, len(res))
	for _, r := range res {
		set[r.Index] = true
	}
	return set, nil
}

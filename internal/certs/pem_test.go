package certs

import (
	"bytes"
	"math/big"
	"testing"
)

func TestCertPEMRoundTrip(t *testing.T) {
	c, _ := testCert(t, 40)
	var buf bytes.Buffer
	if err := c.EncodePEM(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("BEGIN WEAKKEYS CERTIFICATE")) {
		t.Error("PEM header missing")
	}
	got, err := ParsePEM(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.N.Cmp(c.N) != 0 || got.Subject != c.Subject {
		t.Error("PEM round trip mismatch")
	}
}

func TestParsePEMSkipsForeignBlocks(t *testing.T) {
	c, _ := testCert(t, 41)
	var buf bytes.Buffer
	EncodeModulusPEM(&buf, big.NewInt(12345))
	if err := c.EncodePEM(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParsePEM(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.N.Cmp(c.N) != 0 {
		t.Error("wrong block parsed")
	}
}

func TestParsePEMNoBlock(t *testing.T) {
	if _, err := ParsePEM([]byte("not pem at all")); err == nil {
		t.Error("garbage accepted")
	}
	var buf bytes.Buffer
	EncodeModulusPEM(&buf, big.NewInt(7))
	if _, err := ParsePEM(buf.Bytes()); err == nil {
		t.Error("modulus-only input should not yield a certificate")
	}
}

func TestModulusPEMRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := []*big.Int{big.NewInt(0xABCDEF), big.NewInt(0x123456789)}
	for _, n := range want {
		if err := EncodeModulusPEM(&buf, n); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ParseModulusPEMs(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d moduli", len(got))
	}
	for i := range want {
		if got[i].Cmp(want[i]) != 0 {
			t.Errorf("modulus %d mismatch", i)
		}
	}
	if out, err := ParseModulusPEMs(nil); err != nil || len(out) != 0 {
		t.Error("empty input should parse to nothing")
	}
}

// Package certs implements a lightweight X.509-style certificate: enough
// structure for the study (subject distinguished names, subject
// alternative names, RSA public keys, self-signatures, DER encoding via
// encoding/asn1) without the full generality of crypto/x509.
//
// The paper's pipeline treats certificates as data harvested by scans:
// what matters is the RSA modulus, the distinguished-name fields used for
// vendor fingerprinting (Section 3.3.1), the SANs (Fritz!Box
// identification), and byte-exact round-tripping so that distinct-
// certificate and distinct-modulus dedup behave like the real corpus.
package certs

import (
	"crypto/sha256"
	"encoding/asn1"
	"errors"
	"fmt"
	"math/big"
	"time"
)

// Name is a simplified distinguished name covering the fields the paper's
// fingerprints rely on.
type Name struct {
	CommonName         string
	Organization       string
	OrganizationalUnit string
	Country            string
	Locality           string
}

// String renders the name in the conventional comma-separated form, e.g.
// "CN=system generated, O=Juniper".
func (n Name) String() string {
	out := ""
	add := func(k, v string) {
		if v == "" {
			return
		}
		if out != "" {
			out += ", "
		}
		out += k + "=" + v
	}
	add("CN", n.CommonName)
	add("O", n.Organization)
	add("OU", n.OrganizationalUnit)
	add("C", n.Country)
	add("L", n.Locality)
	return out
}

// Certificate is the in-memory form. Issuer == Subject for the
// self-signed device certificates that dominate the study.
type Certificate struct {
	SerialNumber *big.Int
	Subject      Name
	Issuer       Name
	NotBefore    time.Time
	NotAfter     time.Time
	// DNSNames are subject alternative names (e.g. fritz.box).
	DNSNames []string
	// N and E form the RSA public key.
	N *big.Int
	E int
	// Signature is the raw RSA signature over the TBS digest; see Sign.
	Signature []byte
}

// der mirrors Certificate for asn1 marshaling.
type der struct {
	Serial    *big.Int
	Subject   derName
	Issuer    derName
	NotBefore int64 // Unix seconds; asn1 UTCTime caps at 2049 anyway
	NotAfter  int64
	DNSNames  []string `asn1:"optional,omitempty"`
	N         *big.Int
	E         int
	Signature []byte
}

type derName struct {
	CN, O, OU, C, L string
}

// Marshal encodes the certificate to DER bytes.
func (c *Certificate) Marshal() ([]byte, error) {
	if c.N == nil || c.SerialNumber == nil {
		return nil, errors.New("certs: missing modulus or serial")
	}
	d := der{
		Serial:    c.SerialNumber,
		Subject:   derName{c.Subject.CommonName, c.Subject.Organization, c.Subject.OrganizationalUnit, c.Subject.Country, c.Subject.Locality},
		Issuer:    derName{c.Issuer.CommonName, c.Issuer.Organization, c.Issuer.OrganizationalUnit, c.Issuer.Country, c.Issuer.Locality},
		NotBefore: c.NotBefore.Unix(),
		NotAfter:  c.NotAfter.Unix(),
		DNSNames:  c.DNSNames,
		N:         c.N,
		E:         c.E,
		Signature: c.Signature,
	}
	return asn1.Marshal(d)
}

// Parse decodes DER bytes produced by Marshal. Trailing data is an error,
// as it would be for a strict DER parser.
func Parse(data []byte) (*Certificate, error) {
	var d der
	rest, err := asn1.Unmarshal(data, &d)
	if err != nil {
		return nil, fmt.Errorf("certs: parse: %w", err)
	}
	if len(rest) != 0 {
		return nil, errors.New("certs: trailing data after certificate")
	}
	return &Certificate{
		SerialNumber: d.Serial,
		Subject:      Name{d.Subject.CN, d.Subject.O, d.Subject.OU, d.Subject.C, d.Subject.L},
		Issuer:       Name{d.Issuer.CN, d.Issuer.O, d.Issuer.OU, d.Issuer.C, d.Issuer.L},
		NotBefore:    time.Unix(d.NotBefore, 0).UTC(),
		NotAfter:     time.Unix(d.NotAfter, 0).UTC(),
		DNSNames:     d.DNSNames,
		N:            d.N,
		E:            d.E,
		Signature:    d.Signature,
	}, nil
}

// tbsDigest hashes everything except the signature. The digest is what
// Sign raises to the private exponent.
func (c *Certificate) tbsDigest() ([]byte, error) {
	tmp := *c
	tmp.Signature = nil
	raw, err := tmp.Marshal()
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(raw)
	return sum[:], nil
}

// Sign self-signs the certificate with the RSA private exponent d for the
// certificate's own public key: signature = digest^d mod N. This is
// textbook RSA over a SHA-256 digest — no PKCS#1 padding — which is all
// the simulation needs; the study never relies on signature strength,
// only on signatures failing to verify after bit corruption
// (Section 3.3.5 notes exactly this for the bit-error certificates).
func (c *Certificate) Sign(d *big.Int) error {
	digest, err := c.tbsDigest()
	if err != nil {
		return err
	}
	// Reduce the digest modulo N first: the simulation's moduli may be
	// smaller than a SHA-256 digest.
	m := new(big.Int).SetBytes(digest)
	m.Mod(m, c.N)
	sig := new(big.Int).Exp(m, d, c.N)
	c.Signature = sig.Bytes()
	return nil
}

// SignWith signs the certificate with an issuer's key (CA issuance):
// signature = digest^issuerD mod issuerN. Verify with the issuer
// certificate passed as the override.
func (c *Certificate) SignWith(issuerN, issuerD *big.Int) error {
	digest, err := c.tbsDigest()
	if err != nil {
		return err
	}
	m := new(big.Int).SetBytes(digest)
	m.Mod(m, issuerN)
	c.Signature = m.Exp(m, issuerD, issuerN).Bytes()
	return nil
}

// Verify checks the self-signature against the certificate's own public
// key (or against override if non-nil, for chained checks).
func (c *Certificate) Verify(override *Certificate) error {
	if len(c.Signature) == 0 {
		return errors.New("certs: unsigned certificate")
	}
	n, e := c.N, c.E
	if override != nil {
		n, e = override.N, override.E
	}
	digest, err := c.tbsDigest()
	if err != nil {
		return err
	}
	sig := new(big.Int).SetBytes(c.Signature)
	m := new(big.Int).Exp(sig, big.NewInt(int64(e)), n)
	want := new(big.Int).SetBytes(digest)
	want.Mod(want, n)
	if m.Cmp(want) != 0 {
		return errors.New("certs: signature verification failed")
	}
	return nil
}

// Fingerprint returns the SHA-256 of the DER encoding, the identity used
// for distinct-certificate dedup throughout the pipeline.
func (c *Certificate) Fingerprint() ([32]byte, error) {
	raw, err := c.Marshal()
	if err != nil {
		return [32]byte{}, err
	}
	return sha256.Sum256(raw), nil
}

// ModulusKey returns a map key identifying the RSA modulus, used for
// distinct-modulus dedup.
func (c *Certificate) ModulusKey() string {
	return string(c.N.Bytes())
}

// SelfSigned builds and signs a certificate in one step.
func SelfSigned(serial *big.Int, subject Name, notBefore, notAfter time.Time, dnsNames []string, n *big.Int, e int, d *big.Int) (*Certificate, error) {
	c := &Certificate{
		SerialNumber: serial,
		Subject:      subject,
		Issuer:       subject,
		NotBefore:    notBefore,
		NotAfter:     notAfter,
		DNSNames:     dnsNames,
		N:            n,
		E:            e,
	}
	if d != nil {
		if err := c.Sign(d); err != nil {
			return nil, err
		}
	}
	return c, nil
}

package certs

import (
	"bytes"
	"math/big"
	"math/rand"
	"testing"
	"time"

	"github.com/factorable/weakkeys/internal/weakrsa"
)

// fuzzSeedCert builds a deterministic valid certificate for seeding.
func fuzzSeedCert(f *testing.F) []byte {
	f.Helper()
	k, err := weakrsa.GenerateKey(rand.New(rand.NewSource(99)), weakrsa.Options{Bits: 96})
	if err != nil {
		f.Fatal(err)
	}
	c, err := SelfSigned(big.NewInt(99), Name{CommonName: "fuzz-seed", Organization: "Fuzz"},
		time.Unix(0, 0), time.Unix(1<<40, 0), []string{"fritz.box"}, k.N, k.E, k.D)
	if err != nil {
		f.Fatal(err)
	}
	raw, err := c.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	return raw
}

// FuzzParse hardens the DER parser against arbitrary scan payloads: a
// certificate fetcher on the open internet sees truncated, corrupted and
// adversarial bytes (the paper's pipeline parsed 131M certificates from
// five different collection methodologies). Parse must never panic, and
// anything it accepts with its mandatory fields present must re-marshal
// and re-parse to the same modulus.
func FuzzParse(f *testing.F) {
	raw := fuzzSeedCert(f)
	f.Add(raw)
	f.Add([]byte{})
	f.Add([]byte{0x30, 0x03, 0x02, 0x01, 0x01})
	f.Add(raw[:len(raw)/2])
	flipped := append([]byte(nil), raw...)
	flipped[len(flipped)/3] ^= 0x40
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, err := Parse(data)
		if err != nil {
			return
		}
		re, err := parsed.Marshal()
		if err != nil {
			if parsed.N == nil || parsed.SerialNumber == nil {
				return // degenerate but detectable; Marshal refuses
			}
			t.Fatalf("accepted certificate fails to re-marshal: %v", err)
		}
		again, err := Parse(re)
		if err != nil {
			t.Fatalf("re-marshaled certificate fails to parse: %v", err)
		}
		if again.N.Cmp(parsed.N) != 0 {
			t.Fatal("modulus changed across re-marshal round trip")
		}
	})
}

// FuzzParseModulusPEMs covers the PEM ingestion path of cmd/batchgcd.
func FuzzParseModulusPEMs(f *testing.F) {
	var buf bytes.Buffer
	if err := EncodeModulusPEM(&buf, big.NewInt(0xABCDEF)); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("-----BEGIN WEAKKEYS RSA MODULUS-----\nnot base64!!\n-----END WEAKKEYS RSA MODULUS-----\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		mods, err := ParseModulusPEMs(data)
		if err != nil {
			return
		}
		for _, m := range mods {
			if m == nil {
				t.Fatal("nil modulus returned without error")
			}
		}
	})
}

package certs

import (
	"math/big"
	"math/rand"
	"testing"
	"time"

	"github.com/factorable/weakkeys/internal/weakrsa"
)

func testKey(t *testing.T, seed int64) *weakrsa.PrivateKey {
	t.Helper()
	k, err := weakrsa.GenerateKey(rand.New(rand.NewSource(seed)), weakrsa.Options{Bits: 128})
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func testCert(t *testing.T, seed int64) (*Certificate, *weakrsa.PrivateKey) {
	t.Helper()
	k := testKey(t, seed)
	c, err := SelfSigned(
		big.NewInt(1000+seed),
		Name{CommonName: "system generated", Organization: "TestVendor"},
		time.Date(2012, 3, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2022, 3, 1, 0, 0, 0, 0, time.UTC),
		[]string{"device.local"},
		k.N, k.E, k.D,
	)
	if err != nil {
		t.Fatal(err)
	}
	return c, k
}

func TestMarshalParseRoundTrip(t *testing.T) {
	c, _ := testCert(t, 1)
	raw, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.SerialNumber.Cmp(c.SerialNumber) != 0 {
		t.Error("serial mismatch")
	}
	if got.Subject != c.Subject || got.Issuer != c.Issuer {
		t.Error("name mismatch")
	}
	if !got.NotBefore.Equal(c.NotBefore) || !got.NotAfter.Equal(c.NotAfter) {
		t.Error("validity mismatch")
	}
	if len(got.DNSNames) != 1 || got.DNSNames[0] != "device.local" {
		t.Errorf("SANs: %v", got.DNSNames)
	}
	if got.N.Cmp(c.N) != 0 || got.E != c.E {
		t.Error("public key mismatch")
	}
	if string(got.Signature) != string(c.Signature) {
		t.Error("signature mismatch")
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte{0xDE, 0xAD}); err == nil {
		t.Error("garbage accepted")
	}
	c, _ := testCert(t, 2)
	raw, _ := c.Marshal()
	if _, err := Parse(append(raw, 0x00)); err == nil {
		t.Error("trailing data accepted")
	}
}

func TestMarshalRequiresFields(t *testing.T) {
	c := &Certificate{}
	if _, err := c.Marshal(); err == nil {
		t.Error("empty certificate marshaled")
	}
}

func TestSignVerify(t *testing.T) {
	c, _ := testCert(t, 3)
	if err := c.Verify(nil); err != nil {
		t.Errorf("valid signature rejected: %v", err)
	}
}

func TestVerifyFailsAfterBitError(t *testing.T) {
	// The paper observed bit-error certificates whose signatures of
	// course fail to verify; reproduce that.
	c, _ := testCert(t, 4)
	c.N = weakrsa.CorruptBits(c.N, 7)
	if err := c.Verify(nil); err == nil {
		t.Error("signature verified despite corrupted modulus")
	}
}

func TestVerifyFailsTamperedSubject(t *testing.T) {
	c, _ := testCert(t, 5)
	c.Subject.Organization = "Mallory"
	if err := c.Verify(nil); err == nil {
		t.Error("signature verified despite tampered subject")
	}
}

func TestVerifyUnsigned(t *testing.T) {
	k := testKey(t, 6)
	c, err := SelfSigned(big.NewInt(1), Name{CommonName: "x"}, time.Now(), time.Now(), nil, k.N, k.E, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Verify(nil); err == nil {
		t.Error("unsigned certificate verified")
	}
}

func TestVerifyWithOverrideKey(t *testing.T) {
	// MITM substitution (Internet Rimon, Section 3.3.3): the ISP swaps
	// the public key, leaving the rest of the certificate (including the
	// signature) unchanged. The self-signature necessarily breaks — both
	// because the signed bytes changed and because the key did. The
	// untouched original still verifies.
	c, _ := testCert(t, 7)
	orig := *c
	k2 := testKey(t, 8)
	c.N = k2.N
	if err := c.Verify(nil); err == nil {
		t.Error("substituted key should break the self-signature")
	}
	if err := c.Verify(&orig); err == nil {
		t.Error("substitution changes the signed bytes; no key can verify it")
	}
	if err := orig.Verify(nil); err != nil {
		t.Errorf("original must still verify: %v", err)
	}
}

func TestFingerprintStability(t *testing.T) {
	c, _ := testCert(t, 9)
	f1, err := c.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	f2, _ := c.Fingerprint()
	if f1 != f2 {
		t.Error("fingerprint not deterministic")
	}
	c2, _ := testCert(t, 10)
	f3, _ := c2.Fingerprint()
	if f1 == f3 {
		t.Error("distinct certificates share a fingerprint")
	}
}

func TestModulusKey(t *testing.T) {
	c, k := testCert(t, 11)
	if c.ModulusKey() != string(k.N.Bytes()) {
		t.Error("ModulusKey mismatch")
	}
}

func TestNameString(t *testing.T) {
	n := Name{CommonName: "Default Common Name", Organization: "Default Organization", OrganizationalUnit: "Default Unit"}
	want := "CN=Default Common Name, O=Default Organization, OU=Default Unit"
	if got := n.String(); got != want {
		t.Errorf("got %q want %q", got, want)
	}
	if (Name{}).String() != "" {
		t.Error("empty name should render empty")
	}
	if got := (Name{Country: "DE"}).String(); got != "C=DE" {
		t.Errorf("got %q", got)
	}
}

func TestRoundTripEmptySANs(t *testing.T) {
	k := testKey(t, 12)
	c, err := SelfSigned(big.NewInt(5), Name{CommonName: "a"}, time.Unix(0, 0), time.Unix(1, 0), nil, k.N, k.E, k.D)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.DNSNames) != 0 {
		t.Errorf("SANs should be empty, got %v", got.DNSNames)
	}
}

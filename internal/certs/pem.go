package certs

import (
	"encoding/pem"
	"errors"
	"fmt"
	"io"
	"math/big"
)

// PEM block types used by this package. The certificate block carries the
// package's own DER encoding (it is not interoperable with RFC 5280 — see
// the package comment); the key blocks carry a minimal DER structure with
// the RSA parameters.
const (
	PEMCertificateType = "WEAKKEYS CERTIFICATE"
	PEMModulusType     = "WEAKKEYS RSA MODULUS"
)

// EncodePEM writes the certificate as a PEM block.
func (c *Certificate) EncodePEM(w io.Writer) error {
	der, err := c.Marshal()
	if err != nil {
		return err
	}
	return pem.Encode(w, &pem.Block{Type: PEMCertificateType, Bytes: der})
}

// ParsePEM reads the first certificate PEM block from data.
func ParsePEM(data []byte) (*Certificate, error) {
	for {
		var block *pem.Block
		block, data = pem.Decode(data)
		if block == nil {
			return nil, errors.New("certs: no certificate PEM block found")
		}
		if block.Type == PEMCertificateType {
			return Parse(block.Bytes)
		}
	}
}

// EncodeModulusPEM writes a bare RSA modulus as a PEM block, the
// interchange format cmd/keygen and cmd/batchgcd share with the hex
// format.
func EncodeModulusPEM(w io.Writer, n *big.Int) error {
	return pem.Encode(w, &pem.Block{Type: PEMModulusType, Bytes: n.Bytes()})
}

// ParseModulusPEMs reads every modulus PEM block from data.
func ParseModulusPEMs(data []byte) ([]*big.Int, error) {
	var out []*big.Int
	for {
		var block *pem.Block
		block, data = pem.Decode(data)
		if block == nil {
			break
		}
		if block.Type != PEMModulusType {
			continue
		}
		if len(block.Bytes) == 0 {
			return nil, fmt.Errorf("certs: empty modulus block %d", len(out))
		}
		out = append(out, new(big.Int).SetBytes(block.Bytes))
	}
	return out, nil
}

// Package cluster promotes the in-process keycheck shard snapshot to a
// multi-process deployment: N keyserverd replicas each own a
// placement-assigned subset of the hash-partitioned index (with
// replication), a router scatter-gathers /v1/check across the owners,
// and generation-tagged sync pulls propagate ingests between replicas
// without a fleet restart.
//
// The placement discipline is the same "shard without coordination"
// idea "Ten Years of ZMap" applies at the scan layer: every process
// derives the identical shard→replica map from nothing but the ordered
// replica list, so there is no membership service, no leader and no
// placement state to replicate. A replica knows which shards to index
// from its own address; the router knows whom to ask from the same
// arithmetic.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultReplication is the default number of replicas owning each
// shard — the minimum that survives one chaos-kill with no shard
// uncovered.
const DefaultReplication = 2

// Placement is the deterministic shard→replica assignment: rendezvous
// (highest-random-weight) hashing of each shard across the replica set,
// taking the top Replication scorers as the shard's owners. Rendezvous
// hashing gives the two properties the cluster leans on: every party
// computes the same map independently, and removing a replica moves
// only the shards it owned — the survivors' assignments are untouched,
// so a chaos-kill never triggers a placement-wide reshuffle.
//
// A Placement is immutable after New.
type Placement struct {
	replicas    []string
	shards      int
	replication int
	// owners[s] is the ordered owner list for shard s: owners[s][0] is
	// the primary (highest score), the rest are the replication peers
	// in preference order.
	owners [][]string
	// owned[r] is the sorted shard list replica r owns (any position).
	owned map[string][]int
}

// NewPlacement computes the placement for the given ordered replica
// list. Replica names must be unique and non-empty (by convention the
// advertised host:port). replication is clamped to the replica count;
// <=0 selects DefaultReplication.
func NewPlacement(replicas []string, shards, replication int) (*Placement, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("cluster: placement needs at least one replica")
	}
	if shards <= 0 {
		return nil, fmt.Errorf("cluster: placement needs a positive shard count, got %d", shards)
	}
	seen := make(map[string]bool, len(replicas))
	for _, r := range replicas {
		if r == "" {
			return nil, fmt.Errorf("cluster: empty replica name")
		}
		if seen[r] {
			return nil, fmt.Errorf("cluster: duplicate replica %q", r)
		}
		seen[r] = true
	}
	if replication <= 0 {
		replication = DefaultReplication
	}
	if replication > len(replicas) {
		replication = len(replicas)
	}
	p := &Placement{
		replicas:    append([]string(nil), replicas...),
		shards:      shards,
		replication: replication,
		owners:      make([][]string, shards),
		owned:       make(map[string][]int, len(replicas)),
	}
	type scored struct {
		replica string
		score   uint64
	}
	for s := 0; s < shards; s++ {
		ranked := make([]scored, len(replicas))
		for i, r := range replicas {
			ranked[i] = scored{r, rendezvousScore(s, r)}
		}
		sort.Slice(ranked, func(i, j int) bool {
			if ranked[i].score != ranked[j].score {
				return ranked[i].score > ranked[j].score
			}
			return ranked[i].replica < ranked[j].replica
		})
		owners := make([]string, replication)
		for i := range owners {
			owners[i] = ranked[i].replica
			p.owned[ranked[i].replica] = append(p.owned[ranked[i].replica], s)
		}
		p.owners[s] = owners
	}
	return p, nil
}

// rendezvousScore is the highest-random-weight score of (shard,
// replica), an FNV-1a over both identities.
func rendezvousScore(shard int, replica string) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "shard/%d|replica/%s", shard, replica)
	return h.Sum64()
}

// Shards returns the shard count the placement was computed for.
func (p *Placement) Shards() int { return p.shards }

// Replication returns the effective replication factor.
func (p *Placement) Replication() int { return p.replication }

// Replicas returns the ordered replica list.
func (p *Placement) Replicas() []string { return append([]string(nil), p.replicas...) }

// Owners returns shard s's owner list, primary first.
func (p *Placement) Owners(s int) []string {
	if s < 0 || s >= p.shards {
		return nil
	}
	return append([]string(nil), p.owners[s]...)
}

// OwnedBy returns the sorted shards replica owns (in any owner
// position); nil when the replica is not in the placement.
func (p *Placement) OwnedBy(replica string) []int {
	owned, ok := p.owned[replica]
	if !ok {
		return nil
	}
	return append([]int(nil), owned...)
}

// Uncovered returns the shards for which none of the owners satisfies
// alive — the degraded set the router must disclose when it cannot
// reach full coverage.
func (p *Placement) Uncovered(alive func(replica string) bool) []int {
	var out []int
	for s, owners := range p.owners {
		covered := false
		for _, r := range owners {
			if alive(r) {
				covered = true
				break
			}
		}
		if !covered {
			out = append(out, s)
		}
	}
	return out
}

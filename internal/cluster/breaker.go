package cluster

import (
	"sync"
	"time"
)

// BreakerState enumerates the circuit breaker's states.
type BreakerState int

const (
	// BreakerClosed: requests flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the replica has failed repeatedly; requests are
	// refused locally until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: the cooldown elapsed and exactly one probe
	// request is in flight; its outcome closes or re-opens the circuit.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Breaker is a per-replica circuit breaker with a half-open probe
// state: Threshold consecutive failures open the circuit, Cooldown
// later a single request is let through, and its outcome decides
// between closing again and another full cooldown. Keeping the breaker
// beside (not inside) the health prober means a replica that fails real
// traffic trips even while its /readyz still answers — the wedged-but-
// listening failure mode.
type Breaker struct {
	// Threshold is the consecutive-failure count that opens the
	// circuit (default 3).
	Threshold int
	// Cooldown is how long the circuit stays open before allowing the
	// half-open probe (default 1s).
	Cooldown time.Duration
	// now is injectable for tests; nil means time.Now.
	now func() time.Time

	mu       sync.Mutex
	state    BreakerState
	failures int
	openedAt time.Time
	probing  bool
	opens    int64
}

func (b *Breaker) clock() time.Time {
	if b.now != nil {
		return b.now()
	}
	return time.Now()
}

func (b *Breaker) threshold() int {
	if b.Threshold > 0 {
		return b.Threshold
	}
	return 3
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown > 0 {
		return b.Cooldown
	}
	return time.Second
}

// Allow reports whether a request may be sent. On an open circuit whose
// cooldown has elapsed it grants exactly one half-open probe slot; the
// caller must follow up with Report for every granted Allow.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.clock().Sub(b.openedAt) < b.cooldown() {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	case BreakerHalfOpen:
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
	return false
}

// Report records the outcome of a request that Allow admitted. Success
// closes the circuit (from any state); failure increments the
// consecutive count, opens the circuit at the threshold, and re-opens
// it immediately from half-open.
func (b *Breaker) Report(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.state = BreakerClosed
		b.failures = 0
		b.probing = false
		return
	}
	switch b.state {
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = b.clock()
		b.probing = false
		b.opens++
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold() {
			b.state = BreakerOpen
			b.openedAt = b.clock()
			b.opens++
		}
	}
}

// Forget releases an Allow whose outcome says nothing about the
// replica — the router cancelled the request itself (a lost hedge race,
// the client going away). The probe slot is returned without touching
// the failure count in either direction.
func (b *Breaker) Forget() {
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

// Ready reports whether the breaker would admit a request right now,
// without consuming the half-open probe slot: closed, open with the
// cooldown elapsed, or half-open with the probe slot free. The sending
// path must still call Allow (which does consume the slot).
func (b *Breaker) Ready() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		return b.clock().Sub(b.openedAt) >= b.cooldown()
	case BreakerHalfOpen:
		return !b.probing
	}
	return false
}

// State returns the current state (resolving an elapsed cooldown is
// left to Allow; State is a pure read).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens counts closed→open (and half-open→open) transitions — the
// cluster_breaker_opens_total feed.
func (b *Breaker) Opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}

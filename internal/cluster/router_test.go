package cluster

import (
	"context"
	"math/big"
	"net/http"
	"testing"
	"time"

	"github.com/factorable/weakkeys/internal/faults"
	"github.com/factorable/weakkeys/internal/keycheck"
	"github.com/factorable/weakkeys/internal/telemetry"
)

// TestRouterVerdicts drives the four golden inputs through the routed
// path with every replica healthy: verdicts must match what a single
// full-corpus keyserverd would answer, with no Partial leaking out.
func TestRouterVerdicts(t *testing.T) {
	rt, _ := newTestCluster(t, 3, 8, 2)
	ctx := context.Background()

	v := rt.Check(ctx, modN1)
	if v.Status != keycheck.StatusFactored || !v.Known {
		t.Errorf("N1 = %+v, want factored/known", v.Verdict)
	}
	if v.FactorP != p2.Text(16) || v.FactorQ != p1.Text(16) {
		t.Errorf("N1 factors %s,%s", v.FactorP, v.FactorQ)
	}
	if v.Partial || v.Degraded || v.Hops != 1 {
		t.Errorf("N1 partial=%v degraded=%v hops=%d, want definitive 1-hop", v.Partial, v.Degraded, v.Hops)
	}

	v = rt.Check(ctx, modN3)
	if v.Status != keycheck.StatusClean || !v.Known || v.Degraded {
		t.Errorf("N3 = %+v, want clean/known", v.Verdict)
	}

	v = rt.Check(ctx, modNc)
	if v.Status != keycheck.StatusClean || v.Known || v.Degraded || v.Partial {
		t.Errorf("Nc = %+v degraded=%v, want clean/novel/full-coverage", v.Verdict, v.Degraded)
	}
	if len(v.UnreachableShards) != 0 {
		t.Errorf("Nc unreachable shards %v with a healthy cluster", v.UnreachableShards)
	}
	if v.Hops < 2 {
		t.Errorf("Nc hops = %d, want a scatter beyond the home replica", v.Hops)
	}

	v = rt.Check(ctx, modNs)
	if v.Status != keycheck.StatusSharedFactor || v.Known || v.Degraded {
		t.Errorf("Ns = %+v, want shared_factor/novel", v.Verdict)
	}
	if v.Divisor != p3.Text(16) {
		t.Errorf("Ns divisor %s, want %s", v.Divisor, p3.Text(16))
	}
	if v.FactorP != r1.Text(16) || v.FactorQ != p3.Text(16) {
		t.Errorf("Ns factors %s,%s", v.FactorP, v.FactorQ)
	}
}

// TestRouterFailover kills the primary owner of N1's home shard: the
// routed check must fail over to the surviving owner and still come
// back definitive — no degradation with replication 2 and one loss.
func TestRouterFailover(t *testing.T) {
	rt, replicas := newTestCluster(t, 3, 8, 2)
	ctx := context.Background()
	p := rt.Placement()

	home := keycheck.ShardOf(modN1, p.Shards())
	dead := p.Owners(home)[0]
	replicaByAddr(t, replicas, dead).srv.Close()

	v := rt.Check(ctx, modN1)
	if v.Status != keycheck.StatusFactored || !v.Known || v.Degraded {
		t.Errorf("N1 with dead primary = %+v degraded=%v, want factored/known", v.Verdict, v.Degraded)
	}
	if v.Replica == dead {
		t.Errorf("answer attributed to the dead replica %s", dead)
	}
	if v.Hops < 2 {
		t.Errorf("hops = %d, want a failover hop", v.Hops)
	}
	if got := rt.Replica(dead).RequestFailures(); got < 1 {
		t.Errorf("dead replica request failures = %d, want >= 1", got)
	}

	// Novel scatter still covers every shard through surviving owners.
	v = rt.Check(ctx, modNs)
	if v.Status != keycheck.StatusSharedFactor || v.Degraded {
		t.Errorf("Ns with dead replica = %+v degraded=%v, want shared_factor", v.Verdict, v.Degraded)
	}

	// Enough consecutive failures open the dead replica's breaker.
	for i := 0; i < 4; i++ {
		rt.Check(ctx, modNc)
	}
	if rt.Replica(dead).Breaker.Opens() < 1 {
		t.Errorf("dead replica breaker never opened (state %v)", rt.Replica(dead).Breaker.State())
	}
}

// TestRouterDegraded kills two of three replicas: with replication 2
// some shards lose both owners, and a novel check must degrade to a
// partial verdict naming those shards instead of failing.
func TestRouterDegraded(t *testing.T) {
	rt, replicas := newTestCluster(t, 3, 8, 2)
	ctx := context.Background()
	p := rt.Placement()

	survivor := replicas[0].addr
	for _, rep := range replicas[1:] {
		rep.srv.Close()
	}
	alive := func(r string) bool { return r == survivor }
	wantUncovered := p.Uncovered(alive)
	if len(wantUncovered) == 0 {
		t.Fatal("fixture lost its bite: one survivor still covers every shard")
	}

	v := rt.Check(ctx, modNc)
	if !v.Degraded {
		t.Fatalf("two dead owners but verdict not degraded: %+v", v)
	}
	if v.Status != keycheck.StatusClean || v.Known {
		t.Errorf("Nc degraded = %+v, want clean/novel from partial coverage", v.Verdict)
	}
	if len(v.UnreachableShards) != len(wantUncovered) {
		t.Errorf("unreachable shards %v, want %v", v.UnreachableShards, wantUncovered)
	} else {
		for i, s := range wantUncovered {
			if v.UnreachableShards[i] != s {
				t.Errorf("unreachable shards %v, want %v", v.UnreachableShards, wantUncovered)
				break
			}
		}
	}
	if v.Partial {
		t.Error("router leaked the replica-level Partial flag; Degraded is the cluster-level signal")
	}
}

// TestRouterCrossShardIngest pins the cross-shard coverage fix: two
// moduli sharing a prime are ingested through the router after the
// build, homed in shards whose primary owners differ. Neither replica
// ever sees both moduli, so no ingest-time GCD can pair them — a clean
// member answer from the home owner must not short-circuit the scatter.
// (The old member fast path did, and reported both keys clean forever.)
func TestRouterCrossShardIngest(t *testing.T) {
	rt, replicas := newTestCluster(t, 3, 8, 2)
	ctx := context.Background()
	p := rt.Placement()

	// Two shards whose primary owners differ: with every replica healthy
	// the routed ingests land on different replicas.
	sA, sB := -1, -1
	for a := 0; a < p.Shards() && sA < 0; a++ {
		for b := 0; b < p.Shards(); b++ {
			if b != a && p.Owners(a)[0] != p.Owners(b)[0] {
				sA, sB = a, b
				break
			}
		}
	}
	if sA < 0 {
		t.Fatal("fixture lost its bite: every shard has the same primary owner")
	}

	// A fresh prime absent from the golden corpus, times odd cofactors
	// brute-forced to home each product in its target shard. The
	// cofactors need not be prime: the assertions are on Compromised,
	// not exact factors.
	shared := mustHex("eb1289b4ab6c3377")
	homedIn := func(shard int) *big.Int {
		c := mustHex("c9d2a6e12c43b285")
		two := big.NewInt(2)
		for i := 0; i < 1<<15; i++ {
			m := new(big.Int).Mul(shared, c)
			if keycheck.ShardOf(m, p.Shards()) == shard {
				return m
			}
			c.Add(c, two)
		}
		t.Fatalf("no cofactor homes a multiple of the shared prime in shard %d", shard)
		return nil
	}
	mA, mB := homedIn(sA), homedIn(sB)

	for _, m := range []*big.Int{mA, mB} {
		resp := rt.ingest(ctx, []string{m.Text(16)}, []*big.Int{m})
		if resp.DeltaModuli != 1 || resp.Degraded {
			t.Fatalf("routed ingest = %+v, want one novel modulus landed", resp)
		}
	}

	// Before any sync round each modulus is a clean member of its own
	// home owner; only the full scatter can pair it with its mate.
	for _, m := range []*big.Int{mA, mB} {
		v := rt.Check(ctx, m)
		if !v.Compromised() {
			t.Errorf("pre-sync check = %+v, want the scatter to find the shared prime", v.Verdict)
		}
		if v.Degraded {
			t.Errorf("pre-sync check degraded with a healthy cluster: %+v", v)
		}
	}

	// Anti-entropy: each home owner pulls the other's journal, and the
	// foreign modulus re-labels its owned mate even though the foreign
	// key's own home shard is not indexed there.
	addrs := make([]string, len(replicas))
	for i, rep := range replicas {
		addrs[i] = rep.addr
	}
	syncers := make([]*Syncer, len(replicas))
	for i, rep := range replicas {
		syncers[i] = &Syncer{Self: rep.addr, Peers: addrs, Service: rep.svc, Metrics: telemetry.New()}
	}
	for round := 0; round < 2; round++ {
		for _, s := range syncers {
			s.PullOnce(ctx)
		}
	}
	for _, pr := range []struct {
		owner string
		m     *big.Int
	}{
		{p.Owners(sA)[0], mA},
		{p.Owners(sB)[0], mB},
	} {
		snap := replicaByAddr(t, replicas, pr.owner).svc.Index().Snapshot()
		if v := snap.Check(pr.m); !v.Compromised() {
			t.Errorf("after sync, owner %s still reports its member clean: %+v", pr.owner, v)
		}
	}

	// Routed checks stay compromised once the owners have converged.
	for _, m := range []*big.Int{mA, mB} {
		v := rt.Check(ctx, m)
		if !v.Compromised() || v.Degraded {
			t.Errorf("post-sync check = %+v degraded=%v, want compromised", v.Verdict, v.Degraded)
		}
	}
}

// TestRouterNegativeRetries: a negative Retries must mean "no retry
// rounds", not "no rounds at all" — the initial attempt still runs, so
// a healthy cluster answers definitively and ingests still land.
func TestRouterNegativeRetries(t *testing.T) {
	_, replicas := newTestCluster(t, 3, 8, 2)
	ctx := context.Background()
	addrs := make([]string, len(replicas))
	for i, rep := range replicas {
		addrs[i] = rep.addr
	}
	rt, err := NewRouter(RouterConfig{
		Replicas:       addrs,
		Shards:         8,
		Replication:    2,
		RequestTimeout: 5 * time.Second,
		Retries:        -1,
		Metrics:        telemetry.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	v := rt.Check(ctx, modNc)
	if v.Status != keycheck.StatusClean || v.Degraded || v.Partial {
		t.Errorf("Nc with retries=-1 = %+v degraded=%v, want the initial round to still run", v.Verdict, v.Degraded)
	}
	resp := rt.ingest(ctx, []string{modNc.Text(16)}, []*big.Int{modNc})
	if resp.DeltaModuli != 1 || resp.Degraded {
		t.Errorf("ingest with retries=-1 = %+v, want one modulus landed on the initial round", resp)
	}
}

// truncateChecks wraps a replica handler with a fault plan: scheduled
// /v1/check responses send headers plus a partial JSON body, then drop
// the connection — the replica dying mid-response.
func truncateChecks(next http.Handler, plan *faults.Plan) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/check" && plan.Next().Action == faults.Truncate {
			hj, ok := w.(http.Hijacker)
			if !ok {
				panic("test server does not support hijacking")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				return
			}
			conn.Write([]byte("HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: 500\r\n\r\n{\"status\":"))
			conn.Close()
			return
		}
		next.ServeHTTP(w, r)
	})
}

// TestRouterTruncatedBodyRetry makes the primary owner of N1's home
// shard die mid-response on every check: the unexpected-EOF body read
// must classify as a transient reset and fail over to the peer owner,
// with the verdict unharmed.
func TestRouterTruncatedBodyRetry(t *testing.T) {
	rt, replicas := newTestCluster(t, 3, 8, 2)
	ctx := context.Background()
	p := rt.Placement()

	home := keycheck.ShardOf(modN1, p.Shards())
	flaky := replicaByAddr(t, replicas, p.Owners(home)[0])
	inner := flaky.handler.load()
	flaky.handler.store(truncateChecks(inner, faults.NewEveryN(1, faults.Truncate)))

	v := rt.Check(ctx, modN1)
	if v.Status != keycheck.StatusFactored || !v.Known || v.Degraded {
		t.Errorf("N1 behind truncation = %+v degraded=%v, want factored/known", v.Verdict, v.Degraded)
	}
	if v.FactorP != p2.Text(16) || v.FactorQ != p1.Text(16) {
		t.Errorf("N1 factors %s,%s", v.FactorP, v.FactorQ)
	}
	if v.Replica == flaky.addr {
		t.Errorf("answer attributed to the truncating replica %s", flaky.addr)
	}
	if v.Hops < 2 {
		t.Errorf("hops = %d, want a retry against the peer owner", v.Hops)
	}
	if got := rt.Replica(flaky.addr).RequestFailures(); got < 1 {
		t.Errorf("truncating replica request failures = %d, want >= 1", got)
	}
}

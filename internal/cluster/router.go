package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/big"
	"net/http"
	"sort"
	"time"

	"github.com/factorable/weakkeys/internal/keycheck"
	"github.com/factorable/weakkeys/internal/scanner"
	"github.com/factorable/weakkeys/internal/telemetry"
)

// RoutedVerdict is the router's answer for one modulus: the replica
// verdict plus the routing disclosure. When every shard owner was
// reachable the verdict agrees with a single full-corpus process on
// compromise: the same keys come back compromised, though one a single
// process would have pre-factored at ingest time may surface here as
// shared_factor until sync converges the replicas' factored maps. When
// owners were down the router degrades instead of failing, answers from
// the coverage it has, and says so.
type RoutedVerdict struct {
	keycheck.Verdict
	// Replica names the replica whose verdict decided the answer.
	Replica string `json:"replica,omitempty"`
	// Hops counts replica requests spent on this answer (1 for the
	// factored-member fast path; more for scatter, retries and hedges).
	Hops int `json:"hops"`
	// Degraded marks an answer computed without full shard coverage: a
	// clean verdict here means "clean as far as the reachable corpus
	// knows", not clean. Compromised verdicts are definitive regardless.
	Degraded bool `json:"degraded,omitempty"`
	// UnreachableShards lists the shards no owner could answer for.
	UnreachableShards []int `json:"unreachable_shards,omitempty"`
}

// RouterConfig configures NewRouter. Zero values select the defaults
// noted per field.
type RouterConfig struct {
	// Replicas is the ordered replica address list (required; the order
	// must match what the replicas themselves were started with, since
	// placement is computed from it).
	Replicas []string
	// Shards is the cluster-wide shard count (default
	// keycheck.DefaultShards). Must match the replicas' shard count.
	Shards int
	// Replication is the placement replication factor (default
	// DefaultReplication, clamped to the replica count).
	Replication int
	// RequestTimeout bounds one replica round trip (default 10s).
	RequestTimeout time.Duration
	// Retries is how many extra scatter rounds a failed shard gets
	// (default 3; negative selects none — the initial attempt still
	// runs).
	Retries int
	// RetryBackoff is the first inter-round delay, doubled per round
	// with ±50% jitter (default 50ms).
	RetryBackoff time.Duration
	// RetryBudget caps retry requests across the router's lifetime, the
	// scanner's global-budget discipline applied to the forward path:
	// a flapping replica cannot amplify every incoming check into
	// unbounded internal traffic. 0 selects 10000; negative disables.
	RetryBudget int64
	// HedgeAfter is how long the home forward waits before duplicating
	// the request to the next owner (default 250ms; negative disables).
	HedgeAfter time.Duration
	// ProbeInterval / ProbeTimeout drive the background health prober
	// (defaults 500ms / 1s).
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// BreakerFailures / BreakerCooldown configure each replica's
	// circuit breaker (defaults per Breaker).
	BreakerFailures int
	BreakerCooldown time.Duration
	// Seed seeds the retry jitter (0 selects 1).
	Seed int64
	// Metrics / Events receive router telemetry (nil disables).
	Metrics *telemetry.Registry
	Events  *telemetry.EventLog
}

// Router forwards key checks to the replicas owning the relevant
// shards. A modulus the home-shard owner already knows compromised is
// answered in one hop; everything else — novel moduli and clean corpus
// members alike — is scatter-gathered across owners of every shard so
// the full-corpus GCD sweep still happens, just distributed. Owner
// failures retry against placement peers with backoff, stragglers are
// hedged, and when a shard has no reachable owner left the router
// degrades the verdict instead of erroring.
type Router struct {
	placement *Placement
	replicas  map[string]*Replica
	cfg       RouterConfig
	budget    *scanner.Budget
	jitter    *scanner.Jitter

	metrics *telemetry.Registry
	events  *telemetry.EventLog

	hedges   *telemetry.Counter
	degraded *telemetry.Counter
}

// NewRouter computes the placement and builds a replica client per
// address.
func NewRouter(cfg RouterConfig) (*Router, error) {
	shards := cfg.Shards
	if shards <= 0 {
		shards = keycheck.DefaultShards
	}
	p, err := NewPlacement(cfg.Replicas, shards, cfg.Replication)
	if err != nil {
		return nil, err
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	if cfg.Retries == 0 {
		cfg.Retries = 3
	} else if cfg.Retries < 0 {
		// Round 0 is the initial attempt, not a retry: clamping keeps
		// "-retries=-1" meaning "no retries" rather than "no rounds at
		// all" (which would degrade every verdict and fail every
		// ingest).
		cfg.Retries = 0
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 50 * time.Millisecond
	}
	if cfg.HedgeAfter == 0 {
		cfg.HedgeAfter = 250 * time.Millisecond
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = 500 * time.Millisecond
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	if cfg.RetryBudget == 0 {
		cfg.RetryBudget = 10000
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	rt := &Router{
		placement: p,
		replicas:  make(map[string]*Replica, len(cfg.Replicas)),
		cfg:       cfg,
		jitter:    scanner.NewJitter(seed),
		metrics:   cfg.Metrics,
		events:    cfg.Events,
		hedges:    cfg.Metrics.Counter("cluster_hedges_total"),
		degraded:  cfg.Metrics.Counter("cluster_degraded_verdicts_total"),
	}
	if cfg.RetryBudget > 0 {
		rt.budget = scanner.NewBudget(cfg.RetryBudget)
	}
	for _, addr := range cfg.Replicas {
		r := NewReplica(addr, cfg.RequestTimeout)
		r.Breaker.Threshold = cfg.BreakerFailures
		r.Breaker.Cooldown = cfg.BreakerCooldown
		rt.replicas[addr] = r
	}
	return rt, nil
}

// Placement returns the router's shard→replica map.
func (rt *Router) Placement() *Placement { return rt.placement }

// Replica returns the client for a placement name (nil if unknown).
func (rt *Router) Replica(name string) *Replica { return rt.replicas[name] }

// Start probes every replica once synchronously — replicas default to
// healthy, and /readyz must not claim coverage the first probe round
// would retract — then launches the periodic health-probe loop, which
// stops when ctx is done. The prober keeps every replica's readiness
// view fresh so selection can skip dead replicas before burning a
// request timeout on them.
func (rt *Router) Start(ctx context.Context) {
	rt.probeAll(ctx)
	go func() {
		tick := time.NewTicker(rt.cfg.ProbeInterval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				rt.probeAll(ctx)
			case <-ctx.Done():
				return
			}
		}
	}()
}

func (rt *Router) probeAll(ctx context.Context) {
	for _, addr := range rt.placement.Replicas() {
		r := rt.replicas[addr]
		was := r.Healthy()
		ok := r.Probe(ctx, rt.cfg.ProbeTimeout)
		if !ok {
			rt.metrics.Counter(`cluster_probe_failures_total{replica="` + addr + `"}`).Inc()
		}
		if ok != was {
			rt.events.Info(ctx, "replica health changed",
				slog.String("replica", addr),
				slog.Bool("ready", ok))
		}
	}
}

// send performs one breaker-gated check against r and settles the
// breaker with the outcome. A cancellation caused by the router itself
// (hedge race lost, caller gone) is forgotten rather than held against
// the replica.
func (rt *Router) send(ctx context.Context, r *Replica, hex string) (*checkResult, *replicaError) {
	if !r.Breaker.Allow() {
		return nil, &replicaError{replica: r.Name, cause: "breaker-open", transient: true,
			err: fmt.Errorf("cluster: replica %s: circuit open", r.Name)}
	}
	rt.metrics.Counter(`cluster_forward_total{replica="` + r.Name + `"}`).Inc()
	res, rerr := r.Check(ctx, hex)
	rt.settle(r, rerr)
	return res, rerr
}

// settle reports a request outcome to the replica's breaker, counting
// open transitions into the metrics.
func (rt *Router) settle(r *Replica, rerr *replicaError) {
	if rerr != nil && rerr.cause == scanner.CauseCanceled {
		r.Breaker.Forget()
		return
	}
	before := r.Breaker.Opens()
	r.Breaker.Report(rerr == nil)
	if r.Breaker.Opens() > before {
		rt.metrics.Counter(`cluster_breaker_opens_total{replica="` + r.Name + `"}`).Inc()
		rt.events.Warn(context.Background(), "replica breaker opened",
			slog.String("replica", r.Name),
			slog.String("cause", rerr.cause))
	}
}

// retryable spends one unit of the retry budget; when the budget is
// exhausted the shard is left for the degraded disclosure rather than
// amplified into more traffic.
func (rt *Router) retryable(cause string) bool {
	if rt.budget != nil && !rt.budget.Take() {
		rt.metrics.Counter("cluster_retry_budget_exhausted_total").Inc()
		return false
	}
	rt.metrics.Counter(`cluster_retries_total{cause="` + cause + `"}`).Inc()
	return true
}

// orderedOwners returns shard s's owners, usable ones first (placement
// preference preserved within each half), skipping names in skip.
func (rt *Router) orderedOwners(s int, skip map[string]bool) []*Replica {
	var usable, rest []*Replica
	for _, name := range rt.placement.Owners(s) {
		if skip[name] {
			continue
		}
		r := rt.replicas[name]
		if r.Usable() {
			usable = append(usable, r)
		} else {
			rest = append(rest, r)
		}
	}
	return append(usable, rest...)
}

// Check routes one validated modulus. The fast path is a single forward
// to the modulus's home-shard owner, definitive only when that owner
// already knows the key compromised. Everything else — novel moduli and
// clean-so-far corpus members alike — scatter-gathers across owners of
// every other shard so the GCD sweep covers the whole corpus: replica
// ingests only GCD a delta against their own owned shards, so a member
// clean at its home owner can still share a prime with a key homed in a
// shard that owner does not hold.
func (rt *Router) Check(ctx context.Context, n *big.Int) RoutedVerdict {
	hex := n.Text(16)
	home := keycheck.ShardOf(n, rt.placement.Shards())
	hops := 0

	// Home forward, hedged across the home shard's owners.
	homeRes, attempts := rt.forwardHome(ctx, home, hex)
	hops += attempts

	if homeRes != nil && homeRes.verdict.Compromised() {
		// A compromised verdict is definitive regardless of coverage:
		// the factorization (or divisor) is already in hand. A clean
		// member answer is NOT — membership is the home shard's call,
		// but post-build ingests land on per-shard owners, so only the
		// full scatter below proves no reachable shard holds a mate.
		out := RoutedVerdict{Verdict: homeRes.verdict, Replica: homeRes.replica, Hops: hops}
		out.Partial = false
		return out
	}

	// Clean member, novel modulus, or no home answer at all: the GCD
	// sweep needs every shard's product, so gather coverage from owners
	// of the shards the home answer didn't span.
	need := make(map[int]bool, rt.placement.Shards())
	for s := 0; s < rt.placement.Shards(); s++ {
		need[s] = true
	}
	if homeRes != nil {
		for _, s := range rt.placement.OwnedBy(homeRes.replica) {
			delete(need, s)
		}
	}
	results, scatterHops := rt.scatter(ctx, hex, need)
	hops += scatterHops

	out := rt.combine(n, home, homeRes, results, need)
	out.Hops = hops
	if out.Degraded {
		rt.degraded.Inc()
		rt.events.Warn(ctx, "degraded verdict",
			slog.String("status", string(out.Status)),
			slog.Int("unreachable_shards", len(out.UnreachableShards)))
	}
	return out
}

// forwardHome races the home shard's owners: the preferred owner first,
// the next hedged in after HedgeAfter (the supervise.go backup-task
// move — a straggling replica shouldn't hold the answer hostage when a
// peer holds the same shard), and failed attempts failing over to
// remaining owners. Returns the first success and the attempt count.
func (rt *Router) forwardHome(ctx context.Context, home int, hex string) (*checkResult, int) {
	candidates := rt.orderedOwners(home, nil)
	if len(candidates) == 0 {
		return nil, 0
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type outcome struct {
		res  *checkResult
		rerr *replicaError
	}
	resc := make(chan outcome, len(candidates))
	launched := 0
	launch := func() {
		r := candidates[launched]
		launched++
		go func() {
			res, rerr := rt.send(ctx, r, hex)
			resc <- outcome{res, rerr}
		}()
	}
	launch()

	var hedgeC <-chan time.Time
	if rt.cfg.HedgeAfter > 0 && len(candidates) > 1 {
		t := time.NewTimer(rt.cfg.HedgeAfter)
		defer t.Stop()
		hedgeC = t.C
	}
	pending := 1
	for pending > 0 {
		select {
		case o := <-resc:
			pending--
			if o.rerr == nil {
				return o.res, launched
			}
			// Transient failures fail over to the next owner; a
			// permanent one would fail identically there.
			if o.rerr.transient && launched < len(candidates) && rt.retryable(o.rerr.cause) {
				launch()
				pending++
			}
		case <-hedgeC:
			hedgeC = nil
			if launched < len(candidates) {
				rt.hedges.Inc()
				launch()
				pending++
			}
		case <-ctx.Done():
			return nil, launched
		}
	}
	return nil, launched
}

// scatter gathers verdicts from owners covering the shards in need,
// retrying uncovered shards against rotated owners over backoff rounds.
// Shards still in need on return had no answering owner.
func (rt *Router) scatter(ctx context.Context, hex string, need map[int]bool) ([]*checkResult, int) {
	var results []*checkResult
	hops := 0
	backoff := rt.cfg.RetryBackoff
	// failed tracks replicas that failed this scatter, per shard, so
	// the next round rotates to a placement peer instead of hammering
	// the same dead owner; once every owner of a shard has failed the
	// slate is wiped and rotation starts over (transient weather may
	// have passed).
	failed := make(map[int]map[string]bool)
	for round := 0; round <= rt.cfg.Retries && len(need) > 0; round++ {
		if round > 0 {
			select {
			case <-time.After(rt.jitter.Jitter(backoff)):
			case <-ctx.Done():
				return results, hops
			}
			backoff = scanner.DoubleBackoff(backoff, 2*time.Second)
		}
		// Group this round's shards by their chosen owner: one request
		// per replica covers every needed shard it owns.
		targets := make(map[*Replica]bool)
		for s := range need {
			if len(failed[s]) >= len(rt.placement.Owners(s)) {
				failed[s] = nil
			}
			owners := rt.orderedOwners(s, failed[s])
			if len(owners) == 0 {
				continue
			}
			targets[owners[0]] = true
		}
		if len(targets) == 0 {
			continue
		}
		type outcome struct {
			r    *Replica
			res  *checkResult
			rerr *replicaError
		}
		ch := make(chan outcome, len(targets))
		sent := 0
		for r := range targets {
			if round > 0 && !rt.retryable("scatter") {
				break
			}
			sent++
			go func(r *Replica) {
				res, rerr := rt.send(ctx, r, hex)
				ch <- outcome{r, res, rerr}
			}(r)
		}
		hops += sent
		for i := 0; i < sent; i++ {
			o := <-ch
			if o.rerr != nil {
				for s := range need {
					for _, owner := range rt.placement.Owners(s) {
						if owner == o.r.Name {
							if failed[s] == nil {
								failed[s] = make(map[string]bool)
							}
							failed[s][o.r.Name] = true
						}
					}
				}
				continue
			}
			results = append(results, o.res)
			for _, s := range rt.placement.OwnedBy(o.r.Name) {
				delete(need, s)
			}
		}
	}
	return results, hops
}

// combine folds the gathered partial verdicts into one answer. Any
// owner finding a shared prime decides compromised (preferring answers
// that recovered the full factorization); membership comes only from
// the home-shard owner; leftover uncovered shards degrade the verdict.
func (rt *Router) combine(n *big.Int, home int, homeRes *checkResult, results []*checkResult, need map[int]bool) RoutedVerdict {
	var out RoutedVerdict
	if homeRes != nil {
		out.Verdict = homeRes.verdict
		out.Replica = homeRes.replica
	} else {
		out.Verdict = keycheck.Verdict{
			Status:      keycheck.StatusClean,
			ModulusBits: n.BitLen(),
			Shard:       home,
		}
	}
	better := func(v keycheck.Verdict) bool {
		if !v.Compromised() {
			return false
		}
		if !out.Compromised() {
			return true
		}
		// Among compromised answers, a recovered factorization beats a
		// bare divisor, and factored (exact-map) beats on-the-spot.
		if (v.FactorP != "") != (out.FactorP != "") {
			return v.FactorP != ""
		}
		return v.Status == keycheck.StatusFactored && out.Status != keycheck.StatusFactored
	}
	for _, res := range results {
		adopt := better(res.verdict)
		if !adopt && res.verdict.Status == keycheck.StatusSharedModulus && out.Status == keycheck.StatusClean {
			// A replication peer of the home shard holds the same
			// shared-modulus graph; when the preferred owner's answer was
			// lost, the peer's anomaly verdict still beats clean. A
			// compromised answer from any owner continues to outrank it.
			adopt = true
		}
		if adopt {
			known := out.Known
			out.Verdict = res.verdict
			out.Known = known // membership stays the home owner's call
			out.Shard = home
			out.Replica = res.replica
		}
	}
	if len(need) > 0 {
		out.Degraded = true
		out.UnreachableShards = make([]int, 0, len(need))
		for s := range need {
			out.UnreachableShards = append(out.UnreachableShards, s)
		}
		sort.Ints(out.UnreachableShards)
	}
	// Partial was the replicas' own disclosure; at the router level the
	// Degraded field carries it.
	out.Partial = false
	return out
}

// ingestResponse is the router's POST /v1/ingest document: the summed
// counters plus each replica's own report.
type ingestResponse struct {
	DeltaModuli int                              `json:"delta_moduli"`
	Duplicates  int                              `json:"duplicates"`
	NewFactored int                              `json:"new_factored"`
	Refactored  int                              `json:"refactored"`
	Degraded    bool                             `json:"degraded,omitempty"`
	Failed      []string                         `json:"failed_moduli_hex,omitempty"`
	Replicas    map[string]keycheck.IngestReport `json:"replicas,omitempty"`
}

// ingest routes each modulus to an owner of its home shard and merges
// the reports. Replication peers receive the delta through the sync
// protocol, not from the router — one authoritative landing per key,
// then anti-entropy. Failed groups retry against peer owners with the
// same rotation as scatter; moduli with no reachable owner come back in
// Failed with Degraded set.
func (rt *Router) ingest(ctx context.Context, moduliHex []string, mods []*big.Int) ingestResponse {
	resp := ingestResponse{Replicas: make(map[string]keycheck.IngestReport)}
	// pending: modulus index -> home shard.
	pending := make(map[int]int, len(mods))
	for i, n := range mods {
		pending[i] = keycheck.ShardOf(n, rt.placement.Shards())
	}
	backoff := rt.cfg.RetryBackoff
	failed := make(map[int]map[string]bool) // shard -> replicas failed
rounds:
	for round := 0; round <= rt.cfg.Retries && len(pending) > 0; round++ {
		if round > 0 {
			select {
			case <-time.After(rt.jitter.Jitter(backoff)):
			case <-ctx.Done():
				// The caller is gone; further rounds would only issue
				// doomed requests. Leftover moduli come back in Failed.
				break rounds
			}
			backoff = scanner.DoubleBackoff(backoff, 2*time.Second)
		}
		batches := make(map[*Replica][]int)
		for i, s := range pending {
			if len(failed[s]) >= len(rt.placement.Owners(s)) {
				failed[s] = nil
			}
			owners := rt.orderedOwners(s, failed[s])
			if len(owners) == 0 {
				continue
			}
			batches[owners[0]] = append(batches[owners[0]], i)
		}
		for r, idxs := range batches {
			if round > 0 && !rt.retryable("ingest") {
				break
			}
			batch := make([]string, len(idxs))
			for j, i := range idxs {
				batch[j] = moduliHex[i]
			}
			if !r.Breaker.Allow() {
				rt.markIngestFailed(failed, pending, idxs, r.Name)
				continue
			}
			rep, rerr := r.Ingest(ctx, batch)
			rt.settle(r, rerr)
			if rerr != nil {
				rt.markIngestFailed(failed, pending, idxs, r.Name)
				continue
			}
			prev := resp.Replicas[r.Name]
			prev.DeltaModuli += rep.DeltaModuli
			prev.Duplicates += rep.Duplicates
			prev.NewFactored += rep.NewFactored
			prev.Refactored += rep.Refactored
			prev.Skipped += rep.Skipped
			prev.TouchedShards += rep.TouchedShards
			resp.Replicas[r.Name] = prev
			resp.DeltaModuli += rep.DeltaModuli
			resp.Duplicates += rep.Duplicates
			resp.NewFactored += rep.NewFactored
			resp.Refactored += rep.Refactored
			for _, i := range idxs {
				delete(pending, i)
			}
		}
	}
	if len(pending) > 0 {
		resp.Degraded = true
		for i := range pending {
			resp.Failed = append(resp.Failed, moduliHex[i])
		}
		sort.Strings(resp.Failed)
		rt.metrics.Counter("cluster_ingest_failed_moduli_total").Add(int64(len(pending)))
	}
	return resp
}

func (rt *Router) markIngestFailed(failed map[int]map[string]bool, pending map[int]int, idxs []int, name string) {
	for _, i := range idxs {
		s := pending[i]
		if failed[s] == nil {
			failed[s] = make(map[string]bool)
		}
		failed[s][name] = true
	}
}

// replicaStatus is one replica's row in /cluster/status.
type replicaStatus struct {
	Name            string `json:"name"`
	Healthy         bool   `json:"healthy"`
	Breaker         string `json:"breaker"`
	BreakerOpens    int64  `json:"breaker_opens"`
	ProbeFailures   int64  `json:"probe_failures"`
	RequestFailures int64  `json:"request_failures"`
	OwnedShards     []int  `json:"owned_shards"`
}

// clusterStatus is the GET /cluster/status document.
type clusterStatus struct {
	Shards           int             `json:"shards"`
	Replication      int             `json:"replication"`
	Replicas         []replicaStatus `json:"replicas"`
	UncoveredShards  []int           `json:"uncovered_shards,omitempty"`
	RetryBudgetLeft  int64           `json:"retry_budget_left"`
	DegradedVerdicts int64           `json:"degraded_verdicts"`
	HedgedForwards   int64           `json:"hedged_forwards"`
}

// Status snapshots the cluster view for /cluster/status.
func (rt *Router) Status() clusterStatus {
	st := clusterStatus{
		Shards:           rt.placement.Shards(),
		Replication:      rt.placement.Replication(),
		DegradedVerdicts: rt.degraded.Value(),
		HedgedForwards:   rt.hedges.Value(),
	}
	if rt.budget != nil {
		st.RetryBudgetLeft = rt.budget.Remaining()
	} else {
		st.RetryBudgetLeft = -1
	}
	for _, name := range rt.placement.Replicas() {
		r := rt.replicas[name]
		st.Replicas = append(st.Replicas, replicaStatus{
			Name:            name,
			Healthy:         r.Healthy(),
			Breaker:         r.Breaker.State().String(),
			BreakerOpens:    r.Breaker.Opens(),
			ProbeFailures:   r.ProbeFailures(),
			RequestFailures: r.RequestFailures(),
			OwnedShards:     rt.placement.OwnedBy(name),
		})
	}
	st.UncoveredShards = rt.placement.Uncovered(func(name string) bool {
		return rt.replicas[name].Usable()
	})
	return st
}

// Mux returns the router's HTTP routes:
//
//	POST /v1/check       route one modulus/certificate check
//	POST /v1/ingest      route new moduli to their home-shard owners
//	GET  /v1/exemplars   proxied from any usable replica
//	GET  /cluster/status placement, per-replica health and breakers
//	GET  /healthz        router process liveness
//	GET  /readyz         200 only when every shard has a usable owner
func (rt *Router) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/check", rt.withRequestID(rt.handleCheck))
	mux.HandleFunc("/v1/ingest", rt.withRequestID(rt.handleIngest))
	mux.HandleFunc("/v1/exemplars", rt.withRequestID(rt.handleExemplars))
	mux.HandleFunc("/cluster/status", rt.handleStatus)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if uncovered := rt.placement.Uncovered(func(name string) bool { return rt.replicas[name].Usable() }); len(uncovered) > 0 {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, "uncovered shards: %v\n", uncovered)
			return
		}
		w.Write([]byte("ready\n"))
	})
	return mux
}

func (rt *Router) withRequestID(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		id, _ := telemetry.HTTPRequestID(r)
		w.Header().Set("X-Request-Id", id)
		h(w, r.WithContext(telemetry.ContextWithRequestID(r.Context(), id)))
	}
}

func (rt *Router) handleCheck(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rt.writeError(w, r, http.StatusMethodNotAllowed, errors.New("cluster: POST only"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxReplicaBody))
	if err != nil {
		rt.writeError(w, r, http.StatusBadRequest, fmt.Errorf("%w: %v", keycheck.ErrMalformed, err))
		return
	}
	n, e, err := keycheck.ParseSubmissionWithExponent(body)
	if err != nil {
		rt.writeError(w, r, http.StatusBadRequest, err)
		return
	}
	out := rt.Check(r.Context(), n)
	// The exponent fold-in mirrors the replica HTTP layer: replicas only
	// ever see the modulus, so a routed clean verdict upgrades here when
	// the submission carried a broken public exponent.
	if uv := keycheck.ApplyExponent(out.Verdict, e); uv.Status != out.Status {
		rt.metrics.Counter(`cluster_checks_total{verdict="unsafe_exponent"}`).Inc()
		out.Verdict = uv
	}
	rt.writeJSON(w, http.StatusOK, out)
}

// maxRouterIngest mirrors the replica-side per-request ingest bound.
const maxRouterIngest = 4096

func (rt *Router) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rt.writeError(w, r, http.StatusMethodNotAllowed, errors.New("cluster: POST only"))
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxReplicaBody))
	if err != nil {
		rt.writeError(w, r, http.StatusBadRequest, fmt.Errorf("%w: %v", keycheck.ErrMalformed, err))
		return
	}
	var req struct {
		ModuliHex []string `json:"moduli_hex"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		rt.writeError(w, r, http.StatusBadRequest, fmt.Errorf("%w: %v", keycheck.ErrMalformed, err))
		return
	}
	if len(req.ModuliHex) == 0 {
		rt.writeError(w, r, http.StatusBadRequest, fmt.Errorf("%w: moduli_hex is empty", keycheck.ErrMalformed))
		return
	}
	if len(req.ModuliHex) > maxRouterIngest {
		rt.writeError(w, r, http.StatusBadRequest,
			fmt.Errorf("%w: %d moduli exceeds the per-request limit of %d", keycheck.ErrMalformed, len(req.ModuliHex), maxRouterIngest))
		return
	}
	mods := make([]*big.Int, len(req.ModuliHex))
	for i, hex := range req.ModuliHex {
		n, err := keycheck.ParseModulusHex(hex)
		if err != nil {
			rt.writeError(w, r, http.StatusBadRequest, fmt.Errorf("moduli_hex[%d]: %w", i, err))
			return
		}
		mods[i] = n
	}
	rt.writeJSON(w, http.StatusOK, rt.ingest(r.Context(), req.ModuliHex, mods))
}

// handleExemplars proxies to the first usable replica; exemplars are a
// per-replica sample, good enough for smoke tests and load generators.
func (rt *Router) handleExemplars(w http.ResponseWriter, r *http.Request) {
	for _, name := range rt.placement.Replicas() {
		rep := rt.replicas[name]
		if !rep.Usable() {
			continue
		}
		status, raw, rerr := rep.Get(r.Context(), "/v1/exemplars?"+r.URL.RawQuery)
		if rerr != nil || status != http.StatusOK {
			continue
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		w.Write(raw)
		return
	}
	rt.writeError(w, r, http.StatusServiceUnavailable, errors.New("cluster: no usable replica"))
}

func (rt *Router) handleStatus(w http.ResponseWriter, r *http.Request) {
	rt.writeJSON(w, http.StatusOK, rt.Status())
}

func (rt *Router) writeJSON(w http.ResponseWriter, code int, v any) {
	rt.metrics.Counter(fmt.Sprintf(`cluster_http_requests_total{code="%d"}`, code)).Inc()
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func (rt *Router) writeError(w http.ResponseWriter, r *http.Request, code int, err error) {
	rt.events.Warn(r.Context(), "router request failed",
		slog.String("path", r.URL.Path),
		slog.Int("status", code),
		slog.String("error", err.Error()))
	rt.writeJSON(w, code, struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id,omitempty"`
	}{err.Error(), telemetry.RequestIDFrom(r.Context())})
}

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"github.com/factorable/weakkeys/internal/keycheck"
	"github.com/factorable/weakkeys/internal/scanner"
	"github.com/factorable/weakkeys/internal/telemetry"
)

// maxReplicaBody bounds a replica response read (mirrors the API's own
// request bound).
const maxReplicaBody = 1 << 20

// Replica is the router's client for one keyserverd replica: an HTTP
// client, the liveness view maintained by the health prober, a failure
// ledger and a circuit breaker for real traffic.
type Replica struct {
	// Name is the replica's placement identity (advertised host:port).
	Name string
	// Breaker trips on consecutive request failures.
	Breaker Breaker

	base   string
	client *http.Client

	// healthy is the prober's latest /readyz view: 1 ready, 0 not.
	// Replicas start healthy so a router can serve before the first
	// probe round completes.
	healthy atomic.Bool
	// probeFails / requestFails are cumulative failure counts for
	// /cluster/status.
	probeFails   atomic.Int64
	requestFails atomic.Int64
}

// NewReplica returns a client for the replica advertised at addr
// (host:port). timeout bounds each request; <=0 selects 10s.
func NewReplica(addr string, timeout time.Duration) *Replica {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	r := &Replica{
		Name: addr,
		base: "http://" + addr,
		client: &http.Client{
			Timeout: timeout,
			Transport: &http.Transport{
				MaxIdleConns:        64,
				MaxIdleConnsPerHost: 64,
				IdleConnTimeout:     90 * time.Second,
			},
		},
	}
	r.healthy.Store(true)
	return r
}

// Healthy returns the prober's latest readiness view.
func (r *Replica) Healthy() bool { return r.healthy.Load() }

// Usable reports whether the router should prefer this replica for new
// traffic: the prober sees it ready and the breaker would admit a
// request (closed, or open with the cooldown elapsed — the half-open
// probe). Selection still calls Breaker.Allow before sending; Usable is
// the read-only preview.
func (r *Replica) Usable() bool {
	return r.healthy.Load() && r.Breaker.Ready()
}

// ProbeFailures and RequestFailures expose the cumulative ledgers.
func (r *Replica) ProbeFailures() int64   { return r.probeFails.Load() }
func (r *Replica) RequestFailures() int64 { return r.requestFails.Load() }

// Probe performs one /readyz round trip and updates the health view.
func (r *Replica) Probe(ctx context.Context, timeout time.Duration) bool {
	if timeout <= 0 {
		timeout = time.Second
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+"/readyz", nil)
	if err != nil {
		r.markProbe(false)
		return false
	}
	resp, err := r.client.Do(req)
	if err != nil {
		r.markProbe(false)
		return false
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 256))
	resp.Body.Close()
	ok := resp.StatusCode == http.StatusOK
	r.markProbe(ok)
	return ok
}

func (r *Replica) markProbe(ok bool) {
	if !ok {
		r.probeFails.Add(1)
	}
	r.healthy.Store(ok)
}

// replicaError is a classified failure from one replica call.
type replicaError struct {
	replica   string
	status    int // HTTP status when a response arrived, else 0
	cause     string
	transient bool
	err       error
}

func (e *replicaError) Error() string {
	if e.status != 0 {
		return fmt.Sprintf("cluster: replica %s: HTTP %d (%s)", e.replica, e.status, e.cause)
	}
	return fmt.Sprintf("cluster: replica %s: %v (%s)", e.replica, e.err, e.cause)
}

// classify buckets a transport error or replica status for the retry
// policy, reusing the scanner's transport-error taxonomy: refused /
// reset / timeout are the network weather a retry against the peer can
// outrun; a replica's 503 (shedding or draining) and bad-gateway
// statuses are the HTTP shape of the same thing. 4xx is the caller's
// problem and never retried.
func classify(replica string, status int, err error) *replicaError {
	if err != nil {
		cause := scanner.Cause(err)
		return &replicaError{replica: replica, cause: cause, transient: scanner.Transient(err), err: err}
	}
	switch status {
	case http.StatusServiceUnavailable, http.StatusTooManyRequests,
		http.StatusBadGateway, http.StatusGatewayTimeout:
		return &replicaError{replica: replica, status: status, cause: "unavailable", transient: true}
	}
	return &replicaError{replica: replica, status: status, cause: "permanent", transient: false}
}

// checkResult is one replica's answer to a forwarded check.
type checkResult struct {
	verdict keycheck.Verdict
	replica string
}

// Check forwards one canonical modulus_hex check to the replica. The
// request ID rides the X-Request-Id header so the replica's flight
// recorder correlates with the router's. A non-200 response or a
// transport failure (including a truncated body — the replica dying
// mid-response) comes back as a classified *replicaError.
func (r *Replica) Check(ctx context.Context, modulusHex string) (*checkResult, *replicaError) {
	body, _ := json.Marshal(map[string]string{"modulus_hex": modulusHex})
	status, raw, rerr := r.post(ctx, "/v1/check", body)
	if rerr != nil {
		return nil, rerr
	}
	if status != http.StatusOK {
		return nil, classify(r.Name, status, nil)
	}
	var v keycheck.Verdict
	if err := json.Unmarshal(raw, &v); err != nil {
		// A 200 with an undecodable body is a replica dying mid-write;
		// retrying the peer is the right move.
		return nil, &replicaError{replica: r.Name, cause: scanner.CauseReset, transient: true, err: err}
	}
	return &checkResult{verdict: v, replica: r.Name}, nil
}

// Ingest forwards a moduli_hex batch to the replica.
func (r *Replica) Ingest(ctx context.Context, moduliHex []string) (keycheck.IngestReport, *replicaError) {
	body, _ := json.Marshal(map[string][]string{"moduli_hex": moduliHex})
	status, raw, rerr := r.post(ctx, "/v1/ingest", body)
	if rerr != nil {
		return keycheck.IngestReport{}, rerr
	}
	if status != http.StatusOK {
		return keycheck.IngestReport{}, classify(r.Name, status, nil)
	}
	var rep keycheck.IngestReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		return keycheck.IngestReport{}, &replicaError{replica: r.Name, cause: scanner.CauseReset, transient: true, err: err}
	}
	return rep, nil
}

// Get proxies a GET (exemplars, stats) and returns status + body.
func (r *Replica) Get(ctx context.Context, path string) (int, []byte, *replicaError) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+path, nil)
	if err != nil {
		return 0, nil, classify(r.Name, 0, err)
	}
	setRequestID(req, ctx)
	return r.do(req)
}

func (r *Replica) post(ctx context.Context, path string, body []byte) (int, []byte, *replicaError) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.base+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, classify(r.Name, 0, err)
	}
	req.Header.Set("Content-Type", "application/json")
	setRequestID(req, ctx)
	return r.do(req)
}

func (r *Replica) do(req *http.Request) (int, []byte, *replicaError) {
	resp, err := r.client.Do(req)
	if err != nil {
		r.requestFails.Add(1)
		return 0, nil, classify(r.Name, 0, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxReplicaBody))
	if err != nil {
		// The body read failing after a good header is the replica (or
		// its kernel) cutting the connection mid-response.
		r.requestFails.Add(1)
		return 0, nil, classify(r.Name, 0, err)
	}
	if resp.StatusCode >= 500 || resp.StatusCode == http.StatusTooManyRequests {
		r.requestFails.Add(1)
	}
	return resp.StatusCode, raw, nil
}

// setRequestID carries the router request's correlation ID to the
// replica hop, so one ID joins the router's and the replica's flight
// recorders.
func setRequestID(req *http.Request, ctx context.Context) {
	if id := telemetry.RequestIDFrom(ctx); id != "" {
		req.Header.Set("X-Request-Id", id)
	}
}

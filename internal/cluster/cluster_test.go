package cluster

import (
	"context"
	"math/big"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/factorable/weakkeys/internal/fingerprint"
	"github.com/factorable/weakkeys/internal/keycheck"
	"github.com/factorable/weakkeys/internal/scanstore"
	"github.com/factorable/weakkeys/internal/telemetry"
)

// The golden corpus, mirroring the keycheck test fixture: fixed 64-bit
// primes so every expected verdict is a literal.
//
//	N1 = p1*p2  in corpus, factored (shares p1 with N2)
//	N2 = p1*p3  in corpus, factored
//	N3 = q1*q2  in corpus, clean
//	Ns = p3*r1  novel, shares p3 with the corpus
//	Nc = r2*r3  novel, clean
var (
	p1 = mustHex("cb1a897ef032256b")
	p2 = mustHex("ba5e34293664b321")
	p3 = mustHex("cddf196d1cc15f59")
	q1 = mustHex("901e692504a24c01")
	q2 = mustHex("fad4173adc25ce7b")
	r1 = mustHex("a627d0c250f0d6ab")
	r2 = mustHex("ea9f25957aa3ea13")
	r3 = mustHex("dd7fc43a8a82154d")

	modN1 = new(big.Int).Mul(p1, p2)
	modN2 = new(big.Int).Mul(p1, p3)
	modN3 = new(big.Int).Mul(q1, q2)
	modNs = new(big.Int).Mul(p3, r1)
	modNc = new(big.Int).Mul(r2, r3)
)

func mustHex(s string) *big.Int {
	n, ok := new(big.Int).SetString(s, 16)
	if !ok {
		panic("bad hex: " + s)
	}
	return n
}

func goldenStore() (*scanstore.Store, *fingerprint.Result) {
	store := scanstore.New()
	date := time.Date(2013, 5, 1, 0, 0, 0, 0, time.UTC)
	store.AddBareKeyObservation("10.0.0.1", date, scanstore.SourceRapid7, scanstore.SSH, modN1)
	store.AddBareKeyObservation("10.0.0.2", date, scanstore.SourceRapid7, scanstore.SSH, modN2)
	store.AddBareKeyObservation("10.0.0.3", date, scanstore.SourceRapid7, scanstore.SSH, modN3)
	fpr := &fingerprint.Result{
		Factors: map[string]fingerprint.Factors{
			string(modN1.Bytes()): {P: p2, Q: p1},
			string(modN2.Bytes()): {P: p1, Q: p3},
		},
	}
	return store, fpr
}

// swapHandler lets a test start an httptest server before the handler
// exists (the placement needs every address before any replica can
// build its shard subset) and swap middleware in later.
type swapHandler struct{ h atomic.Value }

func (s *swapHandler) store(h http.Handler) { s.h.Store(http.HandlerFunc(h.ServeHTTP)) }

func (s *swapHandler) load() http.Handler { return s.h.Load().(http.HandlerFunc) }

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.load().ServeHTTP(w, r)
}

// testReplica is one in-process keyserverd stand-in: a partial-snapshot
// service behind a real HTTP listener, with the sync journal mounted.
type testReplica struct {
	addr    string
	svc     *keycheck.Service
	journal *Journal
	srv     *httptest.Server
	handler *swapHandler
}

// newTestCluster builds nReplicas partial replicas over the golden
// corpus plus a router fronting them.
func newTestCluster(t *testing.T, nReplicas, shards, replication int) (*Router, []*testReplica) {
	t.Helper()
	store, fpr := goldenStore()

	replicas := make([]*testReplica, nReplicas)
	addrs := make([]string, nReplicas)
	for i := range replicas {
		sh := &swapHandler{}
		sh.store(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
		}))
		srv := httptest.NewServer(sh)
		t.Cleanup(srv.Close)
		replicas[i] = &testReplica{
			addr:    strings.TrimPrefix(srv.URL, "http://"),
			srv:     srv,
			handler: sh,
			journal: &Journal{},
		}
		addrs[i] = replicas[i].addr
	}

	placement, err := NewPlacement(addrs, shards, replication)
	if err != nil {
		t.Fatal(err)
	}
	for _, rep := range replicas {
		rep := rep
		snap, err := keycheck.Build(context.Background(), keycheck.BuildInput{
			Store:       store,
			Fingerprint: fpr,
			Shards:      shards,
			OwnShards:   placement.OwnedBy(rep.addr),
		})
		if err != nil {
			t.Fatal(err)
		}
		rep.svc = keycheck.NewService(snap, keycheck.Config{
			Workers: 4,
			OnIngest: func(r keycheck.IngestReport) {
				rep.journal.Append(r.NovelKeys)
			},
		})
		api := keycheck.NewAPI(rep.svc, nil, nil)
		mux := http.NewServeMux()
		mux.Handle("/", api.Mux())
		mux.Handle("/v1/sync", rep.journal.Handler())
		rep.handler.store(mux)
	}

	rt, err := NewRouter(RouterConfig{
		Replicas:        addrs,
		Shards:          shards,
		Replication:     replication,
		RequestTimeout:  5 * time.Second,
		Retries:         3,
		RetryBackoff:    5 * time.Millisecond,
		HedgeAfter:      100 * time.Millisecond,
		BreakerFailures: 2,
		BreakerCooldown: 50 * time.Millisecond,
		Metrics:         telemetry.New(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return rt, replicas
}

// replicaByAddr returns the test replica with the given placement name.
func replicaByAddr(t *testing.T, replicas []*testReplica, addr string) *testReplica {
	t.Helper()
	for _, r := range replicas {
		if r.addr == addr {
			return r
		}
	}
	t.Fatalf("no test replica %s", addr)
	return nil
}

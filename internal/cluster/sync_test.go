package cluster

import (
	"context"
	"fmt"
	"math/big"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/factorable/weakkeys/internal/keycheck"
	"github.com/factorable/weakkeys/internal/telemetry"
)

func TestJournalSince(t *testing.T) {
	j := &Journal{}
	if gen, keys := j.Since(0); gen != 0 || keys != nil {
		t.Fatalf("empty journal: Since(0) = %d/%v", gen, keys)
	}
	if got := j.Append(nil); got != 0 {
		t.Errorf("empty append bumped the generation to %d", got)
	}
	if got := j.Append([]string{"aa", "bb"}); got != 1 {
		t.Errorf("first append generation = %d, want 1", got)
	}
	if got := j.Append([]string{"cc"}); got != 2 {
		t.Errorf("second append generation = %d, want 2", got)
	}
	gen, keys := j.Since(0)
	if gen != 2 || len(keys) != 3 || keys[0] != "aa" || keys[2] != "cc" {
		t.Errorf("Since(0) = %d/%v, want 2/[aa bb cc]", gen, keys)
	}
	if _, keys := j.Since(1); len(keys) != 1 || keys[0] != "cc" {
		t.Errorf("Since(1) = %v, want [cc]", keys)
	}
	if gen, keys := j.Since(2); gen != 2 || keys != nil {
		t.Errorf("Since(head) = %d/%v, want 2/nil", gen, keys)
	}
}

// TestJournalCoalesce overflows the entry bound: the journal must stay
// bounded while a reader at any position still receives every key
// appended after it — over-delivery is fine, loss is not.
func TestJournalCoalesce(t *testing.T) {
	j := &Journal{}
	const total = maxJournalEntries + 200
	for i := 0; i < total; i++ {
		j.Append([]string{fmt.Sprintf("k%04d", i)})
	}
	j.mu.Lock()
	entries := len(j.entries)
	j.mu.Unlock()
	if entries > maxJournalEntries {
		t.Errorf("journal holds %d entries, bound is %d", entries, maxJournalEntries)
	}
	gen, keys := j.Since(0)
	if gen != total {
		t.Errorf("generation = %d, want %d", gen, total)
	}
	if len(keys) != total {
		t.Fatalf("Since(0) returned %d keys, want all %d", len(keys), total)
	}
	// A reader positioned mid-log gets at least everything after its
	// position (coalescing may re-deliver older keys, never drop newer).
	const pos = total - 50
	_, tail := j.Since(pos)
	want := make(map[string]bool, 50)
	for i := pos; i < total; i++ {
		want[fmt.Sprintf("k%04d", i)] = true
	}
	for _, k := range tail {
		delete(want, k)
	}
	if len(want) != 0 {
		t.Errorf("Since(%d) lost %d keys after the position", pos, len(want))
	}
}

// TestJournalPage walks a reader through a journal far larger than one
// page: every key must arrive (over-delivery from coalescing is fine),
// every page must respect the cap and advance the position, and the
// final position must land on the journal head.
func TestJournalPage(t *testing.T) {
	j := &Journal{}
	const perEntry = 3
	const entries = maxJournalEntries + 188 // overflow: paging must survive coalescing
	want := make(map[string]bool, entries*perEntry)
	for i := 0; i < entries; i++ {
		keys := make([]string, perEntry)
		for k := range keys {
			keys[k] = fmt.Sprintf("p%05d", i*perEntry+k)
			want[keys[k]] = true
		}
		j.Append(keys)
	}
	pos, pages := uint64(0), 0
	for {
		gen, keys, more := j.Page(pos)
		pages++
		if pages > 100 {
			t.Fatal("paging never terminated")
		}
		if len(keys) > maxSyncKeys {
			t.Errorf("page %d holds %d keys, cap is %d", pages, len(keys), maxSyncKeys)
		}
		for _, k := range keys {
			delete(want, k)
		}
		if more && gen <= pos {
			t.Fatalf("page %d claims more but did not advance past %d", pages, pos)
		}
		pos = gen
		if !more {
			break
		}
	}
	if len(want) != 0 {
		t.Errorf("paged reads lost %d keys", len(want))
	}
	if pos != j.Generation() {
		t.Errorf("final position %d, want the journal head %d", pos, j.Generation())
	}
	if pages < 2 {
		t.Errorf("tail of %d keys fit in %d page(s); cap %d not exercised", entries*perEntry, pages, maxSyncKeys)
	}
	// At the head: an empty terminal page holding the position.
	if gen, keys, more := j.Page(pos); gen != pos || len(keys) != 0 || more {
		t.Errorf("Page(head) = %d/%d keys/more=%v, want %d/0/false", gen, len(keys), more, pos)
	}
	// Past the head (the origin restarted with a fresh journal): the
	// position rewinds to the current head instead of freezing.
	if gen, _, more := j.Page(pos + 100); gen != j.Generation() || more {
		t.Errorf("Page(past head) = %d more=%v, want rewind to %d", gen, more, j.Generation())
	}
}

// TestJournalPageOversizedEntry: a single ingest larger than the page
// cap is returned whole — a page must make progress — and the entries
// around it still page at entry granularity.
func TestJournalPageOversizedEntry(t *testing.T) {
	j := &Journal{}
	wide := make([]string, maxSyncKeys+10)
	for i := range wide {
		wide[i] = fmt.Sprintf("b%05d", i)
	}
	j.Append([]string{"aa"})
	j.Append(wide)
	j.Append([]string{"zz"})

	gen, keys, more := j.Page(0)
	if gen != 1 || len(keys) != 1 || keys[0] != "aa" || !more {
		t.Errorf("Page(0) = %d/%d keys/more=%v, want the first entry alone", gen, len(keys), more)
	}
	gen, keys, more = j.Page(gen)
	if gen != 2 || len(keys) != len(wide) || !more {
		t.Errorf("Page(1) = %d/%d keys/more=%v, want the oversized entry whole", gen, len(keys), more)
	}
	gen, keys, more = j.Page(gen)
	if gen != 3 || len(keys) != 1 || keys[0] != "zz" || more {
		t.Errorf("Page(2) = %d/%d keys/more=%v, want the final entry", gen, len(keys), more)
	}
}

// TestSyncerPaging drains a journal tail that spans several pages
// through the real HTTP pull path: one PullOnce must land every key,
// in multiple bounded requests, and leave the position at the head.
func TestSyncerPaging(t *testing.T) {
	// Pairwise-coprime keys (small primes) keep the ingest trivial: the
	// test is about the wire protocol, not the GCD sweep.
	var want []string
	const total = 2*maxSyncKeys + 453
	for v := 65537; len(want) < total; v += 2 {
		prime := true
		for d := 3; d*d <= v; d += 2 {
			if v%d == 0 {
				prime = false
				break
			}
		}
		if prime {
			want = append(want, fmt.Sprintf("%x", v))
		}
	}
	j := &Journal{}
	for i := 0; i < total; i += 7 {
		end := i + 7
		if end > total {
			end = total
		}
		j.Append(want[i:end])
	}

	var requests atomic.Int32
	mux := http.NewServeMux()
	handler := j.Handler()
	mux.HandleFunc("/v1/sync", func(w http.ResponseWriter, r *http.Request) {
		requests.Add(1)
		handler(w, r)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	origin := strings.TrimPrefix(srv.URL, "http://")

	svc := keycheck.NewService(keycheck.Empty(8), keycheck.Config{Workers: 4})
	s := &Syncer{Self: "puller", Peers: []string{origin}, Service: svc, Metrics: telemetry.New()}
	ctx := context.Background()

	if landed := s.PullOnce(ctx); landed != total {
		t.Fatalf("first pull landed %d moduli, want all %d", landed, total)
	}
	if n := int(requests.Load()); n < 3 {
		t.Errorf("tail of %d keys drained in %d request(s); paging not exercised", total, n)
	}
	if got := svc.Index().Snapshot().Moduli(); got != total {
		t.Errorf("index holds %d moduli, want %d", got, total)
	}
	if pos := s.Positions()[origin]; pos != j.Generation() {
		t.Errorf("position %d after the pull, want the journal head %d", pos, j.Generation())
	}
	if landed := s.PullOnce(ctx); landed != 0 {
		t.Errorf("drained journal still landed %d moduli", landed)
	}
}

// TestSyncPropagation walks a novel modulus through the full loop:
// routed ingest lands it on one owner of its home shard, anti-entropy
// pulls replicate it to the other owner (and only there — non-owners
// skip it), and the mesh quiesces instead of echoing forever.
func TestSyncPropagation(t *testing.T) {
	rt, replicas := newTestCluster(t, 3, 8, 2)
	ctx := context.Background()
	p := rt.Placement()

	addrs := make([]string, len(replicas))
	baseline := 0
	for i, rep := range replicas {
		addrs[i] = rep.addr
		baseline += rep.svc.Index().Snapshot().Moduli()
	}

	resp := rt.ingest(ctx, []string{modNs.Text(16)}, []*big.Int{modNs})
	if resp.DeltaModuli != 1 || resp.Degraded {
		t.Fatalf("routed ingest = %+v, want one novel modulus landed", resp)
	}

	syncers := make([]*Syncer, len(replicas))
	for i, rep := range replicas {
		syncers[i] = &Syncer{
			Self:    rep.addr,
			Peers:   addrs,
			Service: rep.svc,
			Metrics: telemetry.New(),
		}
	}
	pullAll := func() int {
		landed := 0
		for _, s := range syncers {
			landed += s.PullOnce(ctx)
		}
		return landed
	}
	// Round 1 replicates the key to its other home-shard owner; by the
	// end of round 2 every peer has seen (and deduped or skipped) it.
	pullAll()
	pullAll()

	owners := map[string]bool{}
	for _, o := range p.Owners(keycheck.ShardOf(modNs, p.Shards())) {
		owners[o] = true
	}
	after := 0
	for _, rep := range replicas {
		snap := rep.svc.Index().Snapshot()
		after += snap.Moduli()
		has := snap.Check(modNs).Known
		if owners[rep.addr] && !has {
			t.Errorf("owner %s missing the synced modulus", rep.addr)
		}
		if !owners[rep.addr] && has {
			t.Errorf("non-owner %s indexed a modulus outside its shards", rep.addr)
		}
	}
	if after != baseline+len(owners) {
		t.Errorf("total moduli %d, want baseline %d + %d replication copies", after, baseline, len(owners))
	}

	// The mesh must go quiet: no new deltas, no journal growth.
	gens := make([]uint64, len(replicas))
	for i, rep := range replicas {
		gens[i] = rep.journal.Generation()
	}
	if landed := pullAll(); landed != 0 {
		t.Errorf("settled mesh still landed %d moduli", landed)
	}
	for i, rep := range replicas {
		if g := rep.journal.Generation(); g != gens[i] {
			t.Errorf("replica %s journal grew %d -> %d after quiescence", rep.addr, gens[i], g)
		}
	}
}

package cluster

import (
	"context"
	"fmt"
	"math/big"
	"testing"

	"github.com/factorable/weakkeys/internal/keycheck"
	"github.com/factorable/weakkeys/internal/telemetry"
)

func TestJournalSince(t *testing.T) {
	j := &Journal{}
	if gen, keys := j.Since(0); gen != 0 || keys != nil {
		t.Fatalf("empty journal: Since(0) = %d/%v", gen, keys)
	}
	if got := j.Append(nil); got != 0 {
		t.Errorf("empty append bumped the generation to %d", got)
	}
	if got := j.Append([]string{"aa", "bb"}); got != 1 {
		t.Errorf("first append generation = %d, want 1", got)
	}
	if got := j.Append([]string{"cc"}); got != 2 {
		t.Errorf("second append generation = %d, want 2", got)
	}
	gen, keys := j.Since(0)
	if gen != 2 || len(keys) != 3 || keys[0] != "aa" || keys[2] != "cc" {
		t.Errorf("Since(0) = %d/%v, want 2/[aa bb cc]", gen, keys)
	}
	if _, keys := j.Since(1); len(keys) != 1 || keys[0] != "cc" {
		t.Errorf("Since(1) = %v, want [cc]", keys)
	}
	if gen, keys := j.Since(2); gen != 2 || keys != nil {
		t.Errorf("Since(head) = %d/%v, want 2/nil", gen, keys)
	}
}

// TestJournalCoalesce overflows the entry bound: the journal must stay
// bounded while a reader at any position still receives every key
// appended after it — over-delivery is fine, loss is not.
func TestJournalCoalesce(t *testing.T) {
	j := &Journal{}
	const total = maxJournalEntries + 200
	for i := 0; i < total; i++ {
		j.Append([]string{fmt.Sprintf("k%04d", i)})
	}
	j.mu.Lock()
	entries := len(j.entries)
	j.mu.Unlock()
	if entries > maxJournalEntries {
		t.Errorf("journal holds %d entries, bound is %d", entries, maxJournalEntries)
	}
	gen, keys := j.Since(0)
	if gen != total {
		t.Errorf("generation = %d, want %d", gen, total)
	}
	if len(keys) != total {
		t.Fatalf("Since(0) returned %d keys, want all %d", len(keys), total)
	}
	// A reader positioned mid-log gets at least everything after its
	// position (coalescing may re-deliver older keys, never drop newer).
	const pos = total - 50
	_, tail := j.Since(pos)
	want := make(map[string]bool, 50)
	for i := pos; i < total; i++ {
		want[fmt.Sprintf("k%04d", i)] = true
	}
	for _, k := range tail {
		delete(want, k)
	}
	if len(want) != 0 {
		t.Errorf("Since(%d) lost %d keys after the position", pos, len(want))
	}
}

// TestSyncPropagation walks a novel modulus through the full loop:
// routed ingest lands it on one owner of its home shard, anti-entropy
// pulls replicate it to the other owner (and only there — non-owners
// skip it), and the mesh quiesces instead of echoing forever.
func TestSyncPropagation(t *testing.T) {
	rt, replicas := newTestCluster(t, 3, 8, 2)
	ctx := context.Background()
	p := rt.Placement()

	addrs := make([]string, len(replicas))
	baseline := 0
	for i, rep := range replicas {
		addrs[i] = rep.addr
		baseline += rep.svc.Index().Snapshot().Moduli()
	}

	resp := rt.ingest(ctx, []string{modNs.Text(16)}, []*big.Int{modNs})
	if resp.DeltaModuli != 1 || resp.Degraded {
		t.Fatalf("routed ingest = %+v, want one novel modulus landed", resp)
	}

	syncers := make([]*Syncer, len(replicas))
	for i, rep := range replicas {
		syncers[i] = &Syncer{
			Self:    rep.addr,
			Peers:   addrs,
			Service: rep.svc,
			Metrics: telemetry.New(),
		}
	}
	pullAll := func() int {
		landed := 0
		for _, s := range syncers {
			landed += s.PullOnce(ctx)
		}
		return landed
	}
	// Round 1 replicates the key to its other home-shard owner; by the
	// end of round 2 every peer has seen (and deduped or skipped) it.
	pullAll()
	pullAll()

	owners := map[string]bool{}
	for _, o := range p.Owners(keycheck.ShardOf(modNs, p.Shards())) {
		owners[o] = true
	}
	after := 0
	for _, rep := range replicas {
		snap := rep.svc.Index().Snapshot()
		after += snap.Moduli()
		has := snap.Check(modNs).Known
		if owners[rep.addr] && !has {
			t.Errorf("owner %s missing the synced modulus", rep.addr)
		}
		if !owners[rep.addr] && has {
			t.Errorf("non-owner %s indexed a modulus outside its shards", rep.addr)
		}
	}
	if after != baseline+len(owners) {
		t.Errorf("total moduli %d, want baseline %d + %d replication copies", after, baseline, len(owners))
	}

	// The mesh must go quiet: no new deltas, no journal growth.
	gens := make([]uint64, len(replicas))
	for i, rep := range replicas {
		gens[i] = rep.journal.Generation()
	}
	if landed := pullAll(); landed != 0 {
		t.Errorf("settled mesh still landed %d moduli", landed)
	}
	for i, rep := range replicas {
		if g := rep.journal.Generation(); g != gens[i] {
			t.Errorf("replica %s journal grew %d -> %d after quiescence", rep.addr, gens[i], g)
		}
	}
}

package cluster

import (
	"testing"
	"time"
)

func TestBreakerOpensAtThreshold(t *testing.T) {
	now := time.Unix(0, 0)
	b := &Breaker{Threshold: 3, Cooldown: time.Second, now: func() time.Time { return now }}

	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("failure %d: closed breaker refused", i)
		}
		b.Report(false)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state after 2 failures = %v, want closed", b.State())
	}
	b.Allow()
	b.Report(false) // third consecutive failure
	if b.State() != BreakerOpen {
		t.Fatalf("state after 3 failures = %v, want open", b.State())
	}
	if b.Opens() != 1 {
		t.Errorf("opens = %d, want 1", b.Opens())
	}
	if b.Allow() {
		t.Error("open breaker admitted a request before the cooldown")
	}
	if b.Ready() {
		t.Error("open breaker Ready before the cooldown")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	now := time.Unix(0, 0)
	b := &Breaker{Threshold: 1, Cooldown: time.Second, now: func() time.Time { return now }}
	b.Allow()
	b.Report(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}

	now = now.Add(2 * time.Second)
	if !b.Ready() {
		t.Fatal("cooled-down breaker not Ready")
	}
	if !b.Allow() {
		t.Fatal("cooled-down breaker refused the half-open probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	// Exactly one probe slot: a second request is refused while the
	// probe is in flight, and Ready reflects that without consuming it.
	if b.Allow() {
		t.Error("half-open breaker granted a second probe slot")
	}
	if b.Ready() {
		t.Error("half-open breaker with probe in flight claims Ready")
	}

	// Probe failure re-opens for a fresh cooldown.
	b.Report(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	if b.Opens() != 2 {
		t.Errorf("opens = %d, want 2", b.Opens())
	}
	if b.Allow() {
		t.Error("re-opened breaker admitted a request before the new cooldown")
	}

	// Probe success closes.
	now = now.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("second probe refused")
	}
	b.Report(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
	if !b.Allow() {
		t.Error("closed breaker refused")
	}
}

func TestBreakerForgetReleasesProbe(t *testing.T) {
	now := time.Unix(0, 0)
	b := &Breaker{Threshold: 1, Cooldown: time.Second, now: func() time.Time { return now }}
	b.Allow()
	b.Report(false)
	now = now.Add(2 * time.Second)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	// The request was cancelled by the router itself — no signal either
	// way. The slot must come back for the next caller.
	b.Forget()
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after Forget = %v, want half-open", b.State())
	}
	if !b.Allow() {
		t.Error("probe slot not released by Forget")
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	b := &Breaker{Threshold: 3}
	for round := 0; round < 5; round++ {
		b.Allow()
		b.Report(false)
		b.Allow()
		b.Report(false)
		b.Allow()
		b.Report(true) // never three in a row
	}
	if b.State() != BreakerClosed || b.Opens() != 0 {
		t.Errorf("state=%v opens=%d after interleaved successes, want closed/0", b.State(), b.Opens())
	}
}

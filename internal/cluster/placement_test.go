package cluster

import (
	"reflect"
	"testing"
)

var testReplicas = []string{"127.0.0.1:9001", "127.0.0.1:9002", "127.0.0.1:9003"}

func TestPlacementDeterministic(t *testing.T) {
	a, err := NewPlacement(testReplicas, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPlacement(testReplicas, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 8; s++ {
		if !reflect.DeepEqual(a.Owners(s), b.Owners(s)) {
			t.Errorf("shard %d: owners differ between identical placements: %v vs %v",
				s, a.Owners(s), b.Owners(s))
		}
	}
}

func TestPlacementReplication(t *testing.T) {
	p, err := NewPlacement(testReplicas, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < p.Shards(); s++ {
		owners := p.Owners(s)
		if len(owners) != 2 {
			t.Fatalf("shard %d: %d owners, want 2", s, len(owners))
		}
		if owners[0] == owners[1] {
			t.Errorf("shard %d: duplicate owner %s", s, owners[0])
		}
	}
	// OwnedBy must be the inverse of Owners.
	total := 0
	for _, r := range testReplicas {
		owned := p.OwnedBy(r)
		total += len(owned)
		for _, s := range owned {
			found := false
			for _, o := range p.Owners(s) {
				if o == r {
					found = true
				}
			}
			if !found {
				t.Errorf("replica %s claims shard %d but is not in Owners(%d)=%v", r, s, s, p.Owners(s))
			}
		}
	}
	if total != 8*2 {
		t.Errorf("sum of owned shards = %d, want %d", total, 8*2)
	}
	if p.OwnedBy("127.0.0.1:9999") != nil {
		t.Error("OwnedBy(unknown) != nil")
	}
}

// TestPlacementStability pins the rendezvous property the chaos story
// leans on: removing one replica must not move any shard between the
// survivors — only the dead replica's assignments are redistributed.
func TestPlacementStability(t *testing.T) {
	before, err := NewPlacement(testReplicas, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	after, err := NewPlacement(testReplicas[:2], 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 32; s++ {
		was := before.Owners(s)[0]
		if was == testReplicas[2] {
			continue // the removed replica's shards may go anywhere
		}
		if now := after.Owners(s)[0]; now != was {
			t.Errorf("shard %d moved %s -> %s though its owner survived", s, was, now)
		}
	}
}

func TestPlacementClampsReplication(t *testing.T) {
	p, err := NewPlacement(testReplicas[:2], 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p.Replication() != 2 {
		t.Errorf("replication = %d, want clamped 2", p.Replication())
	}
	p, err = NewPlacement(testReplicas, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if p.Replication() != DefaultReplication {
		t.Errorf("replication = %d, want default %d", p.Replication(), DefaultReplication)
	}
}

func TestPlacementRejectsBadInput(t *testing.T) {
	if _, err := NewPlacement(nil, 8, 2); err == nil {
		t.Error("no error for empty replica list")
	}
	if _, err := NewPlacement([]string{"a", "a"}, 8, 2); err == nil {
		t.Error("no error for duplicate replica")
	}
	if _, err := NewPlacement([]string{"a", ""}, 8, 2); err == nil {
		t.Error("no error for empty replica name")
	}
	if _, err := NewPlacement(testReplicas, 0, 2); err == nil {
		t.Error("no error for zero shards")
	}
}

func TestUncovered(t *testing.T) {
	p, err := NewPlacement(testReplicas, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Uncovered(func(string) bool { return true }); got != nil {
		t.Errorf("all alive: uncovered = %v, want none", got)
	}
	// With replication 2 of 3 replicas, killing one replica must leave
	// every shard covered by its surviving owner.
	for _, dead := range testReplicas {
		got := p.Uncovered(func(r string) bool { return r != dead })
		if got != nil {
			t.Errorf("one dead (%s): uncovered = %v, want none", dead, got)
		}
	}
	// Killing two replicas uncovers exactly the shards they co-owned.
	dead := map[string]bool{testReplicas[0]: true, testReplicas[1]: true}
	got := p.Uncovered(func(r string) bool { return !dead[r] })
	for s := 0; s < p.Shards(); s++ {
		owners := p.Owners(s)
		want := dead[owners[0]] && dead[owners[1]]
		has := false
		for _, u := range got {
			if u == s {
				has = true
			}
		}
		if has != want {
			t.Errorf("shard %d (owners %v): uncovered=%v, want %v", s, owners, has, want)
		}
	}
}

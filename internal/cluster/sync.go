package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/factorable/weakkeys/internal/keycheck"
	"github.com/factorable/weakkeys/internal/scanstore"
	"github.com/factorable/weakkeys/internal/telemetry"
)

// Journal is a replica's generation-tagged ingest log: every ingest
// that published a new snapshot appends its novel moduli under the next
// generation, and peers pull the tail with /v1/sync?since=<gen>. The
// generations are per-replica monotonic counters, not global — each
// peer tracks its position in each origin's journal independently, so
// propagation needs no coordination: a full mesh of since-pulls
// converges because re-delivered moduli dedupe to no-ops at ingest.
type Journal struct {
	mu      sync.Mutex
	gen     uint64
	entries []journalEntry
}

type journalEntry struct {
	gen  uint64
	keys []string
}

// maxJournalEntries bounds the entry count; on overflow the oldest half
// is coalesced into fewer entries (keeping every key, each merged run
// under its newest generation), so a stale peer may re-receive moduli
// it already has — which ingest dedupes — but never misses one.
const maxJournalEntries = 512

// maxSyncKeys caps one /v1/sync response at entry granularity: a page
// stops growing once it holds this many keys, and the client loops on
// the returned generation for the rest. A single entry larger than the
// cap is still returned whole (a page must make progress), so the true
// bound per response is max(maxSyncKeys, largest single ingest) —
// bounded in turn by the per-request ingest limits.
const maxSyncKeys = 1024

// Append records one ingest's novel moduli (hex) and returns the new
// generation. Empty appends are ignored.
func (j *Journal) Append(keys []string) uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(keys) == 0 {
		return j.gen
	}
	j.gen++
	j.entries = append(j.entries, journalEntry{gen: j.gen, keys: append([]string(nil), keys...)})
	if len(j.entries) > maxJournalEntries {
		// Coalesce the oldest half into runs of at most maxSyncKeys
		// keys, never merging two entries into a run a single sync page
		// could not carry — merging everything into one entry would
		// make the oldest page unbounded. Runs of already-large entries
		// may not shrink the count below the bound; the bound targets
		// per-entry overhead, not total key retention, which is
		// unbounded by design.
		half := j.entries[:len(j.entries)/2]
		var merged []journalEntry
		for _, e := range half {
			last := len(merged) - 1
			if last >= 0 && len(merged[last].keys)+len(e.keys) <= maxSyncKeys {
				merged[last].keys = append(merged[last].keys, e.keys...)
				merged[last].gen = e.gen
			} else {
				merged = append(merged, journalEntry{gen: e.gen, keys: append([]string(nil), e.keys...)})
			}
		}
		j.entries = append(merged, j.entries[len(half):]...)
	}
	return j.gen
}

// Since returns the current generation and every key appended after
// generation g, oldest first.
func (j *Journal) Since(g uint64) (uint64, []string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var keys []string
	for _, e := range j.entries {
		if e.gen > g {
			keys = append(keys, e.keys...)
		}
	}
	return j.gen, keys
}

// Page returns one bounded page of keys appended after generation g,
// oldest first: up to maxSyncKeys keys at entry granularity, the
// generation through which the page is complete (the puller's next
// since), and whether the journal holds more beyond it. The wire
// protocol uses Page so a restarted or long-lagging peer pulling from
// zero drains the tail in bounded responses instead of one unbounded
// body.
func (j *Journal) Page(g uint64) (gen uint64, keys []string, more bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	gen = g
	for _, e := range j.entries {
		if e.gen <= g {
			continue
		}
		if len(keys) > 0 && len(keys)+len(e.keys) > maxSyncKeys {
			more = true
			break
		}
		keys = append(keys, e.keys...)
		gen = e.gen
	}
	if !more && len(keys) == 0 {
		// Empty tail: report the journal's own generation so the
		// puller's position catches up — or rewinds, if the origin
		// restarted with a fresh journal and g is from its past life.
		gen = j.gen
	}
	return gen, keys, more
}

// Generation returns the journal's current generation.
func (j *Journal) Generation() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.gen
}

// syncResponse is the GET /v1/sync wire document: one page of the
// origin's journal tail.
type syncResponse struct {
	// Generation is the journal generation through which ModuliHex is
	// complete; the puller stores it as its next since.
	Generation uint64 `json:"generation"`
	// ModuliHex is the page of novel moduli ingested after the
	// requested since, oldest first, capped near maxSyncKeys.
	ModuliHex []string `json:"moduli_hex"`
	// More reports that the journal extends past Generation: the puller
	// should loop with since=Generation until it drains the tail.
	More bool `json:"more,omitempty"`
}

// Handler serves GET /v1/sync?since=<gen> over the journal, one bounded
// page per request.
func (j *Journal) Handler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "cluster: GET only", http.StatusMethodNotAllowed)
			return
		}
		var since uint64
		if q := r.URL.Query().Get("since"); q != "" {
			v, err := strconv.ParseUint(q, 10, 64)
			if err != nil {
				http.Error(w, "cluster: since must be a non-negative integer", http.StatusBadRequest)
				return
			}
			since = v
		}
		gen, keys, more := j.Page(since)
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		json.NewEncoder(w).Encode(syncResponse{Generation: gen, ModuliHex: keys, More: more})
	}
}

// Syncer is the pull side of snapshot sync: a background loop that
// periodically asks every peer's journal for moduli ingested since the
// last pull and folds them into the local service. The local snapshot's
// shard ownership filters what actually lands — a replica pulls the
// whole feed but indexes only the moduli homed in its owned shards —
// and moduli the replica already has dedupe away, so the mesh is safe
// to over-deliver on.
type Syncer struct {
	// Self is this replica's placement name (skipped if it appears in
	// Peers).
	Self string
	// Peers are the other replicas' advertised addresses.
	Peers []string
	// Service receives the pulled deltas.
	Service *keycheck.Service
	// Interval between pull rounds (default 1s).
	Interval time.Duration
	// Timeout per pull request (default 5s).
	Timeout time.Duration
	// Metrics/Events receive sync telemetry (nil disables).
	Metrics *telemetry.Registry
	// Events receives sync events (nil disables).
	Events *telemetry.EventLog

	client    *http.Client
	mu        sync.Mutex
	positions map[string]uint64
}

func (s *Syncer) interval() time.Duration {
	if s.Interval > 0 {
		return s.Interval
	}
	return time.Second
}

func (s *Syncer) timeout() time.Duration {
	if s.Timeout > 0 {
		return s.Timeout
	}
	return 5 * time.Second
}

func (s *Syncer) httpClient() *http.Client {
	if s.client == nil {
		s.client = &http.Client{Timeout: s.timeout()}
	}
	return s.client
}

// Run pulls from every peer on the interval until ctx is done.
func (s *Syncer) Run(ctx context.Context) {
	tick := time.NewTicker(s.interval())
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			s.PullOnce(ctx)
		case <-ctx.Done():
			return
		}
	}
}

// PullOnce performs one pull round across all peers and reports how
// many novel moduli landed in the local index.
func (s *Syncer) PullOnce(ctx context.Context) int {
	landed := 0
	for _, peer := range s.Peers {
		if peer == s.Self {
			continue
		}
		n, err := s.pullPeer(ctx, peer)
		if err != nil {
			s.Metrics.Counter(`cluster_sync_errors_total{peer="` + peer + `"}`).Inc()
			s.Events.Debug(ctx, "sync pull failed",
				slog.String("peer", peer),
				slog.String("error", err.Error()))
			continue
		}
		landed += n
	}
	return landed
}

// maxSyncBody bounds one sync page read on the client side. Pages are
// capped near maxSyncKeys keys server-side, but a single oversized
// journal entry (one large ingest) is returned whole, so the limit
// leaves room for the per-request ingest bound at the maximum modulus
// size rather than mirroring the 1 MiB request bound.
const maxSyncBody = 32 << 20

// pullPeer drains a peer's journal tail: one bounded page per request,
// ingested and position-advanced independently, looping while the peer
// reports more. A restarted or long-lagging replica catches up in
// maxSyncKeys-sized steps instead of choking on one unbounded body.
func (s *Syncer) pullPeer(ctx context.Context, peer string) (int, error) {
	landed := 0
	for {
		n, more, err := s.pullPage(ctx, peer)
		landed += n
		if err != nil || !more {
			return landed, err
		}
	}
}

func (s *Syncer) pullPage(ctx context.Context, peer string) (int, bool, error) {
	s.mu.Lock()
	since := s.positions[peer]
	s.mu.Unlock()
	ctx, cancel := context.WithTimeout(ctx, s.timeout())
	defer cancel()
	url := fmt.Sprintf("http://%s/v1/sync?since=%d", peer, since)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, false, err
	}
	resp, err := s.httpClient().Do(req)
	if err != nil {
		return 0, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 256))
		return 0, false, fmt.Errorf("cluster: sync from %s: HTTP %d", peer, resp.StatusCode)
	}
	var sr syncResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxSyncBody)).Decode(&sr); err != nil {
		return 0, false, err
	}
	s.Metrics.Counter("cluster_sync_pulls_total").Inc()
	if sr.More && sr.Generation <= since {
		// A page claiming more without advancing would loop forever; a
		// correct peer always moves past since when it has entries.
		return 0, false, fmt.Errorf("cluster: sync from %s: page stuck at generation %d", peer, since)
	}
	if len(sr.ModuliHex) == 0 {
		s.setPosition(peer, sr.Generation)
		return 0, sr.More, nil
	}
	store := scanstore.New()
	now := time.Now().UTC()
	for _, hex := range sr.ModuliHex {
		n, err := keycheck.ParseModulusHex(hex)
		if err != nil {
			// A peer serving malformed moduli is a peer bug; skip the
			// key, keep the rest of the batch.
			s.Metrics.Counter("cluster_sync_malformed_total").Inc()
			continue
		}
		// SourceSync marks the key as replicated, not observed: the
		// original observation's provenance lives on the origin
		// replica, and per-source statistics must not count this copy
		// as a fresh scan hit.
		store.AddBareKeyObservation(peer, now, scanstore.SourceSync, scanstore.HTTPS, n)
	}
	rep, err := s.Service.Ingest(ctx, keycheck.BuildInput{Store: store})
	if err != nil {
		return 0, false, err
	}
	// Only advance past this page once it is actually in the index; a
	// failed ingest re-pulls the same page next round.
	s.setPosition(peer, sr.Generation)
	s.Metrics.Counter("cluster_sync_moduli_total").Add(int64(rep.DeltaModuli))
	if rep.DeltaModuli > 0 {
		s.Events.Info(ctx, "sync delta ingested",
			slog.String("peer", peer),
			slog.Uint64("generation", sr.Generation),
			slog.Int("novel", rep.DeltaModuli),
			slog.Int("duplicates", rep.Duplicates),
			slog.Int("skipped", rep.Skipped))
	}
	return rep.DeltaModuli, sr.More, nil
}

func (s *Syncer) setPosition(peer string, gen uint64) {
	s.mu.Lock()
	if s.positions == nil {
		s.positions = make(map[string]uint64)
	}
	s.positions[peer] = gen
	s.mu.Unlock()
}

// Positions returns a copy of the per-peer journal positions (for
// status endpoints and tests).
func (s *Syncer) Positions() map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]uint64, len(s.positions))
	for k, v := range s.positions {
		out[k] = v
	}
	return out
}

package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/factorable/weakkeys/internal/keycheck"
	"github.com/factorable/weakkeys/internal/scanstore"
	"github.com/factorable/weakkeys/internal/telemetry"
)

// Journal is a replica's generation-tagged ingest log: every ingest
// that published a new snapshot appends its novel moduli under the next
// generation, and peers pull the tail with /v1/sync?since=<gen>. The
// generations are per-replica monotonic counters, not global — each
// peer tracks its position in each origin's journal independently, so
// propagation needs no coordination: a full mesh of since-pulls
// converges because re-delivered moduli dedupe to no-ops at ingest.
type Journal struct {
	mu      sync.Mutex
	gen     uint64
	entries []journalEntry
}

type journalEntry struct {
	gen  uint64
	keys []string
}

// maxJournalEntries bounds the entry count; on overflow the oldest half
// is coalesced into one entry (keeping every key, under the newest
// merged generation), so a stale peer may re-receive moduli it already
// has — which ingest dedupes — but never misses one.
const maxJournalEntries = 512

// Append records one ingest's novel moduli (hex) and returns the new
// generation. Empty appends are ignored.
func (j *Journal) Append(keys []string) uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(keys) == 0 {
		return j.gen
	}
	j.gen++
	j.entries = append(j.entries, journalEntry{gen: j.gen, keys: append([]string(nil), keys...)})
	if len(j.entries) > maxJournalEntries {
		half := len(j.entries) / 2
		merged := journalEntry{gen: j.entries[half-1].gen}
		for _, e := range j.entries[:half] {
			merged.keys = append(merged.keys, e.keys...)
		}
		j.entries = append([]journalEntry{merged}, j.entries[half:]...)
	}
	return j.gen
}

// Since returns the current generation and every key appended after
// generation g, oldest first.
func (j *Journal) Since(g uint64) (uint64, []string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	var keys []string
	for _, e := range j.entries {
		if e.gen > g {
			keys = append(keys, e.keys...)
		}
	}
	return j.gen, keys
}

// Generation returns the journal's current generation.
func (j *Journal) Generation() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.gen
}

// syncResponse is the GET /v1/sync wire document.
type syncResponse struct {
	// Generation is the origin's journal generation as of this
	// response; the puller stores it as its next since.
	Generation uint64 `json:"generation"`
	// ModuliHex is every novel modulus ingested after the requested
	// since, oldest first.
	ModuliHex []string `json:"moduli_hex"`
}

// Handler serves GET /v1/sync?since=<gen> over the journal.
func (j *Journal) Handler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "cluster: GET only", http.StatusMethodNotAllowed)
			return
		}
		var since uint64
		if q := r.URL.Query().Get("since"); q != "" {
			v, err := strconv.ParseUint(q, 10, 64)
			if err != nil {
				http.Error(w, "cluster: since must be a non-negative integer", http.StatusBadRequest)
				return
			}
			since = v
		}
		gen, keys := j.Since(since)
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		json.NewEncoder(w).Encode(syncResponse{Generation: gen, ModuliHex: keys})
	}
}

// Syncer is the pull side of snapshot sync: a background loop that
// periodically asks every peer's journal for moduli ingested since the
// last pull and folds them into the local service. The local snapshot's
// shard ownership filters what actually lands — a replica pulls the
// whole feed but indexes only the moduli homed in its owned shards —
// and moduli the replica already has dedupe away, so the mesh is safe
// to over-deliver on.
type Syncer struct {
	// Self is this replica's placement name (skipped if it appears in
	// Peers).
	Self string
	// Peers are the other replicas' advertised addresses.
	Peers []string
	// Service receives the pulled deltas.
	Service *keycheck.Service
	// Interval between pull rounds (default 1s).
	Interval time.Duration
	// Timeout per pull request (default 5s).
	Timeout time.Duration
	// Metrics/Events receive sync telemetry (nil disables).
	Metrics *telemetry.Registry
	// Events receives sync events (nil disables).
	Events *telemetry.EventLog

	client    *http.Client
	mu        sync.Mutex
	positions map[string]uint64
}

func (s *Syncer) interval() time.Duration {
	if s.Interval > 0 {
		return s.Interval
	}
	return time.Second
}

func (s *Syncer) timeout() time.Duration {
	if s.Timeout > 0 {
		return s.Timeout
	}
	return 5 * time.Second
}

func (s *Syncer) httpClient() *http.Client {
	if s.client == nil {
		s.client = &http.Client{Timeout: s.timeout()}
	}
	return s.client
}

// Run pulls from every peer on the interval until ctx is done.
func (s *Syncer) Run(ctx context.Context) {
	tick := time.NewTicker(s.interval())
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			s.PullOnce(ctx)
		case <-ctx.Done():
			return
		}
	}
}

// PullOnce performs one pull round across all peers and reports how
// many novel moduli landed in the local index.
func (s *Syncer) PullOnce(ctx context.Context) int {
	landed := 0
	for _, peer := range s.Peers {
		if peer == s.Self {
			continue
		}
		n, err := s.pullPeer(ctx, peer)
		if err != nil {
			s.Metrics.Counter(`cluster_sync_errors_total{peer="` + peer + `"}`).Inc()
			s.Events.Debug(ctx, "sync pull failed",
				slog.String("peer", peer),
				slog.String("error", err.Error()))
			continue
		}
		landed += n
	}
	return landed
}

func (s *Syncer) pullPeer(ctx context.Context, peer string) (int, error) {
	s.mu.Lock()
	since := s.positions[peer]
	s.mu.Unlock()
	ctx, cancel := context.WithTimeout(ctx, s.timeout())
	defer cancel()
	url := fmt.Sprintf("http://%s/v1/sync?since=%d", peer, since)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := s.httpClient().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 256))
		return 0, fmt.Errorf("cluster: sync from %s: HTTP %d", peer, resp.StatusCode)
	}
	var sr syncResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxReplicaBody)).Decode(&sr); err != nil {
		return 0, err
	}
	s.Metrics.Counter("cluster_sync_pulls_total").Inc()
	if len(sr.ModuliHex) == 0 {
		s.setPosition(peer, sr.Generation)
		return 0, nil
	}
	store := scanstore.New()
	now := time.Now().UTC()
	for _, hex := range sr.ModuliHex {
		n, err := keycheck.ParseModulusHex(hex)
		if err != nil {
			// A peer serving malformed moduli is a peer bug; skip the
			// key, keep the rest of the batch.
			s.Metrics.Counter("cluster_sync_malformed_total").Inc()
			continue
		}
		store.AddBareKeyObservation(peer, now, scanstore.SourceCensys, scanstore.HTTPS, n)
	}
	rep, err := s.Service.Ingest(ctx, keycheck.BuildInput{Store: store})
	if err != nil {
		return 0, err
	}
	// Only advance past this batch once it is actually in the index;
	// a failed ingest re-pulls the same tail next round.
	s.setPosition(peer, sr.Generation)
	s.Metrics.Counter("cluster_sync_moduli_total").Add(int64(rep.DeltaModuli))
	if rep.DeltaModuli > 0 {
		s.Events.Info(ctx, "sync delta ingested",
			slog.String("peer", peer),
			slog.Uint64("generation", sr.Generation),
			slog.Int("novel", rep.DeltaModuli),
			slog.Int("duplicates", rep.Duplicates),
			slog.Int("skipped", rep.Skipped))
	}
	return rep.DeltaModuli, nil
}

func (s *Syncer) setPosition(peer string, gen uint64) {
	s.mu.Lock()
	if s.positions == nil {
		s.positions = make(map[string]uint64)
	}
	s.positions[peer] = gen
	s.mu.Unlock()
}

// Positions returns a copy of the per-peer journal positions (for
// status endpoints and tests).
func (s *Syncer) Positions() map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]uint64, len(s.positions))
	for k, v := range s.positions {
		out[k] = v
	}
	return out
}

package faults

import (
	"testing"
	"time"
)

func drawSequence(p *Plan, n int) []Decision {
	out := make([]Decision, n)
	for i := range out {
		out[i] = p.Next()
	}
	return out
}

func TestPlanDeterministicBySeed(t *testing.T) {
	w := Weights{Refuse: 0.2, Reset: 0.2, Stall: 0.1, Truncate: 0.1, Garble: 0.1}
	a := drawSequence(NewPlan(42, w), 1000)
	b := drawSequence(NewPlan(42, w), 1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged: %v vs %v", i, a[i], b[i])
		}
	}
	c := drawSequence(NewPlan(43, w), 1000)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced an identical 1000-decision sequence")
	}
}

func TestPlanWeightsRoughlyHonored(t *testing.T) {
	p := NewPlan(7, Weights{Refuse: 0.5})
	n := 4000
	drawSequence(p, n)
	got := p.Injected()
	refused := got[Refuse]
	if refused < int64(n)*4/10 || refused > int64(n)*6/10 {
		t.Errorf("refuse count %d of %d, want ~50%%", refused, n)
	}
	if got[Garble] != 0 || got[Stall] != 0 {
		t.Errorf("unweighted actions injected: %v", got)
	}
	if p.Connections() != int64(n) {
		t.Errorf("connections = %d, want %d", p.Connections(), n)
	}
}

func TestPlanWeightsOverOneNormalized(t *testing.T) {
	// Sum 2.0 → scaled to 1.0, so Pass never fires.
	p := NewPlan(1, Weights{Refuse: 1, Reset: 1})
	drawSequence(p, 500)
	if n := p.Injected()[Pass]; n != 0 {
		t.Errorf("normalized over-1 weights still passed %d connections", n)
	}
}

func TestEveryN(t *testing.T) {
	p := NewEveryN(3, Reset)
	seq := drawSequence(p, 9)
	for i, d := range seq {
		want := Pass
		if i%3 == 0 {
			want = Reset
		}
		if d.Action != want {
			t.Errorf("conn %d: action %v, want %v", i+1, d.Action, want)
		}
	}
}

func TestCrashAfter(t *testing.T) {
	p := NewEveryN(1000, Pass).CrashAfter(3)
	seq := drawSequence(p, 4)
	for i, d := range seq[:2] {
		if d.Crash {
			t.Errorf("conn %d crashed early", i+1)
		}
	}
	if !seq[2].Crash || !seq[3].Crash {
		t.Error("crash must fire on the 3rd connection and stay fired")
	}
}

func TestNilPlanPasses(t *testing.T) {
	var p *Plan
	if d := p.Next(); d.Action != Pass || d.Crash {
		t.Errorf("nil plan decision: %+v", d)
	}
	if p.CrashAfter(1) != nil {
		t.Error("nil plan CrashAfter should stay nil")
	}
	if p.Connections() != 0 || len(p.Injected()) != 0 {
		t.Error("nil plan should report no activity")
	}
}

func TestNodePlanOneShot(t *testing.T) {
	p := NewNodePlan().Crash(1, PhaseReduce).Straggle(2, PhaseBuild, 50*time.Millisecond)
	if p.CrashFires(0, PhaseReduce) || p.CrashFires(1, PhaseBuild) {
		t.Error("crash fired for the wrong node or phase")
	}
	if !p.CrashFires(1, PhaseReduce) {
		t.Error("scheduled crash did not fire")
	}
	if p.CrashFires(1, PhaseReduce) {
		t.Error("crash must be one-shot: the reassigned subset would die again")
	}
	if d := p.StraggleFor(2, PhaseBuild); d != 50*time.Millisecond {
		t.Errorf("straggle = %v", d)
	}
	if d := p.StraggleFor(2, PhaseBuild); d != 0 {
		t.Errorf("straggle must be one-shot, got %v again", d)
	}
}

func TestNilNodePlan(t *testing.T) {
	var p *NodePlan
	if p.Crash(1, PhaseBuild) != nil || p.Straggle(1, PhaseBuild, time.Second) != nil {
		t.Error("nil node plan chaining should stay nil")
	}
	if p.CrashFires(1, PhaseBuild) || p.StraggleFor(1, PhaseBuild) != 0 {
		t.Error("nil node plan must inject nothing")
	}
}

func TestParseSpecs(t *testing.T) {
	ph, node, err := ParseCrashSpec("reduce:1")
	if err != nil || ph != PhaseReduce || node != 1 {
		t.Errorf("ParseCrashSpec: %v %d %v", ph, node, err)
	}
	for _, bad := range []string{"", "reduce", "fly:1", "reduce:x", "reduce:-2", "reduce:1:2"} {
		if _, _, err := ParseCrashSpec(bad); err == nil {
			t.Errorf("ParseCrashSpec(%q) should fail", bad)
		}
	}
	ph, node, d, err := ParseStraggleSpec("build:2:200ms")
	if err != nil || ph != PhaseBuild || node != 2 || d != 200*time.Millisecond {
		t.Errorf("ParseStraggleSpec: %v %d %v %v", ph, node, d, err)
	}
	for _, bad := range []string{"", "build:2", "fly:2:1s", "build:x:1s", "build:2:zzz", "build:2:-1s"} {
		if _, _, _, err := ParseStraggleSpec(bad); err == nil {
			t.Errorf("ParseStraggleSpec(%q) should fail", bad)
		}
	}
}

// Package faults is the deterministic fault-injection subsystem of the
// reproduction: seeded chaos for the two layers the paper's measurement
// machinery must survive.
//
// Internet scans live in a hostile network — refused connections,
// mid-handshake resets, stalled hosts, truncated or garbled responses,
// devices that fall over after a few probes ("Ten Years of ZMap"
// documents retry/loss handling as core to scan correctness). And the
// paper's 22-node batch-GCD cluster (Section 3.2, Figure 2) must survive
// job failures and stragglers over its 86-minute runs. This package
// provides the injection side of both stories:
//
//   - Plan schedules connection-level faults for a devices.Server, drawn
//     deterministically from a seed, so a real-socket chaos test replays
//     byte-for-byte given the same seed and arrival order.
//   - NodePlan schedules one-shot node crashes and stragglers by
//     (node id, phase) for a distgcd run, driving the supervisor's
//     reassignment path.
//
// Both plan types are nil-safe: every method on a nil plan reports "no
// fault", so production call sites inject unconditionally and pay one
// predicted branch when chaos is off — the same idiom as
// internal/telemetry's nil handles.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Action enumerates the connection-level faults a Plan can inject,
// mirroring what internet scanners actually see.
type Action int

const (
	// Pass injects nothing; the connection is served normally.
	Pass Action = iota
	// Refuse aborts the connection before reading anything — the
	// firewalled/filtered host whose port answers and immediately slams.
	Refuse
	// Reset reads the client hello and then resets the connection
	// (RST, not FIN) — the mid-handshake abort.
	Reset
	// Stall reads the client hello and then never answers, holding the
	// connection open until the client's deadline gives up — the tarpit.
	Stall
	// Truncate sends a well-formed SERVERHELLO header but cuts the
	// certificate payload short before hanging up.
	Truncate
	// Garble sends a corrupted SERVERHELLO line — the protocol violation
	// a scanner must classify as permanent and never retry.
	Garble

	numActions
)

var actionNames = [numActions]string{"pass", "refuse", "reset", "stall", "truncate", "garble"}

func (a Action) String() string {
	if a < 0 || a >= numActions {
		return fmt.Sprintf("faults.Action(%d)", int(a))
	}
	return actionNames[a]
}

// Weights sets the per-connection probability of each fault. Each field
// is in [0,1]; negative values count as 0. If the sum exceeds 1 the
// weights are scaled down proportionally; any remainder is Pass.
type Weights struct {
	Refuse, Reset, Stall, Truncate, Garble float64
}

func (w Weights) normalized() Weights {
	clamp := func(v float64) float64 {
		if v < 0 || v != v { // negative or NaN
			return 0
		}
		return v
	}
	w.Refuse, w.Reset, w.Stall = clamp(w.Refuse), clamp(w.Reset), clamp(w.Stall)
	w.Truncate, w.Garble = clamp(w.Truncate), clamp(w.Garble)
	if sum := w.Refuse + w.Reset + w.Stall + w.Truncate + w.Garble; sum > 1 {
		w.Refuse /= sum
		w.Reset /= sum
		w.Stall /= sum
		w.Truncate /= sum
		w.Garble /= sum
	}
	return w
}

// Decision is the plan's verdict for one accepted connection.
type Decision struct {
	Action Action
	// Crash marks this connection as the device's last: the server
	// aborts it and stops listening (the crash-after-N-connections
	// firmware failure).
	Crash bool
}

// Plan is a deterministic, seeded per-connection fault schedule. The
// decision sequence is a pure function of the seed (and, in every-N
// mode, of the arrival index), so a chaos run replays exactly under the
// same seed and connection order. Next is safe for concurrent use; when
// several servers share one Plan they draw from one global sequence.
type Plan struct {
	mu       sync.Mutex
	rng      *rand.Rand // nil in every-N mode
	weights  Weights
	everyN   int
	everyAct Action
	crashAt  int64 // crash on this 1-based connection; 0 = never
	conns    int64
	counts   [numActions]int64
}

// NewPlan returns a Plan drawing faults at the given per-connection
// probabilities from a seeded generator.
func NewPlan(seed int64, w Weights) *Plan {
	return &Plan{rng: rand.New(rand.NewSource(seed)), weights: w.normalized()}
}

// NewEveryN returns a Plan that injects action on connections 1, n+1,
// 2n+1, ... (a 1/n deterministic fault rate). Unlike the probabilistic
// plan, a retried connection immediately after a faulted one always
// passes (for n >= 2), so recovery is guaranteed by construction —
// the shape end-to-end chaos tests want. n < 1 is treated as 1 (every
// connection faulted).
func NewEveryN(n int, action Action) *Plan {
	if n < 1 {
		n = 1
	}
	return &Plan{everyN: n, everyAct: action}
}

// CrashAfter arranges for the device to crash on its n-th accepted
// connection (1-based): that connection is aborted and the listener
// closes. n <= 0 disables. Returns p for chaining.
func (p *Plan) CrashAfter(n int) *Plan {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.crashAt = int64(n)
	return p
}

// Next draws the decision for the next accepted connection. A nil plan
// always passes.
func (p *Plan) Next() Decision {
	if p == nil {
		return Decision{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.conns++
	if p.crashAt > 0 && p.conns >= p.crashAt {
		return Decision{Crash: true}
	}
	var a Action
	if p.everyN > 0 {
		if (p.conns-1)%int64(p.everyN) == 0 {
			a = p.everyAct
		}
	} else {
		u := p.rng.Float64()
		w := p.weights
		switch {
		case u < w.Refuse:
			a = Refuse
		case u < w.Refuse+w.Reset:
			a = Reset
		case u < w.Refuse+w.Reset+w.Stall:
			a = Stall
		case u < w.Refuse+w.Reset+w.Stall+w.Truncate:
			a = Truncate
		case u < w.Refuse+w.Reset+w.Stall+w.Truncate+w.Garble:
			a = Garble
		}
	}
	p.counts[a]++
	return Decision{Action: a}
}

// Connections returns how many decisions the plan has issued.
func (p *Plan) Connections() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.conns
}

// Injected returns the per-action tally of decisions issued so far
// (Pass included).
func (p *Plan) Injected() map[Action]int64 {
	m := make(map[Action]int64)
	if p == nil {
		return m
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for a, n := range p.counts {
		if n > 0 {
			m[Action(a)] = n
		}
	}
	return m
}

// Phase identifies a distributed-GCD phase for node-level injection.
type Phase string

const (
	// PhaseBuild is the subset product-tree construction phase.
	PhaseBuild Phase = "build"
	// PhaseReduce is the all-products remainder/GCD phase.
	PhaseReduce Phase = "reduce"
)

// ErrNodeCrash marks an injected cluster-node death; the distgcd
// supervisor detects it (like any other node error) and reassigns the
// dead node's subset to a survivor.
var ErrNodeCrash = errors.New("faults: injected node crash")

type nodePhase struct {
	node  int
	phase Phase
}

// NodePlan schedules node failures and stragglers for a distributed
// batch-GCD run. Every injection is one-shot: once a crash or straggle
// has fired for a (node, phase) it is consumed, so the reassigned or
// speculative re-execution of that subset survives — which is exactly
// the cluster-rescheduling behaviour being tested. A nil NodePlan
// injects nothing.
type NodePlan struct {
	mu       sync.Mutex
	crash    map[nodePhase]bool
	straggle map[nodePhase]time.Duration
}

// NewNodePlan returns an empty NodePlan.
func NewNodePlan() *NodePlan {
	return &NodePlan{
		crash:    make(map[nodePhase]bool),
		straggle: make(map[nodePhase]time.Duration),
	}
}

// Crash schedules node to die at the start of phase. Returns p for
// chaining.
func (p *NodePlan) Crash(node int, phase Phase) *NodePlan {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.crash[nodePhase{node, phase}] = true
	return p
}

// Straggle schedules node to stall for d at the start of phase — long
// enough, relative to the supervisor's straggler timeout, to trigger
// speculative re-execution. Returns p for chaining.
func (p *NodePlan) Straggle(node int, phase Phase, d time.Duration) *NodePlan {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.straggle[nodePhase{node, phase}] = d
	return p
}

// CrashFires reports whether a crash is scheduled for (node, phase) and
// consumes it.
func (p *NodePlan) CrashFires(node int, phase Phase) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	key := nodePhase{node, phase}
	if p.crash[key] {
		delete(p.crash, key)
		return true
	}
	return false
}

// StraggleFor returns the stall scheduled for (node, phase), consuming
// it; zero means none.
func (p *NodePlan) StraggleFor(node int, phase Phase) time.Duration {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	key := nodePhase{node, phase}
	d := p.straggle[key]
	if d > 0 {
		delete(p.straggle, key)
	}
	return d
}

func parsePhase(s string) (Phase, error) {
	switch Phase(s) {
	case PhaseBuild, PhaseReduce:
		return Phase(s), nil
	}
	return "", fmt.Errorf("faults: unknown phase %q (want %q or %q)", s, PhaseBuild, PhaseReduce)
}

// ParseCrashSpec parses a CLI crash spec of the form "phase:node",
// e.g. "reduce:1".
func ParseCrashSpec(s string) (Phase, int, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 2 {
		return "", 0, fmt.Errorf("faults: crash spec %q, want phase:node", s)
	}
	ph, err := parsePhase(parts[0])
	if err != nil {
		return "", 0, err
	}
	node, err := strconv.Atoi(parts[1])
	if err != nil || node < 0 {
		return "", 0, fmt.Errorf("faults: crash spec %q: bad node id", s)
	}
	return ph, node, nil
}

// ParseStraggleSpec parses a CLI straggle spec of the form
// "phase:node:duration", e.g. "build:2:200ms".
func ParseStraggleSpec(s string) (Phase, int, time.Duration, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return "", 0, 0, fmt.Errorf("faults: straggle spec %q, want phase:node:duration", s)
	}
	ph, err := parsePhase(parts[0])
	if err != nil {
		return "", 0, 0, err
	}
	node, err := strconv.Atoi(parts[1])
	if err != nil || node < 0 {
		return "", 0, 0, fmt.Errorf("faults: straggle spec %q: bad node id", s)
	}
	d, err := time.ParseDuration(parts[2])
	if err != nil || d <= 0 {
		return "", 0, 0, fmt.Errorf("faults: straggle spec %q: bad duration", s)
	}
	return ph, node, d, nil
}

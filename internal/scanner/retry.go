package scanner

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// Error causes, as recorded in scanner_retries_total{cause=...}. The
// classification drives the retry policy: network-weather failures
// (refused, reset, timeout) are transient and worth retrying; protocol
// violations and certificate parse failures are properties of the
// endpoint and retrying them only burns budget — the distinction ZMap-
// style scan loops are built around.
const (
	CauseRefused   = "refused"
	CauseReset     = "reset"
	CauseTimeout   = "timeout"
	CauseCanceled  = "canceled"
	CausePermanent = "permanent"
)

// Cause buckets an error for metrics and for the retry policy.
func Cause(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The scan is being shut down, not the target misbehaving:
		// never spend retries on it.
		return CauseCanceled
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return CauseTimeout
	}
	switch {
	case errors.Is(err, syscall.ECONNREFUSED):
		return CauseRefused
	case errors.Is(err, syscall.ECONNRESET), errors.Is(err, syscall.EPIPE),
		errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
		// The peer hung up mid-handshake (an abrupt close or RST lands
		// as EOF/unexpected-EOF through the buffered reader).
		return CauseReset
	}
	return CausePermanent
}

// Transient reports whether err is worth retrying: connection refused,
// connection reset / mid-handshake hangup, or a timeout. Protocol
// violations, certificate parse errors and cancellation are permanent.
func Transient(err error) bool {
	switch Cause(err) {
	case CauseRefused, CauseReset, CauseTimeout:
		return true
	}
	return false
}

// Budget is a shared cap on retries across one operation — a scan, or
// the cluster router's request fan-out. A dying network must not
// multiply traffic — exactly the abuse-throttling concern that gets
// internet scanners blocklisted, and the retry-storm guard a router in
// front of a degraded cluster needs.
type Budget struct {
	n atomic.Int64
}

// NewBudget returns a budget of n retries.
func NewBudget(n int64) *Budget {
	b := &Budget{}
	b.n.Store(n)
	return b
}

// Take consumes one retry if any remain.
func (b *Budget) Take() bool {
	for {
		v := b.n.Load()
		if v <= 0 {
			return false
		}
		if b.n.CompareAndSwap(v, v-1) {
			return true
		}
	}
}

// Remaining reports how many retries are left.
func (b *Budget) Remaining() int64 { return b.n.Load() }

// Jitter is a mutex-guarded seeded source for backoff jitter, so
// same-seed runs draw the same jitter sequence.
type Jitter struct {
	mu sync.Mutex
	r  *rand.Rand
}

// NewJitter returns a seeded jitter source.
func NewJitter(seed int64) *Jitter {
	return &Jitter{r: rand.New(rand.NewSource(seed))}
}

// Jitter spreads d over [0.5d, 1.5d) so synchronized failures don't
// retry in lockstep (the thundering-herd guard).
func (l *Jitter) Jitter(d time.Duration) time.Duration {
	l.mu.Lock()
	f := 0.5 + l.r.Float64()
	l.mu.Unlock()
	return time.Duration(float64(d) * f)
}

// sleepCtx waits d or until the context is done; it reports whether the
// full wait elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

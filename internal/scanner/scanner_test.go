package scanner

import (
	"context"
	"fmt"
	"math/big"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/factorable/weakkeys/internal/certs"
	"github.com/factorable/weakkeys/internal/devices"
	"github.com/factorable/weakkeys/internal/scanstore"
	"github.com/factorable/weakkeys/internal/weakrsa"
)

// fleet starts n device servers and returns their addresses.
func fleet(t *testing.T, n int, crashOnHeartbeat bool) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		k, err := weakrsa.GenerateKey(rand.New(rand.NewSource(int64(100+i))), weakrsa.Options{Bits: 96})
		if err != nil {
			t.Fatal(err)
		}
		c, err := certs.SelfSigned(big.NewInt(int64(i)),
			certs.Name{CommonName: fmt.Sprintf("dev-%d", i), Organization: "FleetVendor"},
			time.Unix(0, 0), time.Unix(1<<40, 0), nil, k.N, k.E, k.D)
		if err != nil {
			t.Fatal(err)
		}
		srv := &devices.Server{Cert: c, CrashOnHeartbeat: crashOnHeartbeat}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		t.Cleanup(func() { srv.Close() })
		addrs[i] = ln.Addr().String()
	}
	return addrs
}

func TestScanFleet(t *testing.T) {
	addrs := fleet(t, 10, false)
	results, err := Scan(context.Background(), addrs, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 10 {
		t.Fatalf("results: %d", len(results))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Errorf("target %d: %v", i, r.Err)
			continue
		}
		if r.Cert == nil || r.Cert.Subject.Organization != "FleetVendor" {
			t.Errorf("target %d: bad cert", i)
		}
		if r.Addr != addrs[i] {
			t.Errorf("result order broken at %d", i)
		}
	}
}

func TestScanUnreachableTarget(t *testing.T) {
	// A closed port: reserve one by listening and closing.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()
	addrs := append(fleet(t, 2, false), dead)
	results, err := Scan(context.Background(), addrs, Options{Workers: 2, Timeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if results[2].Err == nil {
		t.Error("dead target should error")
	}
	if results[0].Err != nil || results[1].Err != nil {
		t.Error("live targets should still succeed")
	}
}

func TestScanContextCancellation(t *testing.T) {
	addrs := fleet(t, 4, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := Scan(ctx, addrs, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	for _, r := range results {
		if r.Err != nil {
			errs++
		}
	}
	if errs == 0 {
		t.Error("cancelled scan should produce errors")
	}
}

func TestScanHeartbeatProbe(t *testing.T) {
	good := fleet(t, 2, false)
	results, err := Scan(context.Background(), good, Options{ProbeHeartbeat: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil || !r.HeartbeatOK {
			t.Errorf("patched device %d: err=%v hbOK=%v", i, r.Err, r.HeartbeatOK)
		}
	}
	crashy := fleet(t, 2, true)
	results, err = Scan(context.Background(), crashy, Options{ProbeHeartbeat: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Errorf("cert fetch should succeed before crash: %d %v", i, r.Err)
		}
		if r.HeartbeatOK {
			t.Errorf("crash-prone device %d should fail the probe", i)
		}
	}
}

func TestHarvestIntoStore(t *testing.T) {
	addrs := fleet(t, 6, false)
	store := scanstore.New()
	date := time.Date(2016, 4, 11, 0, 0, 0, 0, time.UTC)
	_, sum, err := Harvest(context.Background(), store, date, scanstore.SourceCensys, addrs, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Stored != 6 {
		t.Errorf("stored = %d, want 6", sum.Stored)
	}
	if len(sum.Retryable) != 0 || sum.StoreErrors != 0 {
		t.Errorf("clean harvest summary: %+v", sum)
	}
	st := store.Stats(scanstore.HTTPS)
	if st.HostRecords != 6 || st.DistinctCerts != 6 {
		t.Errorf("stats: %+v", st)
	}
	if !st.FirstScan.Equal(date) {
		t.Errorf("scan date: %v", st.FirstScan)
	}
}

func TestScanRateLimit(t *testing.T) {
	addrs := fleet(t, 6, false)
	// At 50 probes/second, 6 targets need at least ~100ms of pacing.
	start := time.Now()
	results, err := Scan(context.Background(), addrs, Options{Workers: 6, RatePerSecond: 50})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("scan error under rate limit: %v", r.Err)
		}
	}
	if elapsed < 100*time.Millisecond {
		t.Errorf("6 probes at 50/s finished in %v; pacing not applied", elapsed)
	}
}

func TestScanRateLimitCancellation(t *testing.T) {
	addrs := fleet(t, 4, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := Scan(ctx, addrs, Options{Workers: 1, RatePerSecond: 1}) // 1/s: would take 4s
	if err != nil {
		t.Fatal(err)
	}
	errs := 0
	for _, r := range results {
		if r.Err != nil {
			errs++
		}
	}
	if errs == 0 {
		t.Error("cancellation under pacing should error remaining targets")
	}
}

func TestScanNegativeRateRejected(t *testing.T) {
	_, err := Scan(context.Background(), []string{"127.0.0.1:1"}, Options{RatePerSecond: -5})
	if err == nil {
		t.Fatal("negative RatePerSecond must be rejected, not treated as unlimited")
	}
	if _, _, err := Harvest(context.Background(), scanstore.New(), time.Now(), scanstore.SourceCensys,
		[]string{"127.0.0.1:1"}, Options{RatePerSecond: -1}); err == nil {
		t.Fatal("Harvest must propagate the options error")
	}
}

func TestScanProgressHook(t *testing.T) {
	addrs := fleet(t, 5, false)
	var mu sync.Mutex
	var dones []int
	total := 0
	results, err := Scan(context.Background(), addrs, Options{Workers: 3,
		Progress: func(done, n int) { mu.Lock(); dones = append(dones, done); total = n; mu.Unlock() }})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("target %d: %v", i, r.Err)
		}
	}
	if len(dones) != 5 || total != 5 {
		t.Fatalf("progress calls = %v (total %d), want 5 monotone calls", dones, total)
	}
	for i, d := range dones {
		if d != i+1 {
			t.Errorf("progress done[%d] = %d, want %d", i, d, i+1)
		}
	}
}

// TestBackoffCapped is the regression test for the unbounded-doubling
// bug: backoff *= 2 with no ceiling wrapped negative after enough
// retries and, before that, grew a single target's retry schedule past
// any scan deadline. The capped schedule's total sleep is bounded by
// attempts x max(Timeout, 1s) even before jitter.
func TestBackoffCapped(t *testing.T) {
	o := Options{Timeout: 3 * time.Second, RetryBackoff: 25 * time.Millisecond}
	cap := maxBackoff(o)
	if cap != 3*time.Second {
		t.Fatalf("maxBackoff = %v, want Timeout", cap)
	}
	// Sub-second timeouts keep a 1s pause floor.
	if got := maxBackoff(Options{Timeout: 50 * time.Millisecond}); got != time.Second {
		t.Fatalf("maxBackoff floor = %v, want 1s", got)
	}

	var total time.Duration
	backoff := o.RetryBackoff
	const retries = 100 // far past the ~40 doublings that used to overflow
	for i := 0; i < retries; i++ {
		if backoff <= 0 {
			t.Fatalf("retry %d: non-positive backoff %v", i, backoff)
		}
		if backoff > cap {
			t.Fatalf("retry %d: backoff %v exceeds cap %v", i, backoff, cap)
		}
		total += backoff
		backoff = DoubleBackoff(backoff, cap)
	}
	if limit := time.Duration(retries) * cap; total > limit {
		t.Fatalf("total sleep %v exceeds bound %v", total, limit)
	}
	// The old schedule overflows exactly where the capped one saturates.
	if d := DoubleBackoff(time.Duration(1)<<62, cap); d != cap {
		t.Errorf("overflow step = %v, want saturation at %v", d, cap)
	}
}

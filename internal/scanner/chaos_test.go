package scanner

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/big"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/factorable/weakkeys/internal/certs"
	"github.com/factorable/weakkeys/internal/devices"
	"github.com/factorable/weakkeys/internal/faults"
	"github.com/factorable/weakkeys/internal/scanstore"
	"github.com/factorable/weakkeys/internal/telemetry"
	"github.com/factorable/weakkeys/internal/weakrsa"
)

// faultyFleet starts n device servers whose fault plans come from
// planFor (nil plan = healthy). Key material matches fleet(): same index,
// same key, so a chaos fleet and a clean fleet serve identical certs.
func faultyFleet(t *testing.T, n int, planFor func(i int) *faults.Plan) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		k, err := weakrsa.GenerateKey(rand.New(rand.NewSource(int64(100+i))), weakrsa.Options{Bits: 96})
		if err != nil {
			t.Fatal(err)
		}
		c, err := certs.SelfSigned(big.NewInt(int64(i)),
			certs.Name{CommonName: fmt.Sprintf("dev-%d", i), Organization: "FleetVendor"},
			time.Unix(0, 0), time.Unix(1<<40, 0), nil, k.N, k.E, k.D)
		if err != nil {
			t.Fatal(err)
		}
		srv := &devices.Server{Cert: c, Faults: planFor(i)}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ln)
		t.Cleanup(func() { srv.Close() })
		addrs[i] = ln.Addr().String()
	}
	return addrs
}

func moduliSet(results []Result) map[string]bool {
	set := make(map[string]bool)
	for _, r := range results {
		if r.Err == nil && r.Cert != nil {
			set[string(r.Cert.N.Bytes())] = true
		}
	}
	return set
}

// TestRetryRecoversFromTransientFaults is the scanner half of the chaos
// acceptance: every device resets its first connection (a 50% injected
// transient-failure rate), and the retrying scan still harvests the
// exact certificate set a fault-free scan of the same fleet does.
func TestRetryRecoversFromTransientFaults(t *testing.T) {
	const n = 8
	clean := faultyFleet(t, n, func(int) *faults.Plan { return nil })
	cleanResults, err := Scan(context.Background(), clean, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	reg := telemetry.New()
	chaos := faultyFleet(t, n, func(int) *faults.Plan { return faults.NewEveryN(2, faults.Reset) })
	chaosResults, err := Scan(context.Background(), chaos, Options{
		Workers:      4,
		Timeout:      5 * time.Second,
		RetryBackoff: time.Millisecond,
		Metrics:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range chaosResults {
		if r.Err != nil {
			t.Fatalf("target %d not recovered: %v (attempts %d)", i, r.Err, r.Attempts)
		}
		if r.Attempts != 2 {
			t.Errorf("target %d: attempts = %d, want 2 (reset then success)", i, r.Attempts)
		}
	}
	want, got := moduliSet(cleanResults), moduliSet(chaosResults)
	if len(got) != len(want) {
		t.Fatalf("chaos harvest %d moduli, fault-free %d", len(got), len(want))
	}
	for m := range want {
		if !got[m] {
			t.Error("chaos harvest missing a modulus the clean scan saw")
		}
	}
	if v := reg.CounterValue(`scanner_retries_total{cause="reset"}`); v != n {
		t.Errorf("scanner_retries_total{cause=reset} = %d, want %d", v, n)
	}
	if v := reg.CounterValue("scanner_attempts_total"); v != 2*n {
		t.Errorf("scanner_attempts_total = %d, want %d", v, 2*n)
	}
}

func TestNoRetryOnPermanentError(t *testing.T) {
	reg := telemetry.New()
	addrs := faultyFleet(t, 2, func(int) *faults.Plan { return faults.NewEveryN(1, faults.Garble) })
	results, err := Scan(context.Background(), addrs, Options{Workers: 2, RetryBackoff: time.Millisecond, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err == nil {
			t.Fatalf("target %d: garbled handshake should fail", i)
		}
		if r.Attempts != 1 {
			t.Errorf("target %d: attempts = %d, want 1 (permanent errors are not retried)", i, r.Attempts)
		}
		if r.Transient {
			t.Errorf("target %d: protocol violation classified transient", i)
		}
	}
	for _, c := range reg.Snapshot().Counters {
		if c.Value != 0 && strings.HasPrefix(c.Name, "scanner_retries_total") {
			t.Errorf("retry counter %s = %d on permanent errors", c.Name, c.Value)
		}
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	reg := telemetry.New()
	// Every connection resets, so only the global budget bounds the
	// scan's total attempts: 3 targets, 3 retries to spend.
	addrs := faultyFleet(t, 3, func(int) *faults.Plan { return faults.NewEveryN(1, faults.Reset) })
	results, err := Scan(context.Background(), addrs, Options{
		Workers:      1, // serialize so budget spend is deterministic
		MaxAttempts:  5,
		RetryBudget:  3,
		RetryBackoff: time.Millisecond,
		Metrics:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	totalAttempts := 0
	for _, r := range results {
		if r.Err == nil {
			t.Fatal("always-reset target cannot succeed")
		}
		if !r.Transient {
			t.Errorf("reset classified as %q", Cause(r.Err))
		}
		totalAttempts += r.Attempts
	}
	// 3 first attempts plus exactly the 3 budgeted retries.
	if totalAttempts != 6 {
		t.Errorf("total attempts = %d, want 6 (budget must cap retries)", totalAttempts)
	}
	if v := reg.CounterValue("scanner_retry_budget_exhausted_total"); v == 0 {
		t.Error("budget exhaustion not recorded")
	}
}

func TestStallRetriedAsTimeout(t *testing.T) {
	reg := telemetry.New()
	addrs := faultyFleet(t, 1, func(int) *faults.Plan { return faults.NewEveryN(2, faults.Stall) })
	results, err := Scan(context.Background(), addrs, Options{
		Workers:      1,
		Timeout:      200 * time.Millisecond,
		RetryBackoff: time.Millisecond,
		Metrics:      reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil {
		t.Fatalf("stalled-once target not recovered: %v", results[0].Err)
	}
	if results[0].Attempts != 2 {
		t.Errorf("attempts = %d, want 2", results[0].Attempts)
	}
	if v := reg.CounterValue(`scanner_retries_total{cause="timeout"}`); v != 1 {
		t.Errorf("scanner_retries_total{cause=timeout} = %d, want 1", v)
	}
}

func TestScanHugeRateClampedNotPanic(t *testing.T) {
	addrs := faultyFleet(t, 2, func(int) *faults.Plan { return nil })
	// Above ~1e9/s the naive tick interval truncates to 0 and
	// time.NewTicker(0) panics; the clamp must absorb it. Inf likewise.
	for _, rate := range []float64{5e9, 1e12, math.Inf(1)} {
		results, err := Scan(context.Background(), addrs, Options{Workers: 2, RatePerSecond: rate})
		if err != nil {
			t.Fatalf("rate %g rejected: %v", rate, err)
		}
		for i, r := range results {
			if r.Err != nil {
				t.Errorf("rate %g target %d: %v", rate, i, r.Err)
			}
		}
	}
	if _, err := Scan(context.Background(), addrs, Options{RatePerSecond: math.NaN()}); err == nil {
		t.Error("NaN rate must be rejected")
	}
}

func TestHarvestAggregatesStoreErrors(t *testing.T) {
	k, err := weakrsa.GenerateKey(rand.New(rand.NewSource(500)), weakrsa.Options{Bits: 96})
	if err != nil {
		t.Fatal(err)
	}
	good, err := certs.SelfSigned(big.NewInt(9), certs.Name{CommonName: "ok"},
		time.Unix(0, 0), time.Unix(1<<40, 0), nil, k.N, k.E, k.D)
	if err != nil {
		t.Fatal(err)
	}
	results := []Result{
		// An unstorable observation (no modulus): must not abort the loop.
		{Addr: "10.0.0.1:443", Cert: &certs.Certificate{}},
		{Addr: "10.0.0.2:443", Cert: good},
		{Addr: "10.0.0.3:443", Err: errors.New("reset"), Transient: true},
		{Addr: "10.0.0.4:443", Err: errors.New("garbled"), Transient: false},
	}
	store := scanstore.New()
	sum, err := storeResults(store, time.Date(2016, 4, 11, 0, 0, 0, 0, time.UTC), scanstore.SourceCensys, results)
	if err == nil {
		t.Fatal("store failure must be reported")
	}
	if sum.Stored != 1 {
		t.Errorf("stored = %d, want 1: later observations must survive an earlier store error", sum.Stored)
	}
	if sum.StoreErrors != 1 {
		t.Errorf("store errors = %d, want 1", sum.StoreErrors)
	}
	if len(sum.Retryable) != 1 || sum.Retryable[0] != "10.0.0.3:443" {
		t.Errorf("retryable = %v, want only the transient failure", sum.Retryable)
	}
}

func TestHarvestReturnsRetryableTargets(t *testing.T) {
	live := faultyFleet(t, 2, func(int) *faults.Plan { return nil })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()
	targets := append(live, dead)
	store := scanstore.New()
	_, sum, err := Harvest(context.Background(), store, time.Now(), scanstore.SourceCensys, targets, Options{
		Workers: 2, Timeout: 2 * time.Second, MaxAttempts: 2, RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Stored != 2 {
		t.Errorf("stored = %d, want 2", sum.Stored)
	}
	if len(sum.Retryable) != 1 || sum.Retryable[0] != dead {
		t.Errorf("retryable = %v, want the refused target for the resume pass", sum.Retryable)
	}
}

// Package scanner implements the certificate-harvesting client side of the
// study: a zmap-style concurrent TCP scanner that connects to device
// management interfaces, performs the certificate-fetch handshake, and
// records host observations. The paper's sources used Nmap+Python (EFF,
// P&Q) and ZMap+custom fetchers (Ecosystem, Rapid7, Censys); the worker-
// pool architecture here mirrors the latter.
package scanner

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/factorable/weakkeys/internal/certs"
	"github.com/factorable/weakkeys/internal/devices"
	"github.com/factorable/weakkeys/internal/scanstore"
	"github.com/factorable/weakkeys/internal/telemetry"
)

// Options configures a scan.
type Options struct {
	// Workers is the number of concurrent connections (default 16).
	Workers int
	// Timeout bounds each connection attempt and handshake (default 5s).
	Timeout time.Duration
	// ProbeHeartbeat, when set, additionally sends a heartbeat probe
	// after fetching the certificate — the Heartbleed-scan behaviour
	// that crashed some devices in the wild.
	ProbeHeartbeat bool
	// RatePerSecond caps connection attempts per second (0 = unlimited).
	// ZMap-era scanners pace probes to be polite to networks; the
	// Ecosystem scans took 18 hours for the IPv4 space at their chosen
	// rate. Negative values are rejected — a sign-flipped rate silently
	// becoming "unlimited" is exactly the kind of config slip that gets
	// scanners abuse reports.
	RatePerSecond float64
	// Progress, when set, is called after each target completes with the
	// number of finished targets and the total. Calls are serialized but
	// may come from any worker goroutine.
	Progress func(done, total int)
	// Metrics, when set, receives live scan telemetry: the
	// scanner_dial_seconds and scanner_handshake_seconds latency
	// histograms, scanner_targets_total / scanner_certs_total counters,
	// and per-cause scanner_errors_total{cause="dial"|"handshake"|
	// "heartbeat"} counters — the continuous rate/error telemetry a
	// ZMap-style scan loop is operated by.
	Metrics *telemetry.Registry
}

// instruments is the set of metric handles a scan resolves once up
// front, so workers touch only atomics on the per-target hot path. All
// handles are the nil no-op kind when Options.Metrics is unset.
type instruments struct {
	dial      *telemetry.Histogram
	handshake *telemetry.Histogram
	targets   *telemetry.Counter
	certs     *telemetry.Counter
	dialErrs  *telemetry.Counter
	hsErrs    *telemetry.Counter
	hbErrs    *telemetry.Counter
	inFlight  *telemetry.Gauge
}

func (o Options) instruments() instruments {
	reg := o.Metrics
	return instruments{
		dial:      reg.Histogram("scanner_dial_seconds", telemetry.DurationBuckets),
		handshake: reg.Histogram("scanner_handshake_seconds", telemetry.DurationBuckets),
		targets:   reg.Counter("scanner_targets_total"),
		certs:     reg.Counter("scanner_certs_total"),
		dialErrs:  reg.Counter(`scanner_errors_total{cause="dial"}`),
		hsErrs:    reg.Counter(`scanner_errors_total{cause="handshake"}`),
		hbErrs:    reg.Counter(`scanner_errors_total{cause="heartbeat"}`),
		inFlight:  reg.Gauge("scanner_inflight_connections"),
	}
}

func (o Options) withDefaults() (Options, error) {
	if o.RatePerSecond < 0 {
		return o, fmt.Errorf("scanner: RatePerSecond must be >= 0, got %g", o.RatePerSecond)
	}
	if o.Workers <= 0 {
		o.Workers = 16
	}
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Second
	}
	return o, nil
}

// Result is the outcome for one target address.
type Result struct {
	Addr string
	Cert *certs.Certificate
	// Suites is the cipher-suite families the server advertised.
	Suites []string
	// HeartbeatOK reports whether the heartbeat probe (if requested)
	// got a correct response.
	HeartbeatOK bool
	Err         error
}

// Scan fetches certificates from every target concurrently. Results are
// returned in target order. The context cancels outstanding dials. An
// error is returned only for invalid Options; per-target failures are
// reported in the corresponding Result.
func Scan(ctx context.Context, targets []string, opts Options) ([]Result, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	results := make([]Result, len(targets))
	jobs := make(chan int)
	var wg sync.WaitGroup
	var progressMu sync.Mutex
	done := 0
	finish := func() {
		if o.Progress == nil {
			return
		}
		progressMu.Lock()
		done++
		o.Progress(done, len(targets))
		progressMu.Unlock()
	}
	ins := o.instruments()
	for w := 0; w < o.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = scanOne(ctx, targets[i], o, ins)
				finish()
			}
		}()
	}
	var pace <-chan time.Time
	if o.RatePerSecond > 0 {
		ticker := time.NewTicker(time.Duration(float64(time.Second) / o.RatePerSecond))
		defer ticker.Stop()
		pace = ticker.C
	}
dispatch:
	for i := range targets {
		if pace != nil {
			select {
			case <-pace:
			case <-ctx.Done():
				for j := i; j < len(targets); j++ {
					results[j] = Result{Addr: targets[j], Err: ctx.Err()}
				}
				break dispatch
			}
		}
		select {
		case jobs <- i:
		case <-ctx.Done():
			for j := i; j < len(targets); j++ {
				results[j] = Result{Addr: targets[j], Err: ctx.Err()}
			}
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	return results, nil
}

func scanOne(ctx context.Context, addr string, o Options, ins instruments) Result {
	ins.targets.Inc()
	ins.inFlight.Add(1)
	defer ins.inFlight.Add(-1)
	res := Result{Addr: addr}
	d := net.Dialer{Timeout: o.Timeout}
	dial0 := time.Now()
	conn, err := d.DialContext(ctx, "tcp", addr)
	ins.dial.ObserveDuration(time.Since(dial0))
	if err != nil {
		ins.dialErrs.Inc()
		res.Err = err
		return res
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(o.Timeout))
	hs0 := time.Now()
	cert, suites, err := devices.FetchCertSuites(conn)
	ins.handshake.ObserveDuration(time.Since(hs0))
	if err != nil {
		ins.hsErrs.Inc()
		res.Err = err
		return res
	}
	ins.certs.Inc()
	res.Cert = cert
	res.Suites = suites
	if o.ProbeHeartbeat {
		res.HeartbeatOK = devices.ProbeHeartbeat(conn, []byte("scan-probe")) == nil
		if !res.HeartbeatOK {
			ins.hbErrs.Inc()
		}
	}
	return res
}

// Harvest scans targets and stores every successful observation under the
// given scan date and source. It returns the per-target results alongside
// the number of stored observations.
func Harvest(ctx context.Context, store *scanstore.Store, date time.Time, src scanstore.Source, targets []string, opts Options) ([]Result, int, error) {
	results, err := Scan(ctx, targets, opts)
	if err != nil {
		return nil, 0, err
	}
	stored := 0
	for _, r := range results {
		if r.Err != nil || r.Cert == nil {
			continue
		}
		host, _, err := net.SplitHostPort(r.Addr)
		if err != nil {
			host = r.Addr
		}
		err = store.Add(scanstore.Observation{
			IP: host, Date: date, Source: src, Protocol: scanstore.HTTPS,
			Cert: r.Cert, RSAOnly: devices.RSAOnly(r.Suites),
		})
		if err != nil {
			return results, stored, err
		}
		stored++
	}
	return results, stored, nil
}

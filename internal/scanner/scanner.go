// Package scanner implements the certificate-harvesting client side of the
// study: a zmap-style concurrent TCP scanner that connects to device
// management interfaces, performs the certificate-fetch handshake, and
// records host observations. The paper's sources used Nmap+Python (EFF,
// P&Q) and ZMap+custom fetchers (Ecosystem, Rapid7, Censys); the worker-
// pool architecture here mirrors the latter, including the retry/loss
// handling internet scans live on: transient failures (refused, reset,
// timeout) are retried with exponential backoff and jitter under a
// global retry budget, while permanent failures (protocol violations,
// unparseable certificates) are classified and never retried.
package scanner

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net"
	"sync"
	"time"

	"github.com/factorable/weakkeys/internal/certs"
	"github.com/factorable/weakkeys/internal/devices"
	"github.com/factorable/weakkeys/internal/scanstore"
	"github.com/factorable/weakkeys/internal/telemetry"
)

// Options configures a scan.
type Options struct {
	// Workers is the number of concurrent connections (default 16).
	Workers int
	// Timeout bounds each connection attempt and handshake (default 5s).
	Timeout time.Duration
	// ProbeHeartbeat, when set, additionally sends a heartbeat probe
	// after fetching the certificate — the Heartbleed-scan behaviour
	// that crashed some devices in the wild.
	ProbeHeartbeat bool
	// RatePerSecond caps connection attempts per second (0 = unlimited).
	// ZMap-era scanners pace probes to be polite to networks; the
	// Ecosystem scans took 18 hours for the IPv4 space at their chosen
	// rate. Negative values are rejected — a sign-flipped rate silently
	// becoming "unlimited" is exactly the kind of config slip that gets
	// scanners abuse reports.
	RatePerSecond float64
	// Progress, when set, is called after each target completes with the
	// number of finished targets and the total. Calls are serialized but
	// may come from any worker goroutine.
	Progress func(done, total int)
	// MaxAttempts caps connection attempts per target. Transient
	// failures (connection refused, reset / mid-handshake hangup,
	// timeout) are retried with exponential backoff and jitter up to
	// this many total attempts; permanent failures (protocol violations,
	// certificate parse errors) are never retried. Default 3; 1 disables
	// retries.
	MaxAttempts int
	// RetryBackoff is the delay before the first retry; it doubles per
	// attempt, spread over [0.5x, 1.5x) by seeded jitter. Default 25ms.
	RetryBackoff time.Duration
	// RetryBudget caps total retries across the whole scan — the
	// abuse-throttling guard: a dying network must not multiply scan
	// traffic. 0 selects the default of 2 retries per target; negative
	// means unlimited.
	RetryBudget int
	// RetrySeed seeds the backoff jitter so chaos runs replay exactly
	// (default 1).
	RetrySeed int64
	// Metrics, when set, receives live scan telemetry: the
	// scanner_dial_seconds and scanner_handshake_seconds latency
	// histograms, scanner_targets_total / scanner_certs_total /
	// scanner_attempts_total counters, per-cause scanner_errors_total
	// {cause="dial"|"handshake"|"heartbeat"} counters, and the retry
	// ledger (scanner_retries_total{cause=...},
	// scanner_retry_budget_exhausted_total) — the continuous rate/error
	// telemetry a ZMap-style scan loop is operated by.
	Metrics *telemetry.Registry
	// Events, when set, records structured retry/loss events in the
	// flight recorder: each retry at debug (target, cause, attempt,
	// backoff) and retry-budget exhaustion at warn — the per-target
	// narrative behind the aggregate retry counters.
	Events *telemetry.EventLog
}

// instruments is the set of metric handles a scan resolves once up
// front, so workers touch only atomics on the per-target hot path. All
// handles are the nil no-op kind when Options.Metrics is unset.
type instruments struct {
	reg       *telemetry.Registry // kept for the cold retry path only
	events    *telemetry.EventLog
	dial      *telemetry.Histogram
	handshake *telemetry.Histogram
	targets   *telemetry.Counter
	attempts  *telemetry.Counter
	certs     *telemetry.Counter
	dialErrs  *telemetry.Counter
	hsErrs    *telemetry.Counter
	hbErrs    *telemetry.Counter
	budgetOut *telemetry.Counter
	inFlight  *telemetry.Gauge
}

func (o Options) instruments() instruments {
	reg := o.Metrics
	return instruments{
		reg:       reg,
		events:    o.Events,
		dial:      reg.Histogram("scanner_dial_seconds", telemetry.DurationBuckets),
		handshake: reg.Histogram("scanner_handshake_seconds", telemetry.DurationBuckets),
		targets:   reg.Counter("scanner_targets_total"),
		attempts:  reg.Counter("scanner_attempts_total"),
		certs:     reg.Counter("scanner_certs_total"),
		dialErrs:  reg.Counter(`scanner_errors_total{cause="dial"}`),
		hsErrs:    reg.Counter(`scanner_errors_total{cause="handshake"}`),
		hbErrs:    reg.Counter(`scanner_errors_total{cause="heartbeat"}`),
		budgetOut: reg.Counter("scanner_retry_budget_exhausted_total"),
		inFlight:  reg.Gauge("scanner_inflight_connections"),
	}
}

// retried records one retry, labelled by the cause of the failed
// attempt. Retries are rare, so the registry lookup off the hot path is
// fine (and a nil registry hands back a no-op counter).
func (ins instruments) retried(cause string) {
	ins.reg.Counter(`scanner_retries_total{cause="` + cause + `"}`).Inc()
}

// maxRate caps RatePerSecond so the pacing interval stays >= 1ns:
// time.NewTicker(0) panics, and any rate above 1e9/s is already
// "unpaced" at wall-clock resolution.
const maxRate = 1e9

func (o Options) withDefaults() (Options, error) {
	if o.RatePerSecond < 0 || o.RatePerSecond != o.RatePerSecond {
		return o, fmt.Errorf("scanner: RatePerSecond must be >= 0, got %g", o.RatePerSecond)
	}
	if o.RatePerSecond > maxRate {
		o.RatePerSecond = maxRate
	}
	if o.Workers <= 0 {
		o.Workers = 16
	}
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.RetryBackoff <= 0 {
		o.RetryBackoff = 25 * time.Millisecond
	}
	if o.RetrySeed == 0 {
		o.RetrySeed = 1
	}
	return o, nil
}

// Result is the outcome for one target address.
type Result struct {
	Addr string
	Cert *certs.Certificate
	// Suites is the cipher-suite families the server advertised.
	Suites []string
	// HeartbeatOK reports whether the heartbeat probe (if requested)
	// got a correct response.
	HeartbeatOK bool
	// Attempts is the number of connection attempts made for this
	// target (1 when the first attempt settled it).
	Attempts int
	// Transient reports whether the final error was classified
	// transient — i.e. the target is worth retrying in a later pass.
	Transient bool
	Err       error
}

// Stream fetches certificates from every target concurrently and hands
// each Result to emit as it completes. Calls to emit are serialized
// (never concurrent) but arrive in completion order, not target order;
// index is the target's position in targets. Unlike Scan, Stream's
// working memory is O(Workers) — the shape a standing scan over a large
// target list needs. The context cancels outstanding dials; targets
// never dispatched are emitted with the context's error. An error is
// returned only for invalid Options.
func Stream(ctx context.Context, targets []string, opts Options, emit func(index int, r Result)) error {
	o, err := opts.withDefaults()
	if err != nil {
		return err
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	var emitMu sync.Mutex
	done := 0
	deliver := func(i int, r Result) {
		emitMu.Lock()
		if emit != nil {
			emit(i, r)
		}
		done++
		if o.Progress != nil {
			o.Progress(done, len(targets))
		}
		emitMu.Unlock()
	}
	ins := o.instruments()
	budgetSize := int64(o.RetryBudget)
	switch {
	case budgetSize == 0:
		budgetSize = 2 * int64(len(targets))
	case budgetSize < 0:
		budgetSize = math.MaxInt64
	}
	budget := NewBudget(budgetSize)
	jitter := NewJitter(o.RetrySeed)
	for w := 0; w < o.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				deliver(i, scanOne(ctx, targets[i], o, ins, budget, jitter))
			}
		}()
	}
	var pace <-chan time.Time
	if o.RatePerSecond > 0 {
		ticker := time.NewTicker(time.Duration(float64(time.Second) / o.RatePerSecond))
		defer ticker.Stop()
		pace = ticker.C
	}
dispatch:
	for i := range targets {
		if pace != nil {
			select {
			case <-pace:
			case <-ctx.Done():
				for j := i; j < len(targets); j++ {
					deliver(j, Result{Addr: targets[j], Err: ctx.Err()})
				}
				break dispatch
			}
		}
		select {
		case jobs <- i:
		case <-ctx.Done():
			for j := i; j < len(targets); j++ {
				deliver(j, Result{Addr: targets[j], Err: ctx.Err()})
			}
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	return nil
}

// Scan fetches certificates from every target concurrently. Results are
// returned in target order. The context cancels outstanding dials. An
// error is returned only for invalid Options; per-target failures are
// reported in the corresponding Result. It is a slice-accumulating
// wrapper over Stream — callers that don't need the whole result set in
// memory should use Stream directly.
func Scan(ctx context.Context, targets []string, opts Options) ([]Result, error) {
	results := make([]Result, len(targets))
	err := Stream(ctx, targets, opts, func(i int, r Result) { results[i] = r })
	if err != nil {
		return nil, err
	}
	return results, nil
}

// scanOne drives one target to a final Result: an attempt, then — for
// transient failures only — exponential backoff with jitter and another
// attempt, bounded per target by MaxAttempts and globally by the retry
// budget.
func scanOne(ctx context.Context, addr string, o Options, ins instruments, budget *Budget, jitter *Jitter) Result {
	ins.targets.Inc()
	backoff := o.RetryBackoff
	for attempt := 1; ; attempt++ {
		res := scanAttempt(ctx, addr, o, ins)
		res.Attempts = attempt
		ins.attempts.Inc()
		if res.Err == nil {
			return res
		}
		res.Transient = Transient(res.Err)
		if !res.Transient || attempt >= o.MaxAttempts || ctx.Err() != nil {
			return res
		}
		if !budget.Take() {
			ins.budgetOut.Inc()
			ins.events.Warn(ctx, "scan retry budget exhausted",
				slog.String("addr", addr),
				slog.String("cause", Cause(res.Err)),
				slog.Int("attempt", attempt))
			return res
		}
		ins.retried(Cause(res.Err))
		sleep := jitter.Jitter(backoff)
		ins.events.Debug(ctx, "scan retry",
			slog.String("addr", addr),
			slog.String("cause", Cause(res.Err)),
			slog.Int("attempt", attempt),
			slog.Duration("backoff", sleep))
		if !sleepCtx(ctx, sleep) {
			return res
		}
		backoff = DoubleBackoff(backoff, maxBackoff(o))
	}
}

// maxBackoff bounds one retry sleep: never longer than the per-attempt
// timeout (a retry pause exceeding the probe itself only starves the
// worker), with a 1s floor so aggressive sub-second timeouts still get
// a meaningful pause.
func maxBackoff(o Options) time.Duration {
	if o.Timeout > time.Second {
		return o.Timeout
	}
	return time.Second
}

// DoubleBackoff is the exponential step, saturating at cap and immune
// to overflow: left uncapped, repeated doubling wraps negative after
// ~40 retries of the 25ms default, and a negative sleep turns the
// backoff into a hot retry loop against an already-struggling target.
func DoubleBackoff(d, cap time.Duration) time.Duration {
	d *= 2
	if d > cap || d <= 0 {
		return cap
	}
	return d
}

// scanAttempt performs a single dial + handshake (+ optional heartbeat
// probe) against one target.
func scanAttempt(ctx context.Context, addr string, o Options, ins instruments) Result {
	ins.inFlight.Add(1)
	defer ins.inFlight.Add(-1)
	res := Result{Addr: addr}
	d := net.Dialer{Timeout: o.Timeout}
	dial0 := time.Now()
	conn, err := d.DialContext(ctx, "tcp", addr)
	ins.dial.ObserveDuration(time.Since(dial0))
	if err != nil {
		ins.dialErrs.Inc()
		res.Err = err
		return res
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(o.Timeout)); err != nil {
		res.Err = err
		return res
	}
	hs0 := time.Now()
	cert, suites, err := devices.FetchCertSuites(conn)
	ins.handshake.ObserveDuration(time.Since(hs0))
	if err != nil {
		ins.hsErrs.Inc()
		res.Err = err
		return res
	}
	ins.certs.Inc()
	res.Cert = cert
	res.Suites = suites
	if o.ProbeHeartbeat {
		// Refresh the deadline: a slow handshake must not leave the
		// heartbeat probe with an already-stale deadline that fails
		// every probe spuriously.
		if err := conn.SetDeadline(time.Now().Add(o.Timeout)); err != nil {
			res.HeartbeatOK = false
			ins.hbErrs.Inc()
			return res
		}
		res.HeartbeatOK = devices.ProbeHeartbeat(conn, []byte("scan-probe")) == nil
		if !res.HeartbeatOK {
			ins.hbErrs.Inc()
		}
	}
	return res
}

// HarvestSummary is Harvest's resilience accounting.
type HarvestSummary struct {
	// Stored is the number of observations persisted.
	Stored int
	// Retryable lists targets whose final failure was transient — the
	// resume list: feed it into a later Harvest pass to finish the scan
	// month instead of re-scanning everything.
	Retryable []string
	// StoreErrors counts per-observation store failures that were
	// skipped over (details are joined into the returned error).
	StoreErrors int
}

// HarvestStream scans targets and stores each successful observation
// as it completes, under the given scan date and source — the streaming
// harvest: memory stays O(Workers) regardless of target count. tee,
// when non-nil, additionally receives every Result (serialized,
// completion order). Individual store failures do not abort the
// harvest: the remaining observations still land, the failures are
// counted in the summary and joined into the returned error — one bad
// record must not discard the rest of a month's harvest.
func HarvestStream(ctx context.Context, store *scanstore.Store, date time.Time, src scanstore.Source, targets []string, opts Options, tee func(index int, r Result)) (HarvestSummary, error) {
	var sum HarvestSummary
	var storeErrs []error
	err := Stream(ctx, targets, opts, func(i int, r Result) {
		if tee != nil {
			tee(i, r)
		}
		if err := storeOne(store, date, src, r, &sum); err != nil {
			storeErrs = append(storeErrs, err)
		}
	})
	if err != nil {
		return HarvestSummary{}, err
	}
	return sum, errors.Join(storeErrs...)
}

// Harvest scans targets and stores every successful observation under
// the given scan date and source. It returns the per-target results and
// a summary; it is the slice-accumulating wrapper over HarvestStream.
func Harvest(ctx context.Context, store *scanstore.Store, date time.Time, src scanstore.Source, targets []string, opts Options) ([]Result, HarvestSummary, error) {
	if _, err := opts.withDefaults(); err != nil {
		return nil, HarvestSummary{}, err
	}
	results := make([]Result, len(targets))
	sum, err := HarvestStream(ctx, store, date, src, targets, opts,
		func(i int, r Result) { results[i] = r })
	return results, sum, err
}

// storeOne persists one successful result into the store and updates
// the summary; the returned error (nil for transient/empty results) is
// the per-observation store failure, which callers aggregate.
func storeOne(store *scanstore.Store, date time.Time, src scanstore.Source, r Result, sum *HarvestSummary) error {
	if r.Err != nil {
		if r.Transient {
			sum.Retryable = append(sum.Retryable, r.Addr)
		}
		return nil
	}
	if r.Cert == nil {
		return nil
	}
	host, _, err := net.SplitHostPort(r.Addr)
	if err != nil {
		host = r.Addr
	}
	err = store.Add(scanstore.Observation{
		IP: host, Date: date, Source: src, Protocol: scanstore.HTTPS,
		Cert: r.Cert, RSAOnly: devices.RSAOnly(r.Suites),
	})
	if err != nil {
		sum.StoreErrors++
		return fmt.Errorf("scanner: store %s: %w", r.Addr, err)
	}
	sum.Stored++
	return nil
}

// storeResults persists a completed result slice (the non-streaming
// path kept for batch callers and tests); per-observation store errors
// are aggregated, not fatal.
func storeResults(store *scanstore.Store, date time.Time, src scanstore.Source, results []Result) (HarvestSummary, error) {
	var sum HarvestSummary
	var storeErrs []error
	for _, r := range results {
		if err := storeOne(store, date, src, r, &sum); err != nil {
			storeErrs = append(storeErrs, err)
		}
	}
	return sum, errors.Join(storeErrs...)
}

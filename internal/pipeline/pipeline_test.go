package pipeline

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/factorable/weakkeys/internal/telemetry"
)

func TestRunAccumulatesStats(t *testing.T) {
	report, err := Run(context.Background(),
		Stage{Name: "a", Run: func(ctx context.Context, st *Stats) error {
			st.ItemsIn, st.ItemsOut, st.Bytes = 10, 7, 1024
			return nil
		}},
		Stage{Name: "b", Run: func(ctx context.Context, st *Stats) error {
			st.ItemsIn, st.ItemsOut = 7, 7
			return nil
		}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Stages) != 2 {
		t.Fatalf("stages = %d, want 2", len(report.Stages))
	}
	a := report.Stage("a")
	if a == nil || a.Stats.ItemsIn != 10 || a.Stats.ItemsOut != 7 || a.Stats.Bytes != 1024 {
		t.Errorf("stage a stats = %+v", a)
	}
	if a.Stats.Wall <= 0 {
		t.Error("stage wall time not measured")
	}
	if report.Wall < a.Stats.Wall {
		t.Error("report wall below stage wall")
	}
	if report.Stage("missing") != nil {
		t.Error("Stage(missing) should be nil")
	}
}

func TestRunStopsOnError(t *testing.T) {
	boom := errors.New("boom")
	ran := []string{}
	report, err := Run(context.Background(),
		Stage{Name: "ok", Run: func(ctx context.Context, st *Stats) error {
			ran = append(ran, "ok")
			return nil
		}},
		Stage{Name: "fail", Run: func(ctx context.Context, st *Stats) error {
			ran = append(ran, "fail")
			return boom
		}},
		Stage{Name: "never", Run: func(ctx context.Context, st *Stats) error {
			ran = append(ran, "never")
			return nil
		}},
	)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if !strings.Contains(err.Error(), "stage fail") {
		t.Errorf("error should name the stage: %v", err)
	}
	if len(ran) != 2 {
		t.Errorf("ran = %v, stage after failure must not run", ran)
	}
	if len(report.Stages) != 2 || report.Stages[1].Err == nil {
		t.Errorf("report should include the failing stage: %+v", report.Stages)
	}
}

func TestRunHonoursCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, Stage{Name: "never", Run: func(ctx context.Context, st *Stats) error {
		t.Error("stage ran under cancelled context")
		return nil
	}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestProgressEventOrder(t *testing.T) {
	var events []Event
	r := &Runner{Progress: func(ev Event) { events = append(events, ev) }}
	_, err := r.Run(context.Background(),
		Stage{Name: "one", Run: func(ctx context.Context, st *Stats) error { return nil }},
		Stage{Name: "two", Run: func(ctx context.Context, st *Stats) error { return errors.New("x") }},
	)
	if err == nil {
		t.Fatal("want error")
	}
	want := []struct {
		stage string
		kind  EventKind
	}{
		{"one", StageStart}, {"one", StageDone},
		{"two", StageStart}, {"two", StageError},
	}
	if len(events) != len(want) {
		t.Fatalf("events = %d, want %d", len(events), len(want))
	}
	for i, w := range want {
		if events[i].Stage != w.stage || events[i].Kind != w.kind {
			t.Errorf("event %d = {%s %d}, want {%s %d}", i, events[i].Stage, events[i].Kind, w.stage, w.kind)
		}
		if events[i].Total != 2 {
			t.Errorf("event %d Total = %d, want 2", i, events[i].Total)
		}
	}
}

func TestMidStageCancellationIsWrapped(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	_, err := Run(ctx, Stage{Name: "waits", Run: func(ctx context.Context, st *Stats) error {
		cancel()
		<-ctx.Done()
		return ctx.Err()
	}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}

func TestWriteText(t *testing.T) {
	report, err := Run(context.Background(),
		Stage{Name: "dedup", Run: func(ctx context.Context, st *Stats) error {
			st.ItemsIn, st.ItemsOut = 100, 80
			return nil
		}},
	)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := report.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"stage", "dedup", "100", "80", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("report text missing %q:\n%s", want, out)
		}
	}
}

func TestWriteTextRateAndBytesColumns(t *testing.T) {
	report := &RunReport{
		Stages: []StageReport{{
			Name:  "harvest",
			Stats: Stats{Wall: 2 * time.Second, ItemsIn: 100, ItemsOut: 5000, Bytes: 3 << 20},
		}},
		Wall: 2 * time.Second,
	}
	var sb strings.Builder
	if err := report.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"rate", "2.5k/s", "3.00 MiB"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestHumanRate(t *testing.T) {
	for _, tc := range []struct {
		items int64
		wall  time.Duration
		want  string
	}{
		{0, 0, "-"},
		{0, time.Second, "-"},
		{-1239, time.Second, "-"},
		{100, time.Second, "100/s"},
		{5, 2 * time.Second, "2.50/s"},
		{2_500_000, time.Second, "2.5M/s"},
		{1500, time.Second, "1.5k/s"},
	} {
		if got := HumanRate(tc.items, tc.wall); got != tc.want {
			t.Errorf("HumanRate(%d, %v) = %q, want %q", tc.items, tc.wall, got, tc.want)
		}
	}
}

func TestHumanBytes(t *testing.T) {
	for _, tc := range []struct {
		n    int64
		want string
	}{
		{512, "512 B"},
		{2048, "2.0 KiB"},
		{3 << 20, "3.00 MiB"},
		{5 << 30, "5.00 GiB"},
	} {
		if got := HumanBytes(tc.n); got != tc.want {
			t.Errorf("HumanBytes(%d) = %q, want %q", tc.n, got, tc.want)
		}
	}
}

// TestRunnerTelemetry checks that a Runner with a registry and tracer
// mirrors each stage's stats into gauges and records nested spans, and
// that the stage context carries the stage span for deeper nesting.
func TestRunnerTelemetry(t *testing.T) {
	reg := telemetry.New()
	tr := telemetry.NewTracer()
	r := &Runner{Metrics: reg, Tracer: tr}
	_, err := r.Run(context.Background(),
		Stage{Name: "work", Run: func(ctx context.Context, st *Stats) error {
			st.ItemsIn, st.ItemsOut, st.Bytes = 10, 8, 4096
			sp := telemetry.SpanFrom(ctx)
			if sp == nil {
				t.Error("stage context should carry the stage span")
			}
			sp.Child("inner").End()
			return nil
		}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.GaugeValue(`pipeline_stage_items_out{stage="work"}`); got != 8 {
		t.Errorf("items_out gauge = %g, want 8", got)
	}
	if got := reg.GaugeValue(`pipeline_stage_bytes{stage="work"}`); got != 4096 {
		t.Errorf("bytes gauge = %g, want 4096", got)
	}
	if got := reg.GaugeValue(`pipeline_stage_wall_seconds{stage="work"}`); got <= 0 {
		t.Errorf("wall gauge = %g, want > 0", got)
	}
	if got := reg.CounterValue("pipeline_stages_completed_total"); got != 1 {
		t.Errorf("completed counter = %d, want 1", got)
	}
	names := map[string]bool{}
	for _, ev := range tr.Events() {
		names[ev.Name] = true
	}
	for _, want := range []string{"pipeline", "work", "inner"} {
		if !names[want] {
			t.Errorf("trace missing span %q (have %v)", want, names)
		}
	}
}

func TestRunnerTelemetryCountsErrors(t *testing.T) {
	reg := telemetry.New()
	r := &Runner{Metrics: reg}
	_, err := r.Run(context.Background(),
		Stage{Name: "boom", Run: func(ctx context.Context, st *Stats) error {
			return errors.New("boom")
		}},
	)
	if err == nil {
		t.Fatal("want error")
	}
	if got := reg.CounterValue("pipeline_stage_errors_total"); got != 1 {
		t.Errorf("error counter = %d, want 1", got)
	}
	if got := reg.CounterValue("pipeline_stages_completed_total"); got != 0 {
		t.Errorf("completed counter = %d, want 0", got)
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Wall: time.Second, CPU: time.Second, ItemsIn: 1, ItemsOut: 2, Bytes: 3}
	a.Add(Stats{Wall: time.Second, ItemsIn: 9, Bytes: 7})
	if a.Wall != 2*time.Second || a.ItemsIn != 10 || a.ItemsOut != 2 || a.Bytes != 10 {
		t.Errorf("Add result = %+v", a)
	}
}

// Package pipeline is the stage-oriented execution core of the study.
//
// The paper's measurement is an explicit multi-stage pipeline — corpus
// ingest, dedup, partitioned batch GCD, fingerprinting, longitudinal
// analysis — and every scaling discussion in it is per stage (the batch
// GCD alone gets a wall-clock / CPU-hours / per-node-memory budget). This
// package gives the reproduction the same shape: a typed Stage with a
// shared per-stage Stats record, and a Runner that plumbs one
// context.Context through every stage, emits progress events, and
// accumulates a RunReport so any run can print the cost profile of each
// of its stages.
//
// Stages run sequentially; the parallelism lives inside stages (worker
// pools, per-subset goroutines), which is also how the real system was
// deployed — one cluster step at a time, each step internally parallel.
package pipeline

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"text/tabwriter"
	"time"

	"github.com/factorable/weakkeys/internal/telemetry"
)

// Stats is the shared per-stage cost record. Every stage gets Wall and
// CPU filled in by the Runner; stages report their own ItemsIn,
// ItemsOut and Bytes, whose meaning is stage-specific (documented per
// stage) but always "units consumed", "units produced" and "bytes of
// working set or output".
type Stats struct {
	// Wall is the stage's elapsed time.
	Wall time.Duration
	// CPU is the process CPU time (user+system, all goroutines)
	// consumed while the stage ran. Stages execute sequentially, so the
	// process-wide delta is attributable to the stage; on platforms
	// without rusage it is zero.
	CPU time.Duration
	// ItemsIn counts the units the stage consumed.
	ItemsIn int64
	// ItemsOut counts the units the stage produced.
	ItemsOut int64
	// Bytes is the stage's working-set or output size in bytes.
	Bytes int64
}

// Add accumulates other into s (used when merging sub-stage stats).
func (s *Stats) Add(other Stats) {
	s.Wall += other.Wall
	s.CPU += other.CPU
	s.ItemsIn += other.ItemsIn
	s.ItemsOut += other.ItemsOut
	s.Bytes += other.Bytes
}

// Stage is one named pipeline step. Run receives the pipeline context —
// it must honour cancellation promptly, including mid-computation — and
// the stage's own Stats record to fill ItemsIn/ItemsOut/Bytes (Wall and
// CPU are measured by the Runner).
type Stage struct {
	Name string
	Run  func(ctx context.Context, st *Stats) error
}

// EventKind distinguishes progress callbacks.
type EventKind int

const (
	// StageStart fires before a stage runs; Stats is zero.
	StageStart EventKind = iota
	// StageDone fires after a stage returns nil; Stats is final.
	StageDone
	// StageError fires after a stage returns an error; Stats holds
	// whatever was measured up to the failure and Err the cause.
	StageError
)

// Event is one progress notification.
type Event struct {
	// Stage is the stage name.
	Stage string
	// Index is the zero-based stage position; Total the stage count.
	Index, Total int
	Kind         EventKind
	Stats        Stats
	Err          error
}

// ProgressFunc receives progress events. Callbacks run synchronously on
// the pipeline goroutine, in order; a nil func disables them.
type ProgressFunc func(Event)

// StageReport is one stage's outcome inside a RunReport.
type StageReport struct {
	Name  string
	Stats Stats
	// Err is non-nil only for the stage that failed (stages after it
	// never ran and are absent from the report).
	Err error
}

// RunReport is the accumulated cost profile of a pipeline run.
type RunReport struct {
	Stages []StageReport
	// Wall and CPU are totals across all executed stages.
	Wall time.Duration
	CPU  time.Duration
}

// Stage returns the report for a named stage, or nil.
func (r *RunReport) Stage(name string) *StageReport {
	for i := range r.Stages {
		if r.Stages[i].Name == name {
			return &r.Stages[i]
		}
	}
	return nil
}

// WriteText dumps the per-stage report as an aligned text table — the
// `weakkeys -metrics` output. The rate column is ItemsOut per wall
// second; bytes are humanized so full-scale reports stay readable.
func (r *RunReport) WriteText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "stage\twall\tcpu\titems in\titems out\trate\tbytes")
	for _, sr := range r.Stages {
		status := ""
		if sr.Err != nil {
			status = "\terror: " + sr.Err.Error()
		}
		fmt.Fprintf(tw, "%s\t%v\t%v\t%d\t%d\t%s\t%s%s\n",
			sr.Name, sr.Stats.Wall.Round(time.Microsecond), sr.Stats.CPU.Round(time.Microsecond),
			sr.Stats.ItemsIn, sr.Stats.ItemsOut,
			HumanRate(sr.Stats.ItemsOut, sr.Stats.Wall), HumanBytes(sr.Stats.Bytes), status)
	}
	fmt.Fprintf(tw, "total\t%v\t%v\t\t\t\t\n", r.Wall.Round(time.Microsecond), r.CPU.Round(time.Microsecond))
	return tw.Flush()
}

// HumanRate formats an items-per-second throughput from a count and the
// wall time it took ("-" when the wall time is zero or the count is not
// positive — some stages legitimately record no item flow).
func HumanRate(items int64, wall time.Duration) string {
	if wall <= 0 || items <= 0 {
		return "-"
	}
	rate := float64(items) / wall.Seconds()
	switch {
	case rate >= 1e6:
		return fmt.Sprintf("%.1fM/s", rate/1e6)
	case rate >= 1e3:
		return fmt.Sprintf("%.1fk/s", rate/1e3)
	case rate >= 10:
		return fmt.Sprintf("%.0f/s", rate)
	default:
		return fmt.Sprintf("%.2f/s", rate)
	}
}

// HumanBytes formats a byte count with a binary-prefix unit.
func HumanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// Runner executes stages in order under one context.
type Runner struct {
	// Progress, when set, receives a StageStart and a StageDone (or
	// StageError) event per stage.
	Progress ProgressFunc
	// Metrics, when set, receives live mirrors of each stage's Stats:
	// gauges pipeline_stage_{wall_seconds,cpu_seconds,items_in,items_out,
	// bytes}{stage="X"} plus the pipeline_stages_completed_total and
	// pipeline_stage_errors_total counters.
	Metrics *telemetry.Registry
	// Tracer, when set, records one span per stage nested under a
	// "pipeline" root span. The stage span rides the context into the
	// stage (telemetry.SpanFrom), so stage internals can open child
	// spans — the distgcd per-node tracks hang off it.
	Tracer *telemetry.Tracer
	// Events, when set, records structured stage lifecycle events in
	// the flight recorder: start at debug, completion (with the stage's
	// stats) at info, failure at error. The log also rides the stage
	// context (telemetry.EventsFrom) so stage internals emit into the
	// same recorder.
	Events *telemetry.EventLog
}

// Run executes the stages sequentially. It returns the report for every
// stage that ran — including, on failure, the failing stage with its
// partial stats — alongside the first error. Cancellation is checked
// before each stage and honoured inside stages; the resulting error
// wraps context.Canceled (or DeadlineExceeded) so callers can test it
// with errors.Is.
func (r *Runner) Run(ctx context.Context, stages ...Stage) (*RunReport, error) {
	report := &RunReport{Stages: make([]StageReport, 0, len(stages))}
	// The root span nests every stage span; it is the nil no-op span
	// when no tracer is configured.
	root := r.Tracer.Start("pipeline")
	defer root.End()
	for i, stage := range stages {
		if err := ctx.Err(); err != nil {
			err = fmt.Errorf("pipeline: before stage %s: %w", stage.Name, err)
			report.Stages = append(report.Stages, StageReport{Name: stage.Name, Err: err})
			r.emit(Event{Stage: stage.Name, Index: i, Total: len(stages), Kind: StageError, Err: err})
			return report, err
		}
		r.emit(Event{Stage: stage.Name, Index: i, Total: len(stages), Kind: StageStart})
		stageCtx := telemetry.ContextWithEvents(ctx, r.Events)
		sp := root.Child(stage.Name)
		if sp != nil {
			stageCtx = telemetry.ContextWithSpan(stageCtx, sp)
		}
		r.Events.Debug(stageCtx, "stage start",
			slog.String("stage", stage.Name),
			slog.Int("index", i),
			slog.Int("total", len(stages)))
		var st Stats
		cpu0 := processCPU()
		t0 := time.Now()
		err := stage.Run(stageCtx, &st)
		st.Wall = time.Since(t0)
		st.CPU = processCPU() - cpu0
		report.Wall += st.Wall
		report.CPU += st.CPU
		sp.SetArg("items_in", st.ItemsIn)
		sp.SetArg("items_out", st.ItemsOut)
		sp.SetArg("bytes", st.Bytes)
		sp.End()
		r.mirror(stage.Name, st, err)
		if err != nil {
			err = fmt.Errorf("pipeline: stage %s: %w", stage.Name, err)
			report.Stages = append(report.Stages, StageReport{Name: stage.Name, Stats: st, Err: err})
			r.Events.Error(stageCtx, "stage failed",
				slog.String("stage", stage.Name),
				slog.Duration("wall", st.Wall),
				slog.String("error", err.Error()))
			r.emit(Event{Stage: stage.Name, Index: i, Total: len(stages), Kind: StageError, Stats: st, Err: err})
			return report, err
		}
		report.Stages = append(report.Stages, StageReport{Name: stage.Name, Stats: st})
		r.Events.Info(stageCtx, "stage done",
			slog.String("stage", stage.Name),
			slog.Duration("wall", st.Wall),
			slog.Duration("cpu", st.CPU),
			slog.Int64("items_in", st.ItemsIn),
			slog.Int64("items_out", st.ItemsOut),
			slog.Int64("bytes", st.Bytes))
		r.emit(Event{Stage: stage.Name, Index: i, Total: len(stages), Kind: StageDone, Stats: st})
	}
	return report, nil
}

// mirror publishes one stage's Stats into the registry so a live
// /metrics scrape sees per-stage costs as they complete.
func (r *Runner) mirror(name string, st Stats, err error) {
	if r.Metrics == nil {
		return
	}
	label := `{stage="` + name + `"}`
	r.Metrics.Gauge("pipeline_stage_wall_seconds" + label).Set(st.Wall.Seconds())
	r.Metrics.Gauge("pipeline_stage_cpu_seconds" + label).Set(st.CPU.Seconds())
	r.Metrics.Gauge("pipeline_stage_items_in" + label).Set(float64(st.ItemsIn))
	r.Metrics.Gauge("pipeline_stage_items_out" + label).Set(float64(st.ItemsOut))
	r.Metrics.Gauge("pipeline_stage_bytes" + label).Set(float64(st.Bytes))
	r.Metrics.Histogram("pipeline_stage_wall_seconds_hist", telemetry.DurationBuckets).Observe(st.Wall.Seconds())
	if err != nil {
		r.Metrics.Counter("pipeline_stage_errors_total").Inc()
	} else {
		r.Metrics.Counter("pipeline_stages_completed_total").Inc()
	}
}

func (r *Runner) emit(ev Event) {
	if r.Progress != nil {
		r.Progress(ev)
	}
}

// Run is the convenience one-shot form: a Runner with no progress func.
func Run(ctx context.Context, stages ...Stage) (*RunReport, error) {
	return (&Runner{}).Run(ctx, stages...)
}

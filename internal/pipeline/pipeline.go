// Package pipeline is the stage-oriented execution core of the study.
//
// The paper's measurement is an explicit multi-stage pipeline — corpus
// ingest, dedup, partitioned batch GCD, fingerprinting, longitudinal
// analysis — and every scaling discussion in it is per stage (the batch
// GCD alone gets a wall-clock / CPU-hours / per-node-memory budget). This
// package gives the reproduction the same shape: a typed Stage with a
// shared per-stage Stats record, and a Runner that plumbs one
// context.Context through every stage, emits progress events, and
// accumulates a RunReport so any run can print the cost profile of each
// of its stages.
//
// Stages run sequentially; the parallelism lives inside stages (worker
// pools, per-subset goroutines), which is also how the real system was
// deployed — one cluster step at a time, each step internally parallel.
package pipeline

import (
	"context"
	"fmt"
	"io"
	"text/tabwriter"
	"time"
)

// Stats is the shared per-stage cost record. Every stage gets Wall and
// CPU filled in by the Runner; stages report their own ItemsIn,
// ItemsOut and Bytes, whose meaning is stage-specific (documented per
// stage) but always "units consumed", "units produced" and "bytes of
// working set or output".
type Stats struct {
	// Wall is the stage's elapsed time.
	Wall time.Duration
	// CPU is the process CPU time (user+system, all goroutines)
	// consumed while the stage ran. Stages execute sequentially, so the
	// process-wide delta is attributable to the stage; on platforms
	// without rusage it is zero.
	CPU time.Duration
	// ItemsIn counts the units the stage consumed.
	ItemsIn int64
	// ItemsOut counts the units the stage produced.
	ItemsOut int64
	// Bytes is the stage's working-set or output size in bytes.
	Bytes int64
}

// Add accumulates other into s (used when merging sub-stage stats).
func (s *Stats) Add(other Stats) {
	s.Wall += other.Wall
	s.CPU += other.CPU
	s.ItemsIn += other.ItemsIn
	s.ItemsOut += other.ItemsOut
	s.Bytes += other.Bytes
}

// Stage is one named pipeline step. Run receives the pipeline context —
// it must honour cancellation promptly, including mid-computation — and
// the stage's own Stats record to fill ItemsIn/ItemsOut/Bytes (Wall and
// CPU are measured by the Runner).
type Stage struct {
	Name string
	Run  func(ctx context.Context, st *Stats) error
}

// EventKind distinguishes progress callbacks.
type EventKind int

const (
	// StageStart fires before a stage runs; Stats is zero.
	StageStart EventKind = iota
	// StageDone fires after a stage returns nil; Stats is final.
	StageDone
	// StageError fires after a stage returns an error; Stats holds
	// whatever was measured up to the failure and Err the cause.
	StageError
)

// Event is one progress notification.
type Event struct {
	// Stage is the stage name.
	Stage string
	// Index is the zero-based stage position; Total the stage count.
	Index, Total int
	Kind         EventKind
	Stats        Stats
	Err          error
}

// ProgressFunc receives progress events. Callbacks run synchronously on
// the pipeline goroutine, in order; a nil func disables them.
type ProgressFunc func(Event)

// StageReport is one stage's outcome inside a RunReport.
type StageReport struct {
	Name  string
	Stats Stats
	// Err is non-nil only for the stage that failed (stages after it
	// never ran and are absent from the report).
	Err error
}

// RunReport is the accumulated cost profile of a pipeline run.
type RunReport struct {
	Stages []StageReport
	// Wall and CPU are totals across all executed stages.
	Wall time.Duration
	CPU  time.Duration
}

// Stage returns the report for a named stage, or nil.
func (r *RunReport) Stage(name string) *StageReport {
	for i := range r.Stages {
		if r.Stages[i].Name == name {
			return &r.Stages[i]
		}
	}
	return nil
}

// WriteText dumps the per-stage report as an aligned text table — the
// `weakkeys -metrics` output.
func (r *RunReport) WriteText(w io.Writer) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "stage\twall\tcpu\titems in\titems out\tbytes")
	for _, sr := range r.Stages {
		status := ""
		if sr.Err != nil {
			status = "\terror: " + sr.Err.Error()
		}
		fmt.Fprintf(tw, "%s\t%v\t%v\t%d\t%d\t%d%s\n",
			sr.Name, sr.Stats.Wall.Round(time.Microsecond), sr.Stats.CPU.Round(time.Microsecond),
			sr.Stats.ItemsIn, sr.Stats.ItemsOut, sr.Stats.Bytes, status)
	}
	fmt.Fprintf(tw, "total\t%v\t%v\t\t\t\n", r.Wall.Round(time.Microsecond), r.CPU.Round(time.Microsecond))
	return tw.Flush()
}

// Runner executes stages in order under one context.
type Runner struct {
	// Progress, when set, receives a StageStart and a StageDone (or
	// StageError) event per stage.
	Progress ProgressFunc
}

// Run executes the stages sequentially. It returns the report for every
// stage that ran — including, on failure, the failing stage with its
// partial stats — alongside the first error. Cancellation is checked
// before each stage and honoured inside stages; the resulting error
// wraps context.Canceled (or DeadlineExceeded) so callers can test it
// with errors.Is.
func (r *Runner) Run(ctx context.Context, stages ...Stage) (*RunReport, error) {
	report := &RunReport{Stages: make([]StageReport, 0, len(stages))}
	for i, stage := range stages {
		if err := ctx.Err(); err != nil {
			err = fmt.Errorf("pipeline: before stage %s: %w", stage.Name, err)
			report.Stages = append(report.Stages, StageReport{Name: stage.Name, Err: err})
			r.emit(Event{Stage: stage.Name, Index: i, Total: len(stages), Kind: StageError, Err: err})
			return report, err
		}
		r.emit(Event{Stage: stage.Name, Index: i, Total: len(stages), Kind: StageStart})
		var st Stats
		cpu0 := processCPU()
		t0 := time.Now()
		err := stage.Run(ctx, &st)
		st.Wall = time.Since(t0)
		st.CPU = processCPU() - cpu0
		report.Wall += st.Wall
		report.CPU += st.CPU
		if err != nil {
			err = fmt.Errorf("pipeline: stage %s: %w", stage.Name, err)
			report.Stages = append(report.Stages, StageReport{Name: stage.Name, Stats: st, Err: err})
			r.emit(Event{Stage: stage.Name, Index: i, Total: len(stages), Kind: StageError, Stats: st, Err: err})
			return report, err
		}
		report.Stages = append(report.Stages, StageReport{Name: stage.Name, Stats: st})
		r.emit(Event{Stage: stage.Name, Index: i, Total: len(stages), Kind: StageDone, Stats: st})
	}
	return report, nil
}

func (r *Runner) emit(ev Event) {
	if r.Progress != nil {
		r.Progress(ev)
	}
}

// Run is the convenience one-shot form: a Runner with no progress func.
func Run(ctx context.Context, stages ...Stage) (*RunReport, error) {
	return (&Runner{}).Run(ctx, stages...)
}

//go:build unix

package pipeline

import (
	"syscall"
	"time"
)

// processCPU returns the process's cumulative user+system CPU time.
// Getrusage covers all threads, so work done by a stage's worker
// goroutines is attributed to it (stages run one at a time).
func processCPU() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return tv(ru.Utime) + tv(ru.Stime)
}

func tv(t syscall.Timeval) time.Duration {
	return time.Duration(t.Sec)*time.Second + time.Duration(t.Usec)*time.Microsecond
}

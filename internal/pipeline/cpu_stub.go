//go:build !unix

package pipeline

import "time"

// processCPU is unavailable without rusage; stage CPU reads as zero.
func processCPU() time.Duration { return 0 }

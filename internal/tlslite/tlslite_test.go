package tlslite

import (
	"bytes"
	"math/big"
	"math/rand"
	"net"
	"testing"
	"time"

	"github.com/factorable/weakkeys/internal/certs"
	"github.com/factorable/weakkeys/internal/weakrsa"
)

func serverIdentity(t *testing.T, seed int64) *ServerConfig {
	t.Helper()
	key, err := weakrsa.GenerateKey(rand.New(rand.NewSource(seed)), weakrsa.Options{Bits: 256})
	if err != nil {
		t.Fatal(err)
	}
	cert, err := certs.SelfSigned(big.NewInt(seed), certs.Name{CommonName: "system generated"},
		time.Unix(0, 0), time.Unix(1<<40, 0), nil, key.N, key.E, key.D)
	if err != nil {
		t.Fatal(err)
	}
	return &ServerConfig{Cert: cert, Key: key}
}

// handshakePair runs a full handshake over an in-memory pipe, optionally
// through a Tap on the client side, returning both sessions.
func handshakePair(t *testing.T, srv *ServerConfig, cli *ClientConfig, tap *Tap) (*Session, *Session) {
	t.Helper()
	cConn, sConn := net.Pipe()
	t.Cleanup(func() { cConn.Close(); sConn.Close() })
	cConn.SetDeadline(time.Now().Add(5 * time.Second))
	sConn.SetDeadline(time.Now().Add(5 * time.Second))

	var clientSide = func() (any, error) { return cli.Handshake(cConn) }
	if tap != nil {
		tapped := tap.TapConn(cConn)
		clientSide = func() (any, error) { return cli.Handshake(tapped) }
	}
	type result struct {
		sess any
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		s, err := clientSide()
		ch <- result{s, err}
	}()
	sSess, sErr := srv.Handshake(sConn)
	cRes := <-ch
	if sErr != nil {
		t.Fatalf("server handshake: %v", sErr)
	}
	if cRes.err != nil {
		t.Fatalf("client handshake: %v", cRes.err)
	}
	return cRes.sess.(*Session), sSess
}

func TestHandshakeAndRecords(t *testing.T) {
	srv := serverIdentity(t, 1)
	cli := &ClientConfig{Rand: rand.New(rand.NewSource(7))}
	cSess, sSess := handshakePair(t, srv, cli, nil)

	if cSess.Suite != SuiteRSA || sSess.Suite != SuiteRSA {
		t.Errorf("suites: %s / %s", cSess.Suite, sSess.Suite)
	}
	if cSess.PeerCert == nil || cSess.PeerCert.N.Cmp(srv.Cert.N) != 0 {
		t.Error("client did not capture the server certificate")
	}

	done := make(chan error, 1)
	go func() {
		done <- cSess.Send([]byte("GET /login user=admin pass=hunter2"))
	}()
	got, err := sSess.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if string(got) != "GET /login user=admin pass=hunter2" {
		t.Errorf("server received %q", got)
	}

	go func() {
		done <- sSess.Send([]byte("200 OK session=s3cret"))
	}()
	reply, err := cSess.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if string(reply) != "200 OK session=s3cret" {
		t.Errorf("client received %q", reply)
	}
}

func TestRecordsAreNotPlaintextOnTheWire(t *testing.T) {
	srv := serverIdentity(t, 2)
	tap := &Tap{}
	cli := &ClientConfig{Rand: rand.New(rand.NewSource(9))}
	cSess, sSess := handshakePair(t, srv, cli, tap)

	secret := []byte("password=correct-horse-battery")
	done := make(chan error, 1)
	go func() { done <- cSess.Send(secret) }()
	if _, err := sSess.Recv(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(tap.toServer, secret) {
		t.Error("record layer leaked plaintext on the wire")
	}
}

func TestPassiveDecryptionWithFactoredKey(t *testing.T) {
	srv := serverIdentity(t, 3)
	tap := &Tap{}
	cli := &ClientConfig{Rand: rand.New(rand.NewSource(11))}
	cSess, sSess := handshakePair(t, srv, cli, tap)

	msgs := [][]byte{
		[]byte("POST /mgmt password=admin123"),
		[]byte("GET /vpn-config"),
	}
	for _, m := range msgs {
		done := make(chan error, 1)
		go func(m []byte) { done <- cSess.Send(m) }(m)
		if _, err := sSess.Recv(); err != nil {
			t.Fatal(err)
		}
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() { done <- sSess.Send([]byte("admin-cookie=TOPSECRET")) }()
	if _, err := cSess.Recv(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// The attacker factored the server's modulus via batch GCD; here we
	// simulate that by reconstructing the private key from one factor.
	recovered, err := weakrsa.RecoverPrivateKey(&weakrsa.PublicKey{N: srv.Cert.N, E: srv.Cert.E}, srv.Key.P)
	if err != nil {
		t.Fatal(err)
	}
	transcript, err := tap.Decrypt(recovered)
	if err != nil {
		t.Fatal(err)
	}
	if len(transcript.ClientRecords) != 2 {
		t.Fatalf("client records decrypted: %d", len(transcript.ClientRecords))
	}
	for i, m := range msgs {
		if !bytes.Equal(transcript.ClientRecords[i], m) {
			t.Errorf("record %d: got %q want %q", i, transcript.ClientRecords[i], m)
		}
	}
	if len(transcript.ServerRecords) != 1 || !bytes.Equal(transcript.ServerRecords[0], []byte("admin-cookie=TOPSECRET")) {
		t.Errorf("server records: %q", transcript.ServerRecords)
	}
}

func TestPassiveDecryptionWrongKeyFails(t *testing.T) {
	srv := serverIdentity(t, 4)
	other := serverIdentity(t, 5)
	tap := &Tap{}
	cli := &ClientConfig{Rand: rand.New(rand.NewSource(13))}
	cSess, sSess := handshakePair(t, srv, cli, tap)
	done := make(chan error, 1)
	go func() { done <- cSess.Send([]byte("secret payload")) }()
	if _, err := sSess.Recv(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	transcript, err := tap.Decrypt(other.Key)
	if err != nil {
		// Acceptable: decryption may fail outright (ciphertext out of
		// range for the other modulus).
		return
	}
	for _, rec := range transcript.ClientRecords {
		if bytes.Equal(rec, []byte("secret payload")) {
			t.Error("wrong key decrypted the session")
		}
	}
}

func TestSuiteNegotiationRefusal(t *testing.T) {
	// An ECDHE-only server refuses an RSA-only client.
	srv := serverIdentity(t, 6)
	srv.Suites = []string{SuiteECDHE}
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	defer sConn.Close()
	cConn.SetDeadline(time.Now().Add(5 * time.Second))
	sConn.SetDeadline(time.Now().Add(5 * time.Second))
	cli := &ClientConfig{Suites: []string{SuiteRSA}, Rand: rand.New(rand.NewSource(15))}
	errCh := make(chan error, 1)
	go func() {
		_, err := cli.Handshake(cConn)
		errCh <- err
	}()
	if _, err := srv.Handshake(sConn); err != ErrNoCommonSuite {
		t.Errorf("server error = %v, want ErrNoCommonSuite", err)
	}
	if err := <-errCh; err == nil {
		t.Error("client should fail on refusal")
	}
}

func TestClientRequiresRand(t *testing.T) {
	srv := serverIdentity(t, 8)
	cConn, sConn := net.Pipe()
	defer cConn.Close()
	defer sConn.Close()
	cConn.SetDeadline(time.Now().Add(5 * time.Second))
	sConn.SetDeadline(time.Now().Add(5 * time.Second))
	go srv.Handshake(sConn)
	cli := &ClientConfig{}
	if _, err := cli.Handshake(cConn); err == nil {
		t.Error("nil Rand accepted")
	}
}

func TestSplitJoinList(t *testing.T) {
	for _, c := range [][]string{nil, {"RSA"}, {"RSA", "ECDHE"}} {
		got := splitList(joinList(c))
		if len(got) != len(c) {
			t.Errorf("round trip %v -> %v", c, got)
			continue
		}
		for i := range c {
			if got[i] != c[i] {
				t.Errorf("round trip %v -> %v", c, got)
			}
		}
	}
}

// FuzzServerHandshake feeds the server arbitrary client bytes: internet-
// facing handshake code must fail cleanly, never panic or hang.
func FuzzServerHandshake(f *testing.F) {
	f.Add([]byte("RSA"))
	f.Add([]byte{0, 0, 0, 3, 'R', 'S', 'A'})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{})
	key, err := weakrsa.GenerateKey(rand.New(rand.NewSource(77)), weakrsa.Options{Bits: 128})
	if err != nil {
		f.Fatal(err)
	}
	cert, err := certs.SelfSigned(big.NewInt(77), certs.Name{CommonName: "fuzz"},
		time.Unix(0, 0), time.Unix(1, 0), nil, key.N, key.E, key.D)
	if err != nil {
		f.Fatal(err)
	}
	srv := &ServerConfig{Cert: cert, Key: key}
	f.Fuzz(func(t *testing.T, data []byte) {
		conn := &scriptedConn{in: bytes.NewReader(data)}
		// Must return (almost always an error); panics fail the fuzz.
		srv.Handshake(conn)
	})
}

// scriptedConn replays fuzz bytes as reads and discards writes.
type scriptedConn struct{ in *bytes.Reader }

func (c *scriptedConn) Read(p []byte) (int, error)  { return c.in.Read(p) }
func (c *scriptedConn) Write(p []byte) (int, error) { return len(p), nil }
